module accelshare

go 1.22
