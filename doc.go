// Package accelshare is a full reimplementation of
//
//	B.H.J. Dekens, M.J.G. Bekooij, G.J.M. Smit,
//	"Real-Time Multiprocessor Architecture for Sharing Stream Processing
//	Accelerators", IEEE IPDPSW 2015.
//
// The library lives in internal/ packages layered bottom-up:
//
//	dataflow  SDF/CSDF graphs, repetition vectors, self-timed execution,
//	          HSDF expansion, max-cycle-ratio analysis
//	buffer    exact minimum buffer-capacity computation
//	ilp       exact rational simplex + branch and bound
//	core      the paper's models: Fig. 5 CSDF, Fig. 7 SDF, Eqs. 2-5,
//	          Algorithm 1 block sizes, refinement checking
//	sim       deterministic discrete-event kernel (cycle clock)
//	ring      dual-ring interconnect with credit ring
//	cfifo     C-FIFO software FIFOs over posted writes
//	accel     accelerator tiles, engines, credit links, config bus
//	gateway   entry-/exit-gateway pair (RR arbitration, space check,
//	          watchdog retry, checkpointed resume, value-exact staging)
//	mpsoc     full-platform assembly, measurement, multi-chain failover
//	fault     deterministic fault injection and the wedged-chain doctor
//	admission online stream add/remove/readmit (incremental Algorithm 1)
//	conformance  bound-conformance harness (τ̂/γ̂/μs + replay-cost checks)
//	dsp       CORDIC, FIR design, FM mod/demod
//	pal       the PAL stereo audio decoder demonstrator
//	cost      Virtex-6 cost model (Table I / Fig. 11)
//	trace     Gantt rendering (Fig. 6)
//	task      processor-tile budget scheduler
//	tdm       TDM crossbar baseline (ring ablation)
//	wav       WAV output for the audio demonstrators
//
// Extending the paper, the repo grows a recovery ladder over the shared
// chain — detection (drain watchdog from Eq. 2's flush allowance), block
// retry, checkpointed mid-block resume with value-exact replay (adjusted
// bound τ̂s(K), internal/gateway), stream quarantine, online readmission
// (internal/admission) and whole-chain failover to a standby gateway pair
// (internal/mpsoc) — each rung's cost bounded by the same temporal model
// and checked by internal/conformance.
//
// The benchmarks in this directory regenerate every table and figure of the
// paper's evaluation; `go run ./cmd/accelshare all` prints them. See
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results.
package accelshare
