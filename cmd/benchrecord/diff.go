package main

// The -diff mode: compare two recorded baselines mechanically, so an
// optimisation PR's claim ("re-recorded, nothing regressed") is a command
// with an exit code instead of a prose assertion. A regression is a ns/op
// increase beyond the threshold percentage; improvements and new/removed
// benchmarks are reported but never fail the diff.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// benchKey identifies one benchmark across baselines.
type benchKey struct {
	Package string
	Name    string
}

// loadBaseline reads a BENCH_*.json file written by this tool.
func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// diffBaselines prints a per-benchmark delta table to w and returns the
// number of regressions: benchmarks whose ns/op grew by more than
// thresholdPct percent.
func diffBaselines(w io.Writer, oldB, newB *baseline, thresholdPct float64) int {
	oldBy := make(map[benchKey]record, len(oldB.Benchmarks))
	for _, r := range oldB.Benchmarks {
		oldBy[benchKey{r.Package, r.Name}] = r
	}
	newBy := make(map[benchKey]record, len(newB.Benchmarks))
	for _, r := range newB.Benchmarks {
		newBy[benchKey{r.Package, r.Name}] = r
	}

	var keys []benchKey
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, seen := oldBy[k]; !seen {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Package != keys[j].Package {
			return keys[i].Package < keys[j].Package
		}
		return keys[i].Name < keys[j].Name
	})

	fmt.Fprintf(w, "%-52s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressions := 0
	for _, k := range keys {
		label := k.Package + " " + k.Name
		o, hasOld := oldBy[k]
		n, hasNew := newBy[k]
		switch {
		case !hasNew:
			fmt.Fprintf(w, "%-52s %14.1f %14s %9s\n", label, o.NsPerOp, "-", "removed")
		case !hasOld:
			fmt.Fprintf(w, "%-52s %14s %14.1f %9s\n", label, "-", n.NsPerOp, "added")
		default:
			pct := 0.0
			if o.NsPerOp > 0 {
				pct = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
			}
			mark := ""
			if pct > thresholdPct {
				mark = "  REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "%-52s %14.1f %14.1f %+8.1f%%%s\n", label, o.NsPerOp, n.NsPerOp, pct, mark)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed beyond %.1f%%\n", regressions, thresholdPct)
	}
	return regressions
}

// runDiff is the -diff entry point: load, compare, exit non-zero on any
// regression beyond the threshold.
func runDiff(oldPath, newPath string, thresholdPct float64) int {
	oldB, err := loadBaseline(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		return 2
	}
	newB, err := loadBaseline(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		return 2
	}
	if diffBaselines(os.Stdout, oldB, newB, thresholdPct) > 0 {
		return 1
	}
	return 0
}
