// benchrecord runs the repository's benchmarks and records them as a
// BENCH_<stamp>.json baseline, starting the perf trajectory the ROADMAP
// calls for: each optimisation PR re-records and compares against the
// previous snapshot.
//
// Usage:
//
//	go run ./cmd/benchrecord -o BENCH_2026-08.json [-benchtime 100ms] [pkgs...]
//	go run ./cmd/benchrecord -diff [-threshold 10] OLD.json NEW.json
//
// The default benchtime is duration-based rather than a fixed iteration
// count: the ms-scale campaign benches still run about once, while the
// ns-scale kernel benches get enough iterations to amortise cascade bursts
// — a 3-iteration sample of a bursty microbench can be off by several x,
// which would make the -diff gate flaky.
//
// Default packages are the repo root (paper tables/figures), the
// fleet-scale cluster benches, the event-kernel benches and the solver
// benches. The output is sorted
// by benchmark name so re-records diff cleanly; -diff compares two
// recorded baselines and exits 1 when any benchmark's ns/op grew by more
// than -threshold percent.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

type record struct {
	Name     string  `json:"name"`
	Package  string  `json:"package"`
	Iters    int64   `json:"iterations"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op,omitempty"`
	BytesOp  float64 `json:"bytes_per_op,omitempty"`
}

type baseline struct {
	Recorded   string   `json:"recorded"`
	GoOS       string   `json:"goos"`
	GoArch     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []record `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8   123   456789 ns/op [... B/op ... allocs/op]`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default BENCH_<yyyy-mm>.json)")
	benchtime := flag.String("benchtime", "100ms", "go test -benchtime value")
	diff := flag.Bool("diff", false, "compare two recorded baselines: -diff OLD.json NEW.json")
	threshold := flag.Float64("threshold", 10, "regression threshold for -diff, in percent ns/op growth")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchrecord: -diff needs exactly two baseline files")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *threshold))
	}
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{".", "./internal/cluster", "./internal/sim", "./internal/solve"}
	}
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01"))
	}

	b := baseline{
		Recorded:  time.Now().UTC().Format("2006-01-02"),
		Benchtime: *benchtime,
	}
	for _, pkg := range pkgs {
		recs, meta, err := runPackage(pkg, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrecord: %s: %v\n", pkg, err)
			os.Exit(1)
		}
		b.Benchmarks = append(b.Benchmarks, recs...)
		if b.GoOS == "" {
			b.GoOS, b.GoArch, b.CPU = meta[0], meta[1], meta[2]
		}
	}
	sort.Slice(b.Benchmarks, func(i, j int) bool {
		if b.Benchmarks[i].Package != b.Benchmarks[j].Package {
			return b.Benchmarks[i].Package < b.Benchmarks[j].Package
		}
		return b.Benchmarks[i].Name < b.Benchmarks[j].Name
	})

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d benchmarks to %s\n", len(b.Benchmarks), *out)
}

func runPackage(pkg, benchtime string) ([]record, [3]string, error) {
	var meta [3]string
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", ".", "-benchmem",
		"-benchtime", benchtime, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, meta, fmt.Errorf("%v\n%s", err, out)
	}
	var recs []record
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			meta[0] = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			meta[1] = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			meta[2] = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := record{Name: m[1], Package: pkg, Iters: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesOp, _ = strconv.ParseFloat(m[4], 64)
			r.AllocsOp, _ = strconv.ParseFloat(m[5], 64)
		}
		recs = append(recs, r)
	}
	return recs, meta, sc.Err()
}
