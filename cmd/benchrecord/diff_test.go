package main

import (
	"strings"
	"testing"
)

func mkBaseline(ns map[string]float64) *baseline {
	b := &baseline{}
	for name, v := range ns {
		b.Benchmarks = append(b.Benchmarks, record{Name: name, Package: ".", NsPerOp: v})
	}
	return b
}

func TestDiffFlagsRegressionsBeyondThreshold(t *testing.T) {
	oldB := mkBaseline(map[string]float64{
		"BenchmarkStable":  100,
		"BenchmarkFaster":  100,
		"BenchmarkSlower":  100,
		"BenchmarkBarely":  100,
		"BenchmarkRemoved": 50,
	})
	newB := mkBaseline(map[string]float64{
		"BenchmarkStable": 100,
		"BenchmarkFaster": 40,
		"BenchmarkSlower": 150, // +50%: regression at a 10% threshold
		"BenchmarkBarely": 109, // +9%: within threshold
		"BenchmarkAdded":  30,
	})
	var sb strings.Builder
	if got := diffBaselines(&sb, oldB, newB, 10); got != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", got, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"BenchmarkSlower", "REGRESSION",
		"BenchmarkRemoved", "removed",
		"BenchmarkAdded", "added",
		"+50.0%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(strings.Replace(out, "BenchmarkSlower", "", 1)+"", "BenchmarkSlower") {
		t.Fatalf("BenchmarkSlower listed more than once:\n%s", out)
	}
	// The barely-slower bench must not be marked.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "BenchmarkBarely") && strings.Contains(line, "REGRESSION") {
			t.Fatalf("within-threshold bench marked as regression: %s", line)
		}
	}
}

func TestDiffThresholdIsConfigurable(t *testing.T) {
	oldB := mkBaseline(map[string]float64{"BenchmarkX": 100})
	newB := mkBaseline(map[string]float64{"BenchmarkX": 120})
	var sb strings.Builder
	if got := diffBaselines(&sb, oldB, newB, 30); got != 0 {
		t.Fatalf("+20%% flagged at a 30%% threshold:\n%s", sb.String())
	}
	sb.Reset()
	if got := diffBaselines(&sb, oldB, newB, 5); got != 1 {
		t.Fatalf("+20%% not flagged at a 5%% threshold:\n%s", sb.String())
	}
}

func TestDiffOutputIsDeterministic(t *testing.T) {
	oldB := mkBaseline(map[string]float64{"BenchmarkB": 1, "BenchmarkA": 2, "BenchmarkC": 3})
	newB := mkBaseline(map[string]float64{"BenchmarkC": 3, "BenchmarkA": 2, "BenchmarkB": 1})
	var a, b strings.Builder
	diffBaselines(&a, oldB, newB, 10)
	diffBaselines(&b, oldB, newB, 10)
	if a.String() != b.String() {
		t.Fatal("diff output differs across runs")
	}
	ia := strings.Index(a.String(), "BenchmarkA")
	ib := strings.Index(a.String(), "BenchmarkB")
	ic := strings.Index(a.String(), "BenchmarkC")
	if !(ia < ib && ib < ic) {
		t.Fatalf("rows not sorted by name:\n%s", a.String())
	}
}
