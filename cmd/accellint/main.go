// Command accellint is the repository's invariant linter: a multichecker
// over the internal/analysis suite (determinism, boundcheck, deepcopy,
// pkgdoc, floatflow, ratalias, noalloc) plus the directive check — an
// //accellint: comment no analyzer consumed is itself a finding. It loads
// and type-checks the module's non-test packages with no external
// dependencies and prints one line per finding:
//
//	path/file.go:line:col: message (analyzer)
//
// Usage:
//
//	go run ./cmd/accellint ./...
//	go run ./cmd/accellint -json ./internal/admission ./internal/mpsoc
//
// With -json the findings stream as one JSON array of
// {file, line, col, message, analyzer} objects on stdout (an empty array
// when clean), for editor and CI-annotation tooling.
//
// Exit status is 0 when clean, 1 when any analyzer reported a finding, and
// 2 on usage or load errors. CI runs it over ./... in place of the old
// shell/awk doc-comment lint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"accelshare/internal/analysis"
)

// finding is the -json output shape for one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of line-per-finding text")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: accellint [-json] ./... | accellint [-json] <package dirs>")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "accellint: %v\n", err)
		os.Exit(2)
	}
	fset, pkgs, err := analysis.LoadTree(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "accellint: %v\n", err)
		os.Exit(2)
	}
	keep, err := filterPackages(root, pkgs, args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "accellint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunOpts(fset, keep, analysis.Suite(), analysis.Options{CheckDirectives: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "accellint: %v\n", err)
		os.Exit(2)
	}
	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		findings = append(findings, finding{
			File: name, Line: pos.Line, Col: pos.Column,
			Message: d.Message, Analyzer: d.Analyzer,
		})
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "accellint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "accellint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// filterPackages selects the loaded packages matching the command-line
// patterns: "./..." (everything), "./dir/..." (subtree), or "./dir".
// Patterns are interpreted relative to the working directory.
func filterPackages(root string, pkgs []*analysis.Package, patterns []string) ([]*analysis.Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var keep []*analysis.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." {
				pat = "./"
			}
		} else if pat == "..." {
			rec, pat = true, "./"
		}
		abs, err := filepath.Abs(filepath.Join(cwd, pat))
		if err != nil {
			return nil, err
		}
		matched := false
		for _, p := range pkgs {
			ok := p.Dir == abs
			if rec {
				rel, err := filepath.Rel(abs, p.Dir)
				ok = err == nil && !strings.HasPrefix(rel, "..")
			}
			if ok {
				matched = true
				if !seen[p.Path] {
					seen[p.Path] = true
					keep = append(keep, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return keep, nil
}
