// Command accellint is the repository's invariant linter: a multichecker
// over the internal/analysis suite (determinism, boundcheck, deepcopy,
// pkgdoc). It loads and type-checks the module's non-test packages with no
// external dependencies and prints one line per finding:
//
//	path/file.go:line:col: message (analyzer)
//
// Usage:
//
//	go run ./cmd/accellint ./...
//	go run ./cmd/accellint ./internal/admission ./internal/mpsoc
//
// Exit status is 0 when clean, 1 when any analyzer reported a finding, and
// 2 on usage or load errors. CI runs it over ./... in place of the old
// shell/awk doc-comment lint.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"accelshare/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: accellint ./... | accellint <package dirs>")
		os.Exit(2)
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "accellint: %v\n", err)
		os.Exit(2)
	}
	fset, pkgs, err := analysis.LoadTree(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "accellint: %v\n", err)
		os.Exit(2)
	}
	keep, err := filterPackages(root, pkgs, args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "accellint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(fset, keep, analysis.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "accellint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "accellint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// filterPackages selects the loaded packages matching the command-line
// patterns: "./..." (everything), "./dir/..." (subtree), or "./dir".
// Patterns are interpreted relative to the working directory.
func filterPackages(root string, pkgs []*analysis.Package, patterns []string) ([]*analysis.Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var keep []*analysis.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." {
				pat = "./"
			}
		} else if pat == "..." {
			rec, pat = true, "./"
		}
		abs, err := filepath.Abs(filepath.Join(cwd, pat))
		if err != nil {
			return nil, err
		}
		matched := false
		for _, p := range pkgs {
			ok := p.Dir == abs
			if rec {
				rel, err := filepath.Rel(abs, p.Dir)
				ok = err == nil && !strings.HasPrefix(rel, "..")
			}
			if ok {
				matched = true
				if !seen[p.Path] {
					seen[p.Path] = true
					keep = append(keep, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return keep, nil
}
