package main

// Additional ablations: arbitration policy (why round-robin) and software
// vs hardware flow control (why credits rather than C-FIFO on the
// accelerator path).

import (
	"flag"
	"fmt"
	"math/big"

	"accelshare/internal/accel"
	"accelshare/internal/cfifo"
	"accelshare/internal/core"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

func init() {
	register("ablation-arbiter", "round-robin vs fixed-priority arbitration: why RR (§IV-C)", runArbiterAblation)
	register("ablation-flowcontrol", "credit-based hardware flow control vs C-FIFO on the accelerator path (§II)", runFlowControlAblation)
}

func runArbiterAblation(args []string) error {
	fmt.Println("Arbitration ablation — the paper's RR bound (Eq. 3 via [19]) vs fixed priority")
	build := func(arb gateway.Arbitration) mpsoc.Report {
		cfg := mpsoc.Config{
			Name: "arb", HopLatency: 1, EntryCost: 15, ExitCost: 1,
			Mode: gateway.ReconfigFixed, Arbiter: arb,
			Accels: []mpsoc.AccelSpec{{Name: "a", Cost: 1, NICapacity: 2}},
			Streams: []mpsoc.StreamSpec{
				{Name: "greedy", Block: 16, Decimation: 1, Reconfig: 50,
					InCapacity: 64, OutCapacity: 64,
					Engines: []accel.Engine{accel.Passthrough{}}},
				{Name: "meek", Block: 16, Decimation: 1, Reconfig: 50,
					InCapacity: 64, OutCapacity: 64,
					Engines: []accel.Engine{accel.Passthrough{}}},
			},
		}
		sys, err := mpsoc.Build(cfg)
		if err != nil {
			panic(err)
		}
		sys.Run(500_000)
		return sys.Report()
	}
	model := &core.System{
		Chain:   core.Chain{Name: "arb", AccelCosts: []uint64{1}, EntryCost: 15, ExitCost: 1, NICapacity: 2},
		ClockHz: 100_000_000,
		Streams: []core.Stream{
			{Name: "greedy", Rate: big.NewRat(1, 1), Reconfig: 50, Block: 16},
			{Name: "meek", Rate: big.NewRat(1, 1), Reconfig: 50, Block: 16},
		},
	}
	gamma, err := model.GammaHat(1)
	if err != nil {
		return err
	}
	rr := build(gateway.RoundRobin)
	pr := build(gateway.FixedPriority)
	fmt.Printf("\nboth streams saturated; 500k cycles; γ̂ per stream = %d cycles\n\n", gamma)
	fmt.Printf("%-16s %14s %14s\n", "", "round-robin", "fixed priority")
	fmt.Printf("%-16s %14d %14d\n", "greedy blocks", rr.PerStream[0].Blocks, pr.PerStream[0].Blocks)
	fmt.Printf("%-16s %14d %14d\n", "meek blocks", rr.PerStream[1].Blocks, pr.PerStream[1].Blocks)
	fmt.Printf("%-16s %14d %14d\n", "meek wait (cyc)", rr.PerStream[1].PendingWait, pr.PerStream[1].PendingWait)
	fmt.Println("\nunder fixed priority the meek stream starves (wait grows without bound):")
	fmt.Println("no finite ε̂s exists, so the Eq. 3 interference bound — and with it the whole")
	fmt.Println("temporal model — requires the round-robin arbiter.")
	return nil
}

func runFlowControlAblation(args []string) error {
	fs := flag.NewFlagSet("ablation-flowcontrol", flag.ContinueOnError)
	words := fs.Int("words", 2048, "words to stream")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("Flow-control ablation — hardware credits vs the C-FIFO algorithm on the")
	fmt.Println("accelerator path (§II: Eclipse used C-FIFO in a hardware shell; the paper")
	fmt.Println("argues credits are cheaper and lighter on the interconnect)")
	fmt.Println()

	// Credit-based link: data words one way, 1-word credits the other.
	creditRun := func() (delivered, dataMsgs, creditMsgs uint64, finish sim.Time) {
		k := sim.NewKernel()
		net, err := ring.NewDual(k, 3, 1)
		if err != nil {
			panic(err)
		}
		dst := sim.NewQueue("dst", 2)
		l := accel.NewLink("l", k, net, 0, 2, 1, 1, dst)
		sent, recv := 0, 0
		var pump *sim.Waker
		pump = sim.NewWaker(k, func() {
			for sent < *words && l.TrySend(sim.Word(sent)) {
				sent++
			}
		})
		l.SubscribeCredits(pump)
		l.SubscribeRingSpace(pump)
		drain := sim.NewWaker(k, func() {
			for {
				if _, ok := dst.TryPop(); !ok {
					break
				}
				recv++
			}
		})
		dst.SubscribeData(drain)
		pump.Wake()
		finish = k.RunAll()
		return uint64(recv), net.Data.DeliveredWords(), net.Credit.DeliveredWords(), finish
	}

	// C-FIFO: data words + write pointer updates one way, read pointer
	// updates back — all as ring messages (ack batch 1, the shell regime).
	cfifoRun := func() (delivered, dataMsgs, creditMsgs uint64, finish sim.Time) {
		k := sim.NewKernel()
		net, err := ring.NewDual(k, 3, 1)
		if err != nil {
			panic(err)
		}
		f, err := cfifo.New(k, net, cfifo.Config{
			Name: "c", Capacity: 2, // same buffering as the NI FIFO
			ProducerNode: 0, ConsumerNode: 2,
			DataPort: 1, AckPort: 1, AckBatch: 1,
		})
		if err != nil {
			panic(err)
		}
		sent, recv := 0, 0
		var pump *sim.Waker
		pump = sim.NewWaker(k, func() {
			for sent < *words && f.TryWrite(sim.Word(sent)) {
				sent++
			}
		})
		f.SubscribeSpace(pump)
		drain := sim.NewWaker(k, func() {
			for {
				if _, ok := f.TryRead(); !ok {
					break
				}
				recv++
			}
		})
		f.SubscribeData(drain)
		pump.Wake()
		k.Schedule(1, pump.Wake) // kick after init
		finish = k.RunAll()
		return uint64(recv), net.Data.DeliveredWords(), net.Credit.DeliveredWords(), finish
	}

	cw, cdm, ccm, cf := creditRun()
	fw, fdm, fcm, ff := cfifoRun()
	fmt.Printf("%-22s %10s %14s %14s %12s\n", "mechanism", "delivered", "data-ring msgs", "credit-ring", "finish(cyc)")
	fmt.Printf("%-22s %10d %14d %14d %12d\n", "hardware credits", cw, cdm, ccm, cf)
	fmt.Printf("%-22s %10d %14d %14d %12d\n", "C-FIFO (software)", fw, fdm, fcm, ff)
	if cw != uint64(*words) || fw != uint64(*words) {
		return fmt.Errorf("words lost: credits %d, cfifo %d of %d", cw, fw, *words)
	}
	fmt.Printf("\ndata-ring load per delivered word: credits %.2f vs C-FIFO %.2f —\n",
		float64(cdm)/float64(cw), float64(fdm)/float64(fw))
	fmt.Println("C-FIFO's counter updates contend with payload on the data ring, while the")
	fmt.Println("credit scheme moves flow control to the dedicated reverse ring; a C-FIFO")
	fmt.Println("shell would also need counter memory and compare logic in EVERY accelerator")
	fmt.Println("NI — the hardware-cost argument the paper makes against the Eclipse shell.")
	return nil
}
