package main

// failover: the multi-chain failover campaign. A three-stream chain runs
// live next to an empty standby gateway pair (the paper's Fig. 1 carries two
// pairs on one ring). Scenarios wedge the primary chain — a severed link, a
// frozen ring node — until the fault doctor convicts the whole chain and the
// FailoverController migrates every stream to the standby: freeze, settle,
// state export, C-FIFO re-pointing, one validated slot transaction, resume.
// A per-stream fault (stuck engine) stays a per-stream problem: the doctor's
// distinct-streams threshold withholds the verdict and the ordinary
// retry/quarantine ladder handles it on the primary. The last scenario is an
// operator-initiated migration onto a SLOWER standby, where the survivor
// re-solve (Algorithm 1, warm-started) grows the block sizes.
//
// Each scenario reports the measured failover cost against its bound
// (max τ̂s of the outgoing configuration + per-slot bus cost), verifies that
// every stream's output sequence is contiguous (zero lost or duplicated
// samples across the migration), and runs the conformance harness over the
// post-failover trace. Everything is deterministic: two runs produce
// byte-identical output (a regression test enforces it).

import (
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"

	"accelshare/internal/accel"
	"accelshare/internal/conformance"
	"accelshare/internal/core"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
	"accelshare/internal/sim"
	"accelshare/internal/trace"
)

func init() {
	register("failover", "multi-chain failover: wedged-chain verdicts, stream migration, cost vs bound", runFailover)
}

func runFailover(args []string) error {
	fs := flag.NewFlagSet("failover", flag.ContinueOnError)
	horizon := fs.Int64("horizon", 60_000, "cycles to simulate per scenario")
	script := fs.String("script", "", "fault script file replacing the wedge-link scenario's plan")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *horizon <= 0 {
		return fmt.Errorf("failover: -horizon must be positive, got %d", *horizon)
	}
	var plan *fault.Plan
	if *script != "" {
		raw, err := os.ReadFile(*script)
		if err != nil {
			return err
		}
		plan, err = fault.ParseScript(string(raw))
		if err != nil {
			return err
		}
	}
	return failoverCampaign(os.Stdout, sim.Time(*horizon), plan)
}

// failoverScenario is one campaign entry.
type failoverScenario struct {
	name string
	plan *fault.Plan
	// doctor arms a wedged-chain doctor on the primary (nil = none).
	doctor *fault.DoctorConfig
	// manualAt, when positive, triggers an operator-initiated failover.
	manualAt sim.Time
	// resolve re-runs Algorithm 1 for the migrated set; standbyCost is the
	// standby accelerator's per-sample cost (default 1 = identical chain).
	resolve     bool
	standbyCost uint64
	// ckpt enables checkpointed recovery (interval in input samples) on
	// both chains: the migrated residue shrinks to ≤ ckpt words and the
	// cost bound uses the adjusted Eq. 2 term τ̂(K).
	ckpt     int64
	ckptCost sim.Time
}

// failoverModel is the primary's temporal model: three streams, ε=15, ρA=1,
// δ=1, Rs=50, η=16 → τ̂=320, γ̂=960 (Eq. 2/4); μs=1/75 needs 1200 cycles per
// block, so the bounds hold with slack.
func failoverModel() *core.System {
	m := &core.System{
		Chain: core.Chain{
			Name: "primary", AccelCosts: []uint64{1},
			EntryCost: 15, ExitCost: 1, NICapacity: 2,
		},
		ClockHz: 1,
	}
	for _, name := range []string{"s0", "s1", "s2"} {
		m.Streams = append(m.Streams, core.Stream{
			Name: name, Rate: big.NewRat(1, 75), Reconfig: 50, Block: 16,
		})
	}
	return m
}

// failoverScenarios builds the campaign grid. The wedge doctors convict on
// stall count alone (a wedged chain pins round-robin arbitration on the
// stalling stream, so stalls cannot spread before the retry budget runs
// out); the stick-engine doctor demands two distinct streams and therefore
// correctly never convicts the chain for one stream's dead engine.
func failoverScenarios(override *fault.Plan) []failoverScenario {
	wedgeDoctor := &fault.DoctorConfig{Window: 4_000, StallLimit: 3, DistinctStreams: 1}
	wedgePlan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.WedgeLink, Site: 0, At: 5_000},
	}}
	if override != nil {
		wedgePlan = override
	}
	return []failoverScenario{
		{
			name:   "wedge-link entry@5k (permanent)",
			plan:   wedgePlan,
			doctor: wedgeDoctor,
		},
		{
			name: "wedge-node entry@5k (permanent)",
			plan: &fault.Plan{Faults: []fault.Fault{
				{Kind: fault.WedgeNode, Site: 0, At: 5_000},
			}},
			doctor: wedgeDoctor,
		},
		{
			name: "stick-engine s0@24 (no failover)",
			plan: &fault.Plan{Faults: []fault.Fault{
				{Kind: fault.StickEngine, Stream: 0, Site: 0, Sample: 24},
			}},
			doctor: &fault.DoctorConfig{Window: 4_000, StallLimit: 3, DistinctStreams: 2},
		},
		{
			name:        "operator migration to slower standby",
			plan:        &fault.Plan{},
			manualAt:    20_000,
			resolve:     true,
			standbyCost: 20,
		},
		{
			// The same permanent wedge on a checkpointing chain: the
			// in-flight block's residue is the words since the last
			// K-sample checkpoint (≤ 4), not the whole η=16, and the bound
			// pays the adjusted τ̂(K) = 50 + (16+2·4)·15 + 3·5 = 425.
			name:     "wedge-link entry@5k (ckpt K=4)",
			plan:     wedgePlan,
			doctor:   wedgeDoctor,
			ckpt:     4,
			ckptCost: 5,
		},
	}
}

// failoverPlatform assembles the two-chain platform: the primary carries the
// three streams and the fault plan, the standby sits empty with the same
// tile count (possibly slower engines).
func failoverPlatform(sc failoverScenario) (*mpsoc.MultiSystem, *mpsoc.FailoverController, error) {
	stream := func(name string) mpsoc.StreamSpec {
		return mpsoc.StreamSpec{
			Name: name, Block: 16, Decimation: 1, Reconfig: 50,
			InCapacity: 128, OutCapacity: 64,
			SourcePeriod:   75,
			Engines:        []accel.Engine{&accel.Gain{}},
			CollectOutputs: true,
		}
	}
	standbyCost := sc.standbyCost
	if standbyCost == 0 {
		standbyCost = 1
	}
	recovery := gateway.Recovery{Enabled: true, RetryLimit: 2}
	if sc.ckpt > 0 {
		recovery.Checkpoint = sc.ckpt
		recovery.CheckpointCost = sc.ckptCost
		recovery.ValueExact = true
	}
	ms, err := mpsoc.BuildMulti(mpsoc.MultiConfig{
		Name:           "failover",
		HopLatency:     1,
		RecordActivity: true,
		Chains: []mpsoc.ChainSpec{
			{
				Name:              "primary",
				EntryCost:         15,
				ExitCost:          1,
				Mode:              gateway.ReconfigFixed,
				Accels:            []mpsoc.AccelSpec{{Name: "acc", Cost: 1, NICapacity: 2}},
				Streams:           []mpsoc.StreamSpec{stream("s0"), stream("s1"), stream("s2")},
				DrainTimeout:      600,
				Recovery:          recovery,
				Faults:            sc.plan,
				RecordTurnarounds: true,
			},
			{
				Name:              "standby",
				EntryCost:         15,
				ExitCost:          1,
				Mode:              gateway.ReconfigFixed,
				Accels:            []mpsoc.AccelSpec{{Name: "acc-b", Cost: sim.Time(standbyCost), NICapacity: 2}},
				Standby:           true,
				DrainTimeout:      600,
				Recovery:          recovery,
				RecordTurnarounds: true,
			},
		},
	})
	if err != nil {
		return nil, nil, err
	}
	fcfg := mpsoc.FailoverConfig{
		Primary: 0, Standby: 1,
		Model:          failoverModel(),
		PerSlotCost:    10,
		Resolve:        sc.resolve,
		Checkpoint:     sc.ckpt,
		CheckpointCost: sc.ckptCost,
	}
	if standbyCost != 1 {
		fcfg.StandbyChain = &core.Chain{
			Name: "standby", AccelCosts: []uint64{standbyCost},
			EntryCost: 15, ExitCost: 1, NICapacity: 2,
		}
	}
	fc, err := mpsoc.NewFailover(ms, fcfg)
	if err != nil {
		return nil, nil, err
	}
	if sc.doctor != nil {
		if _, err := fc.Arm(*sc.doctor); err != nil {
			return nil, nil, err
		}
	}
	if sc.manualAt > 0 {
		ms.K.ScheduleAt(sc.manualAt, func() { fc.Trigger("operator request") })
	}
	return ms, fc, nil
}

// contiguous verifies the identity-engine output sequence 0,1,2,...: any
// lost or duplicated sample across the migration breaks it.
func contiguous(outputs []sim.Word) bool {
	for k, w := range outputs {
		if w != sim.Word(k) {
			return false
		}
	}
	return true
}

// conformanceCut picks the post-transient window start: after the failover's
// backlog has drained (the migration freezes service for ~γ̂, so the first
// rounds on the standby work through queued blocks, to which the single-
// token turnaround bound γ̂ does not apply), or a fixed cut for scenarios
// that never fail over.
func conformanceCut(rec *mpsoc.Record) sim.Time {
	if rec != nil {
		return rec.ResumedAt + 8_000
	}
	return 20_000
}

// failoverCampaign writes the byte-deterministic campaign transcript that the
// golden gate diffs; floatflow holds it to exact output.
//
//accellint:transcript golden transcript must stay float-free
func failoverCampaign(w io.Writer, horizon sim.Time, override *fault.Plan) error {
	fmt.Fprintln(w, "Multi-chain failover campaign: 3 streams on a primary chain, empty standby")
	fmt.Fprintln(w, "pair on the same ring (ε=15, ρA=1, δ=1, Rs=50, η=16 → τ̂=320, γ̂=960; source")
	fmt.Fprintln(w, "period 75 cyc/sample; watchdog 600 cyc, retry limit 2, per-slot bus cost 10).")
	fmt.Fprintln(w, "On a wedged-chain verdict the controller freezes the sick pair, settles,")
	fmt.Fprintln(w, "migrates stream state, re-points the C-FIFOs and resumes on the standby;")
	fmt.Fprintln(w, "measured cost is checked against bound = max τ̂s + slots × bus cost.")
	fmt.Fprintln(w)

	allOK := true
	for si, sc := range failoverScenarios(override) {
		ms, fc, err := failoverPlatform(sc)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		ms.Run(horizon)

		fmt.Fprintf(w, "--- %s\n", sc.name)
		rec := fc.Record()
		active := ms.Chains[0]
		if rec != nil {
			active = ms.Chains[1]
			within := rec.MeasuredCycles <= rec.BoundCycles
			if !within {
				allOK = false
			}
			fmt.Fprintf(w, "failover: reason=%q triggered=%d resumed=%d\n", rec.Reason, rec.TriggeredAt, rec.ResumedAt)
			fmt.Fprintf(w, "  settle=%d bus=%d measured=%d bound=%d within-bound=%v replay=%d words\n",
				rec.SettleCycles, rec.BusCycles, rec.MeasuredCycles, rec.BoundCycles, within, rec.ReplayWords)
			if sc.resolve {
				detail := "kept outgoing sizes"
				if rec.Resolved {
					detail = "re-solved for the standby chain"
				} else if rec.ResolveErr != "" {
					detail = "kept outgoing sizes (" + rec.ResolveErr + ")"
				}
				fmt.Fprintf(w, "  re-solve: %s → blocks", detail)
				for i, n := range rec.Names {
					fmt.Fprintf(w, " %s=%d", n, rec.Blocks[i])
				}
				fmt.Fprintln(w)
			}
		} else if fc.Triggered() {
			allOK = false
			fmt.Fprintln(w, "failover: triggered but never completed")
		} else {
			fmt.Fprintln(w, "failover: not triggered (per-stream recovery handled the fault)")
		}

		fmt.Fprintf(w, "%-4s %6s %8s %11s %10s %7s %s\n",
			"strm", "block", "blocks", "samples-out", "overflows", "contig", "state")
		snaps := active.Pair.Snapshot()
		for i, snap := range snaps {
			st := active.Strs[i]
			contig := "OK"
			if !contiguous(st.Outputs) {
				contig = "BROKEN"
				allOK = false
			}
			state := "live"
			if snap.Quarantined {
				state = "quarantined"
			}
			if st.Overflows > 0 && !snap.Quarantined {
				allOK = false
			}
			fmt.Fprintf(w, "%-4s %6d %8d %11d %10d %7s %s\n",
				snap.Name, snap.Block, snap.Blocks, snap.SamplesOut, st.Overflows, contig, state)
		}

		// Conformance over the post-transient trace: τ̂ per block (retried
		// blocks exempt), γ̂ per block, μs long-run, for the live streams
		// against the ACTIVE chain's parameters and block sizes.
		model := failoverModel()
		model.Chain.Name = active.Spec.Name
		model.Chain.AccelCosts = []uint64{uint64(active.Spec.Accels[0].Cost)}
		var bounds []conformance.StreamBounds
		var streams []*gateway.Stream
		for i, snap := range snaps {
			if snap.Quarantined {
				continue
			}
			model.Streams[i].Block = snap.Block
			streams = append(streams, active.Strs[i].GW)
		}
		modelLive := &core.System{Chain: model.Chain, ClockHz: model.ClockHz}
		for i, snap := range snaps {
			if !snap.Quarantined {
				modelLive.Streams = append(modelLive.Streams, model.Streams[i])
			}
		}
		// Checkpointed scenarios check against the adjusted τ̂(K)/γ̂(K) and
		// additionally bound per-block replay work by K (Replayed ≤ retries·K;
		// the migrated block itself completes before the post-transient cut).
		bounds, err = conformance.FromModelCheckpointed(modelLive, sc.ckpt, uint64(sc.ckptCost))
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		opts := conformance.Options{
			After: conformanceCut(rec), SkipRetried: true, MinBlocks: 5,
		}
		if sc.ckpt > 0 {
			opts.ReplayBound = sc.ckpt
		}
		res := conformance.FromStreams(bounds, streams, opts)
		fmt.Fprintf(w, "conformance after t=%d: %d blocks checked, %d violations\n",
			conformanceCut(rec), res.Checked, len(res.Violations))
		for _, v := range res.Violations {
			allOK = false
			fmt.Fprintf(w, "  VIOLATION %s\n", v)
		}

		if si == 0 && rec != nil {
			fmt.Fprintln(w, "\nstandby activity around the failover (reconfig/stream/drain spans,")
			fmt.Fprintln(w, "failover row = controller-level freeze→resume span):")
			names := make([]string, len(snaps))
			for i, snap := range snaps {
				names[i] = snap.Name
			}
			lo, hi := rec.TriggeredAt, rec.ResumedAt+3_000
			var acts []gateway.Activity
			for _, a := range active.Pair.Activities {
				if a.End >= lo && a.Start <= hi {
					acts = append(acts, a)
				}
			}
			io.WriteString(w, trace.FromActivities(names, acts).Render(64))
		}
		fmt.Fprintln(w)
	}
	if allOK {
		fmt.Fprintln(w, "every failover landed within its bound with zero lost or duplicated")
		fmt.Fprintln(w, "samples, and every surviving stream stayed inside τ̂/γ̂/μs (Eq. 2/4/5).")
	} else {
		fmt.Fprintln(w, "WARNING: at least one scenario violated a bound or lost samples.")
	}
	return nil
}
