package main

// Kernel-swap regression gate: the timing-wheel scheduler replaced the
// binary-heap kernel under every campaign in this table, and the checked-in
// goldens were recorded on the heap kernel. These tests therefore pin the
// wheel to the heap's exact (time, seq) schedule — byte for byte, with NO
// -update escape hatch. A diff here is a kernel bug (ordering, cascade, or
// horizon semantics), never a golden refresh; fix the kernel, don't touch
// testdata.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestKernelGoldenRegression(t *testing.T) {
	cases := []struct {
		name     string
		golden   string
		long     bool // skipped under -short
		campaign func(w *bytes.Buffer) error
	}{
		{"faults", "faults.golden", true, func(w *bytes.Buffer) error {
			return faultCampaign(w, 50_000)
		}},
		{"admit", "admit.golden", false, func(w *bytes.Buffer) error {
			return admitCampaign(w, defaultAdmitScript, 60_000, 2)
		}},
		{"failover", "failover.golden", false, func(w *bytes.Buffer) error {
			return failoverCampaign(w, 60_000, nil)
		}},
		{"chaos-short", "chaos_short.golden", false, func(w *bytes.Buffer) error {
			return chaosCampaign(w, true, 1789)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.long && testing.Short() {
				t.Skipf("%s campaign is long", tc.name)
			}
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatalf("missing golden (the gate has no regeneration path): %v", err)
			}
			var got bytes.Buffer
			if err := tc.campaign(&got); err != nil {
				t.Fatalf("%s campaign: %v", tc.name, err)
			}
			if bytes.Equal(got.Bytes(), want) {
				return
			}
			gl := bytes.Split(got.Bytes(), []byte("\n"))
			wl := bytes.Split(want, []byte("\n"))
			for i := 0; i < len(gl) && i < len(wl); i++ {
				if !bytes.Equal(gl[i], wl[i]) {
					t.Fatalf("kernel schedule diverged from pre-wheel golden %s at line %d:\n got: %s\nwant: %s",
						tc.golden, i+1, gl[i], wl[i])
				}
			}
			t.Fatalf("kernel schedule diverged from %s: got %d lines, want %d", tc.golden, len(gl), len(wl))
		})
	}
}
