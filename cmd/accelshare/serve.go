package main

// serve: the sustained-serving campaign — the rebalancer's acceptance
// artifact, the way chaos is the degradation ladder's. A fleet of
// heterogeneous chains serves a long-horizon open-loop traffic mix:
// thousands of background stream lifetimes (arrival/departure processes
// drawn from a seeded xorshift generator), a diurnal ramp that compresses
// the arrival spacing toward mid-cycle, and one persistent flash crowd.
// The periodic rebalancer watches the fleet's exact utilisation spread and
// migrates streams hot when it exceeds the high-water mark; every move is
// measured against its composed bound (remove + settle + admit envelopes +
// charged backoffs).
//
// Unlike the chaos transcript, the serve transcript is AGGREGATED — with
// ~10^3 lifetimes a raw event log would drown the signal — but it is still
// a pure function of the profile: a traffic summary, the per-tick spread
// timeline, the full rebalance move table, final chain telemetry and a
// fleet-wide Eq. 2/4/5 conformance pass over the post-warm-up tail. Two
// runs are byte-identical (golden-tested, short profile raced in CI).

import (
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"

	"accelshare/internal/cluster"
	"accelshare/internal/conformance"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
	"accelshare/internal/sim"
	"accelshare/internal/solve"
)

func init() {
	register("serve", "sustained serving campaign: open-loop traffic, diurnal ramp, live rebalancing", runServe)
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	short := fs.Bool("short", false, "run the trimmed CI profile instead of the full campaign")
	seed := fs.Uint64("seed", 24601, "traffic generator seed (non-zero)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seed == 0 {
		return fmt.Errorf("serve: -seed must be non-zero")
	}
	return serveCampaign(os.Stdout, *short, *seed)
}

// serveProfile bundles the campaign shape so the short CI profile and the
// full campaign share one code path.
type serveProfile struct {
	horizon   sim.Time
	chains    []cluster.ChainSpec
	traffic   cluster.Profile
	rebalance cluster.RebalanceConfig
	cut       sim.Time // conformance window start (past the last disturbance)
	// minAdmitted fails the campaign when fewer background streams were
	// actually admitted than the profile promises (full: >= 1000) — offered
	// load does not count; a rejected arrival never lived on the fleet.
	minAdmitted int
}

// serveSoak is the full campaign: eight chains (six fast, two slow), over
// a thousand admitted background lifetimes across ~2M cycles, four diurnal
// cycles, and a flash crowd at 900k that stays for the rest of the run.
// The arrival spacing is sized against the fleet's admission throughput —
// every admission and departure is a serialised drain-and-reconfigure
// transition on its chain, so pushing the spacing far below that just
// converts offered load into rejections. Background traffic ends at 1.7M
// and the rebalancer stops at 1.75M, so the 1.78M conformance cut sees
// only the settled fleet (residents + the crowd).
func serveSoak(seed uint64) serveProfile {
	return serveProfile{
		horizon: 1_900_000,
		chains: []cluster.ChainSpec{
			{Name: "c0", AccelCost: 1, ReserveSlots: 8},
			{Name: "c1", AccelCost: 1, ReserveSlots: 8},
			{Name: "c2", AccelCost: 1, ReserveSlots: 8},
			{Name: "c3", AccelCost: 1, ReserveSlots: 8},
			{Name: "c4", AccelCost: 1, ReserveSlots: 8},
			{Name: "c5", AccelCost: 1, ReserveSlots: 8},
			{Name: "c6", AccelCost: 25, ReserveSlots: 8},
			{Name: "c7", AccelCost: 25, ReserveSlots: 8},
		},
		traffic: cluster.Profile{
			Seed: seed, Start: 1_000, End: 1_700_000,
			MeanSpacing: 1_500, MinLifetime: 20_000, MeanLifetime: 40_000,
			Periods:    []int64{300, 600},
			Priorities: []int{1, 3, 5},
			// Four diurnal cycles: spacing compresses by up to 50% mid-cycle.
			DiurnalPeriod: 400_000, DiurnalAmplitude: 50,
			// The crowd lands mid-run and never leaves (FlashLifetime 0):
			// the fleet must absorb the permanent load shift and the
			// rebalancer must keep the spread bounded around it.
			FlashAt: 900_000, FlashCount: 8, FlashSpacing: 200,
			FlashPeriod: 300, FlashLifetime: 0,
		},
		rebalance: cluster.RebalanceConfig{
			Every: 25_000, Start: 50_000, Stop: 1_750_000,
			HighWater: big.NewRat(1, 10), MaxMovesPerTick: 2,
		},
		cut:         1_780_000,
		minAdmitted: 1_000,
	}
}

// serveShort is the CI profile: six chains, a few dozen lifetimes, one
// diurnal cycle and a small persistent crowd — small enough to race.
func serveShort(seed uint64) serveProfile {
	return serveProfile{
		horizon: 120_000,
		chains: []cluster.ChainSpec{
			{Name: "c0", AccelCost: 1, ReserveSlots: 6},
			{Name: "c1", AccelCost: 1, ReserveSlots: 6},
			{Name: "c2", AccelCost: 1, ReserveSlots: 6},
			{Name: "c3", AccelCost: 1, ReserveSlots: 6},
			{Name: "c4", AccelCost: 25, ReserveSlots: 6},
			{Name: "c5", AccelCost: 25, ReserveSlots: 6},
		},
		traffic: cluster.Profile{
			Seed: seed, Start: 1_000, End: 60_000,
			MeanSpacing: 2_000, MinLifetime: 10_000, MeanLifetime: 20_000,
			Periods:       []int64{300, 600},
			Priorities:    []int{1, 5},
			DiurnalPeriod: 60_000, DiurnalAmplitude: 50,
			FlashAt: 40_000, FlashCount: 4, FlashSpacing: 200,
			FlashPeriod: 300, FlashLifetime: 0,
		},
		rebalance: cluster.RebalanceConfig{
			Every: 5_000, Start: 20_000, Stop: 85_000,
			HighWater: big.NewRat(1, 10), MaxMovesPerTick: 2,
		},
		cut:         90_000,
		minAdmitted: 20,
	}
}

// serveSolver is the sustained-serving solver stack: the exactly-re-verified
// float fast path for every re-solve, with the exact warm fixed point (no
// rational tableau) as verification fallback. The production default routes
// small instances to the exact ILP tier for byte-stable optimality, but at
// serve's churn rate — thousands of admissions, departures and migrations,
// each a per-chain Algorithm 1 re-solve — the dense big.Rat tableau is the
// dominant campaign cost. The fast path keeps every guarantee (no float
// value reaches the platform without passing exact verification) at a
// fraction of it, and float64 arithmetic is deterministic, so the transcript
// stays byte-stable.
func serveSolver() solve.Solver {
	exact := &solve.Exact{ILPStreamCap: 1}
	return &solve.Incremental{Inner: &solve.Fast{Fallback: exact}}
}

// serveConfig mirrors chaosConfig's fleet parameters (one shared fixture
// keeps the campaign surface comparable) with the rebalancer armed.
func serveConfig(p serveProfile) cluster.Config {
	return cluster.Config{
		EntryCost:    15,
		ExitCost:     1,
		HopLatency:   1,
		Reconfig:     50,
		DrainTimeout: 600,
		Recovery: gateway.Recovery{
			Enabled: true, RetryLimit: 2,
			Checkpoint: 4, CheckpointCost: 5, ValueExact: true,
		},
		PerSlotCost:      10,
		Doctor:           fault.DoctorConfig{Window: 4_000, StallLimit: 3, DistinctStreams: 1},
		Retry:            fault.Backoff{Base: 200, Factor: 2, Cap: 3_200, Limit: 8},
		ResidentPeriod:   150,
		ResidentPriority: 100,
		InCapacity:       512,
		OutCapacity:      256,
		CollectOutputs:   true,
		Solver:           serveSolver(),
		ReclaimSlots:     true,
		Rebalance:        p.rebalance,
		Chains:           p.chains,
	}
}

// serveCampaign writes the byte-deterministic campaign transcript that the
// golden gate diffs; floatflow holds it to exact output.
//
//accellint:transcript golden transcript must stay float-free
func serveCampaign(w io.Writer, short bool, seed uint64) error {
	p := serveSoak(seed)
	name := "full campaign"
	if short {
		p = serveShort(seed)
		name = "short profile"
	}
	tr := p.traffic
	fmt.Fprintf(w, "serve — sustained fleet serving campaign (%s, seed %d, horizon %d)\n", name, seed, p.horizon)
	fmt.Fprintf(w, "fleet:")
	for _, cs := range p.chains {
		fmt.Fprintf(w, " %s(rho=%d)", cs.Name, cs.AccelCost)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "traffic: arrivals in [%d,%d] spacing~%d lifetimes [%d,%d] periods=%v\n",
		tr.Start, tr.End, tr.MeanSpacing, tr.MinLifetime, tr.MeanLifetime, tr.Periods)
	fmt.Fprintf(w, "         diurnal %d/%d%%  flash %d@%d (persistent)\n",
		tr.DiurnalPeriod, tr.DiurnalAmplitude, tr.FlashCount, tr.FlashAt)
	fmt.Fprintf(w, "rebalance: every %d in [%d,%d] high-water=%s moves/tick<=%d\n\n",
		p.rebalance.Every, p.rebalance.Start, p.rebalance.Stop,
		p.rebalance.HighWater.RatString(), p.rebalance.MaxMovesPerTick)

	c, err := cluster.New(serveConfig(p))
	if err != nil {
		return err
	}
	ops := p.traffic.Ops()
	cluster.Schedule(c, ops)
	c.Run(p.horizon)

	arrivals, departures := 0, 0
	for _, op := range ops {
		if op.Depart {
			departures++
		} else {
			arrivals++
		}
	}
	arrivals -= tr.FlashCount // background only; the crowd is reported apart
	counts := map[cluster.EventKind]int{}
	for _, e := range c.Events() {
		counts[e.Kind]++
	}
	fmt.Fprintf(w, "=== traffic summary ===\n")
	fmt.Fprintf(w, "background lifetimes: %d (departures scheduled %d)  flash arrivals: %d\n",
		arrivals, departures, tr.FlashCount)
	fmt.Fprintf(w, "admitted=%d rejected=%d departed=%d shed=%d readmitted=%d lost=%d retries=%d\n",
		counts[cluster.EvArrive], counts[cluster.EvReject], counts[cluster.EvDepart],
		counts[cluster.EvShed], counts[cluster.EvReadmit], counts[cluster.EvLost], counts[cluster.EvRetry])

	fleet := c.FleetLog()
	fmt.Fprintf(w, "\n=== utilisation spread timeline (%d ticks) ===\n", len(fleet))
	fmt.Fprintf(w, "%9s %12s %12s %12s %7s %7s\n", "at", "spread", "min-util", "max-util", "parked", "placing")
	for _, fs := range fleet {
		lo, hi := "-", "-"
		var min, max *big.Rat
		for _, ct := range fs.Chains {
			if ct.Util == nil {
				continue
			}
			if min == nil || ct.Util.Cmp(min) < 0 {
				min = ct.Util
			}
			if max == nil || ct.Util.Cmp(max) > 0 {
				max = ct.Util
			}
		}
		if min != nil {
			lo, hi = min.RatString(), max.RatString()
		}
		fmt.Fprintf(w, "%9d %12s %12s %12s %7d %7d\n",
			fs.At, fs.Spread.RatString(), lo, hi, fs.Parked, fs.Placing)
	}

	moves := 0
	allWithin := true
	fmt.Fprintf(w, "\n=== rebalance moves ===\n")
	fmt.Fprintf(w, "%-8s %-4s %-4s %9s %9s %9s  %s\n",
		"stream", "from", "to", "at", "measured", "bound", "within-bound")
	for _, s := range c.LadderSteps() {
		if s.Rung != "rebalance" {
			continue
		}
		moves++
		within := s.Measured <= s.Bound
		if !within {
			allWithin = false
		}
		fmt.Fprintf(w, "%-8s %-4s %-4s %9d %9d %9d  within-bound=%v replay=%d\n",
			s.Stream, s.From, s.To, s.At, s.Measured, s.Bound, within, s.Replay)
	}
	fmt.Fprintf(w, "rebalance ticks=%d plans=%d completed moves=%d\n",
		len(fleet), counts[cluster.EvRebalance], counts[cluster.EvRebalanced])
	fmt.Fprintf(w, "all rebalance moves within composed bound: %v\n", allWithin)

	final := c.Stats()
	fmt.Fprintf(w, "\n=== chains (final telemetry) ===\n")
	for _, ct := range final.Chains {
		util := "-"
		if ct.Util != nil {
			util = ct.Util.RatString()
		}
		fmt.Fprintf(w, "  %-4s %-8s %2d streams  util=%-8s bufpeak=%d\n",
			ct.Name, ct.State, ct.Streams, util, ct.BufferPeak)
	}

	byState := map[string]int{}
	var blocks, samples, overflows uint64
	contiguityOK := true
	for _, ss := range c.StreamStatuses() {
		byState[ss.State]++
		blocks += ss.Blocks
		samples += ss.Samples
		overflows += ss.Overflow
		if ss.State == "live" && !ss.ContiguousOutputs {
			contiguityOK = false
			fmt.Fprintf(w, "  NON-CONTIGUOUS %s\n", ss.Name)
		}
	}
	fmt.Fprintf(w, "\n=== stream summary ===\n")
	fmt.Fprintf(w, "live=%d departed=%d parked=%d rejected=%d placing=%d\n",
		byState["live"], byState["departed"], byState["parked"], byState["rejected"], byState["placing"])
	fmt.Fprintf(w, "blocks=%d samples=%d overflows=%d\n", blocks, samples, overflows)
	fmt.Fprintf(w, "every live stream contiguous (zero lost or duplicated samples): %v\n", contiguityOK)

	fmt.Fprintf(w, "\n=== fleet conformance (after t=%d) ===\n", p.cut)
	res, err := c.Conformance(conformance.Options{
		After: p.cut, MinBlocks: 3, FilterQueued: true,
		ReplayBound: int64(serveConfig(p).Recovery.Checkpoint),
	})
	if err != nil {
		return err
	}
	violations := 0
	for _, cc := range res {
		fmt.Fprintf(w, "  chain %-4s %d streams, %d blocks checked, %d violations\n",
			cc.Chain, cc.Streams, cc.Result.Checked, len(cc.Result.Violations))
		for _, v := range cc.Result.Violations {
			fmt.Fprintf(w, "    %s\n", v.String())
			violations++
		}
	}
	fmt.Fprintf(w, "fleet conformance violations: %d\n", violations)

	if admitted := counts[cluster.EvArrive]; admitted < p.minAdmitted {
		return fmt.Errorf("serve: %d admitted background lifetimes, want >= %d", admitted, p.minAdmitted)
	}
	if !allWithin {
		return fmt.Errorf("serve: a rebalance move exceeded its composed bound")
	}
	if !contiguityOK {
		return fmt.Errorf("serve: a live stream lost or duplicated samples")
	}
	if violations > 0 {
		return fmt.Errorf("serve: %d fleet conformance violations", violations)
	}
	return nil
}
