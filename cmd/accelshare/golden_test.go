package main

// Golden-file harness shared by every campaign command whose output is an
// acceptance artifact (faults, admit, failover, chaos). Each campaign must
// be byte-identical run-to-run AND byte-identical to the checked-in golden.
// After verifying a behavioural change that legitimately moves the output,
// regenerate every golden with
//
//	go test ./cmd/accelshare -run Golden -update
//
// and review the diff before committing.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata golden files with current campaign output")

// checkGolden compares got against testdata/<name>, rewriting the file
// instead when -update is set. On mismatch it reports the first divergent
// line so the failure is actionable without a manual diff.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (regenerate with -update): %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("output diverged from %s at line %d:\n got: %s\nwant: %s", path, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("output diverged from %s: got %d lines, want %d lines", path, len(gotLines), len(wantLines))
}

// runTwice runs a campaign twice and fails unless the two outputs are
// byte-identical (no map iteration, no wall clock, no randomness), then
// returns the output for the golden comparison.
func runTwice(t *testing.T, name string, campaign func(w *bytes.Buffer) error) []byte {
	t.Helper()
	var a, b bytes.Buffer
	if err := campaign(&a); err != nil {
		t.Fatalf("%s run 1: %v", name, err)
	}
	if err := campaign(&b); err != nil {
		t.Fatalf("%s run 2: %v", name, err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("%s output differs between two identical runs", name)
	}
	return a.Bytes()
}

func TestFaultsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("the fault campaign runs many scenarios")
	}
	got := runTwice(t, "faults", func(w *bytes.Buffer) error {
		return faultCampaign(w, 50_000)
	})
	checkGolden(t, "faults.golden", got)
}

func TestAdmitGolden(t *testing.T) {
	got := runTwice(t, "admit", func(w *bytes.Buffer) error {
		return admitCampaign(w, defaultAdmitScript, 60_000, 2)
	})
	checkGolden(t, "admit.golden", got)
}

func TestChaosGolden(t *testing.T) {
	got := runTwice(t, "chaos short", func(w *bytes.Buffer) error {
		return chaosCampaign(w, true, 1789)
	})
	checkGolden(t, "chaos_short.golden", got)
	for _, want := range []string{
		"failover ", "evacuate ", "shed ", "readmit ",
		"all ladder steps within bound: true",
		"every live stream contiguous (zero lost or duplicated samples): true",
		"fleet conformance violations: 0",
	} {
		if !bytes.Contains(got, []byte(want)) {
			t.Errorf("chaos short output missing %q", want)
		}
	}
}

// TestChaosSoakDeterministic runs the full soak twice; the short profile's
// golden already pins bytes, this pins the long horizon (three kills, a
// heal, a flash crowd) without checking in a large golden.
func TestChaosSoakDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full soak twice")
	}
	got := runTwice(t, "chaos soak", func(w *bytes.Buffer) error {
		return chaosCampaign(w, false, 1789)
	})
	kills := bytes.Count(got, []byte("] verdict "))
	if kills < 3 {
		t.Errorf("full soak saw %d chain verdicts, want >= 3", kills)
	}
	for _, want := range []string{"] heal ", "] shed ", "] readmit ", "flash:"} {
		if !bytes.Contains(got, []byte(want)) {
			t.Errorf("full soak output missing %q", want)
		}
	}
	if n := fmt.Sprintf("fleet conformance violations: 0"); !bytes.Contains(got, []byte(n)) {
		t.Errorf("full soak reported conformance violations")
	}
}

func TestServeGolden(t *testing.T) {
	got := runTwice(t, "serve short", func(w *bytes.Buffer) error {
		return serveCampaign(w, true, 24601)
	})
	checkGolden(t, "serve_short.golden", got)
	if moves := bytes.Count(got, []byte("within-bound=true")); moves < 1 {
		t.Errorf("serve short completed %d rebalance moves, want >= 1", moves)
	}
	for _, want := range []string{
		"all rebalance moves within composed bound: true",
		"every live stream contiguous (zero lost or duplicated samples): true",
		"fleet conformance violations: 0",
	} {
		if !bytes.Contains(got, []byte(want)) {
			t.Errorf("serve short output missing %q", want)
		}
	}
}

// TestServeSoakGolden pins the full campaign: over a thousand admitted
// background lifetimes, four diurnal cycles, a persistent flash crowd and
// dozens of live migrations — the transcript is aggregated, so the golden
// stays reviewable despite the ~2M-cycle horizon.
func TestServeSoakGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full serving campaign twice")
	}
	got := runTwice(t, "serve soak", func(w *bytes.Buffer) error {
		return serveCampaign(w, false, 24601)
	})
	checkGolden(t, "serve.golden", got)
	if moves := bytes.Count(got, []byte("within-bound=true")); moves < 10 {
		t.Errorf("full campaign completed %d rebalance moves, want >= 10", moves)
	}
	// The flash crowd must itself have been spread by the rebalancer: at
	// least one f-stream appears in the move table.
	if !bytes.Contains(got, []byte("f0")) {
		t.Errorf("no flash-crowd stream was ever migrated")
	}
	for _, want := range []string{
		"all rebalance moves within composed bound: true",
		"every live stream contiguous (zero lost or duplicated samples): true",
		"fleet conformance violations: 0",
	} {
		if !bytes.Contains(got, []byte(want)) {
			t.Errorf("full campaign output missing %q", want)
		}
	}
}
