package main

// memopt: the §V-F branch-and-bound — memory-optimal block sizes versus
// the Algorithm-1 minimum.

import (
	"flag"
	"fmt"
	"math/big"

	"accelshare/internal/core"
)

func init() {
	register("memopt", "memory-optimal block sizes via branch and bound (§V-F): min blocks ≠ min memory", runMemOpt)
}

func runMemOpt(args []string) error {
	fs := flag.NewFlagSet("memopt", flag.ContinueOnError)
	window := fs.Int("window", 6, "blocks above the minimum to explore per stream")
	burst := fs.Int64("burst", 5, "producer burst size in samples (packetised software producers)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := &core.System{
		Chain:   core.Chain{Name: "memopt", AccelCosts: []uint64{2}, EntryCost: 3, ExitCost: 1, NICapacity: 2},
		ClockHz: 1_000_000,
		Streams: []core.Stream{
			{Name: "s0", Rate: big.NewRat(34_000, 1), Reconfig: 40, ProducerBurst: *burst},
			{Name: "s1", Rate: big.NewRat(34_000, 1), Reconfig: 40, ProducerBurst: *burst},
		},
	}
	fmt.Println("§V-F — memory-optimal block sizes (branch and bound over the SDF abstraction)")
	fmt.Printf("two streams, producers write %d-sample packets; per-stream buffers sized by\n", *burst)
	fmt.Println("exact state-space search under the stream's rate constraint")
	res, err := s.OptimalBlockSizesForMemory(*window, 1)
	if err != nil {
		return err
	}
	fmt.Printf("\n%-26s %14s %14s\n", "", "blocks", "total memory")
	fmt.Printf("%-26s %14v %14d\n", "Algorithm-1 minimum", res.MinBlocks, res.MinBlocksMemory)
	fmt.Printf("%-26s %14v %14d\n", "memory optimum", res.Blocks, res.TotalMemory)
	fmt.Printf("\nexplored %d assignments; per-stream capacities at the optimum: %v\n", res.Explored, res.Capacities)
	if res.TotalMemory < res.MinBlocksMemory {
		fmt.Println("\nLARGER blocks need LESS memory here — the Fig. 8 non-monotonicity at system")
		fmt.Println("level, and why §V-F pairs Algorithm 1 with an optional branch-and-bound pass.")
	} else {
		fmt.Println("\nfor these parameters the minimum blocks happen to also minimise memory.")
	}
	return nil
}
