package main

// faults: the robustness campaign. A grid of deterministic fault scenarios
// (fault kind × target stream × onset) runs against a three-stream shared
// chain with watchdog recovery enabled, and the table reports per stream
// whether the fault was detected, retried, quarantined — and whether the
// healthy streams kept meeting their throughput constraint μs (zero source
// overflows) despite the disturbance.
//
// Everything is deterministic: two runs of the campaign produce
// byte-identical output (a regression test enforces it).

import (
	"flag"
	"fmt"
	"io"
	"os"

	"accelshare/internal/accel"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
	"accelshare/internal/sim"
)

func init() {
	register("faults", "fault-injection campaign: detection, block retry, quarantine (robustness)", runFaults)
}

func runFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ContinueOnError)
	horizon := fs.Int64("horizon", 200_000, "cycles to simulate per scenario")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *horizon <= 0 {
		// sim.Time is unsigned: a negative horizon would wrap to ~2^64 and
		// run the endless-source campaign effectively forever.
		return fmt.Errorf("faults: -horizon must be positive, got %d", *horizon)
	}
	return faultCampaign(os.Stdout, sim.Time(*horizon))
}

// campaignConfig is the workload every scenario runs: three streams over
// one accelerator, ε=15, ρA=1, δ=1, Rs=50, η=16. τ̂ = 50+18·15 = 320 per
// stream (Eq. 2), γ̂ = 960 over three streams (Eq. 4); at one sample per
// 75 cycles each stream needs 1200 cycles per block > γ̂, so the fault-free
// system meets every constraint with slack. Checkpointed scenarios override
// the recovery config (K=4, value-exact) and pay the adjusted Eq. 2 term
// τ̂(K) = 50 + (16+2·4)·15 + 3·5 = 425 instead.
func campaignConfig(plan *fault.Plan, rec gateway.Recovery) mpsoc.Config {
	stream := func(name string) mpsoc.StreamSpec {
		return mpsoc.StreamSpec{
			Name: name, Block: 16, Decimation: 1, Reconfig: 50,
			InCapacity: 128, OutCapacity: 64,
			SourcePeriod: 75,
			Engines:      []accel.Engine{&accel.Gain{}},
		}
	}
	return mpsoc.Config{
		Name:              "campaign",
		EntryCost:         15,
		ExitCost:          1,
		Mode:              gateway.ReconfigFixed,
		HopLatency:        1,
		Accels:            []mpsoc.AccelSpec{{Name: "acc", Cost: 1, NICapacity: 2}},
		Streams:           []mpsoc.StreamSpec{stream("s0"), stream("s1"), stream("s2")},
		DrainTimeout:      600,
		Recovery:          rec,
		Faults:            plan,
		RecordTurnarounds: true,
	}
}

type faultScenario struct {
	name string
	plan *fault.Plan
	// ckpt enables checkpointed recovery with this interval (0 = plain
	// block-start retry).
	ckpt int64
}

// campaignRecovery is the per-scenario recovery config: checkpointed
// scenarios snapshot every ckpt input samples with value-exact staging.
func campaignRecovery(ckpt int64) gateway.Recovery {
	rec := gateway.Recovery{Enabled: true, RetryLimit: 2}
	if ckpt > 0 {
		rec.Checkpoint = ckpt
		rec.CheckpointCost = 5
		rec.ValueExact = true
	}
	return rec
}

// campaignScenarios builds the fault grid. Onsets are in absolute engine
// samples (engine faults), block numbers (lost idles) or cycles (wedges);
// wedge durations exceed two watchdog windows so detection is guaranteed.
func campaignScenarios() []faultScenario {
	var scs []faultScenario
	scs = append(scs, faultScenario{name: "baseline (no fault)", plan: &fault.Plan{}})
	for stream := 0; stream < 3; stream++ {
		scs = append(scs,
			faultScenario{
				name: fmt.Sprintf("drop-sample s%d@24", stream),
				plan: &fault.Plan{Faults: []fault.Fault{
					{Kind: fault.DropSample, Stream: stream, Site: 0, Sample: 24},
				}},
			},
			faultScenario{
				name: fmt.Sprintf("stick-engine s%d@24", stream),
				plan: &fault.Plan{Faults: []fault.Fault{
					{Kind: fault.StickEngine, Stream: stream, Site: 0, Sample: 24},
				}},
			},
			faultScenario{
				name: fmt.Sprintf("lose-idle s%d@blk3", stream),
				plan: &fault.Plan{Faults: []fault.Fault{
					{Kind: fault.LoseIdle, Stream: stream, Block: 3},
				}},
			},
		)
	}
	scs = append(scs,
		faultScenario{
			name: "corrupt-sample s1@24",
			plan: &fault.Plan{Faults: []fault.Fault{
				{Kind: fault.CorruptSample, Stream: 1, Site: 0, Sample: 24, Mask: 0xFF},
			}},
		},
		faultScenario{
			name: "wedge-link entry@5k/1.5k",
			plan: &fault.Plan{Faults: []fault.Fault{
				{Kind: fault.WedgeLink, Site: 0, At: 5_000, Duration: 1_500},
			}},
		},
		faultScenario{
			name: "wedge-node entry@5k/1.5k",
			plan: &fault.Plan{Faults: []fault.Fault{
				{Kind: fault.WedgeNode, Site: 0, At: 5_000, Duration: 1_500},
			}},
		},
		// Checkpointed scenarios: the same transient drop now resumes from
		// the last K-sample checkpoint — the replay column shows sub-block
		// replay work (≤ K per retry) instead of full-block replay — and a
		// permanent stick still walks the retry ladder into quarantine.
		faultScenario{
			name: "ckpt-K4 drop-sample s0@29",
			plan: &fault.Plan{Faults: []fault.Fault{
				{Kind: fault.DropSample, Stream: 0, Site: 0, Sample: 29},
			}},
			ckpt: 4,
		},
		faultScenario{
			name: "ckpt-K4 stick-engine s0@24",
			plan: &fault.Plan{Faults: []fault.Fault{
				{Kind: fault.StickEngine, Stream: 0, Site: 0, Sample: 24},
			}},
			ckpt: 4,
		},
	)
	return scs
}

// faultCampaign writes the byte-deterministic campaign transcript that the
// golden gate diffs; floatflow holds it to exact output.
//
//accellint:transcript golden transcript must stay float-free
func faultCampaign(w io.Writer, horizon sim.Time) error {
	fmt.Fprintln(w, "Fault-injection campaign: 3 streams share one accelerator chain")
	fmt.Fprintln(w, "(ε=15, ρA=1, δ=1, Rs=50, η=16 → τ̂=320, γ̂=960; source period 75 cyc/sample)")
	fmt.Fprintf(w, "watchdog window 600 cyc, retry limit 2, horizon %d cycles per scenario\n", horizon)
	fmt.Fprintln(w, "verdict per stream: PASS = zero source overflows (throughput constraint μs")
	fmt.Fprintln(w, "met over the whole horizon); QUARANTINED = removed after the retry budget;")
	fmt.Fprintln(w, "a quarantined stream's own FAIL is expected — the healthy ones must PASS.")
	fmt.Fprintln(w, "replay = input words re-issued by retries over the whole run: full blocks")
	fmt.Fprintln(w, "(η=16 each) without checkpointing, at most K per retry with it (ckpt-K4).")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-26s %-4s %8s %7s %8s %7s %10s %s\n",
		"scenario", "strm", "blocks", "stalls", "retries", "replay", "overflows", "verdict")

	allHealthyPass := true
	for _, sc := range campaignScenarios() {
		sys, err := mpsoc.Build(campaignConfig(sc.plan, campaignRecovery(sc.ckpt)))
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		sys.Run(horizon)
		rep := sys.Report()
		for i, sr := range rep.PerStream {
			verdict := "PASS"
			switch {
			case sr.Quarantined:
				verdict = "QUARANTINED"
			case sr.Overflows > 0:
				verdict = "FAIL"
				allHealthyPass = false
			}
			var replayed int64
			for _, r := range sys.Strs[i].GW.Turnarounds {
				replayed += r.Replayed
			}
			name := ""
			if i == 0 {
				name = sc.name
			}
			fmt.Fprintf(w, "%-26s %-4s %8d %7d %8d %7d %10d %s\n",
				name, sr.Name, sr.Blocks, sr.Stalls, sr.Retries, replayed, sr.Overflows, verdict)
		}
	}
	fmt.Fprintln(w)
	if allHealthyPass {
		fmt.Fprintln(w, "all non-quarantined streams met their throughput constraints in every")
		fmt.Fprintln(w, "scenario: transient faults cost one block retry (bounded by K when")
		fmt.Fprintln(w, "checkpointed), permanent faults cost one stream — never the platform.")
	} else {
		fmt.Fprintln(w, "WARNING: a non-quarantined stream missed its throughput constraint.")
	}
	return nil
}
