package main

// Model-export utilities: inspect the Fig. 5 / Fig. 7 dataflow graphs.

import (
	"flag"
	"fmt"
	"math/big"

	"accelshare/internal/core"
)

func init() {
	register("dot", "export the Fig. 5 CSDF or Fig. 7 SDF model of a stream as Graphviz dot", runDot)
}

func runDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ContinueOnError)
	eta := fs.Int64("eta", 8, "block size ηs")
	abstract := fs.Bool("sdf", false, "export the single-actor SDF abstraction instead of the CSDF model")
	accels := fs.Int("accels", 2, "accelerators in the chain")
	if err := fs.Parse(args); err != nil {
		return err
	}
	costs := make([]uint64, *accels)
	for i := range costs {
		costs[i] = 1
	}
	s := &core.System{
		Chain:   core.Chain{Name: "export", AccelCosts: costs, EntryCost: 15, ExitCost: 1, NICapacity: 2},
		ClockHz: 100_000_000,
		Streams: []core.Stream{
			{Name: "s", Rate: big.NewRat(1000, 1), Reconfig: 4100, Block: *eta},
			{Name: "other", Rate: big.NewRat(1000, 1), Reconfig: 4100, Block: *eta},
		},
	}
	p := core.ModelParams{
		ProducerCost: 1, ConsumerCost: 1,
		InputCapacity: 2 * *eta, OutputCapacity: 2 * *eta,
		IncludeInterference: true,
	}
	if *abstract {
		m, err := s.BuildSDF(0, p)
		if err != nil {
			return err
		}
		fmt.Print(m.Graph.DOT())
		return nil
	}
	m, err := s.BuildCSDF(0, p)
	if err != nil {
		return err
	}
	fmt.Print(m.Graph.DOT())
	return nil
}
