package main

// sharing-sweep: the design-space experiment the paper's numbers imply but
// never tabulates — how the degree of sharing trades hardware area against
// block sizes (buffer memory) and worst-case latency. The paper's
// demonstrator sits at one end (all four streams on one gateway pair);
// private accelerators sit at the other (Table I's non-shared column).

import (
	"flag"
	"fmt"
	"math/big"

	"accelshare/internal/core"
	"accelshare/internal/cost"
)

func init() {
	register("sharing-sweep", "sharing degree vs area, block sizes and latency (design space around §VI)", runSharingSweep)
}

// sweepChain builds a PAL-parameter analysis system for the given stream
// subset (rates in S/s).
func sweepChain(name string, rates []int64, clockHz int64) *core.System {
	s := &core.System{
		Chain: core.Chain{
			Name:       name,
			AccelCosts: []uint64{1, 1},
			EntryCost:  15,
			ExitCost:   1,
			NICapacity: 2,
		},
		ClockHz: clockHz,
	}
	for i, r := range rates {
		s.Streams = append(s.Streams, core.Stream{
			Name:     fmt.Sprintf("%s.s%d", name, i),
			Rate:     big.NewRat(r, 1),
			Reconfig: 4100,
		})
	}
	return s
}

func runSharingSweep(args []string) error {
	fs := flag.NewFlagSet("sharing-sweep", flag.ContinueOnError)
	clock := fs.Int64("clock", 100_000_000, "platform clock in Hz")
	if err := fs.Parse(args); err != nil {
		return err
	}
	const (
		fast = 44100 * 64
		slow = 44100 * 8
	)
	comps := cost.PaperComponents()
	accelSet := comps[cost.FIRDownsample].Add(comps[cost.CORDIC])
	gw := cost.GatewayPair()

	type config struct {
		name   string
		chains [][]int64 // stream rates per gateway pair
	}
	configs := []config{
		{"1 pair × 4 streams (paper §VI)", [][]int64{{fast, fast, slow, slow}}},
		{"2 pairs × 2 streams (per stage)", [][]int64{{fast, fast}, {slow, slow}}},
		{"2 pairs × 2 streams (per channel)", [][]int64{{fast, slow}, {fast, slow}}},
		{"4 pairs × 1 stream", [][]int64{{fast}, {fast}, {slow}, {slow}}},
	}

	fmt.Println("Sharing-degree design space (PAL rates, ε=15, ρA=δ=1, Rs=4100, blocks ÷8)")
	fmt.Println("area = gateway pairs + one CORDIC+FIR set per pair;")
	fmt.Println("memory ≈ Σ over streams of (input 2η + output 2η/8) from the buffer bounds;")
	fmt.Println("latency = worst per-sample bound L̂ = ⌈(η−1)/μ⌉+γ̂ over all streams")
	fmt.Printf("\n%-34s %10s %10s %12s %12s\n", "configuration", "slices", "Σηs", "mem(words)", "worst L̂(µs)")

	for _, c := range configs {
		area := accelSet.Scale(len(c.chains)).Add(gw.Scale(len(c.chains)))
		var totalBlocks, totalMem int64
		var worstLat uint64
		feasible := true
		for ci, rates := range c.chains {
			s := sweepChain(fmt.Sprintf("c%d", ci), rates, *clock)
			gr := make([]int64, len(rates))
			for i := range gr {
				gr[i] = 8
			}
			res, err := s.ComputeBlockSizesRounded(gr)
			if err != nil {
				feasible = false
				break
			}
			for i := range s.Streams {
				totalBlocks += res.Blocks[i]
				in, err := s.InputBufferBound(i)
				if err != nil {
					return err
				}
				out, err := s.OutputBufferBound(i, 8)
				if err != nil {
					return err
				}
				totalMem += in + out
				lat, err := s.WorstCaseSampleLatency(i)
				if err != nil {
					return err
				}
				if lat > worstLat {
					worstLat = lat
				}
			}
		}
		if !feasible {
			fmt.Printf("%-34s %10d %10s %12s %12s\n", c.name, area.Slices, "-", "-", "infeasible")
			continue
		}
		fmt.Printf("%-34s %10d %10d %12d %12.0f\n",
			c.name, area.Slices, totalBlocks, totalMem, float64(worstLat)/(float64(*clock)/1e6))
	}
	nonShared := accelSet.Scale(4)
	fmt.Printf("%-34s %10d %10s %12s %12s\n", "4 private sets, no gateways", nonShared.Slices, "-", "(per-sample)", "(minimal)")
	fmt.Println("\nmore sharing → less area but larger blocks, more buffer memory and higher")
	fmt.Println("worst-case latency: the quantitative trade the paper's §VI point buys with")
	fmt.Println("its 63.5% area saving. The per-stage split also shows WHAT is shared matters:")
	fmt.Println("segregating the fast streams from the slow ones changes Σηs at equal area.")
	return nil
}
