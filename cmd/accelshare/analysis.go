package main

// Analysis-layer experiments: everything derivable from the dataflow models
// and the ILP without running the cycle-level simulator.

import (
	"flag"
	"fmt"
	"math/big"
	"os"

	"accelshare/internal/buffer"
	"accelshare/internal/core"
	"accelshare/internal/cost"
	"accelshare/internal/dataflow"
	"accelshare/internal/trace"
)

// palModel is the paper's §VI-A analysis configuration.
func palModel(clockHz int64) *core.System {
	mk := func(name string, rate int64) core.Stream {
		return core.Stream{Name: name, Rate: big.NewRat(rate, 1), Reconfig: 4100}
	}
	return &core.System{
		Chain: core.Chain{
			Name:       "cordic+fir",
			AccelCosts: []uint64{1, 1},
			EntryCost:  15,
			ExitCost:   1,
			NICapacity: 2,
		},
		Streams: []core.Stream{
			mk("ch1.stage1", 44100*64),
			mk("ch2.stage1", 44100*64),
			mk("ch1.stage2", 44100*8),
			mk("ch2.stage2", 44100*8),
		},
		ClockHz: clockHz,
	}
}

func init() {
	register("fig6", "execution schedule of one block (Fig. 6) and the τ̂s bound (Eq. 2)", runFig6)
	register("fig8", "non-monotone minimum buffer capacities vs block size (Fig. 8)", runFig8)
	register("fig11", "per-component hardware costs (Fig. 11)", runFig11)
	register("table1", "shared vs non-shared hardware cost savings (Table I)", runTable1)
	register("blocksizes", "minimum block sizes via Algorithm 1 (paper §VI-A: 10136 / 1267)", runBlockSizes)
	register("breakeven", "stream count at which sharing pays for the gateway pair", runBreakEven)
	register("refinement", "the-earlier-the-better check: CSDF refines the single-actor SDF (A2)", runRefinement)
}

func runFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ContinueOnError)
	eta := fs.Int64("eta", 16, "block size ηs to schedule")
	width := fs.Int("width", 100, "gantt width in columns")
	svgPath := fs.String("svg", "", "also write the schedule as an SVG file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := &core.System{
		Chain:   core.Chain{Name: "demo", AccelCosts: []uint64{1}, EntryCost: 15, ExitCost: 1, NICapacity: 2},
		ClockHz: 100_000_000,
		Streams: []core.Stream{{Name: "s", Rate: big.NewRat(1, 1), Reconfig: 4100, Block: *eta}},
	}
	sched, err := s.ScheduleBlock(0)
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 6 — execution schedule of one block of η = %d samples\n", *eta)
	fmt.Printf("(ε = 15, ρA = 1, δ = 1, Rs = 4100 cycles; the long leading vG0 phase is Rs + ε)\n\n")
	ga := trace.FromFirings(sched.Model.Graph, sched.Trace)
	fmt.Print(ga.Render(*width))
	fmt.Println()
	fmt.Print(ga.Summary())
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(ga.SVG(1000)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	fmt.Printf("\nmeasured block time τs  = %7d cycles\n", sched.Tau)
	fmt.Printf("Eq. 2 bound      τ̂s  = %7d cycles (Rs + (η+2)·max(ε,ρA,δ))\n", sched.TauHat)
	if sched.Tau > sched.TauHat {
		return fmt.Errorf("BOUND VIOLATED: τ > τ̂")
	}
	fmt.Printf("bound holds with %d cycles slack (%.2f%%)\n",
		sched.TauHat-sched.Tau, 100*float64(sched.TauHat-sched.Tau)/float64(sched.TauHat))

	// Validate the bound across a sweep of block sizes (E2).
	fmt.Printf("\nτ vs τ̂ sweep:\n%8s %10s %10s %8s\n", "η", "τ", "τ̂", "slack")
	for _, e := range []int64{1, 2, 4, 16, 64, 256, 1024} {
		s.Streams[0].Block = e
		sc, err := s.ScheduleBlock(0)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %10d %10d %8d\n", e, sc.Tau, sc.TauHat, sc.TauHat-sc.Tau)
		if sc.Tau > sc.TauHat {
			return fmt.Errorf("bound violated at η=%d", e)
		}
	}
	return nil
}

func runFig8(args []string) error {
	fs := flag.NewFlagSet("fig8", flag.ContinueOnError)
	maxEta := fs.Int64("max", 8, "largest block size to size buffers for")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("Fig. 8 — minimum buffer capacities are non-monotone in the block size")
	fmt.Println("model: producer emits 5 tokens/firing, consumer takes ηs/firing (Fig. 8a)")
	fmt.Printf("\n%8s %12s %18s %18s\n", "ηs", "min αs", "paper Fig. 8b", "p+c-gcd(p,c)")
	paper := map[int64]string{1: "5", 2: "6", 3: "7", 4: "8", 5: "5"}
	for eta := int64(1); eta <= *maxEta; eta++ {
		g := dataflow.NewGraph("fig8")
		a := g.AddActor("vA", 5)
		b := g.AddActor("vB", 0)
		fwd, back := g.AddBuffer("ab", a, b, dataflow.Const(5), dataflow.Const(eta), 1)
		sz := &buffer.Sizer{G: g, Channels: []buffer.Channel{{Fwd: fwd, Back: back}}, Monitor: a}
		maxTh, err := sz.MaxThroughput()
		if err != nil {
			return err
		}
		caps, err := sz.MinCapacitiesForThroughput(maxTh)
		if err != nil {
			return err
		}
		pp := paper[eta]
		if pp == "" {
			pp = "-"
		}
		fmt.Printf("%8d %12d %18s %18d\n", eta, caps[0], pp, buffer.ClassicalMinCapacity(5, eta))
	}
	fmt.Println("\nnon-monotonicity: α(2) > α(5) while α(1) < α(2) — exactly the paper's claim;")
	fmt.Println("minimising block sizes does not minimise buffer memory.")
	return nil
}

func runFig11(args []string) error {
	fmt.Println("Fig. 11 — hardware costs of components in a Virtex 6 FPGA")
	fmt.Println("(per-component numbers are the paper's synthesis results; derived rows computed)")
	fmt.Println()
	fmt.Print(cost.FormatFig11())
	return nil
}

func runTable1(args []string) error {
	fmt.Println("Table I — hardware costs and savings in a Virtex 6 FPGA")
	fmt.Println()
	fmt.Print(cost.FormatTableI())
	fmt.Println("\npaper reports: savings 20890 slices (63.5%) and 33712 LUTs (66.3%)")
	return nil
}

func runBlockSizes(args []string) error {
	fs := flag.NewFlagSet("blocksizes", flag.ContinueOnError)
	clock := fs.Int64("clock", 100_000_000, "platform clock in Hz")
	granularity := fs.Int64("granularity", 0, "round blocks up to this multiple (0 = exact minimum; 8 = implementable with ÷8 chain)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := palModel(*clock)
	fmt.Printf("§VI-A — minimum block sizes for the PAL decoder (Algorithm 1)\n")
	fmt.Printf("streams: 2 × %.4g S/s (stage 1) and 2 × %.4g S/s (stage 2) share one\n", 44100*64.0, 44100*8.0)
	fmt.Printf("CORDIC + FIR chain; ε = 15, ρA = δ = 1, Rs = 4100 cycles, clock %.4g Hz\n", float64(*clock))
	u, _ := s.Utilization().Float64()
	fmt.Printf("gateway utilisation demand Σ μs·c0 = %.4f (must stay < 1)\n\n", u)

	var res *core.BlockSizeResult
	var err error
	if *granularity > 0 {
		gr := make([]int64, len(s.Streams))
		for i := range gr {
			gr[i] = *granularity
		}
		res, err = s.ComputeBlockSizesRounded(gr)
	} else {
		res, err = s.ComputeBlockSizes()
	}
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %12s %14s %14s\n", "stream", "ηs (ours)", "paper", "guaranteed S/s")
	paper := []int64{10136, 10136, 1267, 1267}
	for i := range s.Streams {
		rate, err := s.GuaranteedRate(i)
		if err != nil {
			return err
		}
		rf, _ := rate.Float64()
		fmt.Printf("%-12s %12d %14d %14.1f\n", s.Streams[i].Name, res.Blocks[i], paper[i], rf)
	}
	fmt.Printf("\nstage ratio ours %d/%d = %.4f (paper 10136/1267 = 8 exactly; the ÷8 chain)\n",
		res.Blocks[0], res.Blocks[2], float64(res.Blocks[0])/float64(res.Blocks[2]))
	if err := s.VerifyThroughput(); err != nil {
		return fmt.Errorf("throughput verification failed: %w", err)
	}
	fmt.Println("Eq. 5 verified: every stream's guaranteed rate meets its requirement")
	if s.FeasibleBlocks(paper) {
		fmt.Println("the paper's published sizes are feasible under our model as well")
	}
	return nil
}

func runBreakEven(args []string) error {
	comps := cost.PaperComponents()
	g := cost.GatewayPair()
	fmt.Println("Break-even analysis: streams needed before sharing beats duplication")
	fmt.Printf("%-16s %10s\n", "accelerator", "streams")
	for _, name := range []string{cost.FIRDownsample, cost.CORDIC} {
		fmt.Printf("%-16s %10d\n", name, cost.BreakEven(comps[name], g))
	}
	fmt.Println("\nSavings sweep (FIR+D and CORDIC shared together, slices):")
	fmt.Printf("%8s %12s %12s %10s\n", "streams", "non-shared", "shared", "savings")
	for i, cmp := range cost.SavingsSweep([]cost.SharingCase{
		{Name: cost.FIRDownsample, Unit: comps[cost.FIRDownsample]},
		{Name: cost.CORDIC, Unit: comps[cost.CORDIC]},
	}, g, 8) {
		fmt.Printf("%8d %12d %12d %9.1f%%\n", i+1, cmp.NonShared.Slices, cmp.Shared.Slices, cmp.SlicesPct)
	}
	return nil
}

func runRefinement(args []string) error {
	fs := flag.NewFlagSet("refinement", flag.ContinueOnError)
	eta := fs.Int64("eta", 8, "block size")
	tokens := fs.Int64("tokens", 64, "output tokens to compare")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := &core.System{
		Chain:   core.Chain{Name: "demo", AccelCosts: []uint64{3}, EntryCost: 2, ExitCost: 1, NICapacity: 2},
		ClockHz: 100_000_000,
		Streams: []core.Stream{
			{Name: "s", Rate: big.NewRat(1000, 1), Reconfig: 50, Block: *eta},
			{Name: "other", Rate: big.NewRat(1000, 1), Reconfig: 50, Block: 2 * *eta},
		},
	}
	p := core.ModelParams{
		ProducerCost: 1, ConsumerCost: 2,
		InputCapacity: 2 * *eta, OutputCapacity: 2 * *eta,
		IncludeInterference: true,
	}
	rep, err := s.CheckRefinement(0, p, *tokens)
	if err != nil {
		return err
	}
	fmt.Printf("A2 — the-earlier-the-better refinement: detailed CSDF (Fig. 5) vs single-actor SDF (Fig. 7)\n")
	fmt.Printf("η = %d, %d output tokens compared\n\n", *eta, *tokens)
	if !rep.Refines {
		return fmt.Errorf("REFINEMENT VIOLATED at token %d: CSDF %d > SDF %d",
			rep.FirstViolation, rep.RefinedTimes[rep.FirstViolation], rep.AbstractTimes[rep.FirstViolation])
	}
	var worst, sum int64
	for i := range rep.RefinedTimes {
		d := int64(rep.AbstractTimes[i]) - int64(rep.RefinedTimes[i])
		sum += d
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("CSDF ⊑ SDF holds on all %d tokens.\n", len(rep.RefinedTimes))
	fmt.Printf("SDF pessimism: mean %.1f cycles, max %d cycles per token\n",
		float64(sum)/float64(len(rep.RefinedTimes)), worst)
	fmt.Println("(the only loss: the SDF actor releases its whole block atomically at firing end — §V-C)")
	return nil
}
