// Command accelshare regenerates every table and figure of the paper's
// evaluation (and the ablations documented in DESIGN.md) from this
// repository's implementation. Run `accelshare all` to reproduce the whole
// evaluation, or an individual experiment by name.
package main

import (
	"fmt"
	"os"
	"sort"
)

type command struct {
	name  string
	brief string
	run   func(args []string) error
}

var commands []command

func register(name, brief string, run func(args []string) error) {
	commands = append(commands, command{name: name, brief: brief, run: run})
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: accelshare <command> [flags]")
	fmt.Fprintln(os.Stderr, "\ncommands:")
	sorted := append([]command(nil), commands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	for _, c := range sorted {
		fmt.Fprintf(os.Stderr, "  %-20s %s\n", c.name, c.brief)
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "help" || name == "-h" || name == "--help" {
		usage()
		return
	}
	for _, c := range commands {
		if c.name == name {
			if err := c.run(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "accelshare %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "accelshare: unknown command %q\n\n", name)
	usage()
	os.Exit(2)
}
