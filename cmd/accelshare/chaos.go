package main

// chaos: the fleet-level robustness soak. A heterogeneous cluster of
// accelerator chains (two fast, two slow, one warm spare, one spare that
// comes online late) serves deterministic open-loop traffic — background
// arrivals and departures plus one flash crowd — while a rolling sequence
// of chain kills walks the control plane down its degradation ladder:
//
//	kill #1 hits while a spare is available      → failover  (rung 1)
//	kill #2 hits with no spare left              → evacuate  (rung 2)
//	kill #3 squeezes capacity below demand       → shed      (rung 3)
//	a late spare heals into the fleet            → readmit
//
// Every ladder step is recorded with its measured cost against a composed
// bound (DESIGN § Fleet robustness); the campaign ends with a fleet-wide
// conformance pass (Eq. 2/4/5 per surviving chain) over the post-disturbance
// tail and a per-stream contiguity check across every migration. The whole
// soak is a pure function of the profile: two runs are byte-identical (a
// golden test enforces it).

import (
	"flag"
	"fmt"
	"io"
	"os"

	"accelshare/internal/cluster"
	"accelshare/internal/conformance"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
	"accelshare/internal/sim"
)

func init() {
	register("chaos", "fleet chaos soak: rolling chain kills, degradation ladder, fleet conformance", runChaos)
}

func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	short := fs.Bool("short", false, "run the trimmed CI profile instead of the full soak")
	seed := fs.Uint64("seed", 1789, "traffic generator seed (non-zero)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seed == 0 {
		return fmt.Errorf("chaos: -seed must be non-zero")
	}
	return chaosCampaign(os.Stdout, *short, *seed)
}

// chaosProfile bundles the campaign shape so the short CI profile and the
// full soak share one code path.
type chaosProfile struct {
	horizon sim.Time
	// kills maps chain name -> wedge time; heals is the late spare's online
	// time (also printed in the header).
	chains  []cluster.ChainSpec
	kills   []string // rendered header lines, chain order
	traffic cluster.Profile
	cut     sim.Time // conformance window start
}

func chaosSoak(seed uint64) chaosProfile {
	wedge := func(at sim.Time) *fault.Plan {
		return &fault.Plan{Faults: []fault.Fault{{Kind: fault.WedgeLink, Site: 0, At: at}}}
	}
	return chaosProfile{
		horizon: 215_000,
		chains: []cluster.ChainSpec{
			{Name: "c0", AccelCost: 1, ReserveSlots: 6, Faults: wedge(40_000)},
			{Name: "c1", AccelCost: 1, ReserveSlots: 6, Faults: wedge(120_000)},
			{Name: "c2", AccelCost: 25, ReserveSlots: 6, Faults: wedge(90_000)},
			{Name: "c3", AccelCost: 25, ReserveSlots: 6},
			{Name: "sp0", AccelCost: 1, ReserveSlots: 6, Spare: true},
			{Name: "sp1", AccelCost: 1, ReserveSlots: 6, Spare: true, OnlineAt: 150_000},
		},
		kills: []string{"c0@40000", "c2@90000", "c1@120000"},
		traffic: cluster.Profile{
			Seed: seed, Start: 1_000, End: 110_000,
			// Lifetime <= 60k: the last transient departs by ~170k, so the
			// conformance cut at 175k sees only the settled resident fleet.
			MeanSpacing: 7_000, MinLifetime: 30_000, MeanLifetime: 45_000,
			Periods: []int64{75, 150, 300}, Priorities: []int{1, 3, 5},
			// The flash crowd lands just before kill #3 saturates the two
			// survivors, so c1's evacuation must shed — the parked stream is
			// only readmitted when sp1 heals at 150k.
			FlashAt: 112_000, FlashCount: 4, FlashSpacing: 150,
			FlashPeriod: 150, FlashLifetime: 30_000,
		},
		cut: 175_000,
	}
}

func chaosShort(seed uint64) chaosProfile {
	wedge := func(at sim.Time) *fault.Plan {
		return &fault.Plan{Faults: []fault.Fault{{Kind: fault.WedgeLink, Site: 0, At: at}}}
	}
	return chaosProfile{
		horizon: 90_000,
		chains: []cluster.ChainSpec{
			{Name: "c0", AccelCost: 1, ReserveSlots: 4, Faults: wedge(15_000)},
			{Name: "c1", AccelCost: 1, ReserveSlots: 4, Faults: wedge(35_000)},
			{Name: "sp0", AccelCost: 1, ReserveSlots: 4, Spare: true},
			{Name: "sp1", AccelCost: 1, ReserveSlots: 4, Spare: true, OnlineAt: 55_000},
		},
		kills: []string{"c0@15000", "c1@35000"},
		traffic: cluster.Profile{
			Seed: seed, Start: 1_000, End: 30_000,
			// Lifetime <= 40k keeps every transient departure before the 70k cut.
			MeanSpacing: 5_000, MinLifetime: 20_000, MeanLifetime: 30_000,
			Periods: []int64{75, 150}, Priorities: []int{1, 5},
			FlashAt: 25_000, FlashCount: 3, FlashSpacing: 150,
			FlashPeriod: 150, FlashLifetime: 20_000,
		},
		cut: 70_000,
	}
}

func chaosConfig(chains []cluster.ChainSpec) cluster.Config {
	return cluster.Config{
		EntryCost:    15,
		ExitCost:     1,
		HopLatency:   1,
		Reconfig:     50,
		DrainTimeout: 600,
		Recovery: gateway.Recovery{
			Enabled: true, RetryLimit: 2,
			Checkpoint: 4, CheckpointCost: 5, ValueExact: true,
		},
		PerSlotCost: 10,
		Doctor:      fault.DoctorConfig{Window: 4_000, StallLimit: 3, DistinctStreams: 1},
		// Limit 5 exhausts a shed stream's readmission retries (~6.2k cycles)
		// before surviving chains free capacity, so it parks and is readmitted
		// by the late spare's heal — exercising the full ladder.
		Retry:            fault.Backoff{Base: 200, Factor: 2, Cap: 3_200, Limit: 5},
		ResidentPeriod:   75,
		ResidentPriority: 100,
		InCapacity:       256,
		OutCapacity:      128,
		CollectOutputs:   true,
		Chains:           chains,
	}
}

// chaosCampaign writes the byte-deterministic campaign transcript that the
// golden gate diffs; floatflow holds it to exact output.
//
//accellint:transcript golden transcript must stay float-free
func chaosCampaign(w io.Writer, short bool, seed uint64) error {
	p := chaosSoak(seed)
	name := "full soak"
	if short {
		p = chaosShort(seed)
		name = "short profile"
	}
	fmt.Fprintf(w, "chaos — fleet-level robustness soak (%s, seed %d, horizon %d)\n", name, seed, p.horizon)
	fmt.Fprintf(w, "fleet:")
	for _, cs := range p.chains {
		role := "serving"
		if cs.Spare {
			role = "spare"
			if cs.OnlineAt > 0 {
				role = fmt.Sprintf("spare@%d", cs.OnlineAt)
			}
		}
		fmt.Fprintf(w, " %s(rho=%d,%s)", cs.Name, cs.AccelCost, role)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "kills:")
	for _, k := range p.kills {
		fmt.Fprintf(w, " %s", k)
	}
	fmt.Fprintf(w, "  flash: %d@%d\n\n", p.traffic.FlashCount, p.traffic.FlashAt)

	c, err := cluster.New(chaosConfig(p.chains))
	if err != nil {
		return err
	}
	ops := p.traffic.Ops()
	cluster.Schedule(c, ops)
	c.Run(p.horizon)

	fmt.Fprintf(w, "=== traffic (%d ops) and fleet events ===\n", len(ops))
	for _, e := range c.Events() {
		fmt.Fprintln(w, cluster.FormatEvent(e))
	}

	fmt.Fprintf(w, "\n=== degradation ladder (%d steps) ===\n", len(c.LadderSteps()))
	fmt.Fprintf(w, "%-9s %-8s %-5s %-5s %9s %9s %9s  %s\n",
		"rung", "stream", "from", "to", "at", "measured", "bound", "within-bound")
	allWithin := true
	for _, s := range c.LadderSteps() {
		within := s.Measured <= s.Bound
		if !within {
			allWithin = false
		}
		from, to := s.From, s.To
		if from == "" {
			from = "-"
		}
		if to == "" {
			to = "-"
		}
		fmt.Fprintf(w, "%-9s %-8s %-5s %-5s %9d %9d %9d  within-bound=%v replay=%d\n",
			s.Rung, s.Stream, from, to, s.At, s.Measured, s.Bound, within, s.Replay)
	}
	fmt.Fprintf(w, "all ladder steps within bound: %v\n", allWithin)

	fmt.Fprintf(w, "\n=== chains ===\n")
	for _, cs := range c.ChainStatuses() {
		fmt.Fprintf(w, "  %-4s %-8s %d streams\n", cs.Name, cs.State, cs.Streams)
	}

	fmt.Fprintf(w, "\n=== streams ===\n")
	contiguityOK := true
	for _, ss := range c.StreamStatuses() {
		chain := ss.Chain
		if chain == "" {
			chain = "-"
		}
		line := fmt.Sprintf("  %-8s %-9s chain=%-4s prio=%d blocks=%d samples=%d overflows=%d",
			ss.Name, ss.State, chain, ss.Priority, ss.Blocks, ss.Samples, ss.Overflow)
		if ss.State == "live" {
			line += fmt.Sprintf(" contiguous=%v", ss.ContiguousOutputs)
			if !ss.ContiguousOutputs {
				contiguityOK = false
			}
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "every live stream contiguous (zero lost or duplicated samples): %v\n", contiguityOK)

	fmt.Fprintf(w, "\n=== fleet conformance (after t=%d) ===\n", p.cut)
	res, err := c.Conformance(conformance.Options{After: p.cut, MinBlocks: 3, FilterQueued: true})
	if err != nil {
		return err
	}
	violations := 0
	for _, cc := range res {
		fmt.Fprintf(w, "  chain %-4s %d streams, %d blocks checked, %d violations\n",
			cc.Chain, cc.Streams, cc.Result.Checked, len(cc.Result.Violations))
		for _, v := range cc.Result.Violations {
			fmt.Fprintf(w, "    %s\n", v.String())
			violations++
		}
	}
	fmt.Fprintf(w, "fleet conformance violations: %d\n", violations)

	if !allWithin {
		return fmt.Errorf("chaos: a degradation-ladder step exceeded its composed bound")
	}
	if !contiguityOK {
		return fmt.Errorf("chaos: a surviving stream lost or duplicated samples")
	}
	if violations > 0 {
		return fmt.Errorf("chaos: %d fleet conformance violations", violations)
	}
	return nil
}
