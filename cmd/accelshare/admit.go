package main

// admit: the online admission-control demo. A four-stream platform runs
// live while a scripted campaign adds a fifth stream, removes one, readmits
// it through a canary block and finally offers an infeasible sixth request.
// Every decision — the incremental Algorithm 1 re-solve, the staged mode
// transition with its measured cost against the bound, each rejection's
// machine-readable reason — lands in the controller's event log, printed
// here. The whole run is deterministic: two invocations with the same
// script produce byte-identical output (a regression test enforces it).

import (
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"

	"accelshare/internal/accel"
	"accelshare/internal/admission"
	"accelshare/internal/core"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
	"accelshare/internal/sim"
)

func init() {
	register("admit", "online admission control: scripted add/remove/readmit with mode transitions", runAdmit)
}

// defaultAdmitScript exercises every request kind against the canned
// platform: a feasible add, a remove that shrinks the survivors' blocks, a
// canary-probed readmission, and an add that Algorithm 1 must reject.
const defaultAdmitScript = `# online admission campaign (times in cycles)
3000  add s5 rate=1/300 reconfig=50 incap=64 outcap=64 period=300
20000 remove s4
30000 readmit s4
40000 add s6 rate=1/75 reconfig=50 incap=64 outcap=64 period=75
`

func runAdmit(args []string) error {
	fs := flag.NewFlagSet("admit", flag.ContinueOnError)
	script := fs.String("script", "", "admission script file (default: built-in demo campaign)")
	horizon := fs.Int64("horizon", 60_000, "cycles to simulate")
	reserve := fs.Int("reserve", 2, "reserved gateway stream slots for live admission")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *horizon <= 0 {
		return fmt.Errorf("admit: -horizon must be positive, got %d", *horizon)
	}
	text := defaultAdmitScript
	if *script != "" {
		raw, err := os.ReadFile(*script)
		if err != nil {
			return err
		}
		text = string(raw)
	}
	return admitCampaign(os.Stdout, text, sim.Time(*horizon), *reserve)
}

// admitPlatform builds the canned four-stream platform (ε=15, ρA=1, δ=1,
// Rs=50, μs=1/75 each → Algorithm 1 gives η=22, τ̂=410, γ̂=1640) plus its
// admission controller.
func admitPlatform(reserve int) (*mpsoc.MultiSystem, *admission.Controller, error) {
	model := &core.System{
		Chain: core.Chain{
			Name:       "demo",
			AccelCosts: []uint64{1},
			EntryCost:  15,
			ExitCost:   1,
			NICapacity: 2,
		},
		ClockHz: 1,
	}
	for _, name := range []string{"s1", "s2", "s3", "s4"} {
		model.Streams = append(model.Streams, core.Stream{
			Name: name, Rate: big.NewRat(1, 75), Reconfig: 50,
		})
	}
	if _, err := model.ComputeBlockSizes(); err != nil {
		return nil, nil, err
	}
	var specs []mpsoc.StreamSpec
	for i := range model.Streams {
		specs = append(specs, mpsoc.StreamSpec{
			Name:         model.Streams[i].Name,
			Block:        model.Streams[i].Block,
			Decimation:   1,
			Reconfig:     50,
			InCapacity:   128,
			OutCapacity:  128,
			SourcePeriod: 75,
			Engines:      []accel.Engine{&accel.Gain{}},
		})
	}
	ms, err := mpsoc.BuildMulti(mpsoc.MultiConfig{
		Name: "admit",
		Chains: []mpsoc.ChainSpec{{
			Name:              "demo",
			EntryCost:         15,
			ExitCost:          1,
			Mode:              gateway.ReconfigFixed,
			Accels:            []mpsoc.AccelSpec{{Name: "acc", Cost: 1, NICapacity: 2}},
			Streams:           specs,
			DrainTimeout:      200,
			Recovery:          gateway.Recovery{Enabled: true, RetryLimit: 2},
			RecordTurnarounds: true,
			ReserveSlots:      reserve,
		}},
	})
	if err != nil {
		return nil, nil, err
	}
	ctrl, err := admission.New(ms, admission.Config{
		Chain:       0,
		Model:       model,
		PerSlotCost: 10,
		Engines:     func(string) []accel.Engine { return []accel.Engine{&accel.Gain{}} },
	})
	if err != nil {
		return nil, nil, err
	}
	return ms, ctrl, nil
}

// admitCampaign writes the byte-deterministic campaign transcript that the
// golden gate diffs; floatflow holds it to exact output.
//
//accellint:transcript golden transcript must stay float-free
func admitCampaign(w io.Writer, script string, horizon sim.Time, reserve int) error {
	ops, err := admission.ParseScript(script)
	if err != nil {
		return err
	}
	ms, ctrl, err := admitPlatform(reserve)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Online admission control: 4 live streams share one accelerator chain")
	fmt.Fprintln(w, "(ε=15, ρA=1, δ=1, Rs=50, μs=1/75 each → η=22, τ̂=410, γ̂=1640), with")
	fmt.Fprintf(w, "%d reserved gateway slot(s) for live admission; horizon %d cycles.\n", reserve, horizon)
	fmt.Fprintln(w, "Each request re-solves Algorithm 1 incrementally (budgeted exact ILP,")
	fmt.Fprintln(w, "warm-started fixed point as fallback) and applies the result as a staged")
	fmt.Fprintln(w, "mode transition: drain to a block boundary, reprogram stream slots over")
	fmt.Fprintln(w, "the configuration bus, resume. Decisions, in order:")
	fmt.Fprintln(w)
	if err := ctrl.Play(ops); err != nil {
		return err
	}
	ms.Chains[0].Pair.Start()
	ms.K.Run(horizon)
	io.WriteString(w, admission.FormatEvents(ctrl.Events()))
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-6s %6s %8s %10s %11s %8s %10s %s\n",
		"stream", "block", "blocks", "samples-in", "samples-out", "retries", "overflows", "state")
	ch := ms.Chains[0]
	for i, snap := range ch.Pair.Snapshot() {
		state := "live"
		switch {
		case snap.Quarantined:
			state = "quarantined"
		case snap.Suspended:
			state = "suspended"
		case snap.Probation:
			state = "probation"
		}
		fmt.Fprintf(w, "%-6s %6d %8d %10d %11d %8d %10d %s\n",
			snap.Name, snap.Block, snap.Blocks, snap.SamplesIn, snap.SamplesOut,
			snap.Retries, ch.Strs[i].Overflows, state)
	}
	return nil
}
