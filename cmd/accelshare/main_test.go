package main

// Smoke tests: every experiment command must run to completion without
// error on its default arguments. The expensive simulation commands are
// trimmed via flags where possible and skipped under -short.

import (
	"bytes"
	"testing"
)

func TestCommandRegistry(t *testing.T) {
	if len(commands) < 10 {
		t.Fatalf("only %d commands registered", len(commands))
	}
	seen := map[string]bool{}
	for _, c := range commands {
		if c.name == "" || c.brief == "" || c.run == nil {
			t.Errorf("malformed command %+v", c)
		}
		if seen[c.name] {
			t.Errorf("duplicate command %q", c.name)
		}
		seen[c.name] = true
	}
}

func runCmd(t *testing.T, name string, args ...string) {
	t.Helper()
	for _, c := range commands {
		if c.name == name {
			if err := c.run(args); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return
		}
	}
	t.Fatalf("command %q not registered", name)
}

func TestAnalysisCommands(t *testing.T) {
	runCmd(t, "blocksizes")
	runCmd(t, "blocksizes", "-granularity", "8")
	runCmd(t, "fig8", "-max", "6")
	runCmd(t, "fig11")
	runCmd(t, "table1")
	runCmd(t, "breakeven")
	runCmd(t, "refinement", "-eta", "4", "-tokens", "16")
	runCmd(t, "fig6", "-eta", "8")
}

func TestMemOptCommand(t *testing.T) {
	runCmd(t, "memopt", "-window", "3")
}

func TestSharingSweepCommand(t *testing.T) {
	runCmd(t, "sharing-sweep")
}

func TestDotCommand(t *testing.T) {
	runCmd(t, "dot", "-eta", "4")
	runCmd(t, "dot", "-eta", "4", "-sdf")
}

func TestRotationCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("rotation runs the PAL simulation")
	}
	runCmd(t, "rotation", "-seconds", "0.008")
}

func TestRingVsCrossbarCommand(t *testing.T) {
	runCmd(t, "ring-vs-crossbar", "-words", "64")
}

func TestFlowControlCommand(t *testing.T) {
	runCmd(t, "ablation-flowcontrol", "-words", "256")
}

func TestSimulationCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation commands are expensive")
	}
	runCmd(t, "paldemo", "-seconds", "0.01")
	runCmd(t, "utilization", "-seconds", "0.01")
	runCmd(t, "utilization", "-sw-state")
	runCmd(t, "ablation-spacecheck")
	runCmd(t, "ablation-arbiter")
}

func TestFaultsCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("the fault campaign runs many scenarios")
	}
	runCmd(t, "faults", "-horizon", "50000")
}

// TestFaultCampaignDeterministic is an acceptance criterion: the whole
// campaign — simulation, recovery, report — must be byte-identical across
// two runs (no map iteration, no wall clock, no randomness anywhere).
func TestFaultCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the campaign twice")
	}
	var a, b bytes.Buffer
	if err := faultCampaign(&a, 100_000); err != nil {
		t.Fatal(err)
	}
	if err := faultCampaign(&b, 100_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("campaign output differs between two identical runs")
	}
}

func TestAdmitCommand(t *testing.T) {
	runCmd(t, "admit", "-horizon", "60000")
}

// TestAdmitDeterministic is an acceptance criterion: the scripted admission
// campaign — live platform, incremental re-solves, staged mode transitions,
// canary readmission, event log — must be byte-identical across two runs.
func TestAdmitDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := admitCampaign(&a, defaultAdmitScript, 60_000, 2); err != nil {
		t.Fatal(err)
	}
	if err := admitCampaign(&b, defaultAdmitScript, 60_000, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("admission campaign output differs between two identical runs")
	}
	for _, want := range []string{"add s5: admitted", "remove s4: admitted", "readmit s4: admitted", "canary-pass s4", "rejected (infeasible)"} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Errorf("campaign output missing %q", want)
		}
	}
}

func TestFailoverCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("the failover campaign runs four scenarios")
	}
	runCmd(t, "failover", "-horizon", "60000")
}

// TestFailoverGolden is an acceptance criterion: the failover campaign —
// wedged-chain verdicts, stream migration, cost-vs-bound accounting,
// conformance checks, trace rendering — must be byte-identical across runs
// AND byte-identical to the checked-in golden file (see golden_test.go for
// the -update regeneration workflow).
func TestFailoverGolden(t *testing.T) {
	got := runTwice(t, "failover", func(w *bytes.Buffer) error {
		return failoverCampaign(w, 60_000, nil)
	})
	checkGolden(t, "failover.golden", got)
	for _, want := range []string{
		"within-bound=true",
		"re-solved for the standby chain",
		"not triggered (per-stream recovery handled the fault)",
		"zero lost or duplicated",
	} {
		if !bytes.Contains(got, []byte(want)) {
			t.Errorf("campaign output missing %q", want)
		}
	}
}

func TestBadFlagsRejected(t *testing.T) {
	for _, c := range commands {
		if c.name == "fig6" {
			if err := c.run([]string{"-definitely-not-a-flag"}); err == nil {
				t.Error("bad flag accepted")
			}
		}
	}
}
