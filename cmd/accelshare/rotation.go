package main

// rotation: a system-level Fig. 6 — the entry gateway's round-robin
// rotation over all four PAL streams, rendered from the recorded activity
// trace of the cycle-level simulation.

import (
	"flag"
	"fmt"
	"strings"

	"accelshare/internal/gateway"
	"accelshare/internal/pal"
	"accelshare/internal/sim"
)

func init() {
	register("rotation", "round-robin rotation Gantt over all PAL streams (system-level Fig. 6)", runRotation)
}

func runRotation(args []string) error {
	fs := flag.NewFlagSet("rotation", flag.ContinueOnError)
	width := fs.Int("width", 110, "gantt width in columns")
	rounds := fs.Float64("seconds", 0.012, "seconds of signal to run (one RR round ≈ 3.5 ms)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := pal.DefaultParams()
	p.Seconds = *rounds
	p.RecordActivity = true
	d, err := pal.Build(p)
	if err != nil {
		return err
	}
	d.Run(sim.Time(*rounds*p.ClockHz) * 2)
	acts := d.Sys.Pair.Activities
	if len(acts) == 0 {
		return fmt.Errorf("no gateway activity recorded")
	}

	// Window: from the first activity to the end of the third full round
	// (or everything if shorter).
	start := acts[0].Start
	end := acts[len(acts)-1].End
	names := []string{"ch1.stage1", "ch2.stage1", "ch1.stage2", "ch2.stage2"}

	fmt.Println("Round-robin rotation of the entry gateway over the four PAL streams")
	fmt.Printf("(R = reconfiguration %d cyc, # = DMA streaming, ~ = pipeline drain)\n\n", p.Reconfig)
	total := end - start
	if total == 0 {
		total = 1
	}
	col := func(t sim.Time) int {
		c := int(uint64(*width) * (t - start) / total)
		if c >= *width {
			c = *width - 1
		}
		return c
	}
	for si, name := range names {
		row := []byte(strings.Repeat(".", *width))
		for _, a := range acts {
			if a.Stream != si {
				continue
			}
			ch := byte('#')
			switch a.Kind {
			case gateway.ActReconfig:
				ch = 'R'
			case gateway.ActDrain:
				ch = '~'
			}
			for c := col(a.Start); c <= col(a.End); c++ {
				// Reconfiguration and drain are short; let them win the
				// column so they stay visible.
				if row[c] == '.' || ch != '#' {
					row[c] = ch
				}
			}
		}
		fmt.Printf("%-12s %s\n", name, row)
	}
	fmt.Printf("%-12s t=%d .. t=%d (%d cycles, %.0f cycles/col)\n", "", start, end, total, float64(total)/float64(*width))

	// Round statistics: time between consecutive services of stream 0.
	var rstarts []sim.Time
	for _, a := range acts {
		if a.Stream == 0 && a.Kind == gateway.ActReconfig {
			rstarts = append(rstarts, a.Start)
		}
	}
	if len(rstarts) >= 2 {
		fmt.Printf("\nrotation period of ch1.stage1: ")
		for i := 1; i < len(rstarts) && i <= 5; i++ {
			fmt.Printf("%d ", rstarts[i]-rstarts[i-1])
		}
		round := uint64(16400 + 15*(2*(9848+2)+2*(1232+2)))
		fmt.Printf("cycles (analytic full-load round Σ τ̂ = %d; small overshoots are the\n", round)
		fmt.Println("idle-notification transits between blocks, which the per-block turnaround")
		fmt.Println("bound γ̂ absorbs in its 2·c0 flush slack — see `accelshare utilization`)")
	}
	fmt.Println("\nnote the asymmetric rotation: stage-1 blocks (≈9848·15 cycles of streaming)")
	fmt.Println("dwarf stage-2 blocks (≈1232·15) and the Rs = 4100-cycle reconfigurations —")
	fmt.Println("the 95/5 streaming/reconfig split of `accelshare utilization`, visualised.")
	return nil
}
