package main

// ring-vs-crossbar: the paper's §II argument made executable — identical
// traffic over the dual ring and over a PROPHID-style TDM crossbar, plus
// the cost scaling of both structures.

import (
	"flag"
	"fmt"

	"accelshare/internal/cost"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
	"accelshare/internal/tdm"
)

func init() {
	register("ring-vs-crossbar", "dual ring vs TDM crossbar: latency under identical traffic + cost scaling (§II)", runRingVsCrossbar)
}

// trafficResult summarises one interconnect run.
type trafficResult struct {
	delivered   int
	totalLat    uint64
	maxLat      uint64
	finish      sim.Time
	wastedSlots uint64
}

func runRingVsCrossbar(args []string) error {
	fs := flag.NewFlagSet("ring-vs-crossbar", flag.ContinueOnError)
	nodes := fs.Int("nodes", 6, "tile count")
	words := fs.Int("words", 256, "words per flow")
	period := fs.Uint64("period", 4, "injection period per flow (cycles)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Traffic: every node i streams to node (i+2) mod N.
	type flow struct{ src, dst int }
	var flows []flow
	for i := 0; i < *nodes; i++ {
		flows = append(flows, flow{src: i, dst: (i + 2) % *nodes})
	}

	runRing := func() (*trafficResult, error) {
		k := sim.NewKernel()
		r, err := ring.New(k, ring.Config{Nodes: *nodes, HopLatency: 1, Direction: ring.Clockwise, InjectionDepth: 8})
		if err != nil {
			return nil, err
		}
		res := &trafficResult{}
		sendTimes := map[int][]sim.Time{}
		for fi, f := range flows {
			fi, f := fi, f
			r.Node(f.dst).Bind(10+fi, func(m ring.Message) {
				lat := uint64(k.Now() - sendTimes[fi][0])
				sendTimes[fi] = sendTimes[fi][1:]
				res.delivered++
				res.totalLat += lat
				if lat > res.maxLat {
					res.maxLat = lat
				}
			})
		}
		for fi, f := range flows {
			fi, f := fi, f
			n := 0
			var tick func()
			tick = func() {
				if n >= *words {
					return
				}
				if r.Node(f.src).TrySend(f.dst, 10+fi, sim.Word(n)) {
					sendTimes[fi] = append(sendTimes[fi], k.Now())
					n++
				}
				k.Schedule(sim.Time(*period), tick)
			}
			k.Schedule(0, tick)
		}
		res.finish = k.RunAll()
		return res, nil
	}

	runXbar := func() (*trafficResult, error) {
		k := sim.NewKernel()
		// Wheel sized to give every flow one slot per N cycles.
		x, err := tdm.New(k, tdm.Config{Nodes: *nodes, WheelSlots: len(flows), TraversalLatency: 2, InjectionDepth: 8})
		if err != nil {
			return nil, err
		}
		for i, f := range flows {
			if err := x.Reserve(i, f.src, f.dst); err != nil {
				return nil, err
			}
		}
		res := &trafficResult{}
		sendTimes := map[int][]sim.Time{}
		for fi, f := range flows {
			fi, f := fi, f
			x.Node(f.dst).Bind(10+fi, func(m tdm.Message) {
				lat := uint64(k.Now() - sendTimes[fi][0])
				sendTimes[fi] = sendTimes[fi][1:]
				res.delivered++
				res.totalLat += lat
				if lat > res.maxLat {
					res.maxLat = lat
				}
			})
		}
		for fi, f := range flows {
			fi, f := fi, f
			n := 0
			var tick func()
			tick = func() {
				if n >= *words {
					return
				}
				if x.Node(f.src).TrySend(f.dst, 10+fi, sim.Word(n)) {
					sendTimes[fi] = append(sendTimes[fi], k.Now())
					n++
				}
				k.Schedule(sim.Time(*period), tick)
			}
			k.Schedule(0, tick)
		}
		res.finish = k.RunAll()
		res.wastedSlots = x.WastedSlots
		return res, nil
	}

	rr, err := runRing()
	if err != nil {
		return err
	}
	xr, err := runXbar()
	if err != nil {
		return err
	}
	total := *words * len(flows)
	fmt.Printf("§II — dual ring vs TDM crossbar, %d tiles, %d flows × %d words, 1 word/%d cycles each\n\n",
		*nodes, len(flows), *words, *period)
	fmt.Printf("%-14s %10s %10s %10s %12s\n", "interconnect", "delivered", "avg lat", "max lat", "finish (cyc)")
	fmt.Printf("%-14s %10d %10.1f %10d %12d\n", "dual ring", rr.delivered,
		float64(rr.totalLat)/float64(max(1, rr.delivered)), rr.maxLat, rr.finish)
	fmt.Printf("%-14s %10d %10.1f %10d %12d\n", "TDM crossbar", xr.delivered,
		float64(xr.totalLat)/float64(max(1, xr.delivered)), xr.maxLat, xr.finish)
	if rr.delivered != total || xr.delivered != total {
		return fmt.Errorf("lost words: ring %d, crossbar %d of %d", rr.delivered, xr.delivered, total)
	}
	fmt.Printf("\ncrossbar slots that passed unused while traffic waited: %d\n", xr.wastedSlots)

	fmt.Println("\ncost scaling (ring coefficients from Fig. 11; crossbar coefficients are")
	fmt.Println("documented estimates — see internal/cost/interconnect.go):")
	p := cost.DefaultInterconnectParams()
	fmt.Print(p.FormatInterconnectSweep(12))
	fmt.Printf("\nring is cheaper from %d tiles up — the §II cost argument for the ring.\n",
		p.InterconnectBreakEven(64))
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
