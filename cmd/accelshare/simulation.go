package main

// Simulation-layer experiments: the cycle-level MPSoC running the PAL
// stereo decoder and the ablations that need real hardware behaviour.

import (
	"flag"
	"fmt"
	"math"
	"math/big"

	"accelshare/internal/accel"
	"accelshare/internal/core"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
	"accelshare/internal/pal"
	"accelshare/internal/sim"
)

func init() {
	register("paldemo", "decode PAL stereo audio end to end on the simulated MPSoC (§VI-A)", runPALDemo)
	register("utilization", "gateway duty cycle and accelerator utilisation (§VI-A, E5/E8, A3)", runUtilization)
	register("ablation-spacecheck", "what breaks without the output space check (§V-G, A1)", runSpaceCheckAblation)
	register("all", "run every experiment in sequence", runAll)
}

func runPALDemo(args []string) error {
	fs := flag.NewFlagSet("paldemo", flag.ContinueOnError)
	seconds := fs.Float64("seconds", 0.03, "seconds of audio to synthesise and decode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := pal.DefaultParams()
	p.Seconds = *seconds
	d, err := pal.Build(p)
	if err != nil {
		return err
	}
	horizon := sim.Time(*seconds*p.ClockHz) * 2
	fmt.Printf("§VI-A — PAL stereo audio decoder on the simulated MPSoC\n")
	fmt.Printf("front-end %.5g S/s, audio %.5g S/s, blocks %v, Rs = %d, ε = %d, δ = %d\n",
		p.FrontendRate(), p.AudioRate, p.Blocks, p.Reconfig, p.EntryCost, p.ExitCost)
	fmt.Printf("decoding %.3f s of a two-tone stereo broadcast (L = %.0f Hz, R = %.0f Hz)...\n\n",
		*seconds, p.ToneL, p.ToneR)
	d.Run(horizon)

	rep := d.Sys.Report()
	fmt.Printf("%-12s %8s %12s %12s %6s %14s\n", "stream", "blocks", "samples in", "samples out", "drops", "worst turn(cyc)")
	for _, sr := range rep.PerStream {
		fmt.Printf("%-12s %8d %12d %12d %6d %14d\n",
			sr.Name, sr.Blocks, sr.SamplesIn, sr.SamplesOut, sr.Overflows, sr.MaxTurnaround)
	}
	fmt.Printf("\ndecoded %d stereo samples (%.1f ms of audio)\n", len(d.L), 1000*float64(len(d.L))/p.AudioRate)
	if len(d.L) > 400 {
		l, r := d.L[200:], d.R[200:]
		lAtL := pal.GoertzelPower(l, p.ToneL, p.AudioRate)
		lAtR := pal.GoertzelPower(l, p.ToneR, p.AudioRate)
		rAtR := pal.GoertzelPower(r, p.ToneR, p.AudioRate)
		rAtL := pal.GoertzelPower(r, p.ToneL, p.AudioRate)
		fmt.Printf("left  channel: %.1f dB separation (own tone vs other tone)\n", 10*log10(lAtL/lAtR))
		fmt.Printf("right channel: %.1f dB separation\n", 10*log10(rAtR/rAtL))
	}
	ok := true
	for _, sr := range rep.PerStream {
		if sr.Overflows > 0 {
			ok = false
		}
	}
	if ok {
		fmt.Println("real-time constraint met: no front-end sample was ever dropped (44.1 kS/s sustained)")
	} else {
		fmt.Println("REAL-TIME VIOLATION: the front-end dropped samples")
	}
	return nil
}

func log10(x float64) float64 {
	if x <= 0 {
		return -99
	}
	return math.Log10(x)
}

func runUtilization(args []string) error {
	fs := flag.NewFlagSet("utilization", flag.ContinueOnError)
	seconds := fs.Float64("seconds", 0.02, "seconds of audio to run")
	swState := fs.Bool("sw-state", false, "A3: switch accelerator state from software (per-word cost) instead of Rs cycles")
	perWord := fs.Uint64("per-word", 500, "software state-switch cost per word (cycles)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := pal.DefaultParams()
	p.Seconds = *seconds
	d, err := pal.Build(p)
	if err != nil {
		return err
	}
	if *swState {
		return runUtilizationSW(p, *perWord)
	}
	d.Run(sim.Time(*seconds*p.ClockHz) * 2)
	rep := d.Sys.Report()

	fmt.Println("E5/E8 — gateway duty cycle and accelerator utilisation (PAL decoder)")
	fmt.Printf("\ngateway busy time: %.1f%% streaming, %.1f%% reconfiguration\n",
		100*rep.StreamingShare, 100*rep.ReconfigShare)
	fmt.Println("(the paper's §VI-A prose says 5%/95%; with its own Rs = 4100 and ε = 15 the")
	fmt.Println(" model predicts ≈95% streaming — see EXPERIMENTS.md for the discussion; the")
	fmt.Println(" -sw-state flag reproduces the prototype's software-switch regime)")

	fmt.Printf("\naccelerator utilisation (busy fraction of wall time):\n")
	names := []string{"CORDIC", "FIR+D"}
	for i, u := range rep.TileBusy {
		fmt.Printf("  %-8s %6.2f%%  — one shared instance serves 4 streams (4× the per-instance\n", names[i], 100*u)
		fmt.Printf("  %-8s %8s    utilisation of a private-per-stream design)\n", "", "")
	}

	// γ bound check against the analysis model.
	model := palAnalysisModelRounded()
	fmt.Printf("\nworst-case block turnaround vs γ̂s (Eq. 4):\n")
	fmt.Printf("%-12s %14s %14s\n", "stream", "measured", "bound")
	for i, sr := range rep.PerStream {
		gamma, err := model.GammaHat(i)
		if err != nil {
			return err
		}
		flag := ""
		if sr.MaxTurnaround > gamma {
			flag = "  VIOLATED"
		}
		fmt.Printf("%-12s %14d %14d%s\n", sr.Name, sr.MaxTurnaround, gamma, flag)
	}
	return nil
}

// palAnalysisModelRounded is the analysis model at the implementable
// (multiple-of-8) block sizes actually run by the simulator.
func palAnalysisModelRounded() *core.System {
	s := palModel(100_000_000)
	blocks := []int64{9848, 9848, 1232, 1232}
	for i := range s.Streams {
		s.Streams[i].Block = blocks[i]
	}
	return s
}

// runUtilizationSW reproduces the paper's prototype regime: state switched
// from software, charged per state word. With 33-tap FIR delay lines the
// reconfiguration dominates the gateway — the paper's "95% of the time is
// spent to save and restore state".
func runUtilizationSW(p pal.Params, perWord uint64) error {
	fmt.Println("A3 — software state switching (the paper's prototype regime)")
	// An equivalent two-stream synthetic workload keeps the run short while
	// exercising the per-word reconfiguration path.
	fir1, err := accel.NewFIR(make([]int32, 33), 1)
	if err != nil {
		return err
	}
	fir2, err := accel.NewFIR(make([]int32, 33), 1)
	if err != nil {
		return err
	}
	cfg := mpsoc.Config{
		Name:       "sw-state",
		HopLatency: 1,
		EntryCost:  15,
		ExitCost:   1,
		Mode:       gateway.ReconfigPerWord,
		BusBase:    200,
		BusPerWord: sim.Time(perWord),
		Accels:     []mpsoc.AccelSpec{{Name: "fir", Cost: 1, NICapacity: 2}},
		Streams: []mpsoc.StreamSpec{
			{
				Name: "s0", Block: 64, Decimation: 1, Reconfig: 0,
				InCapacity: 256, OutCapacity: 256,
				Engines:     []accel.Engine{fir1},
				TotalInputs: 8192,
			},
			{
				Name: "s1", Block: 64, Decimation: 1, Reconfig: 0,
				InCapacity: 256, OutCapacity: 256,
				Engines:     []accel.Engine{fir2},
				TotalInputs: 8192,
			},
		},
	}
	sys, err := mpsoc.Build(cfg)
	if err != nil {
		return err
	}
	sys.Run(40_000_000)
	rep := sys.Report()
	fmt.Printf("\nstate footprint: 34 words per FIR engine, %d cycles/word over the config bus\n", perWord)
	fmt.Printf("gateway busy time: %.1f%% streaming, %.1f%% save/restore\n",
		100*rep.StreamingShare, 100*rep.ReconfigShare)
	fmt.Println("(compare `accelshare utilization`: with hardware-supported switching at")
	fmt.Println(" Rs = 4100 the same pipeline spends ≈95% of its busy time streaming)")
	return nil
}

func runSpaceCheckAblation(args []string) error {
	fmt.Println("A1 — ablating the output-space check (§V-G; the check missing from [8])")
	fmt.Println("scenario: stream `clogged` has a very slow consumer; stream `victim` shares")
	fmt.Println("the accelerator. Without the space check the clogged block stalls inside the")
	fmt.Println("chain and head-of-line blocks the victim past its γ̂ bound.")
	run := func(disable bool) (mpsoc.Report, error) {
		cfg := mpsoc.Config{
			Name:              "ablate",
			HopLatency:        1,
			EntryCost:         15,
			ExitCost:          1,
			Mode:              gateway.ReconfigFixed,
			DisableSpaceCheck: disable,
			Accels:            []mpsoc.AccelSpec{{Name: "a", Cost: 1, NICapacity: 2}},
			Streams: []mpsoc.StreamSpec{
				{
					Name: "clogged", Block: 16, Decimation: 1, Reconfig: 50,
					InCapacity: 64, OutCapacity: 20,
					Engines:     []accel.Engine{accel.Passthrough{}},
					SinkPeriod:  5000,
					TotalInputs: 512,
				},
				{
					Name: "victim", Block: 16, Decimation: 1, Reconfig: 50,
					InCapacity: 64, OutCapacity: 64,
					Engines:     []accel.Engine{accel.Passthrough{}},
					TotalInputs: 2048,
				},
			},
		}
		sys, err := mpsoc.Build(cfg)
		if err != nil {
			return mpsoc.Report{}, err
		}
		sys.Run(2_000_000)
		return sys.Report(), nil
	}
	model := &core.System{
		Chain:   core.Chain{Name: "ablate", AccelCosts: []uint64{1}, EntryCost: 15, ExitCost: 1, NICapacity: 2},
		ClockHz: 100_000_000,
		Streams: []core.Stream{
			{Name: "clogged", Rate: big.NewRat(1, 1), Reconfig: 50, Block: 16},
			{Name: "victim", Rate: big.NewRat(1, 1), Reconfig: 50, Block: 16},
		},
	}
	gamma, err := model.GammaHat(1)
	if err != nil {
		return err
	}
	with, err := run(false)
	if err != nil {
		return err
	}
	without, err := run(true)
	if err != nil {
		return err
	}
	fmt.Printf("\n%-22s %18s %18s\n", "", "with space check", "without")
	fmt.Printf("%-22s %18d %18d\n", "victim worst turnaround", with.PerStream[1].MaxTurnaround, without.PerStream[1].MaxTurnaround)
	fmt.Printf("%-22s %18d %18d\n", "victim blocks served", with.PerStream[1].Blocks, without.PerStream[1].Blocks)
	fmt.Printf("γ̂ bound for the victim: %d cycles\n", gamma)
	if with.PerStream[1].MaxTurnaround <= gamma && without.PerStream[1].MaxTurnaround > gamma {
		fmt.Println("\nresult: with the check the bound holds; without it the victim blows through")
		fmt.Println("the bound — no conservative dataflow model exists for the unchecked design,")
		fmt.Println("which is exactly why the paper adds the check over [8].")
	} else {
		return fmt.Errorf("unexpected ablation outcome")
	}
	return nil
}

func runAll(args []string) error {
	type step struct {
		name string
		args []string
	}
	steps := []step{
		{"blocksizes", nil},
		{"blocksizes", []string{"-granularity", "8"}},
		{"fig6", nil},
		{"fig8", nil},
		{"fig11", nil},
		{"table1", nil},
		{"breakeven", nil},
		{"refinement", nil},
		{"paldemo", nil},
		{"utilization", nil},
		{"utilization", []string{"-sw-state"}},
		{"ablation-spacecheck", nil},
		{"memopt", nil},
		{"sharing-sweep", nil},
		{"ablation-arbiter", nil},
		{"ablation-flowcontrol", nil},
		{"ring-vs-crossbar", nil},
		{"faults", nil},
	}
	for _, st := range steps {
		fmt.Printf("\n================ accelshare %s %v ================\n\n", st.name, st.args)
		for _, c := range commands {
			if c.name == st.name {
				if err := c.run(st.args); err != nil {
					return fmt.Errorf("%s: %w", st.name, err)
				}
			}
		}
	}
	return nil
}
