// Buffersweep reproduces the paper's §V-E observation interactively:
// minimum buffer capacities are NOT monotone in the block size, so choosing
// the smallest feasible block does not minimise memory.
//
// Two views are printed:
//
//  1. the exact Fig. 8 experiment — a producer emitting 5 tokens per firing
//     into a consumer taking ηs per firing — sized by exact state-space
//     search, and
//  2. the total memory picture for a gateway stream: input + output FIFOs
//     scale linearly with ηs while the Fig. 8-style intermediate buffer
//     oscillates, so the total is a jagged, non-monotone curve.
package main

import (
	"fmt"
	"log"
	"strings"

	"accelshare/internal/buffer"
	"accelshare/internal/dataflow"
)

func minBuffer(eta int64) int64 {
	g := dataflow.NewGraph("fig8")
	a := g.AddActor("vA", 5)
	b := g.AddActor("vB", 0)
	fwd, back := g.AddBuffer("ab", a, b, dataflow.Const(5), dataflow.Const(eta), 1)
	s := &buffer.Sizer{G: g, Channels: []buffer.Channel{{Fwd: fwd, Back: back}}, Monitor: a}
	maxTh, err := s.MaxThroughput()
	if err != nil {
		log.Fatal(err)
	}
	caps, err := s.MinCapacitiesForThroughput(maxTh)
	if err != nil {
		log.Fatal(err)
	}
	return caps[0]
}

func main() {
	fmt.Println("minimum buffer capacity vs block size (paper Fig. 8, producer quantum 5)")
	fmt.Println()
	maxEta := int64(20)
	fmt.Printf("%6s %8s  %s\n", "ηs", "min αs", "")
	for eta := int64(1); eta <= maxEta; eta++ {
		alpha := minBuffer(eta)
		bar := strings.Repeat("#", int(alpha))
		marker := ""
		if alpha == buffer.ClassicalMinCapacity(5, eta) {
			marker = "" // always matches; keep output clean
		}
		fmt.Printf("%6d %8d  %s%s\n", eta, alpha, bar, marker)
	}

	fmt.Println("\nnote the dips at multiples of 5 (gcd effects): η = 5, 10, 15, 20 need less")
	fmt.Println("buffer than smaller blocks. The search agrees with p+c-gcd(p,c) throughout.")

	// Total memory for a gateway stream: α0 + α3 = 2η each (double
	// buffering) plus the intermediate channel.
	fmt.Println("\ntotal memory for a double-buffered gateway stream (4·η + αs):")
	fmt.Printf("%6s %8s %8s %8s\n", "ηs", "io", "αs", "total")
	bestEta, bestTotal := int64(0), int64(1<<62)
	for eta := int64(1); eta <= maxEta; eta++ {
		alpha := minBuffer(eta)
		io := 4 * eta
		total := io + alpha
		fmt.Printf("%6d %8d %8d %8d\n", eta, io, alpha, total)
		if total < bestTotal {
			bestEta, bestTotal = eta, total
		}
	}
	fmt.Printf("\nsmallest total memory at η = %d (%d words) — NOT at the smallest block size,\n", bestEta, bestTotal)
	fmt.Println("matching the paper's conclusion that minimising ηs does not minimise memory;")
	fmt.Println("finding the true optimum needs the branch-and-bound search (§V-F).")
}
