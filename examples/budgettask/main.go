// Budgettask demonstrates the software side of the paper's architecture:
// processor-tile tasks governed by a budget scheduler (§IV-A, [18]), the
// reason software stages like the stereo reconstruction L = (L+R) − R can
// appear in the dataflow model as actors with constant worst-case firing
// durations.
//
// One processor tile runs two tasks: the audio reconstruction task (30% of
// the tile) and a best-effort logging/housekeeping task (70%). The
// housekeeping task is then saturated with work — and the audio task's
// per-sample response times do not move at all, staying within the
// analytical bound R(C) = ⌈C/B⌉·(P−B)+C.
package main

import (
	"fmt"
	"log"

	"accelshare/internal/sim"
	"accelshare/internal/task"
)

func main() {
	const (
		period      = 1000 // scheduler replenishment period (cycles)
		audioBudget = 300
		bgBudget    = 700
		sampleCost  = 120 // cycles to reconstruct one stereo sample pair
		samples     = 200
		samplePer   = 2268 // 44.1 kHz at 100 MHz
	)

	run := func(loadBackground bool) (worst sim.Time, completions uint64) {
		k := sim.NewKernel()
		s, err := task.NewScheduler(k, period)
		if err != nil {
			log.Fatal(err)
		}
		audio, err := s.AddTask("stereo-reconstruct", audioBudget)
		if err != nil {
			log.Fatal(err)
		}
		bg, err := s.AddTask("housekeeping", bgBudget)
		if err != nil {
			log.Fatal(err)
		}
		if loadBackground {
			for i := 0; i < 5000; i++ {
				bg.Post(650, nil)
			}
		}
		// One reconstruction item per audio sample period.
		for i := 0; i < samples; i++ {
			i := i
			post := sim.Time(i * samplePer)
			k.Schedule(post, func() {
				audio.Post(sampleCost, func() {
					if resp := k.Now() - post; resp > worst {
						worst = resp
					}
				})
			})
		}
		k.RunAll()
		return worst, audio.Completed
	}

	idleWorst, n1 := run(false)
	loadWorst, n2 := run(true)

	k := sim.NewKernel()
	s, _ := task.NewScheduler(k, period)
	audio, _ := s.AddTask("stereo-reconstruct", audioBudget)
	bound := audio.WorstCaseLatency(sampleCost)

	fmt.Printf("budget scheduler: period %d cycles; audio task %d/%d, housekeeping %d/%d\n",
		period, audioBudget, period, bgBudget, period)
	fmt.Printf("audio work item: %d cycles per stereo sample, one every %d cycles\n\n", sampleCost, samplePer)
	fmt.Printf("%-28s %16s %12s\n", "scenario", "worst response", "completions")
	fmt.Printf("%-28s %16d %12d\n", "housekeeping idle", idleWorst, n1)
	fmt.Printf("%-28s %16d %12d\n", "housekeeping saturated", loadWorst, n2)
	fmt.Printf("\nanalytical bound R(C) = ⌈C/B⌉·(P−B)+C = %d cycles\n", bound)
	if idleWorst != loadWorst {
		log.Fatalf("ISOLATION BROKEN: %d != %d", idleWorst, loadWorst)
	}
	if loadWorst > bound {
		log.Fatalf("BOUND VIOLATED: %d > %d", loadWorst, bound)
	}
	fmt.Println("\nthe audio task's response is byte-identical under background saturation and")
	fmt.Println("within its bound: this constant worst case is what lets software tasks enter")
	fmt.Println("the paper's dataflow model as ordinary actors (ρC in Fig. 5).")
}
