// Quickstart: share one accelerator between two real-time streams.
//
// This example walks the paper's designer flow end to end on a minimal
// configuration:
//
//  1. describe the shared chain and the streams' throughput requirements,
//  2. compute minimum block sizes (Algorithm 1),
//  3. verify the throughput guarantee (Eq. 5),
//  4. inspect the per-block schedule and worst-case bounds (Eqs. 2–4),
//  5. check the hardware against the model on the cycle-level simulator.
package main

import (
	"fmt"
	"log"
	"math/big"

	"accelshare/internal/accel"
	"accelshare/internal/core"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
)

func main() {
	// Step 1: one accelerator (ρA = 4 cycles/sample) shared by two streams
	// through a gateway pair with a 2-cycle DMA and 1-cycle exit gateway on
	// a 100 MHz platform.
	sys := &core.System{
		Chain: core.Chain{
			Name:       "sharpen",
			AccelCosts: []uint64{4},
			EntryCost:  2,
			ExitCost:   1,
			NICapacity: 2,
		},
		ClockHz: 100_000_000,
		Streams: []core.Stream{
			{Name: "camera", Rate: big.NewRat(2_000_000, 1), Reconfig: 800},
			{Name: "radar", Rate: big.NewRat(500_000, 1), Reconfig: 800},
		},
	}

	// Step 2: minimum block sizes.
	res, err := sys.ComputeBlockSizes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimum block sizes (Algorithm 1):")
	for i, st := range sys.Streams {
		fmt.Printf("  %-8s η = %d samples\n", st.Name, res.Blocks[i])
	}

	// Step 3: throughput guarantees.
	if err := sys.VerifyThroughput(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthroughput guarantees (Eq. 5):")
	for i, st := range sys.Streams {
		rate, err := sys.GuaranteedRate(i)
		if err != nil {
			log.Fatal(err)
		}
		f, _ := rate.Float64()
		w, _ := st.Rate.Float64()
		fmt.Printf("  %-8s guaranteed %.0f S/s (required %.0f)\n", st.Name, f, w)
	}

	// Step 4: worst-case bounds per stream.
	fmt.Println("\nworst-case bounds:")
	for i, st := range sys.Streams {
		tau, err := sys.TauHat(i)
		if err != nil {
			log.Fatal(err)
		}
		eps, err := sys.EpsilonHat(i)
		if err != nil {
			log.Fatal(err)
		}
		gamma, err := sys.GammaHat(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s τ̂ = %d cycles, ε̂ = %d, γ̂ = %d (%.1f µs at 100 MHz)\n",
			st.Name, tau, eps, gamma, float64(gamma)/100)
	}

	// Step 5: run the same configuration as simulated hardware and compare
	// the measured worst-case turnaround against γ̂.
	cfg := mpsoc.Config{
		Name:       "quickstart",
		HopLatency: 1,
		EntryCost:  2,
		ExitCost:   1,
		Mode:       gateway.ReconfigFixed,
		Accels:     []mpsoc.AccelSpec{{Name: "sharpen", Cost: 4, NICapacity: 2}},
	}
	for i, st := range sys.Streams {
		// Drive each source at exactly its required rate: the period in
		// cycles is ClockHz / rate, kept exact as a rational.
		num := uint64(sys.ClockHz)
		den := uint64(st.Rate.Num().Int64())
		cfg.Streams = append(cfg.Streams, mpsoc.StreamSpec{
			Name:            st.Name,
			Block:           res.Blocks[i],
			Decimation:      1,
			Reconfig:        800,
			InCapacity:      int(3 * res.Blocks[i]),
			OutCapacity:     int(3 * res.Blocks[i]),
			Engines:         []accel.Engine{&accel.Gain{}},
			SourcePeriodNum: num,
			SourcePeriodDen: den,
			TotalInputs:     uint64(res.Blocks[i]) * 40,
		})
	}
	hw, err := mpsoc.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hw.Run(80_000_000)
	rep := hw.Report()
	fmt.Println("\nsimulated hardware vs model:")
	for i, sr := range rep.PerStream {
		gamma, err := sys.GammaHat(i)
		if err != nil {
			log.Fatal(err)
		}
		status := "within bound"
		if sr.MaxTurnaround > gamma {
			status = "BOUND VIOLATED"
		}
		fmt.Printf("  %-8s %d blocks, worst turnaround %d cycles vs γ̂ = %d  (%s, %d drops)\n",
			sr.Name, sr.Blocks, sr.MaxTurnaround, gamma, status, sr.Overflows)
	}
}
