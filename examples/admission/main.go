// Online admission: change the stream set of a RUNNING platform.
//
// The paper sizes block sizes ηs offline (Algorithm 1) for a fixed stream
// set. This example drives the online control plane instead: a four-stream
// platform is live, and the admission controller
//
//  1. admits a fifth stream mid-run — incremental re-solve, then a staged
//     mode transition (drain to a block boundary, reprogram the stream
//     slots over the configuration bus, resume) whose measured cost stays
//     under its precomputed bound;
//  2. removes a stream — the survivors' blocks shrink, cutting latency;
//  3. readmits it through a canary block (probational first block: one
//     clean completion restores full membership);
//  4. rejects an infeasible request with a machine-readable reason.
package main

import (
	"fmt"
	"log"
	"math/big"

	"accelshare/internal/accel"
	"accelshare/internal/admission"
	"accelshare/internal/core"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
)

func main() {
	// The running configuration: one accelerator (ρA = 1), entry DMA ε = 15,
	// exit δ = 1, Rs = 50, four streams at one sample per 75 cycles each.
	// Algorithm 1 gives η = 22 per stream (τ̂ = 410, γ̂ = 1640).
	model := &core.System{
		Chain: core.Chain{
			Name:       "chain",
			AccelCosts: []uint64{1},
			EntryCost:  15,
			ExitCost:   1,
			NICapacity: 2,
		},
		ClockHz: 1,
	}
	for _, name := range []string{"s1", "s2", "s3", "s4"} {
		model.Streams = append(model.Streams, core.Stream{
			Name: name, Rate: big.NewRat(1, 75), Reconfig: 50,
		})
	}
	if _, err := model.ComputeBlockSizes(); err != nil {
		log.Fatal(err)
	}
	engines := func(string) []accel.Engine { return []accel.Engine{&accel.Gain{}} }
	var specs []mpsoc.StreamSpec
	for i := range model.Streams {
		specs = append(specs, mpsoc.StreamSpec{
			Name:         model.Streams[i].Name,
			Block:        model.Streams[i].Block,
			Decimation:   1,
			Reconfig:     50,
			InCapacity:   128,
			OutCapacity:  128,
			SourcePeriod: 75,
			Engines:      engines(""),
		})
	}
	// ReserveSlots pre-allocates gateway stream slots (and their ring
	// ports) at build time, so a stream admitted later needs no rewiring.
	ms, err := mpsoc.BuildMulti(mpsoc.MultiConfig{
		Name: "admission-demo",
		Chains: []mpsoc.ChainSpec{{
			Name:              "chain",
			EntryCost:         15,
			ExitCost:          1,
			Mode:              gateway.ReconfigFixed,
			Accels:            []mpsoc.AccelSpec{{Name: "acc", Cost: 1, NICapacity: 2}},
			Streams:           specs,
			DrainTimeout:      200,
			Recovery:          gateway.Recovery{Enabled: true, RetryLimit: 2},
			RecordTurnarounds: true,
			ReserveSlots:      2,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := admission.New(ms, admission.Config{
		Chain:       0,
		Model:       model,
		PerSlotCost: 10,
		Engines:     engines,
	})
	if err != nil {
		log.Fatal(err)
	}
	ms.Chains[0].Pair.Start()
	k := ms.K

	report := func(what string) func(admission.Verdict) {
		return func(v admission.Verdict) {
			if !v.Accepted {
				fmt.Printf("t=%-6d %s: rejected (%s) %s\n", k.Now(), what, v.Reason, v.Detail)
				return
			}
			fmt.Printf("t=%-6d %s: admitted, blocks:", k.Now(), what)
			for _, a := range v.Blocks {
				fmt.Printf(" %s=%d", a.Name, a.Block)
			}
			fmt.Printf("\n         transition: pause %d + bus %d cycles (bound %d)\n",
				v.PauseWait, v.BusCycles, v.BoundCycles)
		}
	}

	// Let the platform reach steady state, then admit a fifth stream with a
	// lower rate (one sample per 300 cycles). The survivors' blocks grow
	// from 22 to 36; the new stream gets η = 9.
	k.Run(3000)
	ctrl.AddStream(admission.AddRequest{
		Spec: mpsoc.StreamSpec{
			Name: "s5", Decimation: 1, Reconfig: 50,
			InCapacity: 64, OutCapacity: 64, SourcePeriod: 300,
			Engines: engines("s5"),
		},
		Rate: big.NewRat(1, 300),
	}, report("add s5"))
	k.Run(20_000)

	// Remove s4: the re-solve shrinks everyone's blocks — less buffering,
	// lower worst-case latency — and the freed slot is parked.
	ctrl.RemoveStream("s4", report("remove s4"))
	k.Run(30_000)

	// Readmit s4. Its first block is a canary: served under probation, one
	// clean completion makes the stream a full member again (a stall would
	// re-quarantine it immediately and roll the survivors back).
	ctrl.Readmit("s4", report("readmit s4"))
	k.Run(40_000)

	// A fifth 1/75-rate stream would push utilisation past 1: Algorithm 1
	// has no solution, and the controller says exactly why.
	ctrl.AddStream(admission.AddRequest{
		Spec: mpsoc.StreamSpec{
			Name: "s6", Decimation: 1, Reconfig: 50,
			InCapacity: 64, OutCapacity: 64, SourcePeriod: 75,
			Engines: engines("s6"),
		},
		Rate: big.NewRat(1, 75),
	}, report("add s6"))
	k.Run(60_000)

	fmt.Println("\nevent log (deterministic; replayable via `accelshare admit`):")
	fmt.Print(admission.FormatEvents(ctrl.Events()))

	fmt.Println("\nfinal platform state:")
	ch := ms.Chains[0]
	for i, snap := range ch.Pair.Snapshot() {
		fmt.Printf("  %-4s η=%-3d %4d blocks, %6d in / %6d out, %d overflows\n",
			snap.Name, snap.Block, snap.Blocks, snap.SamplesIn, snap.SamplesOut,
			ch.Strs[i].Overflows)
	}
}
