// Multiradio demonstrates the paper's second sharing scenario (§I):
// accelerators shared between data streams of DIFFERENT applications
// executing simultaneously on the MPSoC. Two independent software-defined
// radios — an FM broadcast receiver and a narrowband telemetry receiver at
// a different carrier and rate — multiplex their channelisation (mixer +
// LPF/down-sampler) over one CORDIC and one FIR accelerator.
//
// The round-robin entry gateway isolates the radios temporally: each
// stream's worst-case turnaround stays below its γ̂ bound regardless of
// what the other application does, which is the property that makes
// cross-application sharing safe under real-time constraints.
package main

import (
	"fmt"
	"log"
	"math"
	"math/big"

	"accelshare/internal/accel"
	"accelshare/internal/core"
	"accelshare/internal/dsp"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
	"accelshare/internal/pal"
	"accelshare/internal/sim"
)

func main() {
	const clock = 100_000_000.0

	// Radio A: wideband FM at 1.4112 MS/s, carrier +300 kHz, ÷8 to 176.4 kS/s.
	// Radio B: telemetry at 352.8 kS/s, carrier -80 kHz, ÷8 to 44.1 kS/s.
	// Untyped constants: exact in the model's int64/big.Rat contexts and in
	// the float DSP contexts alike (no float-derived value feeds a bound).
	const rateA = 44100.0 * 32
	const rateB = 44100.0 * 8

	model := &core.System{
		Chain: core.Chain{
			Name:       "channelizer",
			AccelCosts: []uint64{1, 1}, // CORDIC, FIR+D
			EntryCost:  15,
			ExitCost:   1,
			NICapacity: 2,
		},
		ClockHz: int64(clock),
		Streams: []core.Stream{
			{Name: "radioA", Rate: big.NewRat(int64(rateA), 1), Reconfig: 4100},
			{Name: "radioB", Rate: big.NewRat(int64(rateB), 1), Reconfig: 4100},
		},
	}
	res, err := model.ComputeBlockSizesRounded([]int64{8, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("two applications share one CORDIC + FIR chain:")
	for i, st := range model.Streams {
		gamma, err := model.GammaHat(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s rate %.4g S/s, block η = %d, γ̂ = %d cycles (%.0f µs)\n",
			st.Name, float64(st.Rate.Num().Int64()), res.Blocks[i], gamma, float64(gamma)/100)
	}
	if err := model.VerifyThroughput(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  Eq. 5 verified for both applications")

	// Build the hardware. Each radio receives its own FM tone.
	lpf, err := dsp.DesignLowPass(33, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	coef := dsp.QuantizeQ15(lpf)
	firA, _ := accel.NewFIR(coef, 8)
	firB, _ := accel.NewFIR(coef, 8)

	modA := dsp.NewModulator(300_000, 30_000, rateA, 1<<20)
	modB := dsp.NewModulator(-80_000, 10_000, rateB, 1<<20)
	toneA, toneB := 2000.0, 700.0

	mkSource := func(m *dsp.Modulator, tone, rate float64) func(uint64) sim.Word {
		return func(n uint64) sim.Word {
			audio := int32(15000 * math.Sin(2*math.Pi*tone*float64(n)/rate))
			i, q := m.Modulate(audio)
			return sim.PackIQ(i, q)
		}
	}

	const seconds = 0.02
	cfg := mpsoc.Config{
		Name:       "multiradio",
		HopLatency: 1,
		EntryCost:  15,
		ExitCost:   1,
		Mode:       gateway.ReconfigFixed,
		Accels: []mpsoc.AccelSpec{
			{Name: "cordic", Cost: 1, NICapacity: 2},
			{Name: "fir+d", Cost: 1, NICapacity: 2},
		},
		Streams: []mpsoc.StreamSpec{
			{
				Name: "radioA", Block: res.Blocks[0], Decimation: 8, Reconfig: 4100,
				InCapacity: int(3 * res.Blocks[0]), OutCapacity: int(res.Blocks[0]),
				Engines:         []accel.Engine{accel.NewMixer(-300_000, rateA), firA},
				SourcePeriodNum: uint64(clock), SourcePeriodDen: uint64(rateA),
				Source:         mkSource(modA, toneA, rateA),
				TotalInputs:    uint64(seconds * rateA),
				CollectOutputs: true,
			},
			{
				Name: "radioB", Block: res.Blocks[1], Decimation: 8, Reconfig: 4100,
				InCapacity: int(3 * res.Blocks[1]), OutCapacity: int(res.Blocks[1]),
				Engines:         []accel.Engine{accel.NewMixer(80_000, rateB), firB},
				SourcePeriodNum: uint64(clock), SourcePeriodDen: uint64(rateB),
				Source:         mkSource(modB, toneB, rateB),
				TotalInputs:    uint64(seconds * rateB),
				CollectOutputs: true,
			},
		},
	}
	sys, err := mpsoc.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(sim.Time(seconds*clock) * 2)

	rep := sys.Report()
	fmt.Println("\nsimulated hardware:")
	for i, sr := range rep.PerStream {
		gamma, err := model.GammaHat(i)
		if err != nil {
			log.Fatal(err)
		}
		status := "isolated (within γ̂)"
		if sr.MaxTurnaround > gamma {
			status = "INTERFERENCE BOUND VIOLATED"
		}
		fmt.Printf("  %-7s %3d blocks, %6d samples out, %d drops, worst turnaround %d vs γ̂ %d — %s\n",
			sr.Name, sr.Blocks, sr.SamplesOut, sr.Overflows, sr.MaxTurnaround, gamma, status)
	}

	// The channelised outputs should still carry each radio's FM energy
	// (the baseband after mixing + LPF is the FM signal around DC).
	for i, name := range []string{"radioA", "radioB"} {
		outs := sys.Strs[i].Outputs
		if len(outs) == 0 {
			log.Fatalf("%s produced no output", name)
		}
		var is []int32
		for _, w := range outs {
			v, _ := sim.UnpackIQ(w)
			is = append(is, v)
		}
		fmt.Printf("  %-7s channelised output RMS %.0f over %d samples\n", name, pal.RMS(is), len(is))
	}
	fmt.Println("\nsharing one accelerator set between two concurrent applications kept both")
	fmt.Println("within their real-time bounds — the cross-application case of §I.")
}
