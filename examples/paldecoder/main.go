// Paldecoder runs the paper's full demonstrator: a PAL television stereo
// broadcast is synthesised, decoded in real time on the simulated MPSoC —
// one CORDIC and one FIR+down-sampler shared by four streams through a
// single gateway pair — and the reconstructed stereo audio is written to a
// WAV file so you can listen to the result.
//
// Usage:
//
//	go run ./examples/paldecoder [-seconds 0.2] [-out stereo.wav]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"accelshare/internal/pal"
	"accelshare/internal/sim"
	"accelshare/internal/wav"
)

func main() {
	seconds := flag.Float64("seconds", 0.1, "seconds of audio to decode")
	out := flag.String("out", "stereo.wav", "output WAV path (empty = skip)")
	toneL := flag.Float64("toneL", 523.25, "left-channel test tone in Hz (C5)")
	toneR := flag.Float64("toneR", 659.25, "right-channel test tone in Hz (E5)")
	flag.Parse()

	p := pal.DefaultParams()
	p.Seconds = *seconds
	p.ToneL = *toneL
	p.ToneR = *toneR

	fmt.Printf("synthesising %.2f s of PAL baseband at %.4g S/s (FM carriers %+.0f / %+.0f kHz)\n",
		*seconds, p.FrontendRate(), p.Carrier1/1000, p.Carrier2/1000)
	d, err := pal.Build(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoding on the shared-accelerator MPSoC (blocks %v, Rs = %d cycles)...\n", p.Blocks, p.Reconfig)
	d.Run(sim.Time(*seconds*p.ClockHz) * 2)

	rep := d.Sys.Report()
	fmt.Printf("\n%-12s %8s %12s %12s %6s\n", "stream", "blocks", "in", "out", "drops")
	for _, sr := range rep.PerStream {
		fmt.Printf("%-12s %8d %12d %12d %6d\n", sr.Name, sr.Blocks, sr.SamplesIn, sr.SamplesOut, sr.Overflows)
	}
	fmt.Printf("\ndecoded %d stereo samples (%.1f ms); gateway: %.1f%% streaming / %.1f%% reconfig\n",
		len(d.L), 1000*float64(len(d.L))/p.AudioRate, 100*rep.StreamingShare, 100*rep.ReconfigShare)

	if len(d.L) > 400 {
		l, r := d.L[200:], d.R[200:]
		fmt.Printf("left  channel: RMS %.0f, tone@%gHz power ratio %.1e\n",
			pal.RMS(l), p.ToneL, pal.GoertzelPower(l, p.ToneL, p.AudioRate)/(1+pal.GoertzelPower(l, p.ToneR, p.AudioRate)))
		fmt.Printf("right channel: RMS %.0f, tone@%gHz power ratio %.1e\n",
			pal.RMS(r), p.ToneR, pal.GoertzelPower(r, p.ToneR, p.AudioRate)/(1+pal.GoertzelPower(r, p.ToneL, p.AudioRate)))
	}

	if *out != "" && len(d.L) > 0 {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := wav.WriteStereo(f, d.L, d.R, int(p.AudioRate)); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d samples, 16-bit stereo %d Hz)\n", *out, len(d.L), int(p.AudioRate))
	}
}
