package accelshare

// One benchmark per table/figure of the paper's evaluation plus the
// DESIGN.md ablations. Each bench regenerates its artifact's numbers per
// iteration (and asserts the result is still the expected one, so `go test
// -bench` doubles as a reproduction check).

import (
	"math/big"
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/buffer"
	"accelshare/internal/core"
	"accelshare/internal/cost"
	"accelshare/internal/dataflow"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
	"accelshare/internal/pal"
)

func palModel() *core.System {
	mk := func(name string, rate int64) core.Stream {
		return core.Stream{Name: name, Rate: big.NewRat(rate, 1), Reconfig: 4100}
	}
	return &core.System{
		Chain: core.Chain{
			Name:       "cordic+fir",
			AccelCosts: []uint64{1, 1},
			EntryCost:  15,
			ExitCost:   1,
			NICapacity: 2,
		},
		Streams: []core.Stream{
			mk("ch1.stage1", 44100*64), mk("ch2.stage1", 44100*64),
			mk("ch1.stage2", 44100*8), mk("ch2.stage2", 44100*8),
		},
		ClockHz: 100_000_000,
	}
}

// BenchmarkFig6Schedule regenerates the Fig. 6 execution schedule: one block
// of the PAL stage-1 stream simulated through the CSDF model.
func BenchmarkFig6Schedule(b *testing.B) {
	s := palModel()
	s.Streams[0].Block = 1024
	for i := 0; i < b.N; i++ {
		sched, err := s.ScheduleBlock(0)
		if err != nil {
			b.Fatal(err)
		}
		if sched.Tau > sched.TauHat {
			b.Fatalf("τ = %d > τ̂ = %d", sched.Tau, sched.TauHat)
		}
	}
}

// BenchmarkTauBound is E2: the Eq. 2 bound checked against the simulated
// schedule across a block-size sweep.
func BenchmarkTauBound(b *testing.B) {
	s := palModel()
	for i := 0; i < b.N; i++ {
		for _, eta := range []int64{1, 16, 256} {
			s.Streams[0].Block = eta
			sched, err := s.ScheduleBlock(0)
			if err != nil {
				b.Fatal(err)
			}
			if sched.Tau > sched.TauHat {
				b.Fatal("bound violated")
			}
		}
	}
}

// BenchmarkFig8Buffers regenerates the Fig. 8b table: exact minimum buffer
// capacities for ηs = 1..5, asserting the paper's non-monotone values.
func BenchmarkFig8Buffers(b *testing.B) {
	want := []int64{5, 6, 7, 8, 5}
	for i := 0; i < b.N; i++ {
		for eta := int64(1); eta <= 5; eta++ {
			g := dataflow.NewGraph("fig8")
			va := g.AddActor("vA", 5)
			vb := g.AddActor("vB", 0)
			fwd, back := g.AddBuffer("ab", va, vb, dataflow.Const(5), dataflow.Const(eta), 1)
			s := &buffer.Sizer{G: g, Channels: []buffer.Channel{{Fwd: fwd, Back: back}}, Monitor: va}
			maxTh, err := s.MaxThroughput()
			if err != nil {
				b.Fatal(err)
			}
			caps, err := s.MinCapacitiesForThroughput(maxTh)
			if err != nil {
				b.Fatal(err)
			}
			if caps[0] != want[eta-1] {
				b.Fatalf("η=%d: α=%d, want %d", eta, caps[0], want[eta-1])
			}
		}
	}
}

// BenchmarkBlockSizeILP is E4: Algorithm 1 on the PAL configuration via the
// exact ILP.
func BenchmarkBlockSizeILP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := palModel()
		res, err := s.ComputeBlockSizesILP()
		if err != nil {
			b.Fatal(err)
		}
		if res.Blocks[0] != 9831 || res.Blocks[2] != 1229 {
			b.Fatalf("blocks = %v", res.Blocks)
		}
	}
}

// BenchmarkBlockSizeSolvers is A4: ILP versus fixed-point iteration.
func BenchmarkBlockSizeSolvers(b *testing.B) {
	b.Run("ilp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := palModel()
			if _, err := s.ComputeBlockSizesILP(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fixedpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := palModel()
			if _, err := s.ComputeBlockSizesFixedPoint(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPALDecoder is E5: the §VI-A demonstrator decoding 5 ms of audio
// per iteration on the cycle-level platform.
func BenchmarkPALDecoder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := pal.DefaultParams()
		p.Seconds = 0.005
		d, err := pal.Build(p)
		if err != nil {
			b.Fatal(err)
		}
		d.Run(1_500_000)
		rep := d.Sys.Report()
		for _, sr := range rep.PerStream {
			if sr.Overflows != 0 {
				b.Fatal("real-time violation")
			}
		}
	}
}

// BenchmarkUtilization is E8: gateway duty cycle and accelerator
// utilisation measurement.
func BenchmarkUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := pal.DefaultParams()
		p.Seconds = 0.005
		d, err := pal.Build(p)
		if err != nil {
			b.Fatal(err)
		}
		d.Run(1_500_000)
		rep := d.Sys.Report()
		if rep.StreamingShare < 0.9 {
			b.Fatalf("streaming share %.2f, expected ≈0.95", rep.StreamingShare)
		}
	}
}

// BenchmarkCostModel is E6 (Fig. 11): the per-component cost table.
func BenchmarkCostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if cost.FormatFig11() == "" {
			b.Fatal("empty")
		}
	}
}

// BenchmarkSavings is E7 (Table I): the shared-vs-duplicated comparison,
// asserting the paper's 63.5% / 66.3%.
func BenchmarkSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp := cost.PaperTableI()
		if cmp.Savings.Slices != 20890 || cmp.Savings.LUTs != 33712 {
			b.Fatalf("savings = %+v", cmp.Savings)
		}
	}
}

// BenchmarkAbstractionPessimism is A2: refinement check between the
// detailed CSDF model and the single-actor SDF abstraction.
func BenchmarkAbstractionPessimism(b *testing.B) {
	s := &core.System{
		Chain:   core.Chain{Name: "a2", AccelCosts: []uint64{3}, EntryCost: 2, ExitCost: 1, NICapacity: 2},
		ClockHz: 100_000_000,
		Streams: []core.Stream{
			{Name: "s", Rate: big.NewRat(1000, 1), Reconfig: 50, Block: 8},
			{Name: "o", Rate: big.NewRat(1000, 1), Reconfig: 50, Block: 16},
		},
	}
	p := core.ModelParams{ProducerCost: 1, ConsumerCost: 2, InputCapacity: 16, OutputCapacity: 16, IncludeInterference: true}
	for i := 0; i < b.N; i++ {
		rep, err := s.CheckRefinement(0, p, 64)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Refines {
			b.Fatal("refinement violated")
		}
	}
}

// BenchmarkStateSwitchModes is A3: fixed-Rs hardware switching versus
// per-word software switching on the same workload.
func BenchmarkStateSwitchModes(b *testing.B) {
	run := func(b *testing.B, mode gateway.ReconfigMode) mpsoc.Report {
		fir1, _ := accel.NewFIR(make([]int32, 33), 1)
		fir2, _ := accel.NewFIR(make([]int32, 33), 1)
		cfg := mpsoc.Config{
			Name: "a3", HopLatency: 1, EntryCost: 15, ExitCost: 1,
			Mode: mode, BusBase: 200, BusPerWord: 500,
			Accels: []mpsoc.AccelSpec{{Name: "fir", Cost: 1, NICapacity: 2}},
			Streams: []mpsoc.StreamSpec{
				{Name: "x", Block: 64, Decimation: 1, Reconfig: 4100,
					InCapacity: 256, OutCapacity: 256,
					Engines: []accel.Engine{fir1}, TotalInputs: 2048},
				{Name: "y", Block: 64, Decimation: 1, Reconfig: 4100,
					InCapacity: 256, OutCapacity: 256,
					Engines: []accel.Engine{fir2}, TotalInputs: 2048},
			},
		}
		sys, err := mpsoc.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(20_000_000)
		return sys.Report()
	}
	b.Run("hardware-Rs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := run(b, gateway.ReconfigFixed)
			if rep.ReconfigShare > 0.9 {
				b.Fatal("fixed mode unexpectedly dominated by reconfig")
			}
		}
	})
	b.Run("software-per-word", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := run(b, gateway.ReconfigPerWord)
			if rep.ReconfigShare < rep.StreamingShare {
				b.Fatal("per-word mode should be reconfig-dominated")
			}
		}
	})
}

// BenchmarkSpaceCheckAblation is A1: the run with the output-space check
// disabled (the head-of-line-blocking regime).
func BenchmarkSpaceCheckAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := mpsoc.Config{
			Name: "a1", HopLatency: 1, EntryCost: 15, ExitCost: 1,
			Mode: gateway.ReconfigFixed, DisableSpaceCheck: true,
			Accels: []mpsoc.AccelSpec{{Name: "a", Cost: 1, NICapacity: 2}},
			Streams: []mpsoc.StreamSpec{
				{Name: "clogged", Block: 16, Decimation: 1, Reconfig: 50,
					InCapacity: 64, OutCapacity: 20,
					Engines: []accel.Engine{accel.Passthrough{}}, SinkPeriod: 5000, TotalInputs: 256},
				{Name: "victim", Block: 16, Decimation: 1, Reconfig: 50,
					InCapacity: 64, OutCapacity: 64,
					Engines: []accel.Engine{accel.Passthrough{}}, TotalInputs: 1024},
			},
		}
		sys, err := mpsoc.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(1_000_000)
	}
}
