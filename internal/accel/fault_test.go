package accel

import (
	"testing"

	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

// wireTile builds kernel + dual ring + one tile with an upstream link from
// node 0 and a downstream link into a sink queue at node 2.
func wireTile(t *testing.T, cost sim.Time) (*sim.Kernel, *Tile, *Link, *sim.Queue) {
	t.Helper()
	k := sim.NewKernel()
	net, err := ring.NewDual(k, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tile := NewTile("acc", k, cost, 4)
	up := NewLink("up", k, net, 0, 1, 1, 1, tile.In())
	sink := sim.NewQueue("sink", 16)
	down := NewLink("down", k, net, 1, 2, 1, 1, sink)
	tile.SetDownstream(down)
	return k, tile, up, sink
}

func TestTileAbortDiscardsInFlightWork(t *testing.T) {
	k, tile, up, sink := wireTile(t, 10)
	g := &Gain{}
	if err := tile.SetEngine(g); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !up.TrySend(sim.Word(i)) {
			t.Fatalf("send %d refused", i)
		}
	}
	// Let the first sample enter processing (cost 10), then abort mid-sample.
	k.Run(k.Now() + 7)
	if tile.Idle() {
		t.Fatal("tile should be mid-sample")
	}
	tile.Abort()
	if !tile.Idle() {
		t.Fatal("tile not idle after Abort")
	}
	if tile.Aborted == 0 {
		t.Error("aborted words not counted")
	}
	k.RunAll()
	// The aborted sample's completion event must be a no-op: the engine never
	// processed anything and nothing reached the sink.
	if g.Count != 0 {
		t.Errorf("engine processed %d samples after abort", g.Count)
	}
	if sink.Len() != 0 {
		t.Errorf("sink holds %d words after abort", sink.Len())
	}
	// The tile must still work after the flush.
	if !up.TrySend(sim.Word(9)) {
		t.Fatal("post-abort send refused")
	}
	k.RunAll()
	if g.Count != 1 || sink.Len() != 1 {
		t.Fatalf("post-abort processing broken: count=%d sink=%d", g.Count, sink.Len())
	}
}

func TestLinkWedgeForBlocksAndRecovers(t *testing.T) {
	k, tile, up, sink := wireTile(t, 1)
	if err := tile.SetEngine(Passthrough{}); err != nil {
		t.Fatal(err)
	}
	up.WedgeFor(50)
	if up.TrySend(1) {
		t.Fatal("wedged link accepted a send")
	}
	if up.WedgeRejects != 1 {
		t.Errorf("WedgeRejects = %d", up.WedgeRejects)
	}
	if !up.Wedged() {
		t.Error("Wedged() = false during wedge")
	}
	k.Run(60)
	if up.Wedged() {
		t.Error("Wedged() = true after expiry")
	}
	if !up.TrySend(2) {
		t.Fatal("send refused after wedge lifted")
	}
	k.RunAll()
	if sink.Len() != 1 {
		t.Fatalf("sink holds %d words", sink.Len())
	}
}

func TestLinkWedgePermanent(t *testing.T) {
	_, _, up, _ := wireTile(t, 1)
	up.WedgeFor(0)
	if up.TrySend(1) {
		t.Fatal("permanently wedged link accepted a send")
	}
	if !up.Wedged() {
		t.Error("permanent wedge not reported")
	}
}

func TestLinkWedgeWakesSubscribersOnLift(t *testing.T) {
	k, _, up, _ := wireTile(t, 1)
	woken := 0
	up.SubscribeCredits(sim.NewWaker(k, func() { woken++ }))
	up.WedgeFor(30)
	k.RunAll()
	if woken == 0 {
		t.Error("credit subscribers not woken when wedge lifted")
	}
}

func TestLinkResetRestoresCredits(t *testing.T) {
	k, tile, up, sink := wireTile(t, 1)
	if err := tile.SetEngine(Passthrough{}); err != nil {
		t.Fatal(err)
	}
	// Fill the chain so credits are spent: NI capacity 4 downstream of up.
	for i := 0; i < 4; i++ {
		up.TrySend(sim.Word(i))
	}
	if up.Credits() == up.Queue().Cap() {
		t.Fatal("credits not spent")
	}
	k.RunAll()
	// Simulate a flush: clear the chain state, then reset the link.
	tile.Abort()
	up.Queue().Clear()
	sink.Clear()
	up.Reset()
	if up.Credits() != up.Queue().Cap() {
		t.Fatalf("credits = %d after Reset, want %d", up.Credits(), up.Queue().Cap())
	}
	// Traffic flows normally after the reset and credits return fully.
	for i := 0; i < 4; i++ {
		if !up.TrySend(sim.Word(i)) {
			t.Fatalf("post-reset send %d refused", i)
		}
	}
	k.RunAll()
	if sink.Len() != 4 {
		t.Fatalf("sink holds %d words after reset traffic", sink.Len())
	}
	if up.Credits() != up.Queue().Cap() {
		t.Fatalf("credits = %d after post-reset traffic drained", up.Credits())
	}
}
