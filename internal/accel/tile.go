package accel

import (
	"fmt"

	"accelshare/internal/sim"
)

// Tile is one accelerator tile: an NI input queue fed by an upstream Link,
// a processing engine, and a downstream Link. It processes one word per
// Cost cycles when input is available, and stalls (holding partial output)
// when the downstream link has no credits — exactly the stall behaviour the
// paper's NIs provide.
type Tile struct {
	Name string
	// Cost is ρA, the cycles per consumed sample.
	Cost sim.Time

	k      *sim.Kernel
	in     *sim.Queue
	out    *Link
	engine Engine

	busy    bool
	pending []sim.Word // produced words awaiting downstream credits
	step    *sim.Waker
	epoch   uint64 // bumped by Abort to cancel in-flight completions

	// BusyCycles accumulates processing time for utilisation reporting;
	// Processed counts consumed samples; Aborted counts words discarded by
	// chain flushes.
	BusyCycles uint64
	Processed  uint64
	Aborted    uint64
}

// NewTile builds an accelerator around an NI input queue of the given
// capacity. Wire the input with a Link targeting Tile.In(), then call
// SetDownstream.
func NewTile(name string, k *sim.Kernel, cost sim.Time, niCapacity int) *Tile {
	t := &Tile{Name: name, Cost: cost, k: k}
	t.in = sim.NewQueue(name+".ni", niCapacity)
	t.step = sim.NewWaker(k, t.run)
	t.in.SubscribeData(t.step)
	return t
}

// In returns the NI input queue (the destination for the upstream Link).
func (t *Tile) In() *sim.Queue { return t.in }

// SetDownstream attaches the outgoing link.
func (t *Tile) SetDownstream(l *Link) {
	t.out = l
	l.SubscribeCredits(t.step)
	l.SubscribeRingSpace(t.step)
}

// SetEngine installs the active engine (nil detaches — the tile then
// stalls, which is what happens mid-context-switch). Swaps outside a
// configuration-bus transaction are a modelling error, so the tile must be
// idle.
func (t *Tile) SetEngine(e Engine) error {
	if t.busy || len(t.pending) > 0 || t.in.Len() > 0 {
		return fmt.Errorf("accel: %s engine swap while pipeline not idle (busy=%v pending=%d queued=%d)",
			t.Name, t.busy, len(t.pending), t.in.Len())
	}
	t.engine = e
	t.step.Wake()
	return nil
}

// Engine returns the active engine.
func (t *Tile) Engine() Engine { return t.engine }

// Downstream returns the outgoing link (nil before SetDownstream).
func (t *Tile) Downstream() *Link { return t.out }

// Abort discards all in-flight work: the NI queue contents, produced words
// awaiting credits, and the sample currently being processed (its scheduled
// completion becomes a no-op and its output is never produced). The engine's
// state is untouched — Process only runs at completion, so an aborted sample
// never mutated it. Used by the gateway's chain-flush fault recovery.
// Aborted counts the discarded words for diagnostics.
func (t *Tile) Abort() {
	t.epoch++
	if t.busy {
		t.busy = false
		t.Aborted++
	}
	t.Aborted += uint64(len(t.pending) + t.in.Len())
	t.pending = t.pending[:0]
	t.in.Clear()
}

// Idle reports whether the tile holds no in-flight work.
func (t *Tile) Idle() bool { return !t.busy && len(t.pending) == 0 && t.in.Len() == 0 }

// run is the tile's step function.
func (t *Tile) run() {
	// Drain pending outputs first; stall while the link refuses.
	for len(t.pending) > 0 {
		if !t.out.TrySend(t.pending[0]) {
			return
		}
		t.pending = t.pending[1:]
	}
	if t.busy || t.engine == nil {
		return
	}
	w, ok := t.in.TryPop()
	if !ok {
		return
	}
	t.busy = true
	t.BusyCycles += uint64(t.Cost)
	t.Processed++
	epoch := t.epoch
	t.k.Schedule(t.Cost, func() {
		if t.epoch != epoch {
			return // aborted mid-sample by a chain flush
		}
		t.busy = false
		t.pending = t.engine.Process(w, t.pending)
		t.run()
	})
}

// ConfigBus is the dedicated bus the entry gateway uses to save and restore
// accelerator state (paper Fig. 3b / §IV-C). Operations are serialised;
// each moves a number of state words at PerWord cycles plus a fixed Base
// cost.
type ConfigBus struct {
	k        *sim.Kernel
	nextFree sim.Time
	// Base is the fixed per-operation cost in cycles.
	Base sim.Time
	// PerWord is the cycles per state word moved.
	PerWord sim.Time

	// Cycles accumulates total bus occupancy; Ops counts transfers.
	Cycles uint64
	Ops    uint64
}

// NewConfigBus builds a bus with the given costs.
func NewConfigBus(k *sim.Kernel, base, perWord sim.Time) *ConfigBus {
	return &ConfigBus{k: k, Base: base, PerWord: perWord}
}

// Transfer schedules a state movement of the given word count and invokes
// done when it completes. Transfers queue behind each other (single bus).
func (b *ConfigBus) Transfer(words int, done func()) {
	b.TransferCycles(b.Base+sim.Time(words)*b.PerWord, done)
}

// TransferCycles occupies the bus for an explicit duration — used by the
// fixed-Rs reconfiguration model.
func (b *ConfigBus) TransferCycles(cost sim.Time, done func()) {
	start := b.k.Now()
	if b.nextFree > start {
		start = b.nextFree
	}
	b.nextFree = start + cost
	b.Cycles += uint64(cost)
	b.Ops++
	b.k.ScheduleAt(b.nextFree, done)
}

// BusyUntil returns the time the bus frees up.
func (b *ConfigBus) BusyUntil() sim.Time { return b.nextFree }
