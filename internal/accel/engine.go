// Package accel models the paper's accelerator tiles: a coarsely
// programmable processing engine behind a network interface with
// credit-based flow control, plus the configuration bus used to save and
// restore per-stream state on context switches.
//
// An accelerator knows nothing about the rest of the system: it consumes an
// incoming word stream from its NI and produces an outgoing word stream,
// stalling on empty input or missing downstream credits (paper §IV-B).
package accel

import (
	"fmt"

	"accelshare/internal/dsp"
	"accelshare/internal/sim"
)

// Engine is the functional core of an accelerator. One Engine instance
// holds the state of one stream on one accelerator; context switches save
// the active instance and load another (through the configuration bus,
// which charges the cycles).
type Engine interface {
	// Process consumes one input word and appends 0..n produced words to
	// out (down-sampling engines produce less than one word per input).
	Process(w sim.Word, out []sim.Word) []sim.Word
	// SaveState serialises the mutable per-stream state.
	SaveState() []uint64
	// LoadState restores a snapshot produced by SaveState.
	LoadState([]uint64) error
	// StateWords is the state footprint in 64-bit words, the amount of
	// traffic a context switch moves over the configuration bus.
	StateWords() int
}

// Passthrough forwards words unchanged — the identity engine used in tests
// and as the exit-gateway's DMA core.
type Passthrough struct{}

// Process copies the input to the output.
func (Passthrough) Process(w sim.Word, out []sim.Word) []sim.Word { return append(out, w) }

// SaveState returns an empty snapshot.
func (Passthrough) SaveState() []uint64 { return nil }

// LoadState accepts only empty snapshots.
func (Passthrough) LoadState(s []uint64) error {
	if len(s) != 0 {
		return fmt.Errorf("accel: passthrough has no state")
	}
	return nil
}

// StateWords is zero.
func (Passthrough) StateWords() int { return 0 }

// Gain multiplies both components by a constant shift — a trivial stateful
// engine for arbitration tests.
type Gain struct {
	Shift uint8
	Count uint64
}

// Process scales the sample.
func (g *Gain) Process(w sim.Word, out []sim.Word) []sim.Word {
	i, q := sim.UnpackIQ(w)
	g.Count++
	return append(out, sim.PackIQ(i<<g.Shift, q<<g.Shift))
}

// SaveState stores the sample counter.
func (g *Gain) SaveState() []uint64 { return []uint64{g.Count} }

// LoadState restores the counter.
func (g *Gain) LoadState(s []uint64) error {
	if len(s) != 1 {
		return fmt.Errorf("accel: gain state must be 1 word")
	}
	g.Count = s[0]
	return nil
}

// StateWords is one.
func (g *Gain) StateWords() int { return 1 }

// Mixer is the CORDIC channel-mixer engine: it rotates each complex sample
// by a programmable NCO, translating the stream in frequency (paper §VI-A's
// first CORDIC use).
type Mixer struct {
	M dsp.Mixer
}

// NewMixer builds a mixer engine shifting by freqHz at sampleRateHz.
func NewMixer(freqHz, sampleRateHz float64) *Mixer {
	return &Mixer{M: *dsp.NewMixer(freqHz, sampleRateHz)}
}

// Process rotates one sample.
func (m *Mixer) Process(w sim.Word, out []sim.Word) []sim.Word {
	i, q := sim.UnpackIQ(w)
	oi, oq := m.M.Mix(i, q)
	return append(out, sim.PackIQ(oi, oq))
}

// SaveState stores the NCO phase.
func (m *Mixer) SaveState() []uint64 {
	return []uint64{uint64(m.M.Osc.Phase)}
}

// LoadState restores the NCO phase.
func (m *Mixer) LoadState(s []uint64) error {
	if len(s) != 1 {
		return fmt.Errorf("accel: mixer state must be 1 word")
	}
	m.M.Osc.Phase = dsp.Phase(s[0])
	return nil
}

// StateWords is one.
func (m *Mixer) StateWords() int { return 1 }

// Discriminator is the FM-demodulating CORDIC engine (paper §VI-A's second
// CORDIC use): each complex input yields one real audio sample.
type Discriminator struct {
	D dsp.Discriminator
}

// NewDiscriminator builds the FM discriminator engine.
func NewDiscriminator() *Discriminator {
	return &Discriminator{D: *dsp.NewDiscriminator()}
}

// Process demodulates one sample; the audio value travels in the I half.
func (d *Discriminator) Process(w sim.Word, out []sim.Word) []sim.Word {
	i, q := sim.UnpackIQ(w)
	return append(out, sim.PackIQ(d.D.Demod(i, q), 0))
}

// SaveState stores the previous phase and validity flag.
func (d *Discriminator) SaveState() []uint64 {
	var flag uint64
	if d.D.HavePrev() {
		flag = 1
	}
	return []uint64{uint64(d.D.Prev())<<1 | flag}
}

// LoadState restores the phase history.
func (d *Discriminator) LoadState(s []uint64) error {
	if len(s) != 1 {
		return fmt.Errorf("accel: discriminator state must be 1 word")
	}
	d.D.SetHistory(dsp.Phase(s[0]>>1), s[0]&1 == 1)
	return nil
}

// StateWords is one.
func (d *Discriminator) StateWords() int { return 1 }

// FIR is the "LPF + down-sampler" engine: a 33-tap (by default) complex
// low-pass filter with integrated decimation.
type FIR struct {
	F *dsp.FIR
}

// NewFIR wraps a designed filter.
func NewFIR(coef []int32, decimate int) (*FIR, error) {
	f, err := dsp.NewFIR(coef, decimate)
	if err != nil {
		return nil, err
	}
	return &FIR{F: f}, nil
}

// Process filters one sample, emitting on decimation instants.
func (f *FIR) Process(w sim.Word, out []sim.Word) []sim.Word {
	i, q := sim.UnpackIQ(w)
	if oi, oq, ok := f.F.Push(i, q); ok {
		out = append(out, sim.PackIQ(oi, oq))
	}
	return out
}

// SaveState delegates to the filter.
func (f *FIR) SaveState() []uint64 { return f.F.SaveState() }

// LoadState delegates to the filter.
func (f *FIR) LoadState(s []uint64) error { return f.F.LoadState(s) }

// StateWords delegates to the filter.
func (f *FIR) StateWords() int { return f.F.StateWords() }

// CIC is the cascaded integrator-comb decimator engine — the multiplier-
// free down-converter that typically sits first in an SDR chain. It shows
// the accelerator framework hosting a second decimating engine type next
// to the FIR.
type CIC struct {
	C *dsp.CIC
}

// NewCIC builds an N-stage decimate-by-R CIC engine.
func NewCIC(stages, decimate int) (*CIC, error) {
	c, err := dsp.NewCIC(stages, decimate)
	if err != nil {
		return nil, err
	}
	return &CIC{C: c}, nil
}

// Process filters one sample, emitting on decimation instants.
func (c *CIC) Process(w sim.Word, out []sim.Word) []sim.Word {
	i, q := sim.UnpackIQ(w)
	if oi, oq, ok := c.C.Push(i, q); ok {
		out = append(out, sim.PackIQ(oi, oq))
	}
	return out
}

// SaveState delegates to the filter.
func (c *CIC) SaveState() []uint64 { return c.C.SaveState() }

// LoadState delegates to the filter.
func (c *CIC) LoadState(s []uint64) error { return c.C.LoadState(s) }

// StateWords delegates to the filter.
func (c *CIC) StateWords() int { return c.C.StateWords() }
