package accel

import (
	"testing"

	"accelshare/internal/dsp"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

func TestPassthroughEngine(t *testing.T) {
	var p Passthrough
	out := p.Process(42, nil)
	if len(out) != 1 || out[0] != 42 {
		t.Fatalf("out = %v", out)
	}
	if p.StateWords() != 0 || len(p.SaveState()) != 0 {
		t.Error("passthrough should be stateless")
	}
	if err := p.LoadState(nil); err != nil {
		t.Error(err)
	}
	if err := p.LoadState([]uint64{1}); err == nil {
		t.Error("non-empty state accepted")
	}
}

func TestGainEngineStateRoundTrip(t *testing.T) {
	g := &Gain{Shift: 2}
	out := g.Process(sim.PackIQ(3, -4), nil)
	i, q := sim.UnpackIQ(out[0])
	if i != 12 || q != -16 {
		t.Errorf("gain out = (%d,%d)", i, q)
	}
	g.Process(0, nil)
	st := g.SaveState()
	g2 := &Gain{Shift: 2}
	if err := g2.LoadState(st); err != nil {
		t.Fatal(err)
	}
	if g2.Count != 2 {
		t.Errorf("restored count = %d", g2.Count)
	}
	if err := g2.LoadState([]uint64{1, 2}); err == nil {
		t.Error("oversized state accepted")
	}
}

func TestMixerEngineMatchesDSP(t *testing.T) {
	e := NewMixer(1000, 100000)
	ref := dsp.NewMixer(1000, 100000)
	for n := 0; n < 50; n++ {
		in := sim.PackIQ(int32(1000+n), int32(-n))
		out := e.Process(in, nil)
		ri, rq := ref.Mix(int32(1000+n), int32(-n))
		oi, oq := sim.UnpackIQ(out[0])
		if oi != ri || oq != rq {
			t.Fatalf("n=%d: engine (%d,%d) vs dsp (%d,%d)", n, oi, oq, ri, rq)
		}
	}
}

func TestMixerStateRestoresPhaseExactly(t *testing.T) {
	a := NewMixer(12345, 1<<20)
	for n := 0; n < 37; n++ {
		a.Process(sim.PackIQ(1000, 0), nil)
	}
	st := a.SaveState()
	b := NewMixer(12345, 1<<20)
	if err := b.LoadState(st); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 20; n++ {
		oa := a.Process(sim.PackIQ(500, 250), nil)
		ob := b.Process(sim.PackIQ(500, 250), nil)
		if oa[0] != ob[0] {
			t.Fatalf("diverged at %d", n)
		}
	}
}

func TestDiscriminatorEngineState(t *testing.T) {
	a := NewDiscriminator()
	a.Process(sim.PackIQ(1000, 500), nil)
	a.Process(sim.PackIQ(500, 1000), nil)
	st := a.SaveState()
	b := NewDiscriminator()
	if err := b.LoadState(st); err != nil {
		t.Fatal(err)
	}
	in := sim.PackIQ(-500, 1000)
	oa := a.Process(in, nil)
	ob := b.Process(in, nil)
	if oa[0] != ob[0] {
		t.Fatalf("outputs differ: %d vs %d", oa[0], ob[0])
	}
	if err := b.LoadState([]uint64{1, 2}); err == nil {
		t.Error("oversized state accepted")
	}
}

func TestFIREngineDecimates(t *testing.T) {
	coef := dsp.QuantizeQ15([]float64{1})
	e, err := NewFIR(coef, 4)
	if err != nil {
		t.Fatal(err)
	}
	outs := 0
	for n := 0; n < 16; n++ {
		out := e.Process(sim.PackIQ(int32(n), 0), nil)
		outs += len(out)
	}
	if outs != 4 {
		t.Errorf("outputs = %d, want 4", outs)
	}
	if e.StateWords() != 2 {
		t.Errorf("state words = %d", e.StateWords())
	}
}

// buildLinkPair wires src node 0 -> dst node 1 with a queue of capacity 2.
func buildLinkPair(t *testing.T) (*sim.Kernel, *Link, *sim.Queue) {
	t.Helper()
	k := sim.NewKernel()
	net, err := ring.NewDual(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := sim.NewQueue("dst", 2)
	l := NewLink("l", k, net, 0, 1, 1, 1, q)
	return k, l, q
}

func TestLinkCreditFlowControl(t *testing.T) {
	k, l, q := buildLinkPair(t)
	if l.Credits() != 2 {
		t.Fatalf("initial credits = %d", l.Credits())
	}
	if !l.TrySend(10) || !l.TrySend(11) {
		t.Fatal("sends with credits failed")
	}
	if l.TrySend(12) {
		t.Fatal("send without credit succeeded")
	}
	k.RunAll()
	if q.Len() != 2 {
		t.Fatalf("delivered %d", q.Len())
	}
	// Popping returns a credit to the sender.
	q.TryPop()
	k.RunAll()
	if l.Credits() != 1 {
		t.Fatalf("credits after pop = %d", l.Credits())
	}
	if !l.TrySend(12) {
		t.Fatal("send after credit return failed")
	}
	k.RunAll()
	if v, _ := q.TryPop(); v != 11 {
		t.Fatalf("order broken: %d", v)
	}
}

func TestLinkNeverOverflowsQueue(t *testing.T) {
	k, l, q := buildLinkPair(t)
	sent := 0
	for round := 0; round < 50; round++ {
		if l.TrySend(sim.Word(round)) {
			sent++
		}
		k.RunAll()
		if q.Len() > q.Cap() {
			t.Fatal("queue above capacity")
		}
		if round%3 == 0 {
			q.TryPop()
			k.RunAll()
		}
	}
	if sent == 0 {
		t.Fatal("nothing sent")
	}
}

func TestTileProcessesAtCost(t *testing.T) {
	k := sim.NewKernel()
	net, _ := ring.NewDual(k, 3, 1)
	tile := NewTile("acc", k, 5, 2)
	inLink := NewLink("in", k, net, 0, 1, 1, 1, tile.In())
	outQ := sim.NewQueue("out", 4)
	outLink := NewLink("out", k, net, 1, 2, 1, 1, outQ)
	tile.SetDownstream(outLink)
	if err := tile.SetEngine(Passthrough{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for !inLink.TrySend(sim.Word(i)) {
			k.RunAll()
		}
		k.RunAll()
	}
	k.RunAll()
	var got []sim.Word
	for {
		w, ok := outQ.TryPop()
		if !ok {
			break
		}
		got = append(got, w)
		k.RunAll()
	}
	k.RunAll()
	for {
		w, ok := outQ.TryPop()
		if !ok {
			break
		}
		got = append(got, w)
		k.RunAll()
	}
	if len(got) != 4 {
		t.Fatalf("outputs = %v", got)
	}
	for i, w := range got {
		if w != sim.Word(i) {
			t.Fatalf("order: %v", got)
		}
	}
	if tile.Processed != 4 || tile.BusyCycles != 20 {
		t.Errorf("processed=%d busy=%d", tile.Processed, tile.BusyCycles)
	}
	if !tile.Idle() {
		t.Error("tile should be idle")
	}
}

func TestTileStallsWithoutEngine(t *testing.T) {
	k := sim.NewKernel()
	net, _ := ring.NewDual(k, 3, 1)
	tile := NewTile("acc", k, 1, 2)
	inLink := NewLink("in", k, net, 0, 1, 1, 1, tile.In())
	outQ := sim.NewQueue("out", 4)
	tile.SetDownstream(NewLink("out", k, net, 1, 2, 1, 1, outQ))
	inLink.TrySend(1)
	k.RunAll()
	if outQ.Len() != 0 {
		t.Fatal("engineless tile produced output")
	}
	if tile.Idle() {
		t.Error("queued word should make tile non-idle")
	}
	if err := tile.SetEngine(Passthrough{}); err == nil {
		t.Error("engine swap with queued data accepted")
	}
}

func TestTileBackpressureFromDownstream(t *testing.T) {
	// Downstream queue capacity 1, never drained: tile must stall after one
	// in-flight output and hold the rest.
	k := sim.NewKernel()
	net, _ := ring.NewDual(k, 3, 1)
	tile := NewTile("acc", k, 1, 4)
	inLink := NewLink("in", k, net, 0, 1, 1, 1, tile.In())
	outQ := sim.NewQueue("out", 1)
	tile.SetDownstream(NewLink("out", k, net, 1, 2, 1, 1, outQ))
	if err := tile.SetEngine(Passthrough{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		inLink.TrySend(sim.Word(i))
		k.RunAll()
	}
	if outQ.Len() != 1 {
		t.Fatalf("downstream holds %d, want 1", outQ.Len())
	}
	if tile.Idle() {
		t.Error("stalled tile reported idle")
	}
}

func TestConfigBusSerialisation(t *testing.T) {
	k := sim.NewKernel()
	bus := NewConfigBus(k, 10, 2)
	var done []sim.Time
	bus.Transfer(5, func() { done = append(done, k.Now()) }) // 10+10 = 20
	bus.Transfer(0, func() { done = append(done, k.Now()) }) // +10 => 30
	bus.TransferCycles(7, func() { done = append(done, k.Now()) })
	k.RunAll()
	if len(done) != 3 || done[0] != 20 || done[1] != 30 || done[2] != 37 {
		t.Fatalf("completion times = %v", done)
	}
	if bus.Ops != 3 || bus.Cycles != 37 {
		t.Errorf("ops=%d cycles=%d", bus.Ops, bus.Cycles)
	}
}

func TestCICEngineDecimatesOnTile(t *testing.T) {
	e, err := NewCIC(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	outs := 0
	for n := 0; n < 32; n++ {
		out := e.Process(sim.PackIQ(1000, -500), nil)
		outs += len(out)
	}
	if outs != 8 {
		t.Fatalf("outputs = %d, want 8", outs)
	}
	if e.StateWords() != 9 {
		t.Errorf("state words = %d", e.StateWords())
	}
	st := e.SaveState()
	e2, _ := NewCIC(2, 4)
	if err := e2.LoadState(st); err != nil {
		t.Fatal(err)
	}
	a := e.Process(sim.PackIQ(123, 456), nil)
	b := e2.Process(sim.PackIQ(123, 456), nil)
	if len(a) != len(b) {
		t.Fatal("restored engine diverges")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("restored engine output differs")
		}
	}
	if _, err := NewCIC(0, 4); err == nil {
		t.Error("invalid CIC accepted")
	}
}
