package accel

import (
	"fmt"

	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

// Link is a hardware-FIFO connection over the dual ring with credit-based
// flow control (paper §IV-A/B): data words travel the data ring from the
// upstream tile to the downstream NI queue, and one credit travels the
// credit ring in the opposite direction for every word the downstream
// consumer removes. The sender may only inject while it holds credits, so
// the downstream queue can never overflow.
type Link struct {
	name       string
	k          *sim.Kernel
	net        *ring.Dual
	srcNode    int
	dstNode    int
	dataPort   int
	creditPort int

	credits    int
	dst        *sim.Queue
	creditSubs []*sim.Waker

	// owedCredits counts consumer pops not yet converted into credit
	// messages (e.g. because the credit-ring injection buffer was full).
	owedCredits  int
	creditPump   bool
	lastPopCount uint64

	// wedgedUntil, when in the future, makes TrySend fail — the injected
	// "wedged link/NI" fault of the fault-campaign subsystem.
	wedgedUntil sim.Time

	// Words counts data words carried; WedgeRejects counts sends refused
	// while wedged.
	Words        uint64
	WedgeRejects uint64
}

// NewLink wires a credit-controlled connection and binds its ring ports.
// The downstream queue's capacity determines the initial credit count (the
// paper's NI FIFOs hold two tokens).
func NewLink(name string, k *sim.Kernel, net *ring.Dual, srcNode, dstNode, dataPort, creditPort int, dst *sim.Queue) *Link {
	l := &Link{
		name: name, k: k, net: net,
		srcNode: srcNode, dstNode: dstNode,
		dataPort: dataPort, creditPort: creditPort,
		credits: dst.Cap(), dst: dst,
	}
	// Data arriving at the downstream NI: guaranteed to fit because the
	// sender spent a credit.
	net.Data.Node(dstNode).Bind(dataPort, func(m ring.Message) {
		if !l.dst.TryPush(m.W) {
			panic(fmt.Sprintf("accel: link %q overflowed NI queue — credit protocol violated", l.name))
		}
	})
	// Credits arriving back at the sender.
	net.Credit.Node(srcNode).Bind(creditPort, func(m ring.Message) {
		l.credits += int(m.W)
		for _, w := range l.creditSubs {
			w.Wake()
		}
	})
	// Every pop from the NI queue owes one credit upstream.
	popWatcher := sim.NewWaker(k, func() {
		pops := l.dst.Popped
		if pops > l.lastPopCount {
			l.owedCredits += int(pops - l.lastPopCount)
			l.lastPopCount = pops
		}
		l.pumpCredits()
	})
	dst.SubscribeSpace(popWatcher)
	return l
}

// pumpCredits sends owed credits over the credit ring, retrying while the
// injection buffer is busy.
func (l *Link) pumpCredits() {
	for l.owedCredits > 0 {
		if !l.net.Credit.Node(l.dstNode).TrySend(l.srcNode, l.creditPort, 1) {
			if !l.creditPump {
				l.creditPump = true
				l.k.Schedule(2, func() {
					l.creditPump = false
					l.pumpCredits()
				})
			}
			return
		}
		l.owedCredits--
	}
}

// Credits returns the sender's available credits.
func (l *Link) Credits() int { return l.credits }

// SubscribeCredits wakes w whenever credits return.
func (l *Link) SubscribeCredits(w *sim.Waker) { l.creditSubs = append(l.creditSubs, w) }

// WedgeFor makes TrySend fail for the next d cycles — deterministic fault
// injection modelling a wedged NI or broken ring segment. d == 0 wedges the
// link permanently. When the wedge lifts, credit subscribers are woken so
// stalled senders retry.
func (l *Link) WedgeFor(d sim.Time) {
	if d == 0 {
		l.wedgedUntil = ^sim.Time(0)
		return
	}
	l.wedgedUntil = l.k.Now() + d
	l.k.Schedule(d, func() {
		for _, w := range l.creditSubs {
			w.Wake()
		}
	})
}

// Wedged reports whether the link currently refuses sends.
func (l *Link) Wedged() bool { return l.wedgedUntil > l.k.Now() }

// Reset restores the link to its initial flow-control state after a chain
// flush: full credits, nothing owed. The caller must already have cleared
// the downstream queue; any credit messages still in flight must have landed
// (the gateway's flush settle delay guarantees both).
func (l *Link) Reset() {
	l.credits = l.dst.Cap()
	l.owedCredits = 0
	l.lastPopCount = l.dst.Popped
}

// TrySend injects one word if a credit is held and the ring accepts; the
// caller retries on a credit or ring-space wake-up otherwise.
func (l *Link) TrySend(w sim.Word) bool {
	if l.Wedged() {
		l.WedgeRejects++
		return false
	}
	if l.credits <= 0 {
		return false
	}
	if !l.net.Data.Node(l.srcNode).TrySend(l.dstNode, l.dataPort, w) {
		return false
	}
	l.credits--
	l.Words++
	return true
}

// SubscribeRingSpace wakes w when the sender's ring injection buffer drains.
func (l *Link) SubscribeRingSpace(w *sim.Waker) {
	l.net.Data.Node(l.srcNode).SubscribeSpace(w)
}

// Queue exposes the downstream NI queue (the receiver pops from it).
func (l *Link) Queue() *sim.Queue { return l.dst }
