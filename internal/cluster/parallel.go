package cluster

import (
	"fmt"
	"sort"

	"accelshare/internal/sim"
)

// Parallel cells: a fleet of independent cluster cells — each one a full
// Controller with its own kernel, ring, chains and degradation ladder — run
// concurrently on goroutines by a sim.Group, synchronising at quantum
// barriers where a deterministic front door dispatches fleet-level arrivals
// and departures.
//
// Determinism: cells share no simulation state (separate kernels, separate
// rings), so within a window the goroutine interleaving is unobservable; the
// dispatch hook runs single-threaded at each barrier, consumes the fleet op
// feed in its fixed time-sorted order, routes by least-loaded-cell with
// index tie-break, and schedules onto the target kernel exactly at the
// window boundary. TestCellsParallelMatchesSequential pins byte-equality of
// the merged fleet log against the sequential schedule, and the PR 5
// determinism analyzer (no wall clock, no global rand, no map iteration)
// covers this file like the rest of the package.

// CellSpec names one cell and its fleet configuration.
type CellSpec struct {
	Name   string
	Config Config
}

// Dispatch records one front-door routing decision (deterministic, part of
// the observable fleet history).
type Dispatch struct {
	At     sim.Time
	Cell   string
	Name   string
	Depart bool
}

// Cells is the parallel multi-cell fleet.
type Cells struct {
	names []string
	cells []*Controller
	group *sim.Group

	ops  []Op // time-sorted fleet feed (Profile.Ops order)
	next int

	load  []int          // live fleet-dispatched streams per cell
	owner map[string]int // stream name -> owning cell index

	// Dispatches is the append-only routing log.
	Dispatches []Dispatch
}

// NewCells builds one Controller per spec and a lockstep group over their
// kernels. The quantum bounds how stale the front door's load view can be:
// arrivals land at the first window boundary at or after their nominal time.
func NewCells(quantum sim.Time, specs []CellSpec) (*Cells, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: no cells")
	}
	cs := &Cells{owner: map[string]int{}}
	var ks []*sim.Kernel
	for _, sp := range specs {
		c, err := New(sp.Config)
		if err != nil {
			return nil, fmt.Errorf("cell %q: %w", sp.Name, err)
		}
		cs.names = append(cs.names, sp.Name)
		cs.cells = append(cs.cells, c)
		cs.load = append(cs.load, 0)
		ks = append(ks, c.System().K)
	}
	cs.group = sim.NewGroup(quantum, ks...)
	cs.group.SetBarrier(cs.dispatch)
	return cs, nil
}

// SetParallel toggles goroutine fan-out (sequential mode exists for the
// determinism proof and for debugging).
func (cs *Cells) SetParallel(p bool) { cs.group.SetParallel(p) }

// CellCount returns the number of cells.
func (cs *Cells) CellCount() int { return len(cs.cells) }

// Cell returns cell i's controller (read it only between Run calls).
func (cs *Cells) Cell(i int) *Controller { return cs.cells[i] }

// CellName returns cell i's name.
func (cs *Cells) CellName(i int) string { return cs.names[i] }

// Feed appends fleet-level traffic; ops must be time-sorted (Profile.Ops
// already is).
func (cs *Cells) Feed(ops []Op) { cs.ops = append(cs.ops, ops...) }

// Run advances every cell to the horizon in parallel lockstep windows.
func (cs *Cells) Run(horizon sim.Time) { cs.group.Run(horizon) }

// dispatch is the barrier hook: route every matured fleet op. Arrivals go to
// the least-loaded cell (fewest live fleet streams, lowest index wins ties);
// departures go to the owning cell. Ops are scheduled exactly at the window
// boundary, the earliest instant every cell clock has reached.
func (cs *Cells) dispatch(end sim.Time) {
	for cs.next < len(cs.ops) && cs.ops[cs.next].At <= end {
		op := cs.ops[cs.next]
		cs.next++
		if op.Depart {
			ci, ok := cs.owner[op.Req.Name]
			if !ok {
				continue // arrival was never dispatched (feed bug) — drop
			}
			delete(cs.owner, op.Req.Name)
			cs.load[ci]--
			c := cs.cells[ci]
			name := op.Req.Name
			c.System().K.ScheduleAt(end, func() { c.Depart(name) })
			cs.Dispatches = append(cs.Dispatches, Dispatch{At: end, Cell: cs.names[ci], Name: name, Depart: true})
			continue
		}
		ci := 0
		for j := 1; j < len(cs.load); j++ {
			if cs.load[j] < cs.load[ci] {
				ci = j
			}
		}
		cs.owner[op.Req.Name] = ci
		cs.load[ci]++
		c := cs.cells[ci]
		req := op.Req
		c.System().K.ScheduleAt(end, func() { c.Submit(req) })
		cs.Dispatches = append(cs.Dispatches, Dispatch{At: end, Cell: cs.names[ci], Name: req.Name})
	}
}

// MergedEvents renders the fleet-wide event log, merged deterministically by
// (time, cell index, per-cell order) and prefixed with the cell name.
func (cs *Cells) MergedEvents() []string {
	type tagged struct {
		at   sim.Time
		cell int
		seq  int
		line string
	}
	var all []tagged
	for ci, c := range cs.cells {
		for si, e := range c.Events() {
			all = append(all, tagged{e.At, ci, si, cs.names[ci] + " " + FormatEvent(e)})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].at != all[b].at {
			return all[a].at < all[b].at
		}
		if all[a].cell != all[b].cell {
			return all[a].cell < all[b].cell
		}
		return all[a].seq < all[b].seq
	})
	lines := make([]string, len(all))
	for i, tg := range all {
		lines[i] = tg.line
	}
	return lines
}
