package cluster

import (
	"fmt"
	"testing"

	"accelshare/internal/sim"
)

// cellSpecs builds n identical two-chain cells on the shared test fixture.
func cellSpecs(n int) []CellSpec {
	specs := make([]CellSpec, n)
	for i := range specs {
		specs[i] = CellSpec{
			Name: fmt.Sprintf("cell%d", i),
			Config: testConfig([]ChainSpec{
				{Name: "c0", AccelCost: 1, ReserveSlots: 4},
				{Name: "c1", AccelCost: 1, ReserveSlots: 4},
			}),
		}
	}
	return specs
}

// cellsProfile is a moderate open-loop load: steady background churn plus a
// flash crowd, enough to exercise placement, rejection and departures across
// the cells.
var cellsProfile = Profile{
	Seed:          0x5eed,
	Start:         1_000,
	End:           60_000,
	MeanSpacing:   2_500,
	MinLifetime:   15_000,
	MeanLifetime:  30_000,
	Periods:       []int64{75, 150, 300},
	Priorities:    []int{0, 1, 2},
	FlashAt:       25_000,
	FlashCount:    6,
	FlashSpacing:  40,
	FlashPeriod:   150,
	FlashLifetime: 20_000,
}

func runCellsScenario(t *testing.T, parallel bool, horizon sim.Time) *Cells {
	t.Helper()
	cs, err := NewCells(2_000, cellSpecs(3))
	if err != nil {
		t.Fatal(err)
	}
	cs.SetParallel(parallel)
	cs.Feed(cellsProfile.Ops())
	cs.Run(horizon)
	return cs
}

// TestCellsParallelMatchesSequential is the parallel-chain determinism
// acceptance test: the goroutine-per-cell schedule must produce the
// byte-identical fleet history — dispatch log, merged event log, per-cell
// stream and chain statuses — as the sequential schedule.
func TestCellsParallelMatchesSequential(t *testing.T) {
	const horizon = 120_000
	seq := runCellsScenario(t, false, horizon)
	par := runCellsScenario(t, true, horizon)

	if len(seq.Dispatches) == 0 {
		t.Fatal("no dispatches — scenario exercised nothing")
	}
	if len(seq.Dispatches) != len(par.Dispatches) {
		t.Fatalf("dispatch count %d vs %d", len(seq.Dispatches), len(par.Dispatches))
	}
	for i := range seq.Dispatches {
		if seq.Dispatches[i] != par.Dispatches[i] {
			t.Fatalf("dispatch %d: %+v vs %+v", i, seq.Dispatches[i], par.Dispatches[i])
		}
	}

	se, pe := seq.MergedEvents(), par.MergedEvents()
	if len(se) != len(pe) {
		t.Fatalf("merged event log %d vs %d lines", len(se), len(pe))
	}
	for i := range se {
		if se[i] != pe[i] {
			t.Fatalf("event %d:\n  seq: %s\n  par: %s", i, se[i], pe[i])
		}
	}

	for ci := 0; ci < seq.CellCount(); ci++ {
		sc, pc := seq.Cell(ci), par.Cell(ci)
		ss, ps := sc.StreamStatuses(), pc.StreamStatuses()
		if len(ss) != len(ps) {
			t.Fatalf("cell %d: stream statuses %d vs %d", ci, len(ss), len(ps))
		}
		for i := range ss {
			if ss[i] != ps[i] {
				t.Fatalf("cell %d stream %d: %+v vs %+v", ci, i, ss[i], ps[i])
			}
		}
		sch, pch := sc.ChainStatuses(), pc.ChainStatuses()
		for i := range sch {
			if sch[i] != pch[i] {
				t.Fatalf("cell %d chain %d: %+v vs %+v", ci, i, sch[i], pch[i])
			}
		}
		if sc.System().K.Now() != pc.System().K.Now() {
			t.Fatalf("cell %d clock: %d vs %d", ci, sc.System().K.Now(), pc.System().K.Now())
		}
	}
}

// TestCellsRunResumes checks that successive Run calls continue the same
// lockstep schedule (clocks stay aligned across barrier re-entry).
func TestCellsRunResumes(t *testing.T) {
	one, err := NewCells(2_000, cellSpecs(2))
	if err != nil {
		t.Fatal(err)
	}
	one.Feed(cellsProfile.Ops())
	one.Run(80_000)

	two, err := NewCells(2_000, cellSpecs(2))
	if err != nil {
		t.Fatal(err)
	}
	two.Feed(cellsProfile.Ops())
	two.Run(30_000)
	two.Run(80_000)

	oe, te := one.MergedEvents(), two.MergedEvents()
	if len(oe) != len(te) {
		t.Fatalf("split run diverged: %d vs %d events", len(oe), len(te))
	}
	for i := range oe {
		if oe[i] != te[i] {
			t.Fatalf("event %d:\n  one-shot: %s\n  split:    %s", i, oe[i], te[i])
		}
	}
}
