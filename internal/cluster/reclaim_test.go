package cluster

import (
	"fmt"
	"testing"

	"accelshare/internal/sim"
)

// TestReclaimSlotsReusesCapacity: with Config.ReclaimSlots a departed
// stream's ring attachment points return to its chain's reserve pool, so a
// bounded slot table serves an unbounded sequence of sequential lifetimes.
// Without the flag AttachStream permanently consumes a reserved node pair
// per admission, capping the chain at ReserveSlots lifetimes — the exact
// failure mode the sustained serving campaign exists to rule out.
func TestReclaimSlotsReusesCapacity(t *testing.T) {
	// Four strictly sequential lifetimes through a two-slot chain: each
	// stream departs long before the next arrives, so only slot-table
	// capacity (never utilisation) can reject an arrival.
	run := func(reclaim bool) *Controller {
		cfg := testConfig([]ChainSpec{{Name: "c0", AccelCost: 1, ReserveSlots: 2}})
		cfg.ReclaimSlots = reclaim
		c := mustCluster(t, cfg)
		for i, at := range []sim.Time{1_000, 30_000, 60_000, 90_000} {
			name := fmt.Sprintf("s%d", i)
			submitAt(c, at, StreamRequest{Name: name, Period: 150})
			if i < 3 {
				departAt(c, at+15_000, name)
			}
		}
		c.Run(130_000)
		return c
	}

	capped := run(false)
	if got := len(eventsOf(capped, EvArrive)); got != 2 {
		t.Errorf("without reclaim: %d admissions, want 2 (slot table capped)", got)
	}
	if live := statusOf(capped, "s3"); live.State == "live" {
		t.Errorf("without reclaim: s3 is live, want rejected")
	}

	c := run(true)
	if got := len(eventsOf(c, EvArrive)); got != 4 {
		t.Errorf("with reclaim: %d admissions, want 4", got)
	}
	if got := len(eventsOf(c, EvReject)); got != 0 {
		t.Errorf("with reclaim: %d rejections, want 0", got)
	}
	for _, name := range []string{"s0", "s1", "s2"} {
		if ss := statusOf(c, name); ss.State != "departed" {
			t.Errorf("with reclaim: %s state=%s, want departed", name, ss.State)
		}
	}
	if ss := statusOf(c, "s3"); ss.State != "live" || ss.Chain != "c0" {
		t.Errorf("with reclaim: s3 state=%s chain=%s, want live on c0", ss.State, ss.Chain)
	}
	checkConformance(t, c, 100_000)
}
