package cluster

import (
	"reflect"
	"testing"

	"accelshare/internal/conformance"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
	"accelshare/internal/sim"
)

// testConfig is the shared fleet fixture: ε=15, δ=1, Rs=50, checkpointed
// recovery (K=4), the failover campaign's wedge doctor, and a bounded
// geometric backoff. A cost-1 chain saturates at four 1/75 streams
// (Eq. 6: η(75−15n) ≥ 80n has no solution at n=5), so capacity tests can
// pin exact shed behaviour.
func testConfig(chains []ChainSpec) Config {
	return Config{
		EntryCost:    15,
		ExitCost:     1,
		HopLatency:   1,
		Reconfig:     50,
		DrainTimeout: 600,
		Recovery: gateway.Recovery{
			Enabled: true, RetryLimit: 2,
			Checkpoint: 4, CheckpointCost: 5, ValueExact: true,
		},
		PerSlotCost:      10,
		Doctor:           fault.DoctorConfig{Window: 4_000, StallLimit: 3, DistinctStreams: 1},
		Retry:            fault.Backoff{Base: 200, Factor: 2, Cap: 3_200, Limit: 8},
		ResidentPeriod:   75,
		ResidentPriority: 100,
		InCapacity:       256,
		OutCapacity:      128,
		CollectOutputs:   true,
		Chains:           chains,
	}
}

func mustCluster(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func submitAt(c *Controller, at sim.Time, req StreamRequest) {
	c.System().K.ScheduleAt(at, func() { c.Submit(req) })
}

func departAt(c *Controller, at sim.Time, name string) {
	c.System().K.ScheduleAt(at, func() { c.Depart(name) })
}

func eventsOf(c *Controller, kind EventKind) []Event {
	var out []Event
	for _, e := range c.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

func ladderOf(c *Controller, rung string) []LadderStep {
	var out []LadderStep
	for _, s := range c.LadderSteps() {
		if s.Rung == rung {
			out = append(out, s)
		}
	}
	return out
}

func statusOf(c *Controller, name string) StreamStatus {
	for _, ss := range c.StreamStatuses() {
		if ss.Name == name {
			return ss
		}
	}
	return StreamStatus{}
}

// checkConformance runs the fleet harness and fails on any violation.
func checkConformance(t *testing.T, c *Controller, after sim.Time) {
	t.Helper()
	res, err := c.Conformance(conformance.Options{After: after, MinBlocks: 3, FilterQueued: true})
	if err != nil {
		t.Fatalf("conformance: %v", err)
	}
	if len(res) == 0 {
		t.Fatalf("conformance: no serving chains checked")
	}
	for _, cc := range res {
		for _, v := range cc.Result.Violations {
			t.Errorf("chain %s: %s/%s: %s", cc.Chain, v.Stream, v.Kind, v.Detail)
		}
	}
}

// TestPlacementRanksByUtilization: arrivals go to the least-utilised chain
// (exact big.Rat compare, name tie-break), so equal chains alternate.
func TestPlacementRanksByUtilization(t *testing.T) {
	c := mustCluster(t, testConfig([]ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 4},
		{Name: "c1", AccelCost: 1, ReserveSlots: 4},
	}))
	submitAt(c, 1_000, StreamRequest{Name: "s0", Period: 75})
	submitAt(c, 5_000, StreamRequest{Name: "s1", Period: 75})
	submitAt(c, 9_000, StreamRequest{Name: "s2", Period: 150})
	c.Run(30_000)

	want := map[string]string{"s0": "c0", "s1": "c1", "s2": "c0"}
	for name, chain := range want {
		ss := statusOf(c, name)
		if ss.State != "live" || ss.Chain != chain {
			t.Errorf("%s: state=%s chain=%s, want live on %s", name, ss.State, ss.Chain, chain)
		}
		if !ss.ContiguousOutputs {
			t.Errorf("%s: outputs not contiguous", name)
		}
	}
	if n := len(eventsOf(c, EvArrive)); n != 3 {
		t.Errorf("arrivals = %d, want 3", n)
	}
	checkConformance(t, c, 15_000)
}

// TestDepartureFreesCapacity: a departed stream's slot is released and the
// survivors keep their bounds.
func TestDepartureFreesCapacity(t *testing.T) {
	c := mustCluster(t, testConfig([]ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 4},
	}))
	submitAt(c, 1_000, StreamRequest{Name: "s0", Period: 75})
	departAt(c, 12_000, "s0")
	c.Run(40_000)

	if ss := statusOf(c, "s0"); ss.State != "departed" {
		t.Fatalf("s0 state = %s, want departed", ss.State)
	}
	if n := len(eventsOf(c, EvDepart)); n != 1 {
		t.Errorf("departures = %d, want 1", n)
	}
	checkConformance(t, c, 20_000)
}

// TestFailoverRung: a wedged chain with a spare available takes ladder rung
// 1 — the whole chain migrates to the standby pair in one bounded action,
// every stream records a failover step with measured ≤ bound, and the fleet
// keeps serving under the survivor model.
func TestFailoverRung(t *testing.T) {
	wedge := &fault.Plan{Faults: []fault.Fault{{Kind: fault.WedgeLink, Site: 0, At: 20_000}}}
	c := mustCluster(t, testConfig([]ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 4, Faults: wedge},
		{Name: "sp", AccelCost: 1, ReserveSlots: 4, Spare: true},
	}))
	submitAt(c, 1_000, StreamRequest{Name: "s0", Period: 75, Priority: 5})
	submitAt(c, 5_000, StreamRequest{Name: "s1", Period: 150, Priority: 1})
	c.Run(90_000)

	if n := len(eventsOf(c, EvVerdict)); n == 0 {
		t.Fatalf("doctor never convicted the wedged chain; events:\n%s", renderEvents(c))
	}
	steps := ladderOf(c, "failover")
	if len(steps) != 3 { // resident + s0 + s1
		t.Fatalf("failover steps = %d, want 3:\n%v", len(steps), steps)
	}
	for _, s := range steps {
		if s.Measured > s.Bound {
			t.Errorf("%s: failover measured %d > bound %d", s.Stream, s.Measured, s.Bound)
		}
		if s.From != "c0" || s.To != "sp" {
			t.Errorf("%s: step %s -> %s, want c0 -> sp", s.Stream, s.From, s.To)
		}
	}
	for _, name := range []string{"s0", "s1"} {
		ss := statusOf(c, name)
		if ss.State != "live" || ss.Chain != "sp" {
			t.Errorf("%s: state=%s chain=%s, want live on sp", name, ss.State, ss.Chain)
		}
		if !ss.ContiguousOutputs {
			t.Errorf("%s: outputs not contiguous across the migration", name)
		}
	}
	checkConformance(t, c, 60_000)
}

// TestEvacuateRung: no spare — the wedged chain's streams are exported and
// re-placed one at a time on the survivor via migration admission; each
// records an evacuate step whose measured elapsed time stays within the
// composed bound (settle + Σ transition envelopes + charged backoffs).
func TestEvacuateRung(t *testing.T) {
	wedge := &fault.Plan{Faults: []fault.Fault{{Kind: fault.WedgeLink, Site: 0, At: 20_000}}}
	c := mustCluster(t, testConfig([]ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 4, Faults: wedge},
		{Name: "c1", AccelCost: 1, ReserveSlots: 4},
	}))
	// s0 lands on c0 (utilisation tie, name order), s1 on c1.
	submitAt(c, 1_000, StreamRequest{Name: "s0", Period: 75, Priority: 5})
	submitAt(c, 5_000, StreamRequest{Name: "s1", Period: 150, Priority: 1})
	c.Run(120_000)

	steps := ladderOf(c, "evacuate")
	if len(steps) != 2 { // resident r-c0 (priority 100) then s0
		t.Fatalf("evacuate steps = %d, want 2:\n%s", len(steps), renderEvents(c))
	}
	if steps[0].Stream != "r-c0" || steps[1].Stream != "s0" {
		t.Errorf("evacuation order %s,%s, want r-c0,s0 (priority desc)", steps[0].Stream, steps[1].Stream)
	}
	for _, s := range steps {
		if s.Measured > s.Bound {
			t.Errorf("%s: evacuate measured %d > bound %d", s.Stream, s.Measured, s.Bound)
		}
		if s.Replay > int(c.cfg.Recovery.Checkpoint) {
			t.Errorf("%s: replay residue %d > K=%d", s.Stream, s.Replay, c.cfg.Recovery.Checkpoint)
		}
	}
	if n := len(ladderOf(c, "shed")); n != 0 {
		t.Errorf("shed steps = %d, want 0 (survivor had capacity)", n)
	}
	for _, name := range []string{"r-c0", "s0", "s1"} {
		ss := statusOf(c, name)
		if ss.State != "live" || ss.Chain != "c1" {
			t.Errorf("%s: state=%s chain=%s, want live on c1", name, ss.State, ss.Chain)
		}
		if !ss.ContiguousOutputs {
			t.Errorf("%s: outputs not contiguous across the migration", name)
		}
	}
	checkConformance(t, c, 80_000)
}

// TestShedAndReadmitOnHeal: with no surviving capacity at all, every stream
// of the dead chain sheds (rung 3) — sources stopped, exports parked — and
// a later heal promotes the spare to serving and readmits them all.
func TestShedAndReadmitOnHeal(t *testing.T) {
	wedge := &fault.Plan{Faults: []fault.Fault{{Kind: fault.WedgeLink, Site: 0, At: 20_000}}}
	c := mustCluster(t, testConfig([]ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 4, Faults: wedge},
		{Name: "sp", AccelCost: 1, ReserveSlots: 4, Spare: true, OnlineAt: 60_000},
	}))
	submitAt(c, 1_000, StreamRequest{Name: "s0", Period: 75, Priority: 5})
	submitAt(c, 5_000, StreamRequest{Name: "s1", Period: 75, Priority: 1})
	c.Run(140_000)

	if n := len(ladderOf(c, "shed")); n != 3 { // resident + s0 + s1
		t.Fatalf("shed steps = %d, want 3:\n%s", n, renderEvents(c))
	}
	if n := len(eventsOf(c, EvParked)); n == 0 {
		t.Errorf("no parked event: the readmission budget should exhaust before the heal")
	}
	heals := eventsOf(c, EvHeal)
	if len(heals) != 1 {
		t.Fatalf("heal events = %d, want 1", len(heals))
	}
	re := ladderOf(c, "readmit")
	if len(re) != 3 {
		t.Fatalf("readmit steps = %d, want 3:\n%s", len(re), renderEvents(c))
	}
	for _, s := range re {
		if s.Measured > s.Bound {
			t.Errorf("%s: readmit measured %d > bound %d", s.Stream, s.Measured, s.Bound)
		}
	}
	for _, name := range []string{"r-c0", "s0", "s1"} {
		ss := statusOf(c, name)
		if ss.State != "live" || ss.Chain != "sp" {
			t.Errorf("%s: state=%s chain=%s, want live on sp", name, ss.State, ss.Chain)
		}
	}
	checkConformance(t, c, 110_000)
}

// TestSubmitRejections: malformed and duplicate submissions are rejected
// without touching the platform.
func TestSubmitRejections(t *testing.T) {
	c := mustCluster(t, testConfig([]ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 2},
	}))
	submitAt(c, 1_000, StreamRequest{Name: "s0", Period: 75})
	submitAt(c, 5_000, StreamRequest{Name: "s0", Period: 75})  // duplicate
	submitAt(c, 6_000, StreamRequest{Name: "", Period: 75})    // no name
	submitAt(c, 7_000, StreamRequest{Name: "sx", Period: -75}) // bad period
	c.Run(20_000)
	if n := len(eventsOf(c, EvReject)); n != 3 {
		t.Errorf("rejects = %d, want 3:\n%s", n, renderEvents(c))
	}
}

// TestNewValidation: the constructor refuses configurations the control
// plane cannot operate.
func TestNewValidation(t *testing.T) {
	base := testConfig([]ChainSpec{{Name: "c0", AccelCost: 1}})
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no chains", func(c *Config) { c.Chains = nil }},
		{"no serving chains", func(c *Config) { c.Chains = []ChainSpec{{Name: "sp", AccelCost: 1, Spare: true}} }},
		{"recovery disabled", func(c *Config) { c.Recovery = gateway.Recovery{} }},
		{"bad resident period", func(c *Config) { c.ResidentPeriod = 0 }},
		{"bad backoff", func(c *Config) { c.Retry = fault.Backoff{} }},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Chains = append([]ChainSpec(nil), base.Chains...)
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}
}

// TestTrafficDeterminism: the generator is a pure function of its profile.
func TestTrafficDeterminism(t *testing.T) {
	p := Profile{
		Seed: 42, Start: 1_000, End: 50_000,
		MeanSpacing: 4_000, MinLifetime: 10_000, MeanLifetime: 25_000,
		Periods: []int64{75, 150}, Priorities: []int{1, 5},
		FlashAt: 30_000, FlashCount: 4, FlashSpacing: 100,
		FlashPeriod: 150, FlashLifetime: 12_000,
	}
	a, b := p.Ops(), p.Ops()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two expansions of the same profile differ")
	}
	if len(a) == 0 {
		t.Fatalf("profile generated no ops")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("ops not time-sorted at %d", i)
		}
	}
	arr := 0
	for _, op := range a {
		if !op.Depart {
			arr++
			if op.Req.Period <= 0 {
				t.Errorf("%s: non-positive period", op.Req.Name)
			}
		}
	}
	if arr < 5 {
		t.Errorf("only %d arrivals generated, want a busier profile", arr)
	}
}

func renderEvents(c *Controller) string {
	out := ""
	for _, e := range c.Events() {
		out += FormatEvent(e) + "\n"
	}
	return out
}
