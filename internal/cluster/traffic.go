package cluster

import (
	"fmt"
	"sort"

	"accelshare/internal/sim"
)

// Deterministic open-loop traffic for fleet campaigns. A seeded xorshift
// stream drives background arrivals with paired departures (each stream's
// lifetime is drawn when it arrives, so the arrival and departure processes
// are one sequence, not two racing ones), optionally shaped by a diurnal
// ramp — an integer triangle wave that compresses the arrival spacing
// toward mid-cycle — plus one flash crowd of near-simultaneous arrivals.
//
// The generator is a pure function of the Profile — no wall clock, no
// global RNG, integer arithmetic only — so a campaign replays
// byte-identically and its transcript can be golden-tested. Two rules keep
// that property across Profile extensions: new shaping features must be
// no-ops at their zero value (a zero DiurnalPeriod draws exactly the gaps
// the pre-diurnal generator drew, preserving existing goldens without
// regeneration), and the generated names (s%02d for background, f%02d for
// the crowd) are part of the byte-stable surface — renaming them
// invalidates every campaign golden at once.
//
// Ops expands a Profile into a time-sorted operation list; Schedule
// registers it against a Controller. Campaigns that need the totals (the
// serve transcript's traffic summary) count the ops themselves — the
// generator exposes no aggregate state.

// xorshift is a minimal 64-bit xorshift PRNG; the zero value is invalid
// (xorshift never leaves 0), so Profile.Seed must be non-zero.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// Profile parameterises the open-loop generator.
type Profile struct {
	// Seed drives every random choice; must be non-zero.
	Seed uint64
	// Start/End bound background arrival times.
	Start, End sim.Time
	// MeanSpacing is the average gap between background arrivals in cycles
	// (spacing is uniform over [MeanSpacing/2, 3·MeanSpacing/2)).
	MeanSpacing sim.Time
	// MinLifetime/MeanLifetime bound how long a background stream stays
	// (uniform over [MinLifetime, MinLifetime+2·(MeanLifetime-MinLifetime))).
	MinLifetime, MeanLifetime sim.Time
	// Periods and Priorities are the sample-period / priority palettes
	// background arrivals draw from (uniformly).
	Periods    []int64
	Priorities []int
	// DiurnalPeriod and DiurnalAmplitude shape the arrival rate with an
	// integer triangle wave: at mid-cycle the mean spacing shrinks by up to
	// DiurnalAmplitude percent, ramping linearly back to MeanSpacing at the
	// cycle edges. Zero values leave the spacing untouched (and the drawn
	// gap sequence bit-identical to the unshaped generator).
	DiurnalPeriod    sim.Time
	DiurnalAmplitude int
	// FlashAt triggers FlashCount near-simultaneous arrivals spaced
	// FlashSpacing apart, each with period FlashPeriod, priority 0, leaving
	// after FlashLifetime. FlashCount 0 disables the crowd.
	FlashAt       sim.Time
	FlashCount    int
	FlashSpacing  sim.Time
	FlashPeriod   int64
	FlashLifetime sim.Time
}

// Op is one generated traffic operation.
type Op struct {
	At     sim.Time
	Depart bool
	Req    StreamRequest
}

// Ops expands the profile into a deterministic, time-sorted operation list.
func (p Profile) Ops() []Op {
	var ops []Op
	rng := xorshift(p.Seed)
	if rng == 0 {
		rng = 1
	}
	if len(p.Periods) > 0 && p.MeanSpacing > 0 {
		t := p.Start
		n := 0
		for {
			span := p.MeanSpacing
			if p.DiurnalPeriod > 0 && p.DiurnalAmplitude > 0 {
				pos := t % p.DiurnalPeriod
				half := p.DiurnalPeriod / 2
				dev := pos
				if dev > half {
					dev = p.DiurnalPeriod - pos
				}
				if half > 0 {
					// dev/half ∈ [0,1]: cut the spacing by up to Amplitude%
					// at mid-cycle (integer triangle — no floats).
					span -= span * sim.Time(p.DiurnalAmplitude) * dev / (100 * half)
				}
				if span < 1 {
					span = 1
				}
			}
			gap := span/2 + sim.Time(rng.next()%uint64(span))
			t += gap
			if t >= p.End {
				break
			}
			req := StreamRequest{
				Name:   fmt.Sprintf("s%02d", n),
				Period: p.Periods[rng.next()%uint64(len(p.Periods))],
			}
			if len(p.Priorities) > 0 {
				req.Priority = p.Priorities[rng.next()%uint64(len(p.Priorities))]
			}
			life := p.MinLifetime
			if p.MeanLifetime > p.MinLifetime {
				life += sim.Time(rng.next() % uint64(2*(p.MeanLifetime-p.MinLifetime)))
			}
			ops = append(ops, Op{At: t, Req: req})
			ops = append(ops, Op{At: t + life, Depart: true, Req: StreamRequest{Name: req.Name}})
			n++
		}
	}
	for i := 0; i < p.FlashCount; i++ {
		at := p.FlashAt + sim.Time(i)*p.FlashSpacing
		req := StreamRequest{Name: fmt.Sprintf("f%02d", i), Period: p.FlashPeriod}
		ops = append(ops, Op{At: at, Req: req})
		if p.FlashLifetime > 0 {
			ops = append(ops, Op{At: at + p.FlashLifetime, Depart: true, Req: StreamRequest{Name: req.Name}})
		}
	}
	sort.SliceStable(ops, func(a, b int) bool {
		if ops[a].At != ops[b].At {
			return ops[a].At < ops[b].At
		}
		if ops[a].Req.Name != ops[b].Req.Name {
			return ops[a].Req.Name < ops[b].Req.Name
		}
		return !ops[a].Depart && ops[b].Depart
	})
	return ops
}

// Schedule registers every op against the controller on its kernel.
func Schedule(c *Controller, ops []Op) {
	k := c.k
	for _, op := range ops {
		op := op
		if op.Depart {
			k.ScheduleAt(op.At, func() { c.Depart(op.Req.Name) })
		} else {
			k.ScheduleAt(op.At, func() { c.Submit(op.Req) })
		}
	}
}
