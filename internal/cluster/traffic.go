package cluster

import (
	"fmt"
	"sort"

	"accelshare/internal/sim"
)

// Deterministic open-loop traffic: a seeded xorshift stream drives arrivals
// with paired departures plus one optional flash crowd. The generator is a
// pure function of the Profile — no wall clock, no global RNG — so a chaos
// soak replays byte-identically.

// xorshift is a minimal 64-bit xorshift PRNG; the zero value is invalid
// (xorshift never leaves 0), so Profile.Seed must be non-zero.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// Profile parameterises the open-loop generator.
type Profile struct {
	// Seed drives every random choice; must be non-zero.
	Seed uint64
	// Start/End bound background arrival times.
	Start, End sim.Time
	// MeanSpacing is the average gap between background arrivals in cycles
	// (spacing is uniform over [MeanSpacing/2, 3·MeanSpacing/2)).
	MeanSpacing sim.Time
	// MinLifetime/MeanLifetime bound how long a background stream stays
	// (uniform over [MinLifetime, MinLifetime+2·(MeanLifetime-MinLifetime))).
	MinLifetime, MeanLifetime sim.Time
	// Periods and Priorities are the sample-period / priority palettes
	// background arrivals draw from (uniformly).
	Periods    []int64
	Priorities []int
	// FlashAt triggers FlashCount near-simultaneous arrivals spaced
	// FlashSpacing apart, each with period FlashPeriod, priority 0, leaving
	// after FlashLifetime. FlashCount 0 disables the crowd.
	FlashAt       sim.Time
	FlashCount    int
	FlashSpacing  sim.Time
	FlashPeriod   int64
	FlashLifetime sim.Time
}

// Op is one generated traffic operation.
type Op struct {
	At     sim.Time
	Depart bool
	Req    StreamRequest
}

// Ops expands the profile into a deterministic, time-sorted operation list.
func (p Profile) Ops() []Op {
	var ops []Op
	rng := xorshift(p.Seed)
	if rng == 0 {
		rng = 1
	}
	if len(p.Periods) > 0 && p.MeanSpacing > 0 {
		t := p.Start
		n := 0
		for {
			span := p.MeanSpacing
			gap := span/2 + sim.Time(rng.next()%uint64(span))
			t += gap
			if t >= p.End {
				break
			}
			req := StreamRequest{
				Name:   fmt.Sprintf("s%02d", n),
				Period: p.Periods[rng.next()%uint64(len(p.Periods))],
			}
			if len(p.Priorities) > 0 {
				req.Priority = p.Priorities[rng.next()%uint64(len(p.Priorities))]
			}
			life := p.MinLifetime
			if p.MeanLifetime > p.MinLifetime {
				life += sim.Time(rng.next() % uint64(2*(p.MeanLifetime-p.MinLifetime)))
			}
			ops = append(ops, Op{At: t, Req: req})
			ops = append(ops, Op{At: t + life, Depart: true, Req: StreamRequest{Name: req.Name}})
			n++
		}
	}
	for i := 0; i < p.FlashCount; i++ {
		at := p.FlashAt + sim.Time(i)*p.FlashSpacing
		req := StreamRequest{Name: fmt.Sprintf("f%02d", i), Period: p.FlashPeriod}
		ops = append(ops, Op{At: at, Req: req})
		if p.FlashLifetime > 0 {
			ops = append(ops, Op{At: at + p.FlashLifetime, Depart: true, Req: StreamRequest{Name: req.Name}})
		}
	}
	sort.SliceStable(ops, func(a, b int) bool {
		if ops[a].At != ops[b].At {
			return ops[a].At < ops[b].At
		}
		if ops[a].Req.Name != ops[b].Req.Name {
			return ops[a].Req.Name < ops[b].Req.Name
		}
		return !ops[a].Depart && ops[b].Depart
	})
	return ops
}

// Schedule registers every op against the controller on its kernel.
func Schedule(c *Controller, ops []Op) {
	k := c.k
	for _, op := range ops {
		op := op
		if op.Depart {
			k.ScheduleAt(op.At, func() { c.Depart(op.Req.Name) })
		} else {
			k.ScheduleAt(op.At, func() { c.Submit(op.Req) })
		}
	}
}
