// Package cluster is the fleet-level control plane: it owns N heterogeneous
// accelerator chains (mpsoc.MultiSystem), places arriving streams via
// per-chain Algorithm 1 admission (internal/admission), and reacts to chain
// failure with an explicit degradation ladder:
//
//	rung 1 — failover: a wedged-chain verdict migrates every stream of the
//	         sick chain to a standby pair (mpsoc.FailoverController) in one
//	         bounded freeze→settle→migrate→resume action;
//	rung 2 — evacuate: with no standby left, each stream is re-placed
//	         individually on a surviving chain, reusing the export/import
//	         machinery as a migration primitive: the target re-solves
//	         admission (AdmitMigrated), the checkpointed replay residue is
//	         ≤ K words, and the measured cost of every step is recorded
//	         against a composed bound (settle + Σ transition envelopes +
//	         charged backoff delays);
//	rung 3 — shed: streams no surviving chain can admit are parked by a
//	         deterministic priority/utilisation policy — sources stopped,
//	         exported state retained — and readmitted when a chain heals.
//
// Every control-plane operation that can transiently fail (placement into a
// busy controller, migration, readmission, a departure whose chain died
// mid-transition) retries under one bounded deterministic backoff schedule
// (fault.Backoff) on the simulation clock: the whole plane is a function of
// the platform's event order, so a chaos campaign is byte-identical across
// runs.
package cluster

import (
	"fmt"
	"math/big"
	"sort"

	"accelshare/internal/accel"
	"accelshare/internal/admission"
	"accelshare/internal/conformance"
	"accelshare/internal/core"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
	"accelshare/internal/sim"
	"accelshare/internal/solve"
)

// ChainSpec describes one chain of the fleet.
type ChainSpec struct {
	Name string
	// AccelCost is ρA of the chain's single shared accelerator tile —
	// heterogeneous fleets mix costs, and Algorithm 1 re-solves per chain.
	AccelCost sim.Time
	// ReserveSlots pre-provisions ring attachment points for arrivals.
	ReserveSlots int
	// Spare builds the chain empty (mpsoc.ChainSpec.Standby), held in
	// reserve as a failover target or for promotion on heal.
	Spare bool
	// OnlineAt defers a spare's availability: the chain "heals" into the
	// fleet at this cycle (0 = available from the start). Ignored for
	// serving chains.
	OnlineAt sim.Time
	// Faults arms a deterministic fault plan against this chain — the chaos
	// campaign's chain kills are permanent wedge faults scheduled here.
	Faults *fault.Plan
}

// Config parameterises a cluster Controller.
type Config struct {
	EntryCost, ExitCost sim.Time
	HopLatency          sim.Time
	// Reconfig is Rs for every stream (one fleet-wide reconfiguration cost
	// keeps the campaign surface small; per-stream costs would thread
	// through StreamRequest the same way).
	Reconfig     sim.Time
	DrainTimeout sim.Time
	Recovery     gateway.Recovery
	PerSlotCost  sim.Time
	// Doctor parameterises the per-chain wedged-chain diagnosis.
	Doctor fault.DoctorConfig
	// Retry is the bounded deterministic backoff schedule shared by every
	// control-plane retry loop.
	Retry fault.Backoff
	// ResidentPeriod seeds every serving chain with one resident stream at
	// this sample period; residents anchor the chain's stall feed and are
	// evacuated like any other stream (at ResidentPriority) when it dies.
	ResidentPeriod   int64
	ResidentPriority int
	// InCapacity/OutCapacity size every stream's C-FIFOs.
	InCapacity, OutCapacity int
	// CollectOutputs stores every output word (functional contiguity checks
	// in campaigns; off for long soaks where memory matters).
	CollectOutputs bool
	// Solver is the per-chain Algorithm 1 decision procedure handed to
	// every admission controller (nil = the admission default,
	// solve.Default: exact below the tier split, exactly-verified float
	// fast path above). One shared instance is fine — solvers are
	// stateless and safe for concurrent use.
	Solver solve.Solver
	// Rebalance arms the periodic utilisation-spread rebalancing loop
	// (see RebalanceConfig; zero value = disabled).
	Rebalance RebalanceConfig
	// ReclaimSlots returns a departed stream's ring attachment points to
	// its home chain's reserve pool (mpsoc.ReclaimStream), so a sustained
	// serving campaign admits an unbounded sequence of lifetimes through a
	// bounded slot table. Off by default: short campaigns don't need it and
	// the flag keeps their transcripts byte-stable.
	ReclaimSlots bool
	Chains       []ChainSpec
}

// StreamRequest asks the fleet to admit a new stream.
type StreamRequest struct {
	Name string
	// Period is the source sample period in cycles: the rate constraint is
	// μs = 1/Period samples per cycle.
	Period int64
	// Priority orders evacuation and shedding: higher survives longer.
	Priority int
}

// EventKind tags one fleet event-log entry.
type EventKind string

// Fleet event kinds.
const (
	EvArrive    EventKind = "arrive"
	EvReject    EventKind = "reject"
	EvDepart    EventKind = "depart"
	EvRetry     EventKind = "retry"
	EvVerdict   EventKind = "verdict"
	EvFailover  EventKind = "failover"
	EvEvacuate  EventKind = "evacuate"
	EvMigrated  EventKind = "migrated"
	EvEvacuated EventKind = "evacuated"
	EvShed      EventKind = "shed"
	EvParked    EventKind = "parked"
	EvHeal      EventKind = "heal"
	EvReadmit   EventKind = "readmit"
	EvLost      EventKind = "lost"
	// EvRebalance marks a rebalance tick's plan (or an aborted move);
	// EvRebalanced marks one completed hot migration.
	EvRebalance  EventKind = "rebalance"
	EvRebalanced EventKind = "rebalanced"
)

// Event is one fleet event-log entry (append-only, deterministic order).
type Event struct {
	At     sim.Time
	Kind   EventKind
	Chain  string
	Stream string
	Detail string
}

// FormatEvent renders one entry deterministically.
func FormatEvent(e Event) string {
	site := e.Chain
	if e.Stream != "" {
		if site != "" {
			site += "/"
		}
		site += e.Stream
	}
	if e.Detail == "" {
		return fmt.Sprintf("[%7d] %-9s %s", e.At, e.Kind, site)
	}
	return fmt.Sprintf("[%7d] %-9s %-12s %s", e.At, e.Kind, site, e.Detail)
}

// LadderStep records one degradation-ladder action for one stream, with the
// measured cost against its (composed) bound. For failover steps the bound
// is the failover envelope max τ̂s(K) + slots·bus; for evacuate/shed steps it
// is the composed evacuation bound accumulated so far — settle + the sum of
// the accepted targets' transition envelopes + every charged backoff delay
// (see DESIGN § Fleet robustness); for readmit steps it is the admitting
// transition's own envelope.
// Rebalance moves record rung "rebalance" with the composed move bound:
// the source's removal envelope + settle + the target's admission envelope
// + charged backoff delays.
type LadderStep struct {
	At     sim.Time
	Stream string
	// Rung is "failover", "evacuate", "shed", "readmit" or "rebalance".
	Rung     string
	From, To string
	Measured uint64
	Bound    uint64
	// Replay is the stream's migrated replay residue in words (≤ K on a
	// checkpointing fleet).
	Replay int
}

type chainState int

const (
	chainServing chainState = iota
	chainSpare
	chainOffline
	chainFailed
)

func (s chainState) String() string {
	switch s {
	case chainServing:
		return "serving"
	case chainSpare:
		return "spare"
	case chainOffline:
		return "offline"
	case chainFailed:
		return "failed"
	}
	return "?"
}

type chainInfo struct {
	name  string
	pos   int // index into Controller.chains / Config.Chains
	idx   int // index into MultiSystem.Chains
	spec  ChainSpec
	state chainState
	ctrl  *admission.Controller
}

type streamInfo struct {
	name     string
	period   int64
	priority int
	resident bool

	chain    int // owning chainInfo index, -1 when unplaced/parked
	st       *mpsoc.Stream
	shed     bool
	departed bool
	rejected bool

	// inflight marks an uncommitted transition (placement, migration or
	// removal) pending on chain pendingOn; deferDepart re-issues a departure
	// that died with its chain once the stream lands somewhere.
	inflight    bool
	pendingOn   int
	departing   bool
	deferDepart bool

	// moving marks an in-flight rebalance move; moves counts completed
	// rebalance moves against RebalanceConfig.MoveBudget and movedAt
	// timestamps the last one (RebalanceConfig.Cooldown).
	moving  bool
	moves   int
	movedAt sim.Time

	export    gateway.StreamExport
	hasExport bool
}

// evacuation tracks one rung-2/3 drain of a failed chain.
type evacuation struct {
	from   *chainInfo
	reason string
	at     sim.Time
	// bound is the composed evacuation bound accumulated so far (cycles).
	bound    uint64
	queue    []*evacItem
	migrated int
	shed     int
}

type evacItem struct {
	si *streamInfo
	st *mpsoc.Stream
	e  gateway.StreamExport
}

// Controller is the fleet control plane.
type Controller struct {
	cfg Config
	ms  *mpsoc.MultiSystem
	k   *sim.Kernel

	chains  []*chainInfo
	streams map[string]*streamInfo
	order   []string // registry insertion order: deterministic iteration

	events []Event
	ladder []LadderStep

	// Rebalancer state: per-tick telemetry history, the pending move queue,
	// and the one-move-at-a-time gate.
	fleet     []FleetStats
	moveQueue []*moveOp
	moving    bool
}

// New builds the fleet platform and attaches the control plane. Serving
// chains are seeded with one resident stream each (block sizes solved by
// Algorithm 1); spare chains are built empty, coming online at OnlineAt.
func New(cfg Config) (*Controller, error) {
	if len(cfg.Chains) == 0 {
		return nil, fmt.Errorf("cluster: no chains")
	}
	if !cfg.Recovery.Enabled {
		return nil, fmt.Errorf("cluster: recovery must be enabled (evacuation needs replay snapshots)")
	}
	if cfg.ResidentPeriod <= 0 {
		return nil, fmt.Errorf("cluster: resident period must be positive")
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Rebalance.validate(); err != nil {
		return nil, err
	}
	serving := 0
	for _, cs := range cfg.Chains {
		if !cs.Spare {
			serving++
		}
	}
	if serving == 0 {
		return nil, fmt.Errorf("cluster: no serving chains")
	}

	c := &Controller{cfg: cfg, streams: map[string]*streamInfo{}}
	var mc mpsoc.MultiConfig
	mc.Name = "cluster"
	mc.HopLatency = cfg.HopLatency
	models := make([]*core.System, len(cfg.Chains))
	for pos, cs := range cfg.Chains {
		ms := mpsoc.ChainSpec{
			Name:              cs.Name,
			EntryCost:         cfg.EntryCost,
			ExitCost:          cfg.ExitCost,
			DrainTimeout:      cfg.DrainTimeout,
			Recovery:          cfg.Recovery,
			RecordTurnarounds: true,
			ReserveSlots:      cs.ReserveSlots,
			Faults:            cs.Faults,
			Accels:            []mpsoc.AccelSpec{{Name: cs.Name + ".acc", Cost: cs.AccelCost}},
		}
		if cs.Spare {
			ms.Standby = true
		} else {
			rname := "r-" + cs.Name
			model := &core.System{Chain: c.coreChain(cs), ClockHz: 1, Streams: []core.Stream{{
				Name:     rname,
				Rate:     big.NewRat(1, cfg.ResidentPeriod),
				Reconfig: uint64(cfg.Reconfig),
			}}}
			res, err := model.ComputeBlockSizes()
			if err != nil {
				return nil, fmt.Errorf("cluster: resident of %q: %w", cs.Name, err)
			}
			model.Streams[0].Block = res.Blocks[0]
			models[pos] = model
			ms.Streams = []mpsoc.StreamSpec{{
				Name:           rname,
				Block:          res.Blocks[0],
				Decimation:     1,
				Reconfig:       cfg.Reconfig,
				InCapacity:     cfg.InCapacity,
				OutCapacity:    cfg.OutCapacity,
				Engines:        []accel.Engine{&accel.Gain{}},
				SourcePeriod:   sim.Time(cfg.ResidentPeriod),
				CollectOutputs: cfg.CollectOutputs,
			}}
		}
		mc.Chains = append(mc.Chains, ms)
	}
	plat, err := mpsoc.BuildMulti(mc)
	if err != nil {
		return nil, err
	}
	c.ms = plat
	c.k = plat.K

	for pos, cs := range cfg.Chains {
		ci := &chainInfo{name: cs.Name, pos: pos, idx: pos, spec: cs}
		c.chains = append(c.chains, ci)
		if cs.Spare {
			if cs.OnlineAt > 0 {
				ci.state = chainOffline
				ci := ci
				c.k.ScheduleAt(cs.OnlineAt, func() { c.onHeal(ci) })
			} else {
				ci.state = chainSpare
			}
			continue
		}
		ci.state = chainServing
		ctrl, err := admission.New(plat, admission.Config{
			Chain:          pos,
			Model:          models[pos],
			PerSlotCost:    cfg.PerSlotCost,
			Solver:         cfg.Solver,
			Checkpoint:     cfg.Recovery.Checkpoint,
			CheckpointCost: cfg.Recovery.CheckpointCost,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: chain %q: %w", cs.Name, err)
		}
		ci.ctrl = ctrl
		if err := c.armDoctor(ci); err != nil {
			return nil, err
		}
		rname := "r-" + cs.Name
		si := &streamInfo{
			name: rname, period: cfg.ResidentPeriod, priority: cfg.ResidentPriority,
			resident: true, chain: pos, st: plat.Chains[pos].Strs[0],
		}
		c.streams[rname] = si
		c.order = append(c.order, rname)
	}
	c.scheduleRebalance()
	return c, nil
}

func (c *Controller) coreChain(cs ChainSpec) core.Chain {
	return core.Chain{
		Name:       cs.Name,
		AccelCosts: []uint64{uint64(cs.AccelCost)},
		EntryCost:  uint64(c.cfg.EntryCost),
		ExitCost:   uint64(c.cfg.ExitCost),
		NICapacity: 2,
	}
}

// System exposes the underlying platform (conformance, reports).
func (c *Controller) System() *mpsoc.MultiSystem { return c.ms }

// Events returns the fleet event log (append-only; do not mutate).
func (c *Controller) Events() []Event { return c.events }

// LadderSteps returns every recorded degradation-ladder step in order.
func (c *Controller) LadderSteps() []LadderStep { return c.ladder }

// Run starts every gateway pair and advances the simulation.
func (c *Controller) Run(horizon sim.Time) { c.ms.Run(horizon) }

func (c *Controller) event(kind EventKind, chain, stream, detail string) {
	c.events = append(c.events, Event{At: c.k.Now(), Kind: kind, Chain: chain, Stream: stream, Detail: detail})
}

func (c *Controller) armDoctor(ci *chainInfo) error {
	d, err := fault.NewDoctor(c.k, c.cfg.Doctor, func(v fault.Verdict) { c.onVerdict(ci, v) })
	if err != nil {
		return err
	}
	c.ms.Chains[ci.idx].Pair.SetStallObserver(d.NoteStall)
	return nil
}

// rankServing orders the live chains by utilisation (ascending, exact
// big.Rat compare), name as the tie-break: the placement policy and the
// shed policy's "least-loaded first" are the same deterministic ranking.
func (c *Controller) rankServing() []*chainInfo {
	var out []*chainInfo
	for _, ci := range c.chains {
		if ci.state == chainServing && ci.ctrl != nil {
			out = append(out, ci)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		ua, ub := out[a].ctrl.Model().Utilization(), out[b].ctrl.Model().Utilization()
		if cmp := ua.Cmp(ub); cmp != 0 {
			return cmp < 0
		}
		return out[a].name < out[b].name
	})
	return out
}

func (c *Controller) streamSpec(si *streamInfo) mpsoc.StreamSpec {
	return mpsoc.StreamSpec{
		Name:           si.name,
		Decimation:     1,
		Reconfig:       c.cfg.Reconfig,
		InCapacity:     c.cfg.InCapacity,
		OutCapacity:    c.cfg.OutCapacity,
		Engines:        []accel.Engine{&accel.Gain{}},
		SourcePeriod:   sim.Time(si.period),
		CollectOutputs: c.cfg.CollectOutputs,
	}
}

// Submit asks the fleet to admit a new stream; placement tries every
// serving chain in utilisation order, with bounded backoff while targets
// are busy. The final outcome lands in the event log.
func (c *Controller) Submit(req StreamRequest) {
	if req.Name == "" || req.Period <= 0 {
		c.event(EvReject, "", req.Name, "bad request")
		return
	}
	if c.streams[req.Name] != nil {
		c.event(EvReject, "", req.Name, "name already in use")
		return
	}
	si := &streamInfo{name: req.Name, period: req.Period, priority: req.Priority, chain: -1}
	c.streams[req.Name] = si
	c.order = append(c.order, req.Name)
	c.place(si, 0)
}

func (c *Controller) place(si *streamInfo, attempt int) {
	if si.departed || si.rejected {
		return
	}
	targets := c.rankServing()
	busy := false
	detail := "no serving chain"
	for _, tc := range targets {
		if c.tryPlace(si, tc, attempt, &busy, &detail) {
			return
		}
	}
	if busy {
		if d, ok := c.cfg.Retry.Delay(attempt); ok {
			c.event(EvRetry, "", si.name, fmt.Sprintf("placement attempt %d backs off %d cycles", attempt+1, d))
			c.k.Schedule(d, func() { c.place(si, attempt+1) })
			return
		}
		detail = "retry budget exhausted (targets busy)"
	}
	si.rejected = true
	c.event(EvReject, "", si.name, detail)
}

// tryPlace offers si to one chain. It returns true when the chain accepted
// (the staged transition is in flight and the done callback completes or
// re-routes the placement), false on a synchronous rejection.
func (c *Controller) tryPlace(si *streamInfo, tc *chainInfo, attempt int, busy *bool, detail *string) bool {
	async := false
	rejected := false
	tcPos := tc.pos
	tc.ctrl.AddStream(admission.AddRequest{
		Spec: c.streamSpec(si),
		Rate: big.NewRat(1, si.period),
	}, func(v admission.Verdict) {
		if !v.Accepted {
			if !async {
				rejected = true
				if v.Reason == admission.ReasonBusy {
					*busy = true
				}
				*detail = fmt.Sprintf("%s: %s", v.Reason, v.Detail)
				return
			}
			// Asynchronous rejection: the stream set changed during the
			// drain (superseded). Re-place from scratch under backoff.
			si.inflight = false
			if d, ok := c.cfg.Retry.Delay(attempt); ok {
				c.event(EvRetry, "", si.name, fmt.Sprintf("placement superseded on %s; backs off %d cycles", tc.name, d))
				c.k.Schedule(d, func() { c.place(si, attempt+1) })
				return
			}
			si.rejected = true
			c.event(EvReject, "", si.name, "retry budget exhausted (superseded)")
			return
		}
		si.inflight = false
		si.chain = tcPos
		si.st = c.findStream(tc, si.name)
		c.event(EvArrive, tc.name, si.name, fmt.Sprintf("eta=%d wait=%d bound=%d",
			lastBlock(v), v.PauseWait, v.BoundCycles))
		if si.deferDepart {
			si.deferDepart = false
			c.depart(si, 0)
		}
	})
	if rejected {
		return false
	}
	async = true
	si.inflight = true
	si.pendingOn = tcPos
	return true
}

// findStream resolves the mpsoc stream named name on chain tc, scanning
// backwards so a freshly attached stream wins over an abandoned zombie slot
// of the same name (an arrival whose transition died with an earlier chain).
func (c *Controller) findStream(tc *chainInfo, name string) *mpsoc.Stream {
	strs := c.ms.Chains[tc.idx].Strs
	for i := len(strs) - 1; i >= 0; i-- {
		if strs[i].GW.Name == name {
			return strs[i]
		}
	}
	return nil
}

func lastBlock(v admission.Verdict) int64 {
	if len(v.Blocks) == 0 {
		return 0
	}
	return v.Blocks[len(v.Blocks)-1].Block
}

// Depart retires a stream from the fleet.
func (c *Controller) Depart(name string) {
	si := c.streams[name]
	if si == nil || si.resident {
		c.event(EvReject, "", name, "cannot depart: unknown or resident stream")
		return
	}
	c.depart(si, 0)
}

func (c *Controller) depart(si *streamInfo, attempt int) {
	if si.departed || si.rejected {
		return
	}
	if si.shed {
		// A parked stream departs without a transition: nothing is running.
		si.shed = false
		si.departed = true
		c.event(EvDepart, "", si.name, "departed while parked")
		return
	}
	if si.chain < 0 || si.inflight {
		// Mid-migration (or mid-placement): wait for the stream to land.
		si.deferDepart = true
		return
	}
	ci := c.chains[si.chain]
	if ci.state != chainServing || ci.ctrl == nil {
		si.deferDepart = true
		return
	}
	async := false
	ciPos := ci.pos
	ci.ctrl.RemoveStream(si.name, func(v admission.Verdict) {
		if !v.Accepted {
			retry := v.Reason == admission.ReasonBusy || v.Reason == admission.ReasonSuperseded
			if async {
				si.inflight = false
				si.departing = false
			}
			if retry {
				if d, ok := c.cfg.Retry.Delay(attempt); ok {
					c.event(EvRetry, "", si.name, fmt.Sprintf("departure attempt %d backs off %d cycles", attempt+1, d))
					c.k.Schedule(d, func() { c.depart(si, attempt+1) })
					return
				}
			}
			c.event(EvReject, ci.name, si.name, fmt.Sprintf("departure failed: %s: %s", v.Reason, v.Detail))
			return
		}
		si.inflight = false
		si.departing = false
		si.departed = true
		si.chain = -1
		c.event(EvDepart, ci.name, si.name, fmt.Sprintf("wait=%d bound=%d", v.PauseWait, v.BoundCycles))
		if c.cfg.ReclaimSlots {
			// Retire the parked slot for good: forget it on the admission
			// side first so a later failover Retarget never looks for a
			// name whose gateway slot is a Released tombstone.
			if _, ok := ci.ctrl.ForgetParked(si.name); ok {
				if err := c.ms.ReclaimStream(ci.idx, si.name); err != nil {
					c.event(EvLost, ci.name, si.name, fmt.Sprintf("slot reclaim failed: %v", err))
				}
			}
		}
	})
	if si.departed {
		return // synchronous accept cannot happen, but keep the invariant
	}
	async = true
	if !si.inflight && !si.departed {
		si.inflight = true
		si.departing = true
		si.pendingOn = ciPos
	}
}

// onVerdict is the doctor's wedged-chain conviction: enter the ladder.
func (c *Controller) onVerdict(ci *chainInfo, v fault.Verdict) {
	if ci.state != chainServing || ci.ctrl == nil {
		return
	}
	c.event(EvVerdict, ci.name, "", v.Reason)
	if sp := c.pickSpare(); sp != nil {
		c.failover(ci, sp, v.Reason)
		return
	}
	c.evacuate(ci, v.Reason)
}

func (c *Controller) pickSpare() *chainInfo {
	for _, ci := range c.chains {
		if ci.state == chainSpare {
			return ci
		}
	}
	return nil
}

// failover is rung 1: migrate the whole chain to a standby pair.
func (c *Controller) failover(ci, sp *chainInfo, reason string) {
	fc, err := mpsoc.NewFailover(c.ms, mpsoc.FailoverConfig{
		Primary:        ci.idx,
		Standby:        sp.idx,
		Model:          ci.ctrl.Model(),
		PerSlotCost:    c.cfg.PerSlotCost,
		Checkpoint:     c.cfg.Recovery.Checkpoint,
		CheckpointCost: c.cfg.Recovery.CheckpointCost,
		OnComplete:     func(rec mpsoc.Record) { c.onFailoverDone(ci, sp, rec) },
	})
	if err == nil {
		err = fc.Trigger(reason)
	}
	if err != nil {
		// The spare cannot take the chain (validation failure): degrade to
		// rung 2 instead of dying on the ladder.
		c.event(EvFailover, ci.name, "", fmt.Sprintf("failover to %s refused (%v); evacuating", sp.name, err))
		c.evacuate(ci, reason)
		return
	}
	sp.state = chainOffline // claimed: not spare, not yet serving
	ci.state = chainFailed
	c.reissuePending(ci)
}

func (c *Controller) onFailoverDone(ci, sp *chainInfo, rec mpsoc.Record) {
	var stdChain *core.Chain
	if sp.spec.AccelCost != ci.spec.AccelCost {
		std := c.coreChain(sp.spec)
		stdChain = &std
	}
	if err := ci.ctrl.Retarget(sp.idx, stdChain); err != nil {
		// Leaves the fleet without a controller for these streams; record
		// loudly rather than guessing.
		c.event(EvFailover, sp.name, "", fmt.Sprintf("retarget failed: %v", err))
		return
	}
	sp.ctrl = ci.ctrl
	ci.ctrl = nil
	sp.state = chainServing
	if err := c.armDoctor(sp); err != nil {
		c.event(EvFailover, sp.name, "", fmt.Sprintf("doctor re-arm failed: %v", err))
	}
	moved := 0
	for _, name := range c.order {
		si := c.streams[name]
		if si.chain == ci.pos && !si.departed {
			si.chain = sp.pos
			moved++
		}
	}
	for _, name := range rec.Names {
		si := c.streams[name]
		if si == nil || si.departed || si.shed || si.chain != sp.pos {
			continue
		}
		c.ladder = append(c.ladder, LadderStep{
			At: rec.ResumedAt, Stream: name, Rung: "failover",
			From: ci.name, To: sp.name,
			Measured: rec.MeasuredCycles, Bound: rec.BoundCycles, Replay: rec.ReplayWords,
		})
	}
	c.event(EvFailover, sp.name, "", fmt.Sprintf("%d streams from %s measured=%d bound=%d replay=%d",
		moved, ci.name, rec.MeasuredCycles, rec.BoundCycles, rec.ReplayWords))
	for _, name := range c.order {
		si := c.streams[name]
		if si.deferDepart && si.chain == sp.pos && !si.inflight {
			si.deferDepart = false
			c.depart(si, 0)
		}
	}
}

// reissuePending re-routes operations that died with a failed chain: an
// uncommitted arrival is re-placed on the survivors (its half-attached
// zombie slot, if the attach committed before the freeze, gets its source
// stopped and is abandoned — it is not in any admission model); an
// uncommitted departure is re-issued once the stream lands again.
func (c *Controller) reissuePending(ci *chainInfo) {
	for _, name := range c.order {
		si := c.streams[name]
		if si.departed || !si.inflight || si.pendingOn != ci.pos {
			continue
		}
		si.inflight = false
		if si.moving {
			// A rebalance move died with this chain. Abandon the rest of the
			// plan (its models are stale) and recover the victim: before the
			// release the stream is still in the frozen chain's slot table,
			// so the failover/evacuation carries it like any resident; after
			// the release we hold its export, so it parks and the readmission
			// machinery gets it back.
			si.moving = false
			c.moveQueue = nil
			c.moving = false
			if si.hasExport {
				si.shed = true
				c.event(EvLost, ci.name, si.name, "rebalance target died mid-admit; parked")
				c.scheduleReadmit(si, 0)
			} else {
				c.event(EvLost, ci.name, si.name, "rebalance removal died with the chain")
			}
			continue
		}
		if si.departing {
			si.departing = false
			si.deferDepart = true
			continue
		}
		if st := c.findStream(ci, si.name); st != nil {
			st.StopSource()
		}
		si.chain = -1
		c.event(EvLost, ci.name, si.name, "arrival died with the chain; re-placing")
		c.place(si, 0)
	}
}

// evacuate is rung 2: freeze the chain, settle, then re-place every live
// stream individually (rung 3, shed, per stream when no target admits it).
func (c *Controller) evacuate(ci *chainInfo, reason string) {
	msch := c.ms.Chains[ci.idx]
	maxTau := c.maxTauOf(ci.ctrl.Model())
	if err := msch.Pair.FreezeForFailover(); err != nil {
		c.event(EvEvacuate, ci.name, "", fmt.Sprintf("freeze failed: %v", err))
		return
	}
	for _, st := range msch.Strs {
		if st.GW.Released {
			// A rebalanced-away stream's tombstone: its FIFOs left with it.
			continue
		}
		st.In.BeginRepoint()
	}
	settle := c.cfg.Recovery.FlushDelay
	if settle == 0 {
		settle = c.cfg.DrainTimeout
	}
	if maxTau > 0 && settle > sim.Time(maxTau) {
		settle = sim.Time(maxTau)
	}
	if settle == 0 {
		settle = 1
	}
	ci.state = chainFailed
	c.reissuePending(ci)
	ci.ctrl = nil
	ev := &evacuation{from: ci, reason: reason, at: c.k.Now(), bound: uint64(settle)}
	c.event(EvEvacuate, ci.name, "", fmt.Sprintf("settle=%d", settle))
	c.k.Schedule(settle, func() { c.evacExport(ev) })
}

// evacExport runs after the settle: export the dead chain and queue each
// live stream for re-placement, priority-ordered (higher first; the shed
// policy is exactly "lowest priority, last in name order, sheds first").
func (c *Controller) evacExport(ev *evacuation) {
	msch := c.ms.Chains[ev.from.idx]
	exports, err := msch.Pair.ExportStreams()
	if err != nil {
		c.event(EvEvacuate, ev.from.name, "", fmt.Sprintf("export failed: %v", err))
		return
	}
	moved := msch.Strs
	msch.Strs = nil
	for i, e := range exports {
		si := c.streams[e.Stream.Name]
		if si == nil || si.departed || si.shed || si.chain != ev.from.pos {
			// Departed slots (suspended), zombies and foreign names are
			// dropped with the chain.
			continue
		}
		ev.queue = append(ev.queue, &evacItem{si: si, st: moved[i], e: e})
	}
	sort.SliceStable(ev.queue, func(a, b int) bool {
		if ev.queue[a].si.priority != ev.queue[b].si.priority {
			return ev.queue[a].si.priority > ev.queue[b].si.priority
		}
		return ev.queue[a].si.name < ev.queue[b].si.name
	})
	for _, it := range ev.queue {
		it.si.chain = -1
	}
	c.evacNext(ev)
}

func (c *Controller) evacNext(ev *evacuation) {
	if len(ev.queue) == 0 {
		c.event(EvEvacuated, ev.from.name, "", fmt.Sprintf("%d migrated %d shed measured=%d bound=%d",
			ev.migrated, ev.shed, uint64(c.k.Now()-ev.at), ev.bound))
		return
	}
	c.evacPlace(ev, ev.queue[0], 0)
}

func (c *Controller) evacPlace(ev *evacuation, it *evacItem, attempt int) {
	if it.si.departed {
		ev.queue = ev.queue[1:]
		c.evacNext(ev)
		return
	}
	targets := c.rankServing()
	busy := false
	for _, tc := range targets {
		if c.tryMigrate(ev, it, tc, attempt, &busy) {
			return
		}
	}
	if busy {
		if d, ok := c.cfg.Retry.Delay(attempt); ok {
			// A charged backoff delay extends the composed bound: the wait
			// is part of the evacuation's measured cost.
			ev.bound += uint64(d)
			c.event(EvRetry, "", it.si.name, fmt.Sprintf("migration attempt %d backs off %d cycles", attempt+1, d))
			c.k.Schedule(d, func() { c.evacPlace(ev, it, attempt+1) })
			return
		}
	}
	c.shedStream(ev, it)
}

func minBlockOf(e gateway.StreamExport, decimation int64) int64 {
	mb := e.ReplayStart + int64(len(e.Replay))
	if cb := e.Committed * decimation; cb > mb {
		mb = cb
	}
	return mb
}

func (c *Controller) tryMigrate(ev *evacuation, it *evacItem, tc *chainInfo, attempt int, busy *bool) bool {
	async := false
	rejected := false
	tcPos := tc.pos
	tc.ctrl.AdmitMigrated(admission.MigrateRequest{
		Name:        it.si.name,
		Rate:        big.NewRat(1, it.si.period),
		Reconfig:    uint64(c.cfg.Reconfig),
		Decimation:  1,
		MinBlock:    minBlockOf(it.e, 1),
		InCapacity:  it.st.In.Capacity(),
		OutCapacity: it.st.Out.Capacity(),
		Import:      func() (int, error) { return c.ms.AdoptStream(tc.idx, it.st, it.e) },
	}, func(v admission.Verdict) {
		if !v.Accepted {
			if !async {
				rejected = true
				if v.Reason == admission.ReasonBusy {
					*busy = true
				}
				return
			}
			// Superseded mid-drain: the export is still ours; retry the
			// whole placement under backoff.
			it.si.inflight = false
			if d, ok := c.cfg.Retry.Delay(attempt); ok {
				ev.bound += uint64(d)
				c.event(EvRetry, "", it.si.name, fmt.Sprintf("migration superseded on %s; backs off %d cycles", tc.name, d))
				c.k.Schedule(d, func() { c.evacPlace(ev, it, attempt+1) })
				return
			}
			c.shedStream(ev, it)
			return
		}
		it.si.inflight = false
		it.si.chain = tcPos
		ev.bound += v.BoundCycles
		ev.migrated++
		measured := uint64(c.k.Now() - ev.at)
		c.ladder = append(c.ladder, LadderStep{
			At: c.k.Now(), Stream: it.si.name, Rung: "evacuate",
			From: ev.from.name, To: tc.name,
			Measured: measured, Bound: ev.bound, Replay: len(it.e.Replay),
		})
		c.event(EvMigrated, tc.name, it.si.name, fmt.Sprintf("eta=%d measured=%d bound=%d replay=%d",
			lastBlock(v), measured, ev.bound, len(it.e.Replay)))
		if it.si.deferDepart {
			it.si.deferDepart = false
			c.depart(it.si, 0)
		}
		ev.queue = ev.queue[1:]
		c.evacNext(ev)
	})
	if rejected {
		return false
	}
	async = true
	it.si.inflight = true
	it.si.pendingOn = tcPos
	return true
}

// shedStream is rung 3: park the stream (source stopped, exported state
// retained) and probe for readmission under the bounded backoff schedule; a
// heal re-kicks parked streams with a fresh budget.
func (c *Controller) shedStream(ev *evacuation, it *evacItem) {
	si := it.si
	ev.queue = ev.queue[1:]
	if si.deferDepart {
		si.deferDepart = false
		si.departed = true
		c.event(EvDepart, "", si.name, "departed during evacuation")
		c.evacNext(ev)
		return
	}
	si.shed = true
	si.chain = -1
	si.st = it.st
	si.export = it.e
	si.hasExport = true
	si.st.StopSource()
	ev.shed++
	measured := uint64(c.k.Now() - ev.at)
	c.ladder = append(c.ladder, LadderStep{
		At: c.k.Now(), Stream: si.name, Rung: "shed",
		From: ev.from.name, To: "",
		Measured: measured, Bound: ev.bound, Replay: len(it.e.Replay),
	})
	c.event(EvShed, "", si.name, fmt.Sprintf("no capacity on any serving chain; parked (measured=%d bound=%d)",
		measured, ev.bound))
	c.scheduleReadmit(si, 0)
	c.evacNext(ev)
}

func (c *Controller) scheduleReadmit(si *streamInfo, attempt int) {
	d, ok := c.cfg.Retry.Delay(attempt)
	if !ok {
		c.event(EvParked, "", si.name, "readmission budget exhausted; awaiting a heal")
		return
	}
	c.k.Schedule(d, func() { c.tryReadmit(si, attempt) })
}

func (c *Controller) tryReadmit(si *streamInfo, attempt int) {
	if !si.shed || si.departed || si.inflight {
		return
	}
	for _, tc := range c.rankServing() {
		if c.tryReadmitOn(si, tc, attempt) {
			return
		}
	}
	c.scheduleReadmit(si, attempt+1)
}

func (c *Controller) tryReadmitOn(si *streamInfo, tc *chainInfo, attempt int) bool {
	async := false
	rejected := false
	tcPos := tc.pos
	tc.ctrl.AdmitMigrated(admission.MigrateRequest{
		Name:        si.name,
		Rate:        big.NewRat(1, si.period),
		Reconfig:    uint64(c.cfg.Reconfig),
		Decimation:  1,
		MinBlock:    minBlockOf(si.export, 1),
		InCapacity:  si.st.In.Capacity(),
		OutCapacity: si.st.Out.Capacity(),
		Import:      func() (int, error) { return c.ms.AdoptStream(tc.idx, si.st, si.export) },
	}, func(v admission.Verdict) {
		if !v.Accepted {
			if !async {
				rejected = true
				return
			}
			si.inflight = false
			c.scheduleReadmit(si, attempt+1)
			return
		}
		si.inflight = false
		si.shed = false
		si.hasExport = false
		si.chain = tcPos
		c.ms.StartSource(si.st)
		c.ladder = append(c.ladder, LadderStep{
			At: c.k.Now(), Stream: si.name, Rung: "readmit",
			From: "", To: tc.name,
			Measured: uint64(v.PauseWait) + v.BusCycles, Bound: v.BoundCycles,
			Replay: len(si.export.Replay),
		})
		c.event(EvReadmit, tc.name, si.name, fmt.Sprintf("eta=%d wait=%d bound=%d",
			lastBlock(v), v.PauseWait, v.BoundCycles))
		if si.deferDepart {
			si.deferDepart = false
			c.depart(si, 0)
		}
	})
	if rejected {
		return false
	}
	async = true
	si.inflight = true
	si.pendingOn = tcPos
	return true
}

// onHeal brings a deferred spare online. With shed streams waiting, the
// chain is promoted straight to serving (an empty-model admission
// controller) and the parked streams are re-kicked with a fresh retry
// budget; otherwise it joins the spare pool as a failover target.
func (c *Controller) onHeal(ci *chainInfo) {
	if ci.state != chainOffline {
		return
	}
	shedWaiting := 0
	for _, name := range c.order {
		si := c.streams[name]
		if si.shed && !si.departed {
			shedWaiting++
		}
	}
	if shedWaiting == 0 {
		ci.state = chainSpare
		c.event(EvHeal, ci.name, "", "online as spare")
		return
	}
	model := &core.System{Chain: c.coreChain(ci.spec), ClockHz: 1}
	ctrl, err := admission.New(c.ms, admission.Config{
		Chain:          ci.idx,
		Model:          model,
		PerSlotCost:    c.cfg.PerSlotCost,
		Solver:         c.cfg.Solver,
		Checkpoint:     c.cfg.Recovery.Checkpoint,
		CheckpointCost: c.cfg.Recovery.CheckpointCost,
	})
	if err != nil {
		ci.state = chainSpare
		c.event(EvHeal, ci.name, "", fmt.Sprintf("online as spare (promotion failed: %v)", err))
		return
	}
	ci.ctrl = ctrl
	ci.state = chainServing
	if err := c.armDoctor(ci); err != nil {
		c.event(EvHeal, ci.name, "", fmt.Sprintf("doctor arm failed: %v", err))
	}
	c.event(EvHeal, ci.name, "", fmt.Sprintf("online serving; re-kicking %d parked streams", shedWaiting))
	// Staggered deterministic kicks: the first probe wins the pause, the
	// rest find the controller busy and re-enter the backoff loop.
	delay := sim.Time(1)
	for _, name := range c.order {
		si := c.streams[name]
		if !si.shed || si.departed {
			continue
		}
		c.k.Schedule(delay, func() { c.tryReadmit(si, 0) })
		delay++
	}
}

// ChainStatus summarises one chain for reports.
type ChainStatus struct {
	Name    string
	State   string
	Streams int // live registry streams owned
}

// ChainStatuses lists every chain in configuration order.
func (c *Controller) ChainStatuses() []ChainStatus {
	out := make([]ChainStatus, len(c.chains))
	for i, ci := range c.chains {
		n := 0
		for _, name := range c.order {
			si := c.streams[name]
			if !si.departed && !si.shed && si.chain == ci.pos {
				n++
			}
		}
		out[i] = ChainStatus{Name: ci.name, State: ci.state.String(), Streams: n}
	}
	return out
}

// StreamStatus summarises one registry stream for reports.
type StreamStatus struct {
	Name     string
	Chain    string // owning chain ("" when parked/departed/rejected)
	State    string // live | parked | departed | rejected | placing
	Priority int
	Blocks   uint64
	Samples  uint64
	Overflow uint64
	// ContiguousOutputs is true when every collected output word is the
	// identity sequence 0,1,2,… — value-exact across every migration the
	// stream survived. Only meaningful with Config.CollectOutputs.
	ContiguousOutputs bool
}

// StreamStatuses lists every stream ever submitted, in submission order.
func (c *Controller) StreamStatuses() []StreamStatus {
	var out []StreamStatus
	for _, name := range c.order {
		si := c.streams[name]
		ss := StreamStatus{Name: name, Priority: si.priority}
		switch {
		case si.rejected:
			ss.State = "rejected"
		case si.departed:
			ss.State = "departed"
		case si.shed:
			ss.State = "parked"
		case si.chain >= 0:
			ss.State = "live"
			ss.Chain = c.chains[si.chain].name
		default:
			ss.State = "placing"
		}
		if si.st != nil {
			ss.Blocks = si.st.GW.Blocks
			ss.Samples = si.st.GW.SamplesOut
			ss.Overflow = si.st.Overflows
			ss.ContiguousOutputs = contiguous(si.st.Outputs)
		}
		out = append(out, ss)
	}
	return out
}

func contiguous(words []sim.Word) bool {
	for i, w := range words {
		if w != sim.Word(i) {
			return false
		}
	}
	return true
}

// ChainConformance is the fleet-wide Eq. 2/4/5 check for one chain.
type ChainConformance struct {
	Chain   string
	Streams int
	Result  conformance.Result
}

// Conformance runs the Eq. 2/4/5 harness over every serving chain's live
// streams with the given options (After should cut past the last
// disturbance). A migrated stream's trace spans chains; the cut scopes the
// check to the blocks served under the current owner's model.
func (c *Controller) Conformance(opt conformance.Options) ([]ChainConformance, error) {
	var out []ChainConformance
	for _, ci := range c.chains {
		if ci.state != chainServing || ci.ctrl == nil {
			continue
		}
		model := ci.ctrl.Model()
		if len(model.Streams) == 0 {
			continue
		}
		bounds, err := conformance.FromModelCheckpointed(model, c.cfg.Recovery.Checkpoint, uint64(c.cfg.Recovery.CheckpointCost))
		if err != nil {
			return nil, fmt.Errorf("cluster: chain %q bounds: %w", ci.name, err)
		}
		streams := make([]*gateway.Stream, len(model.Streams))
		for i := range model.Streams {
			si := c.streams[model.Streams[i].Name]
			if si == nil || si.st == nil {
				return nil, fmt.Errorf("cluster: chain %q: model stream %q not in registry", ci.name, model.Streams[i].Name)
			}
			streams[i] = si.st.GW
		}
		out = append(out, ChainConformance{
			Chain:   ci.name,
			Streams: len(streams),
			Result:  conformance.FromStreams(bounds, streams, opt),
		})
	}
	return out, nil
}
