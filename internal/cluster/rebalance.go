package cluster

// Fleet rebalancing: a deterministic periodic controller loop that keeps the
// serving chains' utilisation spread bounded by migrating streams hot — the
// PR 3/4 export/import machinery as a LOAD-BALANCING primitive, not only a
// fault-recovery one (UltraShare's scheduler/allocator split: the rebalancer
// decides who runs where now, each chain's admission controller proves
// feasibility).
//
// Every tick the loop snapshots per-chain telemetry into a FleetStats
// (exact big.Rat slot utilisation from the admission model, buffer-memory
// occupancy via cfifo.BufferStats, pending/parked queue depth from the
// registry) and compares the utilisation spread (max − min over serving
// chains) against a high-water mark. Above it, solve.PlanRebalance picks
// victims smallest-residue-first (replay stays ≤ K and the cheapest moves
// land first) and plans moves down toward a LOW-water mark — the hysteresis
// gap, plus per-stream move budgets and cooldowns, is what prevents two
// near-balanced chains from trading the same stream forever.
//
// One move is a composed, individually bounded sequence on the live fleet:
//
//	remove   — the source controller's RemoveStream drains the chain to a
//	           block boundary, suspends the victim's slot and re-solves the
//	           survivors (bound: its transition envelope);
//	release  — ForgetParked + mpsoc.ReleaseStream export the suspended slot
//	           from the LIVE pair (tombstoned, indices stable) and gate the
//	           producer (cfifo.BeginRepoint);
//	settle   — wait out the worst-case ring transit, clamped to the source
//	           model's max τ̂s(K) (bound: the settle itself);
//	admit    — the target's AdmitMigrated re-solves with the replay-residue
//	           floor and imports inside its paused transition (bound: its
//	           envelope, plus every charged backoff while targets are busy).
//
// The measured trigger→resume cost of every move is recorded against that
// composed bound as a LadderStep with rung "rebalance".

import (
	"fmt"
	"math/big"
	"sort"

	"accelshare/internal/admission"
	"accelshare/internal/cfifo"
	"accelshare/internal/core"
	"accelshare/internal/sim"
	"accelshare/internal/solve"
)

// RebalanceConfig parameterises the periodic rebalancing loop.
type RebalanceConfig struct {
	// Every is the tick period; 0 disables rebalancing entirely.
	Every sim.Time
	// Start is the first tick (0 = Every); Stop ends ticking (0 = never) —
	// campaigns stop the loop before their conformance cut so no move lands
	// inside the measured window.
	Start, Stop sim.Time
	// HighWater triggers a rebalance when the serving chains' exact
	// utilisation spread exceeds it (nil = 1/4); LowWater is the planning
	// target the spread is driven down to (nil = HighWater/2). The gap is
	// the hysteresis band.
	HighWater, LowWater *big.Rat
	// MaxMovesPerTick caps one tick's plan (0 = 1).
	MaxMovesPerTick int
	// MoveBudget caps how many times one stream may be rebalanced over its
	// lifetime (0 = 2); Cooldown is the minimum time between two moves of
	// the same stream (0 = none). Both stop oscillation that the hysteresis
	// band alone cannot: a stream whose rate dominates the spread could
	// otherwise bounce between two chains on alternating ticks.
	MoveBudget int
	Cooldown   sim.Time
}

func (rc *RebalanceConfig) validate() error {
	if rc.Every <= 0 {
		return nil
	}
	if rc.HighWater != nil && rc.HighWater.Sign() <= 0 {
		return fmt.Errorf("cluster: rebalance high water must be positive")
	}
	if rc.LowWater != nil && rc.HighWater != nil && rc.LowWater.Cmp(rc.HighWater) > 0 {
		return fmt.Errorf("cluster: rebalance low water above high water")
	}
	if rc.Stop != 0 && rc.Stop < rc.Start {
		return fmt.Errorf("cluster: rebalance stop before start")
	}
	return nil
}

func (rc *RebalanceConfig) highWater() *big.Rat {
	if rc.HighWater != nil {
		return rc.HighWater
	}
	return big.NewRat(1, 4)
}

func (rc *RebalanceConfig) lowWater() *big.Rat {
	if rc.LowWater != nil {
		return rc.LowWater
	}
	return new(big.Rat).Mul(rc.highWater(), big.NewRat(1, 2))
}

func (rc *RebalanceConfig) maxMoves() int {
	if rc.MaxMovesPerTick <= 0 {
		return 1
	}
	return rc.MaxMovesPerTick
}

func (rc *RebalanceConfig) moveBudget() int {
	if rc.MoveBudget <= 0 {
		return 2
	}
	return rc.MoveBudget
}

// ChainTelemetry is one chain's slice of a FleetStats snapshot.
type ChainTelemetry struct {
	Name  string
	State string
	// Streams counts the live registry streams the chain owns.
	Streams int
	// Util is the admission model's exact utilisation Σ μs·ρ (nil for
	// non-serving chains).
	Util *big.Rat
	// BufferWords is the words currently buffered across the owned streams'
	// input and output C-FIFOs (pushed − popped); BufferPeak sums their
	// high-water occupancies — the buffer-memory half of the load picture.
	BufferWords uint64
	BufferPeak  int
	// Pending counts uncommitted transitions (arrivals, migrations,
	// removals) targeting this chain.
	Pending int
}

// FleetStats is one tick's typed telemetry snapshot over the whole fleet.
type FleetStats struct {
	At     sim.Time
	Chains []ChainTelemetry
	// Parked counts shed streams awaiting readmission; Placing counts
	// streams between chains (unplaced or mid-move).
	Parked, Placing int
	// Spread is max − min utilisation over the serving chains (zero with
	// fewer than two serving chains).
	Spread *big.Rat
}

// Stats snapshots the fleet telemetry now (the rebalancer records one per
// tick; campaigns may sample it on their own schedule too).
func (c *Controller) Stats() FleetStats {
	fs := FleetStats{At: c.k.Now(), Spread: new(big.Rat)}
	var lo, hi *big.Rat
	for _, ci := range c.chains {
		ct := ChainTelemetry{Name: ci.name, State: ci.state.String()}
		if ci.state == chainServing && ci.ctrl != nil {
			ct.Util = ci.ctrl.Utilization()
			if lo == nil || ct.Util.Cmp(lo) < 0 {
				lo = ct.Util
			}
			if hi == nil || ct.Util.Cmp(hi) > 0 {
				hi = ct.Util
			}
		}
		for _, name := range c.order {
			si := c.streams[name]
			if si.inflight && si.pendingOn == ci.pos {
				ct.Pending++
			}
			if si.departed || si.shed || si.chain != ci.pos {
				continue
			}
			ct.Streams++
			if si.st == nil || si.st.In == nil {
				continue
			}
			for _, f := range []*cfifo.FIFO{si.st.In, si.st.Out} {
				pushed, popped, peak := f.BufferStats()
				ct.BufferWords += pushed - popped
				ct.BufferPeak += peak
			}
		}
		fs.Chains = append(fs.Chains, ct)
	}
	for _, name := range c.order {
		si := c.streams[name]
		switch {
		case si.departed || si.rejected:
		case si.shed:
			fs.Parked++
		case si.chain < 0:
			fs.Placing++
		}
	}
	if lo != nil && hi != nil {
		fs.Spread.Sub(hi, lo)
	}
	return fs
}

// FleetLog returns the per-tick telemetry history (append-only).
func (c *Controller) FleetLog() []FleetStats { return c.fleet }

// moveOp is one in-flight rebalance move.
type moveOp struct {
	si       *streamInfo
	from, to *chainInfo
	started  sim.Time
	// bound is the composed move bound accumulated so far (cycles).
	bound uint64
}

func (c *Controller) scheduleRebalance() {
	rc := &c.cfg.Rebalance
	if rc.Every <= 0 {
		return
	}
	first := rc.Start
	if first == 0 {
		first = rc.Every
	}
	if rc.Stop != 0 && first > rc.Stop {
		return
	}
	c.k.ScheduleAt(first, c.rebalanceTick)
}

func (c *Controller) rebalanceTick() {
	rc := &c.cfg.Rebalance
	if next := c.k.Now() + rc.Every; rc.Stop == 0 || next <= rc.Stop {
		c.k.ScheduleAt(next, c.rebalanceTick)
	}
	stats := c.Stats()
	c.fleet = append(c.fleet, stats)
	if c.moving {
		return // a previous tick's move sequence is still in flight
	}
	for _, ci := range c.chains {
		if ci.state == chainServing && ci.ctrl != nil && ci.ctrl.Busy() {
			// A transition is draining somewhere: its outcome changes the
			// very models a plan would rank, so skip the whole tick rather
			// than race it. The next tick re-evaluates.
			return
		}
	}
	if stats.Spread.Cmp(rc.highWater()) <= 0 {
		return
	}

	// Index-parallel (serving chains ↔ models) in configuration order, so
	// solve.PlanRebalance's chain indices map back deterministically.
	var serving []*chainInfo
	var models []*core.System
	for _, ci := range c.chains {
		if ci.state == chainServing && ci.ctrl != nil {
			serving = append(serving, ci)
			models = append(models, ci.ctrl.Model())
		}
	}
	if len(serving) < 2 {
		return
	}
	var cands []solve.MoveCandidate
	for local, ci := range serving {
		model := models[local]
		for i := range model.Streams {
			si := c.streams[model.Streams[i].Name]
			if si == nil || si.resident || si.departed || si.shed ||
				si.inflight || si.moving || si.deferDepart || si.chain != ci.pos {
				continue
			}
			if si.moves >= rc.moveBudget() {
				continue
			}
			if rc.Cooldown > 0 && si.movedAt > 0 && c.k.Now()-si.movedAt < rc.Cooldown {
				continue
			}
			residue := 0
			if si.st != nil && si.st.GW != nil {
				residue = si.st.GW.ReplayResidue()
			}
			cands = append(cands, solve.MoveCandidate{
				Name: si.name, Chain: local,
				Rate:    new(big.Rat).Set(model.Streams[i].Rate),
				Residue: residue,
			})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].Name < cands[b].Name })
	moves := solve.PlanRebalance(models, cands, rc.maxMoves(), rc.lowWater())
	if len(moves) == 0 {
		return
	}
	c.event(EvRebalance, "", "", fmt.Sprintf("spread=%s over high water %s; %d move(s) planned",
		stats.Spread.RatString(), rc.highWater().RatString(), len(moves)))
	for _, mv := range moves {
		c.moveQueue = append(c.moveQueue, &moveOp{
			si: c.streams[mv.Name], from: serving[mv.From], to: serving[mv.To],
		})
	}
	c.nextMove()
}

func (c *Controller) nextMove() {
	for len(c.moveQueue) > 0 {
		op := c.moveQueue[0]
		c.moveQueue = c.moveQueue[1:]
		if c.startMove(op) {
			return
		}
	}
	c.moving = false
}

// startMove begins one move sequence; false means the move was skipped
// (stale plan) and the caller should try the next one.
func (c *Controller) startMove(op *moveOp) bool {
	si := op.si
	if si == nil || si.departed || si.shed || si.inflight || si.moving ||
		si.deferDepart || si.chain != op.from.pos ||
		op.from.state != chainServing || op.from.ctrl == nil ||
		op.to.state != chainServing || op.to.ctrl == nil {
		return false
	}
	op.started = c.k.Now()
	// The settle clamp uses the source model max τ̂s(K) captured BEFORE the
	// removal commits: the departing victim's own block attempt is part of
	// what the settle must cover.
	maxTau := c.maxTauOf(op.from.ctrl.Model())
	si.moving = true
	si.inflight = true
	si.pendingOn = op.from.pos
	c.moving = true
	op.from.ctrl.RemoveStream(si.name, func(v admission.Verdict) {
		if !v.Accepted {
			// Busy, superseded or refused: abandon this tick's whole plan —
			// the models it ranked are stale — and let the next tick
			// re-plan from fresh telemetry. Nothing moved, nothing to park.
			si.moving = false
			si.inflight = false
			c.event(EvRebalance, op.from.name, si.name,
				fmt.Sprintf("move aborted: %s: %s", v.Reason, v.Detail))
			c.moveQueue = nil
			c.moving = false
			return
		}
		op.bound += v.BoundCycles
		c.releaseAndSettle(op, maxTau)
	})
	return true
}

// releaseAndSettle runs at the removal commit: the victim's slot is drained
// and suspended on the source pair. Export it, gate its producer, and wait
// out the interconnect settle before offering it to the target.
func (c *Controller) releaseAndSettle(op *moveOp, maxTau uint64) {
	si := op.si
	if _, ok := op.from.ctrl.ForgetParked(si.name); !ok {
		// Cannot happen (RemoveStream just parked it); fail loudly if it does.
		si.moving = false
		si.inflight = false
		c.event(EvRebalance, op.from.name, si.name, "move aborted: removed stream not parked")
		c.moveQueue = nil
		c.moving = false
		return
	}
	st, ex, err := c.ms.ReleaseStream(op.from.idx, si.name)
	if err != nil {
		si.moving = false
		si.inflight = false
		c.event(EvRebalance, op.from.name, si.name, fmt.Sprintf("move aborted: release: %v", err))
		c.moveQueue = nil
		c.moving = false
		return
	}
	st.In.BeginRepoint()
	si.chain = -1
	si.pendingOn = -1 // in transit: no chain owns the pending transition
	si.st = st
	si.export = ex
	si.hasExport = true
	settle := c.cfg.Recovery.FlushDelay
	if settle == 0 {
		settle = c.cfg.DrainTimeout
	}
	if maxTau > 0 && settle > sim.Time(maxTau) {
		settle = sim.Time(maxTau)
	}
	if settle == 0 {
		settle = 1
	}
	op.bound += uint64(settle)
	c.k.Schedule(settle, func() { c.moveAdmit(op, 0) })
}

// moveAdmit offers the released stream to the planned target first, then any
// other serving chain coldest-first — the same fallback ladder evacuation
// walks, with every backoff delay charged to the composed bound. A stream no
// target admits parks (shed) with its export retained.
func (c *Controller) moveAdmit(op *moveOp, attempt int) {
	si := op.si
	if si.departed {
		c.finishMoveAborted(op, "departed in transit")
		return
	}
	targets := []*chainInfo{}
	if op.to.state == chainServing && op.to.ctrl != nil {
		targets = append(targets, op.to)
	}
	for _, tc := range c.rankServing() {
		if tc != op.to {
			targets = append(targets, tc)
		}
	}
	busy := false
	for _, tc := range targets {
		if c.tryMoveAdmit(op, tc, attempt, &busy) {
			return
		}
	}
	if busy {
		if d, ok := c.cfg.Retry.Delay(attempt); ok {
			op.bound += uint64(d)
			c.event(EvRetry, "", si.name, fmt.Sprintf("rebalance admit attempt %d backs off %d cycles", attempt+1, d))
			c.k.Schedule(d, func() { c.moveAdmit(op, attempt+1) })
			return
		}
	}
	// No target admits the victim: park it exactly like a shed stream so the
	// readmission/heal machinery gets it back onto the fleet.
	si.moving = false
	si.inflight = false
	si.shed = true
	si.st.StopSource()
	c.ladder = append(c.ladder, LadderStep{
		At: c.k.Now(), Stream: si.name, Rung: "shed",
		From: op.from.name, To: "",
		Measured: uint64(c.k.Now() - op.started), Bound: op.bound, Replay: len(op.si.export.Replay),
	})
	c.event(EvShed, "", si.name, fmt.Sprintf("rebalance found no target; parked (measured=%d bound=%d)",
		uint64(c.k.Now()-op.started), op.bound))
	c.scheduleReadmit(si, 0)
	c.nextMove()
}

func (c *Controller) tryMoveAdmit(op *moveOp, tc *chainInfo, attempt int, busy *bool) bool {
	si := op.si
	async := false
	rejected := false
	tcPos := tc.pos
	tc.ctrl.AdmitMigrated(admission.MigrateRequest{
		Name:        si.name,
		Rate:        big.NewRat(1, si.period),
		Reconfig:    uint64(c.cfg.Reconfig),
		Decimation:  1,
		MinBlock:    minBlockOf(si.export, 1),
		InCapacity:  si.st.In.Capacity(),
		OutCapacity: si.st.Out.Capacity(),
		Import:      func() (int, error) { return c.ms.AdoptStream(tc.idx, si.st, si.export) },
	}, func(v admission.Verdict) {
		if !v.Accepted {
			if !async {
				rejected = true
				if v.Reason == admission.ReasonBusy {
					*busy = true
				}
				return
			}
			// Superseded mid-drain: the export is still ours; retry the
			// admit leg under the charged backoff.
			si.inflight = false
			if d, ok := c.cfg.Retry.Delay(attempt); ok {
				op.bound += uint64(d)
				c.event(EvRetry, "", si.name, fmt.Sprintf("rebalance admit superseded on %s; backs off %d cycles", tc.name, d))
				c.k.Schedule(d, func() { c.moveAdmit(op, attempt+1) })
				return
			}
			c.moveAdmit(op, attempt+1) // budget gone: falls through to shed
			return
		}
		si.moving = false
		si.inflight = false
		si.shed = false
		si.hasExport = false
		si.chain = tcPos
		si.moves++
		si.movedAt = c.k.Now()
		c.ms.StartSource(si.st)
		op.bound += v.BoundCycles
		measured := uint64(c.k.Now() - op.started)
		c.ladder = append(c.ladder, LadderStep{
			At: c.k.Now(), Stream: si.name, Rung: "rebalance",
			From: op.from.name, To: tc.name,
			Measured: measured, Bound: op.bound, Replay: len(op.si.export.Replay),
		})
		c.event(EvRebalanced, tc.name, si.name, fmt.Sprintf("from %s eta=%d measured=%d bound=%d replay=%d",
			op.from.name, lastBlock(v), measured, op.bound, len(op.si.export.Replay)))
		if si.deferDepart {
			si.deferDepart = false
			c.depart(si, 0)
		}
		c.nextMove()
	})
	if rejected {
		return false
	}
	async = true
	si.inflight = true
	si.pendingOn = tcPos
	return true
}

func (c *Controller) finishMoveAborted(op *moveOp, why string) {
	op.si.moving = false
	op.si.inflight = false
	c.event(EvRebalance, "", op.si.name, "move ended: "+why)
	c.nextMove()
}

// maxTauOf returns the model's max τ̂s(K) over its streams (the settle clamp
// shared by evacuation and rebalancing).
func (c *Controller) maxTauOf(model *core.System) uint64 {
	var maxTau uint64
	for i := range model.Streams {
		if t, err := model.TauHatCheckpointed(i, c.cfg.Recovery.Checkpoint, uint64(c.cfg.Recovery.CheckpointCost)); err == nil && t > maxTau {
			maxTau = t
		}
	}
	return maxTau
}
