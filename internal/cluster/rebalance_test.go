package cluster

import (
	"math/big"
	"testing"

	"accelshare/internal/conformance"
	"accelshare/internal/fault"
	"accelshare/internal/sim"
)

// rebalanceConfig arms the test fixture's rebalancer: tick every 5k cycles
// in [start, stop], trigger above a 1/8 utilisation spread. With c0 = 15 a
// period-75 stream adds exactly 1/5 and a period-150 stream 1/10, so the
// spreads below are exact rationals the tests can pin.
func rebalanceConfig(start, stop sim.Time) RebalanceConfig {
	return RebalanceConfig{
		Every: 5_000, Start: start, Stop: stop,
		HighWater: big.NewRat(1, 8),
	}
}

// TestRebalanceMovesHotStream: after a departure skews the fleet (c0 at
// 1/2, c1 at 1/5), the first tick past the high water plans exactly one
// move; the victim lands live on the cold chain with contiguous outputs, a
// "rebalance" ladder step within its composed bound, and the per-tick
// telemetry pins the spread before (3/10) and after (1/10).
func TestRebalanceMovesHotStream(t *testing.T) {
	cfg := testConfig([]ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 4},
		{Name: "c1", AccelCost: 1, ReserveSlots: 4},
	})
	cfg.Rebalance = rebalanceConfig(40_000, 60_000)
	c := mustCluster(t, cfg)
	// Placement alternates on equal chains: s0 -> c0, s1 -> c1, s2 -> c0.
	submitAt(c, 1_000, StreamRequest{Name: "s0", Period: 75})
	submitAt(c, 5_000, StreamRequest{Name: "s1", Period: 75})
	submitAt(c, 9_000, StreamRequest{Name: "s2", Period: 150})
	departAt(c, 25_000, "s1")
	c.Run(160_000)

	steps := ladderOf(c, "rebalance")
	if len(steps) != 1 {
		t.Fatalf("rebalance steps = %d, want 1:\n%s", len(steps), renderEvents(c))
	}
	s := steps[0]
	if s.Stream != "s0" && s.Stream != "s2" {
		t.Fatalf("moved %q, want a non-resident victim (s0 or s2)", s.Stream)
	}
	if s.From != "c0" || s.To != "c1" {
		t.Errorf("move %s -> %s, want c0 -> c1", s.From, s.To)
	}
	if s.Measured > s.Bound {
		t.Errorf("rebalance measured %d > composed bound %d", s.Measured, s.Bound)
	}
	if s.Replay > int(c.cfg.Recovery.Checkpoint) {
		t.Errorf("replay residue %d > K=%d", s.Replay, c.cfg.Recovery.Checkpoint)
	}
	if n := len(eventsOf(c, EvRebalanced)); n != 1 {
		t.Errorf("rebalanced events = %d, want 1", n)
	}
	ss := statusOf(c, s.Stream)
	if ss.State != "live" || ss.Chain != "c1" {
		t.Errorf("%s: state=%s chain=%s, want live on c1", s.Stream, ss.State, ss.Chain)
	}
	if !ss.ContiguousOutputs {
		t.Errorf("%s: outputs not contiguous across the move", s.Stream)
	}
	other := "s2"
	if s.Stream == "s2" {
		other = "s0"
	}
	if os := statusOf(c, other); os.State != "live" || os.Chain != "c0" {
		t.Errorf("%s: state=%s chain=%s, want live on c0 (untouched)", other, os.State, os.Chain)
	}

	// Telemetry: one snapshot per tick regardless of activity (40k..60k
	// inclusive = 5), spread 3/10 at the trigger, 1/10 once the move lands.
	fleet := c.FleetLog()
	if len(fleet) != 5 {
		t.Fatalf("fleet snapshots = %d, want 5", len(fleet))
	}
	if got := fleet[0].Spread; got.Cmp(big.NewRat(3, 10)) != 0 {
		t.Errorf("spread at first tick = %s, want 3/10", got.RatString())
	}
	if got := fleet[len(fleet)-1].Spread; got.Cmp(big.NewRat(1, 10)) != 0 {
		t.Errorf("spread at last tick = %s, want 1/10", got.RatString())
	}
	checkConformance(t, c, 100_000)
}

// TestRebalanceIdleBelowHighWater: a mildly uneven fleet (spread 1/10,
// default high water 1/4) ticks telemetry but never moves anything — the
// hysteresis trigger, not the mere existence of a spread, starts a move.
func TestRebalanceIdleBelowHighWater(t *testing.T) {
	cfg := testConfig([]ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 4},
		{Name: "c1", AccelCost: 1, ReserveSlots: 4},
	})
	cfg.Rebalance = RebalanceConfig{Every: 5_000, Start: 20_000, Stop: 50_000}
	c := mustCluster(t, cfg)
	submitAt(c, 1_000, StreamRequest{Name: "s0", Period: 75})
	submitAt(c, 5_000, StreamRequest{Name: "s1", Period: 75})
	submitAt(c, 9_000, StreamRequest{Name: "s2", Period: 150})
	c.Run(80_000)

	if n := len(eventsOf(c, EvRebalance)) + len(eventsOf(c, EvRebalanced)); n != 0 {
		t.Fatalf("rebalance events = %d, want 0 below the high water:\n%s", n, renderEvents(c))
	}
	fleet := c.FleetLog()
	if len(fleet) != 7 { // 20k..50k inclusive
		t.Fatalf("fleet snapshots = %d, want 7", len(fleet))
	}
	fs := fleet[0]
	if fs.Spread.Cmp(big.NewRat(1, 10)) != 0 {
		t.Errorf("spread = %s, want 1/10", fs.Spread.RatString())
	}
	if len(fs.Chains) != 2 || fs.Chains[0].Name != "c0" || fs.Chains[1].Name != "c1" {
		t.Fatalf("telemetry chains = %+v, want c0,c1 in config order", fs.Chains)
	}
	if fs.Chains[0].Streams != 3 || fs.Chains[1].Streams != 2 {
		t.Errorf("stream counts = %d,%d, want 3,2 (residents included)",
			fs.Chains[0].Streams, fs.Chains[1].Streams)
	}
	if u := fs.Chains[0].Util; u == nil || u.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("c0 util = %v, want 1/2", u)
	}
	if u := fs.Chains[1].Util; u == nil || u.Cmp(big.NewRat(2, 5)) != 0 {
		t.Errorf("c1 util = %v, want 2/5", u)
	}
	if fs.Parked != 0 || fs.Placing != 0 {
		t.Errorf("parked=%d placing=%d, want 0,0", fs.Parked, fs.Placing)
	}
}

// TestRebalanceMoveBudget: a stream that has spent its per-lifetime move
// budget is no longer a candidate, so a second imbalance that only it could
// fix goes unserved — the budget is what stops a dominant stream from
// bouncing between chains for the rest of the campaign.
func TestRebalanceMoveBudget(t *testing.T) {
	cfg := testConfig([]ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 4},
		{Name: "c1", AccelCost: 1, ReserveSlots: 4},
	})
	cfg.Rebalance = rebalanceConfig(40_000, 120_000)
	cfg.Rebalance.MoveBudget = 1
	c := mustCluster(t, cfg)
	submitAt(c, 1_000, StreamRequest{Name: "s0", Period: 75})
	submitAt(c, 5_000, StreamRequest{Name: "s1", Period: 75})
	submitAt(c, 9_000, StreamRequest{Name: "s2", Period: 75})
	// First imbalance: c0 at 3/5 vs c1 at 1/5 after s1 departs; one move
	// balances the fleet exactly (2/5 each).
	departAt(c, 25_000, "s1")
	// Second imbalance at 70k: depart whichever non-resident is still on c0
	// (the victim of the first move is residue-dependent), leaving c0 at 1/5
	// vs c1 at 2/5. The only candidate on the hot chain is the stream that
	// already moved — budget-exhausted, so the spread must persist.
	c.System().K.ScheduleAt(70_000, func() {
		for _, ss := range c.StreamStatuses() {
			if ss.Chain == "c0" && ss.State == "live" && ss.Name != "r-c0" {
				c.Depart(ss.Name)
			}
		}
	})
	c.Run(200_000)

	if n := len(ladderOf(c, "rebalance")); n != 1 {
		t.Fatalf("rebalance steps = %d, want 1 (budget caps the second move):\n%s", n, renderEvents(c))
	}
	fleet := c.FleetLog()
	if len(fleet) == 0 {
		t.Fatal("no fleet snapshots")
	}
	if got := fleet[len(fleet)-1].Spread; got.Cmp(big.NewRat(1, 5)) != 0 {
		t.Errorf("final spread = %s, want the persistent 1/5 imbalance", got.RatString())
	}
	checkConformance(t, c, 140_000)
}

// TestRankServingNameTieBreak: regression for the serving-chain ranking —
// equal-utilisation chains must rank by name, independent of configuration
// order, so placement (and the rebalancer's fallback ladder) stays
// deterministic across config reorderings.
func TestRankServingNameTieBreak(t *testing.T) {
	c := mustCluster(t, testConfig([]ChainSpec{
		{Name: "cb", AccelCost: 1, ReserveSlots: 2},
		{Name: "ca", AccelCost: 1, ReserveSlots: 2},
	}))
	submitAt(c, 12_000, StreamRequest{Name: "s0", Period: 150})
	c.Run(30_000)

	ranked := c.rankServing()
	if len(ranked) != 2 {
		t.Fatalf("serving chains = %d, want 2", len(ranked))
	}
	// After s0 lands the utilisations differ; the tie-break applies to the
	// residents-only prefix of the run, which routed s0 to "ca".
	if ss := statusOf(c, "s0"); ss.State != "live" || ss.Chain != "ca" {
		t.Errorf("s0: state=%s chain=%s, want live on ca (name tie-break)", ss.State, ss.Chain)
	}
	if ranked[0].name != "cb" { // ca now carries s0: cb is colder
		t.Errorf("ranked[0] = %s, want cb (ca carries s0)", ranked[0].name)
	}
}

// TestRebalanceThenFailoverComposedReplay: a stream migrated twice — first
// by the rebalancer, then by a chain failover — keeps every bound composed:
// each ladder step stays within its own envelope, the replay residue stays
// ≤ K per move, outputs remain contiguous across BOTH migrations, and the
// post-transient trace satisfies the measured replay bound
// (Replayed ≤ Retries·K).
func TestRebalanceThenFailoverComposedReplay(t *testing.T) {
	wedge := &fault.Plan{Faults: []fault.Fault{{Kind: fault.WedgeLink, Site: 0, At: 60_000}}}
	cfg := testConfig([]ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 4},
		{Name: "c1", AccelCost: 1, ReserveSlots: 4, Faults: wedge},
		{Name: "sp", AccelCost: 1, ReserveSlots: 4, Spare: true},
	})
	// Stop ticking before the wedge so the failover owns the fleet's full
	// attention (and the conformance cut sees no rebalance transient).
	cfg.Rebalance = rebalanceConfig(40_000, 55_000)
	c := mustCluster(t, cfg)
	submitAt(c, 1_000, StreamRequest{Name: "s0", Period: 75})
	submitAt(c, 5_000, StreamRequest{Name: "s1", Period: 75})
	submitAt(c, 9_000, StreamRequest{Name: "s2", Period: 150})
	departAt(c, 25_000, "s1")
	c.Run(180_000)

	k := int(c.cfg.Recovery.Checkpoint)
	reb := ladderOf(c, "rebalance")
	if len(reb) != 1 {
		t.Fatalf("rebalance steps = %d, want 1:\n%s", len(reb), renderEvents(c))
	}
	moved := reb[0].Stream
	if reb[0].Measured > reb[0].Bound {
		t.Errorf("rebalance measured %d > bound %d", reb[0].Measured, reb[0].Bound)
	}
	if reb[0].Replay > k {
		t.Errorf("rebalance replay %d > K=%d", reb[0].Replay, k)
	}

	fo := ladderOf(c, "failover")
	if len(fo) != 2 { // r-c1 + the rebalanced stream
		t.Fatalf("failover steps = %d, want 2:\n%s", len(fo), renderEvents(c))
	}
	sawMoved := false
	for _, s := range fo {
		if s.From != "c1" || s.To != "sp" {
			t.Errorf("%s: failover %s -> %s, want c1 -> sp", s.Stream, s.From, s.To)
		}
		if s.Measured > s.Bound {
			t.Errorf("%s: failover measured %d > bound %d", s.Stream, s.Measured, s.Bound)
		}
		// The failover record's replay is the total over both migrated slots.
		if s.Replay > 2*k {
			t.Errorf("%s: failover replay %d > 2K=%d", s.Stream, s.Replay, 2*k)
		}
		sawMoved = sawMoved || s.Stream == moved
	}
	if !sawMoved {
		t.Fatalf("stream %s (rebalanced to c1) missing from the failover steps %v", moved, fo)
	}

	ss := statusOf(c, moved)
	if ss.State != "live" || ss.Chain != "sp" {
		t.Errorf("%s: state=%s chain=%s, want live on sp after both moves", moved, ss.State, ss.Chain)
	}
	if !ss.ContiguousOutputs {
		t.Errorf("%s: outputs not contiguous across rebalance + failover", moved)
	}

	res, err := c.Conformance(conformance.Options{
		After: 120_000, MinBlocks: 3, FilterQueued: true, ReplayBound: int64(k),
	})
	if err != nil {
		t.Fatalf("conformance: %v", err)
	}
	checked := 0
	for _, cc := range res {
		checked += cc.Result.Checked
		for _, v := range cc.Result.Violations {
			t.Errorf("chain %s: %s/%s: %s", cc.Chain, v.Stream, v.Kind, v.Detail)
		}
	}
	if checked == 0 {
		t.Fatal("conformance checked zero blocks")
	}
}
