package cluster

// Fleet-scale benchmarks for the BENCH_*.json trajectory (ROADMAP
// "simulator hot-path speed"). Placement covers Submit → per-chain
// Algorithm 1 re-solve → staged transition on a live platform; evacuation
// covers the full rung-2 path: doctor verdict, freeze, export, per-target
// re-admission with checkpoint-carrying import, resume. Each iteration
// simulates the whole scenario, so ns/op is dominated by the DES hot path
// these benches exist to make measurable.

import (
	"fmt"
	"math/big"
	"testing"

	"accelshare/internal/fault"
	"accelshare/internal/sim"
)

// benchFleet is the placement benchmark fixture: four cost-1 chains, each
// with capacity for four 1/75 streams.
func benchFleet() []ChainSpec {
	return []ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 6},
		{Name: "c1", AccelCost: 1, ReserveSlots: 6},
		{Name: "c2", AccelCost: 1, ReserveSlots: 6},
		{Name: "c3", AccelCost: 1, ReserveSlots: 6},
	}
}

// BenchmarkClusterPlacement places eight arriving streams across the fleet
// (two rounds of utilization-ranked placement on every chain) and runs the
// platform long enough for each admission transition to settle.
func BenchmarkClusterPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := New(testConfig(benchFleet()))
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 8; s++ {
			submitAt(c, sim.Time(1000+500*s), StreamRequest{
				Name: fmt.Sprintf("s%d", s), Period: 150, Priority: s % 3,
			})
		}
		c.Run(20_000)
		placed := 0
		for _, ss := range c.StreamStatuses() {
			if ss.State == "live" {
				placed++
			}
		}
		if placed != 8+len(benchFleet()) {
			b.Fatalf("placed %d streams, want %d", placed, 8+len(benchFleet()))
		}
	}
}

// BenchmarkClusterEvacuation wedges a loaded chain with no standby: the
// controller must freeze it, export every stream, and re-admit each onto a
// survivor with its checkpoint (rung 2 of the degradation ladder).
func BenchmarkClusterEvacuation(b *testing.B) {
	wedge := &fault.Plan{Faults: []fault.Fault{{Kind: fault.WedgeLink, Site: 0, At: 10_000}}}
	chains := []ChainSpec{
		{Name: "c0", AccelCost: 1, ReserveSlots: 6, Faults: wedge},
		{Name: "c1", AccelCost: 1, ReserveSlots: 6},
		{Name: "c2", AccelCost: 1, ReserveSlots: 6},
	}
	for i := 0; i < b.N; i++ {
		c, err := New(testConfig(chains))
		if err != nil {
			b.Fatal(err)
		}
		submitAt(c, 1_000, StreamRequest{Name: "v0", Period: 300, Priority: 1})
		c.Run(40_000)
		if got := len(ladderOf(c, "evacuate")); got == 0 {
			b.Fatal("no evacuation steps recorded")
		}
		for _, s := range c.LadderSteps() {
			if s.Measured > s.Bound {
				b.Fatalf("ladder step %s/%s over bound: %d > %d", s.Rung, s.Stream, s.Measured, s.Bound)
			}
		}
	}
}

// benchCells measures the multi-cell fleet wall clock; the parallel/serial
// pair quantifies the speedup from running independent cells on goroutines
// (tentpole item "deterministic parallel simulation of independent chains").
func benchCells(b *testing.B, parallel bool) {
	for i := 0; i < b.N; i++ {
		cs, err := NewCells(2_000, cellSpecs(4))
		if err != nil {
			b.Fatal(err)
		}
		cs.SetParallel(parallel)
		cs.Feed(cellsProfile.Ops())
		cs.Run(120_000)
		if len(cs.Dispatches) == 0 {
			b.Fatal("no dispatches")
		}
	}
}

func BenchmarkCellsSequential(b *testing.B) { benchCells(b, false) }

func BenchmarkCellsParallel(b *testing.B) { benchCells(b, true) }

// BenchmarkRebalance measures one full hot-migration cycle: the periodic
// tick snapshots fleet telemetry, the spread trips the high-water mark, and
// the 4-step move (remove, release, settle, admit) relocates the victim —
// each iteration simulates the whole scenario including the departure that
// unbalances the fleet.
func BenchmarkRebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig([]ChainSpec{
			{Name: "c0", AccelCost: 1, ReserveSlots: 4},
			{Name: "c1", AccelCost: 1, ReserveSlots: 4},
		})
		cfg.Rebalance = RebalanceConfig{
			Every: 5_000, Start: 30_000, Stop: 45_000,
			HighWater: big.NewRat(1, 8),
		}
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		submitAt(c, 1_000, StreamRequest{Name: "s0", Period: 75})
		submitAt(c, 5_000, StreamRequest{Name: "s1", Period: 75})
		submitAt(c, 9_000, StreamRequest{Name: "s2", Period: 150})
		departAt(c, 25_000, "s1")
		c.Run(50_000)
		steps := ladderOf(c, "rebalance")
		if len(steps) != 1 {
			b.Fatalf("%d rebalance steps, want 1", len(steps))
		}
		if steps[0].Measured > steps[0].Bound {
			b.Fatalf("move over bound: %d > %d", steps[0].Measured, steps[0].Bound)
		}
	}
}

// BenchmarkServeTraffic is the sustained-serving hot path in miniature: an
// open-loop arrival/departure process with a diurnal ramp over a
// slot-reclaiming fleet, the rebalancer ticking throughout. It is the
// cluster-layer cost model for the accelshare serve campaign.
func BenchmarkServeTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(benchFleet())
		cfg.ReclaimSlots = true
		cfg.Rebalance = RebalanceConfig{
			Every: 5_000, Start: 10_000, Stop: 45_000,
			HighWater: big.NewRat(1, 10), MaxMovesPerTick: 2,
		}
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ops := Profile{
			Seed: 24601, Start: 1_000, End: 30_000,
			MeanSpacing: 2_000, MinLifetime: 8_000, MeanLifetime: 15_000,
			Periods: []int64{300, 600}, Priorities: []int{1, 5},
			DiurnalPeriod: 30_000, DiurnalAmplitude: 50,
		}.Ops()
		Schedule(c, ops)
		c.Run(50_000)
		if got := len(eventsOf(c, EvArrive)); got < 10 {
			b.Fatalf("%d admissions, want >= 10", got)
		}
	}
}
