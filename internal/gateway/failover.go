package gateway

// Chain failover: when a whole accelerator chain wedges (stuck tile, severed
// ring segment), recovery-by-retry on the same pair is futile. The paper's
// Fig. 1 platform carries a second entry-/exit-gateway pair on the same ring;
// this file is the gateway half of migrating every stream to it. The
// FailoverController (internal/mpsoc) drives the sequence:
//
//	FreezeForFailover  — retire the sick pair mid-flight, abort the active
//	                     block attempt (epoch bump, as a flush would)
//	   ... settle ...  — wait out the worst-case interconnect transit so
//	                     every in-flight word and credit has landed
//	ExportStreams      — clear the dead chain and deep-copy each stream's
//	                     engine state + in-flight block residue out
//	ImportStream       — re-register each stream on the (paused) standby
//	                     pair, seeding the replay of the aborted block
//
// The freeze is terminal: a failed pair's entry and exit state machines are
// permanent no-ops, and its tiles are never reprogrammed again.

import (
	"fmt"

	"accelshare/internal/sim"
)

// StreamExport is one stream's migratable state, deep-copied so nothing
// aliases the failed pair once the standby starts mutating. Engines is the
// per-tile engine state the standby restores before the stream's next block
// (nil when the stream never ran on the failed chain); Replay and Committed
// carry the aborted in-flight block: the input words its attempt consumed
// and the output words the consumer had already received. ReplayStart is
// the absolute input position the replay window starts at — 0 without
// checkpointing (Engines is then the block-start snapshot and the whole
// consumed prefix is in Replay), the last committed checkpoint boundary
// with it (Engines is the checkpoint snapshot, Replay holds only the ≤ K
// words consumed since, and the standby resumes mid-block).
type StreamExport struct {
	Stream      *Stream
	Engines     [][]uint64
	Replay      []sim.Word
	Committed   int64
	ReplayStart int64
}

// Failed reports whether the pair was retired by FreezeForFailover.
func (p *Pair) Failed() bool { return p.failed }

// SetStallObserver installs fn to observe watchdog stalls in addition to
// Config.OnStall — the failover controller's tap, parallel to the admission
// controller's quarantine observer. fn runs before the recovery decision, so
// a verdict that triggers FreezeForFailover pre-empts the flush/retry path.
func (p *Pair) SetStallObserver(fn func(stream int)) { p.stallObs = fn }

// FreezeForFailover retires the pair: both state machines become no-ops and
// the in-flight block attempt (if any) is aborted exactly as a flush would
// abort it — epoch bump cancelling every scheduled completion — except that
// the consumed-word snapshot is kept for replay on the standby instead of
// being retried here. An in-flight block can only be migrated when recovery
// is enabled, because only the recovery path records the replay snapshot.
func (p *Pair) FreezeForFailover() error {
	if p.failed {
		return fmt.Errorf("gateway %s: already failed over", p.cfg.Name)
	}
	if p.state != stIdle && !p.cfg.Recovery.Enabled {
		return fmt.Errorf("gateway %s: cannot freeze mid-block without recovery (no replay snapshot)", p.cfg.Name)
	}
	p.failed = true
	if p.state != stIdle {
		p.abortedStream = p.active
	}
	p.blockEpoch++ // cancel in-flight DMA/exit/watchdog/idle-retry events
	p.dmaBusy = false
	p.holding = false
	p.exitBusy = false
	p.exitHolding = false
	p.pauseCb = nil // a pending admission pause dies with the pair
	if n := int64(len(p.stage)); n > 0 {
		// Value-exact staged words never reached the consumer: roll the
		// watermark back so the export's Committed is exactly what the
		// consumer holds and the standby regenerates the rest.
		p.exitCount -= n
		p.stage = nil
	}
	return nil
}

// ExportStreams clears the dead chain (tile aborts, NI queues, link credit
// state — the same scrub a flush performs) and returns every stream's
// migratable state. The caller must have waited out the interconnect settle
// delay after FreezeForFailover so no word is still in flight toward this
// pair's nodes. The pair's stream table is emptied: the streams now belong
// to whoever imports them.
//
//accellint:deepcopy
func (p *Pair) ExportStreams() ([]StreamExport, error) {
	if !p.failed {
		return nil, fmt.Errorf("gateway %s: ExportStreams requires a frozen pair", p.cfg.Name)
	}
	for _, t := range p.tiles {
		t.Abort()
	}
	p.exitNI.Clear()
	p.link.Reset()
	for _, t := range p.tiles {
		if l := t.Downstream(); l != nil {
			l.Reset()
		}
	}
	exports := make([]StreamExport, len(p.streams))
	for i, s := range p.streams {
		ex := StreamExport{Stream: s}
		switch {
		case i == p.abortedStream && p.state != stReconfig:
			// Mid-block abort (streaming/draining/flushing/checkpointing):
			// the standby must replay from the engine snapshot at the replay
			// window's start — block start, or the last committed checkpoint
			// — so the regenerated outputs match the ones the consumer
			// already received.
			ex.Engines = cloneState(p.retryState)
			ex.Replay = append([]sim.Word(nil), p.blockBuf...)
			ex.Committed = p.exitCount
			ex.ReplayStart = p.blockBase
		case i == p.abortedStream:
			// Aborted during reconfiguration: the engines were never swapped
			// in and no word entered the chain, so the stream's standing
			// state (below) is also its block-start state. A migrated block
			// that was re-starting here still carries its replay residue.
			ex.Engines = p.standingState(i, s)
			ex.Replay = append([]sim.Word(nil), p.blockBuf...)
			ex.Committed = p.resumeCommitted
			ex.ReplayStart = p.blockBase
		default:
			ex.Engines = p.standingState(i, s)
		}
		exports[i] = ex
	}
	p.streams = nil
	return exports, nil
}

// standingState deep-copies stream i's between-blocks engine state: the live
// engine objects when this stream's state is currently swapped in, its saved
// snapshot otherwise, nil when it never ran.
//
//accellint:deepcopy
func (p *Pair) standingState(i int, s *Stream) [][]uint64 {
	if !s.loaded {
		return nil
	}
	if i == p.loadedStream {
		st := make([][]uint64, len(s.Engines))
		for t, e := range s.Engines {
			st[t] = e.SaveState()
		}
		return st
	}
	return cloneState(s.saved)
}

func cloneState(st [][]uint64) [][]uint64 {
	if st == nil {
		return nil
	}
	out := make([][]uint64, len(st))
	for i, w := range st {
		out[i] = append([]uint64(nil), w...)
	}
	return out
}

// ImportStream registers an exported stream on this (standby) pair. The pair
// must be paused — stream import is part of a staged mode transition, ended
// by the ApplySlots/Resume that re-sizes and re-arms the migrated slots. The
// export's engine state becomes the stream's saved snapshot, and any aborted
// in-flight block is seeded for replay at its next beginBlock.
//
//accellint:deepcopy
func (p *Pair) ImportStream(e StreamExport) (int, error) {
	if p.failed {
		return 0, fmt.Errorf("gateway %s: cannot import onto a failed pair", p.cfg.Name)
	}
	if !p.paused {
		return 0, fmt.Errorf("gateway %s: ImportStream requires a paused pair", p.cfg.Name)
	}
	s := e.Stream
	if err := p.AddStream(s); err != nil {
		return 0, err
	}
	// AddStream allocated a fresh saved-state table; restore the export's.
	// Cloned, not adopted: the import must not retain the caller's slices,
	// so a re-used or doubly-imported export cannot couple two pairs.
	s.loaded = e.Engines != nil
	if s.loaded {
		s.saved = cloneState(e.Engines)
	}
	s.pendingReplay = append([]sim.Word(nil), e.Replay...)
	s.pendingCommitted = e.Committed
	s.pendingReplayStart = e.ReplayStart
	return len(p.streams) - 1, nil
}

// ReleaseSlot exports one suspended stream's migratable state from a LIVE
// pair — the rebalancer's half of a hot migration, where ExportStreams is the
// failover's whole-chain half. The slot must already be Suspended (the
// admission controller's RemoveStream drained and suspended it inside a
// staged transition, so no block is in flight and any replay residue sits in
// pendingReplay). The slot itself is replaced by a Released tombstone: slot
// tables never shrink, so every later slot keeps its index and the pending
// admission-event log stays valid; the tombstone is permanently suspended and
// owns no FIFOs or engine state.
//
//accellint:deepcopy
func (p *Pair) ReleaseSlot(slot int) (StreamExport, error) {
	if p.failed {
		return StreamExport{}, fmt.Errorf("gateway %s: ReleaseSlot on a failed pair (use ExportStreams)", p.cfg.Name)
	}
	if slot < 0 || slot >= len(p.streams) {
		return StreamExport{}, fmt.Errorf("gateway %s: ReleaseSlot %d out of range [0,%d)", p.cfg.Name, slot, len(p.streams))
	}
	s := p.streams[slot]
	if s.Released {
		return StreamExport{}, fmt.Errorf("gateway %s: slot %d (%q) already released", p.cfg.Name, slot, s.Name)
	}
	if !s.Suspended {
		return StreamExport{}, fmt.Errorf("gateway %s: ReleaseSlot %d (%q) requires a suspended stream", p.cfg.Name, slot, s.Name)
	}
	ex := StreamExport{
		Stream:      s,
		Engines:     p.standingState(slot, s),
		Replay:      append([]sim.Word(nil), s.pendingReplay...),
		Committed:   s.pendingCommitted,
		ReplayStart: s.pendingReplayStart,
	}
	// The suspension belongs to this pair's slot table (RemoveStream parked
	// the slot inside its staged transition); the tombstone keeps it, the
	// departing stream must arrive at its importer ready to arbitrate.
	s.Suspended = false
	p.streams[slot] = &Stream{Name: s.Name, Suspended: true, Released: true}
	if p.loadedStream == slot {
		// The released stream's engine state was the one swapped into the
		// tiles; the export deep-copied it, so nothing is loaded any more.
		p.loadedStream = -1
	}
	if p.active == slot {
		// Defensive: a suspended slot cannot be mid-block, but never leave
		// active pointing at a tombstone.
		p.active = -1
	}
	return ex, nil
}

// RecordFailoverSpan appends a controller-level failover span (Stream = -1)
// to the activity trace, when recording is enabled.
func (p *Pair) RecordFailoverSpan(start, end sim.Time) {
	if !p.cfg.RecordActivity {
		return
	}
	p.Activities = append(p.Activities, Activity{Stream: -1, Kind: ActFailover, Start: start, End: end})
}
