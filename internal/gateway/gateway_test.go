package gateway

import (
	"fmt"
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/cfifo"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

// rig is a hand-wired single-accelerator platform: node 0 = entry, node 1 =
// accelerator, node 2 = exit, node 3 = source tile, node 4 = sink tile.
type rig struct {
	k     *sim.Kernel
	net   *ring.Dual
	tile  *accel.Tile
	entry *accel.Link
	pair  *Pair
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	net, err := ring.NewDual(k, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	tile := accel.NewTile("acc", k, 1, 2)
	entryLink := accel.NewLink("e->a", k, net, 0, 1, 1, 1, tile.In())
	exitNI := sim.NewQueue("exit.ni", 2)
	tile.SetDownstream(accel.NewLink("a->x", k, net, 1, 2, 1, 1, exitNI))
	cfg.EntryNode, cfg.ExitNode = 0, 2
	cfg.IdlePort = 7
	pair, err := NewPair(k, net, cfg, []*accel.Tile{tile}, entryLink, exitNI)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, net: net, tile: tile, entry: entryLink, pair: pair}
}

func (r *rig) addStream(t *testing.T, name string, block int64, inCap, outCap int, portBase int) (*Stream, *cfifo.FIFO, *cfifo.FIFO) {
	t.Helper()
	in, err := cfifo.New(r.k, r.net, cfifo.Config{
		Name: name + ".in", Capacity: inCap,
		ProducerNode: 3, ConsumerNode: 0,
		DataPort: portBase, AckPort: portBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cfifo.New(r.k, r.net, cfifo.Config{
		Name: name + ".out", Capacity: outCap,
		ProducerNode: 2, ConsumerNode: 4,
		DataPort: portBase, AckPort: portBase + 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &Stream{
		Name: name, Block: block, OutBlock: block, Reconfig: 10,
		In: in, Out: out,
		Engines: []accel.Engine{&accel.Gain{}},
	}
	if err := r.pair.AddStream(s); err != nil {
		t.Fatal(err)
	}
	return s, in, out
}

func (r *rig) fill(t *testing.T, f *cfifo.FIFO, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for try := 0; ; try++ {
			if f.TryWrite(sim.Word(sim.PackIQ(int32(i), 0))) {
				break
			}
			if try > 1000 {
				t.Fatal("fill stuck")
			}
			r.k.RunAll()
		}
	}
	r.k.RunAll()
}

func TestAddStreamValidation(t *testing.T) {
	r := newRig(t, Config{Name: "v", EntryCost: 1, ExitCost: 1})
	in, _ := cfifo.New(r.k, r.net, cfifo.Config{Name: "i", Capacity: 4, ProducerNode: 3, ConsumerNode: 0, DataPort: 30, AckPort: 30})
	out, _ := cfifo.New(r.k, r.net, cfifo.Config{Name: "o", Capacity: 4, ProducerNode: 2, ConsumerNode: 4, DataPort: 30, AckPort: 31})
	base := Stream{Name: "s", Block: 4, OutBlock: 4, In: in, Out: out, Engines: []accel.Engine{&accel.Gain{}}}

	s := base
	s.Block = 0
	if err := r.pair.AddStream(&s); err == nil {
		t.Error("zero block accepted")
	}
	s = base
	s.OutBlock = 0
	if err := r.pair.AddStream(&s); err == nil {
		t.Error("zero out-block accepted")
	}
	s = base
	s.Engines = nil
	if err := r.pair.AddStream(&s); err == nil {
		t.Error("engine count mismatch accepted")
	}
	s = base
	s.Block = 8 // > input capacity 4
	s.OutBlock = 8
	if err := r.pair.AddStream(&s); err == nil {
		t.Error("block larger than input FIFO accepted")
	}
	s = base
	s.OutBlock = 8 // > output capacity 4
	if err := r.pair.AddStream(&s); err == nil {
		t.Error("out-block larger than output FIFO accepted")
	}
}

func TestPairRequiresTiles(t *testing.T) {
	k := sim.NewKernel()
	net, _ := ring.NewDual(k, 3, 1)
	if _, err := NewPair(k, net, Config{Name: "x"}, nil, nil, nil); err == nil {
		t.Fatal("tile-less pair accepted")
	}
}

func TestSingleBlockFlow(t *testing.T) {
	r := newRig(t, Config{Name: "f", EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed})
	s, in, out := r.addStream(t, "s", 4, 8, 8, 20)
	r.fill(t, in, 4)
	r.pair.Start()
	r.k.RunAll()
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d", s.Blocks)
	}
	if s.SamplesIn != 4 || s.SamplesOut != 4 {
		t.Fatalf("in=%d out=%d", s.SamplesIn, s.SamplesOut)
	}
	if out.Len() != 4 {
		t.Fatalf("output FIFO holds %d", out.Len())
	}
}

func TestGatewayWaitsForFullBlock(t *testing.T) {
	r := newRig(t, Config{Name: "w", EntryCost: 1, ExitCost: 1})
	s, in, _ := r.addStream(t, "s", 4, 8, 8, 20)
	r.fill(t, in, 3) // one short of a block
	r.pair.Start()
	r.k.RunAll()
	if s.Blocks != 0 {
		t.Fatal("gateway started with a partial block")
	}
	r.fill(t, in, 1)
	r.k.RunAll()
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d after completing the block", s.Blocks)
	}
}

func TestGatewayWaitsForOutputSpace(t *testing.T) {
	r := newRig(t, Config{Name: "sp", EntryCost: 1, ExitCost: 1})
	s, in, out := r.addStream(t, "s", 4, 16, 4, 20)
	// Occupy the output FIFO so only 3 spaces remain.
	// The producer side is the exit gateway; simulate prior occupancy by a
	// first block that the sink does not drain.
	r.fill(t, in, 8)
	r.pair.Start()
	r.k.RunAll()
	if s.Blocks != 1 {
		t.Fatalf("first block should run, got %d", s.Blocks)
	}
	// Output FIFO now holds 4 words, zero space: second block must wait.
	if s.Blocks > 1 {
		t.Fatal("second block ran without space")
	}
	// Drain one word: still insufficient (3 < 4).
	out.TryRead()
	r.k.RunAll()
	if s.Blocks != 1 {
		t.Fatal("block ran with partial space")
	}
	for i := 0; i < 3; i++ {
		out.TryRead()
	}
	r.k.RunAll()
	if s.Blocks != 2 {
		t.Fatalf("blocks = %d after space freed", s.Blocks)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	r := newRig(t, Config{Name: "rr", EntryCost: 1, ExitCost: 1})
	sa, ina, outa := r.addStream(t, "a", 2, 32, 32, 20)
	sb, inb, outb := r.addStream(t, "b", 2, 32, 32, 22)
	r.fill(t, ina, 16)
	r.fill(t, inb, 16)
	r.pair.Start()
	r.k.RunAll()
	_ = outa
	_ = outb
	if sa.Blocks != 8 || sb.Blocks != 8 {
		t.Fatalf("blocks a=%d b=%d, want 8/8", sa.Blocks, sb.Blocks)
	}
	// With equal demand, neither stream should ever lag the other by more
	// than one block; total service alternated (checked indirectly through
	// equal totals and bounded turnaround).
	if sa.MaxTurnaround == 0 || sb.MaxTurnaround == 0 {
		t.Error("turnaround not measured")
	}
}

func TestStateIsolationBetweenStreams(t *testing.T) {
	r := newRig(t, Config{Name: "iso", EntryCost: 1, ExitCost: 1})
	sa, ina, _ := r.addStream(t, "a", 2, 8, 32, 20)
	sb, inb, _ := r.addStream(t, "b", 2, 8, 32, 22)
	r.fill(t, ina, 8)
	r.fill(t, inb, 4)
	r.pair.Start()
	r.k.RunAll()
	ga := sa.Engines[0].(*accel.Gain)
	gb := sb.Engines[0].(*accel.Gain)
	if ga.Count != 8 || gb.Count != 4 {
		t.Fatalf("per-stream engine counts = %d/%d, want 8/4", ga.Count, gb.Count)
	}
}

func TestReconfigChargedPerBlock(t *testing.T) {
	r := newRig(t, Config{Name: "rc", EntryCost: 1, ExitCost: 1, Mode: ReconfigFixed})
	s, in, _ := r.addStream(t, "s", 2, 16, 32, 20)
	s.Reconfig = 100
	r.fill(t, in, 8) // 4 blocks
	r.pair.Start()
	r.k.RunAll()
	if s.Blocks != 4 {
		t.Fatalf("blocks = %d", s.Blocks)
	}
	total, rec, _ := r.pair.Busy()
	if rec != 400 {
		t.Errorf("reconfig cycles = %d, want 400", rec)
	}
	if total == 0 {
		t.Error("no elapsed time")
	}
}

func TestBusyAccounting(t *testing.T) {
	r := newRig(t, Config{Name: "b", EntryCost: 3, ExitCost: 1, Mode: ReconfigFixed})
	s, in, _ := r.addStream(t, "s", 4, 16, 32, 20)
	s.Reconfig = 50
	r.fill(t, in, 8)
	r.pair.Start()
	r.k.RunAll()
	_, rec, str := r.pair.Busy()
	if rec != 100 { // 2 blocks x 50
		t.Errorf("reconfig = %d", rec)
	}
	if str != 24 { // 8 samples x 3 cycles
		t.Errorf("streaming = %d", str)
	}
}

func TestOutputTimestampRecording(t *testing.T) {
	r := newRig(t, Config{Name: "ts", EntryCost: 1, ExitCost: 1, RecordOutputTimes: true})
	s, in, _ := r.addStream(t, "s", 4, 8, 32, 20)
	r.fill(t, in, 4)
	r.pair.Start()
	r.k.RunAll()
	if len(s.OutTimes) != 4 {
		t.Fatalf("timestamps = %d", len(s.OutTimes))
	}
	for i := 1; i < len(s.OutTimes); i++ {
		if s.OutTimes[i] < s.OutTimes[i-1] {
			t.Fatal("timestamps not monotone")
		}
	}
}

func TestDisableSpaceCheckDirect(t *testing.T) {
	r := newRig(t, Config{Name: "nsc", EntryCost: 1, ExitCost: 1, DisableSpaceCheck: true})
	s, in, _ := r.addStream(t, "s", 4, 16, 4, 20)
	// Without the check, the gateway starts a second block even though the
	// output FIFO (capacity 4) is still full from the first.
	r.fill(t, in, 8)
	r.pair.Start()
	// Run a bounded horizon: the second block stalls at the exit gateway.
	r.k.Run(2_000)
	if s.Blocks != 1 {
		t.Fatalf("blocks completed = %d, want 1 (second block stuck mid-chain)", s.Blocks)
	}
	if s.SamplesIn < 5 {
		t.Errorf("second block never started streaming: in=%d", s.SamplesIn)
	}
}

func TestFixedPriorityArbiterDirect(t *testing.T) {
	r := newRig(t, Config{Name: "fp", EntryCost: 1, ExitCost: 1, Arbiter: FixedPriority})
	sa, ina, _ := r.addStream(t, "hi", 2, 32, 64, 20)
	sb, inb, _ := r.addStream(t, "lo", 2, 32, 64, 22)
	r.fill(t, ina, 32)
	r.fill(t, inb, 8)
	r.pair.Start()
	r.k.RunAll()
	// All of hi's 16 blocks run before lo gets a turn... both eventually
	// complete since hi's input is finite.
	if sa.Blocks != 16 || sb.Blocks != 4 {
		t.Fatalf("blocks = %d/%d", sa.Blocks, sb.Blocks)
	}
	if r.pair.PendingWait(0) != 0 || r.pair.PendingWait(1) != 0 {
		t.Error("pending wait should be zero after drain")
	}
}

func TestPendingWaitWhileStarved(t *testing.T) {
	r := newRig(t, Config{Name: "pw", EntryCost: 4, ExitCost: 1, Arbiter: FixedPriority})
	_, ina, outa := r.addStream(t, "hi", 2, 64, 4, 20)
	sb, inb, _ := r.addStream(t, "lo", 2, 32, 64, 22)
	_ = outa
	r.fill(t, ina, 64) // saturate hi
	r.fill(t, inb, 2)
	r.pair.Start()
	r.k.Run(5_000)
	if sb.Blocks != 0 && r.pair.PendingWait(1) == 0 {
		// Either lo was served (possible when hi briefly lacks output
		// space) or it must be visibly waiting.
		t.Logf("lo served %d blocks", sb.Blocks)
	}
	if sb.Blocks == 0 && r.pair.PendingWait(1) == 0 {
		t.Error("starved stream shows no pending wait")
	}
}

func TestReconfigPerWordDirect(t *testing.T) {
	r := newRig(t, Config{Name: "pword", EntryCost: 1, ExitCost: 1, Mode: ReconfigPerWord, BusBase: 10, BusPerWord: 7})
	s, in, _ := r.addStream(t, "s", 2, 16, 32, 20)
	r.fill(t, in, 4) // two blocks
	r.pair.Start()
	r.k.RunAll()
	if s.Blocks != 2 {
		t.Fatalf("blocks = %d", s.Blocks)
	}
	_, rec, _ := r.pair.Busy()
	// Block 1: no previous stream -> load only (1 gain word): 2*10 + 1*7 = 27.
	// Block 2: save prev (1 word) + load (1 word): 2*10 + 2*7 = 34.
	if rec != 27+34 {
		t.Errorf("reconfig cycles = %d, want 61", rec)
	}
}

func TestStartIgnoresEarlyWakeups(t *testing.T) {
	r := newRig(t, Config{Name: "sw", EntryCost: 1, ExitCost: 1})
	s, in, _ := r.addStream(t, "s", 2, 16, 32, 20)
	r.fill(t, in, 4)
	r.k.RunAll() // wakeups delivered before Start
	if s.Blocks != 0 {
		t.Fatal("gateway ran before Start")
	}
	r.pair.Start()
	r.k.RunAll()
	if s.Blocks != 2 {
		t.Fatalf("blocks = %d after Start", s.Blocks)
	}
}

func TestStreamsAccessor(t *testing.T) {
	r := newRig(t, Config{Name: "acc", EntryCost: 1, ExitCost: 1})
	r.addStream(t, "x", 2, 8, 8, 20)
	if len(r.pair.Streams()) != 1 || r.pair.Streams()[0].Name != "x" {
		t.Fatalf("Streams() = %+v", r.pair.Streams())
	}
	if len(r.pair.Tiles()) != 1 {
		t.Fatalf("Tiles() = %d", len(r.pair.Tiles()))
	}
}

// lossyEngine drops every dropEvery-th sample — an injected accelerator
// fault that breaks the exit gateway's block accounting.
type lossyEngine struct {
	n         int
	dropEvery int
}

func (l *lossyEngine) Process(w sim.Word, out []sim.Word) []sim.Word {
	l.n++
	if l.dropEvery > 0 && l.n%l.dropEvery == 0 {
		return out // swallow the sample
	}
	return append(out, w)
}
func (l *lossyEngine) SaveState() []uint64 { return []uint64{uint64(l.n)} }
func (l *lossyEngine) LoadState(s []uint64) error {
	if len(s) != 1 {
		return errBadState
	}
	l.n = int(s[0])
	return nil
}
func (l *lossyEngine) StateWords() int { return 1 }

var errBadState = fmt.Errorf("bad state")

func TestDrainWatchdogDetectsSampleLoss(t *testing.T) {
	stalled := make([]int, 0, 1)
	cfg := Config{
		Name: "wd", EntryCost: 2, ExitCost: 1,
		DrainTimeout: 200,
		OnStall:      func(s int) { stalled = append(stalled, s) },
	}
	r := newRig(t, cfg)
	s, in, _ := r.addStream(t, "s", 4, 16, 16, 20)
	s.Engines = []accel.Engine{&lossyEngine{dropEvery: 3}}
	s.Block, s.OutBlock = 4, 4 // but the engine will deliver only 3
	r.fill(t, in, 4)
	r.pair.Start()
	r.k.Run(10_000)
	if r.pair.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", r.pair.Stalls)
	}
	if len(stalled) != 1 || stalled[0] != 0 {
		t.Fatalf("OnStall calls = %v", stalled)
	}
	if s.Blocks != 0 {
		t.Errorf("lossy block counted as complete")
	}
}

func TestDrainWatchdogQuietOnHealthyChain(t *testing.T) {
	stalls := 0
	cfg := Config{
		Name: "wd2", EntryCost: 2, ExitCost: 1,
		DrainTimeout: 200,
		OnStall:      func(int) { stalls++ },
	}
	r := newRig(t, cfg)
	s, in, out := r.addStream(t, "s", 4, 32, 32, 20)
	r.fill(t, in, 16) // 4 healthy blocks
	r.pair.Start()
	drain := sim.NewWaker(r.k, func() {
		for {
			if _, ok := out.TryRead(); !ok {
				return
			}
		}
	})
	out.SubscribeData(drain)
	r.k.RunAll()
	if s.Blocks != 4 {
		t.Fatalf("blocks = %d", s.Blocks)
	}
	if stalls != 0 || r.pair.Stalls != 0 {
		t.Fatalf("false stall alarms: %d", stalls)
	}
}

func TestDrainWatchdogDisabledByDefault(t *testing.T) {
	r := newRig(t, Config{Name: "wd3", EntryCost: 2, ExitCost: 1})
	s, in, _ := r.addStream(t, "s", 4, 16, 16, 20)
	s.Engines = []accel.Engine{&lossyEngine{dropEvery: 3}}
	r.fill(t, in, 4)
	r.pair.Start()
	r.k.Run(10_000)
	if r.pair.Stalls != 0 {
		t.Fatalf("watchdog fired while disabled")
	}
}
