package gateway

import (
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/cfifo"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

type benchParts struct {
	in, out *cfifo.FIFO
}

func benchRig(b *testing.B, k *sim.Kernel) *benchParts {
	b.Helper()
	net, err := ring.NewDual(k, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	tile := accel.NewTile("acc", k, 1, 2)
	entryLink := accel.NewLink("e->a", k, net, 0, 1, 1, 1, tile.In())
	exitNI := sim.NewQueue("exit.ni", 2)
	tile.SetDownstream(accel.NewLink("a->x", k, net, 1, 2, 1, 1, exitNI))
	pair, err := NewPair(k, net, Config{
		Name: "bench", EntryNode: 0, ExitNode: 2, IdlePort: 7,
		EntryCost: 2, ExitCost: 1,
	}, []*accel.Tile{tile}, entryLink, exitNI)
	if err != nil {
		b.Fatal(err)
	}
	in, err := cfifo.New(k, net, cfifo.Config{
		Name: "in", Capacity: 32, ProducerNode: 3, ConsumerNode: 0, DataPort: 20, AckPort: 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	out, err := cfifo.New(k, net, cfifo.Config{
		Name: "out", Capacity: 32, ProducerNode: 2, ConsumerNode: 4, DataPort: 20, AckPort: 70,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := pair.AddStream(&Stream{
		Name: "s", Block: 8, OutBlock: 8, Reconfig: 50,
		In: in, Out: out, Engines: []accel.Engine{accel.Passthrough{}},
	}); err != nil {
		b.Fatal(err)
	}
	pair.Start()
	return &benchParts{in: in, out: out}
}
