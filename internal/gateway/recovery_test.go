package gateway

import (
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/sim"
)

// transientDropEngine swallows exactly one sample, identified by its
// absolute position in the engine's lifetime. The absolute counter is
// deliberately NOT part of SaveState: it models a transient glitch in the
// datapath, not stream state, so a block retry replays past it cleanly.
type transientDropEngine struct {
	seen   int
	dropAt int
}

func (e *transientDropEngine) Process(w sim.Word, out []sim.Word) []sim.Word {
	e.seen++
	if e.seen-1 == e.dropAt {
		return out
	}
	return append(out, w)
}
func (e *transientDropEngine) SaveState() []uint64      { return nil }
func (e *transientDropEngine) LoadState([]uint64) error { return nil }
func (e *transientDropEngine) StateWords() int          { return 0 }

// TestWatchdogCoversStreamingPhase wedges the entry link mid-streaming:
// the fault hits before the last sample of the block is even issued, so a
// drain-only watchdog would never see it. The progress watchdog must.
func TestWatchdogCoversStreamingPhase(t *testing.T) {
	var stalled []int
	cfg := Config{
		Name: "wds", EntryCost: 2, ExitCost: 1,
		DrainTimeout: 200,
		OnStall:      func(s int) { stalled = append(stalled, s) },
	}
	r := newRig(t, cfg)
	s, in, _ := r.addStream(t, "s", 8, 16, 16, 20)
	r.fill(t, in, 8)
	// Wedge the entry link permanently after the block has started
	// streaming but well before its last sample.
	r.k.Schedule(20, func() { r.entry.WedgeFor(0) })
	r.pair.Start()
	r.k.Run(10_000)
	if r.pair.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", r.pair.Stalls)
	}
	if len(stalled) != 1 || stalled[0] != 0 {
		t.Fatalf("OnStall calls = %v", stalled)
	}
	if s.Blocks != 0 {
		t.Errorf("wedged block counted as complete")
	}
	if s.SamplesIn >= 8 {
		t.Errorf("all %d samples issued despite the wedge — fault hit too late", s.SamplesIn)
	}
}

// TestWatchdogReconfigExceedsWindow: the paper's Rs (4100 cycles) is far
// larger than a c0-scaled progress window. A reconfiguration legitimately
// occupying the bus for longer than DrainTimeout must not be declared a
// stall — bus occupancy counts as progress.
func TestWatchdogReconfigExceedsWindow(t *testing.T) {
	cfg := Config{
		Name: "wdr", EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed,
		DrainTimeout: 100,
		OnStall:      func(int) { t.Error("stall declared during a healthy long reconfiguration") },
	}
	r := newRig(t, cfg)
	s, in, _ := r.addStream(t, "s", 4, 16, 16, 20)
	s.Reconfig = 2000 // 20x the watchdog window
	r.fill(t, in, 4)
	r.pair.Start()
	r.k.RunAll()
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d", s.Blocks)
	}
	if r.pair.Stalls != 0 {
		t.Fatalf("stalls = %d", r.pair.Stalls)
	}
}

// TestWatchdogDisarmedAcrossBlocks is the disarm regression: with the
// watchdog window roughly equal to one block's duration and blocks running
// back-to-back, a timer armed for block N expires while block N+1 is in
// flight. The epoch binding must make it a no-op — zero spurious stalls.
func TestWatchdogDisarmedAcrossBlocks(t *testing.T) {
	cfg := Config{
		Name: "wdd", EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed,
		DrainTimeout: 30, // ≈ one block: 10 reconfig + 8 streaming + drain/notify
		OnStall:      func(s int) { t.Errorf("spurious stall on stream %d", s) },
	}
	r := newRig(t, cfg)
	s, in, _ := r.addStream(t, "s", 4, 64, 64, 20)
	r.fill(t, in, 32) // 8 back-to-back blocks
	r.pair.Start()
	r.k.RunAll()
	if s.Blocks != 8 {
		t.Fatalf("blocks = %d, want 8", s.Blocks)
	}
	if r.pair.Stalls != 0 {
		t.Fatalf("stalls = %d, want 0", r.pair.Stalls)
	}
}

// TestWatchdogBlamesCloggedStream is the A1-ablation × watchdog
// interaction: with DisableSpaceCheck the exit gateway can block mid-block
// on a slow consumer, head-of-line blocking every stream behind it. The
// watchdog must attribute the stall to the stream whose consumer clogged
// the chain, not to an innocent bystander.
func TestWatchdogBlamesCloggedStream(t *testing.T) {
	var stalled []int
	cfg := Config{
		Name: "wdc", EntryCost: 1, ExitCost: 1,
		DisableSpaceCheck: true,
		DrainTimeout:      200,
		OnStall:           func(s int) { stalled = append(stalled, s) },
	}
	r := newRig(t, cfg)
	// Stream "clog": tiny output FIFO that nobody drains. Stream "ok":
	// ample output space.
	sClog, inClog, _ := r.addStream(t, "clog", 4, 16, 4, 20)
	sOK, inOK, _ := r.addStream(t, "ok", 4, 16, 32, 22)
	r.fill(t, inClog, 8) // two blocks; the second wedges at the exit
	r.fill(t, inOK, 8)
	r.pair.Start()
	r.k.Run(10_000)
	if r.pair.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", r.pair.Stalls)
	}
	if len(stalled) != 1 || stalled[0] != 0 {
		t.Fatalf("OnStall blamed %v, want the clogged stream (0)", stalled)
	}
	if sClog.StallCount != 1 || sOK.StallCount != 0 {
		t.Fatalf("per-stream stalls clog=%d ok=%d, want 1/0", sClog.StallCount, sOK.StallCount)
	}
	// Head-of-line: the innocent stream is stuck behind the wedged block.
	if sOK.Blocks == 2 {
		t.Errorf("innocent stream ran to completion — no head-of-line blocking observed")
	}
}

// TestRecoveryRetriesTransientFault: a one-shot sample drop stalls the
// block; flush + retry replays it past the glitch and the block completes.
// The consumer must see each block position exactly once.
func TestRecoveryRetriesTransientFault(t *testing.T) {
	cfg := Config{
		Name: "rt", EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed,
		DrainTimeout:   200,
		Recovery:       Recovery{Enabled: true, RetryLimit: 3},
		RecordActivity: true,
	}
	r := newRig(t, cfg)
	s, in, out := r.addStream(t, "s", 4, 16, 16, 20)
	s.Engines = []accel.Engine{&transientDropEngine{dropAt: 2}}
	r.fill(t, in, 4)
	r.pair.Start()
	r.k.Run(20_000)
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1 (retry should complete the block)", s.Blocks)
	}
	if s.StallCount != 1 || s.RetryCount != 1 {
		t.Fatalf("stalls=%d retries=%d, want 1/1", s.StallCount, s.RetryCount)
	}
	if s.Quarantined || r.pair.Quarantines != 0 {
		t.Fatal("transient fault led to quarantine")
	}
	if out.Len() != 4 {
		t.Fatalf("output FIFO holds %d words, want 4 (no duplicates, no gaps)", out.Len())
	}
	if s.SamplesOut != 4 {
		t.Fatalf("SamplesOut = %d, want 4 (replayed duplicates must be discarded)", s.SamplesOut)
	}
	flushes := 0
	for _, a := range r.pair.Activities {
		if a.Kind == ActFlush {
			flushes++
		}
	}
	if flushes != 1 {
		t.Errorf("activity trace records %d flush spans, want 1", flushes)
	}
}

// TestRecoveryQuarantinesPermanentFault: a stream whose engine loses a
// sample deterministically (loss state restored on every retry) keeps
// stalling; after RetryLimit retries it must be quarantined, and the
// surviving stream must then be served normally.
func TestRecoveryQuarantinesPermanentFault(t *testing.T) {
	var quarantined []int
	cfg := Config{
		Name: "rq", EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed,
		DrainTimeout: 200,
		Recovery: Recovery{
			Enabled: true, RetryLimit: 2,
			OnQuarantine: func(s int) { quarantined = append(quarantined, s) },
		},
	}
	r := newRig(t, cfg)
	sBad, inBad, _ := r.addStream(t, "bad", 4, 16, 16, 20)
	// lossyEngine keeps its loss counter in SaveState, so the retry's state
	// restore replays the identical loss: a permanent fault.
	sBad.Engines = []accel.Engine{&lossyEngine{dropEvery: 3}}
	sOK, inOK, _ := r.addStream(t, "ok", 4, 64, 64, 20+2)
	r.fill(t, inBad, 4)
	r.fill(t, inOK, 16) // 4 blocks
	r.pair.Start()
	r.k.Run(50_000)
	if !sBad.Quarantined {
		t.Fatal("permanently faulty stream not quarantined")
	}
	// RetryLimit=2: stall #1 -> retry 1, stall #2 -> retry 2, stall #3 ->
	// quarantine.
	if sBad.StallCount != 3 || sBad.RetryCount != 2 {
		t.Fatalf("stalls=%d retries=%d, want 3/2", sBad.StallCount, sBad.RetryCount)
	}
	if r.pair.Quarantines != 1 || len(quarantined) != 1 || quarantined[0] != 0 {
		t.Fatalf("quarantines=%d callback=%v", r.pair.Quarantines, quarantined)
	}
	if sBad.Blocks != 0 {
		t.Errorf("faulty stream completed %d blocks", sBad.Blocks)
	}
	// The survivor regains the whole chain after the quarantine.
	if sOK.Blocks != 4 {
		t.Fatalf("healthy stream completed %d blocks, want 4", sOK.Blocks)
	}
	if sOK.StallCount != 0 {
		t.Errorf("healthy stream blamed for %d stalls", sOK.StallCount)
	}
	if r.pair.PendingWait(0) != 0 {
		t.Errorf("quarantined stream still reports pending wait")
	}
}

// TestRecoveryLostIdleNotification: the DropIdle fault hook swallows one
// pipeline-idle message. The entry gateway hangs in the drain phase with a
// fully delivered block; the watchdog must catch it and the retry must
// complete the block without duplicating any output.
func TestRecoveryLostIdleNotification(t *testing.T) {
	droppedOnce := false
	cfg := Config{
		Name: "ri", EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed,
		DrainTimeout: 200,
		Recovery:     Recovery{Enabled: true, RetryLimit: 3},
		DropIdle: func(stream int, block uint64) bool {
			if !droppedOnce && stream == 0 && block == 0 {
				droppedOnce = true
				return true
			}
			return false
		},
	}
	r := newRig(t, cfg)
	s, in, out := r.addStream(t, "s", 4, 16, 16, 20)
	r.fill(t, in, 4)
	r.pair.Start()
	r.k.Run(20_000)
	if r.pair.IdleDropped != 1 {
		t.Fatalf("IdleDropped = %d, want 1", r.pair.IdleDropped)
	}
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1", s.Blocks)
	}
	if s.StallCount != 1 || s.RetryCount != 1 {
		t.Fatalf("stalls=%d retries=%d, want 1/1", s.StallCount, s.RetryCount)
	}
	// The whole block was already committed before the abort; the replay's
	// outputs must all be discarded.
	if out.Len() != 4 || s.SamplesOut != 4 {
		t.Fatalf("out=%d samplesOut=%d, want 4/4 (no duplicates)", out.Len(), s.SamplesOut)
	}
}

// TestRecoveryTurnaroundRecords: RecordTurnarounds captures per-block
// latency including the retried block's inflated service time, so a test
// or campaign can check re-convergence after a disturbance.
func TestRecoveryTurnaroundRecords(t *testing.T) {
	cfg := Config{
		Name: "rr2", EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed,
		DrainTimeout:      200,
		Recovery:          Recovery{Enabled: true, RetryLimit: 3},
		RecordTurnarounds: true,
	}
	r := newRig(t, cfg)
	s, in, _ := r.addStream(t, "s", 4, 32, 32, 20)
	s.Engines = []accel.Engine{&transientDropEngine{dropAt: 2}}
	r.fill(t, in, 12) // 3 blocks; the first needs one retry
	r.pair.Start()
	r.k.Run(50_000)
	if s.Blocks != 3 {
		t.Fatalf("blocks = %d, want 3", s.Blocks)
	}
	if len(s.Turnarounds) != 3 {
		t.Fatalf("turnaround records = %d, want 3", len(s.Turnarounds))
	}
	if s.Turnarounds[0].Retries != 1 {
		t.Errorf("first block records %d retries, want 1", s.Turnarounds[0].Retries)
	}
	if s.Turnarounds[1].Retries != 0 || s.Turnarounds[2].Retries != 0 {
		t.Errorf("healthy blocks record retries: %+v", s.Turnarounds[1:])
	}
	// The disturbed block's service latency dwarfs the healthy ones'
	// (watchdog window + flush settle + re-reconfig + replay).
	lat := func(b BlockRecord) sim.Time { return b.Done - b.Started }
	if lat(s.Turnarounds[0]) <= lat(s.Turnarounds[1]) {
		t.Errorf("retried block latency %d not above healthy %d", lat(s.Turnarounds[0]), lat(s.Turnarounds[1]))
	}
	for _, b := range s.Turnarounds {
		if b.Done < b.Started || b.Started < b.Queued {
			t.Errorf("record ordering broken: %+v", b)
		}
	}
}
