package gateway

// Checkpointed mid-block resume and value-exact replay: the unit tests for
// the adjusted recovery path. A block of ηs samples with checkpoint interval
// K quiesces at every K-sample boundary, snapshots the chain's engine state,
// and commits the staged output — so a retry (TestCheckpointRetryReplayBounded)
// or a failover migration (TestCheckpointFailoverResidue) replays at most K
// words instead of the whole block, and with ValueExact the downstream byte
// stream is bit-identical to a fault-free run (TestValueExactRetryBitIdentical).

import (
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/cfifo"
	"accelshare/internal/sim"
)

// feedRaw writes sequential raw words start..start+n-1 (the Gain identity
// engine reproduces them verbatim, so the output stream is checkable
// value-by-value, not just count-by-count).
func (r *rig) feedRaw(t *testing.T, f *cfifo.FIFO, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for try := 0; ; try++ {
			if f.TryWrite(sim.Word(start + i)) {
				break
			}
			if try > 1000 {
				t.Fatal("feedRaw stuck")
			}
			r.k.RunAll()
		}
	}
	r.k.RunAll()
}

// drainAll reads every word currently obtainable from the output C-FIFO.
func (r *rig) drainAll(out *cfifo.FIFO) []sim.Word {
	var got []sim.Word
	for {
		w, ok := out.TryRead()
		if !ok {
			return got
		}
		got = append(got, w)
		r.k.RunAll()
	}
}

func ckptCfg(name string, k int64, valueExact bool) Config {
	return Config{
		Name: name, EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed,
		DrainTimeout: 200,
		Recovery: Recovery{
			Enabled: true, RetryLimit: 3,
			Checkpoint: k, CheckpointCost: 5, ValueExact: valueExact,
		},
		RecordTurnarounds: true,
	}
}

// TestCheckpointCleanRun: a fault-free checkpointed block must behave like
// the plain path downstream — same words, same order, zero replay — while
// committing an engine snapshot at every interior K boundary.
func TestCheckpointCleanRun(t *testing.T) {
	r := newRig(t, ckptCfg("ck", 4, true))
	s, in, out := r.addStream(t, "s", 16, 32, 32, 20)
	r.feedRaw(t, in, 0, 16)
	r.pair.Start()
	r.k.RunAll()
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1", s.Blocks)
	}
	// Interior boundaries at 4, 8, 12 (the 16-boundary is block completion).
	if r.pair.Checkpoints != 3 {
		t.Fatalf("checkpoints = %d, want 3", r.pair.Checkpoints)
	}
	if r.pair.CheckpointCycles != 3*5 {
		t.Fatalf("checkpoint cycles = %d, want 15", r.pair.CheckpointCycles)
	}
	if s.SamplesOut != 16 {
		t.Fatalf("SamplesOut = %d, want 16", s.SamplesOut)
	}
	if got := len(s.Turnarounds); got != 1 {
		t.Fatalf("turnaround records = %d, want 1", got)
	}
	if rp := s.Turnarounds[0].Replayed; rp != 0 {
		t.Fatalf("clean block recorded %d replayed words, want 0", rp)
	}
	for i, w := range r.drainAll(out) {
		if w != sim.Word(i) {
			t.Fatalf("output word %d = %d (checkpointing altered a clean run)", i, w)
		}
	}
}

// TestCheckpointRetryReplayBounded: a transient fault in the LAST sub-block
// of a checkpointed block must replay only from the last checkpoint — the
// measured replay work is exactly one sub-block (≤ K), not the whole η.
func TestCheckpointRetryReplayBounded(t *testing.T) {
	r := newRig(t, ckptCfg("ckr", 4, true))
	s, in, out := r.addStream(t, "s", 16, 32, 32, 20)
	// Drop the sample at absolute position 13: inside the final sub-block
	// [12,16), after three checkpoints have committed.
	s.Engines = []accel.Engine{&transientDropEngine{dropAt: 13}}
	r.feedRaw(t, in, 0, 16)
	r.pair.Start()
	r.k.Run(50_000)
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1 (retry should complete the block)", s.Blocks)
	}
	if s.RetryCount != 1 {
		t.Fatalf("retries = %d, want 1", s.RetryCount)
	}
	if r.pair.Checkpoints != 3 {
		t.Fatalf("checkpoints = %d, want 3", r.pair.Checkpoints)
	}
	rec := s.Turnarounds[0]
	if rec.Retries != 1 {
		t.Fatalf("record retries = %d, want 1", rec.Retries)
	}
	// The resume replays the aborted sub-block only: 4 words (= K), where a
	// block-start retry would have replayed 16.
	if rec.Replayed != 4 {
		t.Fatalf("replayed = %d words, want 4 (one sub-block, not the full block)", rec.Replayed)
	}
	got := r.drainAll(out)
	if len(got) != 16 {
		t.Fatalf("output has %d words, want 16", len(got))
	}
	for i, w := range got {
		if w != sim.Word(i) {
			t.Fatalf("output word %d = %d (lost, duplicated or reordered by the resume)", i, w)
		}
	}
}

// glitchEngine corrupts the value of samples whose absolute lifetime
// position falls in [glitchFrom, glitchTo), then swallows the one at
// dropAt. The counter is NOT part of SaveState — it is a transient datapath
// glitch, so a replay past it processes the same inputs cleanly. First-
// attempt corrupted outputs must therefore never reach the consumer.
type glitchEngine struct {
	seen       int
	glitchFrom int
	glitchTo   int
	dropAt     int
}

func (e *glitchEngine) Process(w sim.Word, out []sim.Word) []sim.Word {
	pos := e.seen
	e.seen++
	if pos == e.dropAt {
		return out
	}
	if pos >= e.glitchFrom && pos < e.glitchTo {
		return append(out, w+1000)
	}
	return append(out, w)
}
func (e *glitchEngine) SaveState() []uint64      { return nil }
func (e *glitchEngine) LoadState([]uint64) error { return nil }
func (e *glitchEngine) StateWords() int          { return 0 }

// TestValueExactRetryBitIdentical is the ROADMAP value-exact regression
// test: a retried block's downstream BYTE STREAM must be identical to the
// fault-free run, not just its counts. The fault corrupts two output values
// and then wedges the block, all inside one sub-block; with ValueExact the
// corrupted words sit in the staging buffer, the retry rolls them back and
// regenerates them cleanly. Without ValueExact they leak — which this test
// also pins down, as the documented gap the staging buffer closes.
func TestValueExactRetryBitIdentical(t *testing.T) {
	run := func(valueExact bool) []sim.Word {
		r := newRig(t, ckptCfg("vx", 4, valueExact))
		s, in, out := r.addStream(t, "s", 16, 32, 32, 20)
		s.Engines = []accel.Engine{&glitchEngine{glitchFrom: 12, glitchTo: 14, dropAt: 14}}
		r.feedRaw(t, in, 0, 16)
		r.pair.Start()
		r.k.Run(50_000)
		if s.Blocks != 1 {
			t.Fatalf("valueExact=%v: blocks = %d, want 1", valueExact, s.Blocks)
		}
		if s.RetryCount != 1 {
			t.Fatalf("valueExact=%v: retries = %d, want 1", valueExact, s.RetryCount)
		}
		return r.drainAll(out)
	}
	// Fault-free twin: identity engine, same config.
	r := newRig(t, ckptCfg("ff", 4, true))
	_, in, out := r.addStream(t, "s", 16, 32, 32, 20)
	r.feedRaw(t, in, 0, 16)
	r.pair.Start()
	r.k.RunAll()
	clean := r.drainAll(out)

	exact := run(true)
	if len(exact) != len(clean) {
		t.Fatalf("value-exact run has %d output words, fault-free has %d", len(exact), len(clean))
	}
	for i := range clean {
		if exact[i] != clean[i] {
			t.Fatalf("output word %d: value-exact retry produced %d, fault-free %d — partial first attempt leaked",
				i, exact[i], clean[i])
		}
	}

	// The contrast run documents the gap: without staging, the first
	// attempt's corrupted words were committed before the stall and the
	// consumer keeps them.
	leaky := run(false)
	same := len(leaky) == len(clean)
	if same {
		for i := range clean {
			if leaky[i] != clean[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("non-value-exact run was bit-identical — the glitch never leaked, test scenario is not exercising the staging buffer")
	}
}

// TestCheckpointFailoverResidue: freezing a checkpointed pair mid-block must
// export only the residue SINCE the last committed checkpoint (≤ K words,
// ReplayStart at the boundary), and the standby must resume mid-block from
// it — downstream stream bit-identical to an unfailed run.
func TestCheckpointFailoverResidue(t *testing.T) {
	cfgA := ckptCfg("A", 4, true)
	cfgB := ckptCfg("B", 4, true)
	r := newFailoverRig(t, cfgA, cfgB)
	s, in, out := r.addStreamA(t, "m", 16, 20)
	r.feed(t, in, 0, 16)
	r.pairA.Start()

	// Run until two checkpoints have committed and the third sub-block is in
	// flight: the replay window is [8, …) and at most 4 words wide.
	if !r.k.RunUntil(100_000, func() bool {
		return r.pairA.Checkpoints == 2 && r.pairA.state == stStreaming && r.pairA.sent >= 1
	}) {
		t.Fatal("never reached mid-sub-block past two checkpoints")
	}
	if err := r.pairA.FreezeForFailover(); err != nil {
		t.Fatal(err)
	}
	in.BeginRepoint()
	r.k.Run(r.k.Now() + 50) // settle

	exports, err := r.pairA.ExportStreams()
	if err != nil {
		t.Fatal(err)
	}
	e := exports[0]
	if e.ReplayStart != 8 {
		t.Fatalf("ReplayStart = %d, want 8 (the last committed checkpoint)", e.ReplayStart)
	}
	if len(e.Replay) == 0 || len(e.Replay) > 4 {
		t.Fatalf("replay residue = %d words, want 1..4 (bounded by K)", len(e.Replay))
	}
	// Value-exact: everything past the checkpoint was staged and rolled
	// back, so the consumer's watermark is exactly the checkpoint boundary.
	if e.Committed != 8 {
		t.Fatalf("Committed = %d, want 8", e.Committed)
	}

	in.RepointConsumer(3)
	out.RepointProducer(5)
	r.pairB.Start()
	imported := false
	err = r.pairB.RequestPause(func() {
		if _, err := r.pairB.ImportStream(e); err != nil {
			t.Errorf("import: %v", err)
			return
		}
		imported = true
		r.pairB.Resume()
	})
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunAll()
	if !imported {
		t.Fatal("pause/import never completed")
	}
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1 (migrated block must complete on the standby)", s.Blocks)
	}
	// The standby resumed at 8, so its replay work is the residue only.
	if rec := s.Turnarounds[len(s.Turnarounds)-1]; rec.Replayed != int64(len(e.Replay)) {
		t.Fatalf("standby replayed %d words, want the %d-word residue", rec.Replayed, len(e.Replay))
	}
	for want := 0; want < 16; want++ {
		w, ok := out.TryRead()
		if !ok {
			t.Fatalf("output ended at word %d of 16", want)
		}
		if w != sim.Word(want) {
			t.Fatalf("output word %d = %d (migration lost, duplicated or altered a sample)", want, w)
		}
		r.k.RunAll()
	}
	if _, ok := out.TryRead(); ok {
		t.Fatal("extra output word beyond the 16 fed")
	}
}

// TestCheckpointRoundsToDecimation: K = 3 on a decimate-by-4 stream must
// quiesce at input multiples of 4 (K rounded up), so every boundary maps to
// an exact output position.
func TestCheckpointRoundsToDecimation(t *testing.T) {
	r := newRig(t, ckptCfg("ckd", 3, true))
	in, err := cfifo.New(r.k, r.net, cfifo.Config{
		Name: "d.in", Capacity: 32, ProducerNode: 3, ConsumerNode: 0,
		DataPort: 20, AckPort: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cfifo.New(r.k, r.net, cfifo.Config{
		Name: "d.out", Capacity: 32, ProducerNode: 2, ConsumerNode: 4,
		DataPort: 20, AckPort: 70,
	})
	if err != nil {
		t.Fatal(err)
	}
	cic, err := accel.NewCIC(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := &Stream{
		Name: "d", Block: 16, OutBlock: 4, Reconfig: 10,
		In: in, Out: out,
		Engines: []accel.Engine{cic},
	}
	if err := r.pair.AddStream(s); err != nil {
		t.Fatal(err)
	}
	r.feedRaw(t, in, 0, 16)
	r.pair.Start()
	r.k.RunAll()
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1", s.Blocks)
	}
	// K=3 rounds up to 4: interior boundaries at 4, 8, 12.
	if r.pair.Checkpoints != 3 {
		t.Fatalf("checkpoints = %d, want 3 (K rounded up to the decimation)", r.pair.Checkpoints)
	}
	if s.SamplesOut != 4 {
		t.Fatalf("SamplesOut = %d, want 4", s.SamplesOut)
	}
}
