package gateway

import (
	"testing"

	"accelshare/internal/sim"
)

// BenchmarkBlockService measures one full block turn (reconfig + stream +
// drain) through the hand-wired single-accelerator rig.
func BenchmarkBlockService(b *testing.B) {
	k := sim.NewKernel()
	r := benchRig(b, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			for !r.in.TryWrite(sim.Word(j)) {
				k.RunAll()
			}
		}
		k.RunAll()
		for {
			if _, ok := r.out.TryRead(); !ok {
				break
			}
		}
		k.RunAll()
	}
}
