package gateway

// Failover unit tests: freeze/export/import semantics in isolation, plus the
// gateway-level migration round trip on a hand-wired two-pair ring. The full
// controller-driven failover (doctor verdict, settle clamp, re-solve, bound
// accounting) is exercised in internal/mpsoc.

import (
	"reflect"
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/cfifo"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

// frig is a two-pair platform on one 8-node ring: pair A = nodes 0/1/2
// (entry/accel/exit), pair B = nodes 3/4/5, source tile 6, sink tile 7.
type frig struct {
	k            *sim.Kernel
	net          *ring.Dual
	pairA, pairB *Pair
}

func newFailoverRig(t *testing.T, cfgA, cfgB Config) *frig {
	t.Helper()
	k := sim.NewKernel()
	net, err := ring.NewDual(k, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	build := func(cfg Config, entryN, accN, exitN int) *Pair {
		tile := accel.NewTile(cfg.Name+".acc", k, 1, 2)
		entry := accel.NewLink(cfg.Name+".e->a", k, net, entryN, accN, 1, 1, tile.In())
		exitNI := sim.NewQueue(cfg.Name+".exit.ni", 2)
		tile.SetDownstream(accel.NewLink(cfg.Name+".a->x", k, net, accN, exitN, 1, 1, exitNI))
		cfg.EntryNode, cfg.ExitNode = entryN, exitN
		cfg.IdlePort = 7
		pair, err := NewPair(k, net, cfg, []*accel.Tile{tile}, entry, exitNI)
		if err != nil {
			t.Fatal(err)
		}
		return pair
	}
	return &frig{
		k: k, net: net,
		pairA: build(cfgA, 0, 1, 2),
		pairB: build(cfgB, 3, 4, 5),
	}
}

func (r *frig) addStreamA(t *testing.T, name string, block int64, portBase int) (*Stream, *cfifo.FIFO, *cfifo.FIFO) {
	t.Helper()
	in, err := cfifo.New(r.k, r.net, cfifo.Config{
		Name: name + ".in", Capacity: 32,
		ProducerNode: 6, ConsumerNode: 0,
		DataPort: portBase, AckPort: portBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cfifo.New(r.k, r.net, cfifo.Config{
		Name: name + ".out", Capacity: 32,
		ProducerNode: 2, ConsumerNode: 7,
		DataPort: portBase, AckPort: portBase + 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &Stream{
		Name: name, Block: block, OutBlock: block, Reconfig: 10,
		In: in, Out: out,
		Engines: []accel.Engine{&accel.Gain{}},
	}
	if err := r.pairA.AddStream(s); err != nil {
		t.Fatal(err)
	}
	return s, in, out
}

// feed writes sequential words start..start+n-1 (the Gain identity engine
// reproduces them verbatim, so output contiguity proves zero loss/dup).
func (r *frig) feed(t *testing.T, f *cfifo.FIFO, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for try := 0; ; try++ {
			if f.TryWrite(sim.Word(start + i)) {
				break
			}
			if try > 1000 {
				t.Fatal("feed stuck")
			}
			r.k.RunAll()
		}
	}
	r.k.RunAll()
}

func recoveryCfg(name string) Config {
	return Config{
		Name: name, EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed,
		DrainTimeout: 200,
		Recovery:     Recovery{Enabled: true, RetryLimit: 2},
	}
}

func TestFreezeGuards(t *testing.T) {
	// Mid-block without recovery: no replay snapshot exists, freeze must
	// refuse rather than silently lose the in-flight block.
	r := newFailoverRig(t, Config{Name: "A", EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed}, recoveryCfg("B"))
	s, in, _ := r.addStreamA(t, "s", 4, 20)
	r.feed(t, in, 0, 4)
	r.pairA.Start()
	if !r.k.RunUntil(10_000, func() bool { return r.pairA.state != stIdle }) {
		t.Fatal("block never started")
	}
	if err := r.pairA.FreezeForFailover(); err == nil {
		t.Fatal("mid-block freeze without recovery accepted")
	}
	r.k.RunAll()
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d", s.Blocks)
	}
	// Idle now: freeze is legal even without recovery, and terminal.
	if err := r.pairA.FreezeForFailover(); err != nil {
		t.Fatal(err)
	}
	if !r.pairA.Failed() {
		t.Fatal("pair not failed after freeze")
	}
	if err := r.pairA.FreezeForFailover(); err == nil {
		t.Fatal("double freeze accepted")
	}
	// Export requires a frozen pair; import requires a paused, healthy one.
	if _, err := r.pairB.ExportStreams(); err == nil {
		t.Fatal("export from a healthy pair accepted")
	}
	exports, err := r.pairA.ExportStreams()
	if err != nil || len(exports) != 1 {
		t.Fatalf("export: %v (%d streams)", err, len(exports))
	}
	if _, err := r.pairA.ImportStream(exports[0]); err == nil {
		t.Fatal("import onto a failed pair accepted")
	}
	if _, err := r.pairB.ImportStream(exports[0]); err == nil {
		t.Fatal("import onto an unpaused pair accepted")
	}
}

// TestFailoverMigrationRoundTrip freezes pair A mid-block and migrates the
// stream to pair B exactly as the controller does: freeze → gate producer →
// settle → export → re-point C-FIFO endpoints → import on paused B → resume.
// The output sequence must be contiguous across the migration: the words the
// aborted attempt consumed are replayed, nothing is lost or duplicated.
func TestFailoverMigrationRoundTrip(t *testing.T) {
	r := newFailoverRig(t, recoveryCfg("A"), recoveryCfg("B"))
	s, in, out := r.addStreamA(t, "m", 4, 20)
	r.feed(t, in, 0, 10) // 2.5 blocks
	r.pairA.Start()

	// Run until pair A is mid-way through its SECOND block.
	if !r.k.RunUntil(50_000, func() bool {
		return s.Blocks == 1 && r.pairA.state == stStreaming && r.pairA.fetched >= 2
	}) {
		t.Fatal("never reached mid-block-2")
	}
	consumed := r.pairA.fetched
	committed := r.pairA.exitCount

	if err := r.pairA.FreezeForFailover(); err != nil {
		t.Fatal(err)
	}
	in.BeginRepoint()
	if in.TryWrite(sim.Word(99)) {
		t.Fatal("producer not gated during repoint")
	}
	r.k.Run(r.k.Now() + 50) // settle: every in-flight word/credit lands

	exports, err := r.pairA.ExportStreams()
	if err != nil {
		t.Fatal(err)
	}
	e := exports[0]
	if len(e.Replay) != consumed {
		t.Fatalf("replay %d words, aborted attempt consumed %d", len(e.Replay), consumed)
	}
	if e.Committed != committed {
		t.Fatalf("committed %d, exit had delivered %d", e.Committed, committed)
	}
	if e.Engines == nil {
		t.Fatal("no block-start engine snapshot exported")
	}

	in.RepointConsumer(3)
	out.RepointProducer(5)
	r.pairB.Start()
	imported := false
	err = r.pairB.RequestPause(func() {
		if _, err := r.pairB.ImportStream(e); err != nil {
			t.Errorf("import: %v", err)
			return
		}
		imported = true
		r.pairB.Resume()
	})
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunAll()
	if !imported {
		t.Fatal("pause/import never completed")
	}

	r.feed(t, in, 10, 6) // complete blocks 3 and 4
	r.k.RunAll()
	if s.Blocks != 4 {
		t.Fatalf("blocks = %d, want 4 (1 on A + 3 on B incl. replay)", s.Blocks)
	}

	// Drain the output FIFO: the identity-engine words must be 0..15 in
	// order — any gap is a lost sample, any repeat a duplicated one.
	for want := 0; want < 16; want++ {
		w, ok := out.TryRead()
		if !ok {
			t.Fatalf("output ended at word %d of 16", want)
		}
		if w != sim.Word(want) {
			t.Fatalf("output word %d = %d (lost or duplicated sample)", want, w)
		}
		r.k.RunAll()
	}
	if _, ok := out.TryRead(); ok {
		t.Fatal("extra output word beyond the 16 fed")
	}
}

// TestImportReplayDiscardsCommitted seeds a migrated in-flight block whose
// consumer already received 2 of 4 output words: the standby must regenerate
// all 4 and emit only the last 2.
func TestImportReplayDiscardsCommitted(t *testing.T) {
	r := newFailoverRig(t, recoveryCfg("A"), recoveryCfg("B"))
	in, err := cfifo.New(r.k, r.net, cfifo.Config{
		Name: "r.in", Capacity: 32, ProducerNode: 6, ConsumerNode: 3,
		DataPort: 24, AckPort: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cfifo.New(r.k, r.net, cfifo.Config{
		Name: "r.out", Capacity: 32, ProducerNode: 5, ConsumerNode: 7,
		DataPort: 24, AckPort: 74,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &Stream{
		Name: "r", Block: 4, OutBlock: 4, Reconfig: 10,
		In: in, Out: out, Engines: []accel.Engine{&accel.Gain{}},
	}
	export := StreamExport{
		Stream:    s,
		Engines:   [][]uint64{(&accel.Gain{}).SaveState()},
		Replay:    []sim.Word{40, 41, 42, 43},
		Committed: 2,
	}
	r.pairB.Start()
	err = r.pairB.RequestPause(func() {
		if _, err := r.pairB.ImportStream(export); err != nil {
			t.Errorf("import: %v", err)
		}
		r.pairB.Resume()
	})
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunAll()
	if s.Blocks != 1 {
		t.Fatalf("replayed block did not complete: blocks = %d", s.Blocks)
	}
	for _, want := range []sim.Word{42, 43} {
		w, ok := out.TryRead()
		if !ok || w != want {
			t.Fatalf("got (%d,%v), want %d (committed words must be discarded, the rest emitted)", w, ok, want)
		}
		r.k.RunAll()
	}
	if _, ok := out.TryRead(); ok {
		t.Fatal("already-committed word emitted again (duplicate at the consumer)")
	}
}

// TestExportDeepCopies is the shallow-copy regression test: after
// ExportStreams returns, mutating the dead pair's internals must not reach
// the export (the standby owns that state now).
func TestExportDeepCopies(t *testing.T) {
	r := newFailoverRig(t, recoveryCfg("A"), recoveryCfg("B"))
	_, in, _ := r.addStreamA(t, "d", 4, 20)
	r.feed(t, in, 0, 10)
	r.pairA.Start()
	if !r.k.RunUntil(50_000, func() bool {
		return r.pairA.state == stStreaming && r.pairA.fetched >= 2 && len(r.pairA.retryState) > 0
	}) {
		t.Fatal("never reached a mid-block state with a retry snapshot")
	}
	if err := r.pairA.FreezeForFailover(); err != nil {
		t.Fatal(err)
	}
	exports, err := r.pairA.ExportStreams()
	if err != nil {
		t.Fatal(err)
	}
	e := exports[0]
	replay0, eng00 := e.Replay[0], e.Engines[0][0]
	// Scribble over the sources the export was copied from.
	r.pairA.blockBuf[0] += 1000
	r.pairA.retryState[0][0] += 1000
	if e.Replay[0] != replay0 {
		t.Fatal("export.Replay aliases the dead pair's block buffer")
	}
	if e.Engines[0][0] != eng00 {
		t.Fatal("export.Engines aliases the dead pair's retry snapshot")
	}
}

// TestSnapshotIsValueOnly locks the StreamSnapshot contract: every field is
// a value type, so a snapshot can never alias live gateway state. Anyone who
// adds a slice/map/pointer field must also add an explicit deep copy and
// update this test.
func TestSnapshotIsValueOnly(t *testing.T) {
	st := reflect.TypeOf(StreamSnapshot{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		switch f.Type.Kind() {
		case reflect.Slice, reflect.Map, reflect.Ptr, reflect.Interface, reflect.Chan, reflect.Func:
			t.Errorf("StreamSnapshot.%s is a reference type (%s): Snapshot() would alias live state",
				f.Name, f.Type.Kind())
		}
	}
}
