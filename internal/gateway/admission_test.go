package gateway

import (
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/cfifo"
)

// newTestFIFO builds a C-FIFO on the rig's ring for live-attach tests.
func newTestFIFO(r *rig, name string, capacity, prod, cons, dataPort, ackPort int) (*cfifo.FIFO, error) {
	return cfifo.New(r.k, r.net, cfifo.Config{
		Name: name, Capacity: capacity,
		ProducerNode: prod, ConsumerNode: cons,
		DataPort: dataPort, AckPort: ackPort,
	})
}

// TestPauseDrainsToBlockBoundary: a pause requested while a block is in
// flight must let that block finish (the pipeline-idle invariant), then
// hold arbitration; Resume picks the next block up where it left off.
func TestPauseDrainsToBlockBoundary(t *testing.T) {
	r := newRig(t, Config{Name: "pd", EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed})
	s, in, _ := r.addStream(t, "s", 4, 16, 16, 20)
	r.fill(t, in, 8) // two blocks
	r.pair.Start()
	// Step until block 0 is mid-streaming, so the pause races an in-flight
	// block rather than landing on an idle pipeline.
	for i := 0; s.SamplesIn == 0 && i < 10_000; i++ {
		r.k.Step()
	}
	if s.SamplesIn == 0 {
		t.Fatal("block 0 never started streaming")
	}
	if s.Blocks != 0 {
		t.Fatalf("block finished before the pause could race it (blocks=%d)", s.Blocks)
	}
	paused := false
	if err := r.pair.RequestPause(func() { paused = true }); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll()
	if !paused || !r.pair.Paused() {
		t.Fatalf("pause did not land: cb=%v paused=%v", paused, r.pair.Paused())
	}
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d at pause, want 1 (in-flight block runs to completion, next must not start)", s.Blocks)
	}
	// Holding: nothing else runs while paused.
	r.k.RunAll()
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d while paused", s.Blocks)
	}
	r.pair.Resume()
	r.k.RunAll()
	if s.Blocks != 2 {
		t.Fatalf("blocks = %d after resume, want 2", s.Blocks)
	}
}

func TestRequestPauseValidation(t *testing.T) {
	r := newRig(t, Config{Name: "pv", EntryCost: 1, ExitCost: 1})
	r.addStream(t, "s", 4, 16, 16, 20)
	r.pair.Start()
	if err := r.pair.RequestPause(nil); err == nil {
		t.Error("nil pause callback accepted")
	}
	if err := r.pair.RequestPause(func() {}); err != nil {
		t.Fatal(err)
	}
	if err := r.pair.RequestPause(func() {}); err == nil {
		t.Error("second pause accepted while one is pending")
	}
	r.k.RunAll()
	if !r.pair.Paused() {
		t.Fatal("pause did not land")
	}
	if err := r.pair.RequestPause(func() {}); err == nil {
		t.Error("pause accepted while already paused")
	}
}

// TestApplySlotsValidation: ApplySlots must refuse to run unpaused and must
// reject any invalid update up front, leaving every slot untouched.
func TestApplySlotsValidation(t *testing.T) {
	r := newRig(t, Config{Name: "av", EntryCost: 1, ExitCost: 1})
	s, _, _ := r.addStream(t, "s", 4, 8, 8, 20)
	r.pair.Start()
	if err := r.pair.ApplySlots([]SlotUpdate{{Stream: 0, SetBlock: 8}}, 1, nil); err == nil {
		t.Error("ApplySlots accepted on an unpaused pair")
	}
	if err := r.pair.RequestPause(func() {}); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll()
	if err := r.pair.ApplySlots([]SlotUpdate{{Stream: 5}}, 1, nil); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := r.pair.ApplySlots([]SlotUpdate{{Stream: 0, SetBlock: 100}}, 1, nil); err == nil {
		t.Error("block larger than the input FIFO accepted")
	}
	if err := r.pair.ApplySlots([]SlotUpdate{{Stream: 0, SetOutBlock: 100}}, 1, nil); err == nil {
		t.Error("out-block larger than the output FIFO accepted")
	}
	if s.Block != 4 || s.OutBlock != 4 {
		t.Fatalf("rejected updates mutated the slot: block=%d out=%d", s.Block, s.OutBlock)
	}
}

// TestApplySlotsReprogramsAndCharges: a valid transaction reprograms ηs,
// charges perSlotCost per touched slot on the configuration bus, and the
// stream then runs with its new block size.
func TestApplySlotsReprogramsAndCharges(t *testing.T) {
	r := newRig(t, Config{Name: "ar", EntryCost: 1, ExitCost: 1, Mode: ReconfigFixed})
	s, in, _ := r.addStream(t, "s", 4, 16, 16, 20)
	r.fill(t, in, 8)
	r.pair.Start()
	if err := r.pair.RequestPause(func() {}); err != nil {
		t.Fatal(err) // lands before the first block: arbitration never starts
	}
	r.k.RunAll()
	done := false
	err := r.pair.ApplySlots([]SlotUpdate{
		{Stream: 0, SetBlock: 8, SetOutBlock: 8},
	}, 10, func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunAll()
	if !done {
		t.Fatal("ApplySlots completion callback never ran")
	}
	if r.pair.SlotCycles != 10 {
		t.Errorf("SlotCycles = %d, want 10 (1 slot x 10 cycles)", r.pair.SlotCycles)
	}
	if s.Block != 8 || s.OutBlock != 8 {
		t.Fatalf("slot not reprogrammed: block=%d out=%d", s.Block, s.OutBlock)
	}
	r.pair.Resume()
	r.k.RunAll()
	if s.Blocks != 1 || s.SamplesIn != 8 {
		t.Fatalf("blocks=%d in=%d, want one 8-sample block", s.Blocks, s.SamplesIn)
	}
}

// TestSuspendedSlotNotServed: a suspended slot is skipped by arbitration
// (its samples buffer in the input C-FIFO) until an ApplySlots transaction
// activates it.
func TestSuspendedSlotNotServed(t *testing.T) {
	r := newRig(t, Config{Name: "su", EntryCost: 1, ExitCost: 1})
	s, in, _ := r.addStream(t, "s", 4, 16, 16, 20)
	s.Suspended = true
	r.fill(t, in, 8)
	r.pair.Start()
	r.k.RunAll()
	if s.Blocks != 0 {
		t.Fatalf("suspended stream served %d blocks", s.Blocks)
	}
	if err := r.pair.RequestPause(func() {}); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll()
	if err := r.pair.ApplySlots([]SlotUpdate{{Stream: 0, Activate: true}}, 1, func() { r.pair.Resume() }); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll()
	if s.Blocks != 2 {
		t.Fatalf("blocks = %d after activation, want 2", s.Blocks)
	}
}

// TestAddStreamLiveRequiresPause: growing the slot table is only legal on
// a drained pair; once added (suspended) and activated, the new stream is
// served alongside the incumbent.
func TestAddStreamLiveRequiresPause(t *testing.T) {
	r := newRig(t, Config{Name: "al", EntryCost: 1, ExitCost: 1})
	sa, ina, _ := r.addStream(t, "a", 4, 32, 32, 20)
	r.fill(t, ina, 8)
	r.pair.Start()
	r.k.RunAll()
	if sa.Blocks != 2 {
		t.Fatalf("incumbent blocks = %d", sa.Blocks)
	}

	mk := func() *Stream {
		in, err := newTestFIFO(r, "b.in", 32, 3, 0, 24, 24)
		if err != nil {
			t.Fatal(err)
		}
		out, err := newTestFIFO(r, "b.out", 32, 2, 4, 24, 74)
		if err != nil {
			t.Fatal(err)
		}
		return &Stream{
			Name: "b", Block: 4, OutBlock: 4, In: in, Out: out,
			Engines:   []accel.Engine{&accel.Gain{}},
			Suspended: true,
		}
	}
	sb := mk()
	if _, err := r.pair.AddStreamLive(sb); err == nil {
		t.Fatal("AddStreamLive accepted on an unpaused pair")
	}
	if err := r.pair.RequestPause(func() {}); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll()
	idx, err := r.pair.AddStreamLive(sb)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("new slot index = %d, want 1", idx)
	}
	r.fill(t, sb.In, 4)
	if err := r.pair.ApplySlots([]SlotUpdate{{Stream: idx, Activate: true}}, 1, func() { r.pair.Resume() }); err != nil {
		t.Fatal(err)
	}
	r.fill(t, ina, 4)
	r.k.RunAll()
	if sa.Blocks != 3 || sb.Blocks != 1 {
		t.Fatalf("blocks a=%d b=%d, want 3/1", sa.Blocks, sb.Blocks)
	}
}

// TestCanaryPassClearsProbation: a quarantined stream readmitted with
// Probation whose canary block completes cleanly reports ok=true and
// rejoins arbitration for good.
func TestCanaryPassClearsProbation(t *testing.T) {
	cfg := Config{
		Name: "cp", EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed,
		DrainTimeout: 200,
		Recovery:     Recovery{Enabled: true, RetryLimit: 2},
	}
	r := newRig(t, cfg)
	s, in, _ := r.addStream(t, "s", 4, 32, 32, 20)
	s.Engines = []accel.Engine{&lossyEngine{dropEvery: 3}} // permanent fault
	var canary []bool
	var quarantines []int
	r.pair.SetCanaryHook(func(_ int, ok bool) { canary = append(canary, ok) })
	r.pair.SetQuarantineObserver(func(i int) { quarantines = append(quarantines, i) })
	r.fill(t, in, 4)
	r.pair.Start()
	r.k.Run(50_000)
	if !s.Quarantined {
		t.Fatal("faulty stream not quarantined")
	}
	if len(quarantines) != 1 || quarantines[0] != 0 {
		t.Fatalf("quarantine observer calls = %v", quarantines)
	}
	// Operator repairs the engine, then readmits on probation.
	s.Engines = []accel.Engine{&accel.Gain{}}
	if err := r.pair.RequestPause(func() {}); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll()
	err := r.pair.ApplySlots([]SlotUpdate{{Stream: 0, Unquarantine: true, Probation: true}},
		1, func() { r.pair.Resume() })
	if err != nil {
		t.Fatal(err)
	}
	r.fill(t, in, 4) // the canary block's input (the original was flushed)
	r.k.Run(100_000)
	if len(canary) != 1 || !canary[0] {
		t.Fatalf("canary outcomes = %v, want [true]", canary)
	}
	if s.Probation || s.Quarantined {
		t.Fatalf("probation=%v quarantined=%v after clean canary", s.Probation, s.Quarantined)
	}
	if s.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1 (the canary)", s.Blocks)
	}
	// Still in arbitration: a second block flows normally.
	r.fill(t, in, 4)
	r.k.RunAll()
	if s.Blocks != 2 {
		t.Fatalf("blocks = %d after canary, want 2", s.Blocks)
	}
}

// TestCanaryFailRequarantinesImmediately: a canary stall gets no retry
// budget — one strike and the stream is back in quarantine, with the hook
// reporting ok=false.
func TestCanaryFailRequarantinesImmediately(t *testing.T) {
	cfg := Config{
		Name: "cf", EntryCost: 2, ExitCost: 1, Mode: ReconfigFixed,
		DrainTimeout: 200,
		Recovery:     Recovery{Enabled: true, RetryLimit: 2},
	}
	r := newRig(t, cfg)
	s, in, _ := r.addStream(t, "s", 4, 32, 32, 20)
	s.Engines = []accel.Engine{&lossyEngine{dropEvery: 3}}
	var canary []bool
	r.pair.SetCanaryHook(func(_ int, ok bool) { canary = append(canary, ok) })
	r.fill(t, in, 4)
	r.pair.Start()
	r.k.Run(50_000)
	if !s.Quarantined {
		t.Fatal("faulty stream not quarantined")
	}
	retriesBefore := s.RetryCount
	// Readmit WITHOUT repairing: the canary must stall and re-quarantine.
	if err := r.pair.RequestPause(func() {}); err != nil {
		t.Fatal(err)
	}
	r.k.RunAll()
	err := r.pair.ApplySlots([]SlotUpdate{{Stream: 0, Unquarantine: true, Probation: true}},
		1, func() { r.pair.Resume() })
	if err != nil {
		t.Fatal(err)
	}
	r.fill(t, in, 4) // the canary block's input (the original was flushed)
	r.k.Run(100_000)
	if len(canary) != 1 || canary[0] {
		t.Fatalf("canary outcomes = %v, want [false]", canary)
	}
	if !s.Quarantined || s.Probation {
		t.Fatalf("quarantined=%v probation=%v after failed canary", s.Quarantined, s.Probation)
	}
	if s.RetryCount != retriesBefore {
		t.Fatalf("canary consumed %d retries, want 0", s.RetryCount-retriesBefore)
	}
	if s.Blocks != 0 {
		t.Errorf("failed canary counted %d completed blocks", s.Blocks)
	}
}

// TestSnapshotMirrorsCounters: the exported snapshot must agree with the
// per-stream fields it replaces.
func TestSnapshotMirrorsCounters(t *testing.T) {
	r := newRig(t, Config{Name: "sn", EntryCost: 1, ExitCost: 1})
	s, in, _ := r.addStream(t, "s", 4, 16, 16, 20)
	r.fill(t, in, 8)
	r.pair.Start()
	r.k.RunAll()
	snaps := r.pair.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot length = %d", len(snaps))
	}
	got := snaps[0]
	if got.Name != s.Name || got.Block != s.Block || got.OutBlock != s.OutBlock ||
		got.Blocks != s.Blocks || got.SamplesIn != s.SamplesIn || got.SamplesOut != s.SamplesOut ||
		got.Stalls != s.StallCount || got.Retries != s.RetryCount ||
		got.Quarantined != s.Quarantined || got.Suspended != s.Suspended ||
		got.Probation != s.Probation || got.MaxTurnaround != s.MaxTurnaround {
		t.Fatalf("snapshot %+v disagrees with stream fields", got)
	}
}
