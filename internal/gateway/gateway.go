// Package gateway implements the paper's contribution in simulated
// hardware: the entry-gateway and exit-gateway tiles that multiplex blocks
// of samples from multiple real-time streams over a shared chain of
// accelerators.
//
// The entry gateway (paper §IV-C) round-robins over its streams. A stream
// is eligible only when (1) a full block of ηs samples is present in its
// input C-FIFO, (2) at least the block's worth of space is free in the
// OUTPUT C-FIFO — the space check that makes the CSDF model conservative —
// and (3) the accelerator pipeline is idle (the previous block fully passed
// the exit gateway). Serving a block means: reconfigure the accelerators
// over the configuration bus (save the outgoing stream's state, load the
// incoming one's — Rs cycles), then DMA the ηs samples to the first
// accelerator at ε cycles each under credit flow control.
//
// The exit gateway converts the hardware flow-controlled stream back to a
// software C-FIFO at δ cycles per sample and notifies the entry gateway
// when the last sample of the block has passed — the pipeline-idle signal.
//
// # Recovery ladder
//
// The pair is also the bottom of the platform's recovery ladder. A drain
// watchdog (Config.DrainTimeout, derived from Eq. 2's "+2"·c0 flush
// allowance) detects a block that stops making progress; Recovery.Enabled
// then aborts it — flush the chain, restore the engines' pre-block state,
// re-issue the block — up to RetryLimit times before the stream is
// quarantined (removed from arbitration so the survivors' Eq. 3
// interference bound shrinks instead of breaking). FreezeForFailover /
// ExportStreams / ImportStream hand a frozen pair's per-stream state to a
// standby pair on the same ring (see internal/mpsoc's FailoverController).
//
// With Recovery.Checkpoint = K the retry unit shrinks from the block to a
// K-input-sample sub-block: at every interior multiple of K (rounded up to
// the chain's decimation) the entry gateway quiesces the pipeline, pays
// Recovery.CheckpointCost on the configuration bus to snapshot the engine
// state, and advances the restart point — so a retry or a migrated
// in-flight block replays at most K words (core.ResumeBound) and the
// per-block bound becomes the adjusted Eq. 2 term
//
//	τ̂s(K) = Rs + (ηs + 2·⌈ηs/K⌉)·c0 + (⌈ηs/K⌉−1)·Csave
//
// (core.TauHatCheckpointed). Recovery.ValueExact additionally stages exit
// words until the enclosing sub-block commits, so a retried or migrated
// block is bit-identical downstream to a fault-free run — partial first
// attempts can never leak corrupted values. BlockRecord.Replayed measures
// the actual replay work per block; internal/conformance checks it against
// retries·K (Options.ReplayBound).
package gateway

import (
	"fmt"

	"accelshare/internal/accel"
	"accelshare/internal/cfifo"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

// Arbitration selects the entry gateway's stream-selection policy.
type Arbitration int

// Arbitration policies.
const (
	// RoundRobin serves eligible streams in rotating order — the paper's
	// policy (§IV-C), which bounds every stream's interference to one block
	// of each other stream (Eq. 3, via [19]).
	RoundRobin Arbitration = iota
	// FixedPriority always serves the lowest-index eligible stream — the
	// ablation showing why RR matters: a saturated high-priority stream
	// starves the rest, so no finite ε̂s exists.
	FixedPriority
)

// ReconfigMode selects how context-switch time is charged.
type ReconfigMode int

// Reconfiguration cost models.
const (
	// ReconfigFixed charges the stream's Rs cycles as one bus transaction —
	// the paper's hardware-supported model (Rs = 4100 cycles).
	ReconfigFixed ReconfigMode = iota
	// ReconfigPerWord charges base + words·perWord for saving the outgoing
	// engines plus the same for loading the incoming ones — the paper's
	// prototype, which switched state "from software" and was dominated by
	// it (ablation A3).
	ReconfigPerWord
)

// Config parameterises a gateway pair.
type Config struct {
	Name string
	// EntryNode/ExitNode are the ring attachment points of the two tiles.
	EntryNode, ExitNode int
	// EntryCost is ε (the paper's prototype: 15 cycles/sample); ExitCost is
	// δ (1 cycle/sample).
	EntryCost, ExitCost sim.Time
	// Mode selects the reconfiguration cost model.
	Mode ReconfigMode
	// Arbiter selects the stream arbitration policy (default RoundRobin).
	Arbiter Arbitration
	// BusBase/BusPerWord parameterise ReconfigPerWord.
	BusBase, BusPerWord sim.Time
	// IdlePort is the entry-gateway ring port for pipeline-idle messages.
	IdlePort int
	// RecordOutputTimes keeps per-sample output timestamps on every stream
	// (memory-heavy; enable in tests and measurements only).
	RecordOutputTimes bool
	// DisableSpaceCheck is the A1 ablation: eligibility ignores the output
	// buffer — the check the paper adds over prior work [8]. With it
	// disabled the exit gateway can block mid-block on a slow consumer,
	// head-of-line blocking every other stream and breaking the temporal
	// model.
	DisableSpaceCheck bool
	// RecordActivity keeps a per-phase activity trace (reconfiguration,
	// streaming, draining spans per block) for Gantt rendering.
	RecordActivity bool
	// BatchTransport commits staged output words (value-exact replay) to the
	// output C-FIFO through the burst write path: the whole stage moves in
	// one component step with identical per-word ring messages, counters and
	// commit instants. It is a pure event/CPU reduction — the observable
	// model is unchanged — and campaigns keep it off so goldens pin the
	// per-word path; TestBatchTransportEquivalence proves the equivalence.
	BatchTransport bool
	// DrainTimeout is the watchdog's progress window, covering every phase
	// of a block (reconfiguration, streaming, draining): if a full window
	// passes without the block advancing — no sample issued, no sample
	// drained, no phase transition — the gateway declares the chain stalled
	// (a fault: sample loss inside an accelerator, a wedged link or NI, a
	// lost pipeline-idle notification) and invokes OnStall. The model gives
	// the natural setting: between two progress events the hardware can
	// never legitimately need more than ~2·c0 plus interconnect transit, so
	// a small multiple of c0 is safe. (Reconfiguration bus transfers count
	// as progress for as long as the bus is occupied, so Rs may exceed the
	// window.) 0 disables the watchdog. Historical name: the first version
	// only armed the drain phase.
	DrainTimeout sim.Time
	// OnStall is called once per detected stall with the stream index.
	OnStall func(stream int)
	// Recovery configures what happens after a stall is detected. The zero
	// value keeps the historical detect-only behaviour (the pair stays
	// wedged).
	Recovery Recovery
	// DropIdle, when non-nil, is consulted before the exit gateway sends a
	// pipeline-idle notification; returning true swallows the message —
	// the "lost idle notification" fault-injection hook.
	DropIdle func(stream int, block uint64) bool
	// RecordTurnarounds keeps one BlockRecord per completed block on every
	// stream, so tests and the fault campaign can check per-block latency
	// re-convergence after a disturbance.
	RecordTurnarounds bool
}

// Recovery configures watchdog-driven fault recovery. When enabled, a
// detected stall triggers flush → retry → (past RetryLimit) quarantine
// instead of leaving the pair wedged: the chain is cleared and its credit
// state reset, the aborted block is replayed from a local snapshot after an
// abort-and-reconfigure, and a stream whose block keeps stalling is removed
// from arbitration so the surviving streams return to their Eq. 2/4 bounds.
type Recovery struct {
	// Enabled turns recovery on.
	Enabled bool
	// RetryLimit is how many times one block may be retried before its
	// stream is quarantined (0 = quarantine on the first stall).
	RetryLimit int
	// FlushDelay is the settle time between aborting a block and clearing
	// the chain, so every in-flight word and credit on the interconnect has
	// landed. It must exceed the worst-case interconnect transit plus one
	// sample service; defaults to DrainTimeout, which satisfies that by
	// construction.
	FlushDelay sim.Time
	// OnQuarantine is called once per quarantined stream.
	OnQuarantine func(stream int)
	// Checkpoint is the checkpoint interval K in input samples: every K
	// samples the entry gateway quiesces the sub-block (stops issuing and
	// waits for the exit side to deliver every output of the samples issued
	// so far), snapshots the engines' state over the configuration bus and
	// records the exit-side commit watermark. A retry — and a
	// failover-migrated in-flight block — then resumes from the last
	// checkpoint instead of block start, bounding replay work to O(K)
	// (core.ResumeBound) where full-block replay is O(ηs). The quiesce and
	// snapshot stretch the clean-run service latency to τ̂s(K)
	// (core.TauHatCheckpointed). K is rounded up per stream to a multiple of
	// its decimation so every boundary maps to an exact output position.
	// 0 disables checkpointing (historical whole-block replay); the interval
	// is only honoured when Enabled is set (the snapshot rides the recovery
	// machinery).
	Checkpoint int64
	// CheckpointCost is the configuration-bus cost of one checkpoint
	// snapshot, charged like a reconfiguration (and, like Rs, counting as
	// watchdog progress while the bus is busy).
	CheckpointCost sim.Time
	// ValueExact holds exit-side output in a staging buffer until the block
	// completes or a checkpoint commits it, instead of committing each word
	// to the output C-FIFO as it drains. A retried or migrated block is then
	// bit-identical downstream to a fault-free run — not only count- and
	// timing-identical — because a first attempt's partial output is rolled
	// back on abort rather than leaking values the replay cannot reproduce.
	ValueExact bool
}

// ActivityKind labels one span of gateway activity.
type ActivityKind int

// Activity kinds.
const (
	ActReconfig ActivityKind = iota
	ActStream
	ActDrain
	// ActFlush is a recovery span: from stall detection to the chain being
	// cleared and credit state reset.
	ActFlush
	// ActFailover is a controller-level span covering a whole chain
	// failover (freeze → settle → migrate → resume); recorded with
	// Stream = -1 since it is not attributable to one stream.
	ActFailover
	// ActCheckpoint is a mid-block checkpoint span: stage drain, engine
	// snapshot over the configuration bus, watermark record.
	ActCheckpoint
)

func (k ActivityKind) String() string {
	switch k {
	case ActReconfig:
		return "reconfig"
	case ActStream:
		return "stream"
	case ActDrain:
		return "drain"
	case ActFlush:
		return "flush"
	case ActFailover:
		return "failover"
	case ActCheckpoint:
		return "checkpoint"
	}
	return "?"
}

// Activity is one recorded span.
type Activity struct {
	Stream int
	Kind   ActivityKind
	Start  sim.Time
	End    sim.Time
}

// Stream is one data stream bound to a gateway pair.
type Stream struct {
	Name string
	// Block is ηs in input samples; OutBlock is the samples the chain emits
	// per block (Block divided by the chain's total decimation). Block must
	// be a multiple of the chain's decimation so OutBlock is exact.
	Block, OutBlock int64
	// Reconfig is Rs for ReconfigFixed.
	Reconfig sim.Time
	// In is the input C-FIFO (the gateway is its consumer); Out is the
	// output C-FIFO (the exit gateway is its producer).
	In, Out *cfifo.FIFO
	// Engines holds one engine instance per accelerator tile in chain
	// order, owning this stream's configuration and state.
	Engines []accel.Engine

	saved  [][]uint64
	loaded bool

	// Failover migration state: a stream imported mid-block carries the
	// input words its aborted attempt consumed on the failed chain
	// (pendingReplay) and how many of its output words the consumer had
	// already received (pendingCommitted). The next beginBlock replays the
	// words and discards the already-committed outputs at the exit gateway,
	// so the consumer sees every block position exactly once.
	// pendingReplayStart is the absolute input position the replay begins at
	// — 0 for a block-start replay, the last checkpoint boundary when the
	// failed chain was checkpointing — so samples the checkpoint already
	// covers are neither replayed nor regenerated.
	pendingReplay      []sim.Word
	pendingCommitted   int64
	pendingReplayStart int64

	// Stats.
	Blocks        uint64
	SamplesIn     uint64
	SamplesOut    uint64
	queued        bool
	queuedAt      sim.Time
	MaxTurnaround sim.Time
	OutTimes      []sim.Time

	// Fault/recovery stats. StallCount counts watchdog firings attributed
	// to this stream; RetryCount counts block replays; Quarantined is set
	// (at QuarantinedAt) when the stream was removed from arbitration.
	StallCount    uint64
	RetryCount    uint64
	Quarantined   bool
	QuarantinedAt sim.Time
	// Suspended removes the stream from arbitration by admission-control
	// decision — distinct from fault quarantine, which is involuntary and
	// carries retry history. Set it only through ApplySlots (or before
	// AddStreamLive), never while the stream's block is in flight.
	Suspended bool
	// Probation marks a readmitted stream whose next block is a canary: one
	// clean completion clears the flag (canary passed), one stall skips the
	// retry budget and re-quarantines immediately (canary failed). The
	// pair's canary hook observes both edges.
	Probation bool
	// Released marks a tombstone left behind by ReleaseSlot: the real stream
	// object migrated to another pair and this placeholder only keeps the
	// slot table's indices stable (slot tables never shrink — the zombie-slot
	// precedent). A released slot carries no FIFOs and no engine state and is
	// permanently Suspended; every arbitration and failover path skips it.
	Released bool
	// Turnarounds holds one record per completed block (RecordTurnarounds).
	Turnarounds []BlockRecord
}

// ReplayResidue is the number of input words the stream's next block must
// replay — the aborted-attempt residue it carries from a quarantine flush or
// a migration. With checkpointing every K samples it is ≤ K; the rebalancer
// uses it to pick cheap victims (smallest-residue-first).
func (s *Stream) ReplayResidue() int { return len(s.pendingReplay) }

// BlockRecord describes one completed block (Config.RecordTurnarounds):
// when it became eligible, when its service (first attempt) started, when
// the pipeline-idle notification closed it, and how many retries it needed.
// Done-Queued is the turnaround measured against γ̂s (Eq. 4); Done-Started
// is the service latency measured against τ̂s (Eq. 2).
type BlockRecord struct {
	Queued  sim.Time
	Started sim.Time
	Done    sim.Time
	Retries int
	// Replayed counts the input words re-issued beyond the block's first
	// pass — the measured replay work its retries cost. Bounded by
	// Retries × ηs without checkpointing, by Retries × K with a checkpoint
	// interval K (conformance.Options.ReplayBound checks exactly this).
	Replayed int64
}

type entryState int

const (
	stIdle entryState = iota
	stReconfig
	stStreaming
	stDraining
	// stFlushing: a stall was detected and the in-flight block aborted; the
	// pair waits out the flush settle delay before clearing the chain.
	stFlushing
	// stCheckpoint: the sub-block quiesced (entry stopped at the boundary,
	// exit delivered every output); the pair is committing the stage and
	// snapshotting engine state over the configuration bus.
	stCheckpoint
)

// Pair is one entry/exit gateway pair managing a chain of accelerator
// tiles.
type Pair struct {
	cfg     Config
	k       *sim.Kernel
	net     *ring.Dual
	tiles   []*accel.Tile
	bus     *accel.ConfigBus
	link    *accel.Link // entry gateway -> first accelerator
	exitNI  *sim.Queue  // last accelerator -> exit gateway NI
	streams []*Stream

	// Entry state machine.
	state    entryState
	active   int // index into streams
	rr       int
	sent     int64
	dmaBusy  bool
	holding  bool
	heldWord sim.Word
	step     *sim.Waker

	// Recovery state. blockEpoch identifies the current block attempt; it
	// is bumped on every completion, flush, retry and quarantine so stale
	// scheduled events (watchdog checks, in-flight DMA/exit completions,
	// idle-message retries) cancel themselves. blockBuf snapshots the input
	// words consumed for the active block so a retry can replay them;
	// fetched indexes the next word of the current attempt. retryState is
	// the engines' state at block start; exitDiscard counts replayed output
	// words the exit gateway must swallow because they were already
	// committed before an abort.
	blockEpoch   uint64
	blockRetries int
	blockBuf     []sim.Word
	fetched      int
	retryState   [][]uint64
	exitDiscard  int64
	blockQueued  sim.Time
	blockStarted sim.Time

	// Checkpoint state. blockBase is the absolute input position the current
	// replay window starts at: 0 at block start, advanced to each committed
	// checkpoint boundary (blockBuf, fetched and sent are all relative to
	// it, and retryState holds the engines' snapshot AT blockBase). ckptEvery
	// is the active block's checkpoint interval, already rounded to the
	// stream's decimation; ckptNext is the next quiesce boundary (== Block
	// when no checkpoint remains). exitDelivered counts absolute output
	// positions the exit side has handled this attempt — committed, staged
	// or discarded — so the quiesce "sub-block fully drained" test works
	// even while a replay is still swallowing discards. stage holds
	// value-exact output words received but not yet committed to the output
	// C-FIFO; blockIssued and blockFresh measure replay work (Replayed =
	// blockIssued − blockFresh at completion).
	blockBase     int64
	ckptEvery     int64
	ckptNext      int64
	exitDelivered int64
	stage         []sim.Word
	blockIssued   int64
	blockFresh    int64

	// Failover state. failed marks a pair retired by FreezeForFailover
	// (terminal: both state machines become no-ops); abortedStream is the
	// stream whose block the freeze aborted (-1 = none); loadedStream is
	// the stream whose engine objects hold live (not saved) state;
	// resumeCommitted seeds the exit counters when a migrated block
	// resumes; stallObs is the failover controller's stall observer,
	// parallel to Config.OnStall (which belongs to the platform builder).
	failed          bool
	abortedStream   int
	loadedStream    int
	resumeCommitted int64
	stallObs        func(stream int)

	// Exit state machine.
	exitBusy    bool
	exitCount   int64
	exitHolding bool
	exitHeld    sim.Word
	exitStep    *sim.Waker

	// Utilisation accounting (cycles).
	ReconfigCycles  uint64
	StreamingCycles uint64
	lastStreamStart sim.Time
	startTime       sim.Time
	started         bool

	// Admission-control state: paused stops arbitration at the next block
	// boundary (RequestPause/Resume); pauseCb is the pending drain callback;
	// the hooks let an external controller observe canary and quarantine
	// edges without owning the Config.
	paused       bool
	pauseCb      func()
	onCanary     func(stream int, ok bool)
	onQuarantine func(stream int)

	// SlotCycles accounts configuration-bus cycles spent reprogramming
	// stream slots during admission-control mode transitions (kept apart
	// from ReconfigCycles, which is per-block context switching).
	SlotCycles uint64

	// Activities is the recorded span trace (when cfg.RecordActivity).
	Activities []Activity
	phaseStart sim.Time

	// Stalls counts watchdog firings (chain faults detected); Retries and
	// Quarantines count recovery actions; IdleDropped counts pipeline-idle
	// notifications swallowed by the DropIdle fault hook; LateIdles counts
	// idle notifications that arrived after their block had already been
	// aborted (a flush racing a slow notification).
	Stalls      uint64
	Retries     uint64
	Quarantines uint64
	IdleDropped uint64
	LateIdles   uint64

	// Checkpoints counts committed mid-block checkpoints; CheckpointCycles
	// accounts their configuration-bus snapshot time (kept apart from
	// ReconfigCycles, which is per-block context switching).
	Checkpoints      uint64
	CheckpointCycles uint64
}

// NewPair wires a gateway pair around existing accelerator tiles. The
// caller provides the entry link (to the first tile) and the exit NI queue
// (destination of the last tile's link); tiles are listed in chain order.
func NewPair(k *sim.Kernel, net *ring.Dual, cfg Config, tiles []*accel.Tile, entryLink *accel.Link, exitNI *sim.Queue) (*Pair, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("gateway %q: no accelerator tiles", cfg.Name)
	}
	if cfg.EntryCost == 0 {
		cfg.EntryCost = 1
	}
	if cfg.ExitCost == 0 {
		cfg.ExitCost = 1
	}
	p := &Pair{
		cfg: cfg, k: k, net: net, tiles: tiles,
		bus: accel.NewConfigBus(k, cfg.BusBase, cfg.BusPerWord), link: entryLink, exitNI: exitNI,
		active: -1, abortedStream: -1, loadedStream: -1,
	}
	p.step = sim.NewWaker(k, p.entryRun)
	p.exitStep = sim.NewWaker(k, p.exitRun)
	entryLink.SubscribeCredits(p.step)
	entryLink.SubscribeRingSpace(p.step)
	exitNI.SubscribeData(p.exitStep)
	// Pipeline-idle notifications arrive on the entry tile's idle port.
	// They travel the counter-rotating credit ring: the entry gateway sits
	// UPSTREAM of the exit gateway, so the data-ring path would be almost a
	// full rotation — and would grow with every chain added to the platform,
	// leaking an O(ring-size) term into measured service latency that the
	// temporal model (Eq. 2) has no business covering. On the credit ring
	// the hop count is the chain length, a per-chain constant.
	net.Credit.Node(cfg.EntryNode).Bind(cfg.IdlePort, func(m ring.Message) {
		p.onPipelineIdle(int(m.W))
	})
	return p, nil
}

// AddStream registers a stream. Must be called before Start.
func (p *Pair) AddStream(s *Stream) error {
	if s.Block <= 0 {
		return fmt.Errorf("gateway: stream %q needs a positive block size", s.Name)
	}
	if s.OutBlock <= 0 {
		return fmt.Errorf("gateway: stream %q needs a positive output block size", s.Name)
	}
	if len(s.Engines) != len(p.tiles) {
		return fmt.Errorf("gateway: stream %q has %d engines for %d tiles", s.Name, len(s.Engines), len(p.tiles))
	}
	if s.In.Capacity() < int(s.Block) {
		return fmt.Errorf("gateway: stream %q input FIFO %d < block %d (can never assemble a block)",
			s.Name, s.In.Capacity(), s.Block)
	}
	if s.Out.Capacity() < int(s.OutBlock) {
		return fmt.Errorf("gateway: stream %q output FIFO %d < out-block %d (space check can never pass)",
			s.Name, s.Out.Capacity(), s.OutBlock)
	}
	s.saved = make([][]uint64, len(s.Engines))
	p.streams = append(p.streams, s)
	s.In.SubscribeData(p.step)
	s.Out.SubscribeSpace(p.step)
	return nil
}

// Streams returns the registered streams.
func (p *Pair) Streams() []*Stream { return p.streams }

// Start arms the gateway pair; wake-ups arriving earlier are ignored.
func (p *Pair) Start() {
	p.started = true
	p.startTime = p.k.Now()
	p.step.Wake()
}

// ready reports whether stream i can be served now: not quarantined or
// suspended, full input block, reserved output space. A migrated stream's
// pending replay words count toward its block — they were consumed from
// the input FIFO on the failed chain and will be replayed locally.
func (p *Pair) ready(i int) bool {
	s := p.streams[i]
	if s.Quarantined || s.Suspended {
		return false
	}
	need := int(s.Block-s.pendingReplayStart) - len(s.pendingReplay)
	if need < 0 {
		need = 0
	}
	if s.In.Len() < need {
		return false
	}
	if p.cfg.DisableSpaceCheck {
		return true
	}
	return s.Out.Space() >= int(s.OutBlock)
}

// trackQueued records the instant each stream becomes eligible, for
// turnaround (γs) measurement against Eq. 4.
func (p *Pair) trackQueued() {
	for i, s := range p.streams {
		if s.Quarantined || s.Suspended {
			continue
		}
		if !s.queued && p.ready(i) && !(p.state != stIdle && i == p.active) {
			s.queued = true
			s.queuedAt = p.k.Now()
		}
	}
}

// entryRun is the entry gateway's step function.
func (p *Pair) entryRun() {
	if !p.started || p.failed {
		return
	}
	p.trackQueued()
	switch p.state {
	case stIdle:
		// A pending pause wins over arbitration: the pair is at a block
		// boundary (drained), so the mode transition can begin.
		if p.pauseCb != nil {
			cb := p.pauseCb
			p.pauseCb = nil
			p.paused = true
			cb()
			return
		}
		if p.paused {
			return
		}
		p.tryStart()
	case stStreaming:
		p.pump()
	}
}

func (p *Pair) tryStart() {
	n := len(p.streams)
	if n == 0 {
		return
	}
	base := p.rr
	if p.cfg.Arbiter == FixedPriority {
		base = 0
	}
	for off := 0; off < n; off++ {
		i := (base + off) % n
		if p.ready(i) {
			p.beginBlock(i)
			return
		}
	}
}

// beginBlock starts serving stream i: reconfiguration first.
func (p *Pair) beginBlock(i int) {
	p.state = stReconfig
	prev := p.active
	p.active = i
	p.rr = (i + 1) % len(p.streams)
	s := p.streams[i]
	p.blockEpoch++
	p.blockRetries = 0
	p.blockBuf = p.blockBuf[:0]
	p.fetched = 0
	p.exitDiscard = 0
	p.resumeCommitted = 0
	p.blockBase = 0
	p.stage = p.stage[:0]
	if len(s.pendingReplay) > 0 || s.pendingCommitted > 0 || s.pendingReplayStart > 0 {
		// Migrated in-flight block: replay the words its aborted attempt
		// consumed on the failed chain, starting at the failed chain's last
		// checkpoint (block start when it was not checkpointing); output
		// words the consumer already received beyond that point are
		// regenerated and discarded at the exit.
		p.blockBuf = append(p.blockBuf, s.pendingReplay...)
		p.resumeCommitted = s.pendingCommitted
		p.blockBase = s.pendingReplayStart
		s.pendingReplay = nil
		s.pendingCommitted = 0
		s.pendingReplayStart = 0
	}
	p.blockIssued = 0
	// Fresh work excludes a migrated block's seeded replay residue: those
	// words were already issued once on the failed chain, so re-issuing them
	// here is replay, not first-pass work.
	p.blockFresh = s.Block - p.blockBase - int64(len(p.blockBuf))
	p.ckptEvery = 0
	if p.cfg.Recovery.Enabled && p.cfg.Recovery.Checkpoint > 0 {
		// Round K up to the stream's decimation so every boundary maps to an
		// exact output position (the quiesce test needs it).
		k := p.cfg.Recovery.Checkpoint
		d := s.Block / s.OutBlock
		if r := k % d; r != 0 {
			k += d - r
		}
		p.ckptEvery = k
	}
	p.blockStarted = p.k.Now()
	if s.queued {
		p.blockQueued = s.queuedAt
	} else {
		p.blockQueued = p.k.Now()
	}
	p.armWatchdog()

	var cost sim.Time
	switch p.cfg.Mode {
	case ReconfigFixed:
		cost = s.Reconfig
	case ReconfigPerWord:
		words := 0
		if prev >= 0 {
			for _, e := range p.streams[prev].Engines {
				words += e.StateWords()
			}
		}
		for _, e := range s.Engines {
			words += e.StateWords()
		}
		cost = 2*p.cfg.BusBase + sim.Time(words)*p.cfg.BusPerWord
	}
	p.ReconfigCycles += uint64(cost)
	p.phaseStart = p.k.Now()
	p.bus.TransferCycles(cost, func() {
		if p.failed {
			return // the pair froze for failover while the bus was busy
		}
		if err := p.swapEngines(prev, i); err != nil {
			panic(fmt.Sprintf("gateway %s: %v", p.cfg.Name, err))
		}
		if p.cfg.Recovery.Enabled {
			// Snapshot the engines' state at block start so a retry can
			// restore it (abort-and-reconfigure) and replay identically.
			p.retryState = p.retryState[:0]
			for _, e := range s.Engines {
				p.retryState = append(p.retryState, e.SaveState())
			}
		}
		p.recordActivity(ActReconfig)
		// Configure the exit gateway for the new block (its own port on the
		// configuration bus, per Fig. 4b). A migrated block resumes with
		// its already-committed output words pre-counted; the ones the
		// replay will regenerate — positions past the resume point — are
		// marked for discard (see Stream.pendingReplay). A checkpointed
		// resume regenerates nothing before its watermark, so its discard
		// count is zero by construction.
		p.exitCount = p.resumeCommitted
		p.exitDelivered = p.blockBase / (s.Block / s.OutBlock)
		p.exitDiscard = p.resumeCommitted - p.exitDelivered
		p.resumeCommitted = 0
		p.ckptNext = p.nextCkptBoundary(s)
		p.state = stStreaming
		p.sent = 0
		p.lastStreamStart = p.k.Now()
		s.queued = true // ensure turnaround accounting has a reference
		p.pump()
	})
}

// swapEngines saves the outgoing stream's accelerator state and restores
// the incoming stream's. The tiles must be idle — reconfiguring while data
// is in flight would corrupt it (paper §IV: "the entry- and exit-gateway
// work together to ensure that the pipeline is idle").
func (p *Pair) swapEngines(prev, next int) error {
	if prev >= 0 {
		ps := p.streams[prev]
		for t, e := range ps.Engines {
			ps.saved[t] = e.SaveState()
		}
	}
	ns := p.streams[next]
	for t, e := range ns.Engines {
		if ns.loaded {
			if err := e.LoadState(ns.saved[t]); err != nil {
				return fmt.Errorf("restore %s tile %d: %w", ns.Name, t, err)
			}
		}
		if err := p.tiles[t].SetEngine(e); err != nil {
			return err
		}
	}
	ns.loaded = true
	p.loadedStream = next
	return nil
}

// pump advances the DMA copying the active block into the chain.
func (p *Pair) pump() {
	if p.state != stStreaming || p.dmaBusy {
		return
	}
	if p.holding {
		if !p.link.TrySend(p.heldWord) {
			return // woken again by credits/ring space
		}
		p.holding = false
		p.sent++
		p.afterSample()
		return
	}
	s := p.streams[p.active]
	if p.blockBase+p.sent >= p.ckptNext {
		// Sub-block issued in full (ckptNext == Block when not
		// checkpointing): wait for the exit side to drain it — the quiesce
		// that makes the checkpoint snapshot consistent.
		return
	}
	var w sim.Word
	if p.fetched < len(p.blockBuf) {
		// Retried block: replay from the local snapshot instead of the
		// input C-FIFO (whose words were consumed by the aborted attempt).
		w = p.blockBuf[p.fetched]
	} else {
		var ok bool
		w, ok = s.In.TryRead()
		if !ok {
			panic(fmt.Sprintf("gateway %s: input underflow on %s — eligibility check broken", p.cfg.Name, s.Name))
		}
		if p.cfg.Recovery.Enabled {
			p.blockBuf = append(p.blockBuf, w)
		}
	}
	p.fetched++
	p.dmaBusy = true
	epoch := p.blockEpoch
	p.k.Schedule(p.cfg.EntryCost, func() {
		if p.blockEpoch != epoch {
			return // block aborted mid-DMA by a flush
		}
		p.dmaBusy = false
		p.StreamingCycles += uint64(p.cfg.EntryCost)
		if !p.link.TrySend(w) {
			p.holding = true
			p.heldWord = w
			return
		}
		p.sent++
		p.afterSample()
	})
}

func (p *Pair) afterSample() {
	s := p.streams[p.active]
	s.SamplesIn++
	p.blockIssued++
	if p.blockBase+p.sent >= s.Block {
		s.In.Ack() // release any batched input space promptly
		p.recordActivity(ActStream)
		p.state = stDraining
		return
	}
	if p.blockBase+p.sent >= p.ckptNext {
		s.In.Ack() // progressive input-space release at the boundary
		return     // quiesce: the exit side triggers the checkpoint once drained
	}
	p.pump()
}

// nextCkptBoundary returns the absolute input position of the next
// checkpoint quiesce after blockBase — the block end when checkpointing is
// off or no interior boundary remains.
func (p *Pair) nextCkptBoundary(s *Stream) int64 {
	if p.ckptEvery <= 0 {
		return s.Block
	}
	n := (p.blockBase/p.ckptEvery + 1) * p.ckptEvery
	if n >= s.Block {
		return s.Block
	}
	return n
}

// wdSnap is the watchdog's progress fingerprint: while a block is in
// flight, any change to it between two checks means the chain advanced.
type wdSnap struct {
	epoch       uint64
	state       entryState
	sent        int64
	fetched     int
	exitCount   int64
	exitDiscard int64
	// Checkpoint progress: the quiesce wait advances exitDelivered (not
	// exitCount while discards drain), a checkpoint commit advances
	// blockBase, and a stage drain shrinks staged.
	delivered int64
	base      int64
	staged    int
}

func (p *Pair) snapshot() wdSnap {
	return wdSnap{p.blockEpoch, p.state, p.sent, p.fetched, p.exitCount, p.exitDiscard,
		p.exitDelivered, p.blockBase, len(p.stage)}
}

// armWatchdog starts the progress-based stall detector for the current
// block attempt. It covers every phase — reconfiguration, streaming and
// drain — by re-arming itself as long as the fingerprint keeps changing; a
// full DrainTimeout window with zero progress is a stall. Timers are bound
// to the block epoch, so a timer armed for block N can never fire a
// spurious stall after block N completed and block N+1 is in flight.
func (p *Pair) armWatchdog() {
	if p.cfg.DrainTimeout == 0 {
		return
	}
	snap := p.snapshot()
	p.k.Schedule(p.cfg.DrainTimeout, func() { p.watchdogCheck(snap) })
}

func (p *Pair) watchdogCheck(snap wdSnap) {
	if p.blockEpoch != snap.epoch || p.state == stIdle || p.state == stFlushing {
		return // block completed, or a flush is already under way
	}
	cur := p.snapshot()
	busPhase := p.state == stReconfig || p.state == stCheckpoint
	if cur != snap || (busPhase && p.bus.BusyUntil() > p.k.Now()) {
		// Progress since the last check (an occupied configuration bus
		// counts: Rs — or a checkpoint snapshot — may legitimately exceed
		// the window): re-arm.
		p.k.Schedule(p.cfg.DrainTimeout, func() { p.watchdogCheck(cur) })
		return
	}
	p.stallDetected()
}

// stallDetected handles a watchdog expiry: account the fault, notify, and —
// when recovery is enabled — start the flush.
func (p *Pair) stallDetected() {
	stream := p.active
	p.Stalls++
	p.streams[stream].StallCount++
	if p.cfg.OnStall != nil {
		p.cfg.OnStall(stream)
	}
	if p.stallObs != nil {
		p.stallObs(stream)
	}
	if p.failed {
		return // a stall observer triggered failover: the pair is retired
	}
	if !p.cfg.Recovery.Enabled {
		return // detect-only (historical behaviour): the pair stays wedged
	}
	p.beginFlush()
}

// beginFlush aborts the in-flight block: freeze the entry and exit state
// machines (the epoch bump turns their in-flight completions into no-ops),
// then wait out the settle delay so every word and credit still travelling
// the interconnect has landed before the chain is cleared.
func (p *Pair) beginFlush() {
	p.state = stFlushing
	p.blockEpoch++
	p.dmaBusy = false
	p.holding = false
	p.exitBusy = false
	p.exitHolding = false
	p.phaseStart = p.k.Now()
	delay := p.cfg.Recovery.FlushDelay
	if delay == 0 {
		delay = p.cfg.DrainTimeout
	}
	epoch := p.blockEpoch
	p.k.Schedule(delay, func() {
		if p.blockEpoch != epoch || p.state != stFlushing {
			return
		}
		p.completeFlush()
	})
}

// completeFlush clears the chain — tile NI queues, in-process samples,
// pending outputs, the exit NI — and resets every link's credit state, then
// decides between retry and quarantine.
func (p *Pair) completeFlush() {
	for _, t := range p.tiles {
		t.Abort()
	}
	p.exitNI.Clear()
	p.link.Reset()
	for _, t := range p.tiles {
		if l := t.Downstream(); l != nil {
			l.Reset()
		}
	}
	p.recordActivity(ActFlush)
	s := p.streams[p.active]
	if s.Probation {
		// The canary block stalled: no retry budget on probation — the
		// transient-fault hypothesis is refuted, back to quarantine.
		p.quarantine()
		return
	}
	if p.blockRetries >= p.cfg.Recovery.RetryLimit {
		p.quarantine()
		return
	}
	p.blockRetries++
	p.Retries++
	s.RetryCount++
	p.retryBlock()
}

// retryBlock re-issues the aborted block: reload the engines' snapshot at
// the replay window's start — block start, or the last committed checkpoint
// — over the configuration bus (abort-and-reconfigure, charged like a
// context switch), then replay the locally buffered input words. Output
// words that were already committed to the output C-FIFO before the abort
// are regenerated by the replay and discarded at the exit gateway, so the
// consumer sees each block position once; value-exact staged words were
// never committed, so they are rolled back and regenerated for real.
func (p *Pair) retryBlock() {
	s := p.streams[p.active]
	if n := int64(len(p.stage)); n > 0 {
		p.exitCount -= n
		p.stage = p.stage[:0]
	}
	p.state = stReconfig
	var cost sim.Time
	switch p.cfg.Mode {
	case ReconfigFixed:
		cost = s.Reconfig
	case ReconfigPerWord:
		words := 0
		for _, e := range s.Engines {
			words += e.StateWords()
		}
		cost = p.cfg.BusBase + sim.Time(words)*p.cfg.BusPerWord
	}
	p.ReconfigCycles += uint64(cost)
	p.phaseStart = p.k.Now()
	epoch := p.blockEpoch
	p.bus.TransferCycles(cost, func() {
		if p.blockEpoch != epoch {
			return
		}
		for t, e := range s.Engines {
			if err := e.LoadState(p.retryState[t]); err != nil {
				panic(fmt.Sprintf("gateway %s: retry restore %s tile %d: %v", p.cfg.Name, s.Name, t, err))
			}
		}
		p.recordActivity(ActReconfig)
		p.state = stStreaming
		p.sent = 0
		p.fetched = 0
		p.exitDelivered = p.blockBase / (s.Block / s.OutBlock)
		p.exitDiscard = p.exitCount - p.exitDelivered
		p.lastStreamStart = p.k.Now()
		p.armWatchdog()
		p.pump()
	})
}

// quarantine removes the active stream from arbitration for good: its
// aborted block is discarded and its share of the chain released, so the
// surviving streams' interference term (Eq. 3/4) shrinks to the healthy
// set and their bounds hold again — graceful degradation.
func (p *Pair) quarantine() {
	s := p.streams[p.active]
	wasCanary := s.Probation
	s.Probation = false
	s.Quarantined = true
	s.QuarantinedAt = p.k.Now()
	s.queued = false
	p.Quarantines++
	p.blockBuf = p.blockBuf[:0]
	p.fetched = 0
	p.stage = p.stage[:0] // staged words belong to the discarded block
	p.blockBase = 0
	p.state = stIdle
	if p.cfg.Recovery.OnQuarantine != nil {
		p.cfg.Recovery.OnQuarantine(p.active)
	}
	if p.onQuarantine != nil {
		p.onQuarantine(p.active)
	}
	if wasCanary && p.onCanary != nil {
		p.onCanary(p.active, false)
	}
	p.step.Wake()
}

// recordActivity closes the current phase span (when enabled).
func (p *Pair) recordActivity(kind ActivityKind) {
	if !p.cfg.RecordActivity {
		return
	}
	p.Activities = append(p.Activities, Activity{
		Stream: p.active, Kind: kind, Start: p.phaseStart, End: p.k.Now(),
	})
	p.phaseStart = p.k.Now()
}

// exitRun is the exit gateway's step function: one sample per δ cycles from
// the NI to the output C-FIFO.
func (p *Pair) exitRun() {
	if p.exitBusy || p.state == stFlushing || p.failed {
		return
	}
	if p.exitHolding {
		s := p.streams[p.active]
		if !s.Out.TryWrite(p.exitHeld) {
			p.k.Schedule(2, func() { p.exitStep.Wake() })
			return
		}
		p.exitHolding = false
		p.afterExitWord(true)
		return
	}
	w, ok := p.exitNI.TryPop()
	if !ok {
		return
	}
	p.exitBusy = true
	epoch := p.blockEpoch
	p.k.Schedule(p.cfg.ExitCost, func() {
		if p.blockEpoch != epoch {
			return // block aborted while this word was in the exit DMA
		}
		p.exitBusy = false
		if p.exitDiscard > 0 {
			// Replayed word whose original was already committed to the
			// output C-FIFO before the abort: swallow it so the consumer sees
			// each block position exactly once.
			p.exitDiscard--
			p.afterExitWord(false)
			return
		}
		s := p.streams[p.active]
		if p.cfg.Recovery.ValueExact {
			// Hold the word in the staging buffer; it reaches the output
			// C-FIFO only when the block completes or a checkpoint commits
			// it, so an abort can roll it back instead of leaking a partial
			// first attempt downstream.
			p.stage = append(p.stage, w)
			p.afterExitWord(true)
			return
		}
		if !s.Out.TryWrite(w) {
			// The space check reserved room, but the ring injection buffer
			// can still be momentarily busy.
			p.exitHolding = true
			p.exitHeld = w
			p.k.Schedule(2, func() { p.exitStep.Wake() })
			return
		}
		p.afterExitWord(true)
	})
}

// afterExitWord closes one exit-DMA service: committed words count toward
// the stream's output, discarded replays only toward block completion. The
// block completes when a full OutBlock has been committed AND no replay
// discards remain — on a retry the discards come first, so checking both
// paths keeps the completion edge firing exactly once per attempt.
func (p *Pair) afterExitWord(committed bool) {
	s := p.streams[p.active]
	p.exitDelivered++
	if committed {
		if p.cfg.Recovery.ValueExact {
			// Staged, not yet in the output C-FIFO: count it toward block
			// completion now, account SamplesOut/OutTimes at the actual
			// commit (drainStage).
			p.exitCount++
		} else {
			s.SamplesOut++
			if p.cfg.RecordOutputTimes {
				s.OutTimes = append(s.OutTimes, p.k.Now())
			}
			p.exitCount++
		}
	}
	if p.exitCount >= s.OutBlock && p.exitDiscard == 0 {
		// Last sample of the block passed through: commit any staged words,
		// then notify the entry gateway over the ring.
		p.drainStage(func() { p.sendIdle(p.active) })
	} else if p.checkpointDue(s) {
		p.beginCheckpoint(s)
	}
	p.exitStep.Wake()
}

// checkpointDue reports whether the active block just quiesced at an
// interior checkpoint boundary: the entry gateway stopped at ckptNext and
// the exit side has now delivered every output of the samples issued — the
// point where a SaveState snapshot is consistent with exactly ckptNext
// processed inputs.
func (p *Pair) checkpointDue(s *Stream) bool {
	if p.ckptEvery <= 0 || p.state != stStreaming || p.ckptNext >= s.Block {
		return false
	}
	if p.blockBase+p.sent != p.ckptNext {
		return false
	}
	return p.exitDelivered == p.ckptNext/(s.Block/s.OutBlock)
}

// beginCheckpoint commits the quiesced sub-block: drain the stage (its
// words are final — a later retry never resumes before this boundary),
// snapshot the engines' state over the configuration bus, and advance the
// replay window. Bound to the block epoch, so a stall racing the snapshot
// aborts it and the retry falls back to the previous checkpoint.
func (p *Pair) beginCheckpoint(s *Stream) {
	p.state = stCheckpoint
	p.recordActivity(ActStream) // close the streaming span
	epoch := p.blockEpoch
	p.drainStage(func() {
		cost := p.cfg.Recovery.CheckpointCost
		p.CheckpointCycles += uint64(cost)
		p.bus.TransferCycles(cost, func() {
			if p.failed || p.blockEpoch != epoch {
				return
			}
			p.retryState = p.retryState[:0]
			for _, e := range s.Engines {
				p.retryState = append(p.retryState, e.SaveState())
			}
			p.blockBase = p.ckptNext
			p.blockBuf = p.blockBuf[:0]
			p.fetched = 0
			p.sent = 0
			p.ckptNext = p.nextCkptBoundary(s)
			p.Checkpoints++
			p.recordActivity(ActCheckpoint)
			p.state = stStreaming
			p.pump()
		})
	})
}

// drainStage commits the staged output words of the active block to its
// output C-FIFO, then runs done (immediately when nothing is staged). The
// space check reserved the room at block start, so only transient
// ring-injection backpressure can delay a write. Bound to the block epoch:
// an abort discards the remaining stage instead (retryBlock and quarantine
// roll the watermark back).
func (p *Pair) drainStage(done func()) {
	if len(p.stage) == 0 {
		done()
		return
	}
	s := p.streams[p.active]
	epoch := p.blockEpoch
	var step func()
	step = func() {
		if p.blockEpoch != epoch || p.failed {
			return
		}
		if p.cfg.BatchTransport {
			// Burst commit: WriteBurst posts the same per-word ring messages
			// at the same instant as the word-at-a-time loop below; partial
			// acceptance (ring injection backpressure) retries identically.
			n := s.Out.WriteBurst(p.stage)
			for range p.stage[:n] {
				s.SamplesOut++
				if p.cfg.RecordOutputTimes {
					s.OutTimes = append(s.OutTimes, p.k.Now())
				}
			}
			p.stage = p.stage[n:]
			if len(p.stage) > 0 {
				p.k.Schedule(2, step)
				return
			}
			done()
			return
		}
		for len(p.stage) > 0 {
			if !s.Out.TryWrite(p.stage[0]) {
				p.k.Schedule(2, step)
				return
			}
			p.stage = p.stage[1:]
			s.SamplesOut++
			if p.cfg.RecordOutputTimes {
				s.OutTimes = append(s.OutTimes, p.k.Now())
			}
		}
		done()
	}
	step()
}

// sendIdle originates one pipeline-idle notification; the DropIdle fault
// hook is consulted exactly once per block completion, here — ring-busy
// resends in pushIdle do not re-consult it.
func (p *Pair) sendIdle(streamIdx int) {
	if p.cfg.DropIdle != nil && p.cfg.DropIdle(streamIdx, p.streams[streamIdx].Blocks) {
		p.IdleDropped++
		return
	}
	p.pushIdle(streamIdx, p.blockEpoch)
}

// pushIdle retries the ring injection until it lands, bound to the block
// epoch so a flush cancels pending resends.
func (p *Pair) pushIdle(streamIdx int, epoch uint64) {
	if p.blockEpoch != epoch {
		return
	}
	if !p.net.Credit.Node(p.cfg.ExitNode).TrySend(p.cfg.EntryNode, p.cfg.IdlePort, sim.Word(streamIdx)) {
		p.k.Schedule(2, func() { p.pushIdle(streamIdx, epoch) })
	}
}

// onPipelineIdle completes the active block.
func (p *Pair) onPipelineIdle(streamIdx int) {
	if p.state != stDraining || streamIdx != p.active {
		if p.cfg.Recovery.Enabled || p.cfg.DropIdle != nil {
			// With faults in play a notification can legitimately race a
			// flush and arrive after its block was aborted: tolerate it.
			p.LateIdles++
			return
		}
		panic(fmt.Sprintf("gateway %s: spurious idle notification (state=%d idx=%d active=%d)",
			p.cfg.Name, p.state, streamIdx, p.active))
	}
	p.recordActivity(ActDrain)
	s := p.streams[p.active]
	s.Blocks++
	if s.queued {
		turn := p.k.Now() - s.queuedAt
		if turn > s.MaxTurnaround {
			s.MaxTurnaround = turn
		}
		s.queued = false
	}
	if p.cfg.RecordTurnarounds {
		s.Turnarounds = append(s.Turnarounds, BlockRecord{
			Queued: p.blockQueued, Started: p.blockStarted, Done: p.k.Now(), Retries: p.blockRetries,
			Replayed: p.blockIssued - p.blockFresh,
		})
	}
	p.blockEpoch++ // completed: cancel this block's pending timers/events
	p.state = stIdle
	if s.Probation {
		// Canary block completed cleanly: the stream is a full member again.
		s.Probation = false
		if p.onCanary != nil {
			p.onCanary(p.active, true)
		}
	}
	p.step.Wake()
}

// PendingWait returns how long stream s has had a complete, eligible block
// waiting without service (0 when nothing is pending) — the starvation
// indicator for arbitration experiments: completed-block turnaround alone
// cannot see a block that is never served.
func (p *Pair) PendingWait(s int) sim.Time {
	st := p.streams[s]
	if st.Quarantined || st.Suspended || !st.queued || (p.state != stIdle && s == p.active) {
		return 0
	}
	return p.k.Now() - st.queuedAt
}

// Busy returns accounting figures: total observed cycles, cycles spent
// reconfiguring, and cycles the DMA spent streaming.
func (p *Pair) Busy() (total, reconfig, streaming uint64) {
	return uint64(p.k.Now() - p.startTime), p.ReconfigCycles, p.StreamingCycles
}

// Tiles returns the managed accelerator tiles.
func (p *Pair) Tiles() []*accel.Tile { return p.tiles }

// ---------------------------------------------------------------------------
// Online admission control: pause/resume, slot reprogramming, live attach.
//
// The paper sizes ηs once, offline; a service under live traffic must change
// the stream set while blocks are flowing. The contract is a staged mode
// transition: drain to a block boundary (RequestPause), reprogram the stream
// slots over the configuration bus (ApplySlots, optionally AddStreamLive for
// a brand-new slot), resume (Resume). Between pause and resume the pipeline
// is provably idle — the same invariant the per-block engine swap relies
// on — so no in-flight block can observe a half-applied configuration.
// ---------------------------------------------------------------------------

// RequestPause asks the entry gateway to stop arbitration at the next block
// boundary and call fn once drained (immediately when already idle). Only
// one pause may be pending or active at a time. While a pause is pending
// the in-flight block — including any recovery retries it needs — runs to
// completion; sources keep filling the input C-FIFOs.
func (p *Pair) RequestPause(fn func()) error {
	if fn == nil {
		return fmt.Errorf("gateway %s: nil pause callback", p.cfg.Name)
	}
	if p.paused || p.pauseCb != nil {
		return fmt.Errorf("gateway %s: pause already pending or active", p.cfg.Name)
	}
	p.pauseCb = fn
	p.step.Wake()
	return nil
}

// Resume re-arms arbitration after a mode transition.
func (p *Pair) Resume() {
	p.paused = false
	p.step.Wake()
}

// Paused reports whether the pair is drained and holding arbitration.
func (p *Pair) Paused() bool { return p.paused }

// SlotUpdate reprograms one stream slot during a paused mode transition.
// Zero-valued fields leave the corresponding setting untouched.
type SlotUpdate struct {
	Stream int
	// SetBlock/SetOutBlock, when positive, reprogram ηs and the per-block
	// output sample count.
	SetBlock, SetOutBlock int64
	// Suspend removes the slot from arbitration; Activate returns it.
	Suspend, Activate bool
	// Unquarantine clears a fault quarantine; with Probation the stream's
	// next block is a canary (see Stream.Probation).
	Unquarantine bool
	Probation    bool
}

// ApplySlots reprograms stream slots over the configuration bus. The pair
// must be paused (RequestPause completed): the transition is itself a
// bus transaction of perSlotCost cycles per touched slot — the cost is
// accounted in SlotCycles and done runs when the transfer completes. The
// updates are validated up front so a half-applied transition is
// impossible.
func (p *Pair) ApplySlots(updates []SlotUpdate, perSlotCost sim.Time, done func()) error {
	if !p.paused {
		return fmt.Errorf("gateway %s: ApplySlots requires a paused pair", p.cfg.Name)
	}
	for _, u := range updates {
		if u.Stream < 0 || u.Stream >= len(p.streams) {
			return fmt.Errorf("gateway %s: slot %d out of range", p.cfg.Name, u.Stream)
		}
		s := p.streams[u.Stream]
		blk, out := s.Block, s.OutBlock
		if u.SetBlock > 0 {
			blk = u.SetBlock
		}
		if u.SetOutBlock > 0 {
			out = u.SetOutBlock
		}
		if blk <= 0 || out <= 0 {
			return fmt.Errorf("gateway %s: slot %q would get block %d/out %d", p.cfg.Name, s.Name, blk, out)
		}
		if s.In.Capacity() < int(blk) {
			return fmt.Errorf("gateway %s: slot %q input FIFO %d < block %d", p.cfg.Name, s.Name, s.In.Capacity(), blk)
		}
		if s.Out.Capacity() < int(out) {
			return fmt.Errorf("gateway %s: slot %q output FIFO %d < out-block %d", p.cfg.Name, s.Name, s.Out.Capacity(), out)
		}
	}
	cost := perSlotCost * sim.Time(len(updates))
	p.SlotCycles += uint64(cost)
	p.bus.TransferCycles(cost, func() {
		if p.failed {
			return // the pair froze for failover while the bus was busy
		}
		for _, u := range updates {
			s := p.streams[u.Stream]
			if u.SetBlock > 0 {
				s.Block = u.SetBlock
			}
			if u.SetOutBlock > 0 {
				s.OutBlock = u.SetOutBlock
			}
			if u.Suspend {
				s.Suspended = true
				s.queued = false
			}
			if u.Activate {
				s.Suspended = false
			}
			if u.Unquarantine {
				s.Quarantined = false
			}
			if u.Probation {
				s.Probation = true
			}
		}
		if done != nil {
			done()
		}
	})
	return nil
}

// AddStreamLive registers a stream slot on a running, paused pair. The
// drain guarantees arbitration state is quiescent, so the slot table can
// grow without racing an in-flight block. Start the slot Suspended and
// activate it in the same ApplySlots transaction that sizes the survivor
// slots, so the new stream becomes eligible atomically with the new ηs.
func (p *Pair) AddStreamLive(s *Stream) (int, error) {
	if !p.paused {
		return 0, fmt.Errorf("gateway %s: AddStreamLive requires a paused pair", p.cfg.Name)
	}
	if err := p.AddStream(s); err != nil {
		return 0, err
	}
	return len(p.streams) - 1, nil
}

// SetCanaryHook installs fn to observe canary (probation) outcomes: ok is
// true when the canary block completed cleanly, false when it stalled and
// the stream went back to quarantine.
func (p *Pair) SetCanaryHook(fn func(stream int, ok bool)) { p.onCanary = fn }

// SetQuarantineObserver installs fn to observe quarantine events in
// addition to Config.Recovery.OnQuarantine (which belongs to the platform
// builder, not to the admission controller).
func (p *Pair) SetQuarantineObserver(fn func(stream int)) { p.onQuarantine = fn }

// StreamSnapshot is the externally consumable per-stream counter set: one
// struct instead of a handful of individually poked fields, shared by the
// admission controller, the platform reports and the fault campaign.
type StreamSnapshot struct {
	Name                          string
	Block, OutBlock               int64
	Blocks, SamplesIn, SamplesOut uint64
	Stalls, Retries               uint64
	Quarantined                   bool
	QuarantinedAt                 sim.Time
	Suspended                     bool
	Probation                     bool
	MaxTurnaround                 sim.Time
}

// Snapshot returns the per-stream recovery/progress counters.
//
//accellint:deepcopy
func (p *Pair) Snapshot() []StreamSnapshot {
	out := make([]StreamSnapshot, len(p.streams))
	for i, s := range p.streams {
		out[i] = StreamSnapshot{
			Name:          s.Name,
			Block:         s.Block,
			OutBlock:      s.OutBlock,
			Blocks:        s.Blocks,
			SamplesIn:     s.SamplesIn,
			SamplesOut:    s.SamplesOut,
			Stalls:        s.StallCount,
			Retries:       s.RetryCount,
			Quarantined:   s.Quarantined,
			QuarantinedAt: s.QuarantinedAt,
			Suspended:     s.Suspended,
			Probation:     s.Probation,
			MaxTurnaround: s.MaxTurnaround,
		}
	}
	return out
}
