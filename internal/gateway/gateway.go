// Package gateway implements the paper's contribution in simulated
// hardware: the entry-gateway and exit-gateway tiles that multiplex blocks
// of samples from multiple real-time streams over a shared chain of
// accelerators.
//
// The entry gateway (paper §IV-C) round-robins over its streams. A stream
// is eligible only when (1) a full block of ηs samples is present in its
// input C-FIFO, (2) at least the block's worth of space is free in the
// OUTPUT C-FIFO — the space check that makes the CSDF model conservative —
// and (3) the accelerator pipeline is idle (the previous block fully passed
// the exit gateway). Serving a block means: reconfigure the accelerators
// over the configuration bus (save the outgoing stream's state, load the
// incoming one's — Rs cycles), then DMA the ηs samples to the first
// accelerator at ε cycles each under credit flow control.
//
// The exit gateway converts the hardware flow-controlled stream back to a
// software C-FIFO at δ cycles per sample and notifies the entry gateway
// when the last sample of the block has passed — the pipeline-idle signal.
package gateway

import (
	"fmt"

	"accelshare/internal/accel"
	"accelshare/internal/cfifo"
	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

// Arbitration selects the entry gateway's stream-selection policy.
type Arbitration int

// Arbitration policies.
const (
	// RoundRobin serves eligible streams in rotating order — the paper's
	// policy (§IV-C), which bounds every stream's interference to one block
	// of each other stream (Eq. 3, via [19]).
	RoundRobin Arbitration = iota
	// FixedPriority always serves the lowest-index eligible stream — the
	// ablation showing why RR matters: a saturated high-priority stream
	// starves the rest, so no finite ε̂s exists.
	FixedPriority
)

// ReconfigMode selects how context-switch time is charged.
type ReconfigMode int

// Reconfiguration cost models.
const (
	// ReconfigFixed charges the stream's Rs cycles as one bus transaction —
	// the paper's hardware-supported model (Rs = 4100 cycles).
	ReconfigFixed ReconfigMode = iota
	// ReconfigPerWord charges base + words·perWord for saving the outgoing
	// engines plus the same for loading the incoming ones — the paper's
	// prototype, which switched state "from software" and was dominated by
	// it (ablation A3).
	ReconfigPerWord
)

// Config parameterises a gateway pair.
type Config struct {
	Name string
	// EntryNode/ExitNode are the ring attachment points of the two tiles.
	EntryNode, ExitNode int
	// EntryCost is ε (the paper's prototype: 15 cycles/sample); ExitCost is
	// δ (1 cycle/sample).
	EntryCost, ExitCost sim.Time
	// Mode selects the reconfiguration cost model.
	Mode ReconfigMode
	// Arbiter selects the stream arbitration policy (default RoundRobin).
	Arbiter Arbitration
	// BusBase/BusPerWord parameterise ReconfigPerWord.
	BusBase, BusPerWord sim.Time
	// IdlePort is the entry-gateway ring port for pipeline-idle messages.
	IdlePort int
	// RecordOutputTimes keeps per-sample output timestamps on every stream
	// (memory-heavy; enable in tests and measurements only).
	RecordOutputTimes bool
	// DisableSpaceCheck is the A1 ablation: eligibility ignores the output
	// buffer — the check the paper adds over prior work [8]. With it
	// disabled the exit gateway can block mid-block on a slow consumer,
	// head-of-line blocking every other stream and breaking the temporal
	// model.
	DisableSpaceCheck bool
	// RecordActivity keeps a per-phase activity trace (reconfiguration,
	// streaming, draining spans per block) for Gantt rendering.
	RecordActivity bool
	// DrainTimeout arms a watchdog on the drain phase: if the pipeline-idle
	// notification has not arrived this many cycles after the last sample
	// was issued, the gateway declares the chain stalled (a fault — sample
	// loss inside an accelerator, a wedged NI) and invokes OnStall. The
	// model gives the natural setting: the drain can never legitimately
	// exceed the Eq. 2 flush allowance of ~2·c0 plus interconnect transit,
	// so a small multiple of c0 is safe. 0 disables the watchdog.
	DrainTimeout sim.Time
	// OnStall is called once per detected stall with the stream index.
	OnStall func(stream int)
}

// ActivityKind labels one span of gateway activity.
type ActivityKind int

// Activity kinds.
const (
	ActReconfig ActivityKind = iota
	ActStream
	ActDrain
)

func (k ActivityKind) String() string {
	switch k {
	case ActReconfig:
		return "reconfig"
	case ActStream:
		return "stream"
	case ActDrain:
		return "drain"
	}
	return "?"
}

// Activity is one recorded span.
type Activity struct {
	Stream int
	Kind   ActivityKind
	Start  sim.Time
	End    sim.Time
}

// Stream is one data stream bound to a gateway pair.
type Stream struct {
	Name string
	// Block is ηs in input samples; OutBlock is the samples the chain emits
	// per block (Block divided by the chain's total decimation). Block must
	// be a multiple of the chain's decimation so OutBlock is exact.
	Block, OutBlock int64
	// Reconfig is Rs for ReconfigFixed.
	Reconfig sim.Time
	// In is the input C-FIFO (the gateway is its consumer); Out is the
	// output C-FIFO (the exit gateway is its producer).
	In, Out *cfifo.FIFO
	// Engines holds one engine instance per accelerator tile in chain
	// order, owning this stream's configuration and state.
	Engines []accel.Engine

	saved  [][]uint64
	loaded bool

	// Stats.
	Blocks        uint64
	SamplesIn     uint64
	SamplesOut    uint64
	queued        bool
	queuedAt      sim.Time
	MaxTurnaround sim.Time
	OutTimes      []sim.Time
}

type entryState int

const (
	stIdle entryState = iota
	stReconfig
	stStreaming
	stDraining
)

// Pair is one entry/exit gateway pair managing a chain of accelerator
// tiles.
type Pair struct {
	cfg     Config
	k       *sim.Kernel
	net     *ring.Dual
	tiles   []*accel.Tile
	bus     *accel.ConfigBus
	link    *accel.Link // entry gateway -> first accelerator
	exitNI  *sim.Queue  // last accelerator -> exit gateway NI
	streams []*Stream

	// Entry state machine.
	state    entryState
	active   int // index into streams
	rr       int
	sent     int64
	dmaBusy  bool
	holding  bool
	heldWord sim.Word
	step     *sim.Waker

	// Exit state machine.
	exitBusy    bool
	exitCount   int64
	exitHolding bool
	exitHeld    sim.Word
	exitStep    *sim.Waker

	// Utilisation accounting (cycles).
	ReconfigCycles  uint64
	StreamingCycles uint64
	lastStreamStart sim.Time
	startTime       sim.Time
	started         bool

	// Activities is the recorded span trace (when cfg.RecordActivity).
	Activities []Activity
	phaseStart sim.Time

	// Stalls counts drain-watchdog firings (chain faults detected).
	Stalls     uint64
	drainEpoch uint64
}

// NewPair wires a gateway pair around existing accelerator tiles. The
// caller provides the entry link (to the first tile) and the exit NI queue
// (destination of the last tile's link); tiles are listed in chain order.
func NewPair(k *sim.Kernel, net *ring.Dual, cfg Config, tiles []*accel.Tile, entryLink *accel.Link, exitNI *sim.Queue) (*Pair, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("gateway %q: no accelerator tiles", cfg.Name)
	}
	if cfg.EntryCost == 0 {
		cfg.EntryCost = 1
	}
	if cfg.ExitCost == 0 {
		cfg.ExitCost = 1
	}
	p := &Pair{
		cfg: cfg, k: k, net: net, tiles: tiles,
		bus: accel.NewConfigBus(k, cfg.BusBase, cfg.BusPerWord), link: entryLink, exitNI: exitNI,
		active: -1,
	}
	p.step = sim.NewWaker(k, p.entryRun)
	p.exitStep = sim.NewWaker(k, p.exitRun)
	entryLink.SubscribeCredits(p.step)
	entryLink.SubscribeRingSpace(p.step)
	exitNI.SubscribeData(p.exitStep)
	// Pipeline-idle notifications arrive on the entry tile's idle port.
	net.Data.Node(cfg.EntryNode).Bind(cfg.IdlePort, func(m ring.Message) {
		p.onPipelineIdle(int(m.W))
	})
	return p, nil
}

// AddStream registers a stream. Must be called before Start.
func (p *Pair) AddStream(s *Stream) error {
	if s.Block <= 0 {
		return fmt.Errorf("gateway: stream %q needs a positive block size", s.Name)
	}
	if s.OutBlock <= 0 {
		return fmt.Errorf("gateway: stream %q needs a positive output block size", s.Name)
	}
	if len(s.Engines) != len(p.tiles) {
		return fmt.Errorf("gateway: stream %q has %d engines for %d tiles", s.Name, len(s.Engines), len(p.tiles))
	}
	if s.In.Capacity() < int(s.Block) {
		return fmt.Errorf("gateway: stream %q input FIFO %d < block %d (can never assemble a block)",
			s.Name, s.In.Capacity(), s.Block)
	}
	if s.Out.Capacity() < int(s.OutBlock) {
		return fmt.Errorf("gateway: stream %q output FIFO %d < out-block %d (space check can never pass)",
			s.Name, s.Out.Capacity(), s.OutBlock)
	}
	s.saved = make([][]uint64, len(s.Engines))
	p.streams = append(p.streams, s)
	s.In.SubscribeData(p.step)
	s.Out.SubscribeSpace(p.step)
	return nil
}

// Streams returns the registered streams.
func (p *Pair) Streams() []*Stream { return p.streams }

// Start arms the gateway pair; wake-ups arriving earlier are ignored.
func (p *Pair) Start() {
	p.started = true
	p.startTime = p.k.Now()
	p.step.Wake()
}

// ready reports whether stream i can be served now: full input block,
// reserved output space.
func (p *Pair) ready(i int) bool {
	s := p.streams[i]
	if s.In.Len() < int(s.Block) {
		return false
	}
	if p.cfg.DisableSpaceCheck {
		return true
	}
	return s.Out.Space() >= int(s.OutBlock)
}

// trackQueued records the instant each stream becomes eligible, for
// turnaround (γs) measurement against Eq. 4.
func (p *Pair) trackQueued() {
	for i, s := range p.streams {
		if !s.queued && p.ready(i) && !(p.state != stIdle && i == p.active) {
			s.queued = true
			s.queuedAt = p.k.Now()
		}
	}
}

// entryRun is the entry gateway's step function.
func (p *Pair) entryRun() {
	if !p.started {
		return
	}
	p.trackQueued()
	switch p.state {
	case stIdle:
		p.tryStart()
	case stStreaming:
		p.pump()
	}
}

func (p *Pair) tryStart() {
	n := len(p.streams)
	if n == 0 {
		return
	}
	base := p.rr
	if p.cfg.Arbiter == FixedPriority {
		base = 0
	}
	for off := 0; off < n; off++ {
		i := (base + off) % n
		if p.ready(i) {
			p.beginBlock(i)
			return
		}
	}
}

// beginBlock starts serving stream i: reconfiguration first.
func (p *Pair) beginBlock(i int) {
	p.state = stReconfig
	prev := p.active
	p.active = i
	p.rr = (i + 1) % len(p.streams)
	s := p.streams[i]

	var cost sim.Time
	switch p.cfg.Mode {
	case ReconfigFixed:
		cost = s.Reconfig
	case ReconfigPerWord:
		words := 0
		if prev >= 0 {
			for _, e := range p.streams[prev].Engines {
				words += e.StateWords()
			}
		}
		for _, e := range s.Engines {
			words += e.StateWords()
		}
		cost = 2*p.cfg.BusBase + sim.Time(words)*p.cfg.BusPerWord
	}
	p.ReconfigCycles += uint64(cost)
	p.phaseStart = p.k.Now()
	p.bus.TransferCycles(cost, func() {
		if err := p.swapEngines(prev, i); err != nil {
			panic(fmt.Sprintf("gateway %s: %v", p.cfg.Name, err))
		}
		p.recordActivity(ActReconfig)
		// Configure the exit gateway for the new block (its own port on the
		// configuration bus, per Fig. 4b).
		p.exitCount = 0
		p.state = stStreaming
		p.sent = 0
		p.lastStreamStart = p.k.Now()
		s.queued = true // ensure turnaround accounting has a reference
		p.pump()
	})
}

// swapEngines saves the outgoing stream's accelerator state and restores
// the incoming stream's. The tiles must be idle — reconfiguring while data
// is in flight would corrupt it (paper §IV: "the entry- and exit-gateway
// work together to ensure that the pipeline is idle").
func (p *Pair) swapEngines(prev, next int) error {
	if prev >= 0 {
		ps := p.streams[prev]
		for t, e := range ps.Engines {
			ps.saved[t] = e.SaveState()
		}
	}
	ns := p.streams[next]
	for t, e := range ns.Engines {
		if ns.loaded {
			if err := e.LoadState(ns.saved[t]); err != nil {
				return fmt.Errorf("restore %s tile %d: %w", ns.Name, t, err)
			}
		}
		if err := p.tiles[t].SetEngine(e); err != nil {
			return err
		}
	}
	ns.loaded = true
	return nil
}

// pump advances the DMA copying the active block into the chain.
func (p *Pair) pump() {
	if p.state != stStreaming || p.dmaBusy {
		return
	}
	if p.holding {
		if !p.link.TrySend(p.heldWord) {
			return // woken again by credits/ring space
		}
		p.holding = false
		p.sent++
		p.afterSample()
		return
	}
	s := p.streams[p.active]
	if p.sent >= s.Block {
		return
	}
	w, ok := s.In.TryRead()
	if !ok {
		panic(fmt.Sprintf("gateway %s: input underflow on %s — eligibility check broken", p.cfg.Name, s.Name))
	}
	p.dmaBusy = true
	p.k.Schedule(p.cfg.EntryCost, func() {
		p.dmaBusy = false
		p.StreamingCycles += uint64(p.cfg.EntryCost)
		if !p.link.TrySend(w) {
			p.holding = true
			p.heldWord = w
			return
		}
		p.sent++
		p.afterSample()
	})
}

func (p *Pair) afterSample() {
	s := p.streams[p.active]
	s.SamplesIn++
	if p.sent >= s.Block {
		s.In.Ack() // release any batched input space promptly
		p.recordActivity(ActStream)
		p.state = stDraining
		p.armDrainWatchdog()
		return
	}
	p.pump()
}

// armDrainWatchdog starts the stall detector for the current drain phase.
func (p *Pair) armDrainWatchdog() {
	if p.cfg.DrainTimeout == 0 {
		return
	}
	p.drainEpoch++
	epoch := p.drainEpoch
	stream := p.active
	p.k.Schedule(p.cfg.DrainTimeout, func() {
		if p.state == stDraining && p.drainEpoch == epoch && p.active == stream {
			p.Stalls++
			if p.cfg.OnStall != nil {
				p.cfg.OnStall(stream)
			}
		}
	})
}

// recordActivity closes the current phase span (when enabled).
func (p *Pair) recordActivity(kind ActivityKind) {
	if !p.cfg.RecordActivity {
		return
	}
	p.Activities = append(p.Activities, Activity{
		Stream: p.active, Kind: kind, Start: p.phaseStart, End: p.k.Now(),
	})
	p.phaseStart = p.k.Now()
}

// exitRun is the exit gateway's step function: one sample per δ cycles from
// the NI to the output C-FIFO.
func (p *Pair) exitRun() {
	if p.exitBusy {
		return
	}
	if p.exitHolding {
		s := p.streams[p.active]
		if !s.Out.TryWrite(p.exitHeld) {
			p.k.Schedule(2, func() { p.exitStep.Wake() })
			return
		}
		p.exitHolding = false
		p.afterExitSample()
		return
	}
	w, ok := p.exitNI.TryPop()
	if !ok {
		return
	}
	p.exitBusy = true
	p.k.Schedule(p.cfg.ExitCost, func() {
		p.exitBusy = false
		s := p.streams[p.active]
		if !s.Out.TryWrite(w) {
			// The space check reserved room, but the ring injection buffer
			// can still be momentarily busy.
			p.exitHolding = true
			p.exitHeld = w
			p.k.Schedule(2, func() { p.exitStep.Wake() })
			return
		}
		p.afterExitSample()
	})
}

func (p *Pair) afterExitSample() {
	s := p.streams[p.active]
	s.SamplesOut++
	if p.cfg.RecordOutputTimes {
		s.OutTimes = append(s.OutTimes, p.k.Now())
	}
	p.exitCount++
	if p.exitCount >= s.OutBlock {
		// Last sample of the block passed through: notify the entry gateway
		// over the ring.
		p.sendIdle(p.active)
	}
	p.exitStep.Wake()
}

func (p *Pair) sendIdle(streamIdx int) {
	if !p.net.Data.Node(p.cfg.ExitNode).TrySend(p.cfg.EntryNode, p.cfg.IdlePort, sim.Word(streamIdx)) {
		p.k.Schedule(2, func() { p.sendIdle(streamIdx) })
	}
}

// onPipelineIdle completes the active block.
func (p *Pair) onPipelineIdle(streamIdx int) {
	if p.state != stDraining || streamIdx != p.active {
		panic(fmt.Sprintf("gateway %s: spurious idle notification (state=%d idx=%d active=%d)",
			p.cfg.Name, p.state, streamIdx, p.active))
	}
	p.recordActivity(ActDrain)
	s := p.streams[p.active]
	s.Blocks++
	if s.queued {
		turn := p.k.Now() - s.queuedAt
		if turn > s.MaxTurnaround {
			s.MaxTurnaround = turn
		}
		s.queued = false
	}
	p.state = stIdle
	p.step.Wake()
}

// PendingWait returns how long stream s has had a complete, eligible block
// waiting without service (0 when nothing is pending) — the starvation
// indicator for arbitration experiments: completed-block turnaround alone
// cannot see a block that is never served.
func (p *Pair) PendingWait(s int) sim.Time {
	st := p.streams[s]
	if !st.queued || (p.state != stIdle && s == p.active) {
		return 0
	}
	return p.k.Now() - st.queuedAt
}

// Busy returns accounting figures: total observed cycles, cycles spent
// reconfiguring, and cycles the DMA spent streaming.
func (p *Pair) Busy() (total, reconfig, streaming uint64) {
	return uint64(p.k.Now() - p.startTime), p.ReconfigCycles, p.StreamingCycles
}

// Tiles returns the managed accelerator tiles.
func (p *Pair) Tiles() []*accel.Tile { return p.tiles }
