package gateway

// Replay-cost sweep (EXPERIMENTS.md "E11"): retry work versus checkpoint
// interval K across block sizes. Each cell injects a transient drop in the
// LAST sub-block of a block — the worst case for resume work, since the
// whole interval since the final checkpoint must be replayed — and measures
// the replayed input words and the retried block's service latency. The
// numbers recorded in EXPERIMENTS.md come from `go test -run
// TestReplayCostSweep -v ./internal/gateway`.

import (
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/sim"
)

// replayCell runs one (η, K) point: a single block with a transient sample
// drop near its end, returning the replayed words and the retried block's
// Started→Done latency. K = 0 disables checkpointing (block-start retry).
func replayCell(t *testing.T, eta, k int64, faulty bool) (replayed int64, latency sim.Time) {
	t.Helper()
	r := newRig(t, ckptCfg("rc", k, true))
	s, in, out := r.addStream(t, "s", eta, int(eta)+8, int(eta)+8, 20)
	if faulty {
		s.Engines = []accel.Engine{&transientDropEngine{dropAt: int(eta) - 3}}
	}
	r.feedRaw(t, in, 0, int(eta))
	r.pair.Start()
	r.k.Run(500_000)
	if s.Blocks != 1 {
		t.Fatalf("eta=%d K=%d: blocks = %d, want 1", eta, k, s.Blocks)
	}
	if faulty && s.RetryCount != 1 {
		t.Fatalf("eta=%d K=%d: retries = %d, want 1", eta, k, s.RetryCount)
	}
	got := r.drainAll(out)
	if int64(len(got)) != eta {
		t.Fatalf("eta=%d K=%d: %d output words, want %d", eta, k, len(got), eta)
	}
	for i, w := range got {
		if w != sim.Word(i) {
			t.Fatalf("eta=%d K=%d: output word %d = %d", eta, k, i, w)
		}
	}
	rec := s.Turnarounds[0]
	return rec.Replayed, rec.Done - rec.Started
}

// TestReplayCostSweep measures retry work as a function of the checkpoint
// interval: without checkpointing a late transient replays the whole block
// (η words); with interval K it replays at most K, independent of η — the
// empirical content of the adjusted Eq. 2 term and of core.ResumeBound.
func TestReplayCostSweep(t *testing.T) {
	etas := []int64{16, 64, 256}
	ks := []int64{0, 4, 8, 16}
	t.Logf("%6s %6s %10s %14s %16s", "eta", "K", "replayed", "retry-latency", "clean-latency")
	for _, eta := range etas {
		for _, k := range ks {
			_, clean := replayCell(t, eta, k, false)
			replayed, lat := replayCell(t, eta, k, true)
			want := eta // block-start retry replays everything
			if k > 0 && k < eta {
				want = k // the aborted final sub-block only
			}
			if replayed != want {
				t.Errorf("eta=%d K=%d: replayed = %d words, want %d", eta, k, replayed, want)
			}
			t.Logf("%6d %6d %10d %14d %16d", eta, k, replayed, lat, clean)
		}
	}
}
