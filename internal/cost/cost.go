// Package cost models the FPGA resource costs of the paper's components
// (Virtex 6 slices and LUTs) and computes the shared-versus-duplicated
// comparison of Table I and the per-component breakdown of Fig. 11. The
// per-component numbers are the paper's synthesis measurements; everything
// derived from them — totals, savings, break-even points, sweeps — is
// computed here.
package cost

import (
	"fmt"
	"sort"
	"strings"
)

// Resources is an FPGA footprint.
type Resources struct {
	Slices int
	LUTs   int
}

// Add returns the sum of two footprints.
func (r Resources) Add(o Resources) Resources {
	return Resources{Slices: r.Slices + o.Slices, LUTs: r.LUTs + o.LUTs}
}

// Scale returns the footprint times n.
func (r Resources) Scale(n int) Resources {
	return Resources{Slices: r.Slices * n, LUTs: r.LUTs * n}
}

// Sub returns r minus o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{Slices: r.Slices - o.Slices, LUTs: r.LUTs - o.LUTs}
}

// Component names used by the paper.
const (
	MicroBlaze    = "MicroBlaze"
	DMA           = "DMA"
	EntryGateway  = "Entry-gateway" // MicroBlaze-based tile incl. DMA
	ExitGateway   = "Exit-gateway"
	FIRDownsample = "FIR+Downsample"
	CORDIC        = "CORDIC"
	RingFIFO      = "Ring FIFO"
)

// PaperComponents returns the per-component costs of Fig. 11 / Table I.
// Table I lists "Entry- + Exit-gateway" at 3788 slices / 4445 LUTs; Fig. 11
// attributes most of the entry gateway to its MicroBlaze. We model the
// pair's split so the sum matches Table I exactly.
func PaperComponents() map[string]Resources {
	return map[string]Resources{
		// Entry gateway: MicroBlaze core + DMA + arbitration logic.
		MicroBlaze:    {Slices: 2400, LUTs: 2800},
		DMA:           {Slices: 500, LUTs: 600},
		ExitGateway:   {Slices: 888, LUTs: 1045},
		RingFIFO:      {Slices: 150, LUTs: 180},
		FIRDownsample: {Slices: 6512, LUTs: 10837},
		CORDIC:        {Slices: 1714, LUTs: 1882},
	}
}

// GatewayPair returns the full entry+exit gateway cost (Table I row 1:
// 3788 slices, 4445 LUTs).
func GatewayPair() Resources {
	c := PaperComponents()
	return c[MicroBlaze].Add(c[DMA]).Add(c[ExitGateway])
}

// SharingCase describes one accelerator type being shared.
type SharingCase struct {
	Name string
	Unit Resources
	// Copies is how many private instances the non-shared design needs.
	Copies int
}

// Comparison is the Table I computation.
type Comparison struct {
	NonShared Resources
	Shared    Resources
	Savings   Resources
	// SlicesPct/LUTsPct are the fractional savings (the paper: 63.5% /
	// 66.3%).
	SlicesPct, LUTsPct float64
}

// Compare computes a shared-vs-duplicated comparison: the non-shared design
// instantiates every accelerator Copies times; the shared design has one of
// each plus one gateway pair.
func Compare(cases []SharingCase, gateway Resources) Comparison {
	var cmp Comparison
	for _, c := range cases {
		cmp.NonShared = cmp.NonShared.Add(c.Unit.Scale(c.Copies))
		cmp.Shared = cmp.Shared.Add(c.Unit)
	}
	cmp.Shared = cmp.Shared.Add(gateway)
	cmp.Savings = cmp.NonShared.Sub(cmp.Shared)
	if cmp.NonShared.Slices > 0 {
		cmp.SlicesPct = 100 * float64(cmp.Savings.Slices) / float64(cmp.NonShared.Slices)
	}
	if cmp.NonShared.LUTs > 0 {
		cmp.LUTsPct = 100 * float64(cmp.Savings.LUTs) / float64(cmp.NonShared.LUTs)
	}
	return cmp
}

// PaperTableI reproduces Table I: four private FIR+D and four private
// CORDIC instances versus one of each behind a gateway pair.
func PaperTableI() Comparison {
	c := PaperComponents()
	return Compare([]SharingCase{
		{Name: FIRDownsample, Unit: c[FIRDownsample], Copies: 4},
		{Name: CORDIC, Unit: c[CORDIC], Copies: 4},
	}, GatewayPair())
}

// BreakEven returns the smallest number of streams (= private copies
// avoided) at which sharing one instance of the accelerator pays for the
// gateway pair, in slices. Sharing n streams saves (n-1)·unit - gateway.
func BreakEven(unit, gateway Resources) int {
	if unit.Slices <= 0 {
		return 0
	}
	n := gateway.Slices/unit.Slices + 2
	for k := 2; k <= n; k++ {
		if (k-1)*unit.Slices > gateway.Slices {
			return k
		}
	}
	return n
}

// SavingsSweep computes Table-I-style savings for a range of stream counts
// (one private accelerator set per stream avoided by sharing).
func SavingsSweep(cases []SharingCase, gateway Resources, maxStreams int) []Comparison {
	var out []Comparison
	for n := 1; n <= maxStreams; n++ {
		scaled := make([]SharingCase, len(cases))
		for i, c := range cases {
			scaled[i] = SharingCase{Name: c.Name, Unit: c.Unit, Copies: n}
		}
		out = append(out, Compare(scaled, gateway))
	}
	return out
}

// FormatFig11 renders the Fig. 11 bar data as an aligned text table sorted
// by cost.
func FormatFig11() string {
	comps := PaperComponents()
	names := make([]string, 0, len(comps))
	for n := range comps {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return comps[names[i]].Slices > comps[names[j]].Slices })
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %8s\n", "component", "slices", "LUTs")
	for _, n := range names {
		fmt.Fprintf(&b, "%-16s %8d %8d\n", n, comps[n].Slices, comps[n].LUTs)
	}
	fmt.Fprintf(&b, "%-16s %8d %8d\n", "Entry+Exit pair", GatewayPair().Slices, GatewayPair().LUTs)
	return b.String()
}

// FormatTableI renders the Table I comparison.
func FormatTableI() string {
	c := PaperComponents()
	cmp := PaperTableI()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %8s\n", "component", "slices", "LUTs")
	fmt.Fprintf(&b, "%-28s %8d %8d\n", "Entry- + Exit-gateway", GatewayPair().Slices, GatewayPair().LUTs)
	fmt.Fprintf(&b, "%-28s %8d %8d\n", "LPF + down-sampler (F+D)", c[FIRDownsample].Slices, c[FIRDownsample].LUTs)
	fmt.Fprintf(&b, "%-28s %8d %8d\n", "CORDIC (C)", c[CORDIC].Slices, c[CORDIC].LUTs)
	fmt.Fprintf(&b, "%-28s %8d %8d\n", "4*(F+D) + 4*C (non-shared)", cmp.NonShared.Slices, cmp.NonShared.LUTs)
	fmt.Fprintf(&b, "%-28s %8d %8d\n", "Gateways + (F+D) + C", cmp.Shared.Slices, cmp.Shared.LUTs)
	fmt.Fprintf(&b, "%-28s %7d(%.1f%%) %7d(%.1f%%)\n", "Savings",
		cmp.Savings.Slices, cmp.SlicesPct, cmp.Savings.LUTs, cmp.LUTsPct)
	return b.String()
}
