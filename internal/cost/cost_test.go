package cost

import (
	"strings"
	"testing"
)

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{Slices: 10, LUTs: 20}
	b := Resources{Slices: 3, LUTs: 5}
	if s := a.Add(b); s.Slices != 13 || s.LUTs != 25 {
		t.Errorf("Add = %+v", s)
	}
	if s := a.Sub(b); s.Slices != 7 || s.LUTs != 15 {
		t.Errorf("Sub = %+v", s)
	}
	if s := b.Scale(4); s.Slices != 12 || s.LUTs != 20 {
		t.Errorf("Scale = %+v", s)
	}
}

func TestGatewayPairMatchesTableI(t *testing.T) {
	// Table I row 1: Entry- + Exit-gateway = 3788 slices, 4445 LUTs.
	g := GatewayPair()
	if g.Slices != 3788 || g.LUTs != 4445 {
		t.Fatalf("gateway pair = %+v, want {3788 4445}", g)
	}
}

func TestPaperTableIReproducesSavings(t *testing.T) {
	cmp := PaperTableI()
	// Non-shared: 4×(6512+1714) = 32904 slices; 4×(10837+1882) = 50876 LUTs.
	if cmp.NonShared.Slices != 32904 {
		t.Errorf("non-shared slices = %d, want 32904", cmp.NonShared.Slices)
	}
	if cmp.NonShared.LUTs != 50876 {
		t.Errorf("non-shared LUTs = %d, want 50876", cmp.NonShared.LUTs)
	}
	// Shared: gateways + one of each = 3788+6512+1714 = 12014 slices;
	// 4445+10837+1882 = 17164 LUTs.
	if cmp.Shared.Slices != 12014 {
		t.Errorf("shared slices = %d, want 12014", cmp.Shared.Slices)
	}
	if cmp.Shared.LUTs != 17164 {
		t.Errorf("shared LUTs = %d, want 17164", cmp.Shared.LUTs)
	}
	// Savings: 20890 slices (63.5%), 33712 LUTs (66.3%).
	if cmp.Savings.Slices != 20890 || cmp.Savings.LUTs != 33712 {
		t.Errorf("savings = %+v, want {20890 33712}", cmp.Savings)
	}
	if cmp.SlicesPct < 63.4 || cmp.SlicesPct > 63.6 {
		t.Errorf("slice savings = %.2f%%, paper reports 63.5%%", cmp.SlicesPct)
	}
	if cmp.LUTsPct < 66.2 || cmp.LUTsPct > 66.4 {
		t.Errorf("LUT savings = %.2f%%, paper reports 66.3%%", cmp.LUTsPct)
	}
}

func TestCompareSingleCopyIsNegative(t *testing.T) {
	// Sharing with only one stream ADDS the gateway overhead.
	c := PaperComponents()
	cmp := Compare([]SharingCase{{Name: CORDIC, Unit: c[CORDIC], Copies: 1}}, GatewayPair())
	if cmp.Savings.Slices >= 0 {
		t.Errorf("single-stream sharing should cost extra, savings = %+v", cmp.Savings)
	}
}

func TestBreakEven(t *testing.T) {
	c := PaperComponents()
	g := GatewayPair()
	// FIR+D (6512 slices) amortises the 3788-slice gateway with the 2nd
	// stream.
	if be := BreakEven(c[FIRDownsample], g); be != 2 {
		t.Errorf("FIR break-even = %d, want 2", be)
	}
	// CORDIC alone (1714 slices): needs (n-1)*1714 > 3788 -> n = 4.
	if be := BreakEven(c[CORDIC], g); be != 4 {
		t.Errorf("CORDIC break-even = %d, want 4", be)
	}
	if be := BreakEven(Resources{}, g); be != 0 {
		t.Errorf("zero-cost unit break-even = %d", be)
	}
}

func TestSavingsSweepMonotone(t *testing.T) {
	c := PaperComponents()
	cases := []SharingCase{
		{Name: FIRDownsample, Unit: c[FIRDownsample], Copies: 0},
		{Name: CORDIC, Unit: c[CORDIC], Copies: 0},
	}
	sweep := SavingsSweep(cases, GatewayPair(), 8)
	if len(sweep) != 8 {
		t.Fatalf("sweep length = %d", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Savings.Slices <= sweep[i-1].Savings.Slices {
			t.Errorf("savings not increasing at %d streams", i+1)
		}
	}
	// The paper's operating point is 4 streams.
	four := sweep[3]
	if four.Savings.Slices != 20890 {
		t.Errorf("4-stream savings = %d, want 20890", four.Savings.Slices)
	}
}

func TestFormatters(t *testing.T) {
	fig := FormatFig11()
	for _, want := range []string{"MicroBlaze", "CORDIC", "FIR+Downsample", "Exit-gateway"} {
		if !strings.Contains(fig, want) {
			t.Errorf("Fig. 11 table missing %q:\n%s", want, fig)
		}
	}
	tab := FormatTableI()
	for _, want := range []string{"63.5%", "66.3%", "20890", "33712"} {
		if !strings.Contains(tab, want) {
			t.Errorf("Table I missing %q:\n%s", want, tab)
		}
	}
}

func TestInterconnectScaling(t *testing.T) {
	p := DefaultInterconnectParams()
	// Ring is linear, crossbar quadratic: the ratio crossbar/ring must be
	// strictly increasing in the node count.
	prev := 0.0
	for n := 2; n <= 32; n++ {
		r := float64(p.CrossbarCost(n).Slices) / float64(p.RingCost(n).Slices)
		if r <= prev {
			t.Fatalf("ratio not increasing at n=%d", n)
		}
		prev = r
	}
	be := p.InterconnectBreakEven(64)
	if be == 0 || be > 16 {
		t.Errorf("break-even = %d, expected small", be)
	}
	// Sanity on the exact formulas.
	if p.RingCost(3).Slices != 3*p.RingNode.Slices {
		t.Error("ring cost not linear")
	}
	want := p.CrossbarPort.Scale(4).Add(p.CrossbarPoint.Scale(16))
	if p.CrossbarCost(4) != want {
		t.Errorf("crossbar cost = %+v, want %+v", p.CrossbarCost(4), want)
	}
}
