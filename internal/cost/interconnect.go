package cost

import (
	"fmt"
	"strings"
)

// Interconnect cost scaling (paper §II): the dual ring from [11]/[14] costs
// one ring FIFO pair plus NI per tile — linear in the node count — while a
// point-to-point crossbar of the kind used by [13]/[9] needs a crosspoint
// multiplexer structure that grows with the square of the port count. The
// paper measured the ring building blocks (Fig. 11: ring FIFO 150 slices /
// 180 LUTs); the crossbar coefficients below are stated estimates for a
// 32-bit datapath on the same device family and are parameters, not claims.

// InterconnectParams holds the per-structure cost coefficients.
type InterconnectParams struct {
	// RingNode is one tile attachment: two ring FIFOs (data + credit ring)
	// plus slot logic.
	RingNode Resources
	// CrossbarPort is the per-port input/output buffering of the crossbar.
	CrossbarPort Resources
	// CrossbarPoint is one crosspoint (a 32-bit mux leg plus arbitration
	// share); the crossbar needs N² of them.
	CrossbarPoint Resources
}

// DefaultInterconnectParams seeds the ring from the paper's Fig. 11 (ring
// FIFO 150/180 per direction) and the crossbar from estimates calibrated
// against published guaranteed-throughput NoC implementations: a
// slot-scheduled crossbar port needs an Æthereal-class network interface
// with slot tables and reconfiguration logic (several hundred slices — the
// very comparison of [13]), plus N crosspoint mux legs of ≈32 LUTs each.
// The coefficients are parameters, not measurements; the robust conclusion
// is the scaling law (linear vs quadratic), and the break-even is reported
// as a function of them.
func DefaultInterconnectParams() InterconnectParams {
	return InterconnectParams{
		RingNode:      Resources{Slices: 2 * 150, LUTs: 2 * 180}, // data + credit ring FIFO
		CrossbarPort:  Resources{Slices: 250, LUTs: 600},
		CrossbarPoint: Resources{Slices: 10, LUTs: 36},
	}
}

// RingCost returns the dual-ring cost for n tiles: linear.
func (p InterconnectParams) RingCost(n int) Resources {
	return p.RingNode.Scale(n)
}

// CrossbarCost returns the TDM crossbar cost for n tiles: n ports plus n²
// crosspoints.
func (p InterconnectParams) CrossbarCost(n int) Resources {
	return p.CrossbarPort.Scale(n).Add(p.CrossbarPoint.Scale(n * n))
}

// InterconnectBreakEven returns the smallest node count at which the ring
// is cheaper than the crossbar in slices (typically very small).
func (p InterconnectParams) InterconnectBreakEven(maxN int) int {
	for n := 1; n <= maxN; n++ {
		if p.RingCost(n).Slices < p.CrossbarCost(n).Slices {
			return n
		}
	}
	return 0
}

// FormatInterconnectSweep renders ring vs crossbar cost over node counts.
func (p InterconnectParams) FormatInterconnectSweep(maxN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %16s %16s %10s\n", "tiles", "dual ring", "TDM crossbar", "ratio")
	for n := 2; n <= maxN; n++ {
		r := p.RingCost(n)
		x := p.CrossbarCost(n)
		fmt.Fprintf(&b, "%6d %10d sl %3s %10d sl %3s %9.2fx\n",
			n, r.Slices, "", x.Slices, "", float64(x.Slices)/float64(r.Slices))
	}
	return b.String()
}
