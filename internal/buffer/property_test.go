package buffer

import (
	"math/big"
	"math/rand"
	"testing"

	"accelshare/internal/dataflow"
)

// TestThroughputMonotoneInCapacity is the property the whole sizing
// machinery rests on: enlarging any buffer never reduces self-timed
// throughput. Checked over random two-stage pipelines.
func TestThroughputMonotoneInCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		p := int64(1 + rng.Intn(5))
		c := int64(1 + rng.Intn(5))
		dA := uint64(1 + rng.Intn(4))
		dB := uint64(1 + rng.Intn(4))
		thAt := func(capacity int64) *big.Rat {
			g := dataflow.NewGraph("m")
			a := g.AddActor("a", dA)
			b := g.AddActor("b", dB)
			g.AddBuffer("ab", a, b, dataflow.Const(p), dataflow.Const(c), capacity)
			res, err := g.Simulate(dataflow.SimOptions{DetectPeriod: true})
			if err != nil {
				t.Fatal(err)
			}
			return res.Throughput(b)
		}
		prev := thAt(1)
		for capacity := int64(2); capacity <= 3*(p+c); capacity++ {
			cur := thAt(capacity)
			if cur.Cmp(prev) < 0 {
				t.Fatalf("trial %d: throughput dropped from %v to %v at capacity %d (p=%d c=%d)",
					trial, prev, cur, capacity, p, c)
			}
			prev = cur
		}
	}
}

// TestMinCapacityMatchesBruteForce checks the binary search against linear
// scan on random single-channel models.
func TestMinCapacityMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 25; trial++ {
		p := int64(1 + rng.Intn(4))
		c := int64(1 + rng.Intn(4))
		mk := func(capacity int64) (*dataflow.Graph, Channel, dataflow.ActorID) {
			g := dataflow.NewGraph("m")
			a := g.AddActor("a", uint64(1+rng.Intn(3)))
			b := g.AddActor("b", 0)
			fwd, back := g.AddBuffer("ab", a, b, dataflow.Const(p), dataflow.Const(c), capacity)
			return g, Channel{Fwd: fwd, Back: back}, a
		}
		// Deterministic actor durations per trial: rebuild with same seed
		// state by building once and reusing durations.
		g0, ch0, mon0 := mk(1)
		s := &Sizer{G: g0, Channels: []Channel{ch0}, Monitor: mon0}
		maxTh, err := s.MaxThroughput()
		if err != nil {
			t.Fatal(err)
		}
		caps, err := s.MinCapacitiesForThroughput(maxTh)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force from 1 upward on the same graph.
		var brute int64
		for capacity := int64(1); capacity <= 4*(p+c); capacity++ {
			ok, err := s.feasible([]int64{capacity}, maxTh)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				brute = capacity
				break
			}
		}
		if brute == 0 {
			t.Fatalf("trial %d: brute force found no feasible capacity", trial)
		}
		if caps[0] != brute {
			t.Fatalf("trial %d: search %d != brute force %d (p=%d c=%d)", trial, caps[0], brute, p, c)
		}
	}
}

func TestOptimalCapacitiesInfeasible(t *testing.T) {
	g := dataflow.NewGraph("inf")
	a := g.AddActor("a", 4)
	b := g.AddActor("b", 4)
	fwd, back := g.AddBuffer("ab", a, b, dataflow.Const(1), dataflow.Const(1), 1)
	s := &Sizer{G: g, Channels: []Channel{{fwd, back}}, Monitor: b}
	if _, err := s.OptimalCapacities(big.NewRat(1, 1)); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSizerCustomMaxEvents(t *testing.T) {
	g := dataflow.NewGraph("me")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	fwd, back := g.AddBuffer("ab", a, b, dataflow.Const(1), dataflow.Const(1), 1)
	s := &Sizer{G: g, Channels: []Channel{{fwd, back}}, Monitor: b, MaxEvents: 1_000}
	if _, err := s.MaxThroughput(); err != nil {
		t.Fatalf("small budget should still suffice here: %v", err)
	}
}

func TestOptimalBeatsOrMatchesGreedyThreeChannels(t *testing.T) {
	// A three-stage pipeline with multirate hops: branch and bound must
	// never be worse than greedy, and both must meet the target.
	g := dataflow.NewGraph("p3")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 2)
	c := g.AddActor("c", 1)
	d := g.AddActor("d", 3)
	f1, b1 := g.AddBuffer("ab", a, b, dataflow.Const(3), dataflow.Const(2), 1)
	f2, b2 := g.AddBuffer("bc", b, c, dataflow.Const(1), dataflow.Const(2), 1)
	f3, b3 := g.AddBuffer("cd", c, d, dataflow.Const(4), dataflow.Const(3), 1)
	s := &Sizer{G: g, Channels: []Channel{{f1, b1}, {f2, b2}, {f3, b3}}, Monitor: d}
	maxTh, err := s.MaxThroughput()
	if err != nil {
		t.Fatal(err)
	}
	target := new(big.Rat).Mul(maxTh, big.NewRat(3, 4))
	greedy, err := s.MinCapacitiesForThroughput(target)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.OptimalCapacities(target)
	if err != nil {
		t.Fatal(err)
	}
	if sum(opt) > sum(greedy) {
		t.Errorf("optimal %v worse than greedy %v", opt, greedy)
	}
	for _, caps := range [][]int64{greedy, opt} {
		ok, err := s.feasible(caps, target)
		if err != nil || !ok {
			t.Errorf("assignment %v infeasible (%v)", caps, err)
		}
	}
}
