package buffer

import (
	"math/big"
	"testing"
	"testing/quick"

	"accelshare/internal/dataflow"
)

func TestClassicalMinCapacity(t *testing.T) {
	cases := []struct{ p, c, want int64 }{
		{1, 1, 1},
		{2, 3, 4},
		{5, 1, 5},
		{5, 2, 6},
		{5, 3, 7},
		{5, 4, 8},
		{5, 5, 5},
		{5, 6, 10},
		{4, 6, 8},
		{8, 8, 8},
	}
	for _, c := range cases {
		if got := ClassicalMinCapacity(c.p, c.c); got != c.want {
			t.Errorf("ClassicalMinCapacity(%d,%d) = %d, want %d", c.p, c.c, got, c.want)
		}
	}
}

func TestClassicalMinCapacityProperties(t *testing.T) {
	// p+c-gcd is symmetric, >= max(p,c), <= p+c-1, and equals p when p == c.
	f := func(a, b uint8) bool {
		p, c := int64(a%20)+1, int64(b%20)+1
		v := ClassicalMinCapacity(p, c)
		if v != ClassicalMinCapacity(c, p) {
			return false
		}
		if v < p || v < c || v > p+c-1 {
			return false
		}
		if p == c && v != p {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// fig8Model is the paper's Fig. 8a: producer vA emits 5 tokens per firing,
// consumer vB takes ηs per firing, connected by one bounded channel. The
// consumer is modelled as instantaneous so the channel structure — not
// pipelining slack — determines the minimum capacity, matching the paper's
// table in Fig. 8b.
func fig8Model(eta int64) (*dataflow.Graph, Channel, dataflow.ActorID) {
	g := dataflow.NewGraph("fig8")
	a := g.AddActor("vA", 5)
	b := g.AddActor("vB", 0)
	fwd, back := g.AddBuffer("ab", a, b, dataflow.Const(5), dataflow.Const(eta), 1)
	return g, Channel{Fwd: fwd, Back: back}, a
}

func TestFig8NonMonotoneBufferCapacities(t *testing.T) {
	want := map[int64]int64{1: 5, 2: 6, 3: 7, 4: 8, 5: 5}
	for eta, exp := range want {
		g, ch, mon := fig8Model(eta)
		s := &Sizer{G: g, Channels: []Channel{ch}, Monitor: mon}
		maxTh, err := s.MaxThroughput()
		if err != nil {
			t.Fatalf("eta=%d: %v", eta, err)
		}
		caps, err := s.MinCapacitiesForThroughput(maxTh)
		if err != nil {
			t.Fatalf("eta=%d: %v", eta, err)
		}
		if caps[0] != exp {
			t.Errorf("eta=%d: min capacity = %d, want %d (paper Fig. 8b)", eta, caps[0], exp)
		}
		if caps[0] != ClassicalMinCapacity(5, eta) {
			t.Errorf("eta=%d: search %d != classical %d", eta, caps[0], ClassicalMinCapacity(5, eta))
		}
	}
}

func TestFig8NonMonotonicityStatement(t *testing.T) {
	// The paper's two claims: α(2) > α(5) (smaller block needs MORE buffer)
	// while α(1) < α(2).
	alpha := func(eta int64) int64 {
		g, ch, mon := fig8Model(eta)
		s := &Sizer{G: g, Channels: []Channel{ch}, Monitor: mon}
		maxTh, err := s.MaxThroughput()
		if err != nil {
			t.Fatal(err)
		}
		caps, err := s.MinCapacitiesForThroughput(maxTh)
		if err != nil {
			t.Fatal(err)
		}
		return caps[0]
	}
	a1, a2, a5 := alpha(1), alpha(2), alpha(5)
	if !(a2 > a5) {
		t.Errorf("expected alpha(2)=%d > alpha(5)=%d", a2, a5)
	}
	if !(a1 < a2) {
		t.Errorf("expected alpha(1)=%d < alpha(2)=%d", a1, a2)
	}
}

func TestMinCapacityDeadlockFreeMatchesClassical(t *testing.T) {
	for _, pc := range [][2]int64{{5, 1}, {5, 2}, {5, 3}, {5, 4}, {5, 5}, {5, 6}, {3, 2}, {4, 6}, {7, 3}} {
		g := dataflow.NewGraph("dl")
		a := g.AddActor("a", 1)
		b := g.AddActor("b", 1)
		fwd, back := g.AddBuffer("ab", a, b, dataflow.Const(pc[0]), dataflow.Const(pc[1]), 1)
		s := &Sizer{G: g, Channels: []Channel{{Fwd: fwd, Back: back}}, Monitor: a}
		got, err := s.MinCapacityDeadlockFree(0, []int64{1}, 64)
		if err != nil {
			t.Fatalf("p=%d c=%d: %v", pc[0], pc[1], err)
		}
		if want := ClassicalMinCapacity(pc[0], pc[1]); got != want {
			t.Errorf("p=%d c=%d: deadlock-free min = %d, want %d", pc[0], pc[1], got, want)
		}
	}
}

func TestMaxThroughputSimplePipeline(t *testing.T) {
	g := dataflow.NewGraph("p")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 3)
	fwd, back := g.AddBuffer("ab", a, b, dataflow.Const(1), dataflow.Const(1), 1)
	s := &Sizer{G: g, Channels: []Channel{{fwd, back}}, Monitor: b}
	th, err := s.MaxThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if th.Cmp(big.NewRat(1, 3)) != 0 {
		t.Errorf("max throughput = %v, want 1/3", th)
	}
}

func TestMinCapacitiesForReducedThroughput(t *testing.T) {
	// Requiring less than max throughput must never need more buffer.
	g := dataflow.NewGraph("p")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 2)
	fwd, back := g.AddBuffer("ab", a, b, dataflow.Const(1), dataflow.Const(1), 1)
	s := &Sizer{G: g, Channels: []Channel{{fwd, back}}, Monitor: b}
	maxTh, err := s.MaxThroughput()
	if err != nil {
		t.Fatal(err)
	}
	capsMax, err := s.MinCapacitiesForThroughput(maxTh)
	if err != nil {
		t.Fatal(err)
	}
	half := new(big.Rat).Mul(maxTh, big.NewRat(1, 2))
	capsHalf, err := s.MinCapacitiesForThroughput(half)
	if err != nil {
		t.Fatal(err)
	}
	if capsHalf[0] > capsMax[0] {
		t.Errorf("half-rate caps %v exceed full-rate caps %v", capsHalf, capsMax)
	}
}

func TestInfeasibleTarget(t *testing.T) {
	g := dataflow.NewGraph("p")
	a := g.AddActor("a", 4)
	b := g.AddActor("b", 4)
	fwd, back := g.AddBuffer("ab", a, b, dataflow.Const(1), dataflow.Const(1), 1)
	s := &Sizer{G: g, Channels: []Channel{{fwd, back}}, Monitor: b}
	// 1 token per cycle is impossible with duration-4 actors.
	if _, err := s.MinCapacitiesForThroughput(big.NewRat(1, 1)); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestOptimalCapacitiesTwoChannels(t *testing.T) {
	// Three-stage pipeline; optimal total capacity should not exceed the
	// greedy result and must meet max throughput.
	g := dataflow.NewGraph("p3")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 4)
	c := g.AddActor("c", 2)
	f1, b1 := g.AddBuffer("ab", a, b, dataflow.Const(2), dataflow.Const(1), 1)
	f2, b2 := g.AddBuffer("bc", b, c, dataflow.Const(1), dataflow.Const(2), 1)
	s := &Sizer{G: g, Channels: []Channel{{f1, b1}, {f2, b2}}, Monitor: c}
	maxTh, err := s.MaxThroughput()
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := s.MinCapacitiesForThroughput(maxTh)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.OptimalCapacities(maxTh)
	if err != nil {
		t.Fatal(err)
	}
	if sum(opt) > sum(greedy) {
		t.Errorf("optimal %v (sum %d) worse than greedy %v (sum %d)", opt, sum(opt), greedy, sum(greedy))
	}
	if ok, err := s.feasible(opt, maxTh); err != nil || !ok {
		t.Errorf("optimal assignment infeasible: %v %v", ok, err)
	}
}

func TestOptimalCapacitiesMatchGreedySingleChannel(t *testing.T) {
	g, ch, mon := fig8Model(3)
	s := &Sizer{G: g, Channels: []Channel{ch}, Monitor: mon}
	maxTh, err := s.MaxThroughput()
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := s.MinCapacitiesForThroughput(maxTh)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.OptimalCapacities(maxTh)
	if err != nil {
		t.Fatal(err)
	}
	if greedy[0] != opt[0] {
		t.Errorf("single channel: greedy %v != optimal %v", greedy, opt)
	}
}

func TestParetoSweepStaircase(t *testing.T) {
	g := dataflow.NewGraph("pareto")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 3)
	fwd, back := g.AddBuffer("ab", a, b, dataflow.Const(2), dataflow.Const(3), 1)
	s := &Sizer{G: g, Channels: []Channel{{fwd, back}}, Monitor: b}
	pts, err := s.ParetoSweep(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Total < pts[i-1].Total {
			t.Fatalf("totals decrease along the sweep: %v", pts)
		}
		if pts[i].Throughput.Cmp(pts[i-1].Throughput) <= 0 {
			t.Fatal("targets not increasing")
		}
	}
	// The last point is the max-throughput sizing.
	maxTh, _ := s.MaxThroughput()
	if pts[len(pts)-1].Throughput.Cmp(maxTh) != 0 {
		t.Error("final point is not the maximum throughput")
	}
	if _, err := s.ParetoSweep(0); err == nil {
		t.Error("zero steps accepted")
	}
}
