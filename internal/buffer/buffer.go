// Package buffer computes minimum buffer capacities for SDF/CSDF graphs, the
// analysis the paper delegates to Geilen/Basten/Stuijk [20]. Capacities are
// modelled as initial tokens on back edges; throughput is monotonically
// non-decreasing in every capacity (a classical property of self-timed
// dataflow execution), which makes per-channel binary search sound. The
// exact minimum-total-capacity assignment is found by branch and bound.
//
// The paper's Fig. 8 uses this machinery to demonstrate that minimum buffer
// capacities are NOT monotone in the block size ηs, which is why block sizes
// cannot simply be minimised to minimise memory.
package buffer

import (
	"errors"
	"fmt"
	"math/big"

	"accelshare/internal/dataflow"
)

// Channel identifies one bounded FIFO in a graph: the forward (data) edge
// and the back (space) edge created by Graph.AddBuffer. The capacity of the
// channel is the initial-token count of the back edge.
type Channel struct {
	Fwd  dataflow.EdgeID
	Back dataflow.EdgeID
}

// Sizer computes buffer capacities for the channels of a graph. Monitor is
// the actor whose steady-state firing rate defines "throughput".
type Sizer struct {
	G        *dataflow.Graph
	Channels []Channel
	Monitor  dataflow.ActorID

	// MaxEvents bounds each underlying simulation (0 = package default).
	MaxEvents uint64
}

// ErrInfeasible is returned when no capacity assignment reaches the target.
var ErrInfeasible = errors.New("buffer: throughput target infeasible at any capacity")

func (s *Sizer) maxEvents() uint64 {
	if s.MaxEvents == 0 {
		return 20_000_000
	}
	return s.MaxEvents
}

// relaxed returns per-channel capacities large enough not to constrain any
// schedule: several iterations' worth of tokens plus slack. Keeping the
// values proportional to the iteration volume (rather than "infinite")
// bounds the state space of the recurrence detector.
func (s *Sizer) relaxed() ([]int64, error) {
	rv, err := s.G.Repetitions()
	if err != nil {
		return nil, err
	}
	caps := make([]int64, len(s.Channels))
	for i, ch := range s.Channels {
		vol := s.G.TokensPerIteration(rv, ch.Fwd)
		e := &s.G.Edges[ch.Fwd]
		slack := e.Prod.Sum() + e.Cons.Sum() + s.G.Edges[ch.Fwd].Initial
		caps[i] = 8*vol + slack + 8
	}
	return caps, nil
}

// withCapacities returns a copy of the graph with the channels set to the
// given capacities.
func (s *Sizer) withCapacities(caps []int64) *dataflow.Graph {
	g := s.G.Clone()
	for i, ch := range s.Channels {
		g.Edges[ch.Back].Initial = caps[i]
	}
	return g
}

// throughputAt simulates with the given capacities and returns the monitor
// actor's exact rate (zero when deadlocked).
func (s *Sizer) throughputAt(caps []int64) (*big.Rat, error) {
	g := s.withCapacities(caps)
	res, err := g.Simulate(dataflow.SimOptions{DetectPeriod: true, MaxEvents: s.maxEvents()})
	if err != nil {
		return nil, err
	}
	if res.Deadlocked {
		return new(big.Rat), nil
	}
	if !res.Periodic {
		return nil, dataflow.ErrNotPeriodic
	}
	return res.Throughput(s.Monitor), nil
}

// feasible reports whether the capacities reach at least the target rate.
func (s *Sizer) feasible(caps []int64, target *big.Rat) (bool, error) {
	th, err := s.throughputAt(caps)
	if err != nil {
		return false, err
	}
	return th.Cmp(target) >= 0, nil
}

// MaxThroughput returns the monitor actor's rate with all channels
// effectively unbounded: the best any finite sizing can achieve.
func (s *Sizer) MaxThroughput() (*big.Rat, error) {
	caps, err := s.relaxed()
	if err != nil {
		return nil, err
	}
	return s.throughputAt(caps)
}

// occupancyBounds runs the relaxed graph and returns, per channel, the peak
// space in use (capacity minus the minimum back-edge token count). A
// capacity equal to the peak space usage lets the producer claim space at
// exactly the times of the relaxed schedule, so the relaxed execution — and
// its throughput — is reproduced; the values are therefore sufficient upper
// bounds for any feasible target.
func (s *Sizer) occupancyBounds() ([]int64, error) {
	relaxedCaps, err := s.relaxed()
	if err != nil {
		return nil, err
	}
	g := s.withCapacities(relaxedCaps)
	res, err := g.Simulate(dataflow.SimOptions{DetectPeriod: true, MaxEvents: s.maxEvents()})
	if err != nil {
		return nil, err
	}
	ub := make([]int64, len(s.Channels))
	for i, ch := range s.Channels {
		ub[i] = relaxedCaps[i] - res.MinTokens[ch.Back]
		if ub[i] < 1 {
			ub[i] = 1
		}
	}
	return ub, nil
}

// minForChannel binary-searches the smallest capacity of channel i reaching
// the target while all other channels are fixed at `others`.
func (s *Sizer) minForChannel(i int, others []int64, ub int64, target *big.Rat) (int64, error) {
	lo, hi := int64(1), ub
	caps := append([]int64(nil), others...)
	caps[i] = hi
	ok, err := s.feasible(caps, target)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, ErrInfeasible
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		caps[i] = mid
		ok, err := s.feasible(caps, target)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// MinCapacitiesForThroughput finds a capacity vector meeting the target
// using iterated per-channel minimisation (a fast greedy fixpoint). The
// result is component-wise locally minimal: no single channel can shrink
// further. For the guaranteed minimum total capacity use OptimalCapacities.
func (s *Sizer) MinCapacitiesForThroughput(target *big.Rat) ([]int64, error) {
	ub, err := s.occupancyBounds()
	if err != nil {
		return nil, err
	}
	if ok, err := s.feasible(ub, target); err != nil {
		return nil, err
	} else if !ok {
		return nil, ErrInfeasible
	}
	caps := append([]int64(nil), ub...)
	for pass := 0; pass < len(s.Channels)+2; pass++ {
		changed := false
		for i := range s.Channels {
			m, err := s.minForChannel(i, caps, caps[i], target)
			if err != nil {
				return nil, err
			}
			if m != caps[i] {
				caps[i] = m
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return caps, nil
}

// OptimalCapacities finds the capacity vector with minimum total capacity
// meeting the target rate, by branch and bound over [lb_i, ub_i] per
// channel. lb_i is the per-channel minimum with all other channels relaxed
// to their upper bound; pruning uses monotonicity of throughput in every
// capacity. Exponential in the number of channels — matching the paper's
// remark that the optimal computation is "computationally intensive".
func (s *Sizer) OptimalCapacities(target *big.Rat) ([]int64, error) {
	ub, err := s.occupancyBounds()
	if err != nil {
		return nil, err
	}
	if ok, err := s.feasible(ub, target); err != nil {
		return nil, err
	} else if !ok {
		return nil, ErrInfeasible
	}
	n := len(s.Channels)
	lb := make([]int64, n)
	for i := 0; i < n; i++ {
		m, err := s.minForChannel(i, ub, ub[i], target)
		if err != nil {
			return nil, err
		}
		lb[i] = m
	}
	best := append([]int64(nil), ub...)
	bestSum := sum(ub)
	// Seed with the greedy solution for a tight initial bound.
	if greedy, err := s.MinCapacitiesForThroughput(target); err == nil {
		if gs := sum(greedy); gs < bestSum {
			best, bestSum = greedy, gs
		}
	}
	cur := make([]int64, n)
	var dfs func(i int, partial int64) error
	dfs = func(i int, partial int64) error {
		if i == n {
			ok, err := s.feasible(cur, target)
			if err != nil {
				return err
			}
			if ok && partial < bestSum {
				bestSum = partial
				best = append([]int64(nil), cur...)
			}
			return nil
		}
		restLB := int64(0)
		for j := i + 1; j < n; j++ {
			restLB += lb[j]
		}
		for v := lb[i]; v <= ub[i]; v++ {
			if partial+v+restLB >= bestSum {
				break
			}
			cur[i] = v
			// Monotonicity prune: if even relaxing all later channels fails,
			// no extension of this prefix works — and neither does any
			// smaller v, but we iterate upward so just skip.
			probe := append([]int64(nil), cur[:i+1]...)
			probe = append(probe, ub[i+1:]...)
			ok, err := s.feasible(probe, target)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := dfs(i+1, partial+v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(0, 0); err != nil {
		return nil, err
	}
	return best, nil
}

// MinCapacityDeadlockFree binary-searches the smallest capacity of a single
// channel for which the graph does not deadlock, all other channels fixed.
func (s *Sizer) MinCapacityDeadlockFree(i int, others []int64, ub int64) (int64, error) {
	lo, hi := int64(1), ub
	caps := append([]int64(nil), others...)
	check := func(v int64) (bool, error) {
		caps[i] = v
		g := s.withCapacities(caps)
		dl, err := g.Deadlocks(s.maxEvents())
		return !dl, err
	}
	if ok, err := check(hi); err != nil {
		return 0, err
	} else if !ok {
		return 0, fmt.Errorf("buffer: channel %d deadlocks even at capacity %d", i, ub)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		ok, err := check(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// ClassicalMinCapacity is the textbook single-edge bound: a producer with
// quantum p and a consumer with quantum c need a FIFO of p+c-gcd(p,c)
// tokens for deadlock-free rate-optimal execution. The paper's Fig. 8 table
// equals this bound for p = 5, c = ηs.
func ClassicalMinCapacity(p, c int64) int64 {
	return p + c - gcd(p, c)
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func sum(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}

// ParetoPoint relates one throughput target to its minimum buffer sizing.
type ParetoPoint struct {
	// Throughput is the target rate of the monitor actor.
	Throughput *big.Rat
	// Capacities is the (greedy-minimal) per-channel sizing reaching it.
	Capacities []int64
	// Total is the summed capacity.
	Total int64
}

// ParetoSweep traces the throughput/buffer trade-off: minimum capacities
// for k/steps of the maximum throughput, k = 1..steps. The result is a
// staircase — throughput is monotone in capacity, so totals never decrease
// along the sweep — useful for picking an operating point below the
// maximum rate (the paper's Eq. 5 only needs μs, not the maximum).
func (s *Sizer) ParetoSweep(steps int) ([]ParetoPoint, error) {
	if steps < 1 {
		return nil, fmt.Errorf("buffer: sweep needs >= 1 step")
	}
	maxTh, err := s.MaxThroughput()
	if err != nil {
		return nil, err
	}
	if maxTh.Sign() == 0 {
		return nil, fmt.Errorf("buffer: graph has zero maximum throughput")
	}
	var out []ParetoPoint
	for k := 1; k <= steps; k++ {
		target := new(big.Rat).Mul(maxTh, big.NewRat(int64(k), int64(steps)))
		caps, err := s.MinCapacitiesForThroughput(target)
		if err != nil {
			return nil, fmt.Errorf("step %d/%d: %w", k, steps, err)
		}
		out = append(out, ParetoPoint{Throughput: target, Capacities: caps, Total: sum(caps)})
	}
	return out, nil
}
