package buffer

import (
	"testing"

	"accelshare/internal/dataflow"
)

func BenchmarkMinCapacitySingleChannel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := dataflow.NewGraph("bench")
		a := g.AddActor("a", 5)
		c := g.AddActor("b", 0)
		fwd, back := g.AddBuffer("ab", a, c, dataflow.Const(5), dataflow.Const(3), 1)
		s := &Sizer{G: g, Channels: []Channel{{Fwd: fwd, Back: back}}, Monitor: a}
		maxTh, err := s.MaxThroughput()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.MinCapacitiesForThroughput(maxTh); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalCapacitiesTwoChannels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := dataflow.NewGraph("bench2")
		a := g.AddActor("a", 2)
		c := g.AddActor("b", 4)
		d := g.AddActor("c", 2)
		f1, b1 := g.AddBuffer("ab", a, c, dataflow.Const(2), dataflow.Const(1), 1)
		f2, b2 := g.AddBuffer("bc", c, d, dataflow.Const(1), dataflow.Const(2), 1)
		s := &Sizer{G: g, Channels: []Channel{{f1, b1}, {f2, b2}}, Monitor: d}
		maxTh, err := s.MaxThroughput()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.OptimalCapacities(maxTh); err != nil {
			b.Fatal(err)
		}
	}
}
