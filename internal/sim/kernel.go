package sim

import "math/bits"

// The event scheduler is a single-level timing wheel (a calendar queue with
// cycle granularity) backed by an overflow heap:
//
//   - Events within wheelSize cycles of the clock live in a circular array of
//     wheelSize slots, indexed by (at & wheelMask). Each slot is an intrusive
//     singly-linked FIFO list; because inserts always happen with base == now
//     (see cascade) and the window is exactly one wheel revolution, every
//     event in a given slot carries the *same* absolute time, so tail-append
//     preserves the (time, seq) total order without any comparison.
//   - Events at or beyond now+wheelSize wait in a typed min-heap ordered by
//     (at, seq) — no interface boxing — and migrate into the wheel as the
//     clock approaches them (cascade). Migration pops in (at, seq) order and
//     tail-appends, so merged slots stay seq-sorted.
//   - Fired event records are recycled through an intrusive free list; the
//     steady-state Schedule/Step cycle allocates nothing (proved by
//     TestKernelZeroAlloc with testing.AllocsPerRun).
//
// A per-slot occupancy bitmap lets Step find the next nonempty slot with a
// handful of word scans (math/bits.TrailingZeros64) instead of walking 4096
// slots. The semantics — including the "scheduling into the past" panic and
// Run's horizon clamp — are identical to the reference heap implementation in
// kernel_ref.go; TestKernelDifferential and FuzzKernelSchedule enforce that.

const (
	wheelBits  = 12
	wheelSize  = 1 << wheelBits // cycles covered by the near-term wheel
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64 // occupancy bitmap words
)

type event struct {
	at   Time
	seq  uint64
	fn   func()
	next *event
}

type slot struct {
	head, tail *event
}

// Kernel owns the clock and the event queue.
type Kernel struct {
	now Time
	seq uint64
	// live counts scheduled-but-unfired events.
	live int
	// slots[t & wheelMask] holds events with at in [now, now+wheelSize).
	slots []slot
	// occupied has bit s set iff slots[s] is nonempty.
	occupied []uint64
	// overflow is a min-heap on (at, seq) of events beyond the wheel window.
	overflow []*event
	// free is the recycled-event list (intrusive via event.next).
	free *event
	// Processed counts executed events (for budget checks in tests).
	Processed uint64
}

// NewKernel returns a kernel at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Schedule runs fn after delay cycles (delay 0 = later in the same cycle).
//
//accellint:noalloc guard=TestKernelZeroAllocSteadyState
func (k *Kernel) Schedule(delay Time, fn func()) {
	k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt runs fn at absolute time t (panics when t is in the past —
// that is always a component bug).
//
//accellint:noalloc guard=TestKernelZeroAllocSteadyState
func (k *Kernel) ScheduleAt(t Time, fn func()) {
	if t < k.now {
		panic("sim: scheduling into the past")
	}
	if k.slots == nil {
		//accellint:alloc first-schedule lazy sizing of the wheel
		k.slots = make([]slot, wheelSize)
		//accellint:alloc first-schedule lazy sizing of the occupancy bitmap
		k.occupied = make([]uint64, wheelWords)
	}
	// Migrate matured overflow events first so that a same-time event already
	// waiting in the overflow heap (necessarily older, hence smaller seq)
	// lands in the slot ahead of the one being scheduled now.
	k.cascade()
	k.seq++
	e := k.alloc()
	e.at, e.seq, e.fn = t, k.seq, fn
	k.live++
	if t-k.now < wheelSize {
		k.pushSlot(e)
	} else {
		k.pushOverflow(e)
	}
}

// Pending reports whether any events remain.
func (k *Kernel) Pending() bool { return k.live > 0 }

// Step executes the next event; it reports false when the queue is empty.
//
//accellint:noalloc guard=TestKernelZeroAllocSteadyState
func (k *Kernel) Step() bool {
	e := k.popNext()
	if e == nil {
		return false
	}
	k.now = e.at
	k.Processed++
	fn := e.fn
	// Recycle before invoking fn: a callback that reschedules itself (the
	// dominant pattern — tile service, DMA ticks, source periods) reuses this
	// record immediately instead of growing the pool.
	k.recycle(e)
	fn()
	return true
}

// Run processes events until the queue is empty or the next event lies
// beyond `until`; the clock ends at min(until, last event time). Returns
// the final time.
func (k *Kernel) Run(until Time) Time {
	for {
		t, ok := k.peek()
		if !ok || t > until {
			break
		}
		k.Step()
	}
	if k.now < until {
		k.now = until
	}
	return k.now
}

// RunAll processes every event. Componentized models that reschedule
// themselves forever must use Run with a horizon instead.
func (k *Kernel) RunAll() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil processes events until cond returns true (checked after every
// event), the queue drains, or the horizon passes. It returns true when
// cond was met — the idiom for driving a simulation to an asynchronous
// milestone (a mode transition completing, a verdict landing) without
// guessing its wall-clock time.
func (k *Kernel) RunUntil(until Time, cond func() bool) bool {
	if cond() {
		return true
	}
	for {
		t, ok := k.peek()
		if !ok || t > until {
			return false
		}
		k.Step()
		if cond() {
			return true
		}
	}
}

// NextEventTime reports the time of the earliest pending event. It is the
// lookahead hook the parallel Group runner uses to prove a kernel cannot
// produce work inside a window.
func (k *Kernel) NextEventTime() (Time, bool) { return k.peek() }

// --- wheel internals ---

// alloc takes an event record from the free list, or allocates one when the
// pool is empty (cold start / high-water growth only).
//
//accellint:noalloc guard=TestKernelZeroAllocPooledBurst
func (k *Kernel) alloc() *event {
	if e := k.free; e != nil {
		k.free = e.next
		e.next = nil
		return e
	}
	//accellint:alloc pool growth to the live-event high-water mark
	return &event{}
}

// recycle clears a fired record and pushes it onto the free list.
//
//accellint:noalloc guard=TestKernelZeroAllocPooledBurst
func (k *Kernel) recycle(e *event) {
	e.fn = nil
	e.next = k.free
	k.free = e
}

// cascade migrates overflow events whose time has entered the wheel window.
// It must run before any slot insert and before any wheel scan: the wheel
// invariant is that every resident event satisfies at - now < wheelSize, so
// slot index (at & wheelMask) is unambiguous and slot lists are FIFO-by-seq.
// Pops come off the heap in (at, seq) order, so tail-appending keeps every
// slot sorted even when it merges migrants with residents.
func (k *Kernel) cascade() {
	for len(k.overflow) > 0 && k.overflow[0].at-k.now < wheelSize {
		k.pushSlot(k.popOverflow())
	}
}

func (k *Kernel) pushSlot(e *event) {
	s := int(e.at) & wheelMask
	sl := &k.slots[s]
	if sl.head == nil {
		sl.head = e
		k.occupied[s>>6] |= 1 << uint(s&63)
	} else {
		sl.tail.next = e
	}
	sl.tail = e
}

// scanWheel finds the slot of the earliest wheel event, scanning the
// occupancy bitmap circularly from the slot of `now`. Because every resident
// event is within one revolution of now, circular distance from now's slot
// equals temporal distance.
func (k *Kernel) scanWheel() (int, bool) {
	s0 := int(k.now) & wheelMask
	w0 := s0 >> 6
	off := uint(s0 & 63)
	if v := k.occupied[w0] >> off; v != 0 {
		return s0 + bits.TrailingZeros64(v), true
	}
	for i := 1; i <= wheelWords; i++ {
		w := (w0 + i) & (wheelWords - 1)
		if v := k.occupied[w]; v != 0 {
			return w<<6 + bits.TrailingZeros64(v), true
		}
	}
	return 0, false
}

// peek returns the earliest pending event time without removing it.
func (k *Kernel) peek() (Time, bool) {
	if k.live == 0 {
		return 0, false
	}
	k.cascade()
	if s, ok := k.scanWheel(); ok {
		s0 := int(k.now) & wheelMask
		return k.now + Time((s-s0)&wheelMask), true
	}
	return k.overflow[0].at, true
}

// popNext removes and returns the earliest pending event (nil when empty).
// After cascade, every overflow event is at least a full wheel revolution
// away, so any wheel resident beats the overflow top.
func (k *Kernel) popNext() *event {
	if k.live == 0 {
		return nil
	}
	k.live--
	k.cascade()
	if s, ok := k.scanWheel(); ok {
		sl := &k.slots[s]
		e := sl.head
		sl.head = e.next
		if sl.head == nil {
			sl.tail = nil
			k.occupied[s>>6] &^= 1 << uint(s&63)
		}
		e.next = nil
		return e
	}
	return k.popOverflow()
}

// --- overflow heap (typed, no boxing) ---

func overflowLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//accellint:noalloc guard=TestKernelZeroAllocOverflow
func (k *Kernel) pushOverflow(e *event) {
	//accellint:alloc heap growth to the far-future high-water mark
	k.overflow = append(k.overflow, e)
	i := len(k.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !overflowLess(k.overflow[i], k.overflow[parent]) {
			break
		}
		k.overflow[i], k.overflow[parent] = k.overflow[parent], k.overflow[i]
		i = parent
	}
}

func (k *Kernel) popOverflow() *event {
	h := k.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	k.overflow = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && overflowLess(h[l], h[min]) {
			min = l
		}
		if r < n && overflowLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}
