package sim

import "container/heap"

// heapKernel is the original container/heap event scheduler, kept verbatim
// as the in-package reference implementation for the differential and fuzz
// harnesses (TestKernelDifferential, FuzzKernelSchedule): the timing-wheel
// Kernel must reproduce its firing order, times and clock at every step. It
// is deliberately not exported — production code always uses Kernel.
type heapKernel struct {
	now       Time
	seq       uint64
	events    refEventHeap
	Processed uint64
}

type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refEventHeap []refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refEventHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refEventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func newHeapKernel() *heapKernel { return &heapKernel{} }

func (k *heapKernel) Now() Time { return k.now }

func (k *heapKernel) Schedule(delay Time, fn func()) {
	k.ScheduleAt(k.now+delay, fn)
}

func (k *heapKernel) ScheduleAt(t Time, fn func()) {
	if t < k.now {
		panic("sim: scheduling into the past")
	}
	k.seq++
	heap.Push(&k.events, refEvent{at: t, seq: k.seq, fn: fn})
}

func (k *heapKernel) Pending() bool { return len(k.events) > 0 }

func (k *heapKernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(refEvent)
	k.now = e.at
	k.Processed++
	e.fn()
	return true
}

func (k *heapKernel) Run(until Time) Time {
	for len(k.events) > 0 && k.events[0].at <= until {
		k.Step()
	}
	if k.now < until {
		k.now = until
	}
	return k.now
}

func (k *heapKernel) RunAll() Time {
	for k.Step() {
	}
	return k.now
}

func (k *heapKernel) RunUntil(until Time, cond func() bool) bool {
	if cond() {
		return true
	}
	for len(k.events) > 0 && k.events[0].at <= until {
		k.Step()
		if cond() {
			return true
		}
	}
	return false
}

func (k *heapKernel) NextEventTime() (Time, bool) {
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}
