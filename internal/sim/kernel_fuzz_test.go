package sim

import "testing"

// FuzzKernelSchedule decodes arbitrary bytes into a scheduling script (two
// bytes per op) and cross-checks the timing-wheel Kernel against the heap
// reference after every op: clock, pending state, next-event time, firing
// log — and panic parity for past-time ScheduleAt attempts.
func FuzzKernelSchedule(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 5, 0, 4, 3})                         // delta cycles + step
	f.Add([]byte{2, 255, 2, 255, 6, 255, 5, 0, 5, 0})             // deep overflow + run
	f.Add([]byte{0, 16, 4, 3, 5, 0, 3, 0, 3, 200, 6, 64})         // chains + past-time probes
	f.Add([]byte{1, 0, 1, 0, 1, 0, 5, 0, 5, 0, 5, 0, 5, 0})       // same-cycle FIFO burst
	f.Add([]byte{0, 250, 6, 250, 0, 1, 5, 0, 7, 2, 6, 255, 5, 0}) // horizon clamps

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048]
		}
		w := &diffDriver{k: NewKernel()}
		h := &diffDriver{k: newHeapKernel()}
		id := 0
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%8, data[i+1]
			switch op {
			case 0: // relative delay, quadratic spread reaches past the wheel window
				d := Time(arg) * Time(arg)
				id++
				w.k.Schedule(d, w.hook(id, 0, 0))
				h.k.Schedule(d, h.hook(id, 0, 0))
			case 1: // delta cycle
				id++
				w.k.Schedule(0, w.hook(id, 0, 0))
				h.k.Schedule(0, h.hook(id, 0, 0))
			case 2: // absolute, far future
				at := w.k.Now() + Time(arg)<<6
				id++
				w.k.ScheduleAt(at, w.hook(id, 0, 0))
				h.k.ScheduleAt(at, h.hook(id, 0, 0))
			case 3: // past-time probe: both kernels must agree on panicking
				at := Time(arg)
				id++
				pw := schedulePanic(w.k, at, w.hook(id, 0, 0))
				ph := schedulePanic(h.k, at, h.hook(id, 0, 0))
				if pw != ph {
					t.Fatalf("op %d: ScheduleAt(%d) panic wheel=%q heap=%q", i, at, pw, ph)
				}
			case 4: // cascading reschedules from inside callbacks
				d := Time(arg % 17)
				n := int(arg % 5)
				id++
				w.k.Schedule(d, w.hook(id, n, d))
				h.k.Schedule(d, h.hook(id, n, d))
			case 5:
				if sw, sh := w.k.Step(), h.k.Step(); sw != sh {
					t.Fatalf("op %d: Step wheel=%v heap=%v", i, sw, sh)
				}
			case 6:
				hor := w.k.Now() + Time(arg)<<4
				if tw, th := w.k.Run(hor), h.k.Run(hor); tw != th {
					t.Fatalf("op %d: Run wheel=%d heap=%d", i, tw, th)
				}
			case 7:
				target := len(w.log) + int(arg%4)
				hor := w.k.Now() + Time(arg)<<2
				cw := w.k.RunUntil(hor, func() bool { return len(w.log) >= target })
				ch := h.k.RunUntil(hor, func() bool { return len(h.log) >= target })
				if cw != ch {
					t.Fatalf("op %d: RunUntil wheel=%v heap=%v", i, cw, ch)
				}
			}
			diffCompare(t, i, w, h)
		}
		w.k.RunAll()
		h.k.RunAll()
		diffCompare(t, len(data), w, h)
	})
}

// schedulePanic invokes ScheduleAt and returns the recovered panic message
// ("" when no panic occurred).
func schedulePanic(k schedKernel, at Time, fn func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg, _ = r.(string)
			if msg == "" {
				msg = "non-string panic"
			}
		}
	}()
	k.ScheduleAt(at, fn)
	return ""
}
