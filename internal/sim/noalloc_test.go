package sim

import "testing"

// The testing.AllocsPerRun guards backing the //accellint:noalloc
// annotations in this package (the guard=TestName arguments name these
// tests; TestNoallocGuardsExist in internal/analysis cross-validates the
// pairing). Each guard warms the cold-start allocations first — wheel
// arrays, pool growth — then pins the steady state at zero.

func TestWakerZeroAlloc(t *testing.T) {
	k := NewKernel()
	fired := 0
	w := NewWaker(k, func() { fired++ })
	w.Wake() // cold start: wheel arrays + first event record
	k.RunAll()
	if a := testing.AllocsPerRun(500, func() {
		w.Wake()
		w.Wake() // coalesces: pending, no second event
		k.RunAll()
	}); a != 0 {
		t.Fatalf("steady-state Wake allocates %v/op, want 0", a)
	}
	if fired == 0 {
		t.Fatal("waker never fired")
	}
}

func TestQueueZeroAllocBursts(t *testing.T) {
	k := NewKernel()
	q := NewQueue("g", 64)
	q.SubscribeData(NewWaker(k, func() {}))
	q.SubscribeSpace(NewWaker(k, func() {}))
	var block [48]Word
	for i := range block {
		block[i] = Word(i)
	}
	// Cold start: first wake-up events and wheel arrays.
	q.PushBurst(block[:])
	q.PopBurst(block[:])
	k.RunAll()
	if a := testing.AllocsPerRun(500, func() {
		if q.PushBurst(block[:]) != len(block) {
			t.Fatal("push burst rejected")
		}
		if q.PopBurst(block[:]) != len(block) {
			t.Fatal("pop burst starved")
		}
		k.RunAll()
	}); a != 0 {
		t.Fatalf("steady-state Push/PopBurst allocates %v/op, want 0", a)
	}
	if q.TryPush(1) != true || func() bool { _, ok := q.TryPop(); return ok }() != true {
		t.Fatal("single-word path broken")
	}
}

func TestKernelZeroAllocOverflow(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the overflow heap past the working-set high-water mark: the heap
	// keeps its backing array across pops (popOverflow re-slices in place),
	// so steady-state far-future scheduling reuses it.
	for i := 0; i < 64; i++ {
		k.Schedule(wheelSize+Time(i), fn)
	}
	k.RunAll()
	if a := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			k.Schedule(wheelSize+Time(i%7)+1, fn)
		}
		k.RunAll()
	}); a != 0 {
		t.Fatalf("steady-state overflow scheduling allocates %v/op, want 0", a)
	}
}
