// Package sim is a deterministic discrete-event simulation kernel with a
// cycle-granular clock. It underpins the cycle-level MPSoC model (ring
// interconnect, tiles, gateways, accelerators) used to validate the paper's
// dataflow bounds against "hardware".
//
// Determinism: events at equal times fire in scheduling order (a strictly
// increasing sequence number breaks ties), no wall-clock time or randomness
// is involved anywhere, and components are single-threaded state machines —
// so every run of a given configuration produces the identical cycle-exact
// history, immune to Go's GC and scheduler (the repro band's main concern).
package sim

// Time is the simulation clock in cycles.
type Time = uint64

// The Kernel (clock + event scheduler) lives in kernel.go: a timing-wheel
// scheduler with pooled zero-alloc event records. kernel_ref.go keeps the
// original binary-heap scheduler as the reference implementation for the
// differential and fuzz harnesses.

// Waker coalesces wake-up requests for a component's step function: any
// number of Wake calls within one delta-cycle collapse into a single
// invocation of fn at the current time. Components subscribe their Waker to
// the queues they depend on and re-examine all state in fn (idempotent
// step functions), the classic "process network" DES pattern.
type Waker struct {
	k       *Kernel
	fn      func()
	pending bool
	// tick is the coalesced wake-up closure, created once at construction:
	// Wake sits on every queue push/pop and must not allocate per call.
	tick func()
}

// NewWaker binds a step function to the kernel.
func NewWaker(k *Kernel, fn func()) *Waker {
	w := &Waker{k: k, fn: fn}
	w.tick = func() {
		w.pending = false
		w.fn()
	}
	return w
}

// Wake schedules the step function at the current time if not already
// scheduled.
//
//accellint:noalloc guard=TestWakerZeroAlloc
func (w *Waker) Wake() {
	if w.pending {
		return
	}
	w.pending = true
	w.k.Schedule(0, w.tick)
}

// WakeAfter schedules the step function after a delay; unlike Wake it does
// not coalesce (a dedicated timer tick).
func (w *Waker) WakeAfter(d Time) {
	w.k.Schedule(d, w.fn)
}

// Word is the unit of transport on the interconnect: 64 payload bits.
// Complex fixed-point samples pack I into the high and Q into the low half.
type Word uint64

// PackIQ packs two signed 32-bit components into a Word.
func PackIQ(i, q int32) Word {
	return Word(uint64(uint32(i))<<32 | uint64(uint32(q)))
}

// UnpackIQ splits a Word into its signed components.
func UnpackIQ(w Word) (i, q int32) {
	return int32(uint32(w >> 32)), int32(uint32(w))
}

// Queue is a bounded FIFO of words with subscriber wake-ups on both data
// arrival and space release. It is the building block for NI FIFOs, C-FIFO
// payload storage and gateway buffers.
type Queue struct {
	name     string
	capacity int
	buf      []Word
	head     int
	n        int
	onData   []*Waker
	onSpace  []*Waker

	// Pushed and Popped count total traffic for measurement.
	Pushed, Popped uint64
	// MaxOccupancy tracks the high-water mark.
	MaxOccupancy int
}

// NewQueue returns an empty queue with the given capacity (>= 1).
func NewQueue(name string, capacity int) *Queue {
	if capacity < 1 {
		panic("sim: queue capacity must be >= 1")
	}
	return &Queue{name: name, capacity: capacity, buf: make([]Word, capacity)}
}

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.name }

// Len returns the number of buffered words.
func (q *Queue) Len() int { return q.n }

// Cap returns the capacity.
func (q *Queue) Cap() int { return q.capacity }

// Free returns the remaining space.
func (q *Queue) Free() int { return q.capacity - q.n }

// SubscribeData registers a waker invoked whenever a word is pushed.
func (q *Queue) SubscribeData(w *Waker) { q.onData = append(q.onData, w) }

// SubscribeSpace registers a waker invoked whenever a word is popped.
func (q *Queue) SubscribeSpace(w *Waker) { q.onSpace = append(q.onSpace, w) }

// TryPush appends a word, reporting false when full.
//
//accellint:noalloc guard=TestQueueZeroAllocBursts
func (q *Queue) TryPush(v Word) bool {
	if q.n == q.capacity {
		return false
	}
	q.buf[(q.head+q.n)%q.capacity] = v
	q.n++
	q.Pushed++
	if q.n > q.MaxOccupancy {
		q.MaxOccupancy = q.n
	}
	for _, w := range q.onData {
		w.Wake()
	}
	return true
}

// TryPop removes the oldest word, reporting false when empty.
//
//accellint:noalloc guard=TestQueueZeroAllocBursts
func (q *Queue) TryPop() (Word, bool) {
	if q.n == 0 {
		return 0, false
	}
	v := q.buf[q.head]
	q.head = (q.head + 1) % q.capacity
	q.n--
	q.Popped++
	for _, w := range q.onSpace {
		w.Wake()
	}
	return v, true
}

// PushBurst appends words until the queue fills, returning how many were
// accepted. Counters and subscriber wake-ups are identical to calling
// TryPush per word (wakers coalesce within the delta-cycle); the burst form
// lets block transport move a whole block in one component step.
//
//accellint:noalloc guard=TestQueueZeroAllocBursts
func (q *Queue) PushBurst(ws []Word) int {
	n := 0
	for _, v := range ws {
		if !q.TryPush(v) {
			break
		}
		n++
	}
	return n
}

// PopBurst fills dst with up to len(dst) words, returning the count popped.
// Identical per-word semantics to TryPop in a loop.
//
//accellint:noalloc guard=TestQueueZeroAllocBursts
func (q *Queue) PopBurst(dst []Word) int {
	n := 0
	for i := range dst {
		v, ok := q.TryPop()
		if !ok {
			break
		}
		dst[i] = v
		n++
	}
	return n
}

// Clear discards every buffered word without waking subscribers or touching
// the Pushed/Popped counters — the queue simply forgets its contents. It
// models a hardware flush (gateway fault recovery): the discarded words were
// never consumed, so no space-release or credit activity must follow.
func (q *Queue) Clear() {
	q.head = 0
	q.n = 0
}

// Peek returns the oldest word without removing it.
func (q *Queue) Peek() (Word, bool) {
	if q.n == 0 {
		return 0, false
	}
	return q.buf[q.head], true
}
