package sim

import "testing"

// Differential harness: the timing-wheel Kernel and the reference heapKernel
// run identical Schedule/ScheduleAt/Step/Run/RunUntil scripts and must agree
// on the firing order, firing times, clock and queue state at every step —
// including same-time FIFO-by-seq ordering, delay-0 self-reschedules, wheel
// boundary delays and horizon clamps.

// schedKernel is the scheduling surface shared by Kernel and heapKernel.
type schedKernel interface {
	Now() Time
	Schedule(Time, func())
	ScheduleAt(Time, func())
	Pending() bool
	Step() bool
	Run(Time) Time
	RunAll() Time
	RunUntil(Time, func() bool) bool
	NextEventTime() (Time, bool)
}

type firing struct {
	at Time
	id int
}

// diffDriver applies a script to one kernel and logs every firing.
type diffDriver struct {
	k   schedKernel
	log []firing
}

// hook returns a callback that logs (now, id) and, for chain > 0, reschedules
// itself chain more times at the given delay (delay 0 exercises same-cycle
// self-reschedules through the recycled event record).
func (d *diffDriver) hook(id, chain int, delay Time) func() {
	var fn func()
	fn = func() {
		d.log = append(d.log, firing{d.k.Now(), id})
		if chain > 0 {
			chain--
			id += 1 << 20
			d.k.Schedule(delay, fn)
		}
	}
	return fn
}

// diffRand is a self-contained xorshift64 so scripts are reproducible from a
// seed without importing math/rand.
type diffRand uint64

func (r *diffRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = diffRand(x)
	return x
}

// diffDelays mixes the interesting regimes: delta cycles, short wheel
// residence, the exact wheel-window boundary and deep overflow times.
var diffDelays = []Time{0, 1, 1, 2, 3, 7, 64, 1000, wheelSize - 1, wheelSize, wheelSize + 1, 3 * wheelSize, 100000}

func diffCompare(t *testing.T, op int, w, h *diffDriver) {
	t.Helper()
	if w.k.Now() != h.k.Now() {
		t.Fatalf("op %d: now wheel=%d heap=%d", op, w.k.Now(), h.k.Now())
	}
	if w.k.Pending() != h.k.Pending() {
		t.Fatalf("op %d: pending wheel=%v heap=%v", op, w.k.Pending(), h.k.Pending())
	}
	tw, okw := w.k.NextEventTime()
	th, okh := h.k.NextEventTime()
	if okw != okh || tw != th {
		t.Fatalf("op %d: next event wheel=(%d,%v) heap=(%d,%v)", op, tw, okw, th, okh)
	}
	if len(w.log) != len(h.log) {
		t.Fatalf("op %d: fired wheel=%d heap=%d events", op, len(w.log), len(h.log))
	}
	for j := range w.log {
		if w.log[j] != h.log[j] {
			t.Fatalf("op %d: firing %d diverged: wheel=%+v heap=%+v", op, j, w.log[j], h.log[j])
		}
	}
}

func runDiffScript(t *testing.T, seed uint64, ops int) {
	t.Helper()
	w := &diffDriver{k: NewKernel()}
	h := &diffDriver{k: newHeapKernel()}
	r := diffRand(seed | 1)
	id := 0
	for i := 0; i < ops; i++ {
		switch op := r.next() % 10; {
		case op < 3: // relative schedule across all delay regimes
			d := diffDelays[r.next()%uint64(len(diffDelays))]
			id++
			w.k.Schedule(d, w.hook(id, 0, 0))
			h.k.Schedule(d, h.hook(id, 0, 0))
		case op == 3: // same-time burst: FIFO-by-seq within one slot
			d := diffDelays[r.next()%uint64(len(diffDelays))]
			for j := 0; j < 3; j++ {
				id++
				w.k.Schedule(d, w.hook(id, 0, 0))
				h.k.Schedule(d, h.hook(id, 0, 0))
			}
		case op == 4: // absolute schedule
			off := r.next() % (4 * wheelSize)
			id++
			w.k.ScheduleAt(w.k.Now()+off, w.hook(id, 0, 0))
			h.k.ScheduleAt(h.k.Now()+off, h.hook(id, 0, 0))
		case op == 5: // cascading self-reschedule chain
			d := diffDelays[r.next()%uint64(len(diffDelays))]
			n := int(r.next() % 4)
			id++
			w.k.Schedule(d, w.hook(id, n, d))
			h.k.Schedule(d, h.hook(id, n, d))
		case op == 6:
			if sw, sh := w.k.Step(), h.k.Step(); sw != sh {
				t.Fatalf("op %d: Step wheel=%v heap=%v", i, sw, sh)
			}
		case op == 7: // horizon run, including exact wheel-boundary horizons
			hor := w.k.Now() + diffDelays[r.next()%uint64(len(diffDelays))]
			if tw, th := w.k.Run(hor), h.k.Run(hor); tw != th {
				t.Fatalf("op %d: Run(%d) wheel=%d heap=%d", i, hor, tw, th)
			}
		case op == 8: // milestone run: stop after a firing-count target
			target := len(w.log) + int(r.next()%5)
			hor := w.k.Now() + r.next()%5000
			cw := w.k.RunUntil(hor, func() bool { return len(w.log) >= target })
			ch := h.k.RunUntil(hor, func() bool { return len(h.log) >= target })
			if cw != ch {
				t.Fatalf("op %d: RunUntil wheel=%v heap=%v", i, cw, ch)
			}
		default: // drain a few
			for j := 0; j < 8; j++ {
				w.k.Step()
				h.k.Step()
			}
		}
		diffCompare(t, i, w, h)
	}
	w.k.RunAll()
	h.k.RunAll()
	diffCompare(t, ops, w, h)
}

func TestKernelDifferential(t *testing.T) {
	ops := 1500
	seeds := 20
	if testing.Short() {
		ops, seeds = 400, 6
	}
	for s := 0; s < seeds; s++ {
		seed := uint64(s)*0x9e3779b97f4a7c15 + 1
		t.Run("", func(t *testing.T) { runDiffScript(t, seed, ops) })
	}
}

// TestKernelDifferentialDeep is one long soak so the wheel wraps many times
// and overflow cascades interleave with fresh schedules.
func TestKernelDifferentialDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential soak")
	}
	runDiffScript(t, 0xabcdef123456789, 20000)
}
