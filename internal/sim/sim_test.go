package sim

import "testing"

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(10, func() { order = append(order, 2) })
	k.Schedule(5, func() { order = append(order, 1) })
	k.Schedule(10, func() { order = append(order, 3) }) // same time: FIFO by seq
	k.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 10 {
		t.Errorf("now = %d", k.Now())
	}
}

func TestKernelRunHorizon(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(5, func() { fired++ })
	k.Schedule(50, func() { fired++ })
	k.Run(20)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if k.Now() != 20 {
		t.Errorf("now = %d, want 20 (clamped to horizon)", k.Now())
	}
	k.Run(100)
	if fired != 2 || k.Now() != 100 {
		t.Errorf("fired=%d now=%d", fired, k.Now())
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Schedule(1, func() {
		times = append(times, k.Now())
		k.Schedule(2, func() { times = append(times, k.Now()) })
	})
	k.RunAll()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {})
	k.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.ScheduleAt(5, func() {})
}

func TestWakerCoalesces(t *testing.T) {
	k := NewKernel()
	calls := 0
	w := NewWaker(k, func() { calls++ })
	w.Wake()
	w.Wake()
	w.Wake()
	k.RunAll()
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (coalesced)", calls)
	}
	w.Wake()
	k.RunAll()
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (re-armed after firing)", calls)
	}
}

func TestWakerAfter(t *testing.T) {
	k := NewKernel()
	var at Time
	w := NewWaker(k, func() { at = k.Now() })
	w.WakeAfter(7)
	k.RunAll()
	if at != 7 {
		t.Errorf("fired at %d, want 7", at)
	}
}

func TestPackUnpackIQ(t *testing.T) {
	cases := [][2]int32{{0, 0}, {1, -1}, {-32768, 32767}, {1 << 30, -(1 << 30)}, {-1, -1}}
	for _, c := range cases {
		i, q := UnpackIQ(PackIQ(c[0], c[1]))
		if i != c[0] || q != c[1] {
			t.Errorf("roundtrip (%d,%d) -> (%d,%d)", c[0], c[1], i, q)
		}
	}
}

func TestQueueBasics(t *testing.T) {
	q := NewQueue("q", 2)
	if q.Cap() != 2 || q.Len() != 0 || q.Free() != 2 {
		t.Fatal("fresh queue wrong")
	}
	if !q.TryPush(1) || !q.TryPush(2) {
		t.Fatal("pushes failed")
	}
	if q.TryPush(3) {
		t.Fatal("push into full queue succeeded")
	}
	if v, ok := q.Peek(); !ok || v != 1 {
		t.Fatalf("peek = %d %v", v, ok)
	}
	v, ok := q.TryPop()
	if !ok || v != 1 {
		t.Fatalf("pop = %d %v", v, ok)
	}
	if q.MaxOccupancy != 2 {
		t.Errorf("max occupancy = %d", q.MaxOccupancy)
	}
	q.TryPop()
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	if q.Pushed != 2 || q.Popped != 2 {
		t.Errorf("counters: pushed=%d popped=%d", q.Pushed, q.Popped)
	}
}

func TestQueueWakeups(t *testing.T) {
	k := NewKernel()
	q := NewQueue("q", 1)
	dataWakes, spaceWakes := 0, 0
	q.SubscribeData(NewWaker(k, func() { dataWakes++ }))
	q.SubscribeSpace(NewWaker(k, func() { spaceWakes++ }))
	q.TryPush(42)
	k.RunAll()
	if dataWakes != 1 || spaceWakes != 0 {
		t.Errorf("after push: data=%d space=%d", dataWakes, spaceWakes)
	}
	q.TryPop()
	k.RunAll()
	if spaceWakes != 1 {
		t.Errorf("after pop: space=%d", spaceWakes)
	}
}

func TestQueueClearDiscardsSilently(t *testing.T) {
	k := NewKernel()
	q := NewQueue("q", 4)
	spaceWakes := 0
	q.SubscribeSpace(NewWaker(k, func() { spaceWakes++ }))
	q.TryPush(1)
	q.TryPush(2)
	q.TryPush(3)
	k.RunAll()
	q.Clear()
	k.RunAll()
	if q.Len() != 0 {
		t.Fatalf("len = %d after Clear", q.Len())
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop succeeded after Clear")
	}
	if spaceWakes != 0 {
		t.Errorf("Clear woke space subscribers %d times (must be silent)", spaceWakes)
	}
	if q.Pushed != 3 || q.Popped != 0 {
		t.Errorf("Clear changed counters: pushed=%d popped=%d", q.Pushed, q.Popped)
	}
	// Full capacity is usable again and FIFO order is intact.
	for i := 0; i < 4; i++ {
		if !q.TryPush(Word(10 + i)) {
			t.Fatalf("push %d after Clear failed", i)
		}
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryPop()
		if !ok || v != Word(10+i) {
			t.Fatalf("post-Clear pop %d = %d %v", i, v, ok)
		}
	}
}

func TestQueueFIFOOrderWrapAround(t *testing.T) {
	q := NewQueue("q", 3)
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			if !q.TryPush(Word(round*10 + i)) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.TryPop()
			if !ok || v != Word(round*10+i) {
				t.Fatalf("round %d: pop %d = %d", round, i, v)
			}
		}
	}
}

func TestQueueZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue("bad", 0)
}
