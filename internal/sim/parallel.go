package sim

import "sync"

// Group advances several fully independent kernels in lockstep quantum
// windows, one goroutine per kernel within a window. It is the scale-out
// primitive for multi-cell campaigns: each cell (a whole cluster, fleet or
// chain) owns a private Kernel, the Group keeps their clocks aligned, and
// any cross-cell coordination — batched transport, telemetry aggregation,
// verdict exchange — happens in the barrier hook between windows. Use a
// single Kernel when everything can share one event wheel; reach for a
// Group only when the component graphs are disjoint, because that
// disjointness is the entire determinism argument below.
//
// The quantum trades barrier overhead against exchange latency: work
// crossing cells is delayed to the next window boundary, so pick a quantum
// no larger than the minimum cross-cell latency being modelled (the
// cluster cells campaign uses its transport hop latency).
//
// Determinism argument: each kernel owns a disjoint component graph, so the
// events of one kernel never read or write another cell's state — goroutine
// interleaving inside a window cannot be observed. Cross-kernel interaction
// happens only in the barrier hook, which runs single-threaded after every
// kernel has reached the window end and may only schedule work at or beyond
// that boundary (earlier times hit the kernels' scheduling-into-the-past
// panic, because every clock already advanced to the boundary). The parallel
// schedule is therefore byte-identical to the sequential one — pinned by
// TestGroupParallelMatchesSequential and the cluster cells determinism test.
type Group struct {
	kernels  []*Kernel
	quantum  Time
	barrier  func(windowEnd Time)
	parallel bool
}

// NewGroup builds a lockstep runner over the given kernels. The quantum is
// the synchronisation window: smaller quanta mean more frequent cross-cell
// exchange, larger quanta mean less barrier overhead.
func NewGroup(quantum Time, kernels ...*Kernel) *Group {
	if quantum == 0 {
		panic("sim: group quantum must be positive")
	}
	return &Group{kernels: kernels, quantum: quantum, parallel: true}
}

// SetBarrier installs the single-threaded hook run after every window; it
// may inspect any cell and schedule events at times >= windowEnd on any
// kernel.
func (g *Group) SetBarrier(fn func(windowEnd Time)) { g.barrier = fn }

// SetParallel toggles goroutine fan-out; sequential mode exists so tests can
// prove the parallel schedule equals the sequential one.
func (g *Group) SetParallel(p bool) { g.parallel = p }

// Kernels returns the member kernels in group order.
func (g *Group) Kernels() []*Kernel { return g.kernels }

// Run advances every kernel to the horizon in lockstep windows. All member
// clocks must agree when Run is called (they do after any previous Run).
func (g *Group) Run(horizon Time) {
	if len(g.kernels) == 0 {
		return
	}
	start := g.kernels[0].Now()
	for _, k := range g.kernels[1:] {
		if k.Now() != start {
			panic("sim: group kernels misaligned")
		}
	}
	for end := start; end < horizon; {
		end += g.quantum
		if end > horizon {
			end = horizon
		}
		if g.parallel && len(g.kernels) > 1 {
			var wg sync.WaitGroup
			for _, k := range g.kernels {
				wg.Add(1)
				go func(k *Kernel) {
					defer wg.Done()
					k.Run(end)
				}(k)
			}
			wg.Wait()
		} else {
			for _, k := range g.kernels {
				k.Run(end)
			}
		}
		if g.barrier != nil {
			g.barrier(end)
		}
	}
}
