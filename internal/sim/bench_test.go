package sim

import "testing"

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := NewKernel()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.Schedule(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Schedule(1, tick)
	k.RunAll()
	if n < b.N {
		b.Fatal("did not run all events")
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	q := NewQueue("q", 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryPush(Word(i))
		q.TryPop()
	}
}

func BenchmarkWakerWake(b *testing.B) {
	k := NewKernel()
	w := NewWaker(k, func() {})
	for i := 0; i < b.N; i++ {
		w.Wake()
		k.RunAll()
	}
}
