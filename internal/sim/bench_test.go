package sim

import "testing"

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := NewKernel()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.Schedule(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Schedule(1, tick)
	k.RunAll()
	if n < b.N {
		b.Fatal("did not run all events")
	}
}

// benchSteadyPending measures the steady-state schedule-one/fire-one cycle
// with a standing population of pending events spread across the wheel window
// and the overflow heap — the regime every campaign runs in.
func benchSteadyPending(b *testing.B, k schedKernel, pending int) {
	fn := func() {}
	for i := 0; i < pending; i++ {
		k.Schedule(Time(1+i%(2*wheelSize)), fn)
	}
	// Warm up past the initial population's cascade transient so the
	// measured region is genuinely steady-state even at tiny -benchtime
	// (benchrecord records at 3x, where a one-time burst would dominate).
	for i := 0; i < 4*wheelSize; i++ {
		k.Schedule(Time(1+i%(2*wheelSize)), fn)
		k.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(Time(1+i%(2*wheelSize)), fn)
		k.Step()
	}
}

func BenchmarkKernelWheel1kPending(b *testing.B) { benchSteadyPending(b, NewKernel(), 1_000) }

func BenchmarkKernelWheel100kPending(b *testing.B) { benchSteadyPending(b, NewKernel(), 100_000) }

func BenchmarkKernelHeap1kPending(b *testing.B) { benchSteadyPending(b, newHeapKernel(), 1_000) }

func BenchmarkKernelHeap100kPending(b *testing.B) { benchSteadyPending(b, newHeapKernel(), 100_000) }

func BenchmarkQueuePushPop(b *testing.B) {
	q := NewQueue("q", 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryPush(Word(i))
		q.TryPop()
	}
}

func BenchmarkWakerWake(b *testing.B) {
	k := NewKernel()
	w := NewWaker(k, func() {})
	for i := 0; i < b.N; i++ {
		w.Wake()
		k.RunAll()
	}
}
