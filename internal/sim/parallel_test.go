package sim

import "testing"

// groupCell is a self-contained workload on one kernel: a deterministic
// event chain that logs firings and occasionally receives cross-cell tokens
// via the barrier.
type groupCell struct {
	k   *Kernel
	log []firing
	rng diffRand
}

func newGroupCell(seed uint64) *groupCell {
	c := &groupCell{k: NewKernel(), rng: diffRand(seed | 1)}
	var churn func()
	churn = func() {
		c.log = append(c.log, firing{c.k.Now(), 0})
		c.k.Schedule(1+Time(c.rng.next()%97), churn)
	}
	c.k.Schedule(1, churn)
	return c
}

func (c *groupCell) token(id int) func() {
	return func() { c.log = append(c.log, firing{c.k.Now(), id}) }
}

// runGroupScenario runs three cells to the horizon with a barrier that
// passes tokens between cells every window, returning the per-cell logs.
func runGroupScenario(parallel bool) [][]firing {
	cells := []*groupCell{newGroupCell(11), newGroupCell(22), newGroupCell(33)}
	ks := make([]*Kernel, len(cells))
	for i, c := range cells {
		ks[i] = c.k
	}
	g := NewGroup(512, ks...)
	g.SetParallel(parallel)
	tok := 0
	g.SetBarrier(func(end Time) {
		// Deterministic cross-cell exchange: cell i sends a token to cell
		// (i+1)%n, scheduled at the window boundary plus a spread.
		for i, c := range cells {
			tok++
			dst := cells[(i+1)%len(cells)]
			dst.k.ScheduleAt(end+Time(tok%7), dst.token(tok))
			_ = c
		}
	})
	g.Run(20_000)
	logs := make([][]firing, len(cells))
	for i, c := range cells {
		logs[i] = c.log
	}
	return logs
}

func TestGroupParallelMatchesSequential(t *testing.T) {
	seq := runGroupScenario(false)
	par := runGroupScenario(true)
	for i := range seq {
		if len(seq[i]) != len(par[i]) {
			t.Fatalf("cell %d: %d vs %d firings", i, len(seq[i]), len(par[i]))
		}
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("cell %d firing %d: %+v vs %+v", i, j, seq[i][j], par[i][j])
			}
		}
	}
}

func TestGroupBarrierPastSchedulePanics(t *testing.T) {
	k1, k2 := NewKernel(), NewKernel()
	k1.Schedule(1, func() {})
	g := NewGroup(100, k1, k2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected scheduling-into-the-past panic from barrier")
		}
	}()
	g.SetBarrier(func(end Time) {
		// Scheduling before the window boundary must hit the kernel's
		// past-time panic — the guard the determinism argument relies on.
		k2.ScheduleAt(end-1, func() {})
	})
	g.Run(100)
}

func TestGroupMisalignedKernelsPanic(t *testing.T) {
	k1, k2 := NewKernel(), NewKernel()
	k1.Run(50)
	defer func() {
		if recover() == nil {
			t.Fatal("expected misalignment panic")
		}
	}()
	NewGroup(10, k1, k2).Run(100)
}
