package sim

import "testing"

// Wheel-specific regression tests: window boundaries, overflow cascades,
// horizon clamps interacting with the base≤now invariant, and the zero-alloc
// guarantees of the pooled event path.

func TestKernelWheelBoundaryDelays(t *testing.T) {
	k := NewKernel()
	var order []Time
	rec := func() { order = append(order, k.Now()) }
	// One event either side of the wheel window plus the exact boundary.
	k.Schedule(wheelSize+1, rec)
	k.Schedule(wheelSize, rec)
	k.Schedule(wheelSize-1, rec)
	k.RunAll()
	want := []Time{wheelSize - 1, wheelSize, wheelSize + 1}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestKernelOverflowSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var ids []int
	at := Time(2 * wheelSize)
	// First two go to overflow; advancing the clock cascades them into the
	// wheel, where a third same-time event is then scheduled behind them.
	k.ScheduleAt(at, func() { ids = append(ids, 1) })
	k.ScheduleAt(at, func() { ids = append(ids, 2) })
	k.Run(at - 10)
	k.ScheduleAt(at, func() { ids = append(ids, 3) })
	k.RunAll()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("ids = %v, want [1 2 3] (seq FIFO across overflow cascade)", ids)
	}
	if k.Now() != at {
		t.Errorf("now = %d, want %d", k.Now(), at)
	}
}

func TestKernelHorizonClampThenShortDelay(t *testing.T) {
	// Run clamps the clock to the horizon while a far event stays pending;
	// scheduling a short delay afterwards must fire before the far event
	// even though the clock jumped deep into the wheel's previous window.
	k := NewKernel()
	var order []int
	k.Schedule(10*wheelSize, func() { order = append(order, 2) })
	k.Run(5 * wheelSize)
	if k.Now() != 5*wheelSize {
		t.Fatalf("now = %d, want clamp at %d", k.Now(), 5*wheelSize)
	}
	k.Schedule(3, func() { order = append(order, 1) })
	k.RunAll()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestKernelNextEventTime(t *testing.T) {
	k := NewKernel()
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("empty kernel reported a next event")
	}
	k.Schedule(2*wheelSize, func() {})
	if at, ok := k.NextEventTime(); !ok || at != 2*wheelSize {
		t.Fatalf("next = %d,%v want %d,true", at, ok, 2*wheelSize)
	}
	k.Schedule(7, func() {})
	if at, ok := k.NextEventTime(); !ok || at != 7 {
		t.Fatalf("next = %d,%v want 7,true", at, ok)
	}
}

func TestKernelZeroAllocSteadyState(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	k.Schedule(1, fn) // cold start: wheel arrays + first event record
	k.Step()
	if a := testing.AllocsPerRun(500, func() {
		k.Schedule(3, fn)
		k.Step()
	}); a != 0 {
		t.Fatalf("steady-state Schedule/Step allocates %v/op, want 0", a)
	}
}

func TestKernelZeroAllocSelfReschedule(t *testing.T) {
	k := NewKernel()
	remaining := 0
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			k.Schedule(1, tick)
		}
	}
	var delta func()
	delta = func() {
		if remaining > 0 {
			remaining--
			k.Schedule(0, delta)
		}
	}
	k.Schedule(1, tick)
	k.RunAll() // warm the pool and wheel
	if a := testing.AllocsPerRun(100, func() {
		remaining = 64
		k.Schedule(1, tick)
		k.RunAll()
	}); a != 0 {
		t.Fatalf("timer-tick chain allocates %v/op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		remaining = 64
		k.Schedule(0, delta)
		k.RunAll()
	}); a != 0 {
		t.Fatalf("delta-cycle chain allocates %v/op, want 0", a)
	}
}

func TestKernelZeroAllocPooledBurst(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Prime the free list to the burst high-water mark, then repeated
	// burst/drain rounds must reuse the pooled records exclusively.
	for i := 0; i < 256; i++ {
		k.Schedule(Time(i%97), fn)
	}
	k.RunAll()
	if a := testing.AllocsPerRun(100, func() {
		for i := 0; i < 256; i++ {
			k.Schedule(Time(i%97), fn)
		}
		k.RunAll()
	}); a != 0 {
		t.Fatalf("pooled burst allocates %v/op, want 0", a)
	}
}
