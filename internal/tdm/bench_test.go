package tdm

import (
	"testing"

	"accelshare/internal/sim"
)

func BenchmarkCrossbarWordThroughput(b *testing.B) {
	k := sim.NewKernel()
	x, err := New(k, Config{Nodes: 4, WheelSlots: 4, TraversalLatency: 1, InjectionDepth: 16})
	if err != nil {
		b.Fatal(err)
	}
	x.Reserve(0, 0, 2)
	x.Reserve(1, 0, 2)
	recv := 0
	x.Node(2).Bind(0, func(Message) { recv++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !x.Node(0).TrySend(2, 0, sim.Word(i)) {
			k.RunAll()
		}
	}
	k.RunAll()
	if recv != b.N {
		b.Fatalf("received %d of %d", recv, b.N)
	}
}
