package tdm

import (
	"testing"

	"accelshare/internal/sim"
)

func TestValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := New(k, Config{Nodes: 0, WheelSlots: 4}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(k, Config{Nodes: 2, WheelSlots: 0}); err == nil {
		t.Error("zero slots accepted")
	}
	x, err := New(k, Config{Nodes: 2, WheelSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Reserve(9, 0, 1); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := x.Reserve(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := x.Reserve(0, 1, 0); err == nil {
		t.Error("double reservation accepted")
	}
	if err := x.Reserve(1, 5, 0); err == nil {
		t.Error("bad endpoint accepted")
	}
}

func TestSlotScheduledDelivery(t *testing.T) {
	k := sim.NewKernel()
	x, _ := New(k, Config{Nodes: 3, WheelSlots: 4, TraversalLatency: 2})
	// Connection 0->1 owns slot 2 only.
	if err := x.Reserve(2, 0, 1); err != nil {
		t.Fatal(err)
	}
	var times []sim.Time
	x.Node(1).Bind(0, func(m Message) { times = append(times, k.Now()) })
	x.Node(0).TrySend(1, 0, 42)
	x.Node(0).TrySend(1, 0, 43)
	k.Run(20)
	// First word departs at cycle 2 (the owned slot), arrives at 4; the
	// second waits a full wheel: departs 6, arrives 8.
	if len(times) != 2 || times[0] != 4 || times[1] != 8 {
		t.Fatalf("delivery times = %v, want [4 8]", times)
	}
}

func TestReserveEvenly(t *testing.T) {
	k := sim.NewKernel()
	x, _ := New(k, Config{Nodes: 2, WheelSlots: 8})
	if got := x.ReserveEvenly(4, 0, 1); got != 4 {
		t.Fatalf("granted %d of 4", got)
	}
	// Remaining slots: 4. Over-asking grants only what exists.
	if got := x.ReserveEvenly(8, 1, 0); got != 4 {
		t.Fatalf("granted %d of remaining 4", got)
	}
	if got := x.ReserveEvenly(1, 0, 1); got != 0 {
		t.Fatalf("granted %d from a full wheel", got)
	}
}

func TestUnusedSlotsAreWasted(t *testing.T) {
	k := sim.NewKernel()
	x, _ := New(k, Config{Nodes: 2, WheelSlots: 2, TraversalLatency: 1})
	x.Reserve(0, 0, 1)
	x.Reserve(1, 1, 0) // reverse connection, never used
	x.Node(1).Bind(0, func(Message) {})
	x.Node(0).Bind(0, func(Message) {})
	for i := 0; i < 4; i++ {
		x.Node(0).TrySend(1, 0, sim.Word(i))
	}
	k.Run(100)
	if x.Words != 4 {
		t.Fatalf("delivered %d", x.Words)
	}
	// While 0->1 traffic was pending, every pass over slot 1 was wasted.
	if x.WastedSlots == 0 {
		t.Error("expected wasted reverse-connection slots")
	}
}

func TestInjectionBackpressure(t *testing.T) {
	k := sim.NewKernel()
	x, _ := New(k, Config{Nodes: 2, WheelSlots: 8, InjectionDepth: 2})
	x.Reserve(0, 0, 1)
	x.Node(1).Bind(0, func(Message) {})
	accepted := 0
	for i := 0; i < 5; i++ {
		if x.Node(0).TrySend(1, 0, 0) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d with depth 2", accepted)
	}
	wakes := 0
	x.Node(0).SubscribeSpace(sim.NewWaker(k, func() { wakes++ }))
	k.Run(50)
	if wakes == 0 {
		t.Error("no space wakeups")
	}
}

func TestWheelParksWhenIdle(t *testing.T) {
	k := sim.NewKernel()
	x, _ := New(k, Config{Nodes: 2, WheelSlots: 4, TraversalLatency: 1})
	x.Reserve(0, 0, 1)
	got := 0
	x.Node(1).Bind(0, func(Message) { got++ })
	x.Node(0).TrySend(1, 0, 7)
	// RunAll must terminate: the wheel parks after the queue drains.
	k.RunAll()
	if got != 1 {
		t.Fatalf("delivered %d", got)
	}
	// And it restarts with the phase intact.
	x.Node(0).TrySend(1, 0, 8)
	k.RunAll()
	if got != 2 {
		t.Fatalf("delivered %d after restart", got)
	}
}

func TestGuaranteedThroughputUnderContention(t *testing.T) {
	// Two connections each own half the wheel: both sustain one word per
	// two cycles regardless of the other's load.
	k := sim.NewKernel()
	x, _ := New(k, Config{Nodes: 3, WheelSlots: 2, TraversalLatency: 1, InjectionDepth: 64})
	x.Reserve(0, 0, 2)
	x.Reserve(1, 1, 2)
	var got [2]int
	x.Node(2).Bind(0, func(m Message) { got[m.Src]++ })
	for i := 0; i < 32; i++ {
		x.Node(0).TrySend(2, 0, 0)
		x.Node(1).TrySend(2, 0, 0)
	}
	k.Run(70)
	if got[0] < 30 || got[1] < 30 {
		t.Fatalf("deliveries = %v, want ~32 each within 70 cycles", got)
	}
}
