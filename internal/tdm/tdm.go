// Package tdm models the baseline interconnect the paper compares against
// (§II): a crossbar with a pre-calculated time-division-multiplex schema in
// the style of PROPHID [9] and the Æthereal-like switch of [13]. Each
// (source, destination) connection owns reserved slots of a global TDM
// wheel; a word injected in its slot traverses the crossbar in a fixed
// number of cycles. Throughput is guaranteed by construction — and so is
// the cost: reservations burn bandwidth whether used or not, and the
// crossbar area grows with the square of the port count, which is exactly
// the argument for the paper's dual ring.
//
// The package exposes the same TrySend/Bind surface as internal/ring so the
// two interconnects can be compared under identical traffic.
package tdm

import (
	"fmt"

	"accelshare/internal/sim"
)

// Config parameterises a TDM crossbar.
type Config struct {
	Name string
	// Nodes is the port count.
	Nodes int
	// WheelSlots is the TDM wheel length in cycles.
	WheelSlots int
	// TraversalLatency is the constant crossbar traversal time in cycles.
	TraversalLatency sim.Time
	// InjectionDepth is the per-node injection buffer in words.
	InjectionDepth int
}

// Message is one delivered word.
type Message struct {
	Src, Dst int
	Port     int
	W        sim.Word
}

// Crossbar is a slot-scheduled interconnect.
type Crossbar struct {
	cfg Config
	k   *sim.Kernel
	// slotOwner[s] = (src, dst) connection owning wheel slot s; -1 = free.
	slotSrc, slotDst []int
	nodes            []*Node

	// Words counts delivered words; WastedSlots counts reserved slots that
	// passed unused while traffic was pending elsewhere (the TDM
	// inefficiency the paper's RR gateway avoids).
	Words       uint64
	WastedSlots uint64

	walking bool
}

// Node is one crossbar port.
type Node struct {
	x     *Crossbar
	idx   int
	inj   []outMsg
	ports map[int]func(Message)
	space []*sim.Waker
}

type outMsg struct {
	dst, port int
	w         sim.Word
}

// New builds an empty crossbar; reserve connections with Reserve before
// sending.
func New(k *sim.Kernel, cfg Config) (*Crossbar, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("tdm: need at least one node")
	}
	if cfg.WheelSlots < 1 {
		return nil, fmt.Errorf("tdm: wheel needs at least one slot")
	}
	if cfg.TraversalLatency == 0 {
		cfg.TraversalLatency = 2
	}
	if cfg.InjectionDepth == 0 {
		cfg.InjectionDepth = 4
	}
	x := &Crossbar{cfg: cfg, k: k}
	x.slotSrc = make([]int, cfg.WheelSlots)
	x.slotDst = make([]int, cfg.WheelSlots)
	for i := range x.slotSrc {
		x.slotSrc[i], x.slotDst[i] = -1, -1
	}
	for i := 0; i < cfg.Nodes; i++ {
		x.nodes = append(x.nodes, &Node{x: x, idx: i, ports: map[int]func(Message){}})
	}
	return x, nil
}

// Reserve assigns wheel slot s to the (src → dst) connection. Slot tables
// are computed at design time, mirroring the pre-calculated schema of [9].
func (x *Crossbar) Reserve(slot, src, dst int) error {
	if slot < 0 || slot >= x.cfg.WheelSlots {
		return fmt.Errorf("tdm: slot %d out of range", slot)
	}
	if x.slotSrc[slot] != -1 {
		return fmt.Errorf("tdm: slot %d already reserved", slot)
	}
	if src < 0 || src >= x.cfg.Nodes || dst < 0 || dst >= x.cfg.Nodes {
		return fmt.Errorf("tdm: bad endpoints %d->%d", src, dst)
	}
	x.slotSrc[slot] = src
	x.slotDst[slot] = dst
	x.pump()
	return nil
}

// ReserveEvenly spreads n slots for (src → dst) as evenly as the free slots
// allow, returning how many were granted.
func (x *Crossbar) ReserveEvenly(n, src, dst int) int {
	granted := 0
	if n <= 0 {
		return 0
	}
	stride := x.cfg.WheelSlots / n
	if stride == 0 {
		stride = 1
	}
	for off := 0; off < stride && granted < n; off++ {
		for s := off; s < x.cfg.WheelSlots && granted < n; s += stride {
			if x.slotSrc[s] == -1 {
				if x.Reserve(s, src, dst) == nil {
					granted++
				}
			}
		}
	}
	return granted
}

// Node returns port i.
func (x *Crossbar) Node(i int) *Node { return x.nodes[i] }

// Bind registers a delivery handler for (node, port).
func (n *Node) Bind(port int, fn func(Message)) {
	if _, dup := n.ports[port]; dup {
		panic(fmt.Sprintf("tdm: node %d port %d bound twice", n.idx, port))
	}
	n.ports[port] = fn
}

// SubscribeSpace wakes w when injection space frees.
func (n *Node) SubscribeSpace(w *sim.Waker) { n.space = append(n.space, w) }

// TrySend queues a word for the (n → dst) connection; it departs in the
// connection's next reserved slot. False when the injection buffer is full.
func (n *Node) TrySend(dst, port int, w sim.Word) bool {
	if len(n.inj) >= n.x.cfg.InjectionDepth {
		return false
	}
	n.inj = append(n.inj, outMsg{dst: dst, port: port, w: w})
	n.x.pump()
	return true
}

// pump runs the TDM wheel: one process per crossbar, started lazily when
// traffic is queued and parked again when every injection buffer drains
// (the slot phase is derived from absolute time, so parking preserves the
// schedule).
func (x *Crossbar) pump() {
	if x.walking || !x.anyQueued() {
		return
	}
	x.walking = true
	var tick func()
	tick = func() {
		if !x.anyQueued() {
			x.walking = false
			return
		}
		slot := int(x.k.Now() % uint64(x.cfg.WheelSlots))
		src := x.slotSrc[slot]
		if src >= 0 {
			n := x.nodes[src]
			sent := false
			for i, m := range n.inj {
				if m.dst == x.slotDst[slot] {
					n.inj = append(n.inj[:i], n.inj[i+1:]...)
					x.Words++
					dst := x.nodes[m.dst]
					mm := Message{Src: src, Dst: m.dst, Port: m.port, W: m.w}
					x.k.Schedule(x.cfg.TraversalLatency, func() {
						h, ok := dst.ports[mm.Port]
						if !ok {
							panic(fmt.Sprintf("tdm: node %d has no port %d", mm.Dst, mm.Port))
						}
						h(mm)
					})
					for _, w := range n.space {
						w.Wake()
					}
					sent = true
					break
				}
			}
			if !sent {
				x.WastedSlots++
			}
		}
		x.k.Schedule(1, tick)
	}
	x.k.Schedule(0, tick)
}

func (x *Crossbar) anyQueued() bool {
	for _, n := range x.nodes {
		if len(n.inj) > 0 {
			return true
		}
	}
	return false
}
