package pal

import (
	"math"
	"testing"

	"accelshare/internal/sim"
)

func TestParamsValidation(t *testing.T) {
	p := DefaultParams()
	p.Blocks[0] = 9831 // not a multiple of 8
	if _, err := Build(p); err == nil {
		t.Fatal("non-multiple block accepted")
	}
	p = DefaultParams()
	p.Blocks[2] = 0
	if _, err := Build(p); err == nil {
		t.Fatal("zero block accepted")
	}
}

func TestRates(t *testing.T) {
	p := DefaultParams()
	if got := p.FrontendRate(); got != 44100*64 {
		t.Errorf("frontend rate = %v", got)
	}
	if got := p.IntermediateRate(); got != 44100*8 {
		t.Errorf("intermediate rate = %v", got)
	}
}

func TestFrontendSignalStructure(t *testing.T) {
	// The synthetic baseband must contain energy near both carriers.
	p := DefaultParams()
	fe := NewFrontend(p)
	n := 1 << 13
	var is []int32
	for k := 0; k < n; k++ {
		i, _ := sim.UnpackIQ(fe.Sample(uint64(k)))
		is = append(is, i)
	}
	fs := p.FrontendRate()
	// Complex carriers show up in the real part at |f|.
	p1 := GoertzelPower(is, math.Abs(p.Carrier1), fs)
	p2 := GoertzelPower(is, math.Abs(p.Carrier2), fs)
	off := GoertzelPower(is, 1.113e6, fs) // empty region
	if p1 < 100*off || p2 < 100*off {
		t.Errorf("carriers not prominent: p1=%g p2=%g off=%g", p1, p2, off)
	}
}

func TestGoertzelAndRMS(t *testing.T) {
	// Pure tone: Goertzel at the tone >> elsewhere; RMS = amp/sqrt(2).
	const fs = 8000.0
	const f = 440.0
	var x []int32
	for n := 0; n < 4000; n++ {
		x = append(x, int32(10000*math.Sin(2*math.Pi*f*float64(n)/fs)))
	}
	on := GoertzelPower(x, f, fs)
	offp := GoertzelPower(x, 3*f+7, fs)
	if on < 1000*offp {
		t.Errorf("goertzel: on=%g off=%g", on, offp)
	}
	if r := RMS(x); math.Abs(r-10000/math.Sqrt2) > 100 {
		t.Errorf("rms = %v", r)
	}
	if RMS(nil) != 0 || GoertzelPower(nil, 1, 2) != 0 {
		t.Error("empty-input edge cases")
	}
}

// TestDecodeRecoversStereo is the paper's demonstrator end to end: the
// shared CORDIC + FIR chain decodes both audio channels in real time and
// the software task reconstructs L and R. The left tone must dominate the
// L output and the right tone the R output.
func TestDecodeRecoversStereo(t *testing.T) {
	if testing.Short() {
		t.Skip("full PAL decode is expensive")
	}
	p := DefaultParams()
	p.Seconds = 0.03
	d, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// 0.03 s at 100 MHz = 3M cycles; add margin for pipeline drain.
	d.Run(6_000_000)

	rep := d.Sys.Report()
	for _, sr := range rep.PerStream {
		if sr.Overflows != 0 {
			t.Errorf("stream %s dropped %d samples — real-time constraint missed", sr.Name, sr.Overflows)
		}
		if sr.Blocks == 0 {
			t.Errorf("stream %s never ran", sr.Name)
		}
	}
	if len(d.L) < 800 {
		t.Fatalf("only %d audio samples decoded", len(d.L))
	}
	// Skip the filter transient.
	l := d.L[200:]
	r := d.R[200:]
	lAtL := GoertzelPower(l, p.ToneL, p.AudioRate)
	lAtR := GoertzelPower(l, p.ToneR, p.AudioRate)
	rAtR := GoertzelPower(r, p.ToneR, p.AudioRate)
	rAtL := GoertzelPower(r, p.ToneL, p.AudioRate)
	t.Logf("L: tone@L %.3g, tone@R %.3g; R: tone@R %.3g, tone@L %.3g", lAtL, lAtR, rAtR, rAtL)
	t.Logf("decoded %d stereo samples; gateway streaming %.1f%%, reconfig %.1f%% of busy time",
		len(d.L), 100*rep.StreamingShare, 100*rep.ReconfigShare)
	if lAtL < 10*lAtR {
		t.Errorf("left channel does not isolate its tone: %g vs %g", lAtL, lAtR)
	}
	if rAtR < 10*rAtL {
		t.Errorf("right channel does not isolate its tone: %g vs %g", rAtR, rAtL)
	}
	if RMS(l) < 100 {
		t.Error("left channel is silence")
	}
}

func TestAnalysisModelVerifies(t *testing.T) {
	p := DefaultParams()
	sys := AnalysisModel(p)
	if err := sys.VerifyThroughput(); err != nil {
		t.Fatalf("default blocks fail Eq. 5: %v", err)
	}
	// The derived buffer bounds are what Build actually configures.
	in, out, err := analysisBufferBounds(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 4 || len(out) != 4 {
		t.Fatalf("bounds: %v %v", in, out)
	}
	// Stage-1 input ≈ 2 blocks (arrivals during γ̂ at full rate).
	if int64(in[0]) < 2*p.Blocks[0] || int64(in[0]) > 2*p.Blocks[0]+16 {
		t.Errorf("stage-1 input bound %d, want ≈ %d", in[0], 2*p.Blocks[0])
	}
	if int64(out[0]) != 2*p.Blocks[0]/int64(p.Decimation) {
		t.Errorf("stage-1 output bound %d", out[0])
	}
}

func TestDeemphasisOptionWires(t *testing.T) {
	if testing.Short() {
		t.Skip("decode is expensive")
	}
	p := DefaultParams()
	p.Seconds = 0.015
	p.Deemphasis = true
	d, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	d.Run(3_500_000)
	if len(d.L) < 300 {
		t.Fatalf("only %d samples", len(d.L))
	}
	// The 1 kHz tone survives de-emphasis (corner ~3.2 kHz).
	l := d.L[200:]
	if GoertzelPower(l, p.ToneL, p.AudioRate) < 100*GoertzelPower(l, p.ToneR, p.AudioRate) {
		t.Error("tone separation lost with de-emphasis")
	}
}
