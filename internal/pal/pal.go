// Package pal implements the paper's demonstrator (§VI-A): real-time
// decoding of PAL television stereo audio on the simulated MPSoC, with one
// CORDIC accelerator and one FIR-LPF+down-sampler accelerator shared by
// four streams through a single entry/exit-gateway pair.
//
// The Epiq FMC-1RX radio front-end is replaced by a synthetic baseband
// generator (see DESIGN.md): two FM carriers at distinct offsets — FM1
// carrying the (L+R)/2 mix and FM2 carrying R, mirroring PAL's A2 stereo
// arrangement — summed into one complex stream at 64×44.1 kHz.
//
// Decoding per channel takes two passes over the SAME accelerator chain:
//
//	stage 1: CORDIC as mixer (carrier → DC)  + FIR LPF ↓8
//	stage 2: CORDIC as FM discriminator      + FIR LPF ↓8 → 44.1 kHz audio
//
// which is why the chain is shared by four streams (two channels × two
// stages). A software task reconstructs L = 2·(L+R)/2 − R.
package pal

import (
	"fmt"
	"math"
	"math/big"

	"accelshare/internal/accel"
	"accelshare/internal/core"
	"accelshare/internal/dsp"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
	"accelshare/internal/sim"
)

// Params describes the synthetic PAL scenario.
type Params struct {
	// AudioRate is the output rate (44.1 kHz in the paper).
	AudioRate float64
	// Decimation per chain stage (8 in the paper, giving a front-end rate
	// of AudioRate·Decimation²).
	Decimation int
	// Carrier1/Carrier2 are the FM sound carrier offsets in Hz within the
	// synthetic baseband (the paper's 6.0/6.242 MHz offsets scaled into our
	// Nyquist range).
	Carrier1, Carrier2 float64
	// Deviation is the FM deviation for full-scale audio, in Hz.
	Deviation float64
	// ToneL/ToneR are the test tones carried by the left and right audio
	// channels, in Hz.
	ToneL, ToneR float64
	// ToneAmp is the tone amplitude in 16-bit full scale.
	ToneAmp int32
	// ClockHz is the platform clock.
	ClockHz float64
	// Blocks: ηs per stream, order [ch1.s1, ch2.s1, ch1.s2, ch2.s2]. Each
	// must be a multiple of Decimation.
	Blocks [4]int64
	// Reconfig is Rs in cycles (4100 in the paper).
	Reconfig sim.Time
	// EntryCost/ExitCost are ε/δ in cycles (15 and 1 in the paper).
	EntryCost, ExitCost sim.Time
	// FilterTaps is the FIR length (33 in the paper).
	FilterTaps int
	// Audio seconds to synthesise (sources stop after the corresponding
	// sample count; 0 = endless).
	Seconds float64
	// RecordActivity keeps the gateway's per-block activity trace for
	// rotation Gantt rendering.
	RecordActivity bool
	// Deemphasis applies the PAL 50 µs de-emphasis network to the
	// reconstructed audio (a software post-processing step on the
	// processor tile).
	Deemphasis bool
}

// DefaultParams mirrors the paper's numbers with carriers scaled into the
// synthetic baseband's Nyquist range.
func DefaultParams() Params {
	return Params{
		AudioRate:  44100,
		Decimation: 8,
		Carrier1:   400_000,
		Carrier2:   -400_000,
		Deviation:  40_000,
		ToneL:      1000,
		ToneR:      2500,
		ToneAmp:    18000,
		ClockHz:    100e6,
		// Minimum feasible blocks at multiples of the decimation factor,
		// from core.ComputeBlockSizesRounded on the paper's parameters.
		Blocks:     [4]int64{9848, 9848, 1232, 1232},
		Reconfig:   4100,
		EntryCost:  15,
		ExitCost:   1,
		FilterTaps: 33,
		Seconds:    0.05,
	}
}

// FrontendRate returns the synthetic baseband sample rate.
func (p *Params) FrontendRate() float64 {
	return p.AudioRate * float64(p.Decimation) * float64(p.Decimation)
}

// IntermediateRate returns the rate between the two chain stages.
func (p *Params) IntermediateRate() float64 {
	return p.AudioRate * float64(p.Decimation)
}

// Frontend is the synthetic PAL baseband generator: tone L and tone R are
// FM-modulated onto the two sound carriers and summed.
type Frontend struct {
	p    Params
	mod1 *dsp.Modulator
	mod2 *dsp.Modulator
}

// NewFrontend builds the generator.
func NewFrontend(p Params) *Frontend {
	fs := p.FrontendRate()
	return &Frontend{
		p:    p,
		mod1: dsp.NewModulator(p.Carrier1, p.Deviation, fs, 1<<20),
		mod2: dsp.NewModulator(p.Carrier2, p.Deviation, fs, 1<<20),
	}
}

// Audio returns the (L, R) test-tone samples for output-sample index n at
// the audio rate.
func (f *Frontend) Audio(n uint64, rate float64) (l, r int32) {
	t := float64(n) / rate
	l = int32(float64(f.p.ToneAmp) * math.Sin(2*math.Pi*f.p.ToneL*t))
	r = int32(float64(f.p.ToneAmp) * math.Sin(2*math.Pi*f.p.ToneR*t))
	return l, r
}

// Sample produces baseband sample n (at the front-end rate).
func (f *Frontend) Sample(n uint64) sim.Word {
	l, r := f.Audio(n, f.p.FrontendRate())
	mix := (int32(l) + int32(r)) / 2 // FM1 carries (L+R)/2
	i1, q1 := f.mod1.Modulate(mix)
	i2, q2 := f.mod2.Modulate(r) // FM2 carries R
	return sim.PackIQ(i1+i2, q1+q2)
}

// Decoder is the assembled application.
type Decoder struct {
	P      Params
	Sys    *mpsoc.System
	fe     *Frontend
	fe2    *Frontend // second front-end instance for the second stage-1 stream
	L, R   []int32   // reconstructed audio
	stereo struct {
		lr []int32 // (L+R)/2 path output backlog
		r  []int32 // R path output backlog
	}
}

// streamNames in spec order.
var streamNames = [4]string{"ch1.stage1", "ch2.stage1", "ch1.stage2", "ch2.stage2"}

// Build assembles the decoder on the simulated platform.
func Build(p Params) (*Decoder, error) {
	for i, b := range p.Blocks {
		if b <= 0 || b%int64(p.Decimation) != 0 {
			return nil, fmt.Errorf("pal: block[%d] = %d must be a positive multiple of %d", i, b, p.Decimation)
		}
	}
	fsIn := p.FrontendRate()

	// Stage-1 LPF isolates the selected carrier before ↓8; stage-2 LPF
	// bounds the audio band before the final ↓8. Same prototype design at
	// both rates (cutoffs are normalised).
	lpf, err := dsp.DesignLowPass(p.FilterTaps, 0.5/float64(p.Decimation)*0.8)
	if err != nil {
		return nil, err
	}
	q1 := dsp.QuantizeQ15(lpf)
	q2 := q1

	d := &Decoder{P: p}
	d.fe = NewFrontend(p)
	d.fe2 = NewFrontend(p)

	// Buffer capacities from the analysis model (core.InputBufferBound /
	// OutputBufferBound), not guesswork: with these the periodic front-end
	// never overflows (validated by the zero-drop assertion in tests).
	inCaps, outCaps, err := analysisBufferBounds(p)
	if err != nil {
		return nil, err
	}

	totalIn := uint64(0)
	if p.Seconds > 0 {
		totalIn = uint64(p.Seconds * fsIn)
	}

	num := uint64(p.ClockHz)
	denIn := uint64(fsIn)

	mkStage1 := func(idx int, name string, carrier float64, fe *Frontend, block int64) mpsoc.StreamSpec {
		return mpsoc.StreamSpec{
			Name:            name,
			Block:           block,
			Decimation:      int64(p.Decimation),
			Reconfig:        p.Reconfig,
			InCapacity:      inCaps[idx],
			OutCapacity:     outCaps[idx],
			Engines:         []accel.Engine{accel.NewMixer(-carrier, fsIn), mustFIR(q1, p.Decimation)},
			SourcePeriodNum: num,
			SourcePeriodDen: denIn,
			Source:          fe.Sample,
			TotalInputs:     totalIn,
			ExternalSink:    true, // forwarder feeds stage 2
		}
	}
	mkStage2 := func(idx int, name string, block int64) mpsoc.StreamSpec {
		return mpsoc.StreamSpec{
			Name:           name,
			Block:          block,
			Decimation:     int64(p.Decimation),
			Reconfig:       p.Reconfig,
			InCapacity:     inCaps[idx],
			OutCapacity:    outCaps[idx],
			Engines:        []accel.Engine{accel.NewDiscriminator(), nil},
			ExternalSource: true,
			ExternalSink:   true, // the stereo-reconstruction task consumes
		}
	}
	specs := []mpsoc.StreamSpec{
		mkStage1(0, streamNames[0], p.Carrier1, d.fe, p.Blocks[0]),
		mkStage1(1, streamNames[1], p.Carrier2, d.fe2, p.Blocks[1]),
		mkStage2(2, streamNames[2], p.Blocks[2]),
		mkStage2(3, streamNames[3], p.Blocks[3]),
	}
	specs[2].Engines[1] = mustFIR(q2, p.Decimation)
	specs[3].Engines[1] = mustFIR(q2, p.Decimation)

	sys, err := mpsoc.Build(mpsoc.Config{
		Name:           "pal",
		HopLatency:     1,
		EntryCost:      p.EntryCost,
		ExitCost:       p.ExitCost,
		RecordActivity: p.RecordActivity,
		Mode:           gateway.ReconfigFixed,
		Accels: []mpsoc.AccelSpec{
			{Name: "cordic", Cost: 1, NICapacity: 2},
			{Name: "fir+d", Cost: 1, NICapacity: 2},
		},
		Streams: specs,
	})
	if err != nil {
		return nil, err
	}
	d.Sys = sys

	// Forwarders: stage-1 outputs feed stage-2 inputs (a software task on a
	// processor tile in the real system).
	d.forward(0, 2)
	d.forward(1, 3)
	// Stereo reconstruction from the two stage-2 outputs.
	d.reconstruct()
	return d, nil
}

// analysisBufferBounds derives every stream's FIFO capacities from the
// temporal model: input = η + ⌈μ·γ̂⌉ (absorb one service interval), output
// = 2 output blocks. The forwarder-fed stage-2 inputs get the same bound —
// the forwarder delivers at the stage-1 output rate, which equals the
// stage-2 input rate.
func analysisBufferBounds(p Params) (in []int, out []int, err error) {
	sys := AnalysisModel(p)
	for i := range sys.Streams {
		ib, err := sys.InputBufferBound(i)
		if err != nil {
			return nil, nil, err
		}
		ob, err := sys.OutputBufferBound(i, int64(p.Decimation))
		if err != nil {
			return nil, nil, err
		}
		in = append(in, int(ib))
		out = append(out, int(ob))
	}
	return in, out, nil
}

// AnalysisModel returns the paper's §VI-A temporal model for the given
// parameters: the four streams sharing the CORDIC + FIR chain.
func AnalysisModel(p Params) *core.System {
	fsIn := int64(p.FrontendRate())
	fsMid := int64(p.IntermediateRate())
	mk := func(name string, rate int64, block int64) core.Stream {
		return core.Stream{Name: name, Rate: big.NewRat(rate, 1), Reconfig: uint64(p.Reconfig), Block: block}
	}
	return &core.System{
		Chain: core.Chain{
			Name:       "cordic+fir",
			AccelCosts: []uint64{1, 1},
			EntryCost:  uint64(p.EntryCost),
			ExitCost:   uint64(p.ExitCost),
			NICapacity: 2,
		},
		ClockHz: int64(p.ClockHz),
		Streams: []core.Stream{
			mk(streamNames[0], fsIn, p.Blocks[0]),
			mk(streamNames[1], fsIn, p.Blocks[1]),
			mk(streamNames[2], fsMid, p.Blocks[2]),
			mk(streamNames[3], fsMid, p.Blocks[3]),
		},
	}
}

func mustFIR(coef []int32, decimate int) accel.Engine {
	e, err := accel.NewFIR(coef, decimate)
	if err != nil {
		panic(err)
	}
	return e
}

// forward pumps every word from stream src's output FIFO into stream dst's
// input FIFO.
func (d *Decoder) forward(src, dst int) {
	out := d.Sys.Strs[src].Out
	in := d.Sys.Strs[dst].In
	k := d.Sys.K
	var held *sim.Word
	var w *sim.Waker
	w = sim.NewWaker(k, func() {
		for {
			if held != nil {
				if !in.TryWrite(*held) {
					k.Schedule(8, w.Wake)
					return
				}
				held = nil
			}
			v, ok := out.TryRead()
			if !ok {
				return
			}
			if !in.TryWrite(v) {
				hv := v
				held = &hv
				k.Schedule(8, w.Wake)
				return
			}
		}
	})
	out.SubscribeData(w)
	in.SubscribeSpace(w)
}

// reconstruct pairs the two stage-2 audio streams into L and R, the
// paper's software task on a processor tile. With Params.Deemphasis it
// also applies the PAL 50 µs de-emphasis per channel.
func (d *Decoder) reconstruct() {
	k := d.Sys.K
	s1 := d.Sys.Strs[2].Out // (L+R)/2 path
	s2 := d.Sys.Strs[3].Out // R path
	var deL, deR *dsp.Deemphasis
	if d.P.Deemphasis {
		var err error
		deL, err = dsp.NewDeemphasis(50e-6, d.P.AudioRate)
		if err != nil {
			panic(err)
		}
		deR, _ = dsp.NewDeemphasis(50e-6, d.P.AudioRate)
	}
	var w *sim.Waker
	w = sim.NewWaker(k, func() {
		for {
			// Pull whatever is available into the backlog, then pair.
			moved := false
			if v, ok := s1.TryRead(); ok {
				i, _ := sim.UnpackIQ(v)
				d.stereo.lr = append(d.stereo.lr, i)
				moved = true
			}
			if v, ok := s2.TryRead(); ok {
				i, _ := sim.UnpackIQ(v)
				d.stereo.r = append(d.stereo.r, i)
				moved = true
			}
			for len(d.stereo.lr) > 0 && len(d.stereo.r) > 0 {
				lr := d.stereo.lr[0]
				r := d.stereo.r[0]
				d.stereo.lr = d.stereo.lr[1:]
				d.stereo.r = d.stereo.r[1:]
				l := 2*lr - r
				if deL != nil {
					l = deL.Process(l)
					r = deR.Process(r)
				}
				d.L = append(d.L, l)
				d.R = append(d.R, r)
			}
			if !moved {
				return
			}
		}
	})
	s1.SubscribeData(w)
	s2.SubscribeData(w)
}

// Run advances the simulation.
func (d *Decoder) Run(horizon sim.Time) {
	d.Sys.Run(horizon)
}

// GoertzelPower measures the normalised power of a tone at freq Hz in the
// signal sampled at rate Hz — the functional test oracle (see dsp.Goertzel).
func GoertzelPower(x []int32, freq, rate float64) float64 {
	return dsp.Goertzel(x, freq, rate)
}

// RMS returns the root-mean-square of the samples.
func RMS(x []int32) float64 {
	if len(x) == 0 {
		return 0
	}
	var acc float64
	for _, v := range x {
		acc += float64(v) * float64(v)
	}
	return math.Sqrt(acc / float64(len(x)))
}
