package pal

import "testing"

func BenchmarkFrontendSample(b *testing.B) {
	fe := NewFrontend(DefaultParams())
	for i := 0; i < b.N; i++ {
		fe.Sample(uint64(i))
	}
}

func BenchmarkGoertzel(b *testing.B) {
	x := make([]int32, 4096)
	for i := range x {
		x[i] = int32(i % 1000)
	}
	b.SetBytes(int64(len(x) * 4))
	for i := 0; i < b.N; i++ {
		GoertzelPower(x, 1000, 44100)
	}
}
