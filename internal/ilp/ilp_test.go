package ilp

import (
	"math/big"
	"math/rand"
	"testing"
)

func r(n, d int64) *big.Rat { return big.NewRat(n, d) }

func TestSolveLPSimpleMax(t *testing.T) {
	// maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12.
	p := NewMaximize()
	x := p.AddVar("x", r(3, 1), false)
	y := p.AddVar("y", r(2, 1), false)
	p.AddConstraint("c1", []*big.Rat{r(1, 1), r(1, 1)}, LE, r(4, 1))
	p.AddConstraint("c2", []*big.Rat{r(1, 1), r(3, 1)}, LE, r(6, 1))
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective.Cmp(r(12, 1)) != 0 {
		t.Errorf("obj = %v, want 12", sol.Objective)
	}
	if sol.X[x].Cmp(r(4, 1)) != 0 || sol.X[y].Sign() != 0 {
		t.Errorf("x = %v, y = %v", sol.X[x], sol.X[y])
	}
}

func TestSolveLPMinWithGE(t *testing.T) {
	// minimize 2x + 3y s.t. x + y >= 10, x >= 2 -> y=0? check: obj=2x+3y,
	// cheapest per unit is x, so x=10, y=0, obj 20.
	p := NewMinimize()
	p.AddVar("x", r(2, 1), false)
	p.AddVar("y", r(3, 1), false)
	p.AddConstraint("sum", []*big.Rat{r(1, 1), r(1, 1)}, GE, r(10, 1))
	p.AddConstraint("xmin", []*big.Rat{r(1, 1), r(0, 1)}, GE, r(2, 1))
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(r(20, 1)) != 0 {
		t.Fatalf("sol = %v, want obj 20", sol)
	}
}

func TestSolveLPEquality(t *testing.T) {
	// minimize x + y s.t. x + 2y == 8, y <= 3 -> y=3, x=2, obj 5.
	p := NewMinimize()
	p.AddVar("x", r(1, 1), false)
	p.AddVar("y", r(1, 1), false)
	p.AddConstraint("eq", []*big.Rat{r(1, 1), r(2, 1)}, EQ, r(8, 1))
	p.AddConstraint("cap", []*big.Rat{r(0, 1), r(1, 1)}, LE, r(3, 1))
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(r(5, 1)) != 0 {
		t.Fatalf("sol = %v, want obj 5", sol)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	p := NewMinimize()
	p.AddVar("x", r(1, 1), false)
	p.AddConstraint("lo", []*big.Rat{r(1, 1)}, GE, r(5, 1))
	p.AddConstraint("hi", []*big.Rat{r(1, 1)}, LE, r(3, 1))
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	p := NewMaximize()
	p.AddVar("x", r(1, 1), false)
	p.AddConstraint("lo", []*big.Rat{r(1, 1)}, GE, r(1, 1))
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// -x <= -3  <=>  x >= 3; minimize x -> 3.
	p := NewMinimize()
	p.AddVar("x", r(1, 1), false)
	p.AddConstraint("c", []*big.Rat{r(-1, 1)}, LE, r(-3, 1))
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(r(3, 1)) != 0 {
		t.Fatalf("sol = %v, want 3", sol)
	}
}

func TestSolveLPFractionalOptimum(t *testing.T) {
	// maximize x + y s.t. 2x + y <= 3, x + 2y <= 3 -> x=y=1 obj 2; with
	// rationals: try maximize x+2y under same: optimum at (1,1)? Vertices:
	// (0,3/2) obj 3, (3/2,0) obj 3/2, (1,1) obj 3. Use obj x+2y -> 3 at
	// (0,3/2).
	p := NewMaximize()
	p.AddVar("x", r(1, 1), false)
	p.AddVar("y", r(2, 1), false)
	p.AddConstraint("c1", []*big.Rat{r(2, 1), r(1, 1)}, LE, r(3, 1))
	p.AddConstraint("c2", []*big.Rat{r(1, 1), r(2, 1)}, LE, r(3, 1))
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(r(3, 1)) != 0 {
		t.Fatalf("sol = %v, want 3", sol)
	}
}

func TestSolveILPKnapsackLike(t *testing.T) {
	// maximize 5x + 4y s.t. 6x + 5y <= 10, integer -> candidates: x=1,y=0
	// obj 5; x=0,y=2 obj 8. LP relaxation is fractional; ILP must find 8.
	p := NewMaximize()
	p.AddVar("x", r(5, 1), true)
	p.AddVar("y", r(4, 1), true)
	p.AddConstraint("w", []*big.Rat{r(6, 1), r(5, 1)}, LE, r(10, 1))
	sol, err := p.SolveILP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(r(8, 1)) != 0 {
		t.Fatalf("sol = %v, want 8", sol)
	}
	if !sol.X[0].IsInt() || !sol.X[1].IsInt() {
		t.Errorf("non-integral solution %v", sol)
	}
}

func TestSolveILPEqualsLPWhenIntegral(t *testing.T) {
	p := NewMinimize()
	p.AddVar("x", r(1, 1), true)
	p.AddConstraint("lo", []*big.Rat{r(1, 1)}, GE, r(7, 1))
	sol, err := p.SolveILP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(r(7, 1)) != 0 {
		t.Fatalf("obj = %v, want 7", sol.Objective)
	}
}

func TestSolveILPInfeasible(t *testing.T) {
	// 2x == 3 with x integer: LP feasible (x=3/2) but no integer point in
	// [1,2] satisfies equality.
	p := NewMinimize()
	p.AddVar("x", r(1, 1), true)
	p.AddConstraint("eq", []*big.Rat{r(2, 1)}, EQ, r(3, 1))
	sol, err := p.SolveILP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveILPMixedInteger(t *testing.T) {
	// minimize x + y, x integer, y continuous; x + y >= 5/2, x >= y.
	// Best: y = x, 2x >= 5/2 -> x >= 5/4 -> x = 2? With x integer and y free:
	// minimize x+y with y >= 5/2 - x and y >= 0 and x >= y:
	// x=2: y >= 1/2, y <= 2 -> y=1/2, obj 5/2. x=1: y>=3/2 but y<=1 infeasible.
	// x=3: y>=0 -> obj 3. So best 5/2.
	p := NewMinimize()
	p.AddVar("x", r(1, 1), true)
	p.AddVar("y", r(1, 1), false)
	p.AddConstraint("sum", []*big.Rat{r(1, 1), r(1, 1)}, GE, r(5, 2))
	p.AddConstraint("ord", []*big.Rat{r(-1, 1), r(1, 1)}, LE, r(0, 1))
	sol, err := p.SolveILP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(r(5, 2)) != 0 {
		t.Fatalf("sol = %v, want 5/2", sol)
	}
}

func TestNoVars(t *testing.T) {
	if _, err := NewMinimize().SolveLP(); err != ErrNoVars {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewMinimize().SolveILP(); err != ErrNoVars {
		t.Fatalf("err = %v", err)
	}
}

func TestProblemString(t *testing.T) {
	p := NewMinimize()
	p.AddVar("x", r(1, 1), true)
	p.AddConstraint("c", []*big.Rat{r(2, 1)}, GE, r(4, 1))
	s := p.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	sol, _ := p.SolveILP()
	if sol.String() == "" {
		t.Fatal("empty solution String()")
	}
	inf := &Solution{Status: Infeasible}
	if inf.String() != "infeasible" {
		t.Errorf("String = %q", inf.String())
	}
}

// TestILPMatchesBruteForce is a property test: random small bounded ILPs are
// solved by branch and bound and by exhaustive enumeration; results agree.
func TestILPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		nv := 2 + rng.Intn(2)
		ub := int64(6)
		p := NewMinimize()
		if rng.Intn(2) == 0 {
			p = NewMaximize()
		}
		objs := make([]int64, nv)
		for i := 0; i < nv; i++ {
			objs[i] = int64(rng.Intn(11) - 5)
			p.AddVar("v", r(objs[i], 1), true)
		}
		// Upper bounds keep everything finite.
		for i := 0; i < nv; i++ {
			coef := make([]*big.Rat, nv)
			for j := range coef {
				coef[j] = r(0, 1)
			}
			coef[i] = r(1, 1)
			p.AddConstraint("ub", coef, LE, r(ub, 1))
		}
		nc := 1 + rng.Intn(3)
		type rawCon struct {
			coef []int64
			rel  Rel
			rhs  int64
		}
		var raws []rawCon
		for k := 0; k < nc; k++ {
			rc := rawCon{coef: make([]int64, nv), rel: Rel(rng.Intn(2)), rhs: int64(rng.Intn(21) - 5)}
			coef := make([]*big.Rat, nv)
			for j := 0; j < nv; j++ {
				rc.coef[j] = int64(rng.Intn(7) - 3)
				coef[j] = r(rc.coef[j], 1)
			}
			raws = append(raws, rc)
			p.AddConstraint("c", coef, rc.rel, r(rc.rhs, 1))
		}

		// Brute force.
		var bestObj *int64
		var enumerate func(i int, x []int64)
		enumerate = func(i int, x []int64) {
			if i == nv {
				for _, rc := range raws {
					var lhs int64
					for j := 0; j < nv; j++ {
						lhs += rc.coef[j] * x[j]
					}
					switch rc.rel {
					case LE:
						if lhs > rc.rhs {
							return
						}
					case GE:
						if lhs < rc.rhs {
							return
						}
					}
				}
				var obj int64
				for j := 0; j < nv; j++ {
					obj += objs[j] * x[j]
				}
				if bestObj == nil ||
					(p.Minimize && obj < *bestObj) ||
					(!p.Minimize && obj > *bestObj) {
					v := obj
					bestObj = &v
				}
				return
			}
			for v := int64(0); v <= ub; v++ {
				x[i] = v
				enumerate(i+1, x)
			}
		}
		enumerate(0, make([]int64, nv))

		sol, err := p.SolveILP()
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, p)
		}
		if bestObj == nil {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible, solver %v\n%s", trial, sol, p)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: brute force obj %d, solver status %v\n%s", trial, *bestObj, sol.Status, p)
		}
		if sol.Objective.Cmp(r(*bestObj, 1)) != 0 {
			t.Fatalf("trial %d: brute force obj %d, solver %v\n%s", trial, *bestObj, sol, p)
		}
	}
}

func TestSimplexBlandAvoidsBealeCycle(t *testing.T) {
	// Beale's classic cycling example: Dantzig's largest-coefficient rule
	// cycles forever on this LP; Bland's rule must terminate at the optimum
	// -1/20 (x6 = 1).
	p := NewMinimize()
	p.AddVar("x4", r(-3, 4), false)
	p.AddVar("x5", r(150, 1), false)
	p.AddVar("x6", r(-1, 50), false)
	p.AddVar("x7", r(6, 1), false)
	p.AddConstraint("r1", []*big.Rat{r(1, 4), r(-60, 1), r(-1, 25), r(9, 1)}, LE, r(0, 1))
	p.AddConstraint("r2", []*big.Rat{r(1, 2), r(-90, 1), r(-1, 50), r(3, 1)}, LE, r(0, 1))
	p.AddConstraint("r3", []*big.Rat{r(0, 1), r(0, 1), r(1, 1), r(0, 1)}, LE, r(1, 1))
	done := make(chan *Solution, 1)
	errc := make(chan error, 1)
	go func() {
		sol, err := p.SolveLP()
		if err != nil {
			errc <- err
			return
		}
		done <- sol
	}()
	select {
	case sol := <-done:
		if sol.Status != Optimal {
			t.Fatalf("status = %v", sol.Status)
		}
		if sol.Objective.Cmp(r(-1, 20)) != 0 {
			t.Fatalf("objective = %v, want -1/20", sol.Objective)
		}
	case err := <-errc:
		t.Fatal(err)
	}
}

func TestSimplexDegenerateProblem(t *testing.T) {
	// Multiple constraints active at the optimum (degenerate vertex).
	p := NewMaximize()
	p.AddVar("x", r(1, 1), false)
	p.AddVar("y", r(1, 1), false)
	p.AddConstraint("c1", []*big.Rat{r(1, 1), r(0, 1)}, LE, r(2, 1))
	p.AddConstraint("c2", []*big.Rat{r(1, 1), r(1, 1)}, LE, r(2, 1))
	p.AddConstraint("c3", []*big.Rat{r(2, 1), r(1, 1)}, LE, r(4, 1))
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(r(2, 1)) != 0 {
		t.Fatalf("sol = %v, want 2", sol)
	}
}
