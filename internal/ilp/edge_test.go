package ilp

import (
	"errors"
	"math/big"
	"testing"
)

// Edge-case regressions for the exact solver: the degenerate corners that
// tolerance-based solvers get wrong and that the fast float path leans on
// this package to adjudicate.

func frac(n, d int64) *big.Rat { return big.NewRat(n, d) }

// TestInfeasibleSystem: x ≥ 2 and x ≤ 1 cannot both hold.
func TestInfeasibleSystem(t *testing.T) {
	p := NewMinimize()
	p.AddVar("x", frac(1, 1), false)
	p.AddConstraint("lo", []*big.Rat{frac(1, 1)}, GE, frac(2, 1))
	p.AddConstraint("hi", []*big.Rat{frac(1, 1)}, LE, frac(1, 1))
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	// The ILP must agree: integrality cannot rescue an empty polytope.
	pi := NewMinimize()
	pi.AddVar("x", frac(1, 1), true)
	pi.AddConstraint("lo", []*big.Rat{frac(1, 1)}, GE, frac(2, 1))
	pi.AddConstraint("hi", []*big.Rat{frac(1, 1)}, LE, frac(1, 1))
	sol, err = pi.SolveILP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("ILP status %v, want infeasible", sol.Status)
	}
}

// TestUnboundedLP: maximise x subject to x ≥ 0 only.
func TestUnboundedLP(t *testing.T) {
	p := NewMaximize()
	p.AddVar("x", frac(1, 1), false)
	p.AddConstraint("lo", []*big.Rat{frac(1, 1)}, GE, frac(0, 1))
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

// TestBealeCycling is Beale's classic degenerate LP, the textbook example
// on which naive most-negative-cost pivoting cycles forever:
//
//	min  −3/4·x1 + 150·x2 − 1/50·x3 + 6·x4
//	s.t.  1/4·x1 −  60·x2 − 1/25·x3 + 9·x4 ≤ 0
//	      1/2·x1 −  90·x2 − 1/50·x3 + 3·x4 ≤ 0
//	                            x3          ≤ 1
//
// Bland's rule must terminate at the optimum −1/20, attained at
// x = (1/25, 0, 1, 0).
func TestBealeCycling(t *testing.T) {
	p := NewMinimize()
	p.AddVar("x1", frac(-3, 4), false)
	p.AddVar("x2", frac(150, 1), false)
	p.AddVar("x3", frac(-1, 50), false)
	p.AddVar("x4", frac(6, 1), false)
	p.AddConstraint("c1", []*big.Rat{frac(1, 4), frac(-60, 1), frac(-1, 25), frac(9, 1)}, LE, frac(0, 1))
	p.AddConstraint("c2", []*big.Rat{frac(1, 2), frac(-90, 1), frac(-1, 50), frac(3, 1)}, LE, frac(0, 1))
	p.AddConstraint("c3", []*big.Rat{frac(0, 1), frac(0, 1), frac(1, 1), frac(0, 1)}, LE, frac(1, 1))
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	if want := frac(-1, 20); sol.Objective.Cmp(want) != 0 {
		t.Fatalf("objective %s, want %s", sol.Objective.RatString(), want.RatString())
	}
	wantX := []*big.Rat{frac(1, 25), frac(0, 1), frac(1, 1), frac(0, 1)}
	for i, w := range wantX {
		if sol.X[i].Cmp(w) != 0 {
			t.Fatalf("x%d = %s, want %s", i+1, sol.X[i].RatString(), w.RatString())
		}
	}
}

// TestZeroVariableProblem: solving an empty problem is a caller error, not
// a crash or a vacuous optimum.
func TestZeroVariableProblem(t *testing.T) {
	p := NewMinimize()
	if _, err := p.SolveLP(); !errors.Is(err, ErrNoVars) {
		t.Fatalf("SolveLP err = %v, want ErrNoVars", err)
	}
	if _, err := p.SolveILP(); !errors.Is(err, ErrNoVars) {
		t.Fatalf("SolveILP err = %v, want ErrNoVars", err)
	}
}

// TestDegeneratePivotILP drives branch and bound over a degenerate LP
// relaxation: the Beale polytope with integrality on every variable. The
// only integral points near the LP optimum have x1 ∈ {0}, so the ILP
// optimum is 0 at the origin (x3 ≤ 1 admits x3 = 1 for −1/50, checked
// exactly).
func TestDegeneratePivotILP(t *testing.T) {
	p := NewMinimize()
	p.AddVar("x1", frac(-3, 4), true)
	p.AddVar("x2", frac(150, 1), true)
	p.AddVar("x3", frac(-1, 50), true)
	p.AddVar("x4", frac(6, 1), true)
	p.AddConstraint("c1", []*big.Rat{frac(1, 4), frac(-60, 1), frac(-1, 25), frac(9, 1)}, LE, frac(0, 1))
	p.AddConstraint("c2", []*big.Rat{frac(1, 2), frac(-90, 1), frac(-1, 50), frac(3, 1)}, LE, frac(0, 1))
	p.AddConstraint("c3", []*big.Rat{frac(0, 1), frac(0, 1), frac(1, 1), frac(0, 1)}, LE, frac(1, 1))
	sol, err := p.SolveILP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	for i, x := range sol.X {
		if !x.IsInt() {
			t.Fatalf("x%d = %s not integral", i+1, x.RatString())
		}
	}
	if want := frac(-1, 50); sol.Objective.Cmp(want) != 0 {
		t.Fatalf("ILP objective %s, want %s", sol.Objective.RatString(), want.RatString())
	}
}
