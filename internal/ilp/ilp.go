// Package ilp is an exact integer linear program solver over rational
// arithmetic: a two-phase tableau simplex with Bland's rule for the LP
// relaxation and best-first branch and bound for integrality. It exists to
// solve the paper's Algorithm 1 (minimum block sizes under throughput
// constraints) without tolerance artifacts; all coefficients, bounds and
// solutions are big.Rat values.
//
// Problems are tiny (one variable per multiplexed stream), so the solver
// optimises for exactness and clarity, not scale.
package ilp

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // Σ coef·x ≤ rhs
	GE            // Σ coef·x ≥ rhs
	EQ            // Σ coef·x = rhs
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Constraint is one linear constraint over the problem variables.
type Constraint struct {
	Name string
	Coef []*big.Rat
	Rel  Rel
	RHS  *big.Rat
}

// Problem is a linear program with optional integrality restrictions. All
// variables are implicitly non-negative; use AddConstraint for tighter lower
// bounds.
type Problem struct {
	Minimize bool
	// MaxNodes bounds the branch-and-bound tree explored by SolveILP
	// (0 = the default of 200k nodes). When the budget runs out the solve
	// returns ErrBranchBudget — callers with a time budget (online admission
	// control) catch it and fall back to an iterative solver.
	MaxNodes int
	names    []string
	obj      []*big.Rat
	cons     []Constraint
	integer  []bool
}

// NewMinimize returns an empty minimisation problem.
func NewMinimize() *Problem { return &Problem{Minimize: true} }

// NewMaximize returns an empty maximisation problem.
func NewMaximize() *Problem { return &Problem{Minimize: false} }

// AddVar adds a variable with the given objective coefficient; integer marks
// it integral for branch and bound. Returns the variable index.
func (p *Problem) AddVar(name string, objCoef *big.Rat, integer bool) int {
	p.names = append(p.names, name)
	p.obj = append(p.obj, new(big.Rat).Set(objCoef))
	p.integer = append(p.integer, integer)
	return len(p.names) - 1
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.names) }

// AddConstraint appends a constraint. Coef must have one entry per variable
// (shorter slices are zero-padded).
func (p *Problem) AddConstraint(name string, coef []*big.Rat, rel Rel, rhs *big.Rat) {
	c := Constraint{Name: name, Rel: rel, RHS: new(big.Rat).Set(rhs)}
	c.Coef = make([]*big.Rat, len(p.names))
	for i := range c.Coef {
		if i < len(coef) && coef[i] != nil {
			c.Coef[i] = new(big.Rat).Set(coef[i])
		} else {
			c.Coef[i] = new(big.Rat)
		}
	}
	p.cons = append(p.cons, c)
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "?"
}

// Solution is the result of SolveLP or SolveILP.
type Solution struct {
	Status    Status
	X         []*big.Rat
	Objective *big.Rat
}

func (s *Solution) String() string {
	if s.Status != Optimal {
		return s.Status.String()
	}
	parts := make([]string, len(s.X))
	for i, x := range s.X {
		parts[i] = x.RatString()
	}
	return fmt.Sprintf("obj=%s x=[%s]", s.Objective.RatString(), strings.Join(parts, " "))
}

// ErrNoVars is returned for problems without variables.
var ErrNoVars = errors.New("ilp: problem has no variables")

// SolveLP solves the LP relaxation (ignoring integrality) exactly.
func (p *Problem) SolveLP() (*Solution, error) {
	if len(p.names) == 0 {
		return nil, ErrNoVars
	}
	t, err := newTableau(p)
	if err != nil {
		return nil, err
	}
	return t.solve()
}

// SolveILP solves the problem with integrality constraints by branch and
// bound on the exact LP relaxation.
func (p *Problem) SolveILP() (*Solution, error) {
	if len(p.names) == 0 {
		return nil, ErrNoVars
	}
	anyInt := false
	for _, b := range p.integer {
		anyInt = anyInt || b
	}
	if !anyInt {
		return p.SolveLP()
	}
	bb := &brancher{base: p, maxNodes: p.MaxNodes}
	sol, err := bb.run()
	if err != nil {
		return nil, err
	}
	return sol, nil
}

// String renders the problem for debugging.
func (p *Problem) String() string {
	var b strings.Builder
	if p.Minimize {
		b.WriteString("minimize ")
	} else {
		b.WriteString("maximize ")
	}
	for i, c := range p.obj {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%s·%s", c.RatString(), p.names[i])
	}
	b.WriteString("\n")
	for _, c := range p.cons {
		fmt.Fprintf(&b, "  %s: ", c.Name)
		for i, v := range c.Coef {
			if i > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%s·%s", v.RatString(), p.names[i])
		}
		fmt.Fprintf(&b, " %s %s\n", c.Rel, c.RHS.RatString())
	}
	return b.String()
}
