package ilp

import (
	"math/big"
	"testing"
)

func benchProblem(nv int) *Problem {
	p := NewMinimize()
	one := big.NewRat(1, 1)
	for i := 0; i < nv; i++ {
		p.AddVar("x", one, true)
	}
	// Coupled covering constraints reminiscent of Algorithm 1.
	for i := 0; i < nv; i++ {
		coef := make([]*big.Rat, nv)
		for j := range coef {
			coef[j] = big.NewRat(-1, 20)
		}
		coef[i] = big.NewRat(9, 10)
		p.AddConstraint("c", coef, GE, big.NewRat(int64(50+i*13), 1))
	}
	return p
}

func BenchmarkSolveLP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol, err := benchProblem(6).SolveLP()
		if err != nil || sol.Status != Optimal {
			b.Fatalf("%v %v", sol, err)
		}
	}
}

func BenchmarkSolveILP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol, err := benchProblem(6).SolveILP()
		if err != nil || sol.Status != Optimal {
			b.Fatalf("%v %v", sol, err)
		}
	}
}
