package ilp

import (
	"fmt"
	"math/big"
)

// tableau is a dense two-phase simplex tableau over exact rationals.
//
// Layout: rows are constraints in equality form A·x = b with b ≥ 0 after
// slack/surplus/artificial augmentation. Column order:
//
//	[structural vars | slack+surplus vars | artificial vars | rhs]
//
// Bland's smallest-index pivoting rule guarantees termination.
type tableau struct {
	p             *Problem
	m, n          int // rows, total columns excluding rhs
	nStruct, nArt int
	a             [][]*big.Rat // m rows, n+1 columns (last is rhs)
	basis         []int        // basis[r] = column basic in row r
	artCol        int          // first artificial column index
}

func rat(v int64) *big.Rat { return big.NewRat(v, 1) }

func newTableau(p *Problem) (*tableau, error) {
	nStruct := len(p.names)
	m := len(p.cons)
	// Count slack/surplus columns.
	nSlack := 0
	for _, c := range p.cons {
		if c.Rel != EQ {
			nSlack++
		}
	}
	t := &tableau{p: p, m: m, nStruct: nStruct}
	t.artCol = nStruct + nSlack
	t.nArt = 0

	rows := make([][]*big.Rat, m)
	basis := make([]int, m)
	slackIdx := 0
	type artNeed struct{ row int }
	var arts []artNeed
	for r, c := range p.cons {
		row := make([]*big.Rat, t.artCol) // artificials appended later
		for i := 0; i < t.artCol; i++ {
			row[i] = new(big.Rat)
		}
		for i, v := range c.Coef {
			row[i].Set(v)
		}
		rhs := new(big.Rat).Set(c.RHS)
		rel := c.Rel
		// Normalise to rhs >= 0.
		if rhs.Sign() < 0 {
			for i := range row {
				row[i].Neg(row[i])
			}
			rhs.Neg(rhs)
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			rows[r] = row
			col := nStruct + slackIdx
			rows[r][col].SetInt64(1)
			basis[r] = col
			slackIdx++
		case GE:
			col := nStruct + slackIdx
			row[col].SetInt64(-1) // surplus
			slackIdx++
			rows[r] = row
			arts = append(arts, artNeed{row: r})
			basis[r] = -1
		case EQ:
			rows[r] = row
			arts = append(arts, artNeed{row: r})
			basis[r] = -1
		}
		rows[r] = append(rows[r], rhs)
	}
	// Append artificial columns.
	t.nArt = len(arts)
	t.n = t.artCol + t.nArt
	for r := range rows {
		rhs := rows[r][len(rows[r])-1]
		body := rows[r][:len(rows[r])-1]
		for len(body) < t.n {
			body = append(body, new(big.Rat))
		}
		rows[r] = append(body, rhs)
	}
	for i, an := range arts {
		col := t.artCol + i
		rows[an.row][col].SetInt64(1)
		basis[an.row] = col
	}
	t.a = rows
	t.basis = basis
	return t, nil
}

// reducedCosts computes z_j - c_j for objective vector c (length n) given
// the current basis, returning also the objective value.
func (t *tableau) priceOut(c []*big.Rat) (reduced []*big.Rat, obj *big.Rat) {
	// y = c_B applied to rows: since the tableau is kept in canonical form
	// (basic columns are unit vectors), reduced cost of column j is
	// c_j - Σ_r c_{basis[r]}·a[r][j], and obj = Σ_r c_{basis[r]}·b_r.
	reduced = make([]*big.Rat, t.n)
	obj = new(big.Rat)
	for r := 0; r < t.m; r++ {
		cb := c[t.basis[r]]
		if cb.Sign() == 0 {
			continue
		}
		obj.Add(obj, new(big.Rat).Mul(cb, t.a[r][t.n]))
	}
	for j := 0; j < t.n; j++ {
		v := new(big.Rat).Set(c[j])
		for r := 0; r < t.m; r++ {
			cb := c[t.basis[r]]
			if cb.Sign() == 0 || t.a[r][j].Sign() == 0 {
				continue
			}
			v.Sub(v, new(big.Rat).Mul(cb, t.a[r][j]))
		}
		reduced[j] = v
	}
	return reduced, obj
}

func (t *tableau) pivot(r, j int) {
	pv := new(big.Rat).Set(t.a[r][j])
	inv := new(big.Rat).Inv(pv)
	for k := 0; k <= t.n; k++ {
		t.a[r][k].Mul(t.a[r][k], inv)
	}
	for i := 0; i < t.m; i++ {
		if i == r || t.a[i][j].Sign() == 0 {
			continue
		}
		f := new(big.Rat).Set(t.a[i][j])
		for k := 0; k <= t.n; k++ {
			if t.a[r][k].Sign() == 0 {
				continue
			}
			t.a[i][k].Sub(t.a[i][k], new(big.Rat).Mul(f, t.a[r][k]))
		}
	}
	t.basis[r] = j
}

// minimize runs simplex iterations minimising c·x from the current basis.
// forbid marks columns that may not enter (used to keep artificials out in
// phase 2). Returns false if unbounded.
func (t *tableau) minimize(c []*big.Rat, forbid func(int) bool) bool {
	for iter := 0; ; iter++ {
		reduced, _ := t.priceOut(c)
		// Bland: entering column = smallest index with negative reduced cost
		// (for minimisation we need c_j - z_j < 0, i.e. reduced > 0 under the
		// z_j - c_j convention; we computed c_j - Σ..., so enter when < 0).
		enter := -1
		for j := 0; j < t.n; j++ {
			if forbid != nil && forbid(j) {
				continue
			}
			if reduced[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter == -1 {
			return true
		}
		// Ratio test with Bland tie-break on smallest basis index.
		leave := -1
		var best *big.Rat
		for r := 0; r < t.m; r++ {
			if t.a[r][enter].Sign() <= 0 {
				continue
			}
			ratio := new(big.Rat).Quo(t.a[r][t.n], t.a[r][enter])
			if leave == -1 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && t.basis[r] < t.basis[leave]) {
				leave, best = r, ratio
			}
		}
		if leave == -1 {
			return false // unbounded
		}
		t.pivot(leave, enter)
	}
}

func (t *tableau) solve() (*Solution, error) {
	// Phase 1: minimise the sum of artificials.
	if t.nArt > 0 {
		c1 := make([]*big.Rat, t.n)
		for j := range c1 {
			c1[j] = new(big.Rat)
		}
		for j := t.artCol; j < t.n; j++ {
			c1[j] = rat(1)
		}
		if !t.minimize(c1, nil) {
			return nil, fmt.Errorf("ilp: phase-1 unbounded (internal error)")
		}
		_, obj := t.priceOut(c1)
		if obj.Sign() != 0 {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive any remaining artificial out of the basis if possible.
		for r := 0; r < t.m; r++ {
			if t.basis[r] < t.artCol {
				continue
			}
			moved := false
			for j := 0; j < t.artCol; j++ {
				if t.a[r][j].Sign() != 0 {
					t.pivot(r, j)
					moved = true
					break
				}
			}
			if !moved && t.a[r][t.n].Sign() != 0 {
				return &Solution{Status: Infeasible}, nil
			}
		}
	}
	// Phase 2.
	c2 := make([]*big.Rat, t.n)
	for j := range c2 {
		c2[j] = new(big.Rat)
	}
	sign := int64(1)
	if !t.p.Minimize {
		sign = -1
	}
	for i, v := range t.p.obj {
		c2[i] = new(big.Rat).Mul(rat(sign), v)
	}
	forbid := func(j int) bool { return j >= t.artCol }
	if !t.minimize(c2, forbid) {
		return &Solution{Status: Unbounded}, nil
	}
	x := make([]*big.Rat, t.nStruct)
	for i := range x {
		x[i] = new(big.Rat)
	}
	for r := 0; r < t.m; r++ {
		if t.basis[r] < t.nStruct {
			x[t.basis[r]].Set(t.a[r][t.n])
		}
	}
	obj := new(big.Rat)
	for i, v := range t.p.obj {
		obj.Add(obj, new(big.Rat).Mul(v, x[i]))
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}
