package ilp

import (
	"errors"
	"math/big"
)

// brancher implements depth-first branch and bound over the exact LP
// relaxation. Branching adds bound constraints x_i ≤ ⌊v⌋ / x_i ≥ ⌈v⌉ for a
// fractional integer variable.
type brancher struct {
	base     *Problem
	best     *Solution
	maxNodes int
	nodes    int
}

// ErrBranchBudget is returned when branch and bound explores too many nodes.
var ErrBranchBudget = errors.New("ilp: branch-and-bound node budget exceeded")

func (b *brancher) run() (*Solution, error) {
	if b.maxNodes == 0 {
		b.maxNodes = 200_000
	}
	if err := b.explore(b.base); err != nil {
		return nil, err
	}
	if b.best == nil {
		return &Solution{Status: Infeasible}, nil
	}
	return b.best, nil
}

// better reports whether objective o improves on the incumbent.
func (b *brancher) better(o *big.Rat) bool {
	if b.best == nil {
		return true
	}
	if b.base.Minimize {
		return o.Cmp(b.best.Objective) < 0
	}
	return o.Cmp(b.best.Objective) > 0
}

// boundedWorse reports whether the relaxation bound o can not improve on the
// incumbent (prune).
func (b *brancher) boundedWorse(o *big.Rat) bool {
	if b.best == nil {
		return false
	}
	if b.base.Minimize {
		return o.Cmp(b.best.Objective) >= 0
	}
	return o.Cmp(b.best.Objective) <= 0
}

func (b *brancher) explore(p *Problem) error {
	b.nodes++
	if b.nodes > b.maxNodes {
		return ErrBranchBudget
	}
	sol, err := p.SolveLP()
	if err != nil {
		return err
	}
	switch sol.Status {
	case Infeasible:
		return nil
	case Unbounded:
		// An unbounded relaxation of an integral problem: report by keeping
		// the unbounded status if nothing better exists.
		if b.best == nil {
			b.best = sol
		}
		return nil
	}
	if b.boundedWorse(sol.Objective) {
		return nil
	}
	// Find the first fractional integer variable.
	frac := -1
	for i, isInt := range b.base.integer {
		if isInt && !sol.X[i].IsInt() {
			frac = i
			break
		}
	}
	if frac == -1 {
		if b.better(sol.Objective) || (b.best != nil && b.best.Status == Unbounded) {
			b.best = sol
		}
		return nil
	}
	v := sol.X[frac]
	floor := new(big.Int).Div(v.Num(), v.Denom()) // v > 0 in our problems; Div floors for positive denom
	lo := new(big.Rat).SetInt(floor)
	hi := new(big.Rat).Add(lo, rat(1))

	coef := make([]*big.Rat, p.NumVars())
	for i := range coef {
		coef[i] = new(big.Rat)
	}
	coef[frac] = rat(1)

	left := cloneProblem(p)
	left.AddConstraint("branch.le", coef, LE, lo)
	if err := b.explore(left); err != nil {
		return err
	}
	right := cloneProblem(p)
	right.AddConstraint("branch.ge", coef, GE, hi)
	return b.explore(right)
}

func cloneProblem(p *Problem) *Problem {
	c := &Problem{Minimize: p.Minimize}
	c.names = append([]string(nil), p.names...)
	c.integer = append([]bool(nil), p.integer...)
	c.obj = make([]*big.Rat, len(p.obj))
	for i, v := range p.obj {
		c.obj[i] = new(big.Rat).Set(v)
	}
	c.cons = make([]Constraint, len(p.cons))
	for i, con := range p.cons {
		cc := Constraint{Name: con.Name, Rel: con.Rel, RHS: new(big.Rat).Set(con.RHS)}
		cc.Coef = make([]*big.Rat, len(con.Coef))
		for j, v := range con.Coef {
			cc.Coef[j] = new(big.Rat).Set(v)
		}
		c.cons[i] = cc
	}
	return c
}
