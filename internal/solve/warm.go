package solve

// Incremental is the warm-start layer promoted out of internal/admission:
// it derives a sound Start vector from the previously committed assignment
// (Problem.Prev) and delegates to Inner. Soundness follows the same
// argument as core.ComputeBlockSizesWarm: when the new stream set only
// ADDS streams, the Algorithm 1 operator grows pointwise, so the old least
// fixed point is still ≤ the new one componentwise and each surviving
// stream's old block seeds the iteration correctly (newcomers start at 1).
// After a removal the least fixed point SHRINKS, so any reuse of old blocks
// could overshoot it and land on a non-minimal fixed point — the layer
// detects this (a Prev name absent from the model) and restarts cold.
type Incremental struct {
	Inner Solver
}

// Name identifies the warm-start layer.
func (w *Incremental) Name() string { return "incremental(" + w.Inner.Name() + ")" }

// Solve derives Start from Prev when sound, then delegates. An explicit
// Problem.Start from the caller wins over derivation.
func (w *Incremental) Solve(p *Problem) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.Start != nil || len(p.Prev) == 0 {
		return w.Inner.Solve(p)
	}
	prev := make(map[string]int64, len(p.Prev))
	for _, a := range p.Prev {
		prev[a.Name] = a.Block
	}
	start := make([]int64, len(p.Model.Streams))
	live := 0
	for i := range p.Model.Streams {
		if b, ok := prev[p.Model.Streams[i].Name]; ok {
			start[i] = b
			live++
		} else {
			start[i] = 1
		}
	}
	if live < len(prev) {
		// A previously committed stream is gone: the operator shrank, the
		// old fixed point may exceed the new least one. Cold restart.
		return w.Inner.Solve(p)
	}
	warmed := *p
	warmed.Start = start
	return w.Inner.Solve(&warmed)
}
