package solve

import (
	"math/big"
	"runtime"
	"sync"

	"accelshare/internal/core"
)

// Per-chain sharding. Algorithm 1 couples streams only within one chain
// (the Σ(ηi+2) term ranges over the streams multiplexed on that chain's
// accelerators), so a fleet-wide solve decomposes exactly into independent
// per-chain problems. SolveShards runs them concurrently with a
// deterministic indexed merge; Fits/Headroom are the cheap exact
// feasibility combination step that decides WHERE a stream can go before
// any full solve runs, and PlanPlacement composes the two into a
// cluster-wide plan.

// Shard is one independent per-chain Algorithm 1 instance.
type Shard struct {
	// Key names the shard (typically the chain name) and is carried into
	// the result verbatim.
	Key     string
	Problem *Problem
}

// ShardResult pairs a shard's key with its solve outcome. Exactly one of
// Result and Err is non-nil.
type ShardResult struct {
	Key    string
	Result *Result
	Err    error
}

// SolveShards solves independent shards concurrently and merges the
// results by input position — out[i] always answers shards[i], whatever
// order the workers finished in, so campaign output built from the merged
// slice stays byte-deterministic. workers ≤ 0 means GOMAXPROCS.
func SolveShards(s Solver, shards []Shard, workers int) []ShardResult {
	out := make([]ShardResult, len(shards))
	if len(shards) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := s.Solve(shards[i].Problem)
				out[i] = ShardResult{Key: shards[i].Key, Result: res, Err: err}
			}
		}()
	}
	for i := range shards {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// one is the feasibility threshold Σ μs·c0 < 1.
var one = big.NewRat(1, 1)

// AddedUtilization returns the exact utilisation a stream of the given
// rate (samples/second) would add to the chain: (rate/ClockHz)·c0.
func AddedUtilization(m *core.System, rate *big.Rat) *big.Rat {
	mu := new(big.Rat).Quo(rate, new(big.Rat).SetInt64(m.ClockHz))
	return mu.Mul(mu, new(big.Rat).SetInt64(int64(m.Chain.C0())))
}

// Fits reports whether adding one stream of the given rate keeps the
// chain's exact utilisation strictly below 1 — the necessary and
// sufficient condition for SOME feasible block assignment to exist, per
// the divergence argument behind core.ComputeBlockSizesFixedPoint. It is
// a pure big.Rat computation, O(streams), with no solver involved: the
// cheap pre-filter for cluster-wide placement.
func Fits(m *core.System, rate *big.Rat) bool {
	u := new(big.Rat).Add(m.Utilization(), AddedUtilization(m, rate))
	return u.Cmp(one) < 0
}

// Headroom returns the chain's exact remaining utilisation budget,
// 1 − Σ μs·c0. Negative or zero headroom admits nothing.
func Headroom(m *core.System) *big.Rat {
	return new(big.Rat).Sub(one, m.Utilization())
}

// PlacementPlan is the outcome of PlanPlacement.
type PlacementPlan struct {
	// ChainOf[i] is the chain index the i-th candidate stream was placed
	// on, or -1 when no chain had the headroom.
	ChainOf []int
	// Models[c] is a deep copy of chains[c] with its placed streams
	// appended, in arrival order.
	Models []*core.System
	// Results[c] is the verified solve result for Models[c] (nil for
	// chains that received no streams and were not re-solved).
	Results []ShardResult
}

// PlanPlacement is the solver-level cluster placement: each candidate
// stream goes to the feasible chain with the largest exact headroom
// (best-fit; ties broken by chain index, so the plan is deterministic),
// then every chain that received streams is re-solved as an independent
// shard. Results are exact-verified by construction of the Solver
// contract; PlanPlacement additionally re-checks each accepted plan with
// Verify and reports any violation as that shard's error.
func PlanPlacement(s Solver, chains []*core.System, streams []core.Stream, workers int) *PlacementPlan {
	plan := &PlacementPlan{
		ChainOf: make([]int, len(streams)),
		Models:  make([]*core.System, len(chains)),
		Results: make([]ShardResult, len(chains)),
	}
	head := make([]*big.Rat, len(chains))
	for c := range chains {
		plan.Models[c] = chains[c].Clone()
		head[c] = Headroom(plan.Models[c])
	}
	touched := make([]bool, len(chains))
	for i := range streams {
		plan.ChainOf[i] = -1
		best := -1
		for c := range plan.Models {
			if !Fits(plan.Models[c], streams[i].Rate) {
				continue
			}
			if best < 0 || head[c].Cmp(head[best]) > 0 {
				best = c
			}
		}
		if best < 0 {
			continue
		}
		add := AddedUtilization(plan.Models[best], streams[i].Rate)
		head[best].Sub(head[best], add)
		st := streams[i]
		st.Rate = new(big.Rat).Set(streams[i].Rate)
		st.Block = 0
		plan.Models[best].Streams = append(plan.Models[best].Streams, st)
		plan.ChainOf[i] = best
		touched[best] = true
	}
	var shards []Shard
	var shardChain []int
	for c := range plan.Models {
		if touched[c] {
			shards = append(shards, Shard{Key: plan.Models[c].Chain.Name, Problem: &Problem{Model: plan.Models[c]}})
			shardChain = append(shardChain, c)
		}
	}
	for i, r := range SolveShards(s, shards, workers) {
		c := shardChain[i]
		if r.Err == nil {
			if v := Verify(plan.Models[c], nil, r.Result.Blocks); !v.Feasible {
				r.Err = ErrUnverified
				r.Result = nil
			}
		}
		plan.Results[c] = r
	}
	return plan
}
