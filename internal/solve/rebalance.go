package solve

import (
	"math/big"
	"sort"

	"accelshare/internal/core"
)

// Cross-chain rebalance search on top of PlanPlacement's feasibility
// algebra (the solver headroom noted in ROADMAP). PlanRebalance answers
// WHICH streams should move WHERE to shrink the fleet's utilisation spread;
// it is a pure big.Rat computation with no solver run — per-chain
// feasibility of every move is re-proven later by the target controller's
// own AdmitMigrated solve + Verify (verify, don't trust). Keeping the
// search exact matters: a float ranking could order two chains differently
// than the admission model's big.Rat compare and plan a move the target
// then rejects.

// MoveCandidate is one movable stream offered to PlanRebalance.
type MoveCandidate struct {
	// Name identifies the stream in the returned moves.
	Name string
	// Chain indexes chains: where the stream currently runs.
	Chain int
	// Rate is the stream's throughput constraint μs in samples per second.
	Rate *big.Rat
	// Residue is the stream's pending replay residue in words. Victims are
	// picked smallest-residue-first: a checkpointing fleet bounds residue by
	// K, but a residue-free stream migrates with zero replay work, so the
	// cheapest moves happen first and a partial plan still helps.
	Residue int
}

// Move is one planned migration: stream Name from chains[From] to
// chains[To].
type Move struct {
	Name     string
	From, To int
}

// PlanRebalance plans at most maxMoves migrations that each strictly shrink
// the fleet's exact utilisation spread (max − min over chains). Greedy:
// take the hottest and coldest chains (ties broken by chain index), move
// the cheapest candidate (smallest residue, then name) that fits the
// coldest chain and strictly improves the spread, re-rank, repeat. Planning
// stops early when the spread reaches stopSpread (nil = keep going while
// moves improve) — the hysteresis low-water mark, so a triggered rebalance
// drives the fleet well below the trigger threshold instead of oscillating
// around it. The chains models are not mutated.
func PlanRebalance(chains []*core.System, cands []MoveCandidate, maxMoves int, stopSpread *big.Rat) []Move {
	if len(chains) < 2 || len(cands) == 0 || maxMoves <= 0 {
		return nil
	}
	util := make([]*big.Rat, len(chains))
	for c := range chains {
		util[c] = new(big.Rat).Set(chains[c].Utilization())
	}
	// Work on a private copy ordered (residue, name): the victim-selection
	// policy is baked into the scan order.
	cs := append([]MoveCandidate(nil), cands...)
	sort.SliceStable(cs, func(a, b int) bool {
		if cs[a].Residue != cs[b].Residue {
			return cs[a].Residue < cs[b].Residue
		}
		return cs[a].Name < cs[b].Name
	})

	spreadOf := func() *big.Rat {
		lo, hi := util[0], util[0]
		for _, u := range util[1:] {
			if u.Cmp(lo) < 0 {
				lo = u
			}
			if u.Cmp(hi) > 0 {
				hi = u
			}
		}
		return new(big.Rat).Sub(hi, lo)
	}

	var moves []Move
	for len(moves) < maxMoves {
		spread := spreadOf()
		if stopSpread != nil && spread.Cmp(stopSpread) <= 0 {
			break
		}
		hot, cold := 0, 0
		for c := 1; c < len(chains); c++ {
			if util[c].Cmp(util[hot]) > 0 {
				hot = c
			}
			if util[c].Cmp(util[cold]) < 0 {
				cold = c
			}
		}
		if hot == cold {
			break
		}
		moved := false
		for i := range cs {
			if cs[i].Chain != hot {
				continue
			}
			addTo := AddedUtilization(chains[cold], cs[i].Rate)
			if new(big.Rat).Add(util[cold], addTo).Cmp(one) >= 0 {
				continue // would overload the coldest chain
			}
			sub := AddedUtilization(chains[hot], cs[i].Rate)
			util[hot].Sub(util[hot], sub)
			util[cold].Add(util[cold], addTo)
			if spreadOf().Cmp(spread) >= 0 {
				// No strict improvement (the move overshoots, inverting the
				// imbalance, or c0 asymmetry eats the gain): undo and try the
				// next candidate.
				util[hot].Add(util[hot], sub)
				util[cold].Sub(util[cold], addTo)
				continue
			}
			moves = append(moves, Move{Name: cs[i].Name, From: hot, To: cold})
			cs[i].Chain = cold
			moved = true
			break
		}
		if !moved {
			break
		}
	}
	return moves
}
