package solve

import (
	"math/big"
	"testing"

	"accelshare/internal/core"
)

// rebalanceFleet builds n identical chains (c0 = 4) with no streams; load
// is added per test via addLoad.
func rebalanceFleet(n int) []*core.System {
	out := make([]*core.System, n)
	for i := range out {
		out[i] = &core.System{
			Chain: core.Chain{
				Name:       string(rune('A' + i)),
				AccelCosts: []uint64{4},
				EntryCost:  1,
				ExitCost:   2,
				NICapacity: 2,
			},
			ClockHz: 1_000_000,
		}
	}
	return out
}

// addLoad appends a stream of utilisation num/den (μ·c0 exact) to chain m.
func addLoad(m *core.System, name string, num, den int64) {
	c0 := int64(m.Chain.C0())
	m.Streams = append(m.Streams, core.Stream{
		Name: name,
		Rate: big.NewRat(num*m.ClockHz, den*c0),
	})
}

func TestPlanRebalanceMovesHotToCold(t *testing.T) {
	fleet := rebalanceFleet(3)
	// A at 6/10, B at 2/10, C at 1/10: spread 1/2.
	addLoad(fleet[0], "a0", 2, 10)
	addLoad(fleet[0], "a1", 2, 10)
	addLoad(fleet[0], "a2", 2, 10)
	addLoad(fleet[1], "b0", 2, 10)
	addLoad(fleet[2], "c0", 1, 10)
	cands := []MoveCandidate{
		{Name: "a0", Chain: 0, Rate: fleet[0].Streams[0].Rate, Residue: 4},
		{Name: "a1", Chain: 0, Rate: fleet[0].Streams[1].Rate, Residue: 0},
		{Name: "a2", Chain: 0, Rate: fleet[0].Streams[2].Rate, Residue: 0},
	}
	moves := PlanRebalance(fleet, cands, 8, nil)
	if len(moves) == 0 {
		t.Fatal("no moves planned for a 5:1 hot/cold spread")
	}
	// Victim selection is smallest-residue-first, name as tie-break: a1
	// (residue 0) must move before a0 (residue 4).
	if moves[0].Name != "a1" || moves[0].From != 0 || moves[0].To != 2 {
		t.Fatalf("first move = %+v, want a1 from 0 to 2 (smallest residue to coldest)", moves[0])
	}
	for _, mv := range moves {
		if mv.From != 0 {
			t.Fatalf("move %+v leaves a non-hot chain", mv)
		}
	}
	// Models must not be mutated by planning.
	if got := fleet[0].Utilization(); got.Cmp(big.NewRat(6, 10)) != 0 {
		t.Fatalf("planning mutated chain A utilisation: %v", got)
	}
}

func TestPlanRebalanceStopsAtLowWater(t *testing.T) {
	fleet := rebalanceFleet(2)
	addLoad(fleet[0], "a0", 1, 10)
	addLoad(fleet[0], "a1", 1, 10)
	addLoad(fleet[0], "a2", 1, 10)
	addLoad(fleet[0], "a3", 1, 10)
	cands := make([]MoveCandidate, 4)
	for i := range cands {
		cands[i] = MoveCandidate{Name: fleet[0].Streams[i].Name, Chain: 0, Rate: fleet[0].Streams[i].Rate}
	}
	// Spread starts at 4/10; low water 2/10 should allow exactly one move
	// (4/10 → 2/10), not balance all the way to 0.
	moves := PlanRebalance(fleet, cands, 8, big.NewRat(2, 10))
	if len(moves) != 1 {
		t.Fatalf("planned %d moves, want 1 (stop at low water)", len(moves))
	}
}

func TestPlanRebalanceRespectsBudgetAndFit(t *testing.T) {
	fleet := rebalanceFleet(2)
	addLoad(fleet[0], "a0", 3, 10)
	addLoad(fleet[0], "a1", 3, 10)
	addLoad(fleet[0], "a2", 3, 10)
	// B is nearly full: only a chain with room may receive.
	addLoad(fleet[1], "b0", 9, 10)
	cands := []MoveCandidate{
		{Name: "a0", Chain: 0, Rate: fleet[0].Streams[0].Rate},
		{Name: "a1", Chain: 0, Rate: fleet[0].Streams[1].Rate},
		{Name: "a2", Chain: 0, Rate: fleet[0].Streams[2].Rate},
	}
	if moves := PlanRebalance(fleet, cands, 8, nil); len(moves) != 0 {
		t.Fatalf("planned %d moves onto a 9/10-loaded chain (3/10 each cannot fit)", len(moves))
	}
	// maxMoves caps the plan even when more improvement is available.
	fleet2 := rebalanceFleet(2)
	for i, name := range []string{"x0", "x1", "x2", "x3", "x4", "x5"} {
		_ = i
		addLoad(fleet2[0], name, 1, 10)
	}
	cands2 := make([]MoveCandidate, 6)
	for i := range cands2 {
		cands2[i] = MoveCandidate{Name: fleet2[0].Streams[i].Name, Chain: 0, Rate: fleet2[0].Streams[i].Rate}
	}
	if moves := PlanRebalance(fleet2, cands2, 2, nil); len(moves) != 2 {
		t.Fatalf("planned %d moves, want the maxMoves cap of 2", len(moves))
	}
}

func TestPlanRebalanceNoOscillation(t *testing.T) {
	// Two chains one small stream apart: moving it would just invert the
	// imbalance (same spread), so the plan must be empty — the strict
	// improvement rule is what makes the cluster-level hysteresis sound.
	fleet := rebalanceFleet(2)
	addLoad(fleet[0], "a0", 1, 10)
	cands := []MoveCandidate{{Name: "a0", Chain: 0, Rate: fleet[0].Streams[0].Rate}}
	if moves := PlanRebalance(fleet, cands, 8, nil); len(moves) != 0 {
		t.Fatalf("planned %d moves that cannot strictly improve the spread", len(moves))
	}
}
