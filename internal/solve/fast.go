package solve

import (
	"math"
	"math/big"

	"accelshare/internal/core"
	"accelshare/internal/ilp"
)

// Fast is the float64 fast path. It decides feasibility with the same
// exact rational utilisation gate as the exact path (Σ μs·c0 < 1 — never a
// float), then builds a candidate cheaply in float64: a revised simplex
// over the LP relaxation seeds small instances, a float Kleene iteration
// of the Algorithm 1 operator polishes the seed (rounded up to the integer
// and granularity grid) to a fixed point. The candidate is then re-verified
// with exact big.Rat arithmetic before acceptance; a feasible-but-slack
// candidate is tightened by exact operator descent (F of a feasible point
// is again feasible and ≤ it, so iterating F lands on a true fixed point).
// Only a plan that passes Verify is ever returned; anything else goes to
// Fallback, or fails with ErrUnverified when no fallback is configured.
type Fast struct {
	// Rounds bounds the float fixed-point iteration and the exact
	// tightening descent (0 = 10_000, matching the exact path).
	Rounds int
	// SimplexCap bounds the instance size seeded by the float LP
	// relaxation (0 = DefaultSimplexCap). Above it the dense simplex costs
	// more than the iterations it saves and the seed is all-ones (or the
	// caller's warm Start).
	SimplexCap int
	// Fallback, when non-nil, is consulted when the float candidate fails
	// exact verification (or the float iteration fails to converge).
	Fallback Solver
}

// DefaultSimplexCap is the largest instance the fast path seeds with the
// dense float simplex; the LP is Θ(n³) even in floats, while the Kleene
// iteration is Θ(n·rounds).
const DefaultSimplexCap = 64

// Name identifies the fast solver.
func (f *Fast) Name() string { return "fast" }

// Solve runs the fast path; every returned Result has Verified == true.
func (f *Fast) Solve(p *Problem) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	m := p.Model
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// The feasibility decision is exact: utilisation Σ μs·c0 is compared
	// against 1 in big.Rat, exactly as the exact path does it. Floats only
	// ever influence WHICH feasible plan is proposed, never WHETHER one
	// exists.
	if m.Utilization().Cmp(big.NewRat(1, 1)) >= 0 {
		return nil, core.ErrInfeasible
	}

	rounds := f.Rounds
	if rounds <= 0 {
		rounds = 10_000
	}

	n := len(m.Streams)
	mu := make([]float64, n)
	for i := range m.Streams {
		mu[i], _ = m.RatePerCycle(i).Float64()
	}
	c0 := float64(m.Chain.C0())
	c1 := float64(m.C1())

	eta := f.seed(p, mu, c0, c1)

	// Float Kleene iteration of the granularity-rounded operator. The
	// eps-shifted ceil keeps values that are integral up to float noise
	// (e.g. 4.999999999) from being bumped a grid step too high.
	floatRounds := 0
	converged := false
	for r := 1; r <= rounds; r++ {
		sum := 0.0
		for _, b := range eta {
			sum += float64(b + 2)
		}
		base := c1 + c0*sum
		changed := false
		for i := range eta {
			v := int64(math.Ceil(mu[i]*base - 1e-9))
			if v < 1 {
				v = 1
			}
			v = roundUpTo(v, p.granAt(i))
			if v != eta[i] {
				eta[i] = v
				changed = true
			}
		}
		floatRounds = r
		if !changed {
			converged = true
			break
		}
	}

	if converged {
		if res, ok := f.verifyAndTighten(p, eta, floatRounds, rounds); ok {
			return res, nil
		}
	}
	if f.Fallback != nil {
		return f.Fallback.Solve(p)
	}
	return nil, ErrUnverified
}

// seed produces the float iteration's starting point: the caller's warm
// Start when given, the ceiling of the float LP relaxation optimum for
// small instances, all-ones otherwise.
func (f *Fast) seed(p *Problem, mu []float64, c0, c1 float64) []int64 {
	n := len(p.Model.Streams)
	eta := make([]int64, n)
	if p.Start != nil {
		for i := range eta {
			v := p.Start[i]
			if v < 1 {
				v = 1
			}
			eta[i] = roundUpTo(v, p.granAt(i))
		}
		return eta
	}
	for i := range eta {
		eta[i] = roundUpTo(1, p.granAt(i))
	}
	lim := f.SimplexCap
	if lim <= 0 {
		lim = DefaultSimplexCap
	}
	if n > lim {
		return eta
	}
	if lp := relaxationLP(p, mu, c0, c1); lp != nil {
		if sol, err := SolveFloatLP(lp); err == nil && sol.Status == FloatOptimal {
			for i := range eta {
				v := int64(math.Ceil(sol.X[i] - 1e-9))
				if v < 1 {
					v = 1
				}
				v = roundUpTo(v, p.granAt(i))
				// The LP optimum is a lower bound on the ILP optimum, so a
				// rounded-up relaxation point is usually within one operator
				// application of the integer fixed point.
				if v > eta[i] {
					eta[i] = v
				}
			}
		}
	}
	return eta
}

// relaxationLP builds the float LP relaxation of Algorithm 1, mirroring
// core.ComputeBlockSizesILPBudget's constraint construction:
//
//	min Σ ηs  s.t.  ∀s: (1−μs·c0)·ηs − μs·c0·Σ_{i≠s} ηi ≥ μs·c1 + 2n·μs·c0,  ηs ≥ 1
func relaxationLP(p *Problem, mu []float64, c0, c1 float64) *FloatLP {
	n := len(mu)
	if n == 0 {
		return nil
	}
	lp := &FloatLP{Minimize: true, Obj: make([]float64, n)}
	for i := range lp.Obj {
		lp.Obj[i] = 1
	}
	for i := 0; i < n; i++ {
		coef := make([]float64, n)
		for j := range coef {
			coef[j] = -mu[i] * c0
		}
		coef[i] = 1 - mu[i]*c0
		lp.Cons = append(lp.Cons, FloatCon{Coef: coef, Rel: ilp.GE, RHS: mu[i]*c1 + 2*float64(n)*mu[i]*c0})
	}
	for i := 0; i < n; i++ {
		coef := make([]float64, n)
		coef[i] = 1
		lp.Cons = append(lp.Cons, FloatCon{Coef: coef, Rel: ilp.GE, RHS: 1})
	}
	return lp
}

// verifyAndTighten runs the exact acceptance gate. A candidate that
// verifies feasible but slack is tightened by exact operator descent:
// blocks ≥ F(blocks) implies F(blocks) ≥ F(F(blocks)) by monotonicity, so
// repeated application stays feasible, never increases, and terminates on
// a true fixed point. The returned result is always Verified.
func (f *Fast) verifyAndTighten(p *Problem, eta []int64, floatRounds, budget int) (*Result, bool) {
	v := Verify(p.Model, p.Granularity, eta)
	if !v.Feasible {
		return nil, false
	}
	rounds := floatRounds
	for !v.Tight {
		if rounds-floatRounds >= budget {
			return nil, false
		}
		eta = applyOperator(p.Model, p.Granularity, eta)
		rounds++
		v = Verify(p.Model, p.Granularity, eta)
		if !v.Feasible {
			// Descent from a feasible point cannot leave the feasible set;
			// reaching here means arithmetic is wrong — refuse the plan.
			return nil, false
		}
	}
	res := &Result{Blocks: eta, Rounds: rounds, Path: PathFloat, Verified: true}
	for _, b := range eta {
		res.Total += b
	}
	return res, true
}
