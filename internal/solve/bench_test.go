package solve

// Solve-latency benchmarks for the BENCH_*.json trajectory (ROADMAP "solver
// scale-out"). Each size is measured twice: the float fast path (simplex
// seed + float Kleene + exact verification — the production default above
// the tiering threshold) and the exact big.Rat fixed point (the reference
// the fast path's speedup is quoted against; at these sizes the legacy ILP
// is not in the running, so Exact routes to the warm fixed point). The fast
// path's ns/op INCLUDES the exact verification pass — verify-don't-trust is
// part of the cost being measured, not an overhead excluded from it.
//
// The acceptance floor (fast ≥ 5× exact at 1000 streams) is recorded by
// cmd/benchrecord and compared across PRs with benchrecord -diff.

import (
	"testing"
)

// benchProblem keeps the aggregate load at 1/8 · 4 = 50% utilisation so
// every size is comfortably feasible and the measured work is solving, not
// feasibility rejection.
func benchProblem(n int) *Problem {
	return &Problem{Model: testSystem(n, 1, 8)}
}

func benchSolver(b *testing.B, s Solver, n int) {
	b.Helper()
	p := benchProblem(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Solve(p)
		if err != nil {
			b.Fatalf("%s n=%d: %v", s.Name(), n, err)
		}
		if !res.Verified {
			b.Fatalf("%s n=%d: result not verified", s.Name(), n)
		}
	}
}

func fastBench() Solver {
	// Production wiring above the tier threshold, minus the fallback (a
	// fallback firing would silently benchmark the exact path; erroring is
	// the honest failure mode here).
	return &Fast{}
}

func exactBench() Solver {
	// ILPStreamCap 0 with granularity-free problems would try the ILP; cap
	// at 1 so the reference is the exact warm fixed point, which is the
	// production exact path at these sizes.
	return &Exact{ILPStreamCap: 1}
}

func BenchmarkSolve100Streams(b *testing.B)  { benchSolver(b, fastBench(), 100) }
func BenchmarkSolve1000Streams(b *testing.B) { benchSolver(b, fastBench(), 1000) }
func BenchmarkSolve4000Streams(b *testing.B) { benchSolver(b, fastBench(), 4000) }

func BenchmarkSolveExact100Streams(b *testing.B)  { benchSolver(b, exactBench(), 100) }
func BenchmarkSolveExact1000Streams(b *testing.B) { benchSolver(b, exactBench(), 1000) }
func BenchmarkSolveExact4000Streams(b *testing.B) { benchSolver(b, exactBench(), 4000) }

// BenchmarkSolveWarmReadmit measures the incremental path: a solved
// 1000-stream system re-admitted with one new stream, seeded from the
// previous assignment. This is the admission controller's steady-state
// solve, and the case the warm-start layer exists for.
func BenchmarkSolveWarmReadmit(b *testing.B) {
	base := benchProblem(1000)
	s := &Incremental{Inner: fastBench()}
	res, err := s.Solve(base)
	if err != nil {
		b.Fatal(err)
	}
	prev := make([]Assignment, len(base.Model.Streams))
	for i, st := range base.Model.Streams {
		prev[i] = Assignment{Name: st.Name, Block: res.Blocks[i]}
	}
	grown := benchProblem(1001)
	grown.Prev = prev
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.Solve(grown)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Verified {
			b.Fatal("warm readmit result not verified")
		}
	}
}
