package solve

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"accelshare/internal/core"
	"accelshare/internal/ilp"
)

// FuzzSolveDifferential cross-checks the float fast path against the exact
// path on randomly generated problems:
//
//   - statuses must agree — the fast path's feasibility gate is the same
//     exact utilisation comparison, so it must call infeasible exactly when
//     the exact path does;
//   - every plan the fast path returns must pass exact big.Rat
//     verification (feasible AND tight), and its total can never undercut
//     the exact optimum.
//
// Exact-side budget exhaustion (branch or round budget) is skipped, not
// failed: the property under test is agreement on decided instances.
func FuzzSolveDifferential(f *testing.F) {
	f.Add(uint8(1), uint8(3), uint64(1))
	f.Add(uint8(4), uint8(10), uint64(42))
	f.Add(uint8(12), uint8(40), uint64(7))
	f.Add(uint8(31), uint8(200), uint64(123456789))
	f.Add(uint8(8), uint8(255), uint64(0)) // heavy load: often infeasible
	f.Fuzz(func(t *testing.T, nRaw, loadRaw uint8, seed uint64) {
		n := 1 + int(nRaw)%32
		// load/128 ≈ target utilisation; loadRaw > 128 drives infeasible
		// instances so both sides of the status agreement get exercised.
		load := int64(loadRaw)
		if load == 0 {
			load = 1
		}
		rng := rand.New(rand.NewSource(int64(seed)))

		sys := &core.System{
			Chain: core.Chain{
				Name:       "fuzz",
				AccelCosts: []uint64{uint64(1 + rng.Intn(8))},
				EntryCost:  uint64(1 + rng.Intn(4)),
				ExitCost:   uint64(1 + rng.Intn(4)),
				NICapacity: 2,
			},
			ClockHz: 1_000_000,
		}
		c0 := sys.Chain.C0()
		var gran []int64
		withGran := rng.Intn(2) == 0
		for i := 0; i < n; i++ {
			// Per-stream utilisation share ≈ load/(128·n), jittered ±50%,
			// so μ·c0 sums to ≈ load/128 across the set. Exact rational
			// construction: rate = ClockHz·load·jitter / (128·n·c0·100).
			jitter := int64(50 + rng.Intn(101))
			rate := big.NewRat(sys.ClockHz*load*jitter, 128*int64(n)*int64(c0)*100)
			sys.Streams = append(sys.Streams, core.Stream{
				Name:     fmt.Sprintf("f%02d", i),
				Rate:     rate,
				Reconfig: uint64(1 + rng.Intn(200)),
			})
			if withGran {
				gran = append(gran, int64(1)<<rng.Intn(4))
			}
		}

		exact := &Exact{ILPStreamCap: 12} // keep the reference affordable
		fast := &Fast{}                   // no fallback: disagreements surface as errors

		eRes, eErr := exact.Solve(&Problem{Model: sys, Granularity: gran})
		if errors.Is(eErr, core.ErrSolverBudget) || errors.Is(eErr, ilp.ErrBranchBudget) {
			t.Skip("exact budget exhausted")
		}
		fRes, fErr := fast.Solve(&Problem{Model: sys, Granularity: gran})

		if ei, fi := errors.Is(eErr, core.ErrInfeasible), errors.Is(fErr, core.ErrInfeasible); ei != fi {
			t.Fatalf("status disagreement: exact err=%v fast err=%v", eErr, fErr)
		}
		if eErr != nil {
			return // both rejected; nothing further to compare
		}
		if fErr != nil {
			t.Fatalf("exact solved (Σ=%d) but fast failed: %v", eRes.Total, fErr)
		}
		if !fRes.Verified {
			t.Fatalf("fast result not marked verified")
		}
		v := Verify(sys, gran, fRes.Blocks)
		if !v.Feasible || !v.Tight {
			t.Fatalf("fast plan rejected by exact verification (%+v): %v", v, fRes.Blocks)
		}
		if fRes.Total < eRes.Total {
			t.Fatalf("fast total %d undercuts exact optimum %d — exact side is not minimal?",
				fRes.Total, eRes.Total)
		}
	})
}
