// Package solve puts Algorithm 1 — minimum block sizes under the Eq. 6
// throughput constraints — behind a Solver interface so the control planes
// (internal/admission per chain, internal/cluster fleet-wide) can pick a
// decision procedure by scale without changing their guarantees:
//
//   - Exact is the existing big.Rat path (budgeted ILP branch-and-bound with
//     the warm-started Kleene fixed point as fallback), moved behind the
//     interface with unchanged semantics. Every number it touches is an
//     exact rational; it is the reference all other solvers answer to.
//   - Fast is the float64 path: a revised simplex over the LP relaxation
//     seeds a rounding heuristic for the integer block-size variables, and a
//     float Kleene iteration polishes the rounded point to a fixed point.
//     Its candidate plan is ALWAYS re-verified exactly with big.Rat
//     arithmetic (Verify) before acceptance — verify-don't-trust: the
//     real-time guarantee never rests on floating point. On verification
//     failure it falls back to the exact path.
//   - Incremental is the warm-start layer promoted out of admission: it
//     derives a sound warm start from the previously committed assignment
//     (reuse after additions, cold restart after removals) and delegates.
//   - Tiered routes small instances to Exact (true ILP optimality, byte-
//     stable campaign verdicts) and large ones to Fast — the shape that
//     survives thousands of streams.
//
// SolveShards solves independent per-chain problems concurrently with a
// deterministic merge, and Fits/PlanPlacement are the cheap feasibility
// combination step for cluster-wide placement: exact utilisation headroom
// decides which chain can possibly take a stream before any full solve runs.
//
// Solvers do not mutate the Problem's model; callers commit Result.Blocks
// themselves. All implementations are safe for concurrent use.
package solve

import (
	"errors"
	"fmt"
	"math/big"

	"accelshare/internal/core"
)

// Assignment names one stream's committed block size (the warm-start
// currency between the control planes and the Incremental layer).
type Assignment struct {
	Name  string
	Block int64
}

// Problem is one Algorithm 1 instance.
type Problem struct {
	// Model holds the candidate stream set with rates, reconfiguration
	// costs and chain parameters. Block fields are ignored as inputs and
	// never written by a Solver.
	Model *core.System
	// Granularity constrains ηs to multiples of Granularity[s] (nil = all
	// ones; entries < 1 are treated as 1).
	Granularity []int64
	// Prev is the previously committed assignment, keyed by stream name.
	// The Incremental layer turns it into a sound warm start when the new
	// stream set only adds streams; other solvers ignore it.
	Prev []Assignment
	// Start, when non-nil, positionally seeds the fixed-point iteration.
	// It MUST be componentwise ≤ the least fixed point (see
	// core.ComputeBlockSizesWarm); most callers leave it nil and set Prev.
	Start []int64
}

// Path identifies which decision procedure produced a Result.
type Path string

// Solver paths.
const (
	// PathILP: the exact branch-and-bound over the rational LP relaxation.
	PathILP Path = "ilp"
	// PathWarm: the exact warm-started Kleene fixed point.
	PathWarm Path = "warm"
	// PathFloat: the float64 fast path, exactly re-verified.
	PathFloat Path = "float"
)

// Result is a feasible minimum block-size assignment.
type Result struct {
	// Blocks[i] is ηs for Model.Streams[i].
	Blocks []int64
	// Total is Σ ηs, Algorithm 1's objective.
	Total int64
	// Rounds counts fixed-point iterations (0 for the ILP path).
	Rounds int
	// Path names the procedure that produced the assignment.
	Path Path
	// Verified is true when the assignment passed exact big.Rat
	// verification. The exact paths are verified by construction; the fast
	// path sets it only after Verify accepted the plan.
	Verified bool
}

// Solver is one Algorithm 1 decision procedure. Implementations must be
// safe for concurrent use and must not mutate the Problem.
type Solver interface {
	Name() string
	Solve(p *Problem) (*Result, error)
}

// ErrUnverified is returned by Fast (with no fallback configured) when the
// float candidate fails exact verification.
var ErrUnverified = errors.New("solve: fast-path plan failed exact verification")

// validate checks the problem shape shared by every solver.
func (p *Problem) validate() error {
	if p.Model == nil {
		return fmt.Errorf("solve: nil model")
	}
	n := len(p.Model.Streams)
	if p.Granularity != nil && len(p.Granularity) != n {
		return fmt.Errorf("solve: %d granularities for %d streams", len(p.Granularity), n)
	}
	if p.Start != nil && len(p.Start) != n {
		return fmt.Errorf("solve: %d warm-start entries for %d streams", len(p.Start), n)
	}
	return nil
}

// granAt returns the effective granularity of stream i.
func (p *Problem) granAt(i int) int64 {
	if p.Granularity == nil || p.Granularity[i] < 1 {
		return 1
	}
	return p.Granularity[i]
}

// plain reports whether every granularity is 1 (the ILP handles only the
// unconstrained integer problem).
func (p *Problem) plain() bool {
	for i := range p.Model.Streams {
		if p.granAt(i) > 1 {
			return false
		}
	}
	return true
}

// roundUpTo rounds v up to the next multiple of g (g ≤ 1 is identity).
func roundUpTo(v, g int64) int64 {
	if g <= 1 {
		return v
	}
	if rem := v % g; rem != 0 {
		v += g - rem
	}
	return v
}

// ratCeilInt64 returns ⌈r⌉ for a non-negative rational.
func ratCeilInt64(r *big.Rat) int64 {
	q := new(big.Int).Div(r.Num(), r.Denom())
	if !r.IsInt() {
		q.Add(q, big.NewInt(1))
	}
	return q.Int64()
}

// applyOperator applies the granularity-rounded Algorithm 1 operator
//
//	F(η)_s = roundUp(max(1, ⌈μs·(c1 + c0·Σ_i(ηi+2))⌉), g_s)
//
// once, with exact big.Rat arithmetic. An assignment is feasible iff
// η ≥ F(η) componentwise; the least fixed point is the optimum.
func applyOperator(m *core.System, granularity, blocks []int64) []int64 {
	c0 := new(big.Rat).SetInt64(int64(m.Chain.C0()))
	c1 := new(big.Rat).SetInt64(int64(m.C1()))
	sum := new(big.Rat)
	for _, b := range blocks {
		sum.Add(sum, new(big.Rat).SetInt64(b+2))
	}
	base := new(big.Rat).Add(c1, new(big.Rat).Mul(c0, sum))
	out := make([]int64, len(blocks))
	for i := range m.Streams {
		rhs := new(big.Rat).Mul(base, m.RatePerCycle(i))
		v := ratCeilInt64(rhs)
		if v < 1 {
			v = 1
		}
		g := int64(1)
		if granularity != nil && i < len(granularity) {
			g = granularity[i]
		}
		out[i] = roundUpTo(v, g)
	}
	return out
}

// Verification is the outcome of one exact big.Rat check of a candidate
// assignment against the Algorithm 1 operator.
type Verification struct {
	// Feasible: every stream satisfies Eq. 6 (η ≥ F(η) componentwise) and
	// every block is a positive granularity multiple. Only a feasible plan
	// may ever be applied to the platform.
	Feasible bool
	// Tight: η = F(η) exactly — the plan is a genuine fixed point, carrying
	// no slack that a smaller feasible plan could reclaim.
	Tight bool
	// Detail names the first violated stream for infeasible plans.
	Detail string
}

// Verify checks a candidate assignment with exact big.Rat arithmetic. This
// is the verify-don't-trust step: no float value from the fast path reaches
// a guarantee without passing through it.
func Verify(m *core.System, granularity, blocks []int64) Verification {
	if len(blocks) != len(m.Streams) {
		return Verification{Detail: fmt.Sprintf("%d blocks for %d streams", len(blocks), len(m.Streams))}
	}
	for i, b := range blocks {
		g := int64(1)
		if granularity != nil && i < len(granularity) {
			g = granularity[i]
		}
		if b < 1 || (g > 1 && b%g != 0) {
			return Verification{Detail: fmt.Sprintf("stream %q block %d is not a positive multiple of %d",
				m.Streams[i].Name, b, g)}
		}
	}
	f := applyOperator(m, granularity, blocks)
	tight := true
	for i := range blocks {
		if blocks[i] < f[i] {
			return Verification{Detail: fmt.Sprintf("stream %q block %d < required %d",
				m.Streams[i].Name, blocks[i], f[i])}
		}
		if blocks[i] != f[i] {
			tight = false
		}
	}
	return Verification{Feasible: true, Tight: tight}
}

// Default is the production solver stack: the Incremental warm-start layer
// over a Tiered router — Exact for instances up to DefaultExactMax streams
// (true ILP optimality, byte-stable campaign verdicts), Fast with an Exact
// fallback beyond. ilpNodes and warmRounds carry the caller's budgets
// (0 = the respective defaults).
func Default(ilpNodes, warmRounds int) Solver {
	exact := &Exact{ILPNodes: ilpNodes, WarmRounds: warmRounds, ILPStreamCap: DefaultExactMax}
	fast := &Fast{Rounds: warmRounds, Fallback: exact}
	return &Incremental{Inner: &Tiered{ExactMax: DefaultExactMax, Exact: exact, Fast: fast}}
}

// DefaultExactMax is the stream count up to which the Default stack stays
// on the exact path. Beyond it the dense rational tableau is the wrong
// tool: one LP relaxation solve is Θ(n³) big.Rat pivots, while the float
// fast path plus one O(n) exact verification pass keeps the guarantee at a
// fraction of the cost.
const DefaultExactMax = 24

// Tiered routes a problem by instance size: Exact below or at ExactMax
// streams, Fast above.
type Tiered struct {
	ExactMax int // 0 = DefaultExactMax
	Exact    Solver
	Fast     Solver
}

// Name identifies the router.
func (t *Tiered) Name() string { return "tiered" }

// Solve routes to the exact or fast solver by stream count.
func (t *Tiered) Solve(p *Problem) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	max := t.ExactMax
	if max <= 0 {
		max = DefaultExactMax
	}
	if len(p.Model.Streams) <= max {
		return t.Exact.Solve(p)
	}
	return t.Fast.Solve(p)
}
