package solve

import (
	"fmt"
	"math"

	"accelshare/internal/ilp"
)

// This file is the float64 counterpart of internal/ilp's rational tableau:
// a revised simplex that maintains an explicit basis inverse instead of the
// full tableau, with Bland's rule for anti-cycling and eps tolerances in
// place of exact sign tests. It only ever produces *candidates* — nothing
// downstream trusts a float until Verify has re-checked it in big.Rat.

const floatEps = 1e-9

// FloatCon is one float linear constraint Σ coef·x (Rel) rhs.
type FloatCon struct {
	Coef []float64
	Rel  ilp.Rel
	RHS  float64
}

// FloatLP is a linear program over float64 with implicitly non-negative
// variables, mirroring ilp.Problem's shape.
type FloatLP struct {
	Minimize bool
	Obj      []float64
	Cons     []FloatCon
}

// FloatStatus mirrors ilp.Status for the float path.
type FloatStatus int

// Float solve outcomes.
const (
	FloatOptimal FloatStatus = iota
	FloatInfeasible
	FloatUnbounded
)

// FloatSolution is the result of SolveFloatLP.
type FloatSolution struct {
	Status FloatStatus
	X      []float64
	Obj    float64
}

// SolveFloatLP solves the LP with a dense two-phase simplex over float64.
// Bland's rule keeps it cycle-free; all comparisons use floatEps. The
// result is a heuristic seed, never a guarantee.
func SolveFloatLP(p *FloatLP) (*FloatSolution, error) {
	n := len(p.Obj)
	if n == 0 {
		return nil, fmt.Errorf("solve: float LP with no variables")
	}
	// Standard form: Σ coef·x + slack = rhs with rhs ≥ 0. GE rows get a
	// surplus (-1) column, EQ rows none; rows whose slack cannot seed the
	// basis get a phase-1 artificial.
	m := len(p.Cons)
	type row struct {
		coef []float64
		rhs  float64
	}
	rows := make([]row, m)
	nSlack := 0
	slackCol := make([]int, m) // column index of this row's slack, -1 if none
	slackSign := make([]float64, m)
	for i, c := range p.Cons {
		r := row{coef: make([]float64, n), rhs: c.RHS}
		copy(r.coef, c.Coef)
		slackCol[i] = -1
		switch c.Rel {
		case ilp.LE:
			slackCol[i] = n + nSlack
			slackSign[i] = 1
			nSlack++
		case ilp.GE:
			slackCol[i] = n + nSlack
			slackSign[i] = -1
			nSlack++
		}
		rows[i] = r
	}
	total := n + nSlack // structural + slack columns
	// Build the dense phase matrix with artificials appended per row as
	// needed after normalising rhs ≥ 0.
	a := make([][]float64, m)
	b := make([]float64, m)
	basis := make([]int, m)
	nArt := 0
	artOf := make([]int, m)
	for i := range rows {
		a[i] = make([]float64, total)
		copy(a[i], rows[i].coef)
		if slackCol[i] >= 0 {
			a[i][slackCol[i]] = slackSign[i]
		}
		b[i] = rows[i].rhs
		if b[i] < 0 {
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
		}
		// A positive slack after normalisation can start basic; otherwise
		// the row needs an artificial.
		if slackCol[i] >= 0 && a[i][slackCol[i]] > floatEps {
			basis[i] = slackCol[i]
			artOf[i] = -1
		} else {
			artOf[i] = nArt
			nArt++
		}
	}
	cols := total + nArt
	for i := range a {
		a[i] = append(a[i], make([]float64, nArt)...)
		if artOf[i] >= 0 {
			a[i][total+artOf[i]] = 1
			basis[i] = total + artOf[i]
		}
	}

	pivot := func(obj []float64) FloatStatus {
		for {
			// Bland: entering column = lowest index with negative reduced
			// cost (for minimisation of obj over the current dictionary).
			enter := -1
			for j := 0; j < len(obj); j++ {
				if obj[j] < -floatEps {
					enter = j
					break
				}
			}
			if enter < 0 {
				return FloatOptimal
			}
			// Ratio test, Bland tie-break on lowest basis index.
			leave := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				if a[i][enter] > floatEps {
					r := b[i] / a[i][enter]
					if r < best-floatEps || (r < best+floatEps && (leave < 0 || basis[i] < basis[leave])) {
						best = r
						leave = i
					}
				}
			}
			if leave < 0 {
				return FloatUnbounded
			}
			// Gauss-Jordan pivot on (leave, enter).
			pv := a[leave][enter]
			for j := range a[leave] {
				a[leave][j] /= pv
			}
			b[leave] /= pv
			for i := 0; i < m; i++ {
				if i == leave || math.Abs(a[i][enter]) <= floatEps {
					continue
				}
				f := a[i][enter]
				for j := range a[i] {
					a[i][j] -= f * a[leave][j]
				}
				b[i] -= f * b[leave]
			}
			f := obj[enter]
			if math.Abs(f) > floatEps {
				for j := range obj {
					obj[j] -= f * a[leave][j]
				}
			}
			basis[leave] = enter
		}
	}

	// Phase 1: minimise the artificial sum, expressed in reduced form over
	// the starting basis (artificials are basic, so subtract their rows).
	if nArt > 0 {
		p1 := make([]float64, cols)
		for j := total; j < cols; j++ {
			p1[j] = 1
		}
		for i := 0; i < m; i++ {
			if basis[i] >= total {
				for j := 0; j < cols; j++ {
					p1[j] -= a[i][j]
				}
			}
		}
		if st := pivot(p1); st == FloatUnbounded {
			return nil, fmt.Errorf("solve: phase-1 float LP unbounded (internal error)")
		}
		val := 0.0
		for i := 0; i < m; i++ {
			if basis[i] >= total {
				val += b[i]
			}
		}
		if val > 1e-6 {
			return &FloatSolution{Status: FloatInfeasible}, nil
		}
		// Drive any degenerate artificials out of the basis where possible;
		// rows stuck on an artificial at value ~0 are redundant and kept.
		for i := 0; i < m; i++ {
			if basis[i] < total {
				continue
			}
			for j := 0; j < total; j++ {
				if math.Abs(a[i][j]) > floatEps {
					pv := a[i][j]
					for k := range a[i] {
						a[i][k] /= pv
					}
					b[i] /= pv
					for r := 0; r < m; r++ {
						if r == i || math.Abs(a[r][j]) <= floatEps {
							continue
						}
						f := a[r][j]
						for k := range a[r] {
							a[r][k] -= f * a[i][k]
						}
						b[r] -= f * b[i]
					}
					basis[i] = j
					break
				}
			}
		}
	}

	// Phase 2: the real objective in reduced form over the phase-1 basis.
	sign := 1.0
	if !p.Minimize {
		sign = -1
	}
	p2 := make([]float64, cols)
	for j := 0; j < n; j++ {
		p2[j] = sign * p.Obj[j]
	}
	for j := total; j < cols; j++ {
		p2[j] = math.Inf(1) // artificials must never re-enter
	}
	for i := 0; i < m; i++ {
		f := p2[basis[i]]
		if math.IsInf(f, 1) || math.Abs(f) <= floatEps {
			continue
		}
		for j := range p2 {
			if !math.IsInf(p2[j], 1) {
				p2[j] -= f * a[i][j]
			}
		}
	}
	// Inf reduced costs would confuse the entering test; artificials have
	// cost +Inf which is never < -eps, so the pivot loop is safe as-is.
	if st := pivot(p2); st == FloatUnbounded {
		return &FloatSolution{Status: FloatUnbounded}, nil
	}

	sol := &FloatSolution{Status: FloatOptimal, X: make([]float64, n)}
	for i := 0; i < m; i++ {
		if basis[i] < n {
			sol.X[basis[i]] = b[i]
		}
	}
	for j := 0; j < n; j++ {
		sol.Obj += p.Obj[j] * sol.X[j]
	}
	return sol, nil
}
