package solve

import (
	"errors"
	"fmt"
	"math/big"
	"reflect"
	"testing"

	"accelshare/internal/core"
)

// testSystem builds an n-stream chain whose exact utilisation stays below
// 1: with c0 = 4 cycles/sample and rates around (load/n) samples/cycle the
// utilisation is ≈ load·4 < 1 for load < 1/4.
func testSystem(n int, loadNum, loadDen int64) *core.System {
	sys := &core.System{
		Chain: core.Chain{
			Name:       "solve-test",
			AccelCosts: []uint64{4},
			EntryCost:  1,
			ExitCost:   2,
			NICapacity: 2,
		},
		ClockHz: 1_000_000,
	}
	for i := 0; i < n; i++ {
		// Vary rates slightly so blocks differ across streams; keep the sum
		// of μ·c0 at loadNum/loadDen · 4.
		num := loadNum * int64(1_000_000) * int64(3+i%5)
		den := loadDen * int64(n) * 4
		sys.Streams = append(sys.Streams, core.Stream{
			Name:     fmt.Sprintf("s%03d", i),
			Rate:     big.NewRat(num, den),
			Reconfig: uint64(50 + 10*(i%7)),
		})
	}
	return sys
}

func mustSolve(t *testing.T, s Solver, p *Problem) *Result {
	t.Helper()
	res, err := s.Solve(p)
	if err != nil {
		t.Fatalf("%s.Solve: %v", s.Name(), err)
	}
	return res
}

func TestExactMatchesLegacyILP(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		sys := testSystem(n, 1, 8)
		legacy, err := sys.ComputeBlockSizesILPBudget(0)
		if err != nil {
			t.Fatalf("legacy ILP n=%d: %v", n, err)
		}
		res := mustSolve(t, &Exact{}, &Problem{Model: sys})
		if res.Path != PathILP {
			t.Fatalf("n=%d: path %q, want ilp", n, res.Path)
		}
		if !reflect.DeepEqual(res.Blocks, legacy.Blocks) || res.Total != legacy.Total {
			t.Fatalf("n=%d: exact %v (Σ=%d) != legacy %v (Σ=%d)",
				n, res.Blocks, res.Total, legacy.Blocks, legacy.Total)
		}
		if !res.Verified {
			t.Fatalf("n=%d: exact result not marked verified", n)
		}
	}
}

func TestExactStreamCapRoutesToFixedPoint(t *testing.T) {
	sys := testSystem(6, 1, 8)
	res := mustSolve(t, &Exact{ILPStreamCap: 4}, &Problem{Model: sys})
	if res.Path != PathWarm {
		t.Fatalf("path %q, want warm above the ILP stream cap", res.Path)
	}
	want, err := sys.ComputeBlockSizesFixedPoint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Blocks, want.Blocks) {
		t.Fatalf("capped exact %v != fixed point %v", res.Blocks, want.Blocks)
	}
}

func TestExactGranularityUsesWarmPath(t *testing.T) {
	sys := testSystem(4, 1, 8)
	gran := []int64{4, 1, 8, 2}
	res := mustSolve(t, &Exact{}, &Problem{Model: sys, Granularity: gran})
	if res.Path != PathWarm {
		t.Fatalf("path %q, want warm for granularity-constrained solve", res.Path)
	}
	for i, b := range res.Blocks {
		if b%gran[i] != 0 {
			t.Fatalf("block[%d]=%d not a multiple of %d", i, b, gran[i])
		}
	}
	if v := Verify(sys, gran, res.Blocks); !v.Feasible || !v.Tight {
		t.Fatalf("exact granular result fails Verify: %+v", v)
	}
}

func TestFastMatchesExact(t *testing.T) {
	for _, n := range []int{1, 2, 5, 12, 40, 120} {
		sys := testSystem(n, 1, 6)
		exact := mustSolve(t, &Exact{ILPStreamCap: 16}, &Problem{Model: sys})
		fast := mustSolve(t, &Fast{}, &Problem{Model: sys})
		if fast.Path != PathFloat {
			t.Fatalf("n=%d: path %q, want float", n, fast.Path)
		}
		if !fast.Verified {
			t.Fatalf("n=%d: fast result not verified", n)
		}
		if v := Verify(sys, nil, fast.Blocks); !v.Feasible || !v.Tight {
			t.Fatalf("n=%d: fast plan fails exact verification: %+v", n, v)
		}
		if !reflect.DeepEqual(fast.Blocks, exact.Blocks) {
			t.Fatalf("n=%d: fast %v != exact %v", n, fast.Blocks, exact.Blocks)
		}
	}
}

func TestFastGranularity(t *testing.T) {
	sys := testSystem(9, 1, 6)
	gran := []int64{1, 2, 4, 8, 1, 3, 5, 1, 2}
	fast := mustSolve(t, &Fast{}, &Problem{Model: sys, Granularity: gran})
	want, err := sys.ComputeBlockSizesWarm(nil, gran, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast.Blocks, want.Blocks) {
		t.Fatalf("fast granular %v != exact %v", fast.Blocks, want.Blocks)
	}
	if v := Verify(sys, gran, fast.Blocks); !v.Feasible || !v.Tight {
		t.Fatalf("fast granular plan fails verification: %+v", v)
	}
}

func TestFastInfeasibleMatchesExact(t *testing.T) {
	sys := testSystem(4, 2, 1) // utilisation 8 ≥ 1
	if _, err := (&Exact{}).Solve(&Problem{Model: sys}); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("exact err = %v, want ErrInfeasible", err)
	}
	if _, err := (&Fast{}).Solve(&Problem{Model: sys}); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("fast err = %v, want ErrInfeasible", err)
	}
}

func TestFastBudgetExhaustionFallsBack(t *testing.T) {
	sys := testSystem(10, 1, 6)
	// One round is never enough to reach the fixed point from ones, so the
	// float iteration reports non-convergence.
	if _, err := (&Fast{Rounds: 1}).Solve(&Problem{Model: sys}); !errors.Is(err, ErrUnverified) {
		t.Fatalf("err = %v, want ErrUnverified with no fallback", err)
	}
	res := mustSolve(t, &Fast{Rounds: 1, Fallback: &Exact{}}, &Problem{Model: sys})
	if res.Path != PathILP && res.Path != PathWarm {
		t.Fatalf("fallback path %q, want an exact path", res.Path)
	}
}

func TestIncrementalWarmStart(t *testing.T) {
	sys := testSystem(8, 1, 6)
	inner := &Exact{ILPStreamCap: 1} // force the warm fixed-point path
	w := &Incremental{Inner: inner}

	cold := mustSolve(t, w, &Problem{Model: sys})
	prev := make([]Assignment, len(sys.Streams))
	for i := range sys.Streams {
		prev[i] = Assignment{Name: sys.Streams[i].Name, Block: cold.Blocks[i]}
	}

	// Addition: same streams plus a newcomer; warm start must agree with a
	// cold solve of the grown model and converge in fewer rounds.
	grown := sys.Clone()
	grown.Streams = append(grown.Streams, core.Stream{
		Name: "newcomer", Rate: big.NewRat(1_000_000, 8*6*4), Reconfig: 60,
	})
	warm := mustSolve(t, w, &Problem{Model: grown, Prev: prev})
	coldGrown := mustSolve(t, w, &Problem{Model: grown})
	if !reflect.DeepEqual(warm.Blocks, coldGrown.Blocks) {
		t.Fatalf("warm %v != cold %v on the grown model", warm.Blocks, coldGrown.Blocks)
	}
	if warm.Rounds > coldGrown.Rounds {
		t.Fatalf("warm start took %d rounds, cold took %d", warm.Rounds, coldGrown.Rounds)
	}

	// Removal: a Prev name missing from the model must trigger a cold
	// restart — the result must be the shrunken model's true least fixed
	// point, not a stale reuse of the larger one.
	shrunk := sys.Clone()
	shrunk.Streams = shrunk.Streams[:len(shrunk.Streams)-1]
	after := mustSolve(t, w, &Problem{Model: shrunk, Prev: prev})
	coldShrunk := mustSolve(t, w, &Problem{Model: shrunk})
	if !reflect.DeepEqual(after.Blocks, coldShrunk.Blocks) {
		t.Fatalf("post-removal %v != cold %v", after.Blocks, coldShrunk.Blocks)
	}
}

func TestTieredRouting(t *testing.T) {
	s := Default(0, 0)
	small := testSystem(4, 1, 8)
	res := mustSolve(t, s, &Problem{Model: small})
	if res.Path != PathILP {
		t.Fatalf("small instance path %q, want ilp", res.Path)
	}
	large := testSystem(DefaultExactMax+8, 1, 6)
	res = mustSolve(t, s, &Problem{Model: large})
	if res.Path != PathFloat {
		t.Fatalf("large instance path %q, want float", res.Path)
	}
	if v := Verify(large, nil, res.Blocks); !v.Feasible {
		t.Fatalf("large instance plan infeasible: %+v", v)
	}
}

func TestVerifyRejects(t *testing.T) {
	sys := testSystem(3, 1, 8)
	good := mustSolve(t, &Exact{}, &Problem{Model: sys})
	if v := Verify(sys, nil, good.Blocks); !v.Feasible || !v.Tight {
		t.Fatalf("optimal plan fails Verify: %+v", v)
	}

	cases := []struct {
		name   string
		blocks []int64
	}{
		{"short", good.Blocks[:2]},
		{"zero", []int64{0, good.Blocks[1], good.Blocks[2]}},
		{"violating", []int64{1, 1, 1}},
	}
	for _, c := range cases {
		if v := Verify(sys, nil, c.blocks); v.Feasible {
			t.Fatalf("%s: Verify accepted %v", c.name, c.blocks)
		} else if v.Detail == "" {
			t.Fatalf("%s: no detail on rejection", c.name)
		}
	}

	// Feasible but slack: padding every block keeps Eq. 6 but loses
	// tightness.
	slack := make([]int64, len(good.Blocks))
	for i, b := range good.Blocks {
		slack[i] = b + 100
	}
	if v := Verify(sys, nil, slack); !v.Feasible || v.Tight {
		t.Fatalf("padded plan: %+v, want feasible non-tight", v)
	}

	// Granularity violation.
	if v := Verify(sys, []int64{7, 1, 1}, good.Blocks); v.Feasible && good.Blocks[0]%7 != 0 {
		t.Fatalf("Verify accepted non-multiple block under granularity")
	}
}

func TestSolveShardsDeterministicMerge(t *testing.T) {
	var shards []Shard
	for i := 0; i < 12; i++ {
		shards = append(shards, Shard{
			Key:     fmt.Sprintf("chain%02d", i),
			Problem: &Problem{Model: testSystem(3+i%4, 1, 8)},
		})
	}
	serial := SolveShards(&Exact{}, shards, 1)
	concurrent := SolveShards(&Exact{}, shards, 8)
	if len(serial) != len(shards) || len(concurrent) != len(shards) {
		t.Fatalf("result length mismatch")
	}
	for i := range shards {
		if serial[i].Key != shards[i].Key || concurrent[i].Key != shards[i].Key {
			t.Fatalf("shard %d: key moved: %q / %q", i, serial[i].Key, concurrent[i].Key)
		}
		if serial[i].Err != nil || concurrent[i].Err != nil {
			t.Fatalf("shard %d: %v / %v", i, serial[i].Err, concurrent[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Result.Blocks, concurrent[i].Result.Blocks) {
			t.Fatalf("shard %d: serial %v != concurrent %v",
				i, serial[i].Result.Blocks, concurrent[i].Result.Blocks)
		}
	}
}

func TestFitsAndHeadroom(t *testing.T) {
	sys := testSystem(4, 1, 8) // utilisation 1/2
	h := Headroom(sys)
	if h.Sign() <= 0 {
		t.Fatalf("headroom %v, want positive", h)
	}
	tiny := big.NewRat(1, 1) // 1 sample/s: negligible utilisation
	if !Fits(sys, tiny) {
		t.Fatal("tiny stream rejected despite headroom")
	}
	// A stream consuming the whole clock would push utilisation past 1.
	huge := new(big.Rat).SetInt64(sys.ClockHz)
	if Fits(sys, huge) {
		t.Fatal("full-clock stream accepted")
	}
}

func TestPlanPlacement(t *testing.T) {
	chainA := testSystem(2, 1, 8)
	chainA.Chain.Name = "A"
	chainB := testSystem(6, 1, 4) // more loaded: less headroom
	chainB.Chain.Name = "B"

	streams := []core.Stream{
		{Name: "p0", Rate: big.NewRat(1_000_000, 400), Reconfig: 40},
		{Name: "p1", Rate: big.NewRat(1_000_000, 500), Reconfig: 40},
		{Name: "p2", Rate: big.NewRat(2_000_000, 1), Reconfig: 40}, // fits nowhere
	}
	plan := PlanPlacement(Default(0, 0), []*core.System{chainA, chainB}, streams, 2)
	if plan.ChainOf[2] != -1 {
		t.Fatalf("oversized stream placed on chain %d", plan.ChainOf[2])
	}
	if plan.ChainOf[0] != 0 {
		t.Fatalf("p0 placed on chain %d, want best-fit chain 0 (most headroom)", plan.ChainOf[0])
	}
	for c, r := range plan.Results {
		if r.Result == nil && r.Err == nil {
			continue // untouched chain
		}
		if r.Err != nil {
			t.Fatalf("chain %d: %v", c, r.Err)
		}
		if v := Verify(plan.Models[c], nil, r.Result.Blocks); !v.Feasible {
			t.Fatalf("chain %d: placement plan infeasible: %+v", c, v)
		}
	}
	// Source models must be untouched (placement clones).
	if len(chainA.Streams) != 2 || len(chainB.Streams) != 6 {
		t.Fatal("PlanPlacement mutated its input models")
	}
}

func TestSolverDoesNotMutateModel(t *testing.T) {
	sys := testSystem(5, 1, 8)
	before := sys.Clone()
	for _, s := range []Solver{&Exact{}, &Fast{}, Default(0, 0)} {
		if _, err := s.Solve(&Problem{Model: sys}); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !reflect.DeepEqual(sys, before) {
			t.Fatalf("%s mutated the model", s.Name())
		}
	}
}
