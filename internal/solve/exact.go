package solve

import (
	"errors"

	"accelshare/internal/ilp"
)

// Exact is the existing big.Rat decision procedure moved behind the Solver
// interface, semantics unchanged: the budgeted exact ILP
// (core.ComputeBlockSizesILPBudget) first when every granularity is 1, the
// warm-started exact Kleene fixed point (core.ComputeBlockSizesWarm) when
// the branch budget runs out or granularity constraints rule the ILP out.
// Every intermediate value is an exact rational, so its results are
// verified by construction.
type Exact struct {
	// ILPNodes bounds the branch-and-bound tree (0 = the ilp default).
	ILPNodes int
	// WarmRounds bounds the fixed-point iteration (0 = the core default).
	WarmRounds int
	// ILPStreamCap, when > 0, skips the ILP entirely above that many
	// streams and goes straight to the fixed point: the dense rational
	// tableau is Θ(n³) big.Rat pivots per LP solve, which stops being a
	// sensible first attempt long before the branch budget would notice.
	// 0 preserves the legacy always-try-ILP behavior.
	ILPStreamCap int
}

// Name identifies the exact solver.
func (e *Exact) Name() string { return "exact" }

// Solve runs the exact decision procedure. The returned Path records which
// exact sub-procedure decided the instance (PathILP or PathWarm) so the
// admission verdict renders identically to the pre-interface code.
func (e *Exact) Solve(p *Problem) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.plain() && (e.ILPStreamCap <= 0 || len(p.Model.Streams) <= e.ILPStreamCap) {
		res, err := p.Model.ComputeBlockSizesILPBudget(e.ILPNodes)
		if err == nil {
			return &Result{Blocks: res.Blocks, Total: res.Total, Rounds: res.Rounds,
				Path: PathILP, Verified: true}, nil
		}
		if !errors.Is(err, ilp.ErrBranchBudget) {
			return nil, err
		}
	}
	res, err := p.Model.ComputeBlockSizesWarm(p.Start, p.Granularity, e.WarmRounds)
	if err != nil {
		return nil, err
	}
	return &Result{Blocks: res.Blocks, Total: res.Total, Rounds: res.Rounds,
		Path: PathWarm, Verified: true}, nil
}
