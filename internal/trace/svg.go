package trace

import (
	"fmt"
	"strings"
)

// SVG renders the Gantt as a self-contained SVG document: one lane per
// actor, one rectangle per firing span, with a time axis. Zero-duration
// firings render as thin ticks. Useful for embedding the paper's Fig. 6
// style schedules in documents.
func (ga *Gantt) SVG(width int) string {
	const (
		laneH   = 26
		barH    = 18
		labelW  = 110
		axisH   = 24
		padding = 6
	)
	if width < 200 {
		width = 200
	}
	total := ga.End - ga.Start
	if total == 0 {
		total = 1
	}
	plotW := float64(width - labelW - padding)
	x := func(t uint64) float64 {
		return float64(labelW) + plotW*float64(t-ga.Start)/float64(total)
	}
	height := len(ga.Rows)*laneH + axisH + 2*padding

	palette := []string{"#4878a8", "#a85448", "#6aa84f", "#a87f48", "#7a52a8", "#48a89d"}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	for i, row := range ga.Rows {
		y := padding + i*laneH
		fill := palette[i%len(palette)]
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#333">%s</text>`+"\n", padding, y+barH-4, escape(row.Name))
		for _, s := range row.Spans {
			x0 := x(s.Start)
			x1 := x(s.End)
			w := x1 - x0
			if w < 1 {
				w = 1
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" opacity="0.85"><title>%s [%d,%d) phase %d</title></rect>`+"\n",
				x0, y, w, barH, fill, escape(row.Name), s.Start, s.End, s.Phase)
		}
	}
	// Time axis with start/end labels.
	axisY := padding + len(ga.Rows)*laneH + 12
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#888"/>`+"\n", labelW, axisY, width-padding, axisY)
	fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#555">t=%d</text>`+"\n", labelW, axisY+12, ga.Start)
	endLabel := fmt.Sprintf("t=%d", ga.End)
	fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#555" text-anchor="end">%s</text>`+"\n", width-padding, axisY+12, endLabel)
	b.WriteString("</svg>\n")
	return b.String()
}

// xmlEscaper makes row labels and firing names safe in every XML context
// the renderer uses them in — element content, <title> content and (should
// a span template ever move them there) attribute values, hence the quote
// entities too. A stream named `S<1>` or `A"B` must not break the document.
var xmlEscaper = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
	"'", "&apos;",
)

func escape(s string) string { return xmlEscaper.Replace(s) }

// CSV renders the Gantt as "actor,phase,start,end" rows for external
// tooling (spreadsheets, waveform viewers).
func (ga *Gantt) CSV() string {
	var b strings.Builder
	b.WriteString("actor,phase,start,end\n")
	for _, row := range ga.Rows {
		for _, s := range row.Spans {
			fmt.Fprintf(&b, "%s,%d,%d,%d\n", row.Name, s.Phase, s.Start, s.End)
		}
	}
	return b.String()
}
