// Package trace renders execution traces of dataflow simulations as textual
// Gantt charts in the style of the paper's Fig. 6 (the execution schedule of
// the gateways and accelerators processing one block).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"accelshare/internal/dataflow"
)

// Span is a half-open busy interval [Start, End) of one actor.
type Span struct {
	Start, End uint64
	Phase      int
}

// Row is the activity of a single actor.
type Row struct {
	Name  string
	Spans []Span
}

// Gantt is a renderable schedule.
type Gantt struct {
	Rows  []Row
	Start uint64
	End   uint64
}

// FromFirings builds a Gantt from a recorded trace, one row per actor that
// fired, in actor-id order.
func FromFirings(g *dataflow.Graph, firings []dataflow.Firing) *Gantt {
	byActor := map[dataflow.ActorID][]Span{}
	var minT, maxT uint64
	first := true
	for _, f := range firings {
		byActor[f.Actor] = append(byActor[f.Actor], Span{Start: f.Start, End: f.End, Phase: f.Phase})
		if first || f.Start < minT {
			minT = f.Start
		}
		if first || f.End > maxT {
			maxT = f.End
		}
		first = false
	}
	ids := make([]int, 0, len(byActor))
	for id := range byActor {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	ga := &Gantt{Start: minT, End: maxT}
	for _, id := range ids {
		spans := byActor[dataflow.ActorID(id)]
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		ga.Rows = append(ga.Rows, Row{Name: g.Actors[id].Name, Spans: spans})
	}
	return ga
}

// Render draws the Gantt with the given plot width in characters. Busy time
// is '#', zero-duration firings are '|', idle time is '.'. When several
// spans fall into one column the column is busy if any span overlaps it.
func (ga *Gantt) Render(width int) string {
	if width < 10 {
		width = 10
	}
	total := ga.End - ga.Start
	if total == 0 {
		total = 1
	}
	nameW := 4
	for _, r := range ga.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s  t=%d%s t=%d  (%d cycles, %.1f cycles/col)\n",
		nameW, "", ga.Start, strings.Repeat(" ", max(1, width-len(fmt.Sprint(ga.Start))-len(fmt.Sprint(ga.End))-4)),
		ga.End, total, float64(total)/float64(width))
	for _, r := range ga.Rows {
		cols := make([]byte, width)
		for i := range cols {
			cols[i] = '.'
		}
		for _, s := range r.Spans {
			c0 := int(uint64(width) * (s.Start - ga.Start) / total)
			c1 := int(uint64(width) * (s.End - ga.Start) / total)
			if c0 >= width {
				c0 = width - 1
			}
			if c1 >= width {
				c1 = width - 1
			}
			if s.End == s.Start {
				if cols[c0] == '.' {
					cols[c0] = '|'
				}
				continue
			}
			for c := c0; c <= c1 && c < width; c++ {
				cols[c] = '#'
			}
		}
		fmt.Fprintf(&b, "%*s  %s\n", nameW, r.Name, cols)
	}
	return b.String()
}

// Summary prints per-actor figures: firings, busy cycles, utilisation over
// the trace window, first start and last end — the quantities annotated on
// the paper's Fig. 6.
func (ga *Gantt) Summary() string {
	total := ga.End - ga.Start
	if total == 0 {
		total = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %11s %7s %10s %10s\n", "actor", "firings", "busy(cyc)", "util", "first", "last")
	for _, r := range ga.Rows {
		var busy uint64
		for _, s := range r.Spans {
			busy += s.End - s.Start
		}
		first := r.Spans[0].Start
		last := r.Spans[len(r.Spans)-1].End
		fmt.Fprintf(&b, "%-8s %9d %11d %6.1f%% %10d %10d\n",
			r.Name, len(r.Spans), busy, 100*float64(busy)/float64(total), first, last)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
