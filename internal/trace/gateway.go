package trace

import (
	"sort"

	"accelshare/internal/gateway"
)

// FromActivities builds a Gantt from a gateway pair's recorded activity
// spans: one row per stream (named by the caller, in slot order) plus a
// synthetic "failover" row for controller-level spans (Stream = -1). The
// span Phase carries the gateway.ActivityKind, so a renderer can
// distinguish reconfig/stream/drain/flush/failover phases.
func FromActivities(names []string, acts []gateway.Activity) *Gantt {
	rows := map[int][]Span{}
	var minT, maxT uint64
	first := true
	for _, a := range acts {
		rows[a.Stream] = append(rows[a.Stream], Span{
			Start: uint64(a.Start), End: uint64(a.End), Phase: int(a.Kind),
		})
		if first || uint64(a.Start) < minT {
			minT = uint64(a.Start)
		}
		if first || uint64(a.End) > maxT {
			maxT = uint64(a.End)
		}
		first = false
	}
	ids := make([]int, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ga := &Gantt{Start: minT, End: maxT}
	for _, id := range ids {
		name := "failover"
		if id >= 0 {
			if id < len(names) {
				name = names[id]
			} else {
				name = "s?"
			}
		}
		spans := rows[id]
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		ga.Rows = append(ga.Rows, Row{Name: name, Spans: spans})
	}
	return ga
}
