package trace

import (
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"accelshare/internal/dataflow"
)

// checkWellFormedXML tokenises the whole document with the strict decoder.
func checkWellFormedXML(doc string) error {
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		if _, err := dec.Token(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

func sampleTrace(t *testing.T) (*dataflow.Graph, []dataflow.Firing) {
	t.Helper()
	g := dataflow.NewGraph("t")
	a := g.AddActor("alpha", 3)
	b := g.AddActor("b", 2)
	g.AddBuffer("ab", a, b, dataflow.Const(1), dataflow.Const(1), 2)
	res, err := g.Simulate(dataflow.SimOptions{
		RecordTrace:      true,
		StopAfterFirings: map[dataflow.ActorID]int64{b: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, res.Trace
}

func TestFromFirings(t *testing.T) {
	g, tr := sampleTrace(t)
	ga := FromFirings(g, tr)
	if len(ga.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(ga.Rows))
	}
	if ga.Rows[0].Name != "alpha" {
		t.Errorf("row order: %q first", ga.Rows[0].Name)
	}
	if ga.Start != 0 {
		t.Errorf("start = %d", ga.Start)
	}
	if ga.End == 0 {
		t.Error("end not set")
	}
	// Spans sorted by start.
	spans := ga.Rows[0].Spans
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("spans not sorted")
		}
	}
}

func TestRenderContainsRowsAndMarks(t *testing.T) {
	g, tr := sampleTrace(t)
	out := FromFirings(g, tr).Render(60)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "#") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Errorf("lines = %d, want 3:\n%s", len(lines), out)
	}
}

func TestRenderZeroDurationMark(t *testing.T) {
	g := dataflow.NewGraph("z")
	a := g.AddActor("z", 0)
	b := g.AddActor("s", 5)
	g.AddBuffer("e", a, b, dataflow.Const(1), dataflow.Const(1), 1)
	res, err := g.Simulate(dataflow.SimOptions{
		RecordTrace:      true,
		StopAfterFirings: map[dataflow.ActorID]int64{b: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := FromFirings(g, res.Trace).Render(40)
	if !strings.Contains(out, "|") {
		t.Errorf("zero-duration firing not marked:\n%s", out)
	}
}

func TestRenderTinyWidthClamped(t *testing.T) {
	g, tr := sampleTrace(t)
	out := FromFirings(g, tr).Render(1)
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestSummary(t *testing.T) {
	g, tr := sampleTrace(t)
	sum := FromFirings(g, tr).Summary()
	if !strings.Contains(sum, "alpha") || !strings.Contains(sum, "util") {
		t.Errorf("summary missing fields:\n%s", sum)
	}
	if !strings.Contains(sum, "%") {
		t.Errorf("no utilisation percentage:\n%s", sum)
	}
}

func TestSVGExport(t *testing.T) {
	g, tr := sampleTrace(t)
	svg := FromFirings(g, tr).SVG(600)
	for _, want := range []string{"<svg", "</svg>", "alpha", "<rect", "t=0"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Width clamp.
	if s := FromFirings(g, tr).SVG(10); !strings.Contains(s, `width="200"`) {
		t.Error("small width not clamped")
	}
}

func TestSVGEscapesNames(t *testing.T) {
	g := dataflow.NewGraph("esc")
	a := g.AddActor("a<b>&c", 1)
	g.AddSDFEdge("self", a, a, 1, 1, 1)
	res, err := g.Simulate(dataflow.SimOptions{RecordTrace: true, MaxTime: 5})
	if err != nil {
		t.Fatal(err)
	}
	svg := FromFirings(g, res.Trace).SVG(400)
	if strings.Contains(svg, "a<b>") {
		t.Error("unescaped markup in SVG")
	}
	if !strings.Contains(svg, "a&lt;b&gt;&amp;c") {
		t.Error("escaped name missing")
	}
}

// TestSVGEscapesStreamStyleNames is the regression for gateway-style row
// labels: a stream named `S<1>` (angle brackets from an index template) or
// one carrying quotes must still yield a well-formed XML document.
func TestSVGEscapesStreamStyleNames(t *testing.T) {
	ga := &Gantt{
		Start: 0, End: 10,
		Rows: []Row{
			{Name: `S<1>`, Spans: []Span{{Start: 0, End: 4, Phase: 0}}},
			{Name: `q"u'ote`, Spans: []Span{{Start: 4, End: 8, Phase: 1}}},
		},
	}
	svg := ga.SVG(400)
	for _, raw := range []string{`S<1>`, `q"u`, `u'ote`} {
		if strings.Contains(svg, raw) {
			t.Errorf("raw %q leaked into SVG", raw)
		}
	}
	for _, want := range []string{"S&lt;1&gt;", "q&quot;u&apos;ote"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing escaped form %q", want)
		}
	}
	if err := checkWellFormedXML(svg); err != nil {
		t.Errorf("SVG not well-formed: %v", err)
	}
}

func TestCSVExport(t *testing.T) {
	g, tr := sampleTrace(t)
	csv := FromFirings(g, tr).CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "actor,phase,start,end" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 5 {
		t.Fatalf("rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "alpha,0,0,") {
		t.Errorf("first row = %q", lines[1])
	}
}
