package core

import (
	"errors"
	"fmt"
	"math/big"

	"accelshare/internal/ilp"
)

// BlockSizeResult is the outcome of ComputeBlockSizes.
type BlockSizeResult struct {
	// Blocks[i] is the minimum ηs for stream i.
	Blocks []int64
	// Total is Σ ηs, Algorithm 1's objective.
	Total int64
	// Rounds documents the fixed-point iteration count (informational).
	Rounds int
}

// blockConstraintHolds checks Eq. 6 for stream i at the given assignment:
//
//	ηs − c0·μs·Σ_{i∈S}(ηi+2) ≥ μs·c1
//
// with μs in samples/cycle and c0, c1 in cycles.
func (s *System) blockConstraintHolds(blocks []int64, i int) bool {
	c0 := new(big.Rat).SetInt64(int64(s.Chain.C0()))
	c1 := new(big.Rat).SetInt64(int64(s.C1()))
	sum := new(big.Rat)
	for _, b := range blocks {
		sum.Add(sum, new(big.Rat).SetInt64(b+2))
	}
	mu := s.RatePerCycle(i)
	rhs := new(big.Rat).Add(c1, new(big.Rat).Mul(c0, sum))
	rhs.Mul(rhs, mu)
	return new(big.Rat).SetInt64(blocks[i]).Cmp(rhs) >= 0
}

// FeasibleBlocks reports whether the assignment satisfies Eq. 6 for every
// stream.
func (s *System) FeasibleBlocks(blocks []int64) bool {
	for i := range s.Streams {
		if !s.blockConstraintHolds(blocks, i) {
			return false
		}
	}
	return true
}

// ComputeBlockSizesILP implements Algorithm 1 directly: an exact ILP
//
//	minimise   Σ ηs
//	subject to ∀s: ηs − c0·μs·Σ_i(ηi+2) ≥ μs·c1,  ηs ≥ 1 integer
//
// where c0 = max(ε, ρA, δ) and c1 = Σ Ri (see C1 for why the sum).
func (s *System) ComputeBlockSizesILP() (*BlockSizeResult, error) {
	return s.ComputeBlockSizesILPBudget(0)
}

// ComputeBlockSizesILPBudget is ComputeBlockSizesILP under a branch-and-
// bound node budget (0 = the solver default). When the budget runs out the
// underlying ilp.ErrBranchBudget is returned; online admission control
// catches it and falls back to ComputeBlockSizesWarm, so a hard re-solve
// can never stall the control plane.
func (s *System) ComputeBlockSizesILPBudget(maxNodes int) (*BlockSizeResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Utilization().Cmp(big.NewRat(1, 1)) >= 0 {
		return nil, ErrInfeasible
	}
	n := len(s.Streams)
	one := big.NewRat(1, 1)
	p := ilp.NewMinimize()
	p.MaxNodes = maxNodes
	for i := range s.Streams {
		p.AddVar("eta."+s.Streams[i].Name, one, true)
	}
	c0 := new(big.Rat).SetInt64(int64(s.Chain.C0()))
	c1 := new(big.Rat).SetInt64(int64(s.C1()))
	for i := range s.Streams {
		mu := s.RatePerCycle(i)
		muc0 := new(big.Rat).Mul(mu, c0)
		coef := make([]*big.Rat, n)
		for j := range coef {
			coef[j] = new(big.Rat).Neg(muc0)
		}
		coef[i] = new(big.Rat).Sub(one, muc0)
		// RHS: μs·c1 + μs·c0·2n (moving the constant +2 terms right).
		rhs := new(big.Rat).Mul(mu, c1)
		rhs.Add(rhs, new(big.Rat).Mul(muc0, new(big.Rat).SetInt64(int64(2*n))))
		p.AddConstraint("thr."+s.Streams[i].Name, coef, ilp.GE, rhs)
	}
	for i := range s.Streams {
		coef := make([]*big.Rat, n)
		for j := range coef {
			coef[j] = new(big.Rat)
		}
		coef[i] = one
		p.AddConstraint("pos."+s.Streams[i].Name, coef, ilp.GE, one)
	}
	sol, err := p.SolveILP()
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case ilp.Infeasible:
		return nil, ErrInfeasible
	case ilp.Unbounded:
		return nil, fmt.Errorf("core: block-size ILP unbounded (internal error)")
	}
	res := &BlockSizeResult{Blocks: make([]int64, n)}
	for i := range res.Blocks {
		if !sol.X[i].IsInt() || !sol.X[i].Num().IsInt64() {
			return nil, fmt.Errorf("core: non-integral ILP solution %v", sol.X[i])
		}
		res.Blocks[i] = sol.X[i].Num().Int64()
		res.Total += res.Blocks[i]
	}
	return res, nil
}

// ComputeBlockSizesFixedPoint computes the same minimum block sizes as the
// ILP by Kleene iteration of the monotone operator
//
//	F(η)_s = max(1, ⌈μs·(c1 + c0·Σ_i(ηi+2))⌉)
//
// An assignment is feasible iff η ≥ F(η) componentwise, so by Knaster-
// Tarski the least fixed point is the componentwise-minimal feasible point —
// which simultaneously minimises Σηs. Divergence of the iteration means the
// constraints are infeasible.
func (s *System) ComputeBlockSizesFixedPoint() (*BlockSizeResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Utilization().Cmp(big.NewRat(1, 1)) >= 0 {
		return nil, ErrInfeasible
	}
	n := len(s.Streams)
	c0 := new(big.Rat).SetInt64(int64(s.Chain.C0()))
	c1 := new(big.Rat).SetInt64(int64(s.C1()))
	eta := make([]int64, n)
	for i := range eta {
		eta[i] = 1
	}
	const maxRounds = 10_000
	for round := 1; round <= maxRounds; round++ {
		sum := new(big.Rat)
		for _, b := range eta {
			sum.Add(sum, new(big.Rat).SetInt64(b+2))
		}
		changed := false
		next := make([]int64, n)
		for i := range s.Streams {
			rhs := new(big.Rat).Add(c1, new(big.Rat).Mul(c0, sum))
			rhs.Mul(rhs, s.RatePerCycle(i))
			v := ratCeil(rhs)
			if v < 1 {
				v = 1
			}
			next[i] = v
			if v != eta[i] {
				changed = true
			}
		}
		// Jacobi update: recompute all streams against the previous vector,
		// preserving the monotone-iteration argument.
		copy(eta, next)
		if !changed {
			res := &BlockSizeResult{Blocks: eta, Rounds: round}
			for _, b := range eta {
				res.Total += b
			}
			return res, nil
		}
	}
	return nil, fmt.Errorf("core: fixed point did not converge in %d rounds: %w", maxRounds, ErrInfeasible)
}

// ComputeBlockSizes computes minimum block sizes with the fixed-point
// solver, cross-checks them against the exact ILP, stores them into the
// streams and returns the result. The two solvers implement independent
// algorithms; a mismatch indicates a bug and is reported as an error.
func (s *System) ComputeBlockSizes() (*BlockSizeResult, error) {
	fp, err := s.ComputeBlockSizesFixedPoint()
	if err != nil {
		return nil, err
	}
	il, err := s.ComputeBlockSizesILP()
	if err != nil {
		return nil, err
	}
	for i := range fp.Blocks {
		if fp.Blocks[i] != il.Blocks[i] {
			return nil, fmt.Errorf("core: solver disagreement on %q: fixed point %d vs ILP %d",
				s.Streams[i].Name, fp.Blocks[i], il.Blocks[i])
		}
	}
	for i := range s.Streams {
		s.Streams[i].Block = fp.Blocks[i]
	}
	return fp, nil
}

// ComputeBlockSizesRounded computes minimum block sizes under the extra
// constraint that ηs is a multiple of granularity[s]. Implementations need
// this when the chain down-samples: a block must yield an integral number
// of output samples so the exit gateway can detect the end of the block
// (the paper's own sizes obey this: 10136 = 8·1267). The operator
// F'(η)_s = roundUp(F(η)_s, g_s) is still monotone, so Kleene iteration
// yields the least feasible multiple-constrained vector.
func (s *System) ComputeBlockSizesRounded(granularity []int64) (*BlockSizeResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(granularity) != len(s.Streams) {
		return nil, fmt.Errorf("core: %d granularities for %d streams", len(granularity), len(s.Streams))
	}
	if s.Utilization().Cmp(big.NewRat(1, 1)) >= 0 {
		return nil, ErrInfeasible
	}
	n := len(s.Streams)
	c0 := new(big.Rat).SetInt64(int64(s.Chain.C0()))
	c1 := new(big.Rat).SetInt64(int64(s.C1()))
	roundUp := func(v, g int64) int64 {
		if g <= 1 {
			return v
		}
		if rem := v % g; rem != 0 {
			v += g - rem
		}
		return v
	}
	eta := make([]int64, n)
	for i := range eta {
		eta[i] = roundUp(1, granularity[i])
	}
	const maxRounds = 1_000_000
	for round := 1; round <= maxRounds; round++ {
		sum := new(big.Rat)
		for _, b := range eta {
			sum.Add(sum, new(big.Rat).SetInt64(b+2))
		}
		changed := false
		next := make([]int64, n)
		for i := range s.Streams {
			rhs := new(big.Rat).Add(c1, new(big.Rat).Mul(c0, sum))
			rhs.Mul(rhs, s.RatePerCycle(i))
			v := ratCeil(rhs)
			if v < 1 {
				v = 1
			}
			v = roundUp(v, granularity[i])
			next[i] = v
			if v != eta[i] {
				changed = true
			}
		}
		copy(eta, next)
		if !changed {
			res := &BlockSizeResult{Blocks: eta, Rounds: round}
			for _, b := range eta {
				res.Total += b
			}
			for i := range s.Streams {
				s.Streams[i].Block = eta[i]
			}
			return res, nil
		}
	}
	return nil, fmt.Errorf("core: rounded fixed point did not converge: %w", ErrInfeasible)
}

// ErrSolverBudget is returned by ComputeBlockSizesWarm when the iteration
// budget runs out before the fixed point is reached. It is distinct from
// ErrInfeasible: the constraints may well be satisfiable, the solver was
// just not given enough rounds to prove it — admission control reports the
// two outcomes with different rejection reasons.
var ErrSolverBudget = errors.New("core: block-size solver budget exhausted")

// ComputeBlockSizesWarm is the incremental Algorithm 1: Kleene iteration of
// the (granularity-rounded) operator F warm-started from a known lower
// bound instead of from all-ones. Online admission control uses it to
// re-solve after a stream-set change in a handful of rounds: when streams
// are only ADDED to the set the operator grows pointwise, so the previous
// least fixed point is still ≤ the new one and is a sound warm start (after
// a removal the LFP shrinks, so pass nil and restart from ones).
//
//   - start, when non-nil, seeds the iteration (entries are clamped up to 1);
//     it MUST be ≤ the least fixed point componentwise or the iteration can
//     land on a non-minimal fixed point.
//   - granularity, when non-nil, constrains ηs to multiples of
//     granularity[s] (cf. ComputeBlockSizesRounded); nil means unconstrained.
//   - maxRounds bounds the iteration (0 = 10_000); exhausting it returns
//     ErrSolverBudget.
//
// Unlike ComputeBlockSizes*, the result is NOT stored into the streams —
// the caller decides whether (and when) to apply the new configuration.
func (s *System) ComputeBlockSizesWarm(start, granularity []int64, maxRounds int) (*BlockSizeResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := len(s.Streams)
	if start != nil && len(start) != n {
		return nil, fmt.Errorf("core: %d warm-start entries for %d streams", len(start), n)
	}
	if granularity != nil && len(granularity) != n {
		return nil, fmt.Errorf("core: %d granularities for %d streams", len(granularity), n)
	}
	if s.Utilization().Cmp(big.NewRat(1, 1)) >= 0 {
		return nil, ErrInfeasible
	}
	if maxRounds <= 0 {
		maxRounds = 10_000
	}
	roundUp := func(v int64, i int) int64 {
		if granularity == nil || granularity[i] <= 1 {
			return v
		}
		if rem := v % granularity[i]; rem != 0 {
			v += granularity[i] - rem
		}
		return v
	}
	c0 := new(big.Rat).SetInt64(int64(s.Chain.C0()))
	c1 := new(big.Rat).SetInt64(int64(s.C1()))
	eta := make([]int64, n)
	for i := range eta {
		v := int64(1)
		if start != nil && start[i] > v {
			v = start[i]
		}
		eta[i] = roundUp(v, i)
	}
	for round := 1; round <= maxRounds; round++ {
		sum := new(big.Rat)
		for _, b := range eta {
			sum.Add(sum, new(big.Rat).SetInt64(b+2))
		}
		changed := false
		next := make([]int64, n)
		for i := range s.Streams {
			rhs := new(big.Rat).Add(c1, new(big.Rat).Mul(c0, sum))
			rhs.Mul(rhs, s.RatePerCycle(i))
			v := ratCeil(rhs)
			if v < 1 {
				v = 1
			}
			v = roundUp(v, i)
			// A warm start above F(start) must not shrink: the iterate stays
			// an upper set of the seed, keeping convergence monotone.
			if v < eta[i] {
				v = eta[i]
			}
			next[i] = v
			if v != eta[i] {
				changed = true
			}
		}
		copy(eta, next)
		if !changed {
			res := &BlockSizeResult{Blocks: eta, Rounds: round}
			for _, b := range eta {
				res.Total += b
			}
			return res, nil
		}
	}
	return nil, fmt.Errorf("core: no fixed point within %d rounds: %w", maxRounds, ErrSolverBudget)
}

// ratCeil returns ⌈r⌉ as int64. big.Int.Div floors (for the always-positive
// denominator), so non-integral values are bumped by one.
func ratCeil(r *big.Rat) int64 {
	q := new(big.Int).Div(r.Num(), r.Denom())
	if !r.IsInt() {
		q.Add(q, big.NewInt(1))
	}
	return q.Int64()
}
