package core

import (
	"math/big"
	"testing"

	"accelshare/internal/dataflow"
)

func smallSystem(blocks ...int64) *System {
	s := &System{
		Chain:   Chain{Name: "acc", AccelCosts: []uint64{3}, EntryCost: 2, ExitCost: 1, NICapacity: 2},
		ClockHz: 100_000_000,
	}
	for i, b := range blocks {
		s.Streams = append(s.Streams, Stream{
			Name:     string(rune('a' + i)),
			Rate:     big.NewRat(1000, 1),
			Reconfig: 50,
			Block:    b,
		})
	}
	return s
}

func TestBuildCSDFStructure(t *testing.T) {
	s := smallSystem(4, 2)
	m, err := s.BuildCSDF(0, ModelParams{InputCapacity: 8, OutputCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Graph
	if g.Actors[m.VG0].Phases() != 4 {
		t.Errorf("vG0 phases = %d, want ηs = 4", g.Actors[m.VG0].Phases())
	}
	if g.Actors[m.VG1].Phases() != 4 {
		t.Errorf("vG1 phases = %d, want 4", g.Actors[m.VG1].Phases())
	}
	// First phase duration = Rs + ε = 52, others ε = 2.
	if d := g.Actors[m.VG0].Duration; d[0] != 52 || d[1] != 2 {
		t.Errorf("vG0 durations = %v", d)
	}
	if len(m.VAccel) != 1 {
		t.Fatalf("accelerators = %d", len(m.VAccel))
	}
	if g.Actors[m.VAccel[0]].Duration[0] != 3 {
		t.Errorf("accelerator duration = %v", g.Actors[m.VAccel[0]].Duration)
	}
	// The space-check edge must run from vC to vG0.
	id, ok := g.EdgeByName("out.space")
	if !ok {
		t.Fatal("out.space edge missing")
	}
	e := g.Edges[id]
	if e.Src != m.VC || e.Dst != m.VG0 {
		t.Errorf("space check edge runs %v->%v, want vC->vG0", e.Src, e.Dst)
	}
	if e.Initial != 8 {
		t.Errorf("space check initial = %d, want α3 = 8", e.Initial)
	}
}

func TestBuildCSDFWithInterference(t *testing.T) {
	s := smallSystem(4, 2)
	m, err := s.BuildCSDF(0, ModelParams{InputCapacity: 4, OutputCapacity: 4, IncludeInterference: true})
	if err != nil {
		t.Fatal(err)
	}
	eps, _ := s.EpsilonHat(0) // τ̂(1) = 50 + 4·3 = 62
	if eps != 62 {
		t.Fatalf("ε̂ = %d, want 62", eps)
	}
	if d := m.Graph.Actors[m.VG0].Duration[0]; d != 62+50+2 {
		t.Errorf("first phase = %d, want ε̂+Rs+ε = 114", d)
	}
}

func TestBuildCSDFRejectsSmallBuffers(t *testing.T) {
	s := smallSystem(4)
	if _, err := s.BuildCSDF(0, ModelParams{InputCapacity: 3, OutputCapacity: 8}); err == nil {
		t.Error("α0 < ηs accepted")
	}
	if _, err := s.BuildCSDF(0, ModelParams{InputCapacity: 8, OutputCapacity: 3}); err == nil {
		t.Error("α3 < ηs accepted")
	}
	s.Streams[0].Block = 0
	if _, err := s.BuildCSDF(0, ModelParams{InputCapacity: 8, OutputCapacity: 8}); err == nil {
		t.Error("unset block accepted")
	}
}

func TestBuildCSDFMultiAccelerator(t *testing.T) {
	s := smallSystem(3)
	s.Chain.AccelCosts = []uint64{1, 2, 1}
	m, err := s.BuildCSDF(0, ModelParams{InputCapacity: 3, OutputCapacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.VAccel) != 3 {
		t.Fatalf("accelerators = %d, want 3", len(m.VAccel))
	}
	// Chain must be consistent and runnable.
	res, err := m.Graph.Simulate(dataflow.SimOptions{
		StopAfterFirings: map[dataflow.ActorID]int64{m.VC: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("multi-accelerator CSDF deadlocked")
	}
}

func TestScheduleBlockRespectsTauHat(t *testing.T) {
	for _, eta := range []int64{1, 2, 5, 16, 100} {
		s := smallSystem(eta)
		sched, err := s.ScheduleBlock(0)
		if err != nil {
			t.Fatalf("η=%d: %v", eta, err)
		}
		if sched.Tau > sched.TauHat {
			t.Errorf("η=%d: measured τ = %d exceeds bound τ̂ = %d", eta, sched.Tau, sched.TauHat)
		}
		// The bound should be reasonably tight: within Rs + 3·c0 slack.
		slack := sched.TauHat - sched.Tau
		if slack > s.Streams[0].Reconfig+3*s.Chain.C0() {
			t.Errorf("η=%d: τ̂ = %d much looser than τ = %d (slack %d)", eta, sched.TauHat, sched.Tau, slack)
		}
		if len(sched.Trace) == 0 {
			t.Errorf("η=%d: empty schedule trace", eta)
		}
	}
}

func TestScheduleBlockPALScale(t *testing.T) {
	// The real PAL block size: 9831 samples through a 2-accelerator chain.
	s := palSystem()
	if _, err := s.ComputeBlockSizes(); err != nil {
		t.Fatal(err)
	}
	sched, err := s.ScheduleBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Tau > sched.TauHat {
		t.Errorf("τ = %d > τ̂ = %d", sched.Tau, sched.TauHat)
	}
	t.Logf("PAL stage-1 block: τ = %d cycles, τ̂ = %d cycles", sched.Tau, sched.TauHat)
}

func TestCheckRefinementCSDFRefinesSDF(t *testing.T) {
	for _, eta := range []int64{1, 2, 4, 8} {
		s := smallSystem(eta, 2*eta)
		p := ModelParams{
			ProducerCost:        1,
			ConsumerCost:        2,
			InputCapacity:       2 * eta,
			OutputCapacity:      2 * eta,
			IncludeInterference: true,
		}
		rep, err := s.CheckRefinement(0, p, 6*eta)
		if err != nil {
			t.Fatalf("η=%d: %v", eta, err)
		}
		if !rep.Refines {
			t.Errorf("η=%d: CSDF does not refine SDF; token %d at %d vs %d",
				eta, rep.FirstViolation,
				rep.RefinedTimes[rep.FirstViolation], rep.AbstractTimes[rep.FirstViolation])
		}
	}
}

func TestSDFAbstractionConservative(t *testing.T) {
	// The SDF model's guaranteed rate (Eq. 5) must not exceed what the CSDF
	// model actually achieves: simulate the CSDF in steady state and compare
	// consumer firing rates.
	s := smallSystem(8)
	p := ModelParams{ProducerCost: 1, ConsumerCost: 1, InputCapacity: 16, OutputCapacity: 16, IncludeInterference: true}
	m, err := s.BuildCSDF(0, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Graph.Simulate(dataflow.SimOptions{DetectPeriod: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Periodic {
		t.Fatal("CSDF not periodic")
	}
	csdfRate := res.Throughput(m.VC) // samples per cycle
	gamma, _ := s.GammaHat(0)
	sdfRate := big.NewRat(s.Streams[0].Block, int64(gamma))
	if csdfRate.Cmp(sdfRate) < 0 {
		t.Errorf("CSDF rate %v below SDF guarantee %v — abstraction not conservative", csdfRate, sdfRate)
	}
	t.Logf("CSDF steady rate %v vs SDF guarantee %v (pessimism ratio %v)",
		csdfRate, sdfRate, new(big.Rat).Quo(csdfRate, sdfRate))
}

func TestOutputArrivalsErrorsOnDeadlock(t *testing.T) {
	g := dataflow.NewGraph("dl")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	e := g.AddSDFEdge("ab", a, b, 1, 1, 0)
	g.AddSDFEdge("ba", b, a, 1, 1, 0)
	if _, err := OutputArrivals(g, e, b, 3); err == nil {
		t.Error("deadlocked graph should fail to produce arrivals")
	}
}

func TestCompareArrivals(t *testing.T) {
	rep := CompareArrivals([]uint64{1, 2, 3}, []uint64{1, 2, 3})
	if !rep.Refines {
		t.Error("equal sequences must refine")
	}
	rep = CompareArrivals([]uint64{1, 5, 3}, []uint64{1, 4, 9})
	if rep.Refines || rep.FirstViolation != 1 {
		t.Errorf("late token not detected: %+v", rep)
	}
}

func TestBuildSDFDurations(t *testing.T) {
	s := smallSystem(4, 2)
	tau, _ := s.TauHat(0)
	gamma, _ := s.GammaHat(0)
	iso, err := s.BuildSDF(0, ModelParams{InputCapacity: 4, OutputCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if iso.Graph.Actors[iso.VS].Duration[0] != tau {
		t.Errorf("isolated vS duration = %d, want τ̂ = %d", iso.Graph.Actors[iso.VS].Duration[0], tau)
	}
	sh, err := s.BuildSDF(0, ModelParams{InputCapacity: 4, OutputCapacity: 4, IncludeInterference: true})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Graph.Actors[sh.VS].Duration[0] != gamma {
		t.Errorf("shared vS duration = %d, want γ̂ = %d", sh.Graph.Actors[sh.VS].Duration[0], gamma)
	}
}
