package core

import (
	"math/big"
	"math/rand"
	"testing"
)

// palSystem reproduces the paper's §VI-A configuration: four streams (two
// per audio channel decoding path) share one CORDIC + one FIR-LPF chain
// through one gateway pair. ε = 15 cycles/sample, ρA = δ = 1 cycle/sample,
// Rs = 4100 cycles, clock 100 MHz. First-stage streams run at 64×44.1 kHz,
// second-stage at 8×44.1 kHz (the chain downsamples by 8 per stage).
func palSystem() *System {
	mk := func(name string, rate int64) Stream {
		return Stream{Name: name, Rate: big.NewRat(rate, 1), Reconfig: 4100}
	}
	return &System{
		Chain: Chain{
			Name:       "cordic+fir",
			AccelCosts: []uint64{1, 1},
			EntryCost:  15,
			ExitCost:   1,
			NICapacity: 2,
		},
		Streams: []Stream{
			mk("ch1.stage1", 44100*64),
			mk("ch2.stage1", 44100*64),
			mk("ch1.stage2", 44100*8),
			mk("ch2.stage2", 44100*8),
		},
		ClockHz: 100_000_000,
	}
}

func twoStreamSystem() *System {
	return &System{
		Chain: Chain{Name: "acc", AccelCosts: []uint64{4}, EntryCost: 2, ExitCost: 1, NICapacity: 2},
		Streams: []Stream{
			{Name: "s0", Rate: big.NewRat(1_000_000, 1), Reconfig: 100},
			{Name: "s1", Rate: big.NewRat(500_000, 1), Reconfig: 100},
		},
		ClockHz: 100_000_000,
	}
}

func TestChainC0(t *testing.T) {
	c := Chain{AccelCosts: []uint64{1, 7, 3}, EntryCost: 5, ExitCost: 2, NICapacity: 2}
	if c.C0() != 7 {
		t.Errorf("C0 = %d, want 7", c.C0())
	}
	c2 := Chain{AccelCosts: []uint64{1}, EntryCost: 15, ExitCost: 1, NICapacity: 2}
	if c2.C0() != 15 {
		t.Errorf("C0 = %d, want 15", c2.C0())
	}
}

func TestValidateErrors(t *testing.T) {
	s := palSystem()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	bad := s.Clone()
	bad.Chain.AccelCosts = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty chain accepted")
	}
	bad = s.Clone()
	bad.Streams = nil
	if err := bad.Validate(); err == nil {
		t.Error("no streams accepted")
	}
	bad = s.Clone()
	bad.ClockHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	bad = s.Clone()
	bad.Streams[0].Rate = big.NewRat(-1, 1)
	if err := bad.Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	bad = s.Clone()
	bad.Chain.NICapacity = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero NI capacity accepted")
	}
}

func TestTauHatEquation2(t *testing.T) {
	s := palSystem()
	s.Streams[0].Block = 100
	tau, err := s.TauHat(0)
	if err != nil {
		t.Fatal(err)
	}
	// τ̂ = 4100 + (100+2)·15 = 5630.
	if tau != 5630 {
		t.Errorf("TauHat = %d, want 5630", tau)
	}
	s.Streams[1].Block = 0
	if _, err := s.TauHat(1); err == nil {
		t.Error("TauHat with unset block should error")
	}
}

func TestTauHatCheckpointed(t *testing.T) {
	s := palSystem()
	s.Streams[0].Block = 100
	// K = 25 → n = ⌈100/25⌉ = 4 sub-blocks, each quiescing the pipeline:
	// τ̂(K) = 4100 + (100 + 2·4)·15 + (4−1)·60 = 4100 + 1620 + 180 = 5900.
	tau, err := s.TauHatCheckpointed(0, 25, 60)
	if err != nil {
		t.Fatal(err)
	}
	if tau != 5900 {
		t.Errorf("TauHatCheckpointed(25, 60) = %d, want 5900", tau)
	}
	// K ≤ 0 and K ≥ η degenerate to the plain Eq. 2 term.
	plain, _ := s.TauHat(0)
	for _, k := range []int64{0, -1, 100, 500} {
		tau, err := s.TauHatCheckpointed(0, k, 60)
		if err != nil {
			t.Fatal(err)
		}
		if tau != plain {
			t.Errorf("TauHatCheckpointed(k=%d) = %d, want plain tau-hat %d", k, tau, plain)
		}
	}
	// Non-dividing K: ⌈100/30⌉ = 4 sub-blocks again.
	tau, err = s.TauHatCheckpointed(0, 30, 60)
	if err != nil {
		t.Fatal(err)
	}
	if tau != 5900 {
		t.Errorf("TauHatCheckpointed(30, 60) = %d, want 5900", tau)
	}
	s.Streams[1].Block = 0
	if _, err := s.TauHatCheckpointed(1, 25, 60); err == nil {
		t.Error("TauHatCheckpointed with unset block should error")
	}
}

func TestResumeBound(t *testing.T) {
	s := palSystem()
	s.Streams[0].Block = 100
	// One resume reloads Rs and replays ≤ K samples plus the quiesce:
	// 4100 + (25+2)·15 = 4505.
	b, err := s.ResumeBound(0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if b != 4505 {
		t.Errorf("ResumeBound(25) = %d, want 4505", b)
	}
	// Without checkpointing the resume replays the whole block.
	b, err = s.ResumeBound(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(4100 + (100+2)*15); b != want {
		t.Errorf("ResumeBound(0) = %d, want %d (full-block replay)", b, want)
	}
	s.Streams[1].Block = 0
	if _, err := s.ResumeBound(1, 25); err == nil {
		t.Error("ResumeBound with unset block should error")
	}
}

func TestGammaIsSumOfTaus(t *testing.T) {
	s := palSystem()
	for i := range s.Streams {
		s.Streams[i].Block = int64(100 * (i + 1))
	}
	var sum uint64
	for i := range s.Streams {
		tau, err := s.TauHat(i)
		if err != nil {
			t.Fatal(err)
		}
		sum += tau
	}
	for i := range s.Streams {
		gamma, err := s.GammaHat(i)
		if err != nil {
			t.Fatal(err)
		}
		if gamma != sum {
			t.Errorf("GammaHat(%d) = %d, want Σ τ̂ = %d", i, gamma, sum)
		}
		eps, err := s.EpsilonHat(i)
		if err != nil {
			t.Fatal(err)
		}
		tau, _ := s.TauHat(i)
		if eps+tau != gamma {
			t.Errorf("ε̂+τ̂ = %d, γ = %d", eps+tau, gamma)
		}
	}
	rd, err := s.RoundDuration()
	if err != nil || rd != sum {
		t.Errorf("RoundDuration = %d (%v), want %d", rd, err, sum)
	}
}

func TestComputeBlockSizesPAL(t *testing.T) {
	s := palSystem()
	res, err := s.ComputeBlockSizes()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PAL block sizes: %v (paper: 10136, 10136, 1267, 1267)", res.Blocks)
	// The two stage-1 streams and the two stage-2 streams are symmetric.
	if res.Blocks[0] != res.Blocks[1] || res.Blocks[2] != res.Blocks[3] {
		t.Errorf("symmetric streams got asymmetric blocks: %v", res.Blocks)
	}
	// The 8:1 downsampling ratio must show up exactly in the block sizes
	// (the paper: 10136 = 8 × 1267).
	if res.Blocks[0] != 8*res.Blocks[2] && res.Blocks[0] != 8*res.Blocks[2]-8+1 {
		// Allow ±1 ceil effects on the exact multiple.
		ratio := float64(res.Blocks[0]) / float64(res.Blocks[2])
		if ratio < 7.95 || ratio > 8.05 {
			t.Errorf("stage ratio = %v, want ~8", ratio)
		}
	}
	// Magnitudes within 5% of the paper's numbers.
	if res.Blocks[0] < 9600 || res.Blocks[0] > 10700 {
		t.Errorf("stage-1 block = %d, paper reports 10136 (want within ~5%%)", res.Blocks[0])
	}
	if res.Blocks[2] < 1200 || res.Blocks[2] > 1340 {
		t.Errorf("stage-2 block = %d, paper reports 1267 (want within ~5%%)", res.Blocks[2])
	}
	// The computed sizes must satisfy Eq. 5/6 and the paper's own sizes must
	// also be feasible in our model.
	if !s.FeasibleBlocks(res.Blocks) {
		t.Error("computed blocks violate Eq. 6")
	}
	if !s.FeasibleBlocks([]int64{10136, 10136, 1267, 1267}) {
		t.Error("paper's published block sizes are infeasible in our model")
	}
	if err := s.VerifyThroughput(); err != nil {
		t.Errorf("VerifyThroughput: %v", err)
	}
}

func TestComputeBlockSizesRoundedPAL(t *testing.T) {
	// The chain down-samples by 8, so implementable blocks must be
	// multiples of 8 (the paper's 10136 = 8·1267 obeys this too).
	s := palSystem()
	res, err := s.ComputeBlockSizesRounded([]int64{8, 8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{9848, 9848, 1232, 1232}
	for i := range want {
		if res.Blocks[i] != want[i] {
			t.Fatalf("rounded blocks = %v, want %v", res.Blocks, want)
		}
		if res.Blocks[i]%8 != 0 {
			t.Errorf("block %d not a multiple of 8", i)
		}
	}
	if !s.FeasibleBlocks(res.Blocks) {
		t.Error("rounded blocks infeasible")
	}
	// Minimality at the granularity: stepping any stream down by 8 breaks
	// feasibility.
	for i := range res.Blocks {
		dec := append([]int64(nil), res.Blocks...)
		dec[i] -= 8
		if s.FeasibleBlocks(dec) {
			t.Errorf("blocks still feasible after -8 on stream %d: %v", i, dec)
		}
	}
	// Naive rounding of the unconstrained minimum must NOT be assumed
	// feasible — that is the whole reason this solver exists.
	if s.FeasibleBlocks([]int64{9832, 9832, 1232, 1232}) {
		t.Error("naively rounded blocks unexpectedly feasible; test premise broken")
	}
	// Granularity 1 degenerates to the plain solver.
	plain, err := s.ComputeBlockSizesRounded([]int64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.ComputeBlockSizesFixedPoint()
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Blocks {
		if plain.Blocks[i] != fp.Blocks[i] {
			t.Fatalf("granularity-1 %v != plain %v", plain.Blocks, fp.Blocks)
		}
	}
	// Length mismatch is rejected.
	if _, err := s.ComputeBlockSizesRounded([]int64{8}); err == nil {
		t.Error("wrong granularity length accepted")
	}
}

func TestBlockSizesAreMinimal(t *testing.T) {
	s := palSystem()
	res, err := s.ComputeBlockSizes()
	if err != nil {
		t.Fatal(err)
	}
	// Decreasing any single block by 1 must violate feasibility (the fixed
	// point is the componentwise-minimal feasible vector).
	for i := range res.Blocks {
		dec := append([]int64(nil), res.Blocks...)
		dec[i]--
		if s.FeasibleBlocks(dec) {
			t.Errorf("blocks still feasible after decrementing stream %d: %v", i, dec)
		}
	}
}

func TestBlockSizeILPMatchesFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(3)
		s := &System{
			Chain: Chain{
				Name:       "c",
				AccelCosts: []uint64{uint64(1 + rng.Intn(4))},
				EntryCost:  uint64(1 + rng.Intn(16)),
				ExitCost:   uint64(1 + rng.Intn(3)),
				NICapacity: 2,
			},
			ClockHz: 100_000_000,
		}
		for i := 0; i < n; i++ {
			s.Streams = append(s.Streams, Stream{
				Name:     string(rune('a' + i)),
				Rate:     big.NewRat(int64(10_000+rng.Intn(2_000_000)), 1),
				Reconfig: uint64(rng.Intn(5000)),
			})
		}
		if s.Utilization().Cmp(big.NewRat(9, 10)) > 0 {
			continue // too close to saturation; both solvers blow up sizes
		}
		fp, errFP := s.ComputeBlockSizesFixedPoint()
		il, errIL := s.ComputeBlockSizesILP()
		if (errFP == nil) != (errIL == nil) {
			t.Fatalf("trial %d: fixed point err=%v, ILP err=%v", trial, errFP, errIL)
		}
		if errFP != nil {
			continue
		}
		for i := range fp.Blocks {
			if fp.Blocks[i] != il.Blocks[i] {
				t.Fatalf("trial %d stream %d: fixed point %v vs ILP %v", trial, i, fp.Blocks, il.Blocks)
			}
		}
	}
}

func TestComputeBlockSizesInfeasible(t *testing.T) {
	// Demand exceeding the gateway: 2 streams × 4 MS/s × 15 cycles = 120%.
	s := &System{
		Chain:   Chain{Name: "c", AccelCosts: []uint64{1}, EntryCost: 15, ExitCost: 1, NICapacity: 2},
		ClockHz: 100_000_000,
		Streams: []Stream{
			{Name: "a", Rate: big.NewRat(4_000_000, 1), Reconfig: 100},
			{Name: "b", Rate: big.NewRat(4_000_000, 1), Reconfig: 100},
		},
	}
	if _, err := s.ComputeBlockSizesFixedPoint(); err == nil {
		t.Error("fixed point accepted infeasible system")
	}
	if _, err := s.ComputeBlockSizesILP(); err == nil {
		t.Error("ILP accepted infeasible system")
	}
}

func TestVerifyThroughputDetectsViolation(t *testing.T) {
	s := twoStreamSystem()
	if _, err := s.ComputeBlockSizes(); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyThroughput(); err != nil {
		t.Fatalf("computed blocks should verify: %v", err)
	}
	// Shrink a block below minimum: verification must fail.
	s.Streams[0].Block = 1
	if err := s.VerifyThroughput(); err == nil {
		t.Error("undersized block passed verification")
	}
}

func TestGuaranteedRateMatchesEq5(t *testing.T) {
	s := twoStreamSystem()
	s.Streams[0].Block = 500
	s.Streams[1].Block = 300
	gamma, err := s.GammaHat(0)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Rat).Mul(big.NewRat(500, int64(gamma)), big.NewRat(100_000_000, 1))
	got, err := s.GuaranteedRate(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Errorf("GuaranteedRate = %v, want %v", got, want)
	}
}

func TestUtilizationPAL(t *testing.T) {
	s := palSystem()
	u := s.Utilization()
	// 2×2.8224e6×15/1e8 + 2×352.8e3×15/1e8 = 0.84672 + 0.10584 = 0.95256.
	want := big.NewRat(95256, 100000)
	if u.Cmp(want) != 0 {
		t.Errorf("Utilization = %v, want %v", u, want)
	}
}

func TestC1IsSumOfReconfigs(t *testing.T) {
	s := palSystem()
	if s.C1() != 4*4100 {
		t.Errorf("C1 = %d, want 16400", s.C1())
	}
}

func TestInputBufferBoundPAL(t *testing.T) {
	s := palSystem()
	if _, err := s.ComputeBlockSizes(); err != nil {
		t.Fatal(err)
	}
	b0, err := s.InputBufferBound(0)
	if err != nil {
		t.Fatal(err)
	}
	// γ̂ arrivals at 2.8224 MS/s over ~348k cycles ≈ one more block: the
	// bound lands near 2η.
	if b0 < 2*s.Streams[0].Block || b0 > 2*s.Streams[0].Block+16 {
		t.Errorf("input bound = %d, expected ≈ 2η = %d", b0, 2*s.Streams[0].Block)
	}
	ob, err := s.OutputBufferBound(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ob != 2*s.Streams[0].Block/8 {
		t.Errorf("output bound = %d", ob)
	}
	if _, err := s.OutputBufferBound(0, 0); err != nil {
		t.Log("decimation 0 defaults to 1 (no error expected)")
	}
}

func TestScheduleBlockBoundProperty(t *testing.T) {
	// Random chains and block sizes: the measured block time never exceeds
	// the Eq. 2 bound.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		nAcc := 1 + rng.Intn(3)
		costs := make([]uint64, nAcc)
		for i := range costs {
			costs[i] = uint64(1 + rng.Intn(6))
		}
		s := &System{
			Chain: Chain{
				Name:       "r",
				AccelCosts: costs,
				EntryCost:  uint64(1 + rng.Intn(20)),
				ExitCost:   uint64(1 + rng.Intn(4)),
				NICapacity: 2,
			},
			ClockHz: 100_000_000,
			Streams: []Stream{{
				Name:     "s",
				Rate:     big.NewRat(1000, 1),
				Reconfig: uint64(rng.Intn(2000)),
				Block:    int64(1 + rng.Intn(64)),
			}},
		}
		sched, err := s.ScheduleBlock(0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sched.Tau > sched.TauHat {
			t.Fatalf("trial %d: τ = %d > τ̂ = %d (chain %v ε=%d δ=%d Rs=%d η=%d)",
				trial, sched.Tau, sched.TauHat, costs, s.Chain.EntryCost, s.Chain.ExitCost,
				s.Streams[0].Reconfig, s.Streams[0].Block)
		}
	}
}
