package core

import "testing"

// fig9Schedule is a scenario engineered to expose head-of-line blocking: a
// slow consumer on stream 1 and interleaved arrivals.
func fig9Schedule() []Fig9Arrival {
	return []Fig9Arrival{
		{Stream: 0, Time: 0},
		{Stream: 1, Time: 12},
		{Stream: 0, Time: 14},
		{Stream: 1, Time: 30},
		{Stream: 0, Time: 32},
		{Stream: 0, Time: 40},
	}
}

func fig9Config(p SharingPolicy) Fig9Config {
	return Fig9Config{
		Capacity: 4,
		Service:  [2]uint64{1, 50}, // stream 1's consumer is very slow
		Policy:   p,
	}
}

func TestSimulateSharedFIFOBasics(t *testing.T) {
	res, err := SimulateSharedFIFO(fig9Config(Interleaved), fig9Schedule())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Departures[0]) != 4 || len(res.Departures[1]) != 2 {
		t.Fatalf("departures = %d/%d", len(res.Departures[0]), len(res.Departures[1]))
	}
	for s := 0; s < 2; s++ {
		for k := 1; k < len(res.Departures[s]); k++ {
			if res.Departures[s][k] < res.Departures[s][k-1] {
				t.Fatal("departures not monotone in token index")
			}
		}
	}
}

func TestSharedFIFOHeadOfLineBlocking(t *testing.T) {
	// Under interleaving, stream 0 tokens queued behind a stream 1 token
	// wait for stream 1's slow consumer.
	res, err := SimulateSharedFIFO(fig9Config(Interleaved), fig9Schedule())
	if err != nil {
		t.Fatal(err)
	}
	// The stream-1 token arriving at 30 reaches the FIFO head while its
	// consumer is still busy (serving the t=12 token until 62); the stream-0
	// token arriving at 32 queues behind it and departs only after 62.
	if res.Departures[0][2] < 62 {
		t.Errorf("expected head-of-line delay, stream0 token2 departed at %d", res.Departures[0][2])
	}
	// Its unblocked predecessor left promptly.
	if res.Departures[0][1] != 15 {
		t.Errorf("stream0 token1 departed at %d, want 15", res.Departures[0][1])
	}
	// Under mutual exclusion stream 0 is never stuck behind stream 1 inside
	// the FIFO.
	resX, err := SimulateSharedFIFO(fig9Config(MutuallyExclusive), fig9Schedule())
	if err != nil {
		t.Fatal(err)
	}
	if len(resX.Departures[0]) != 4 {
		t.Fatalf("mutual exclusion lost tokens: %d", len(resX.Departures[0]))
	}
}

func TestInterleavedViolatesEarlierTheBetter(t *testing.T) {
	// The §V-G claim, executable: under interleaved sharing there exists an
	// input that, made EARLIER, makes some output LATER.
	v, err := FindEarlierTheBetterViolation(fig9Config(Interleaved), fig9Schedule(), []uint64{4, 8, 12, 17, 18})
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("expected a monotonicity violation under interleaved sharing")
	}
	t.Logf("violation: arrival %d moved %d earlier => stream %d token %d departs %d -> %d",
		v.MovedArrival, v.EarlierBy, v.Stream, v.Token, v.Before, v.After)
}

func TestMutualExclusionRestoresIsolation(t *testing.T) {
	// The §V-G resolution: with mutual exclusivity, CONDITIONAL ON the
	// admission instants (the SDF production times — producer blocking is
	// ordinary back-pressure that SDF models), each stream's departures are
	// exactly those of a private FIFO: the other stream has zero influence,
	// so the-earlier-the-better applies again.
	cfg := fig9Config(MutuallyExclusive)
	res, err := SimulateSharedFIFO(cfg, fig9Schedule())
	if err != nil {
		t.Fatal(err)
	}
	if !IsolationHolds(cfg, res) {
		t.Fatalf("mutual exclusion should isolate streams: %+v", res)
	}
	// The interleaved policy fails the same property — head-of-line
	// blocking makes departures depend on the other stream even given
	// identical admissions.
	icfg := fig9Config(Interleaved)
	ires, err := SimulateSharedFIFO(icfg, fig9Schedule())
	if err != nil {
		t.Fatal(err)
	}
	if IsolationHolds(icfg, ires) {
		t.Fatal("interleaved sharing unexpectedly isolated — scenario too weak")
	}
}

func TestPrivateFIFODepartures(t *testing.T) {
	deps := PrivateFIFODepartures([]uint64{0, 1, 50}, 10)
	want := []uint64{10, 20, 60}
	for i := range want {
		if deps[i] != want[i] {
			t.Fatalf("deps = %v, want %v", deps, want)
		}
	}
	if len(PrivateFIFODepartures(nil, 5)) != 0 {
		t.Error("empty admissions should give empty departures")
	}
}

func TestSharedFIFOValidation(t *testing.T) {
	if _, err := SimulateSharedFIFO(Fig9Config{Capacity: 0}, nil); err == nil {
		t.Error("zero capacity accepted")
	}
	bad := []Fig9Arrival{{Stream: 0, Time: 10}, {Stream: 0, Time: 5}}
	if _, err := SimulateSharedFIFO(fig9Config(Interleaved), bad); err == nil {
		t.Error("unsorted arrivals accepted")
	}
	if _, err := SimulateSharedFIFO(fig9Config(Interleaved), []Fig9Arrival{{Stream: 3}}); err == nil {
		t.Error("bad stream accepted")
	}
}

func TestSharedFIFOCapacityBackpressure(t *testing.T) {
	// Capacity 1 forces strict alternation of admission and service.
	cfg := Fig9Config{Capacity: 1, Service: [2]uint64{5, 5}, Policy: Interleaved}
	arr := []Fig9Arrival{
		{Stream: 0, Time: 0}, {Stream: 0, Time: 0}, {Stream: 0, Time: 0},
	}
	res, err := SimulateSharedFIFO(cfg, arr)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{5, 10, 15}
	for i, w := range want {
		if res.Departures[0][i] != w {
			t.Fatalf("departures = %v, want %v", res.Departures[0], want)
		}
	}
}
