// Package core implements the paper's contribution: temporal analysis and
// block-size computation for stream-processing accelerators shared between
// real-time streams through entry-/exit-gateway pairs.
//
// The package provides, following the paper section by section:
//
//   - the per-stream CSDF model of a gateway pair and its accelerator chain
//     (Fig. 5) and its execution schedule (Fig. 6),
//   - the worst-case block processing time τ̂s (Eq. 2), the round-robin
//     interference bound ε̂s (Eq. 3) and the total block turnaround γs
//     (Eq. 4),
//   - the single-actor SDF abstraction (Fig. 7) with the-earlier-the-better
//     refinement checking,
//   - throughput verification (Eq. 5) and minimum block-size computation
//     (Algorithm 1) by exact ILP and by a cross-checked fixed-point
//     iteration.
//
// Time is measured in clock cycles; stream rates are given in samples per
// second and converted through the system clock.
package core

import (
	"errors"
	"fmt"
	"math/big"
)

// Chain describes one chain of accelerators managed by an entry-/exit-
// gateway pair. All costs are in clock cycles per sample.
type Chain struct {
	Name string
	// AccelCosts holds ρA for each accelerator in the chain, in order.
	AccelCosts []uint64
	// EntryCost is ε: the entry-gateway DMA cost of forwarding one sample.
	EntryCost uint64
	// ExitCost is δ: the exit-gateway cost of converting one sample from
	// hardware to software flow control.
	ExitCost uint64
	// NICapacity is the capacity of the network-interface FIFOs between the
	// gateways and accelerators (the paper's α1, α2 = 2 tokens).
	NICapacity int64
}

// C0 is the paper's c0 = max(ε, ρA, δ): the per-sample cost of the slowest
// stage in the gateway/accelerator pipeline (Eq. 2's max term).
func (c *Chain) C0() uint64 {
	m := c.EntryCost
	if c.ExitCost > m {
		m = c.ExitCost
	}
	for _, a := range c.AccelCosts {
		if a > m {
			m = a
		}
	}
	return m
}

// Validate checks the chain parameters.
func (c *Chain) Validate() error {
	if len(c.AccelCosts) == 0 {
		return fmt.Errorf("core: chain %q has no accelerators", c.Name)
	}
	if c.NICapacity < 1 {
		return fmt.Errorf("core: chain %q needs NICapacity >= 1 (paper uses 2)", c.Name)
	}
	return nil
}

// Stream is one data stream multiplexed over a shared chain.
type Stream struct {
	Name string
	// Rate is μs, the required minimum throughput in samples per second.
	Rate *big.Rat
	// Reconfig is Rs, the cycles needed to reconfigure the chain's
	// accelerators (load configuration and restore stream state) before a
	// block of this stream can be processed.
	Reconfig uint64
	// Block is ηs, the number of samples multiplexed per turn. Zero means
	// "to be computed" by ComputeBlockSizes.
	Block int64
	// ProducerBurst is how many samples the producing task writes per
	// firing (default 1). Packetised producers (a software task forwarding
	// chunks) create the gcd-driven buffer-capacity dips of Fig. 8: the
	// input buffer's minimum capacity is non-monotone in ηs whenever
	// ProducerBurst > 1, which is what makes memory-optimal block sizes
	// differ from minimal ones (§V-F).
	ProducerBurst int64
}

// System is a set of streams sharing one chain through one gateway pair,
// with the clock that relates cycle counts to real time.
type System struct {
	Chain   Chain
	Streams []Stream
	// ClockHz is the platform clock frequency (the paper's Virtex 6 design
	// runs the interconnect and gateways at 100 MHz).
	ClockHz int64
}

// Errors.
var (
	ErrNoStreams    = errors.New("core: system has no streams")
	ErrBlockUnknown = errors.New("core: stream block size not set (run ComputeBlockSizes)")
	ErrInfeasible   = errors.New("core: throughput constraints are infeasible (utilisation >= 1)")
)

// Validate checks system parameters (block sizes may still be zero).
func (s *System) Validate() error {
	if err := s.Chain.Validate(); err != nil {
		return err
	}
	if len(s.Streams) == 0 {
		return ErrNoStreams
	}
	if s.ClockHz <= 0 {
		return fmt.Errorf("core: ClockHz must be positive, got %d", s.ClockHz)
	}
	for i := range s.Streams {
		st := &s.Streams[i]
		if st.Rate == nil || st.Rate.Sign() <= 0 {
			return fmt.Errorf("core: stream %q needs a positive rate", st.Name)
		}
		if st.Block < 0 {
			return fmt.Errorf("core: stream %q has negative block size", st.Name)
		}
	}
	return nil
}

// RatePerCycle returns μs expressed in samples per clock cycle.
func (s *System) RatePerCycle(i int) *big.Rat {
	return new(big.Rat).Quo(s.Streams[i].Rate, new(big.Rat).SetInt64(s.ClockHz))
}

// TauHat returns τ̂s (Eq. 2): the worst-case time in cycles to process one
// block of stream i, including reconfiguration and pipeline flush:
//
//	τ̂s = Rs + (ηs + 2) · max(ε, ρA, δ)
//
// The "+2" accounts for flushing the last samples through the accelerator
// and exit gateway after the entry gateway has issued the final sample.
func (s *System) TauHat(i int) (uint64, error) {
	st := &s.Streams[i]
	if st.Block <= 0 {
		return 0, fmt.Errorf("%w: %s", ErrBlockUnknown, st.Name)
	}
	return st.Reconfig + uint64(st.Block+2)*s.Chain.C0(), nil
}

// TauHatCheckpointed returns τ̂s(K) — Eq. 2 adjusted for mid-block
// checkpointing. With the gateway snapshotting engine state every K input
// samples, a block of ηs samples streams as n = ⌈ηs/K⌉ sub-blocks; every
// sub-block ends with a pipeline quiesce (the same "+2"·c0 flush Eq. 2
// charges once at block end) and each of the n−1 interior checkpoints adds
// one snapshot transfer of saveCost cycles on the configuration bus:
//
//	τ̂s(K) = Rs + (ηs + 2·⌈ηs/K⌉)·c0 + (⌈ηs/K⌉−1)·Csave
//
// K must already be rounded to the stream's decimation (the gateway rounds
// up); K ≤ 0 or K ≥ ηs degenerates to the unadjusted TauHat.
func (s *System) TauHatCheckpointed(i int, k int64, saveCost uint64) (uint64, error) {
	st := &s.Streams[i]
	if st.Block <= 0 {
		return 0, fmt.Errorf("%w: %s", ErrBlockUnknown, st.Name)
	}
	if k <= 0 || k >= st.Block {
		return s.TauHat(i)
	}
	n := (st.Block + k - 1) / k
	return st.Reconfig + uint64(st.Block+2*n)*s.Chain.C0() + uint64(n-1)*saveCost, nil
}

// ResumeBound bounds the work one mid-block resume may redo under
// checkpointing every K input samples: the abort-and-reconfigure reload
// (Rs over the configuration bus), at most K replayed samples (the resume
// point is the last checkpoint, never further back), and the sub-block's
// pipeline flush:
//
//	resume ≤ Rs + (K + 2)·c0
//
// This is the term the conservative Eq. 2 envelope must absorb per retry —
// O(K) where full-block replay was O(ηs). K ≤ 0 or K ≥ ηs means no
// checkpointing: the whole block replays (K = ηs).
func (s *System) ResumeBound(i int, k int64) (uint64, error) {
	st := &s.Streams[i]
	if st.Block <= 0 {
		return 0, fmt.Errorf("%w: %s", ErrBlockUnknown, st.Name)
	}
	if k <= 0 || k > st.Block {
		k = st.Block
	}
	return st.Reconfig + uint64(k+2)*s.Chain.C0(), nil
}

// EpsilonHat returns ε̂s (Eq. 3): the worst-case time stream i waits for the
// round-robin arbiter while every other stream's block is processed once.
func (s *System) EpsilonHat(i int) (uint64, error) {
	var sum uint64
	for j := range s.Streams {
		if j == i {
			continue
		}
		t, err := s.TauHat(j)
		if err != nil {
			return 0, err
		}
		sum += t
	}
	return sum, nil
}

// GammaHat returns γs (Eq. 4): the maximum time from a block of stream i
// being queued until it has been fully processed — the sum of one block
// turnaround of every stream sharing the chain.
func (s *System) GammaHat(i int) (uint64, error) {
	eps, err := s.EpsilonHat(i)
	if err != nil {
		return 0, err
	}
	tau, err := s.TauHat(i)
	if err != nil {
		return 0, err
	}
	return eps + tau, nil
}

// GuaranteedRate returns the throughput guarantee for stream i implied by
// the SDF abstraction (Eq. 5's left side): ηs / γs in samples per second.
func (s *System) GuaranteedRate(i int) (*big.Rat, error) {
	gamma, err := s.GammaHat(i)
	if err != nil {
		return nil, err
	}
	cycles := new(big.Rat).SetInt64(int64(gamma))
	samples := new(big.Rat).SetInt64(s.Streams[i].Block)
	perCycle := samples.Quo(samples, cycles)
	return perCycle.Mul(perCycle, new(big.Rat).SetInt64(s.ClockHz)), nil
}

// VerifyThroughput checks Eq. 5 for every stream: ηs / γs ≥ μs. It returns
// a nil error when all constraints hold, and a descriptive error naming the
// first violated stream otherwise.
func (s *System) VerifyThroughput() error {
	if err := s.Validate(); err != nil {
		return err
	}
	for i := range s.Streams {
		got, err := s.GuaranteedRate(i)
		if err != nil {
			return err
		}
		if got.Cmp(s.Streams[i].Rate) < 0 {
			g, _ := got.Float64()
			w, _ := s.Streams[i].Rate.Float64()
			return fmt.Errorf("core: stream %q guaranteed %.2f samples/s < required %.2f",
				s.Streams[i].Name, g, w)
		}
	}
	return nil
}

// Utilization returns the fraction of gateway time the streams demand:
// Σ μs · c0 (in samples/cycle · cycles/sample). Feasibility requires the
// rate-dependent part to stay below 1; the reconfiguration overhead then
// determines how large blocks must be.
func (s *System) Utilization() *big.Rat {
	c0 := new(big.Rat).SetInt64(int64(s.Chain.C0()))
	u := new(big.Rat)
	for i := range s.Streams {
		u.Add(u, new(big.Rat).Mul(s.RatePerCycle(i), c0))
	}
	return u
}

// WorstCaseSampleLatency bounds the end-to-end latency of one sample of
// stream i in cycles: from its arrival at the input C-FIFO to its
// availability in the output C-FIFO. The worst-positioned sample is the
// first of a block — it waits for the remaining η-1 samples to arrive
// (at the stream's rate), after which the full block completes within γ̂s:
//
//	L̂ = ⌈(η-1)/μ⌉ + γ̂s   (μ in samples/cycle)
func (s *System) WorstCaseSampleLatency(i int) (uint64, error) {
	gamma, err := s.GammaHat(i)
	if err != nil {
		return 0, err
	}
	fill := new(big.Rat).SetInt64(s.Streams[i].Block - 1)
	fill.Quo(fill, s.RatePerCycle(i))
	return uint64(ratCeil(fill)) + gamma, nil
}

// InputBufferBound returns a sufficient capacity for stream i's input
// C-FIFO: one full block (which the gateway atomically claims) plus the
// samples the source produces during a worst-case service interval γ̂s.
// With this capacity a periodic source never finds the FIFO full, so no
// real-time sample is dropped.
func (s *System) InputBufferBound(i int) (int64, error) {
	gamma, err := s.GammaHat(i)
	if err != nil {
		return 0, err
	}
	arrivals := new(big.Rat).Mul(s.RatePerCycle(i), new(big.Rat).SetInt64(int64(gamma)))
	return s.Streams[i].Block + ratCeil(arrivals), nil
}

// OutputBufferBound returns a sufficient capacity for stream i's output
// C-FIFO when its consumer drains at least at the stream's output rate:
// two output blocks (one being written while the previous drains).
func (s *System) OutputBufferBound(i int, decimation int64) (int64, error) {
	if s.Streams[i].Block <= 0 {
		return 0, fmt.Errorf("%w: %s", ErrBlockUnknown, s.Streams[i].Name)
	}
	if decimation < 1 {
		decimation = 1
	}
	return 2 * s.Streams[i].Block / decimation, nil
}

// C1 returns the paper's c1 for Algorithm 1. The paper prints "c1 = Rs",
// but substituting Eq. 4 into Eq. 5 gives c1 = Σ_{i∈S} Ri (the per-rotation
// reconfiguration cost of ALL streams); with the paper's equal Rs values
// the two differ only by the factor |S|, and only the sum makes Eq. 6
// equivalent to Eq. 5. We implement the sum.
func (s *System) C1() uint64 {
	var sum uint64
	for i := range s.Streams {
		sum += s.Streams[i].Reconfig
	}
	return sum
}

// RoundDuration returns Σ τ̂i, the worst-case duration of one full
// round-robin rotation over all streams (equals γs for every s).
func (s *System) RoundDuration() (uint64, error) {
	return s.GammaHat(0)
}

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := &System{Chain: s.Chain, ClockHz: s.ClockHz}
	c.Chain.AccelCosts = append([]uint64(nil), s.Chain.AccelCosts...)
	c.Streams = make([]Stream, len(s.Streams))
	for i, st := range s.Streams {
		c.Streams[i] = Stream{Name: st.Name, Rate: new(big.Rat).Set(st.Rate), Reconfig: st.Reconfig, Block: st.Block, ProducerBurst: st.ProducerBurst}
	}
	return c
}
