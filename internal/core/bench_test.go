package core

import (
	"math/big"
	"testing"
)

func BenchmarkBuildCSDF(b *testing.B) {
	s := smallSystem(64, 32)
	p := ModelParams{InputCapacity: 128, OutputCapacity: 128, IncludeInterference: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.BuildCSDF(0, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleBlock(b *testing.B) {
	s := smallSystem(256)
	for i := 0; i < b.N; i++ {
		if _, err := s.ScheduleBlock(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckRefinement(b *testing.B) {
	s := smallSystem(8, 16)
	p := ModelParams{ProducerCost: 1, ConsumerCost: 2, InputCapacity: 16, OutputCapacity: 16, IncludeInterference: true}
	for i := 0; i < b.N; i++ {
		rep, err := s.CheckRefinement(0, p, 32)
		if err != nil || !rep.Refines {
			b.Fatalf("%v %v", rep, err)
		}
	}
}

func BenchmarkSharedFIFOSimulation(b *testing.B) {
	cfg := Fig9Config{Capacity: 4, Service: [2]uint64{1, 50}, Policy: Interleaved}
	arr := fig9Schedule()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateSharedFIFO(cfg, arr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalBlockSizesForMemory(b *testing.B) {
	s := &System{
		Chain:   Chain{Name: "m", AccelCosts: []uint64{2}, EntryCost: 3, ExitCost: 1, NICapacity: 2},
		ClockHz: 1_000_000,
		Streams: []Stream{
			{Name: "s0", Rate: big.NewRat(34_000, 1), Reconfig: 40, ProducerBurst: 5},
			{Name: "s1", Rate: big.NewRat(34_000, 1), Reconfig: 40, ProducerBurst: 5},
		},
	}
	for i := 0; i < b.N; i++ {
		if _, err := s.OptimalBlockSizesForMemory(4, 1); err != nil {
			b.Fatal(err)
		}
	}
}
