package core

import (
	"math/big"
	"testing"

	"accelshare/internal/buffer"
)

// TestRatCeil pins ⌈·⌉ over big.Rat across the sign and exactness edge
// cases: big.Int.Div floors toward −∞ for positive denominators (big.Rat
// keeps denominators positive), so the +1 correction must fire exactly when
// the rational is not an integer — including negative ones, where truncating
// division would already "round up".
func TestRatCeil(t *testing.T) {
	cases := []struct {
		num, den int64
		want     int64
	}{
		{0, 1, 0},
		{1, 3, 1},
		{7, 2, 4},
		{4, 1, 4},   // exact positive integer: no bump
		{8, 2, 4},   // exact after reduction
		{-1, 3, 0},  // ⌈-0.33⌉ = 0
		{-7, 2, -3}, // ⌈-3.5⌉ = -3
		{-4, 1, -4}, // exact negative integer: no bump
		{-8, 2, -4}, // exact negative after reduction
		{7, -2, -3}, // big.Rat normalises the sign into the numerator
		{1_000_001, 1000, 1001},
		{-1_000_001, 1000, -1000},
	}
	for _, c := range cases {
		if got := ratCeil(big.NewRat(c.num, c.den)); got != c.want {
			t.Errorf("ratCeil(%d/%d) = %d, want %d", c.num, c.den, got, c.want)
		}
	}
}

// TestRoundedGranularityNonMonotone reproduces the Fig. 8 effect at the
// block-sizing level: solving the same stream at two granularities, the
// COARSER granularity yields a larger block (η = 5 instead of the minimal
// η = 4) that nevertheless needs a SMALLER input buffer, because the
// classical minimum capacity p + c − gcd(p, c) dips wherever the burst
// divides the block. Smallest blocks are not smallest memory.
func TestRoundedGranularityNonMonotone(t *testing.T) {
	newSys := func() *System {
		return &System{
			Chain: Chain{
				Name:       "fig8",
				AccelCosts: []uint64{1},
				EntryCost:  15,
				ExitCost:   1,
				NICapacity: 2,
			},
			ClockHz: 1,
			Streams: []Stream{
				// η ≥ μ(Rs + c0(η+2)) = (80 + 15η)/35 has least solution η = 4.
				{Name: "s", Rate: big.NewRat(1, 35), Reconfig: 50, ProducerBurst: 5},
			},
		}
	}

	fine, err := newSys().ComputeBlockSizesRounded([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := newSys().ComputeBlockSizesRounded([]int64{5})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Blocks[0] != 4 {
		t.Fatalf("granularity 1: η = %d, want 4", fine.Blocks[0])
	}
	if coarse.Blocks[0] != 5 {
		t.Fatalf("granularity 5: η = %d, want 5", coarse.Blocks[0])
	}
	const burst = 5
	capFine := buffer.ClassicalMinCapacity(burst, fine.Blocks[0])
	capCoarse := buffer.ClassicalMinCapacity(burst, coarse.Blocks[0])
	if capFine != 8 || capCoarse != 5 {
		t.Fatalf("capacities α(4) = %d, α(5) = %d, want 8 and 5", capFine, capCoarse)
	}
	if capCoarse >= capFine {
		t.Errorf("non-monotonicity lost: larger block η=%d needs %d ≥ %d samples",
			coarse.Blocks[0], capCoarse, capFine)
	}
}

// TestRoundedTwoGranularitiesMultiStream checks the rounded solver on a
// shared chain: coarsening one stream's granularity grows every LFP
// component consistently (the operator stays monotone), and each result is
// still a fixed point of its own rounded operator.
func TestRoundedTwoGranularitiesMultiStream(t *testing.T) {
	newSys := func() *System {
		return &System{
			Chain: Chain{
				Name:       "shared",
				AccelCosts: []uint64{1},
				EntryCost:  15,
				ExitCost:   1,
				NICapacity: 2,
			},
			ClockHz: 1,
			Streams: []Stream{
				{Name: "a", Rate: big.NewRat(1, 75), Reconfig: 50},
				{Name: "b", Rate: big.NewRat(1, 75), Reconfig: 50},
				{Name: "c", Rate: big.NewRat(1, 300), Reconfig: 50},
			},
		}
	}
	fine, err := newSys().ComputeBlockSizesRounded([]int64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := newSys().ComputeBlockSizesRounded([]int64{8, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Blocks[0]%8 != 0 {
		t.Errorf("stream a block %d not a multiple of 8", coarse.Blocks[0])
	}
	for i := range fine.Blocks {
		if coarse.Blocks[i] < fine.Blocks[i] {
			t.Errorf("stream %d: coarse block %d below unconstrained minimum %d",
				i, coarse.Blocks[i], fine.Blocks[i])
		}
	}
	// Both assignments must satisfy Eq. 6 on a fresh system.
	for _, blocks := range [][]int64{fine.Blocks, coarse.Blocks} {
		if !newSys().FeasibleBlocks(blocks) {
			t.Errorf("assignment %v infeasible", blocks)
		}
	}
}
