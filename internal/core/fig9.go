package core

// This file implements the paper's §V-G justification (Fig. 9): why the
// output-space check — and the mutual exclusivity it provides — is not just
// an optimisation but a *precondition* for dataflow modelling.
//
// Fig. 9 shows two producer/consumer pairs (t1→t2 carrying stream 0 and
// t3→t4 carrying stream 1) sharing one FIFO, the situation between the
// gateways and accelerators. In SDF, a produced token arrives at its
// consumer at the moment of production; with a shared FIFO, tokens of the
// OTHER stream sitting at the head can delay it (head-of-line blocking), so
// arrival times of stream 0 depend on stream 1's consumer. Worse, the
// dependence is non-monotone: an EARLIER stream-1 arrival can push a
// stream-0 token BEHIND it in the queue and delay stream 0 — violating the
// premise of the-earlier-the-better refinement (∀i a(i) ≤ â(i) ⇒ ∀j
// b(j) ≤ b̂(j)). The paper's block-wise sharing makes streams mutually
// exclusive: a stream waits until the FIFO is empty of the other stream, so
// its tokens are available the moment they are produced, restoring the
// refinement conditions.
//
// SharedFIFOSim makes both regimes executable so the violation (and its
// absence under mutual exclusion) can be demonstrated and tested, not just
// asserted.

import (
	"fmt"
	"sort"
)

// SharingPolicy selects how the Fig. 9 FIFO is shared.
type SharingPolicy int

// Sharing policies.
const (
	// Interleaved lets both producers enqueue in arrival order — the naive
	// sharing with head-of-line blocking.
	Interleaved SharingPolicy = iota
	// MutuallyExclusive admits a stream only when the FIFO holds no tokens
	// of the other stream — what the paper's gateways enforce block-wise.
	MutuallyExclusive
)

// Fig9Config describes the shared-FIFO scenario.
type Fig9Config struct {
	// Capacity of the shared FIFO in tokens.
	Capacity int
	// Service[s] is the time consumer of stream s needs per token.
	Service [2]uint64
	// Policy selects the sharing regime.
	Policy SharingPolicy
}

// Fig9Arrival is one token offered by a producer.
type Fig9Arrival struct {
	Stream int // 0 or 1
	Time   uint64
}

// Fig9Result reports per-stream token admission times (the instant a token
// actually enters the FIFO — the SDF "production" instant, since a blocked
// producer is back-pressure that SDF models explicitly) and departure
// (consumption) times.
type Fig9Result struct {
	Admissions [2][]uint64
	Departures [2][]uint64
}

// SimulateSharedFIFO runs the Fig. 9 scenario: tokens arrive per the given
// schedule (which must be time-sorted), enter the FIFO under the configured
// policy, and leave in FIFO order, each head token requiring its stream's
// consumer (consumers are independent and serve only their own stream, but
// only ever see the FIFO head — head-of-line blocking).
func SimulateSharedFIFO(cfg Fig9Config, arrivals []Fig9Arrival) (*Fig9Result, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("core: fig9 capacity must be >= 1")
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].Time < arrivals[i-1].Time {
			return nil, fmt.Errorf("core: fig9 arrivals must be time-sorted")
		}
	}
	for _, a := range arrivals {
		if a.Stream != 0 && a.Stream != 1 {
			return nil, fmt.Errorf("core: fig9 stream must be 0 or 1")
		}
	}

	type tok struct {
		stream  int
		arrival uint64
	}
	var queue []tok
	res := &Fig9Result{}
	var consumerFree [2]uint64
	pending := append([]Fig9Arrival(nil), arrivals...)
	now := uint64(0)

	countStream := func(s int) int {
		n := 0
		for _, t := range queue {
			if t.stream == s {
				n++
			}
		}
		return n
	}
	admissible := func(a Fig9Arrival) bool {
		if len(queue) >= cfg.Capacity {
			return false
		}
		if cfg.Policy == MutuallyExclusive && countStream(1-a.Stream) > 0 {
			return false
		}
		return true
	}

	guard := 0
	for len(pending) > 0 || len(queue) > 0 {
		guard++
		if guard > 1_000_000 {
			return nil, fmt.Errorf("core: fig9 simulation did not converge (deadlock?)")
		}
		progressed := false
		// Admit every arrival that is due and admissible, in order.
		for len(pending) > 0 && pending[0].Time <= now && admissible(pending[0]) {
			queue = append(queue, tok{stream: pending[0].Stream, arrival: pending[0].Time})
			res.Admissions[pending[0].Stream] = append(res.Admissions[pending[0].Stream], now)
			pending = pending[1:]
			progressed = true
		}
		// Serve the head if its consumer is free.
		if len(queue) > 0 {
			h := queue[0]
			start := now
			if consumerFree[h.stream] > start {
				start = consumerFree[h.stream]
			}
			if start <= now {
				dep := now + cfg.Service[h.stream]
				consumerFree[h.stream] = dep
				res.Departures[h.stream] = append(res.Departures[h.stream], dep)
				queue = queue[1:]
				progressed = true
			}
		}
		if progressed {
			continue
		}
		// Advance time to the next event: an arrival becoming due, a
		// consumer freeing up, or (under mutual exclusion) nothing — which
		// the loop above resolves once the queue drains.
		next := ^uint64(0)
		if len(pending) > 0 && pending[0].Time > now {
			next = pending[0].Time
		}
		if len(queue) > 0 {
			cf := consumerFree[queue[0].stream]
			if cf > now && cf < next {
				next = cf
			}
		}
		if next == ^uint64(0) {
			// Arrivals are due but blocked on capacity/policy while the
			// queue can still drain via the head consumer.
			if len(queue) > 0 {
				next = consumerFree[queue[0].stream]
				if next <= now {
					return nil, fmt.Errorf("core: fig9 stuck at t=%d", now)
				}
			} else {
				return nil, fmt.Errorf("core: fig9 deadlock at t=%d", now)
			}
		}
		now = next
	}
	return res, nil
}

// PrivateFIFODepartures computes the departure times a stream would see on
// a FIFO of its own, given admission times and its consumer's service time:
// dep[k] = max(adm[k], dep[k-1]) + service. Under the paper's mutual
// exclusivity, the shared FIFO is indistinguishable from this private FIFO
// conditional on admissions — the isolation property that makes the SDF
// model applicable (§V-G: "a token produced by s will immediately be
// available at the FIFO output").
func PrivateFIFODepartures(admissions []uint64, service uint64) []uint64 {
	deps := make([]uint64, len(admissions))
	var prev uint64
	for k, a := range admissions {
		take := a
		if prev > take {
			take = prev
		}
		deps[k] = take + service
		prev = deps[k]
	}
	return deps
}

// IsolationHolds reports whether the shared-FIFO departures equal the
// private-FIFO departures for both streams (conditional independence from
// the other stream).
func IsolationHolds(cfg Fig9Config, res *Fig9Result) bool {
	for s := 0; s < 2; s++ {
		want := PrivateFIFODepartures(res.Admissions[s], cfg.Service[s])
		if len(want) != len(res.Departures[s]) {
			return false
		}
		for k := range want {
			if want[k] != res.Departures[s][k] {
				return false
			}
		}
	}
	return true
}

// Fig9Violation is a witness that the-earlier-the-better fails: making one
// input arrive EARLIER made some output LATER.
type Fig9Violation struct {
	// MovedArrival is the index into the arrival schedule whose time was
	// decreased.
	MovedArrival int
	// EarlierBy is how much earlier it was made.
	EarlierBy uint64
	// Stream and Token identify the output that got later.
	Stream, Token int
	Before, After uint64
}

// FindEarlierTheBetterViolation searches the given base schedule for a
// counterexample to monotonicity under the configured policy: for every
// arrival, it tries moving it earlier by each step in `shifts` and checks
// whether any token's departure becomes later. Returns nil if the policy is
// monotone on this schedule.
func FindEarlierTheBetterViolation(cfg Fig9Config, base []Fig9Arrival, shifts []uint64) (*Fig9Violation, error) {
	ref, err := SimulateSharedFIFO(cfg, base)
	if err != nil {
		return nil, err
	}
	for idx := range base {
		for _, sh := range shifts {
			if base[idx].Time < sh {
				continue
			}
			mod := append([]Fig9Arrival(nil), base...)
			mod[idx].Time -= sh
			sort.SliceStable(mod, func(i, j int) bool { return mod[i].Time < mod[j].Time })
			got, err := SimulateSharedFIFO(cfg, mod)
			if err != nil {
				return nil, err
			}
			for s := 0; s < 2; s++ {
				n := len(ref.Departures[s])
				if len(got.Departures[s]) < n {
					n = len(got.Departures[s])
				}
				for k := 0; k < n; k++ {
					if got.Departures[s][k] > ref.Departures[s][k] {
						return &Fig9Violation{
							MovedArrival: idx,
							EarlierBy:    sh,
							Stream:       s,
							Token:        k,
							Before:       ref.Departures[s][k],
							After:        got.Departures[s][k],
						}, nil
					}
				}
			}
		}
	}
	return nil, nil
}
