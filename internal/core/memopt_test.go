package core

import (
	"math/big"
	"testing"
)

func memSystem() *System {
	return &System{
		Chain:   Chain{Name: "m", AccelCosts: []uint64{2}, EntryCost: 3, ExitCost: 1, NICapacity: 2},
		ClockHz: 1_000_000,
		Streams: []Stream{
			{Name: "s0", Rate: big.NewRat(50_000, 1), Reconfig: 40},
			{Name: "s1", Rate: big.NewRat(25_000, 1), Reconfig: 40},
		},
	}
}

func TestTotalMemoryAtRejectsInfeasible(t *testing.T) {
	s := memSystem()
	if _, _, err := s.TotalMemoryAt([]int64{1, 1}); err == nil {
		t.Fatal("undersized blocks accepted")
	}
}

func TestTotalMemoryAtMinimumBlocks(t *testing.T) {
	s := memSystem()
	min, err := s.Clone().ComputeBlockSizesFixedPoint()
	if err != nil {
		t.Fatal(err)
	}
	total, caps, err := s.TotalMemoryAt(min.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 2 || total <= 0 {
		t.Fatalf("total=%d caps=%v", total, caps)
	}
	for i, c := range caps {
		// Each buffer must hold at least one block.
		if c[0] < min.Blocks[i] || c[1] < min.Blocks[i] {
			t.Errorf("stream %d caps %v below block %d", i, c, min.Blocks[i])
		}
	}
}

func TestOptimalBlockSizesForMemory(t *testing.T) {
	s := memSystem()
	res, err := s.OptimalBlockSizesForMemory(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored == 0 {
		t.Fatal("nothing explored")
	}
	// The optimum can never need more memory than the Algorithm-1 point
	// (the minimum blocks are inside the search window at k=0).
	if res.TotalMemory > res.MinBlocksMemory {
		t.Errorf("optimal memory %d worse than min-blocks memory %d", res.TotalMemory, res.MinBlocksMemory)
	}
	// And the blocks must be feasible.
	if !s.FeasibleBlocks(res.Blocks) {
		t.Error("optimal blocks infeasible")
	}
	for i := range res.Blocks {
		if res.Blocks[i] < res.MinBlocks[i] {
			t.Errorf("optimal block %d below minimum %d", res.Blocks[i], res.MinBlocks[i])
		}
	}
	t.Logf("min blocks %v -> memory %d; optimal blocks %v -> memory %d (explored %d)",
		res.MinBlocks, res.MinBlocksMemory, res.Blocks, res.TotalMemory, res.Explored)
}

func TestOptimalBlockSizesWindowZero(t *testing.T) {
	// Window 0 degenerates to evaluating only the Algorithm-1 point.
	s := memSystem()
	res, err := s.OptimalBlockSizesForMemory(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Blocks {
		if res.Blocks[i] != res.MinBlocks[i] {
			t.Fatalf("window 0 should return the minimum blocks, got %v vs %v", res.Blocks, res.MinBlocks)
		}
	}
	if res.TotalMemory != res.MinBlocksMemory {
		t.Errorf("memory mismatch at window 0: %d vs %d", res.TotalMemory, res.MinBlocksMemory)
	}
}

func TestBurstyProducerMakesMemoryNonMonotone(t *testing.T) {
	// A producer writing 5-sample packets: the input buffer's minimum
	// capacity has gcd dips (Fig. 8), so a LARGER block can need LESS total
	// memory than the Algorithm-1 minimum — the §V-F motivation.
	// Rates tuned so Algorithm 1 lands at η = 4 for both streams — one
	// short of the burst size, right before a gcd dip (α_in(4) = 8 but
	// α_in(5) = 5 for a 5-sample burst).
	s := &System{
		Chain:   Chain{Name: "b", AccelCosts: []uint64{2}, EntryCost: 3, ExitCost: 1, NICapacity: 2},
		ClockHz: 1_000_000,
		Streams: []Stream{
			{Name: "s0", Rate: big.NewRat(34_000, 1), Reconfig: 40, ProducerBurst: 5},
			{Name: "s1", Rate: big.NewRat(34_000, 1), Reconfig: 40, ProducerBurst: 5},
		},
	}
	res, err := s.OptimalBlockSizesForMemory(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("min blocks %v -> memory %d; optimal %v -> memory %d (explored %d)",
		res.MinBlocks, res.MinBlocksMemory, res.Blocks, res.TotalMemory, res.Explored)
	if res.TotalMemory > res.MinBlocksMemory {
		t.Fatalf("optimum worse than minimum point")
	}
	// The headline §V-F claim: for bursty producers the memory-optimal
	// blocks differ from the throughput-minimal ones.
	same := true
	for i := range res.Blocks {
		if res.Blocks[i] != res.MinBlocks[i] {
			same = false
		}
	}
	if same {
		t.Errorf("memory optimum coincides with minimal blocks; expected a gcd dip to shift it (min=%v)", res.MinBlocks)
	}
}
