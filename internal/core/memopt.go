package core

// §V-F second half: after Algorithm 1 finds the SMALLEST block sizes, the
// paper notes that the smallest blocks do not generally give the smallest
// buffer capacities (the Fig. 8 non-monotonicity), and that finding the
// memory-optimal block sizes needs "a computationally intensive branch-and-
// bound algorithm [that] has to verify whether the throughput constraint of
// every stream is satisfied for every possible block size and must compute
// the accompanying minimum buffer capacities". This file implements that
// search over the single-actor SDF abstraction (Fig. 7): for every feasible
// block-size vector in a bounded window above the minimum, size each
// stream's α0 and α3 exactly (state-space search under the stream's rate
// constraint) and keep the assignment with the smallest total memory.

import (
	"fmt"
	"math/big"

	"accelshare/internal/buffer"
	"accelshare/internal/dataflow"
)

// MemoryResult is the outcome of OptimalBlockSizesForMemory.
type MemoryResult struct {
	// Blocks is the memory-optimal block-size vector.
	Blocks []int64
	// Capacities[i] = [α0, α3] for stream i at those blocks.
	Capacities [][2]int64
	// TotalMemory is Σ (α0 + α3) in samples.
	TotalMemory int64
	// MinBlocks and MinBlocksMemory document the Algorithm-1 point for
	// comparison (the memory the "smallest blocks" strategy costs).
	MinBlocks       []int64
	MinBlocksMemory int64
	// Explored counts evaluated block-size vectors.
	Explored int
}

// streamBufferNeeds sizes α0 and α3 for stream i at the current block
// sizes: the Fig. 7 SDF model with the producer fixed at the stream's rate
// (one sample per ⌈1/μs⌉ cycles, conservatively rounded up so the source is
// not slowed) and the consumer matching; capacities must sustain the
// producer at full rate (no sample is ever stalled — the real-time
// condition).
func (s *System) streamBufferNeeds(i int) ([2]int64, error) {
	st := &s.Streams[i]
	burst := st.ProducerBurst
	if burst < 1 {
		burst = 1
	}
	// Producer period in cycles for one BURST, rounded down so the modelled
	// source is at least as fast as required (conservative for sizing).
	period := new(big.Rat).Inv(s.RatePerCycle(i))
	period.Mul(period, new(big.Rat).SetInt64(burst))
	prodCost := period.Num().Int64() / period.Denom().Int64()
	if prodCost < 1 {
		prodCost = 1
	}
	gamma, err := s.GammaHat(i)
	if err != nil {
		return [2]int64{}, err
	}
	// Fig. 7 with explicitly sized buffers: vP -> vS -> vC.
	g := dataflow.NewGraph(fmt.Sprintf("mem.%s", st.Name))
	vp := g.AddActor("vP", uint64(prodCost))
	vs := g.AddActor("vS", gamma)
	// The consumer must be at least as fast as the source (floor of the
	// per-sample period) or no buffering could ever sustain the rate.
	consCost := prodCost / burst
	if consCost < 1 {
		consCost = 1
	}
	vc := g.AddActor("vC", uint64(consCost))
	eta := st.Block
	minIn := buffer.ClassicalMinCapacity(burst, eta)
	f0, b0 := g.AddBuffer("in", vp, vs, dataflow.Const(burst), dataflow.Const(eta), minIn)
	f3, b3 := g.AddBuffer("out", vs, vc, dataflow.Const(eta), dataflow.Const(1), eta)
	sz := &buffer.Sizer{
		G:        g,
		Channels: []buffer.Channel{{Fwd: f0, Back: b0}, {Fwd: f3, Back: b3}},
		Monitor:  vp,
	}
	// Target: the producer must sustain its full burst rate 1/prodCost.
	target := big.NewRat(1, prodCost)
	caps, err := sz.MinCapacitiesForThroughput(target)
	if err != nil {
		return [2]int64{}, fmt.Errorf("stream %s: %w", st.Name, err)
	}
	return [2]int64{caps[0], caps[1]}, nil
}

// TotalMemoryAt computes Σ(α0+α3) for the given block assignment.
func (s *System) TotalMemoryAt(blocks []int64) (int64, [][2]int64, error) {
	sys := s.Clone()
	for i := range sys.Streams {
		sys.Streams[i].Block = blocks[i]
	}
	if !sys.FeasibleBlocks(blocks) {
		return 0, nil, fmt.Errorf("core: blocks %v violate Eq. 6", blocks)
	}
	var total int64
	caps := make([][2]int64, len(blocks))
	for i := range sys.Streams {
		c, err := sys.streamBufferNeeds(i)
		if err != nil {
			return 0, nil, err
		}
		caps[i] = c
		total += c[0] + c[1]
	}
	return total, caps, nil
}

// OptimalBlockSizesForMemory searches block-size vectors η_min + k·step for
// k = 0..window per stream (the paper's branch and bound, bounded to a
// window for tractability) and returns the assignment minimising total
// buffer memory. Pruning: partial sums of a lower bound (each stream needs
// at least 2·η buffering) cut branches that cannot beat the incumbent.
func (s *System) OptimalBlockSizesForMemory(window int, step int64) (*MemoryResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if step < 1 {
		step = 1
	}
	minRes, err := s.Clone().ComputeBlockSizesFixedPoint()
	if err != nil {
		return nil, err
	}
	n := len(s.Streams)
	res := &MemoryResult{MinBlocks: minRes.Blocks}

	best := int64(1) << 62
	var bestBlocks []int64
	var bestCaps [][2]int64
	cur := make([]int64, n)

	var dfs func(i int, lbSum int64) error
	dfs = func(i int, lbSum int64) error {
		if lbSum >= best {
			return nil // even the lower bound cannot win
		}
		if i == n {
			total, caps, err := s.TotalMemoryAt(cur)
			if err != nil {
				return nil // infeasible combination: skip
			}
			res.Explored++
			if total < best {
				best = total
				bestBlocks = append([]int64(nil), cur...)
				bestCaps = caps
			}
			return nil
		}
		for k := 0; k <= window; k++ {
			cur[i] = minRes.Blocks[i] + int64(k)*step
			// Lower bound: every stream needs at least block-sized input
			// and output buffers.
			if err := dfs(i+1, lbSum+2*cur[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(0, 0); err != nil {
		return nil, err
	}
	if bestBlocks == nil {
		return nil, fmt.Errorf("core: no feasible assignment in the search window")
	}
	res.Blocks = bestBlocks
	res.Capacities = bestCaps
	res.TotalMemory = best
	if m, _, err := s.TotalMemoryAt(minRes.Blocks); err == nil {
		res.MinBlocksMemory = m
	}
	return res, nil
}
