package core

import (
	"fmt"

	"accelshare/internal/dataflow"
)

// ModelParams configures the construction of the per-stream temporal models
// (Fig. 5 and Fig. 7). The producer and consumer actors model the
// environment of the shared chain (a processor task on each side).
type ModelParams struct {
	// ProducerCost is ρP, the producer's firing duration in cycles.
	ProducerCost uint64
	// ConsumerCost is ρC, the consumer's firing duration in cycles.
	ConsumerCost uint64
	// InputCapacity is α0, the capacity of the FIFO between the producer
	// and the entry gateway, in samples. Must be ≥ ηs or the gateway can
	// never assemble a block.
	InputCapacity int64
	// OutputCapacity is α3, the capacity of the FIFO between the exit
	// gateway and the consumer, in samples. Must be ≥ ηs: the entry gateway
	// reserves the whole block's worth of output space up front.
	OutputCapacity int64
	// IncludeInterference adds ε̂s (Eq. 3) to the first-phase duration of
	// the entry gateway, modelling the worst-case wait for other streams.
	IncludeInterference bool
}

// CSDFModel is the detailed per-stream CSDF model of Fig. 5: the entry
// gateway vG0 with ηs phases, the chain's accelerators, the exit gateway
// vG1 with ηs phases, and the producer/consumer environment.
type CSDFModel struct {
	Graph  *dataflow.Graph
	VP     dataflow.ActorID
	VG0    dataflow.ActorID
	VAccel []dataflow.ActorID
	VG1    dataflow.ActorID
	VC     dataflow.ActorID
	// OutEdge is the data edge vG1 → vC; its token production times are the
	// stream's output arrivals (used by the refinement checker).
	OutEdge dataflow.EdgeID
	// IdleEdge is the pipeline-idle notification edge vG1 → vG0.
	IdleEdge dataflow.EdgeID
}

// BuildCSDF constructs the Fig. 5 CSDF model for stream i.
//
// Structure, matching the paper's figure:
//
//   - vP fires every ρP cycles producing one sample into the α0 FIFO.
//   - vG0 has ηs phases. Phase 0 atomically claims the whole block (ηs input
//     samples), the pipeline-idle token from vG1, and ηs spaces in the
//     OUTPUT buffer (the space check this paper adds over prior work); its
//     duration is [ε̂s+] Rs + ε. Each phase forwards one sample to the first
//     accelerator under credit flow control. The last phase releases the ηs
//     input-buffer spaces back to vP.
//   - Each accelerator consumes and produces one sample per firing (ρA);
//     NI FIFOs of capacity α1 = α2 = NICapacity sit on every hop.
//   - vG1 has ηs phases of duration δ; each moves one sample into the α3
//     output FIFO; the last phase also emits the pipeline-idle token.
//   - vC consumes one sample per firing (ρC) and releases one space token —
//     to vG0, not vG1, closing the space-check loop.
func (s *System) BuildCSDF(i int, p ModelParams) (*CSDFModel, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	st := &s.Streams[i]
	if st.Block <= 0 {
		return nil, fmt.Errorf("%w: %s", ErrBlockUnknown, st.Name)
	}
	eta := int(st.Block)
	if p.InputCapacity < st.Block {
		return nil, fmt.Errorf("core: α0 = %d < ηs = %d; the gateway could never assemble a block", p.InputCapacity, st.Block)
	}
	if p.OutputCapacity < st.Block {
		return nil, fmt.Errorf("core: α3 = %d < ηs = %d; the space check could never pass", p.OutputCapacity, st.Block)
	}

	g := dataflow.NewGraph(fmt.Sprintf("csdf.%s", st.Name))
	m := &CSDFModel{Graph: g}

	m.VP = g.AddActor("vP", p.ProducerCost)

	// Entry gateway phase durations: [ (ε̂s) + Rs + ε, ε, ε, ... ].
	g0dur := make([]uint64, eta)
	first := st.Reconfig + s.Chain.EntryCost
	if p.IncludeInterference {
		eps, err := s.EpsilonHat(i)
		if err != nil {
			return nil, err
		}
		first += eps
	}
	g0dur[0] = first
	for k := 1; k < eta; k++ {
		g0dur[k] = s.Chain.EntryCost
	}
	m.VG0 = g.AddActor("vG0", g0dur...)

	for a, cost := range s.Chain.AccelCosts {
		m.VAccel = append(m.VAccel, g.AddActor(fmt.Sprintf("vA%d", a), cost))
	}

	g1dur := make([]uint64, eta)
	for k := range g1dur {
		g1dur[k] = s.Chain.ExitCost
	}
	m.VG1 = g.AddActor("vG1", g1dur...)
	m.VC = g.AddActor("vC", p.ConsumerCost)

	// Quanta helpers for "claim everything in phase 0" and "release at the
	// last phase" patterns.
	firstOnly := make(dataflow.Quanta, eta) // [x, 0, 0, ...]
	lastOnly := make(dataflow.Quanta, eta)  // [0, ..., 0, x]
	block := st.Block
	firstOnly[0] = block
	lastOnly[eta-1] = block
	firstOne := make(dataflow.Quanta, eta)
	lastOne := make(dataflow.Quanta, eta)
	firstOne[0] = 1
	lastOne[eta-1] = 1

	// α0 FIFO: producer → entry gateway.
	g.AddEdge("in.data", m.VP, m.VG0, dataflow.Const(1), firstOnly, 0)
	g.AddEdge("in.space", m.VG0, m.VP, lastOnly, dataflow.Const(1), p.InputCapacity)

	// Pipeline-idle notification: vG1 (last phase) → vG0 (first phase).
	m.IdleEdge = g.AddEdge("idle", m.VG1, m.VG0, lastOne, firstOne, 1)

	// Output space check: vC → vG0, initialised to α3.
	g.AddEdge("out.space", m.VC, m.VG0, dataflow.Const(1), firstOnly, p.OutputCapacity)

	// Gateway → first accelerator under credit flow control (α1).
	g.AddEdge("hop0.data", m.VG0, m.VAccel[0], dataflow.Const(1), dataflow.Const(1), 0)
	g.AddEdge("hop0.credit", m.VAccel[0], m.VG0, dataflow.Const(1), dataflow.Const(1), s.Chain.NICapacity)

	// Accelerator chain hops.
	for a := 0; a+1 < len(m.VAccel); a++ {
		g.AddEdge(fmt.Sprintf("hop%d.data", a+1), m.VAccel[a], m.VAccel[a+1], dataflow.Const(1), dataflow.Const(1), 0)
		g.AddEdge(fmt.Sprintf("hop%d.credit", a+1), m.VAccel[a+1], m.VAccel[a], dataflow.Const(1), dataflow.Const(1), s.Chain.NICapacity)
	}

	// Last accelerator → exit gateway (α2).
	last := m.VAccel[len(m.VAccel)-1]
	g.AddEdge("hopN.data", last, m.VG1, dataflow.Const(1), dataflow.Const(1), 0)
	g.AddEdge("hopN.credit", m.VG1, last, dataflow.Const(1), dataflow.Const(1), s.Chain.NICapacity)

	// Exit gateway → consumer (α3 data side; space returns via out.space).
	m.OutEdge = g.AddEdge("out.data", m.VG1, m.VC, dataflow.Const(1), dataflow.Const(1), 0)

	if err := g.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// BlockSchedule executes the CSDF model for exactly one block (Fig. 6) and
// returns the trace together with τs, the measured makespan from the start
// of the entry gateway's first phase to the end of the exit gateway's last
// phase.
type BlockSchedule struct {
	Trace []dataflow.Firing
	Model *CSDFModel
	// Tau is the measured block processing time τs in cycles.
	Tau uint64
	// TauHat is the Eq. 2 bound for comparison.
	TauHat uint64
}

// ScheduleBlock builds the stream's CSDF model with an idle pipeline and a
// ready block of input (the Fig. 6 scenario: ε̂s = 0) and simulates exactly
// one block through the gateways and accelerators.
func (s *System) ScheduleBlock(i int) (*BlockSchedule, error) {
	st := &s.Streams[i]
	if st.Block <= 0 {
		return nil, fmt.Errorf("%w: %s", ErrBlockUnknown, st.Name)
	}
	params := ModelParams{
		ProducerCost:        0,
		ConsumerCost:        0,
		InputCapacity:       st.Block,
		OutputCapacity:      st.Block,
		IncludeInterference: false,
	}
	m, err := s.BuildCSDF(i, params)
	if err != nil {
		return nil, err
	}
	res, err := m.Graph.Simulate(dataflow.SimOptions{
		RecordTrace:      true,
		StopAfterFirings: map[dataflow.ActorID]int64{m.VG1: st.Block},
	})
	if err != nil {
		return nil, err
	}
	sched := &BlockSchedule{Model: m}
	var start uint64
	var end uint64
	started := false
	for _, f := range res.Trace {
		if f.Actor == m.VG0 && !started {
			start = f.Start
			started = true
		}
		if f.Actor == m.VG1 && f.End > end {
			end = f.End
		}
		if f.Actor == m.VG0 || f.Actor == m.VG1 || isAccel(m, f.Actor) {
			sched.Trace = append(sched.Trace, f)
		}
	}
	if !started {
		return nil, fmt.Errorf("core: entry gateway never fired for stream %s", st.Name)
	}
	sched.Tau = end - start
	sched.TauHat, err = s.TauHat(i)
	if err != nil {
		return nil, err
	}
	return sched, nil
}

func isAccel(m *CSDFModel, a dataflow.ActorID) bool {
	for _, v := range m.VAccel {
		if v == a {
			return true
		}
	}
	return false
}
