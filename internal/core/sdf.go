package core

import (
	"fmt"

	"accelshare/internal/dataflow"
)

// SDFModel is the single-actor abstraction of Fig. 7: the whole gateway +
// accelerator chain collapses into one actor vS with firing duration γ̂s
// that consumes a block of ηs samples and produces ηs samples atomically.
type SDFModel struct {
	Graph   *dataflow.Graph
	VP      dataflow.ActorID
	VS      dataflow.ActorID
	VC      dataflow.ActorID
	OutEdge dataflow.EdgeID
}

// BuildSDF constructs the Fig. 7 abstraction for stream i. The firing
// duration of vS is γ̂s when params.IncludeInterference is set (the shared
// case, Eq. 4) and τ̂s otherwise (the stream in isolation, Eq. 2).
func (s *System) BuildSDF(i int, p ModelParams) (*SDFModel, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	st := &s.Streams[i]
	if st.Block <= 0 {
		return nil, fmt.Errorf("%w: %s", ErrBlockUnknown, st.Name)
	}
	if p.InputCapacity < st.Block || p.OutputCapacity < st.Block {
		return nil, fmt.Errorf("core: SDF buffers must hold at least one block (α0=%d α3=%d ηs=%d)",
			p.InputCapacity, p.OutputCapacity, st.Block)
	}
	var dur uint64
	var err error
	if p.IncludeInterference {
		dur, err = s.GammaHat(i)
	} else {
		dur, err = s.TauHat(i)
	}
	if err != nil {
		return nil, err
	}
	g := dataflow.NewGraph(fmt.Sprintf("sdf.%s", st.Name))
	m := &SDFModel{Graph: g}
	m.VP = g.AddActor("vP", p.ProducerCost)
	m.VS = g.AddActor("vS", dur)
	m.VC = g.AddActor("vC", p.ConsumerCost)

	eta := st.Block
	g.AddEdge("in.data", m.VP, m.VS, dataflow.Const(1), dataflow.Const(eta), 0)
	g.AddEdge("in.space", m.VS, m.VP, dataflow.Const(eta), dataflow.Const(1), p.InputCapacity)
	m.OutEdge = g.AddEdge("out.data", m.VS, m.VC, dataflow.Const(eta), dataflow.Const(1), 0)
	g.AddEdge("out.space", m.VC, m.VS, dataflow.Const(1), dataflow.Const(eta), p.OutputCapacity)

	if err := g.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// OutputArrivals simulates a model until the consumer-side data edge has
// carried at least n tokens and returns the arrival time of each token
// (token k = the k-th sample available to vC), expanding multi-token
// productions into per-token timestamps.
func OutputArrivals(g *dataflow.Graph, out dataflow.EdgeID, consumer dataflow.ActorID, n int64) ([]uint64, error) {
	res, err := g.Simulate(dataflow.SimOptions{
		WatchEdges:       []dataflow.EdgeID{out},
		StopAfterFirings: map[dataflow.ActorID]int64{consumer: n},
		MaxEvents:        50_000_000,
	})
	if err != nil {
		return nil, err
	}
	var times []uint64
	for _, ev := range res.TokenEvents {
		for k := int64(0); k < ev.Count; k++ {
			times = append(times, ev.Time)
		}
	}
	if int64(len(times)) < n {
		return nil, fmt.Errorf("core: only %d of %d output tokens arrived (deadlock=%v)",
			len(times), n, res.Deadlocked)
	}
	return times[:n], nil
}

// RefinementReport compares token arrival times between a refined model and
// its abstraction.
type RefinementReport struct {
	// Refines is true when every refined-model token arrives no later than
	// the corresponding abstract-model token (the-earlier-the-better).
	Refines bool
	// FirstViolation is the index of the first late token (valid when
	// !Refines).
	FirstViolation int
	// RefinedTimes and AbstractTimes are the compared arrival sequences.
	RefinedTimes, AbstractTimes []uint64
}

// CheckRefinement verifies the-earlier-the-better refinement between the
// detailed CSDF model (refined) and the single-actor SDF abstraction for
// stream i over n output tokens: CSDF ⊑ SDF. Both models see the same
// producer/consumer environment. Per the paper (§V-C), the only accuracy
// loss is that the SDF actor produces its whole block atomically at the end
// of the firing while the CSDF exit gateway streams tokens out as they
// appear — so every CSDF token must arrive no later than its SDF
// counterpart.
func (s *System) CheckRefinement(i int, p ModelParams, n int64) (*RefinementReport, error) {
	csdf, err := s.BuildCSDF(i, p)
	if err != nil {
		return nil, err
	}
	sdf, err := s.BuildSDF(i, p)
	if err != nil {
		return nil, err
	}
	ct, err := OutputArrivals(csdf.Graph, csdf.OutEdge, csdf.VC, n)
	if err != nil {
		return nil, fmt.Errorf("csdf arrivals: %w", err)
	}
	at, err := OutputArrivals(sdf.Graph, sdf.OutEdge, sdf.VC, n)
	if err != nil {
		return nil, fmt.Errorf("sdf arrivals: %w", err)
	}
	rep := &RefinementReport{Refines: true, FirstViolation: -1, RefinedTimes: ct, AbstractTimes: at}
	for k := range ct {
		if ct[k] > at[k] {
			rep.Refines = false
			rep.FirstViolation = k
			break
		}
	}
	return rep, nil
}

// CompareArrivals checks the-earlier-the-better between two arbitrary
// arrival sequences (refined vs abstract).
func CompareArrivals(refined, abstract []uint64) *RefinementReport {
	rep := &RefinementReport{Refines: true, FirstViolation: -1, RefinedTimes: refined, AbstractTimes: abstract}
	n := len(refined)
	if len(abstract) < n {
		n = len(abstract)
	}
	for k := 0; k < n; k++ {
		if refined[k] > abstract[k] {
			rep.Refines = false
			rep.FirstViolation = k
			break
		}
	}
	return rep
}
