package dataflow

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sort"
)

// Firing records one actor firing in an execution trace.
type Firing struct {
	Actor ActorID
	Phase int
	Start uint64
	End   uint64
}

// TokenEvent records tokens being produced onto a watched edge.
type TokenEvent struct {
	Edge  EdgeID
	Time  uint64
	Count int64
}

// SimOptions controls Simulate.
type SimOptions struct {
	// MaxEvents bounds the number of firings processed; 0 means a default
	// safety cap. Exceeding the cap returns ErrSimBudget.
	MaxEvents uint64
	// MaxTime stops the simulation once the clock passes this value (0 = no
	// limit). Stopping on MaxTime is not an error.
	MaxTime uint64
	// RecordTrace captures every firing in SimResult.Trace.
	RecordTrace bool
	// WatchEdges lists edges whose token productions are recorded in
	// SimResult.TokenEvents.
	WatchEdges []EdgeID
	// StopAfterFirings, if non-nil, stops once every listed actor has fired
	// at least the given number of times.
	StopAfterFirings map[ActorID]int64
	// DetectPeriod enables steady-state recurrence detection for exact
	// throughput extraction. The simulation stops as soon as a state repeats.
	DetectPeriod bool
	// MaxStates bounds the recurrence-detection map (0 = default). When the
	// bound is hit the simulation stops with Periodic == false, which
	// typically means token counts grow without bound (inconsistent or
	// unbounded graph).
	MaxStates int
}

// SimResult is the outcome of a self-timed execution.
type SimResult struct {
	// Deadlocked is set when no actor can ever fire again.
	Deadlocked   bool
	DeadlockTime uint64

	// Time is the clock value when the simulation stopped.
	Time uint64
	// Firings[a] counts completed plus in-flight firings of actor a.
	Firings []int64

	Trace       []Firing
	TokenEvents []TokenEvent

	// MaxTokens[e] is the highest token count observed on edge e (after
	// production, before consumption). Useful as a buffer occupancy bound.
	MaxTokens []int64
	// MinTokens[e] is the lowest token count observed on edge e (after
	// consumption). On a back (space) edge, Initial-MinTokens is the peak
	// space in use, i.e. the capacity the execution actually needs.
	MinTokens []int64

	// Periodic results (only when SimOptions.DetectPeriod found a cycle):
	Periodic      bool
	TransientEnd  uint64  // time of the first occurrence of the repeated state
	Period        uint64  // steady-state period length in time units
	PeriodFirings []int64 // firings per actor within one period
}

// Throughput returns the exact steady-state firing rate of actor a in
// firings per time unit, or nil if the execution was not periodic. A
// deadlocked graph has throughput zero.
func (r *SimResult) Throughput(a ActorID) *big.Rat {
	if r.Deadlocked {
		return new(big.Rat)
	}
	if !r.Periodic || r.Period == 0 {
		return nil
	}
	return big.NewRat(r.PeriodFirings[a], int64(r.Period))
}

// Errors from Simulate.
var (
	ErrSimBudget   = errors.New("dataflow: simulation exceeded event budget")
	ErrZeroCycle   = errors.New("dataflow: unbounded zero-duration firing loop")
	ErrZeroPeriod  = errors.New("dataflow: periodic state with zero period (infinite throughput)")
	ErrNotPeriodic = errors.New("dataflow: no periodic steady state found within budget")
)

const defaultMaxEvents = 50_000_000

// completion is a pending end-of-firing event.
type completion struct {
	time  uint64
	seq   uint64
	actor ActorID
	phase int
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type simulator struct {
	g      *Graph
	opts   SimOptions
	tokens []int64
	phase  []int // next phase to fire, per actor
	busy   []bool
	events completionHeap
	seq    uint64
	now    uint64

	firings   []int64
	maxTokens []int64
	minTokens []int64
	watch     map[EdgeID]bool
	res       *SimResult

	seen map[string]snapshot
}

type snapshot struct {
	time    uint64
	firings []int64
}

// Simulate executes the graph self-timed: every actor fires as soon as all
// of its input edges carry at least the current phase's consumption quanta
// and its previous firing (implicit self-edge) has completed.
func (g *Graph) Simulate(opts SimOptions) (*SimResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxEvents == 0 {
		opts.MaxEvents = defaultMaxEvents
	}
	s := &simulator{
		g:         g,
		opts:      opts,
		tokens:    make([]int64, len(g.Edges)),
		phase:     make([]int, len(g.Actors)),
		busy:      make([]bool, len(g.Actors)),
		firings:   make([]int64, len(g.Actors)),
		maxTokens: make([]int64, len(g.Edges)),
		minTokens: make([]int64, len(g.Edges)),
		res:       &SimResult{},
	}
	for i := range g.Edges {
		s.tokens[i] = g.Edges[i].Initial
		s.maxTokens[i] = g.Edges[i].Initial
		s.minTokens[i] = g.Edges[i].Initial
	}
	if len(opts.WatchEdges) > 0 {
		s.watch = make(map[EdgeID]bool, len(opts.WatchEdges))
		for _, e := range opts.WatchEdges {
			s.watch[e] = true
		}
	}
	if opts.DetectPeriod {
		s.seen = make(map[string]snapshot)
	}
	err := s.run()
	s.res.Time = s.now
	s.res.Firings = s.firings
	s.res.MaxTokens = s.maxTokens
	s.res.MinTokens = s.minTokens
	return s.res, err
}

func (s *simulator) enabled(a ActorID) bool {
	if s.busy[a] {
		return false
	}
	p := s.phase[a]
	for _, eid := range s.g.in[a] {
		e := &s.g.Edges[eid]
		if s.tokens[eid] < e.Cons.At(p) {
			return false
		}
	}
	return true
}

func (s *simulator) fire(a ActorID) {
	p := s.phase[a]
	act := &s.g.Actors[a]
	for _, eid := range s.g.in[a] {
		s.tokens[eid] -= s.g.Edges[eid].Cons.At(p)
		if s.tokens[eid] < s.minTokens[eid] {
			s.minTokens[eid] = s.tokens[eid]
		}
	}
	s.busy[a] = true
	s.firings[a]++
	dur := act.Duration[p%len(act.Duration)]
	s.seq++
	heap.Push(&s.events, completion{time: s.now + dur, seq: s.seq, actor: a, phase: p})
	if s.opts.RecordTrace {
		s.res.Trace = append(s.res.Trace, Firing{Actor: a, Phase: p, Start: s.now, End: s.now + dur})
	}
}

func (s *simulator) complete(c completion) {
	a := c.actor
	for _, eid := range s.g.out[a] {
		e := &s.g.Edges[eid]
		n := e.Prod.At(c.phase)
		if n == 0 {
			continue
		}
		s.tokens[eid] += n
		if s.tokens[eid] > s.maxTokens[eid] {
			s.maxTokens[eid] = s.tokens[eid]
		}
		if s.watch[eid] {
			s.res.TokenEvents = append(s.res.TokenEvents, TokenEvent{Edge: eid, Time: s.now, Count: n})
		}
	}
	s.phase[a] = (c.phase + 1) % s.g.Actors[a].Phases()
	s.busy[a] = false
}

// fireEnabled fires every enabled actor at the current time, cascading
// through zero-duration completions, until the instant is quiescent.
func (s *simulator) fireEnabled() error {
	guard := 0
	for {
		fired := false
		for a := range s.g.Actors {
			if s.enabled(ActorID(a)) {
				s.fire(ActorID(a))
				fired = true
			}
		}
		// Drain zero-duration completions at the current instant so chained
		// zero-cost actors make progress within one time step.
		drained := false
		for len(s.events) > 0 && s.events[0].time == s.now {
			c := heap.Pop(&s.events).(completion)
			s.complete(c)
			drained = true
		}
		if !fired && !drained {
			return nil
		}
		guard++
		if guard > 1_000_000 {
			return ErrZeroCycle
		}
	}
}

func (s *simulator) stopConditionMet() bool {
	if s.opts.StopAfterFirings == nil {
		return false
	}
	for a, n := range s.opts.StopAfterFirings {
		if s.firings[a] < n {
			return false
		}
	}
	return true
}

// stateKey serialises the normalised simulator state: token counts, actor
// phases, and the multiset of (actor, remaining-time) for in-flight firings.
func (s *simulator) stateKey() string {
	buf := make([]byte, 0, 16*(len(s.tokens)+len(s.phase)+len(s.events)))
	var tmp [8]byte
	for _, t := range s.tokens {
		binary.LittleEndian.PutUint64(tmp[:], uint64(t))
		buf = append(buf, tmp[:]...)
	}
	for _, p := range s.phase {
		binary.LittleEndian.PutUint64(tmp[:], uint64(p))
		buf = append(buf, tmp[:]...)
	}
	type rem struct {
		actor ActorID
		left  uint64
		phase int
	}
	rems := make([]rem, 0, len(s.events))
	for _, c := range s.events {
		rems = append(rems, rem{c.actor, c.time - s.now, c.phase})
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].actor != rems[j].actor {
			return rems[i].actor < rems[j].actor
		}
		if rems[i].left != rems[j].left {
			return rems[i].left < rems[j].left
		}
		return rems[i].phase < rems[j].phase
	})
	for _, r := range rems {
		binary.LittleEndian.PutUint64(tmp[:], uint64(r.actor))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], r.left)
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(r.phase))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

func (s *simulator) run() error {
	var processed uint64
	for {
		if err := s.fireEnabled(); err != nil {
			return err
		}
		if s.stopConditionMet() {
			return nil
		}
		if s.opts.DetectPeriod {
			key := s.stateKey()
			maxStates := s.opts.MaxStates
			if maxStates == 0 {
				maxStates = 1_000_000
			}
			if len(s.seen) >= maxStates {
				return nil // give up on periodicity; res.Periodic stays false
			}
			if prev, ok := s.seen[key]; ok {
				s.res.Periodic = true
				s.res.TransientEnd = prev.time
				s.res.Period = s.now - prev.time
				s.res.PeriodFirings = make([]int64, len(s.firings))
				for i := range s.firings {
					s.res.PeriodFirings[i] = s.firings[i] - prev.firings[i]
				}
				if s.res.Period == 0 {
					return ErrZeroPeriod
				}
				return nil
			}
			s.seen[key] = snapshot{time: s.now, firings: append([]int64(nil), s.firings...)}
		}
		if len(s.events) == 0 {
			s.res.Deadlocked = true
			s.res.DeadlockTime = s.now
			return nil
		}
		next := s.events[0].time
		if s.opts.MaxTime > 0 && next > s.opts.MaxTime {
			s.now = s.opts.MaxTime
			return nil
		}
		s.now = next
		for len(s.events) > 0 && s.events[0].time == s.now {
			c := heap.Pop(&s.events).(completion)
			s.complete(c)
			processed++
		}
		if processed > s.opts.MaxEvents {
			return ErrSimBudget
		}
	}
}

// ThroughputOf runs the graph to a periodic steady state and returns the
// exact firing rate of the given actor (firings per time unit). A deadlock
// yields zero. ErrNotPeriodic is returned when no recurrence is found within
// the event budget.
func (g *Graph) ThroughputOf(a ActorID, maxEvents uint64) (*big.Rat, error) {
	res, err := g.Simulate(SimOptions{DetectPeriod: true, MaxEvents: maxEvents})
	if err != nil {
		return nil, err
	}
	if res.Deadlocked {
		return new(big.Rat), nil
	}
	if !res.Periodic {
		return nil, ErrNotPeriodic
	}
	return res.Throughput(a), nil
}

// Deadlocks reports whether self-timed execution of the graph reaches a
// state where no actor can ever fire again.
func (g *Graph) Deadlocks(maxEvents uint64) (bool, error) {
	res, err := g.Simulate(SimOptions{DetectPeriod: true, MaxEvents: maxEvents})
	if err != nil {
		return false, fmt.Errorf("deadlock check: %w", err)
	}
	return res.Deadlocked, nil
}
