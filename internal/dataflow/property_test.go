package dataflow

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRepetitionScaleInvariance: multiplying both rates of an edge by the
// same factor leaves the repetition vector unchanged.
func TestRepetitionScaleInvariance(t *testing.T) {
	f := func(pRaw, cRaw, kRaw uint8) bool {
		p := int64(pRaw%7) + 1
		c := int64(cRaw%7) + 1
		k := int64(kRaw%5) + 1
		g1 := NewGraph("a")
		a1 := g1.AddActor("a", 1)
		b1 := g1.AddActor("b", 1)
		g1.AddSDFEdge("e", a1, b1, p, c, 0)
		g2 := NewGraph("b")
		a2 := g2.AddActor("a", 1)
		b2 := g2.AddActor("b", 1)
		g2.AddSDFEdge("e", a2, b2, k*p, k*c, 0)
		r1, err1 := g1.Repetitions()
		r2, err2 := g2.Repetitions()
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Firings[a1] == r2.Firings[a2] && r1.Firings[b1] == r2.Firings[b2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBufferTokenConservation: on every AddBuffer pair, fwd + back tokens
// never exceed the capacity and their sum is exactly capacity whenever no
// firing is in flight (claim-at-start/release-at-end semantics only dip the
// sum transiently).
func TestBufferTokenConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		p := int64(1 + rng.Intn(4))
		c := int64(1 + rng.Intn(4))
		capacity := p + c + int64(rng.Intn(5))
		g := NewGraph("cons")
		a := g.AddActor("a", uint64(1+rng.Intn(3)))
		b := g.AddActor("b", uint64(1+rng.Intn(3)))
		fwd, back := g.AddBuffer("ab", a, b, Const(p), Const(c), capacity)
		res, err := g.Simulate(SimOptions{MaxTime: 500})
		if err != nil {
			t.Fatal(err)
		}
		// The peak combined occupancy never exceeds capacity...
		if res.MaxTokens[fwd]+res.MinTokens[back] > capacity {
			// MaxTokens[fwd] is observed at some instant; MinTokens[back] at
			// possibly another, so this is a conservative check:
			// max(fwd) <= capacity - min_inflight <= capacity.
			if res.MaxTokens[fwd] > capacity {
				t.Fatalf("trial %d: fwd tokens %d exceed capacity %d", trial, res.MaxTokens[fwd], capacity)
			}
		}
		// ...and the back edge never goes negative (guaranteed by firing
		// rules, asserted for robustness).
		if res.MinTokens[back] < 0 || res.MinTokens[fwd] < 0 {
			t.Fatalf("trial %d: negative tokens", trial)
		}
	}
}

// TestThroughputInvariantUnderTimeScaling: multiplying all durations by k
// divides all throughputs by exactly k.
func TestThroughputInvariantUnderTimeScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 20; trial++ {
		d1 := uint64(1 + rng.Intn(4))
		d2 := uint64(1 + rng.Intn(4))
		p := int64(1 + rng.Intn(3))
		c := int64(1 + rng.Intn(3))
		capacity := p + c + int64(rng.Intn(4))
		k := uint64(2 + rng.Intn(3))
		build := func(scale uint64) *Graph {
			g := NewGraph("scale")
			a := g.AddActor("a", d1*scale)
			b := g.AddActor("b", d2*scale)
			g.AddBuffer("ab", a, b, Const(p), Const(c), capacity)
			return g
		}
		r1, err := build(1).Simulate(SimOptions{DetectPeriod: true})
		if err != nil {
			t.Fatal(err)
		}
		rk, err := build(k).Simulate(SimOptions{DetectPeriod: true})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Deadlocked != rk.Deadlocked {
			t.Fatalf("trial %d: deadlock behaviour changed under scaling", trial)
		}
		if r1.Deadlocked {
			continue
		}
		th1 := r1.Throughput(ActorID(1))
		thk := rk.Throughput(ActorID(1))
		scaled := new(big.Rat).Mul(thk, big.NewRat(int64(k), 1))
		if th1.Cmp(scaled) != 0 {
			t.Fatalf("trial %d: throughput %v != k·scaled %v", trial, th1, scaled)
		}
	}
}

// TestDeterminism: two runs of the same graph produce identical traces.
func TestDeterminism(t *testing.T) {
	build := func() *Graph {
		g := NewGraph("det")
		a := g.AddActor("a", 2)
		b := g.AddActor("b", 3)
		c := g.AddActor("c", 1)
		g.AddBuffer("ab", a, b, Const(2), Const(3), 7)
		g.AddBuffer("bc", b, c, Const(1), Const(2), 5)
		return g
	}
	r1, err := build().Simulate(SimOptions{RecordTrace: true, MaxTime: 2000})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := build().Simulate(SimOptions{RecordTrace: true, MaxTime: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Trace), len(r2.Trace))
	}
	for i := range r1.Trace {
		if r1.Trace[i] != r2.Trace[i] {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, r1.Trace[i], r2.Trace[i])
		}
	}
}
