package dataflow

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestExpandHSDFRequiresSDF(t *testing.T) {
	g := NewGraph("csdf")
	a := g.AddActor("a", 1, 2)
	b := g.AddActor("b", 1)
	g.AddEdge("e", a, b, Quanta{1, 1}, Const(1), 0)
	if _, err := g.ExpandHSDF(); err == nil {
		t.Fatal("want error for CSDF input")
	}
}

func TestExpandHSDFCopies(t *testing.T) {
	g := NewGraph("x")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 2)
	g.AddBuffer("ab", a, b, Const(2), Const(3), 6)
	exp, err := g.ExpandHSDF()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Copy[a]) != 3 || len(exp.Copy[b]) != 2 {
		t.Fatalf("copies = %d/%d, want 3/2", len(exp.Copy[a]), len(exp.Copy[b]))
	}
	if len(exp.Origin) != 5 {
		t.Fatalf("origin len = %d", len(exp.Origin))
	}
	if exp.Origin[exp.Copy[b][1]] != b {
		t.Error("origin mapping broken")
	}
}

// hsdfEquivalentThroughput checks that self-timed simulation of the original
// SDF graph and MCR analysis of its HSDF expansion agree exactly.
func hsdfEquivalentThroughput(t *testing.T, g *Graph, a ActorID) {
	t.Helper()
	res, err := g.Simulate(SimOptions{DetectPeriod: true, MaxEvents: 5_000_000})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	exp, err := g.ExpandHSDF()
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if res.Deadlocked {
		_, err := exp.Graph.MaxCycleRatio()
		if err != ErrZeroTokenCycle {
			t.Fatalf("sim deadlocked but MCR err = %v", err)
		}
		return
	}
	simTh := res.Throughput(a)
	mcrTh, err := exp.ThroughputViaMCR(a)
	if err != nil {
		t.Fatalf("mcr: %v", err)
	}
	if simTh.Cmp(mcrTh) != 0 {
		t.Fatalf("actor %s: simulation %v vs MCR %v\n%s", g.Actors[a].Name, simTh, mcrTh, g.String())
	}
}

func TestHSDFMatchesSimulationSimple(t *testing.T) {
	g := NewGraph("s1")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 3)
	g.AddBuffer("ab", a, b, Const(1), Const(1), 2)
	hsdfEquivalentThroughput(t, g, b)
}

func TestHSDFMatchesSimulationMultirate(t *testing.T) {
	g := NewGraph("s2")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 3)
	g.AddBuffer("ab", a, b, Const(2), Const(3), 7)
	hsdfEquivalentThroughput(t, g, a)
	hsdfEquivalentThroughput(t, g, b)
}

func TestHSDFMatchesSimulationThreeStage(t *testing.T) {
	g := NewGraph("s3")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 4)
	c := g.AddActor("c", 2)
	g.AddBuffer("ab", a, b, Const(3), Const(2), 6)
	g.AddBuffer("bc", b, c, Const(1), Const(3), 9)
	hsdfEquivalentThroughput(t, g, c)
}

func TestHSDFDeadlockAgreement(t *testing.T) {
	// Buffer too small for the rates: p + c - gcd = 5+3-1 = 7 needed.
	g := NewGraph("dl")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddBuffer("ab", a, b, Const(5), Const(3), 6)
	hsdfEquivalentThroughput(t, g, a)
}

// TestHSDFMatchesSimulationRandom is a property test: on random bounded
// two/three-actor SDF graphs, simulation and HSDF/MCR agree exactly.
func TestHSDFMatchesSimulationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		g := NewGraph("rand")
		n := 2 + rng.Intn(2)
		ids := make([]ActorID, n)
		for i := 0; i < n; i++ {
			ids[i] = g.AddActor(string(rune('a'+i)), uint64(1+rng.Intn(5)))
		}
		for i := 0; i+1 < n; i++ {
			p := int64(1 + rng.Intn(4))
			c := int64(1 + rng.Intn(4))
			cap := p + c + int64(rng.Intn(6)) - 2 // sometimes below the safe bound
			if cap < 1 {
				cap = 1
			}
			g.AddBuffer("e", ids[i], ids[i+1], Const(p), Const(c), cap)
		}
		a := ids[rng.Intn(n)]
		t.Run("", func(t *testing.T) { hsdfEquivalentThroughput(t, g, a) })
	}
}

func TestMaxCycleRatioAcyclic(t *testing.T) {
	g := NewGraph("dag")
	a := g.AddActor("a", 5)
	b := g.AddActor("b", 3)
	g.AddSDFEdge("ab", a, b, 1, 1, 0)
	r, err := g.MaxCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if r.Sign() != 0 {
		t.Errorf("acyclic MCR = %v, want 0", r)
	}
}

func TestMaxCycleRatioSimpleRing(t *testing.T) {
	// a(2) -> b(3) -> a with 1 token total: ratio (2+3)/1 = 5.
	g := NewGraph("ring")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 3)
	g.AddSDFEdge("ab", a, b, 1, 1, 1)
	g.AddSDFEdge("ba", b, a, 1, 1, 0)
	r, err := g.MaxCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !ratEq(r, 5, 1) {
		t.Errorf("MCR = %v, want 5", r)
	}
}

func TestMaxCycleRatioPicksWorstCycle(t *testing.T) {
	// Two rings sharing no nodes: ratios 5/1 and 7/2; max is 5.
	g := NewGraph("two")
	a := g.AddActor("a", 5)
	b := g.AddActor("b", 3)
	c := g.AddActor("c", 4)
	g.AddSDFEdge("aa", a, a, 1, 1, 1) // ratio 5
	g.AddSDFEdge("bc", b, c, 1, 1, 1)
	g.AddSDFEdge("cb", c, b, 1, 1, 1) // ratio (3+4)/2 = 3.5
	r, err := g.MaxCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !ratEq(r, 5, 1) {
		t.Errorf("MCR = %v, want 5", r)
	}
}

func TestMaxCycleRatioFractional(t *testing.T) {
	// Single ring, 2 tokens: ratio (3+4)/2 = 7/2 — exact rational expected.
	g := NewGraph("frac")
	b := g.AddActor("b", 3)
	c := g.AddActor("c", 4)
	g.AddSDFEdge("bc", b, c, 1, 1, 2)
	g.AddSDFEdge("cb", c, b, 1, 1, 0)
	r, err := g.MaxCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !ratEq(r, 7, 2) {
		t.Errorf("MCR = %v, want 7/2", r)
	}
}

func TestMaxCycleRatioZeroTokenCycle(t *testing.T) {
	g := NewGraph("zero")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddSDFEdge("ab", a, b, 1, 1, 0)
	g.AddSDFEdge("ba", b, a, 1, 1, 0)
	if _, err := g.MaxCycleRatio(); err != ErrZeroTokenCycle {
		t.Fatalf("err = %v, want ErrZeroTokenCycle", err)
	}
}

func TestMaxCycleRatioZeroWeightCycle(t *testing.T) {
	// A cycle of zero-duration actors with tokens: ratio 0.
	g := NewGraph("zw")
	a := g.AddActor("a", 0)
	b := g.AddActor("b", 0)
	g.AddSDFEdge("ab", a, b, 1, 1, 1)
	g.AddSDFEdge("ba", b, a, 1, 1, 1)
	r, err := g.MaxCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if r.Sign() != 0 {
		t.Errorf("MCR = %v, want 0", r)
	}
}

func TestMaxCycleRatioLargeDenominator(t *testing.T) {
	// Ring with 7 tokens and weight 13+17+1: ratio 31/7.
	g := NewGraph("ld")
	a := g.AddActor("a", 13)
	b := g.AddActor("b", 17)
	c := g.AddActor("c", 1)
	g.AddSDFEdge("ab", a, b, 1, 1, 3)
	g.AddSDFEdge("bc", b, c, 1, 1, 2)
	g.AddSDFEdge("ca", c, a, 1, 1, 2)
	r, err := g.MaxCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if r.Cmp(big.NewRat(31, 7)) != 0 {
		t.Errorf("MCR = %v, want 31/7", r)
	}
}
