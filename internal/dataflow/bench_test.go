package dataflow

import "testing"

func benchGraph(stages int, capacity int64) *Graph {
	g := NewGraph("bench")
	prev := g.AddActor("a0", 2)
	for i := 1; i < stages; i++ {
		cur := g.AddActor("a", uint64(1+i%3))
		g.AddBuffer("e", prev, cur, Const(1), Const(1), capacity)
		prev = cur
	}
	return g
}

func BenchmarkSimulateThroughputPipeline(b *testing.B) {
	g := benchGraph(8, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := g.Simulate(SimOptions{DetectPeriod: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Periodic {
			b.Fatal("not periodic")
		}
	}
}

func BenchmarkSimulateLongTrace(b *testing.B) {
	g := benchGraph(4, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Simulate(SimOptions{MaxTime: 100_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepetitions(b *testing.B) {
	g := NewGraph("reps")
	a := g.AddActor("a", 1)
	c := g.AddActor("b", 1)
	d := g.AddActor("c", 1)
	g.AddSDFEdge("ab", a, c, 6, 4, 0)
	g.AddSDFEdge("bc", c, d, 10, 15, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Repetitions(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpandHSDF(b *testing.B) {
	g := NewGraph("exp")
	a := g.AddActor("a", 1)
	c := g.AddActor("b", 2)
	g.AddBuffer("e", a, c, Const(7), Const(3), 21)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.ExpandHSDF(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxCycleRatio(b *testing.B) {
	g := NewGraph("mcr")
	var last ActorID = -1
	var first ActorID
	for i := 0; i < 10; i++ {
		a := g.AddActor("n", uint64(1+i))
		if last >= 0 {
			g.AddSDFEdge("e", last, a, 1, 1, int64(i%2))
		} else {
			first = a
		}
		last = a
	}
	g.AddSDFEdge("back", last, first, 1, 1, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.MaxCycleRatio(); err != nil {
			b.Fatal(err)
		}
	}
}
