package dataflow

import (
	"fmt"
)

// HSDFExpansion is the result of expanding an SDF graph into a Homogeneous
// SDF graph: every actor a is replaced by Repetitions().Firings[a] copies,
// all rates are 1, and inter-copy dependencies carry the appropriate number
// of initial tokens.
type HSDFExpansion struct {
	Graph *Graph
	// Copy[a][k] is the HSDF actor id of the k-th copy of original actor a.
	Copy [][]ActorID
	// Origin[h] maps an HSDF actor back to its original actor.
	Origin []ActorID
	Reps   *RepetitionVector
}

// ExpandHSDF converts a consistent SDF graph (single-phase actors, constant
// rates) into its homogeneous expansion. The paper (§III) notes that this is
// only possible when rates are fixed — a parametric block size prevents it —
// which is exactly why the single-actor SDF abstraction exists. We implement
// the expansion for fixed rates so MCM-style analysis is available as an
// independent cross-check of the simulation-based throughput.
//
// Construction: the k-th copy (k zero-based) of consumer dst in iteration n
// consumes tokens with global (1-based) indices l = (n*q_dst + k)*c + j for
// j = 1..c. Token l is initial when l <= d, otherwise it is emitted by the
// global producer firing m = ceil((l-d)/p). Writing m-1 = i*q_src + r with
// r in [0, q_src), the HSDF dependency runs from copy r of src to copy k of
// dst and carries n-i initial tokens; evaluated at n = 0 this is -i, which
// is non-negative because within one iteration m never exceeds q_src.
// Parallel edges are merged keeping the minimum token count (the tightest
// constraint).
func (g *Graph) ExpandHSDF() (*HSDFExpansion, error) {
	if !g.IsSDF() {
		return nil, fmt.Errorf("dataflow: ExpandHSDF requires a plain SDF graph (got CSDF %q)", g.Name)
	}
	reps, err := g.Repetitions()
	if err != nil {
		return nil, err
	}
	h := NewGraph(g.Name + ".hsdf")
	exp := &HSDFExpansion{Graph: h, Reps: reps}
	exp.Copy = make([][]ActorID, len(g.Actors))
	for a := range g.Actors {
		q := reps.Firings[a]
		exp.Copy[a] = make([]ActorID, q)
		for k := int64(0); k < q; k++ {
			id := h.AddActor(fmt.Sprintf("%s#%d", g.Actors[a].Name, k), g.Actors[a].Duration[0])
			exp.Copy[a][k] = id
			exp.Origin = append(exp.Origin, ActorID(a))
		}
	}
	// Explicit successor edges between consecutive firings of the same actor
	// encode the implicit self-edge (no auto-concurrency): copy k enables
	// copy k+1; the wrap-around edge carries one initial token.
	for a := range g.Actors {
		q := reps.Firings[a]
		for k := int64(0); k < q; k++ {
			next := (k + 1) % q
			init := int64(0)
			if next == k || next == 0 {
				init = 1
			}
			h.AddSDFEdge(fmt.Sprintf("%s.self%d", g.Actors[a].Name, k),
				exp.Copy[a][k], exp.Copy[a][next], 1, 1, init)
		}
	}
	type key struct{ from, to ActorID }
	best := make(map[key]int64)
	for ei := range g.Edges {
		e := &g.Edges[ei]
		p, c, d := e.Prod[0], e.Cons[0], e.Initial
		if p == 0 || c == 0 {
			continue
		}
		qd := reps.Firings[e.Dst]
		qs := reps.Firings[e.Src]
		for k := int64(0); k < qd; k++ {
			for j := int64(1); j <= c; j++ {
				l := k*c + j
				m := ceilDiv(l-d, p) // global producer firing, 1-based; <= 0 when covered by initial tokens
				i := floorDiv(m-1, qs)
				r := (m - 1) - i*qs
				toks := -i
				if toks < 0 {
					return nil, fmt.Errorf("dataflow: internal expansion error on edge %q (m=%d q_src=%d)", e.Name, m, qs)
				}
				kk := key{exp.Copy[e.Src][r], exp.Copy[e.Dst][k]}
				if old, ok := best[kk]; !ok || toks < old {
					best[kk] = toks
				}
			}
		}
	}
	for kk, toks := range best {
		h.AddSDFEdge(fmt.Sprintf("dep.%d.%d", kk.from, kk.to), kk.from, kk.to, 1, 1, toks)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return exp, nil
}

// ceilDiv returns ceil(a/b) for b > 0 and any a.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}

// floorDiv returns floor(a/b) for b > 0 and any a.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b < 0 {
		q--
	}
	return q
}
