package dataflow

import (
	"fmt"
	"math/big"
)

// RepetitionVector holds the smallest positive integer solution of the
// balance equations. Cycles[a] counts complete phase cycles of actor a per
// graph iteration; Firings[a] = Cycles[a] * phases(a) counts individual
// firings.
type RepetitionVector struct {
	Cycles  []int64
	Firings []int64
}

// totalPerCycle returns the number of tokens a port moves during one full
// phase cycle of its actor, honouring broadcast (length-1) quanta.
func totalPerCycle(q Quanta, phases int) int64 {
	if len(q) == 1 {
		return q[0] * int64(phases)
	}
	return q.Sum()
}

// Repetitions solves the CSDF balance equations
//
//	totalProd(e) * cycles(src) == totalCons(e) * cycles(dst)
//
// for every edge e and returns the smallest positive integer solution. The
// graph must be connected and consistent; edges whose total production and
// consumption are both zero impose no constraint.
func (g *Graph) Repetitions() (*RepetitionVector, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.Actors)
	rat := make([]*big.Rat, n)

	// Propagate ratios over a spanning forest, checking consistency on every
	// edge afterwards.
	adj := make([][]EdgeID, n)
	for i := range g.Edges {
		adj[g.Edges[i].Src] = append(adj[g.Edges[i].Src], EdgeID(i))
		adj[g.Edges[i].Dst] = append(adj[g.Edges[i].Dst], EdgeID(i))
	}
	for root := 0; root < n; root++ {
		if rat[root] != nil {
			continue
		}
		rat[root] = big.NewRat(1, 1)
		stack := []int{root}
		for len(stack) > 0 {
			a := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, eid := range adj[a] {
				e := &g.Edges[eid]
				p := totalPerCycle(e.Prod, g.Actors[e.Src].Phases())
				c := totalPerCycle(e.Cons, g.Actors[e.Dst].Phases())
				if p == 0 && c == 0 {
					continue
				}
				if p == 0 || c == 0 {
					return nil, fmt.Errorf("dataflow: edge %q moves tokens on one side only (prod=%d cons=%d)", e.Name, p, c)
				}
				var from, to int
				var ratio *big.Rat // rat[to] = rat[from] * ratio
				if int(e.Src) == a {
					from, to = a, int(e.Dst)
					ratio = big.NewRat(p, c)
				} else {
					from, to = a, int(e.Src)
					ratio = big.NewRat(c, p)
				}
				want := new(big.Rat).Mul(rat[from], ratio)
				if rat[to] == nil {
					rat[to] = want
					stack = append(stack, to)
				} else if rat[to].Cmp(want) != 0 {
					return nil, fmt.Errorf("dataflow: graph %q is inconsistent at edge %q", g.Name, e.Name)
				}
			}
		}
	}

	// Scale to the smallest positive integers: multiply by the lcm of
	// denominators, then divide by the gcd of numerators.
	lcm := big.NewInt(1)
	for _, r := range rat {
		lcm.Div(new(big.Int).Mul(lcm, r.Denom()), new(big.Int).GCD(nil, nil, lcm, r.Denom()))
	}
	ints := make([]*big.Int, n)
	gcd := new(big.Int)
	for i, r := range rat {
		v := new(big.Int).Mul(r.Num(), new(big.Int).Div(lcm, r.Denom()))
		ints[i] = v
		if i == 0 {
			gcd.Set(v)
		} else {
			gcd.GCD(nil, nil, gcd, v)
		}
	}
	rv := &RepetitionVector{Cycles: make([]int64, n), Firings: make([]int64, n)}
	for i, v := range ints {
		q := new(big.Int).Div(v, gcd)
		if !q.IsInt64() {
			return nil, fmt.Errorf("dataflow: repetition count of actor %q overflows int64", g.Actors[i].Name)
		}
		rv.Cycles[i] = q.Int64()
		rv.Firings[i] = q.Int64() * int64(g.Actors[i].Phases())
	}
	return rv, nil
}

// TokensPerIteration returns the number of tokens edge e moves during one
// graph iteration (its production total over one full phase cycle of the
// source, times the source's repetition count). For a consistent graph this
// equals the consumption-side total.
func (g *Graph) TokensPerIteration(rv *RepetitionVector, e EdgeID) int64 {
	ed := &g.Edges[e]
	return totalPerCycle(ed.Prod, g.Actors[ed.Src].Phases()) * rv.Cycles[ed.Src]
}

// IsConsistent reports whether the balance equations have a positive
// solution.
func (g *Graph) IsConsistent() bool {
	_, err := g.Repetitions()
	return err == nil
}
