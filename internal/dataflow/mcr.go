package dataflow

import (
	"errors"
	"fmt"
	"math/big"
)

// ErrZeroTokenCycle is returned when the graph contains a cycle with zero
// initial tokens and positive total duration: such a graph deadlocks (or, as
// a cycle-ratio, the bound is infinite).
var ErrZeroTokenCycle = errors.New("dataflow: zero-token cycle with positive duration (deadlock)")

// MaxCycleRatio computes, over all directed cycles C of the graph
// interpreted as an HSDF graph (rates are ignored; the implicit self-edge is
// NOT added — expansions from ExpandHSDF carry it explicitly):
//
//	λ* = max_C  (Σ_{e∈C} duration(src(e))) / (Σ_{e∈C} initial(e))
//
// λ* is the minimum achievable period per firing of every actor in a
// strongly connected HSDF graph; throughput = 1/λ*. An acyclic graph returns
// 0 (no cycle constrains the rate). A zero-token cycle with positive weight
// yields ErrZeroTokenCycle.
//
// The computation is exact: a rational bisection narrows the answer below
// the minimum gap 1/T² between distinct candidate ratios (T = total tokens),
// after which the unique rational with denominator ≤ T in the bracket is
// recovered.
func (g *Graph) MaxCycleRatio() (*big.Rat, error) {
	n := len(g.Actors)
	type arc struct {
		from, to int
		w        int64 // duration of source actor
		t        int64 // initial tokens
	}
	arcs := make([]arc, 0, len(g.Edges))
	var totalW, totalT int64
	for i := range g.Edges {
		e := &g.Edges[i]
		a := arc{from: int(e.Src), to: int(e.Dst), w: int64(g.Actors[e.Src].Duration[0]), t: e.Initial}
		arcs = append(arcs, a)
		totalW += a.w
		totalT += a.t
	}
	if len(arcs) == 0 || n == 0 {
		return new(big.Rat), nil
	}
	if totalT > 2_000_000 {
		return nil, fmt.Errorf("dataflow: MaxCycleRatio token total %d too large for exact recovery; use Simulate", totalT)
	}

	// hasPositiveCycle reports whether some cycle has Σ(w - λ·t) > 0.
	hasPositiveCycle := func(lambda *big.Rat) bool {
		dist := make([]*big.Rat, n)
		for i := range dist {
			dist[i] = new(big.Rat)
		}
		val := make([]*big.Rat, len(arcs))
		for i, a := range arcs {
			val[i] = new(big.Rat).Sub(new(big.Rat).SetInt64(a.w), new(big.Rat).Mul(lambda, new(big.Rat).SetInt64(a.t)))
		}
		for pass := 0; pass < n; pass++ {
			changed := false
			for i, a := range arcs {
				cand := new(big.Rat).Add(dist[a.from], val[i])
				if cand.Cmp(dist[a.to]) > 0 {
					dist[a.to].Set(cand)
					changed = true
				}
			}
			if !changed {
				return false
			}
		}
		// One more pass: any further relaxation proves a positive cycle.
		for i, a := range arcs {
			cand := new(big.Rat).Add(dist[a.from], val[i])
			if cand.Cmp(dist[a.to]) > 0 {
				return true
			}
		}
		return false
	}

	// Acyclic (token-weighted) graphs: no positive cycle even at λ = -1
	// means no cycle at all contributes; more directly, test λ slightly
	// negative — any cycle (even zero-weight) would be positive. Use λ = -1.
	if !hasPositiveCycle(big.NewRat(-1, 1)) {
		return new(big.Rat), nil
	}
	// Infinite ratio (zero-token positive-weight cycle): at λ = totalW + 1
	// every cycle with ≥1 token has value ≤ totalW - λ < 0, so a remaining
	// positive cycle must have zero tokens.
	if hasPositiveCycle(new(big.Rat).SetInt64(totalW + 1)) {
		return nil, ErrZeroTokenCycle
	}
	if totalT == 0 {
		// Cycles exist but carry no tokens and no weight: ratio 0/0; treat
		// as unconstrained.
		return new(big.Rat), nil
	}

	lo := new(big.Rat)                      // test(lo) may be true (λ* > 0) or false (λ* == 0)
	hi := new(big.Rat).SetInt64(totalW + 1) // test(hi) == false
	if !hasPositiveCycle(lo) {
		// Largest cycle ratio is ≤ 0; with non-negative weights it is 0.
		return new(big.Rat), nil
	}
	// Invariant: test(lo) == true (lo < λ*), test(hi) == false (λ* ≤ hi).
	gap := new(big.Rat).SetFrac64(1, totalT*totalT)
	for new(big.Rat).Sub(hi, lo).Cmp(gap) > 0 {
		mid := new(big.Rat).Add(lo, hi)
		mid.Mul(mid, big.NewRat(1, 2))
		if hasPositiveCycle(mid) {
			lo.Set(mid)
		} else {
			hi.Set(mid)
		}
	}
	// Recover the unique rational with denominator ≤ totalT in (lo, hi].
	for den := int64(1); den <= totalT; den++ {
		num := new(big.Int).Mul(hi.Num(), big.NewInt(den))
		num.Div(num, hi.Denom()) // floor(hi * den)
		cand := new(big.Rat).SetFrac(num, big.NewInt(den))
		if cand.Cmp(lo) > 0 && cand.Cmp(hi) <= 0 {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("dataflow: cycle-ratio recovery failed in (%v, %v]", lo, hi)
}

// ThroughputViaMCR returns the steady-state firing rate of original actor a
// implied by the maximum cycle ratio of the HSDF expansion: each of the q_a
// copies fires once per λ*, so the aggregate rate is q_a / λ*.
func (x *HSDFExpansion) ThroughputViaMCR(a ActorID) (*big.Rat, error) {
	lambda, err := x.Graph.MaxCycleRatio()
	if err != nil {
		return nil, err
	}
	if lambda.Sign() == 0 {
		return nil, errors.New("dataflow: MCR is zero (unconstrained rate); graph has no token-bearing cycle")
	}
	q := new(big.Rat).SetInt64(x.Reps.Firings[a])
	return q.Quo(q, lambda), nil
}
