package dataflow

import (
	"math/big"
	"strings"
	"testing"
)

func TestQuantaHelpers(t *testing.T) {
	q := Repeat(3, 4)
	if len(q) != 4 {
		t.Fatalf("Repeat length = %d, want 4", len(q))
	}
	if q.Sum() != 12 {
		t.Errorf("Sum = %d, want 12", q.Sum())
	}
	if q.At(5) != 3 {
		t.Errorf("At(5) = %d, want 3 (cyclic)", q.At(5))
	}
	c := Const(7)
	if len(c) != 1 || c[0] != 7 {
		t.Errorf("Const(7) = %v", c)
	}
	if got := (Quanta{1, 0, 2}).String(); got != "[1,0,2]" {
		t.Errorf("String = %q", got)
	}
	if got := Const(5).String(); got != "5" {
		t.Errorf("Const String = %q", got)
	}
}

func TestAddActorDefaults(t *testing.T) {
	g := NewGraph("t")
	a := g.AddActor("a")
	if g.Actors[a].Phases() != 1 {
		t.Errorf("default phases = %d, want 1", g.Actors[a].Phases())
	}
	b := g.AddActor("b", 1, 2, 3)
	if g.Actors[b].Phases() != 3 {
		t.Errorf("phases = %d, want 3", g.Actors[b].Phases())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if err := NewGraph("e").Validate(); err == nil {
			t.Fatal("want error for empty graph")
		}
	})
	t.Run("dangling", func(t *testing.T) {
		g := NewGraph("d")
		g.AddActor("a")
		g.Edges = append(g.Edges, Edge{Name: "bad", Src: 0, Dst: 5, Prod: Const(1), Cons: Const(1)})
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "unknown actor") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("negative-init", func(t *testing.T) {
		g := NewGraph("n")
		a := g.AddActor("a")
		g.AddSDFEdge("e", a, a, 1, 1, -1)
		if err := g.Validate(); err == nil {
			t.Fatal("want error for negative initial tokens")
		}
	})
	t.Run("negative-rate", func(t *testing.T) {
		g := NewGraph("n")
		a := g.AddActor("a")
		g.AddEdge("e", a, a, Quanta{-1}, Const(1), 0)
		if err := g.Validate(); err == nil {
			t.Fatal("want error for negative rate")
		}
	})
	t.Run("phase-mismatch", func(t *testing.T) {
		g := NewGraph("p")
		a := g.AddActor("a", 1, 1) // 2 phases
		b := g.AddActor("b")
		g.AddEdge("e", a, b, Quanta{1, 2, 3}, Const(1), 0)
		if err := g.Validate(); err == nil {
			t.Fatal("want error for quanta/phase mismatch")
		}
	})
	t.Run("broadcast-ok", func(t *testing.T) {
		g := NewGraph("b")
		a := g.AddActor("a", 1, 1)
		b := g.AddActor("b")
		g.AddEdge("e", a, b, Const(1), Const(2), 0) // length-1 broadcast to 2 phases
		if err := g.Validate(); err != nil {
			t.Fatalf("broadcast quanta rejected: %v", err)
		}
	})
}

func TestLookupsAndClone(t *testing.T) {
	g := NewGraph("l")
	a := g.AddActor("alpha", 2)
	b := g.AddActor("beta", 3)
	e := g.AddSDFEdge("link", a, b, 2, 3, 1)
	if id, ok := g.ActorByName("beta"); !ok || id != b {
		t.Errorf("ActorByName(beta) = %v %v", id, ok)
	}
	if _, ok := g.ActorByName("nope"); ok {
		t.Error("ActorByName(nope) should fail")
	}
	if id, ok := g.EdgeByName("link"); !ok || id != e {
		t.Errorf("EdgeByName = %v %v", id, ok)
	}
	if _, ok := g.EdgeByName("nope"); ok {
		t.Error("EdgeByName(nope) should fail")
	}
	c := g.Clone()
	c.Actors[0].Name = "mutated"
	c.Edges[0].Initial = 99
	c.Actors[0].Duration[0] = 42
	if g.Actors[0].Name != "alpha" || g.Edges[0].Initial != 1 || g.Actors[0].Duration[0] != 2 {
		t.Error("Clone is not deep")
	}
	if len(g.OutEdges(a)) != 1 || len(g.InEdges(b)) != 1 {
		t.Error("adjacency wrong")
	}
	if !strings.Contains(g.String(), "alpha") {
		t.Error("String missing actor name")
	}
}

func TestIsSDF(t *testing.T) {
	g := NewGraph("s")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 2)
	g.AddSDFEdge("e", a, b, 1, 1, 0)
	if !g.IsSDF() {
		t.Error("plain graph should be SDF")
	}
	g2 := NewGraph("c")
	x := g2.AddActor("x", 1, 2)
	y := g2.AddActor("y", 1)
	g2.AddEdge("e", x, y, Quanta{1, 0}, Const(1), 0)
	if g2.IsSDF() {
		t.Error("multi-phase graph should not be SDF")
	}
}

func TestRepetitionsSDFChain(t *testing.T) {
	// a --2/3--> b : q = (3, 2)
	g := NewGraph("chain")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddSDFEdge("e", a, b, 2, 3, 0)
	rv, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	if rv.Firings[a] != 3 || rv.Firings[b] != 2 {
		t.Errorf("firings = %v, want [3 2]", rv.Firings)
	}
}

func TestRepetitionsCSDF(t *testing.T) {
	// CSDF actor a with phases producing [1,2] (total 3) feeding SDF b
	// consuming 2: 2*cycles(a)*3 == ... balance: 3*qa = 2*qb -> qa=2, qb=3.
	g := NewGraph("csdf")
	a := g.AddActor("a", 1, 1)
	b := g.AddActor("b", 1)
	g.AddEdge("e", a, b, Quanta{1, 2}, Const(2), 0)
	rv, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	if rv.Cycles[a] != 2 || rv.Cycles[b] != 3 {
		t.Errorf("cycles = %v, want [2 3]", rv.Cycles)
	}
	if rv.Firings[a] != 4 { // 2 cycles x 2 phases
		t.Errorf("firings[a] = %d, want 4", rv.Firings[a])
	}
}

func TestRepetitionsInconsistent(t *testing.T) {
	// Triangle with incompatible rates.
	g := NewGraph("bad")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	c := g.AddActor("c", 1)
	g.AddSDFEdge("ab", a, b, 1, 1, 0)
	g.AddSDFEdge("bc", b, c, 1, 1, 0)
	g.AddSDFEdge("ca", c, a, 2, 1, 0)
	if _, err := g.Repetitions(); err == nil {
		t.Fatal("want inconsistency error")
	}
	if g.IsConsistent() {
		t.Error("IsConsistent should be false")
	}
}

func TestRepetitionsMultiComponent(t *testing.T) {
	g := NewGraph("mc")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddSDFEdge("aa", a, a, 1, 1, 1)
	g.AddSDFEdge("bb", b, b, 1, 1, 1)
	rv, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	if rv.Firings[a] != 1 || rv.Firings[b] != 1 {
		t.Errorf("firings = %v", rv.Firings)
	}
}

func TestRepetitionsBroadcastQuanta(t *testing.T) {
	// 2-phase actor with broadcast rate 1 -> total 2 per cycle.
	g := NewGraph("bq")
	a := g.AddActor("a", 1, 1)
	b := g.AddActor("b", 1)
	g.AddEdge("e", a, b, Const(1), Const(1), 0)
	rv, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	// per cycle a moves 2 tokens, b consumes 1: qa=1, qb=2.
	if rv.Cycles[a] != 1 || rv.Cycles[b] != 2 {
		t.Errorf("cycles = %v, want [1 2]", rv.Cycles)
	}
}

func ratEq(r *big.Rat, num, den int64) bool {
	return r != nil && r.Cmp(big.NewRat(num, den)) == 0
}

func TestSimulateTwoActorPipeline(t *testing.T) {
	// a(dur 2) -> b(dur 3), buffer capacity 2. Steady state limited by b:
	// one token every 3 cycles.
	g := NewGraph("pipe")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 3)
	g.AddBuffer("ab", a, b, Const(1), Const(1), 2)
	res, err := g.Simulate(SimOptions{DetectPeriod: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("unexpected deadlock")
	}
	if !res.Periodic {
		t.Fatal("expected periodic steady state")
	}
	if th := res.Throughput(b); !ratEq(th, 1, 3) {
		t.Errorf("throughput(b) = %v, want 1/3", th)
	}
	if th := res.Throughput(a); !ratEq(th, 1, 3) {
		t.Errorf("throughput(a) = %v, want 1/3 (back-pressure)", th)
	}
}

func TestSimulateDeadlock(t *testing.T) {
	// Two actors in a token-free cycle never fire.
	g := NewGraph("dead")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddSDFEdge("ab", a, b, 1, 1, 0)
	g.AddSDFEdge("ba", b, a, 1, 1, 0)
	res, err := g.Simulate(SimOptions{DetectPeriod: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("expected deadlock")
	}
	if th := res.Throughput(a); th.Sign() != 0 {
		t.Errorf("deadlock throughput = %v, want 0", th)
	}
	dl, err := g.Deadlocks(0)
	if err != nil || !dl {
		t.Errorf("Deadlocks = %v, %v", dl, err)
	}
}

func TestSimulatePartialDeadlock(t *testing.T) {
	// One actor runs forever, another deadlocks: not a global deadlock, and
	// the running actor's rate is 1/its duration.
	g := NewGraph("partial")
	a := g.AddActor("a", 4)
	b := g.AddActor("b", 1)
	c := g.AddActor("c", 1)
	g.AddSDFEdge("aa", a, a, 1, 1, 1)
	g.AddSDFEdge("bc", b, c, 1, 1, 0)
	g.AddSDFEdge("cb", c, b, 1, 1, 0)
	res, err := g.Simulate(SimOptions{DetectPeriod: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("graph still has a live actor")
	}
	if th := res.Throughput(a); !ratEq(th, 1, 4) {
		t.Errorf("throughput(a) = %v, want 1/4", th)
	}
	if res.PeriodFirings[b] != 0 {
		t.Errorf("b fired %d times in period, want 0", res.PeriodFirings[b])
	}
}

func TestSimulateNoAutoConcurrency(t *testing.T) {
	// Actor with duration 5 whose input loop carries 3 tokens: without the
	// implicit self-edge it could fire 3 firings concurrently (rate 3/5);
	// with it the rate must be exactly 1/5.
	g := NewGraph("selfedge")
	slow := g.AddActor("slow", 5)
	g.AddSDFEdge("loop", slow, slow, 1, 1, 3)
	res, err := g.Simulate(SimOptions{DetectPeriod: true, MaxEvents: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if th := res.Throughput(slow); !ratEq(th, 1, 5) {
		t.Errorf("throughput(slow) = %v, want 1/5", th)
	}
}

func TestSimulateCSDFPhases(t *testing.T) {
	// CSDF actor with durations [1, 3] and per-phase production [2, 0]:
	// every 4 cycles it completes a cycle producing 2 tokens.
	g := NewGraph("phases")
	a := g.AddActor("a", 1, 3)
	b := g.AddActor("b", 1)
	g.AddBuffer("ab", a, b, Quanta{2, 0}, Const(1), 4)
	res, err := g.Simulate(SimOptions{DetectPeriod: true})
	if err != nil {
		t.Fatal(err)
	}
	if th := res.Throughput(b); !ratEq(th, 2, 4) {
		t.Errorf("throughput(b) = %v, want 1/2", th)
	}
	// a completes 2 firings (both phases) per 4 cycles.
	if th := res.Throughput(a); !ratEq(th, 2, 4) {
		t.Errorf("throughput(a) = %v, want 2/4", th)
	}
}

func TestSimulateTraceAndWatch(t *testing.T) {
	g := NewGraph("trace")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 1)
	e := g.AddSDFEdge("ab", a, b, 1, 1, 0)
	g.AddSDFEdge("ba", b, a, 1, 1, 3)
	res, err := g.Simulate(SimOptions{
		RecordTrace:      true,
		WatchEdges:       []EdgeID{e},
		StopAfterFirings: map[ActorID]int64{b: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	if res.Trace[0].Actor != a || res.Trace[0].Start != 0 || res.Trace[0].End != 2 {
		t.Errorf("first firing = %+v", res.Trace[0])
	}
	if len(res.TokenEvents) < 4 {
		t.Fatalf("token events = %d, want >= 4", len(res.TokenEvents))
	}
	if res.TokenEvents[0].Time != 2 || res.TokenEvents[0].Count != 1 {
		t.Errorf("first token event = %+v", res.TokenEvents[0])
	}
	// a produces every 2 cycles back-to-back: events at 2, 4, 6, ...
	for i, ev := range res.TokenEvents[:4] {
		if want := uint64(2 * (i + 1)); ev.Time != want {
			t.Errorf("event %d at %d, want %d", i, ev.Time, want)
		}
	}
}

func TestSimulateMaxTokens(t *testing.T) {
	// Unbounded edge: source twice as fast as sink; run a fixed horizon and
	// check occupancy tracking.
	g := NewGraph("occ")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 2)
	e := g.AddSDFEdge("ab", a, b, 1, 1, 0)
	g.AddSDFEdge("aa", a, a, 1, 1, 1)
	res, err := g.Simulate(SimOptions{MaxTime: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTokens[e] < 40 {
		t.Errorf("MaxTokens = %d, want ~50", res.MaxTokens[e])
	}
}

func TestSimulateZeroDurationChain(t *testing.T) {
	// Zero-duration actors forward tokens within the same instant.
	g := NewGraph("zero")
	a := g.AddActor("a", 2)
	z1 := g.AddActor("z1", 0)
	z2 := g.AddActor("z2", 0)
	d := g.AddActor("d", 2)
	g.AddSDFEdge("az", a, z1, 1, 1, 0)
	g.AddSDFEdge("zz", z1, z2, 1, 1, 0)
	g.AddSDFEdge("zd", z2, d, 1, 1, 0)
	g.AddSDFEdge("da", d, a, 1, 1, 1)
	res, err := g.Simulate(SimOptions{DetectPeriod: true})
	if err != nil {
		t.Fatal(err)
	}
	if th := res.Throughput(d); !ratEq(th, 1, 4) {
		t.Errorf("throughput(d) = %v, want 1/4", th)
	}
}

func TestSimulateZeroCycleGuard(t *testing.T) {
	// Zero-duration self-sustaining loop with token gain: must be caught.
	g := NewGraph("gain")
	a := g.AddActor("a", 0)
	g.AddSDFEdge("aa", a, a, 2, 1, 1)
	_, err := g.Simulate(SimOptions{})
	if err == nil {
		t.Fatal("want ErrZeroCycle")
	}
}

func TestSimulateMaxTimeStops(t *testing.T) {
	g := NewGraph("mt")
	a := g.AddActor("a", 10)
	g.AddSDFEdge("aa", a, a, 1, 1, 1)
	res, err := g.Simulate(SimOptions{MaxTime: 55})
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings[a] != 6 { // fires at 0,10,20,30,40,50
		t.Errorf("firings = %d, want 6", res.Firings[a])
	}
}

func TestThroughputOfHelper(t *testing.T) {
	g := NewGraph("th")
	a := g.AddActor("a", 7)
	g.AddSDFEdge("aa", a, a, 1, 1, 1)
	th, err := g.ThroughputOf(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ratEq(th, 1, 7) {
		t.Errorf("throughput = %v, want 1/7", th)
	}
}
