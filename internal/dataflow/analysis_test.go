package dataflow

import (
	"math/big"
	"strings"
	"testing"
)

func TestSourceSinkLatency(t *testing.T) {
	// a(2) -> b(3) -> c, bounded; latency of the k-th c-input token from
	// the k-th a-start.
	g := NewGraph("lat")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 3)
	c := g.AddActor("c", 1)
	g.AddBuffer("ab", a, b, Const(1), Const(1), 2)
	out, _ := g.AddBuffer("bc", b, c, Const(1), Const(1), 2)
	lat, err := g.SourceSinkLatency(a, out, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Token 0: a starts 0, b produces at 2+3 = 5 -> latency 5; later tokens
	// throttled by b (period 3) while a works every 3 via back-pressure:
	// latency stays bounded.
	if lat < 5 || lat > 20 {
		t.Errorf("latency = %d, expected small and >= 5", lat)
	}
}

func TestSourceSinkLatencyErrors(t *testing.T) {
	g := NewGraph("dl")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	e := g.AddSDFEdge("ab", a, b, 1, 1, 0)
	g.AddSDFEdge("ba", b, a, 1, 1, 0) // deadlock
	if _, err := g.SourceSinkLatency(a, e, 4); err == nil {
		t.Fatal("deadlocked graph should fail")
	}
}

func TestExtractPeriodicSchedule(t *testing.T) {
	g := NewGraph("sched")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 3)
	g.AddBuffer("ab", a, b, Const(2), Const(3), 7)
	s, err := g.ExtractPeriodicSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if s.Period == 0 {
		t.Fatal("zero period")
	}
	// Firings per period must be proportional to the repetition vector
	// (3, 2).
	counts := s.FiringsPerPeriod()
	if counts[a]*2 != counts[b]*3 {
		t.Errorf("firings %v not proportional to repetitions (3,2)", counts)
	}
	// Throughput from the schedule equals the self-timed throughput.
	res, err := g.Simulate(SimOptions{DetectPeriod: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Throughput(b).Cmp(res.Throughput(b)) != 0 {
		t.Errorf("schedule throughput %v != self-timed %v", s.Throughput(b), res.Throughput(b))
	}
	if err := s.Validate(); err != nil {
		t.Errorf("extracted schedule not admissible: %v", err)
	}
}

func TestExtractPeriodicScheduleDeadlock(t *testing.T) {
	g := NewGraph("dl")
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddSDFEdge("ab", a, b, 1, 1, 0)
	g.AddSDFEdge("ba", b, a, 1, 1, 0)
	if _, err := g.ExtractPeriodicSchedule(); err == nil {
		t.Fatal("deadlock should not yield a schedule")
	}
}

func TestStaticScheduleValidateCatchesBadSchedule(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 2)
	g.AddBuffer("ab", a, b, Const(1), Const(1), 1)
	s, err := g.ExtractPeriodicSchedule()
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: shift a b-firing before its input exists.
	for i := range s.Entries {
		if s.Entries[i].Actor == b {
			s.Entries[i].Offset = 0
		}
	}
	s.Base = 0
	if err := s.Validate(); err == nil {
		t.Fatal("sabotaged schedule validated")
	}
}

func TestAggregatePhasesConservative(t *testing.T) {
	// CSDF actor with 3 phases feeding a consumer; the SDF aggregate must
	// be consistent and SLOWER OR EQUAL (conservative).
	g := NewGraph("csdf")
	a := g.AddActor("a", 1, 2, 1)
	b := g.AddActor("b", 2)
	g.AddBuffer("ab", a, b, Quanta{1, 0, 2}, Const(1), 6)
	agg := g.AggregatePhases()
	if !agg.IsSDF() {
		t.Fatal("aggregate is not SDF")
	}
	if agg.Actors[a].Duration[0] != 4 {
		t.Errorf("aggregate duration = %d, want 4", agg.Actors[a].Duration[0])
	}
	if agg.Edges[0].Prod[0] != 3 {
		t.Errorf("aggregate production = %d, want 3", agg.Edges[0].Prod[0])
	}
	resC, err := g.Simulate(SimOptions{DetectPeriod: true})
	if err != nil {
		t.Fatal(err)
	}
	resS, err := agg.Simulate(SimOptions{DetectPeriod: true})
	if err != nil {
		t.Fatal(err)
	}
	// Compare token rates on the data edge: per-cycle production rate of a.
	// CSDF: 3 tokens per full cycle; SDF: 3 per firing. Rate(csdf) >= rate(sdf).
	csdfRate := new(big.Rat).Mul(resC.Throughput(b), big.NewRat(1, 1))
	sdfRate := resS.Throughput(b)
	if csdfRate.Cmp(sdfRate) < 0 {
		t.Errorf("aggregate faster than detailed model: %v > %v", sdfRate, csdfRate)
	}
}

func TestDOTExport(t *testing.T) {
	g := NewGraph("dot")
	a := g.AddActor("alpha", 2)
	b := g.AddActor("beta", 3)
	g.AddSDFEdge("ab", a, b, 2, 3, 4)
	dot := g.DOT()
	for _, want := range []string{"digraph", "alpha", "beta", "->", "(4)"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
