package dataflow

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// This file collects higher-level analyses on top of the simulator:
// end-to-end latency, static periodic schedule extraction (the "admissible
// schedule constructed at design time" of §III), phase aggregation (the
// CSDF→SDF abstraction step of §V-C as a general transform), and DOT export
// for inspection.

// SourceSinkLatency measures the maximum end-to-end latency over the first
// n tokens: the k-th token production onto edge out is paired with the k-th
// firing start of the source actor. The graph must be live enough to
// produce n tokens.
func (g *Graph) SourceSinkLatency(src ActorID, out EdgeID, n int64) (maxLat uint64, err error) {
	res, err := g.Simulate(SimOptions{
		RecordTrace: true,
		WatchEdges:  []EdgeID{out},
		StopAfterFirings: map[ActorID]int64{
			// The stop condition counts STARTED firings; one extra ensures
			// the n-th production has completed.
			g.Edges[out].Src: n + 1,
		},
		MaxEvents: 50_000_000,
	})
	if err != nil {
		return 0, err
	}
	var starts []uint64
	for _, f := range res.Trace {
		if f.Actor == src {
			starts = append(starts, f.Start)
		}
	}
	var arrivals []uint64
	for _, ev := range res.TokenEvents {
		for k := int64(0); k < ev.Count; k++ {
			arrivals = append(arrivals, ev.Time)
		}
	}
	if int64(len(arrivals)) < n || int64(len(starts)) < n {
		return 0, fmt.Errorf("dataflow: latency needs %d tokens, got %d starts / %d arrivals",
			n, len(starts), len(arrivals))
	}
	for k := int64(0); k < n; k++ {
		if arrivals[k] < starts[k] {
			return 0, fmt.Errorf("dataflow: token %d arrives before its source firing (mispairing)", k)
		}
		if lat := arrivals[k] - starts[k]; lat > maxLat {
			maxLat = lat
		}
	}
	return maxLat, nil
}

// ScheduleEntry is one firing of a static periodic schedule, with the start
// offset within the period.
type ScheduleEntry struct {
	Actor  ActorID
	Phase  int
	Offset uint64
}

// StaticSchedule is a strictly periodic schedule: entry e of iteration n
// starts at Base + n·Period + e.Offset.
type StaticSchedule struct {
	Graph   *Graph
	Base    uint64
	Period  uint64
	Entries []ScheduleEntry
}

// ExtractPeriodicSchedule runs the graph to its periodic steady state and
// returns one period of the self-timed schedule as a static schedule. Since
// the self-timed execution is admissible by construction and the state
// recurs exactly, repeating the extracted window is again admissible — this
// is the design-time schedule construction of §III.
func (g *Graph) ExtractPeriodicSchedule() (*StaticSchedule, error) {
	res, err := g.Simulate(SimOptions{DetectPeriod: true, RecordTrace: true})
	if err != nil {
		return nil, err
	}
	if res.Deadlocked {
		return nil, fmt.Errorf("dataflow: graph deadlocks; no periodic schedule")
	}
	if !res.Periodic {
		return nil, ErrNotPeriodic
	}
	s := &StaticSchedule{Graph: g, Base: res.TransientEnd, Period: res.Period}
	for _, f := range res.Trace {
		if f.Start >= res.TransientEnd && f.Start < res.TransientEnd+res.Period {
			s.Entries = append(s.Entries, ScheduleEntry{Actor: f.Actor, Phase: f.Phase, Offset: f.Start - res.TransientEnd})
		}
	}
	sort.Slice(s.Entries, func(i, j int) bool {
		if s.Entries[i].Offset != s.Entries[j].Offset {
			return s.Entries[i].Offset < s.Entries[j].Offset
		}
		return s.Entries[i].Actor < s.Entries[j].Actor
	})
	return s, nil
}

// FiringsPerPeriod counts the schedule's firings per actor.
func (s *StaticSchedule) FiringsPerPeriod() []int64 {
	counts := make([]int64, len(s.Graph.Actors))
	for _, e := range s.Entries {
		counts[e.Actor]++
	}
	return counts
}

// Throughput returns the schedule's firing rate of actor a.
func (s *StaticSchedule) Throughput(a ActorID) *big.Rat {
	return big.NewRat(s.FiringsPerPeriod()[a], int64(s.Period))
}

// Validate replays two periods of the schedule against token semantics and
// reports an error if any firing would start without sufficient tokens —
// i.e. if the schedule is not admissible.
func (s *StaticSchedule) Validate() error {
	g := s.Graph
	tokens := make([]int64, len(g.Edges))
	phase := make([]int, len(g.Actors))
	for i := range g.Edges {
		tokens[i] = g.Edges[i].Initial
	}
	// Replay the transient self-timed prefix to reach the periodic state.
	res, err := g.Simulate(SimOptions{DetectPeriod: true, RecordTrace: true})
	if err != nil {
		return err
	}
	type ev struct {
		time  uint64
		isEnd bool
		actor ActorID
		phase int
	}
	var evs []ev
	addFiring := func(start, end uint64, a ActorID, p int) {
		evs = append(evs, ev{time: start, actor: a, phase: p})
		evs = append(evs, ev{time: end, isEnd: true, actor: a, phase: p})
	}
	for _, f := range res.Trace {
		if f.Start < s.Base {
			addFiring(f.Start, f.End, f.Actor, f.Phase)
		}
	}
	// Two periods of the static schedule.
	for n := uint64(0); n < 2; n++ {
		for _, e := range s.Entries {
			start := s.Base + n*s.Period + e.Offset
			dur := s.Graph.Actors[e.Actor].Duration[e.Phase%len(s.Graph.Actors[e.Actor].Duration)]
			addFiring(start, start+dur, e.Actor, e.Phase)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].time != evs[j].time {
			return evs[i].time < evs[j].time
		}
		// Productions (ends) before consumptions (starts) at equal times:
		// self-timed semantics allow consuming tokens produced "now".
		return evs[i].isEnd && !evs[j].isEnd
	})
	for _, e := range evs {
		if e.isEnd {
			for _, eid := range g.out[e.actor] {
				tokens[eid] += g.Edges[eid].Prod.At(e.phase)
			}
			continue
		}
		if e.phase != phase[e.actor]%g.Actors[e.actor].Phases() {
			return fmt.Errorf("dataflow: schedule fires %s phase %d, expected %d",
				g.Actors[e.actor].Name, e.phase, phase[e.actor]%g.Actors[e.actor].Phases())
		}
		for _, eid := range g.in[e.actor] {
			need := g.Edges[eid].Cons.At(e.phase)
			if tokens[eid] < need {
				return fmt.Errorf("dataflow: schedule not admissible: %s phase %d at t=%d needs %d tokens on %s, has %d",
					g.Actors[e.actor].Name, e.phase, e.time, need, g.Edges[eid].Name, tokens[eid])
			}
			tokens[eid] -= need
		}
		phase[e.actor]++
	}
	return nil
}

// AggregatePhases returns the SDF abstraction of a CSDF graph: every actor
// is collapsed into a single-phase actor whose duration is the SUM of its
// phase durations and whose rates are the per-cycle totals. Token
// production moves to the end of the whole cycle, so by the-earlier-the-
// better the original CSDF graph refines the aggregate (§V-C's reasoning,
// applied per actor). The mapping of actor ids is the identity.
func (g *Graph) AggregatePhases() *Graph {
	agg := NewGraph(g.Name + ".sdf")
	for i := range g.Actors {
		var total uint64
		for _, d := range g.Actors[i].Duration {
			total += d
		}
		agg.AddActor(g.Actors[i].Name, total)
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		p := totalPerCycle(e.Prod, g.Actors[e.Src].Phases())
		c := totalPerCycle(e.Cons, g.Actors[e.Dst].Phases())
		agg.AddSDFEdge(e.Name, e.Src, e.Dst, p, c, e.Initial)
	}
	return agg
}

// DOT renders the graph in Graphviz dot syntax for inspection.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", g.Name)
	for i, a := range g.Actors {
		fmt.Fprintf(&b, "  n%d [label=\"%s\\nρ=%v\" shape=circle];\n", i, a.Name, a.Duration)
	}
	for _, e := range g.Edges {
		style := ""
		if e.Initial > 0 {
			style = fmt.Sprintf(" label=\"%s/%s (%d)\"", e.Prod, e.Cons, e.Initial)
		} else {
			style = fmt.Sprintf(" label=\"%s/%s\"", e.Prod, e.Cons)
		}
		fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.Src, e.Dst, strings.TrimSpace(style))
	}
	b.WriteString("}\n")
	return b.String()
}
