// Package dataflow implements Synchronous Data Flow (SDF) and Cyclo-Static
// Data Flow (CSDF) graphs together with the temporal analyses the paper's
// accelerator-sharing models are built on: repetition vectors, self-timed
// execution with exact throughput extraction, HSDF expansion and maximum
// cycle ratio analysis.
//
// Conventions (paper §V-A):
//
//   - Every actor has an implicit self-edge carrying one token, so firings of
//     one actor never overlap (no auto-concurrency).
//   - Tokens are consumed at firing start and produced at firing end.
//   - A CSDF actor cycles through its phases; quanta and firing durations are
//     per-phase lists. An SDF actor is a CSDF actor with one phase.
//   - Bounded buffers are modelled as a forward edge plus a back edge whose
//     initial tokens equal the buffer capacity.
package dataflow

import (
	"errors"
	"fmt"
	"strings"
)

// ActorID identifies an actor within one Graph. IDs are dense indices
// assigned by AddActor in insertion order.
type ActorID int

// EdgeID identifies an edge within one Graph, dense in insertion order.
type EdgeID int

// Quanta is a cyclic per-phase rate list. A firing in phase p consumes or
// produces Quanta[p mod len] tokens. Rates may be zero (a phase that does not
// touch the port) but never negative.
type Quanta []int64

// Sum returns the number of tokens moved by one full cycle through all
// phases.
func (q Quanta) Sum() int64 {
	var s int64
	for _, v := range q {
		s += v
	}
	return s
}

// At returns the rate for phase p, treating the list as cyclic.
func (q Quanta) At(p int) int64 {
	return q[p%len(q)]
}

// Repeat returns a Quanta of n copies of v. It is a convenience for uniform
// CSDF phase lists such as the paper's "ηs × 1" notation.
func Repeat(v int64, n int) Quanta {
	q := make(Quanta, n)
	for i := range q {
		q[i] = v
	}
	return q
}

// Const is shorthand for a single-phase (SDF) rate.
func Const(v int64) Quanta { return Quanta{v} }

func (q Quanta) String() string {
	if len(q) == 1 {
		return fmt.Sprintf("%d", q[0])
	}
	parts := make([]string, len(q))
	for i, v := range q {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Actor is a CSDF actor. Duration holds the firing duration of each phase in
// abstract time units (clock cycles throughout this repository). The number
// of phases of the actor is len(Duration); all quanta lists on adjacent
// edges must have the same length (or length 1, which is broadcast).
type Actor struct {
	Name     string
	Duration []uint64
}

// Phases returns the number of CSDF phases of the actor.
func (a *Actor) Phases() int { return len(a.Duration) }

// Edge is a directed token queue between two actors. Initial is the number
// of tokens present before execution starts.
type Edge struct {
	Name    string
	Src     ActorID
	Dst     ActorID
	Prod    Quanta // indexed by the producer's phase
	Cons    Quanta // indexed by the consumer's phase
	Initial int64
}

// Graph is an SDF/CSDF graph under construction or analysis. The zero value
// is an empty graph ready for AddActor/AddEdge.
type Graph struct {
	Name   string
	Actors []Actor
	Edges  []Edge

	// in[a] and out[a] list edge ids incident to actor a. Maintained by
	// AddEdge; rebuilt by Validate if nil (e.g. after manual construction).
	in, out [][]EdgeID
}

// NewGraph returns an empty named graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name}
}

// AddActor appends an actor with the given per-phase firing durations and
// returns its id. At least one phase is required.
func (g *Graph) AddActor(name string, durations ...uint64) ActorID {
	if len(durations) == 0 {
		durations = []uint64{0}
	}
	g.Actors = append(g.Actors, Actor{Name: name, Duration: durations})
	g.in = append(g.in, nil)
	g.out = append(g.out, nil)
	return ActorID(len(g.Actors) - 1)
}

// AddEdge connects src to dst with the given production and consumption
// quanta and initial tokens, returning the edge id.
func (g *Graph) AddEdge(name string, src, dst ActorID, prod, cons Quanta, initial int64) EdgeID {
	id := EdgeID(len(g.Edges))
	g.Edges = append(g.Edges, Edge{Name: name, Src: src, Dst: dst, Prod: prod, Cons: cons, Initial: initial})
	g.out[src] = append(g.out[src], id)
	g.in[dst] = append(g.in[dst], id)
	return id
}

// AddSDFEdge is AddEdge with single-phase rates.
func (g *Graph) AddSDFEdge(name string, src, dst ActorID, prod, cons int64, initial int64) EdgeID {
	return g.AddEdge(name, src, dst, Const(prod), Const(cons), initial)
}

// AddBuffer models a bounded FIFO of the given capacity between src and dst:
// a forward edge with initial tokens of 0 and a back edge initialised to the
// capacity. It returns the forward and back edge ids.
func (g *Graph) AddBuffer(name string, src, dst ActorID, prod, cons Quanta, capacity int64) (fwd, back EdgeID) {
	fwd = g.AddEdge(name, src, dst, prod, cons, 0)
	back = g.AddEdge(name+".space", dst, src, cons, prod, capacity)
	return fwd, back
}

// InEdges returns the ids of edges whose destination is a.
func (g *Graph) InEdges(a ActorID) []EdgeID { return g.in[a] }

// OutEdges returns the ids of edges whose source is a.
func (g *Graph) OutEdges(a ActorID) []EdgeID { return g.out[a] }

// ActorByName returns the id of the first actor with the given name.
func (g *Graph) ActorByName(name string) (ActorID, bool) {
	for i := range g.Actors {
		if g.Actors[i].Name == name {
			return ActorID(i), true
		}
	}
	return -1, false
}

// EdgeByName returns the id of the first edge with the given name.
func (g *Graph) EdgeByName(name string) (EdgeID, bool) {
	for i := range g.Edges {
		if g.Edges[i].Name == name {
			return EdgeID(i), true
		}
	}
	return -1, false
}

// Errors returned by Validate.
var (
	ErrEmptyGraph   = errors.New("dataflow: graph has no actors")
	ErrBadQuanta    = errors.New("dataflow: quanta list length does not match actor phase count")
	ErrNegativeRate = errors.New("dataflow: negative rate")
	ErrNegativeInit = errors.New("dataflow: negative initial tokens")
	ErrDangling     = errors.New("dataflow: edge references unknown actor")
	ErrNoPhases     = errors.New("dataflow: actor has no phases")
)

// Validate checks structural well-formedness: every edge connects existing
// actors, quanta lengths match (or broadcast from length 1 to) the adjacent
// actor's phase count, and no rate or initial marking is negative.
func (g *Graph) Validate() error {
	if len(g.Actors) == 0 {
		return ErrEmptyGraph
	}
	for i := range g.Actors {
		if len(g.Actors[i].Duration) == 0 {
			return fmt.Errorf("%w: actor %q", ErrNoPhases, g.Actors[i].Name)
		}
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Src < 0 || int(e.Src) >= len(g.Actors) || e.Dst < 0 || int(e.Dst) >= len(g.Actors) {
			return fmt.Errorf("%w: edge %q", ErrDangling, e.Name)
		}
		if e.Initial < 0 {
			return fmt.Errorf("%w: edge %q", ErrNegativeInit, e.Name)
		}
		if err := checkQuanta(e.Prod, g.Actors[e.Src].Phases(), e.Name, "prod"); err != nil {
			return err
		}
		if err := checkQuanta(e.Cons, g.Actors[e.Dst].Phases(), e.Name, "cons"); err != nil {
			return err
		}
	}
	g.rebuildAdjacency()
	return nil
}

func checkQuanta(q Quanta, phases int, edge, side string) error {
	if len(q) != 1 && len(q) != phases {
		return fmt.Errorf("%w: edge %q %s has %d entries, actor has %d phases", ErrBadQuanta, edge, side, len(q), phases)
	}
	for _, v := range q {
		if v < 0 {
			return fmt.Errorf("%w: edge %q %s", ErrNegativeRate, edge, side)
		}
	}
	return nil
}

func (g *Graph) rebuildAdjacency() {
	g.in = make([][]EdgeID, len(g.Actors))
	g.out = make([][]EdgeID, len(g.Actors))
	for i := range g.Edges {
		g.out[g.Edges[i].Src] = append(g.out[g.Edges[i].Src], EdgeID(i))
		g.in[g.Edges[i].Dst] = append(g.in[g.Edges[i].Dst], EdgeID(i))
	}
}

// Clone returns a deep copy of the graph; mutations of the copy do not
// affect the original.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name}
	c.Actors = make([]Actor, len(g.Actors))
	for i, a := range g.Actors {
		c.Actors[i] = Actor{Name: a.Name, Duration: append([]uint64(nil), a.Duration...)}
	}
	c.Edges = make([]Edge, len(g.Edges))
	for i, e := range g.Edges {
		c.Edges[i] = Edge{
			Name: e.Name, Src: e.Src, Dst: e.Dst,
			Prod: append(Quanta(nil), e.Prod...), Cons: append(Quanta(nil), e.Cons...),
			Initial: e.Initial,
		}
	}
	c.rebuildAdjacency()
	return c
}

// IsSDF reports whether every actor has exactly one phase and every quanta
// list is constant, i.e. the graph is plain SDF.
func (g *Graph) IsSDF() bool {
	for i := range g.Actors {
		if g.Actors[i].Phases() != 1 {
			return false
		}
	}
	for i := range g.Edges {
		if len(g.Edges[i].Prod) != 1 || len(g.Edges[i].Cons) != 1 {
			return false
		}
	}
	return true
}

// String renders a compact human-readable description of the graph.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s\n", g.Name)
	for i, a := range g.Actors {
		fmt.Fprintf(&b, "  actor %d %s dur=%v\n", i, a.Name, a.Duration)
	}
	for i, e := range g.Edges {
		fmt.Fprintf(&b, "  edge %d %s: %s -%s/%s-> %s init=%d\n",
			i, e.Name, g.Actors[e.Src].Name, e.Prod, e.Cons, g.Actors[e.Dst].Name, e.Initial)
	}
	return b.String()
}
