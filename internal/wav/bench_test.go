package wav

import (
	"bytes"
	"testing"
)

func BenchmarkWriteStereo(b *testing.B) {
	l := make([]int32, 44100)
	r := make([]int32, 44100)
	b.SetBytes(int64(len(l) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteStereo(&buf, l, r, 44100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteStereo(&buf, make([]int32, 44100), make([]int32, 44100), 44100); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
