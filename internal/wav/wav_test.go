package wav

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := []int32{0, 100, -100, 32767, -32768, 40000, -40000}
	r := []int32{1, 2, 3, 4, 5, 6, 7}
	if err := WriteStereo(&buf, l, r, 44100); err != nil {
		t.Fatal(err)
	}
	a, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rate != 44100 || a.Channels != 2 || a.Frames() != 7 {
		t.Fatalf("meta = %+v", a)
	}
	want := []int16{0, 100, -100, 32767, -32768, 32767, -32768}
	for i, w := range want {
		if a.Samples[2*i] != w {
			t.Errorf("frame %d L = %d, want %d", i, a.Samples[2*i], w)
		}
		if a.Samples[2*i+1] != int16(r[i]) {
			t.Errorf("frame %d R = %d, want %d", i, a.Samples[2*i+1], r[i])
		}
	}
}

func TestWriteStereoTruncatesToShorter(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStereo(&buf, make([]int32, 10), make([]int32, 4), 8000); err != nil {
		t.Fatal(err)
	}
	a, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Frames() != 4 {
		t.Errorf("frames = %d, want 4", a.Frames())
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Audio{Rate: 0, Channels: 1}); err == nil {
		t.Error("zero rate accepted")
	}
	if err := Write(&buf, &Audio{Rate: 8000, Channels: 0}); err == nil {
		t.Error("zero channels accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a wav file at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty accepted")
	}
}

func TestReadSkipsUnknownChunks(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStereo(&buf, []int32{1, 2}, []int32{3, 4}, 8000); err != nil {
		t.Fatal(err)
	}
	// Splice a LIST chunk between fmt and data.
	b := buf.Bytes()
	var out bytes.Buffer
	out.Write(b[:36]) // RIFF header + fmt chunk
	out.Write([]byte{'L', 'I', 'S', 'T', 4, 0, 0, 0, 'I', 'N', 'F', 'O'})
	out.Write(b[36:])
	// Fix the RIFF size (not strictly checked by our reader, but keep it
	// coherent).
	a, err := Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if a.Frames() != 2 {
		t.Errorf("frames = %d", a.Frames())
	}
}

func TestClip16(t *testing.T) {
	f := func(v int32) bool {
		c := Clip16(v)
		if v > 32767 {
			return c == 32767
		}
		if v < -32768 {
			return c == -32768
		}
		return int32(c) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonoRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	a := &Audio{Rate: 16000, Channels: 1, Samples: []int16{1, -1, 1000, -1000}}
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Channels != 1 || got.Frames() != 4 {
		t.Fatalf("got %+v", got)
	}
	for i := range a.Samples {
		if got.Samples[i] != a.Samples[i] {
			t.Fatalf("sample %d: %d != %d", i, got.Samples[i], a.Samples[i])
		}
	}
}
