// Package wav reads and writes 16-bit PCM RIFF/WAVE files — just enough
// for the PAL demonstrator to emit listenable stereo audio and for tests to
// round-trip it. Stdlib only.
package wav

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Audio is decoded 16-bit PCM content.
type Audio struct {
	Rate     int
	Channels int
	// Samples is interleaved frames: len = frames × Channels.
	Samples []int16
}

// Frames returns the frame count.
func (a *Audio) Frames() int {
	if a.Channels == 0 {
		return 0
	}
	return len(a.Samples) / a.Channels
}

// WriteStereo encodes two int32 channels (clipped to 16 bits) at the given
// rate.
func WriteStereo(w io.Writer, l, r []int32, rate int) error {
	n := len(l)
	if len(r) < n {
		n = len(r)
	}
	samples := make([]int16, 0, 2*n)
	for i := 0; i < n; i++ {
		samples = append(samples, Clip16(l[i]), Clip16(r[i]))
	}
	return Write(w, &Audio{Rate: rate, Channels: 2, Samples: samples})
}

// Write encodes the audio as a canonical 44-byte-header WAVE file.
func Write(w io.Writer, a *Audio) error {
	if a.Channels < 1 || a.Channels > 8 {
		return fmt.Errorf("wav: %d channels unsupported", a.Channels)
	}
	if a.Rate <= 0 {
		return fmt.Errorf("wav: rate %d invalid", a.Rate)
	}
	dataLen := uint32(len(a.Samples) * 2)
	blockAlign := uint16(a.Channels * 2)
	hdr := make([]byte, 0, 44)
	put := func(b ...byte) { hdr = append(hdr, b...) }
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		put(b[:]...)
	}
	put16 := func(v uint16) {
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], v)
		put(b[:]...)
	}
	put([]byte("RIFF")...)
	put32(36 + dataLen)
	put([]byte("WAVE")...)
	put([]byte("fmt ")...)
	put32(16)
	put16(1) // PCM
	put16(uint16(a.Channels))
	put32(uint32(a.Rate))
	put32(uint32(a.Rate) * uint32(blockAlign))
	put16(blockAlign)
	put16(16)
	put([]byte("data")...)
	put32(dataLen)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 2*len(a.Samples))
	for i, s := range a.Samples {
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(s))
	}
	_, err := w.Write(buf)
	return err
}

// Read decodes a 16-bit PCM WAVE stream (canonical chunk layout; unknown
// chunks before "data" are skipped).
func Read(r io.Reader) (*Audio, error) {
	var riff [12]byte
	if _, err := io.ReadFull(r, riff[:]); err != nil {
		return nil, fmt.Errorf("wav: %w", err)
	}
	if string(riff[0:4]) != "RIFF" || string(riff[8:12]) != "WAVE" {
		return nil, fmt.Errorf("wav: not a RIFF/WAVE stream")
	}
	a := &Audio{}
	sawFmt := false
	for {
		var ch [8]byte
		if _, err := io.ReadFull(r, ch[:]); err != nil {
			return nil, fmt.Errorf("wav: truncated chunk header: %w", err)
		}
		id := string(ch[0:4])
		size := binary.LittleEndian.Uint32(ch[4:8])
		switch id {
		case "fmt ":
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, err
			}
			if len(body) < 16 {
				return nil, fmt.Errorf("wav: short fmt chunk")
			}
			if f := binary.LittleEndian.Uint16(body[0:2]); f != 1 {
				return nil, fmt.Errorf("wav: format %d unsupported (PCM only)", f)
			}
			a.Channels = int(binary.LittleEndian.Uint16(body[2:4]))
			a.Rate = int(binary.LittleEndian.Uint32(body[4:8]))
			if bits := binary.LittleEndian.Uint16(body[14:16]); bits != 16 {
				return nil, fmt.Errorf("wav: %d-bit samples unsupported", bits)
			}
			sawFmt = true
		case "data":
			if !sawFmt {
				return nil, fmt.Errorf("wav: data before fmt chunk")
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, err
			}
			a.Samples = make([]int16, size/2)
			for i := range a.Samples {
				a.Samples[i] = int16(binary.LittleEndian.Uint16(body[2*i:]))
			}
			return a, nil
		default:
			if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
				return nil, err
			}
		}
	}
}

// Clip16 saturates a 32-bit sample to 16 bits.
func Clip16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}
