package cfifo

import (
	"testing"

	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

func setup(t *testing.T, capacity, ackBatch int) (*sim.Kernel, *FIFO) {
	t.Helper()
	k := sim.NewKernel()
	net, err := ring.NewDual(k, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(k, net, Config{
		Name: "t", Capacity: capacity,
		ProducerNode: 0, ConsumerNode: 2,
		DataPort: 1, AckPort: 1,
		AckBatch: ackBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, f
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	net, _ := ring.NewDual(k, 2, 1)
	if _, err := New(k, net, Config{Name: "bad", Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(k, net, Config{Name: "bad", Capacity: 2, AckBatch: 5}); err == nil {
		t.Error("ack batch > capacity accepted")
	}
}

// mustWrite writes a word, draining ring events between attempts (the ring
// injection buffer legitimately backpressures bursts).
func mustWrite(t *testing.T, k *sim.Kernel, f *FIFO, w sim.Word) {
	t.Helper()
	for try := 0; try < 100; try++ {
		if f.TryWrite(w) {
			return
		}
		k.RunAll()
	}
	t.Fatalf("write %d never accepted", w)
}

func TestWriteReadRoundTrip(t *testing.T) {
	k, f := setup(t, 8, 1)
	for i := 0; i < 5; i++ {
		mustWrite(t, k, f, sim.Word(100+i))
	}
	k.RunAll()
	if f.Len() != 5 {
		t.Fatalf("consumer sees %d words", f.Len())
	}
	for i := 0; i < 5; i++ {
		w, ok := f.TryRead()
		if !ok || w != sim.Word(100+i) {
			t.Fatalf("read %d = %d %v", i, w, ok)
		}
	}
	if _, ok := f.TryRead(); ok {
		t.Fatal("read from empty succeeded")
	}
}

func TestProducerRespectsCapacity(t *testing.T) {
	k, f := setup(t, 3, 1)
	accepted := 0
	for i := 0; i < 10; i++ {
		if f.TryWrite(sim.Word(i)) {
			accepted++
		}
		k.RunAll()
	}
	if accepted != 3 {
		t.Fatalf("accepted %d writes into capacity-3 FIFO without reads", accepted)
	}
	if f.Space() != 0 {
		t.Errorf("space = %d, want 0", f.Space())
	}
}

func TestSpaceReturnsAfterRead(t *testing.T) {
	k, f := setup(t, 2, 1)
	f.TryWrite(1)
	f.TryWrite(2)
	k.RunAll()
	if f.Space() != 0 {
		t.Fatalf("space = %d", f.Space())
	}
	f.TryRead()
	k.RunAll() // ack travels back
	if f.Space() != 1 {
		t.Fatalf("space after read+ack = %d, want 1", f.Space())
	}
	if !f.TryWrite(3) {
		t.Fatal("write rejected despite freed space")
	}
}

func TestAckBatching(t *testing.T) {
	k, f := setup(t, 8, 4)
	for i := 0; i < 8; i++ {
		mustWrite(t, k, f, sim.Word(i))
	}
	k.RunAll()
	for i := 0; i < 3; i++ {
		f.TryRead()
	}
	k.RunAll()
	if f.AckMessages != 0 {
		t.Fatalf("acks sent before batch complete: %d", f.AckMessages)
	}
	if f.Space() != 0 {
		t.Fatalf("space leaked without ack: %d", f.Space())
	}
	f.TryRead() // 4th read triggers the batched ack
	k.RunAll()
	if f.AckMessages != 1 {
		t.Fatalf("acks = %d, want 1", f.AckMessages)
	}
	if f.Space() != 4 {
		t.Fatalf("space = %d, want 4", f.Space())
	}
}

func TestExplicitAckFlush(t *testing.T) {
	k, f := setup(t, 8, 8)
	for i := 0; i < 4; i++ {
		f.TryWrite(sim.Word(i))
	}
	k.RunAll()
	f.TryRead()
	f.TryRead()
	k.RunAll()
	if f.Space() != 4 {
		t.Fatalf("premature space: %d", f.Space())
	}
	f.Ack()
	k.RunAll()
	if f.Space() != 6 {
		t.Fatalf("space after explicit ack = %d, want 6", f.Space())
	}
}

func TestSubscriptions(t *testing.T) {
	k, f := setup(t, 2, 1)
	dataWakes, spaceWakes := 0, 0
	f.SubscribeData(sim.NewWaker(k, func() { dataWakes++ }))
	f.SubscribeSpace(sim.NewWaker(k, func() { spaceWakes++ }))
	f.TryWrite(7)
	k.RunAll()
	if dataWakes != 1 {
		t.Errorf("data wakes = %d", dataWakes)
	}
	f.TryRead()
	k.RunAll()
	if spaceWakes != 1 {
		t.Errorf("space wakes = %d", spaceWakes)
	}
}

func TestManySimultaneousFIFOs(t *testing.T) {
	// The C-FIFO selling point: arbitrary numbers of software FIFOs between
	// the same pair of tiles, no hardware flow control.
	k := sim.NewKernel()
	net, _ := ring.NewDual(k, 4, 1)
	var fifos []*FIFO
	for i := 0; i < 10; i++ {
		f, err := New(k, net, Config{
			Name: "m", Capacity: 4,
			ProducerNode: 0, ConsumerNode: 2,
			DataPort: 10 + i, AckPort: 10 + i,
		})
		if err != nil {
			t.Fatal(err)
		}
		fifos = append(fifos, f)
	}
	for round := 0; round < 4; round++ {
		for i, f := range fifos {
			for !f.TryWrite(sim.Word(i*100 + round)) {
				k.RunAll()
			}
		}
	}
	k.RunAll()
	for i, f := range fifos {
		for round := 0; round < 4; round++ {
			w, ok := f.TryRead()
			if !ok || w != sim.Word(i*100+round) {
				t.Fatalf("fifo %d round %d: %d %v", i, round, w, ok)
			}
		}
	}
}

func TestThroughputOverRing(t *testing.T) {
	// Pipelined producer/consumer: with capacity 8 and ack batch 1, the
	// FIFO should sustain roughly one word per slot period.
	k, f := setup(t, 8, 1)
	const total = 200
	sent, received := 0, 0
	var prod, cons *sim.Waker
	prod = sim.NewWaker(k, func() {
		for sent < total && f.TryWrite(sim.Word(sent)) {
			sent++
		}
	})
	cons = sim.NewWaker(k, func() {
		for {
			if _, ok := f.TryRead(); !ok {
				break
			}
			received++
		}
	})
	f.SubscribeSpace(prod)
	f.SubscribeData(cons)
	prod.Wake()
	k.RunAll()
	if received != total {
		t.Fatalf("received %d of %d", received, total)
	}
	// 200 words over a 2-hop path with full-rate slots: must finish well
	// under 10 cycles/word.
	if k.Now() > total*10 {
		t.Errorf("took %d cycles for %d words", k.Now(), total)
	}
}
