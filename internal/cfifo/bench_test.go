package cfifo

import (
	"testing"

	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

func BenchmarkWordThroughput(b *testing.B) {
	k := sim.NewKernel()
	net, err := ring.NewDual(k, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	f, err := New(k, net, Config{
		Name: "b", Capacity: 64,
		ProducerNode: 0, ConsumerNode: 2,
		DataPort: 1, AckPort: 1, AckBatch: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	sent, recv := 0, 0
	var prod, cons *sim.Waker
	prod = sim.NewWaker(k, func() {
		for sent < b.N && f.TryWrite(sim.Word(sent)) {
			sent++
		}
	})
	cons = sim.NewWaker(k, func() {
		for {
			if _, ok := f.TryRead(); !ok {
				break
			}
			recv++
		}
	})
	f.SubscribeSpace(prod)
	f.SubscribeData(cons)
	b.ReportAllocs()
	b.ResetTimer()
	prod.Wake()
	k.RunAll()
	for recv < b.N {
		prod.Wake()
		k.RunAll()
	}
}
