package cfifo

import (
	"testing"

	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

// TestCFIFOZeroAllocBursts backs the //accellint:noalloc annotations on
// WriteBurst and ReadBurst: in the steady state — injection ring sized,
// flight and event pools at their high-water marks, wakers constructed —
// moving a block producer→ring→consumer and acking it back allocates
// nothing. (The flushAck retry closure is the known exception and only
// fires when the ring refuses an injection, which the kernel drain between
// bursts prevents here.)
func TestCFIFOZeroAllocBursts(t *testing.T) {
	k := sim.NewKernel()
	net, err := ring.NewDual(k, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(k, net, Config{
		Name: "z", Capacity: 64, ProducerNode: 0, ConsumerNode: 2,
		DataPort: 1, AckPort: 2, AckBatch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SubscribeData(sim.NewWaker(k, func() {}))
	f.SubscribeSpace(sim.NewWaker(k, func() {}))
	var block [16]sim.Word
	for i := range block {
		block[i] = sim.Word(i)
	}
	move := func() {
		sent := 0
		for sent < len(block) {
			n := f.WriteBurst(block[sent:])
			sent += n
			k.RunAll() // drain ring + acks so injections never stall
		}
		read := 0
		for read < len(block) {
			read += f.ReadBurst(block[:])
			k.RunAll()
		}
	}
	move() // cold start: pools, wakers, lazy buffers
	move()
	if a := testing.AllocsPerRun(200, move); a != 0 {
		t.Fatalf("steady-state Write/ReadBurst allocates %v/op, want 0", a)
	}
}
