// Package cfifo implements the C-FIFO software FIFO algorithm (Gangwal,
// Nieuwland, Lippens — ISSS'01) used by the paper's processor tiles: a
// circular buffer living in the consumer's local memory, with producer and
// consumer each holding a local copy of the counterpart's counter. The
// producer pushes data words and counter updates through the interconnect
// as posted writes; no hardware flow control is involved, which is exactly
// why an arbitrary number of software FIFOs can coexist between processor
// tiles.
//
// The implementation is a transaction-level model on the dual-ring
// interconnect: data and write-counter updates travel the data ring from
// producer to consumer; read-counter updates travel the data ring from
// consumer to producer (they are ordinary posted writes, not hardware
// credits).
package cfifo

import (
	"fmt"

	"accelshare/internal/ring"
	"accelshare/internal/sim"
)

// Config describes one C-FIFO channel.
type Config struct {
	Name string
	// Capacity is the buffer size in words at the consumer tile.
	Capacity int
	// ProducerNode and ConsumerNode are ring attachment indices.
	ProducerNode, ConsumerNode int
	// DataPort is the consumer-side ring port for data+write-counter
	// deliveries; AckPort is the producer-side port for read-counter
	// updates. Ports must be unique per node.
	DataPort, AckPort int
	// AckBatch is how many words the consumer reads between read-counter
	// updates (1 = update after every word; larger batches reduce ring
	// traffic at the cost of later space release). Default 1.
	AckBatch int
}

// FIFO is one software FIFO. Producer methods must only be called from the
// producer tile's context and consumer methods from the consumer's; the
// simulation is single-threaded so this is a modelling convention, not a
// synchronisation requirement.
type FIFO struct {
	cfg Config
	k   *sim.Kernel
	net *ring.Dual

	// Producer-side state.
	writeCount uint64 // samples sent (producer local)
	readCopy   uint64 // producer's copy of the consumer's read counter
	spaceSubs  []*sim.Waker

	// Consumer-side state.
	buf             *sim.Queue
	readCount       uint64 // samples consumed (consumer local)
	unacked         int
	ackRetryPending bool
	dataSubs        []*sim.Waker

	// Repoint state (chain failover): repointing gates the producer while
	// an endpoint moves; dataNodes/ackNodes remember which ring nodes
	// already carry this FIFO's bindings, so failing back to a previously
	// used node does not bind the port twice.
	repointing bool
	dataNodes  map[int]bool
	ackNodes   map[int]bool

	// Stats.
	AckMessages uint64
}

// New wires a C-FIFO onto the interconnect.
func New(k *sim.Kernel, net *ring.Dual, cfg Config) (*FIFO, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("cfifo %q: capacity must be >= 1", cfg.Name)
	}
	if cfg.AckBatch <= 0 {
		cfg.AckBatch = 1
	}
	if cfg.AckBatch > cfg.Capacity {
		return nil, fmt.Errorf("cfifo %q: ack batch %d exceeds capacity %d (space would never return)",
			cfg.Name, cfg.AckBatch, cfg.Capacity)
	}
	f := &FIFO{
		cfg: cfg, k: k, net: net,
		dataNodes: map[int]bool{}, ackNodes: map[int]bool{},
	}
	f.buf = sim.NewQueue(cfg.Name+".buf", cfg.Capacity)
	f.bindData(cfg.ConsumerNode)
	f.bindAck(cfg.ProducerNode)
	return f, nil
}

// bindData installs the consumer-side delivery handler on a ring node.
// Data arriving at the consumer tile is guaranteed acceptance — the
// producer never sends beyond the space it observed, so the local buffer
// cannot overflow.
func (f *FIFO) bindData(node int) {
	if f.dataNodes[node] {
		return
	}
	f.dataNodes[node] = true
	f.net.Data.Node(node).Bind(f.cfg.DataPort, func(m ring.Message) {
		if !f.buf.TryPush(m.W) {
			panic(fmt.Sprintf("cfifo %q: buffer overflow — flow-control algorithm violated", f.cfg.Name))
		}
		for _, w := range f.dataSubs {
			w.Wake()
		}
	})
}

// bindAck installs the producer-side read-counter handler on a ring node.
// The counter is absolute and the update monotonic-guarded, so an ack
// arriving at a superseded node (after a repoint) is still applied safely.
func (f *FIFO) bindAck(node int) {
	if f.ackNodes[node] {
		return
	}
	f.ackNodes[node] = true
	f.net.Data.Node(node).Bind(f.cfg.AckPort, func(m ring.Message) {
		if uint64(m.W) > f.readCopy {
			f.readCopy = uint64(m.W)
			for _, w := range f.spaceSubs {
				w.Wake()
			}
		}
	})
}

// Space returns the producer's view of the free space. It is conservative:
// in-flight read-counter updates only increase it.
func (f *FIFO) Space() int {
	return f.cfg.Capacity - int(f.writeCount-f.readCopy)
}

// Len returns the consumer-side buffered word count.
func (f *FIFO) Len() int { return f.buf.Len() }

// TryWrite posts one word from the producer. It reports false when the
// producer's space view is empty, the ring injection buffer is busy, or a
// repoint is in progress (BeginRepoint).
func (f *FIFO) TryWrite(w sim.Word) bool {
	if f.repointing {
		return false
	}
	if f.Space() <= 0 {
		return false
	}
	if !f.net.Data.Node(f.cfg.ProducerNode).TrySend(f.cfg.ConsumerNode, f.cfg.DataPort, w) {
		return false
	}
	f.writeCount++
	return true
}

// TryRead pops one word at the consumer, sending a read-counter update
// every AckBatch words.
func (f *FIFO) TryRead() (sim.Word, bool) {
	w, ok := f.buf.TryPop()
	if !ok {
		return 0, false
	}
	f.readCount++
	f.unacked++
	if f.unacked >= f.cfg.AckBatch {
		f.flushAck()
	}
	return w, true
}

// flushAck posts the current read counter to the producer. If the ring
// rejects the injection a retry is scheduled; space release is therefore
// delayed, never lost (the counter is absolute, not a delta).
func (f *FIFO) flushAck() {
	if f.net.Data.Node(f.cfg.ConsumerNode).TrySend(f.cfg.ProducerNode, f.cfg.AckPort, sim.Word(f.readCount)) {
		f.unacked = 0
		f.AckMessages++
		return
	}
	if !f.ackRetryPending {
		f.ackRetryPending = true
		f.k.Schedule(4, func() {
			f.ackRetryPending = false
			if f.unacked > 0 {
				f.flushAck()
			}
		})
	}
}

// WriteBurst posts up to len(ws) words from the producer in one call,
// stopping at the first rejection (space exhausted, ring injection busy, or
// repoint gate). It returns how many words were posted. Semantically
// identical to calling TryWrite per word — same counters, same per-word ring
// messages — but moves a block in one producer step.
//
//accellint:noalloc guard=TestCFIFOZeroAllocBursts
func (f *FIFO) WriteBurst(ws []sim.Word) int {
	n := 0
	for _, w := range ws {
		if !f.TryWrite(w) {
			break
		}
		n++
	}
	return n
}

// ReadBurst pops up to len(dst) words at the consumer and sends at most one
// read-counter update for the whole burst — the batched block transport the
// C-FIFO algorithm explicitly permits, because the read counter is absolute:
// the producer sees a single jump to the final count instead of a slot-paced
// ramp of per-word updates. Word data, buffer counters and the final counter
// value are identical to per-word TryRead; only the number of ack messages
// (and the kernel events that carry and retry them) shrinks.
//
//accellint:noalloc guard=TestCFIFOZeroAllocBursts
func (f *FIFO) ReadBurst(dst []sim.Word) int {
	n := 0
	for i := range dst {
		w, ok := f.buf.TryPop()
		if !ok {
			break
		}
		f.readCount++
		f.unacked++
		dst[i] = w
		n++
	}
	if f.unacked >= f.cfg.AckBatch {
		f.flushAck()
	}
	return n
}

// Ack forces a read-counter update (e.g. at the end of a burst) so space
// returns without waiting for the batch threshold.
func (f *FIFO) Ack() {
	if f.unacked > 0 {
		f.flushAck()
	}
}

// BufferStats reports the consumer-side buffer's traffic counters (total
// pushed and popped words, occupancy high-water mark) for measurement and
// the batch-transport equivalence tests.
func (f *FIFO) BufferStats() (pushed, popped uint64, maxOccupancy int) {
	return f.buf.Pushed, f.buf.Popped, f.buf.MaxOccupancy
}

// SubscribeSpace wakes w when the producer's space view grows.
func (f *FIFO) SubscribeSpace(w *sim.Waker) { f.spaceSubs = append(f.spaceSubs, w) }

// SubscribeData wakes w when a word arrives at the consumer.
func (f *FIFO) SubscribeData(w *sim.Waker) { f.dataSubs = append(f.dataSubs, w) }

// ---------------------------------------------------------------------------
// Endpoint re-pointing (chain failover).
//
// When a gateway pair fails, its streams migrate to the standby pair on the
// same ring: the input FIFO's consumer endpoint and the output FIFO's
// producer endpoint move to the standby's ring nodes. The FIFO object — its
// buffered words and counters — survives unchanged; only the ring routing
// changes. The old node's bindings stay installed (the interconnect offers
// no unbind) and keep delivering into the same buffer, so words that were
// in flight toward the old node when the endpoint moved are never lost.
//
// Ordering is the caller's responsibility: between BeginRepoint (which
// gates the producer) and RepointConsumer, every data word in flight on
// the old route must have landed — any settle delay exceeding the
// worst-case ring transit suffices. Without the gate, a word sent to the
// new (closer) node could overtake one still travelling to the old node.
// The ack path needs no gate: read counters are absolute and applied under
// a monotonic guard, so stale-route acks are harmless.
// ---------------------------------------------------------------------------

// BeginRepoint gates the producer: TryWrite reports false until a
// RepointConsumer call completes the move. A periodic source simply retries
// the sample on its next tick (delayed, not dropped — its overflow counter
// only fires on a genuinely full FIFO).
func (f *FIFO) BeginRepoint() { f.repointing = true }

// RepointConsumer moves the consumer endpoint to a new ring node: future
// producer data targets it, and read-counter updates originate from it.
// Clears the BeginRepoint gate and wakes producer-side subscribers.
func (f *FIFO) RepointConsumer(node int) {
	f.bindData(node)
	f.cfg.ConsumerNode = node
	f.repointing = false
	for _, w := range f.spaceSubs {
		w.Wake()
	}
}

// RepointProducer moves the producer endpoint to a new ring node: future
// TryWrite injections originate from it, and the consumer's read-counter
// updates target it.
func (f *FIFO) RepointProducer(node int) {
	f.bindAck(node)
	f.cfg.ProducerNode = node
	f.repointing = false
	for _, w := range f.dataSubs {
		w.Wake()
	}
}

// Name returns the channel name.
func (f *FIFO) Name() string { return f.cfg.Name }

// Capacity returns the configured buffer size.
func (f *FIFO) Capacity() int { return f.cfg.Capacity }
