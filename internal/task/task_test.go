package task

import (
	"math/rand"
	"testing"

	"accelshare/internal/sim"
)

func TestSchedulerValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewScheduler(k, 0); err == nil {
		t.Error("zero period accepted")
	}
	s, err := NewScheduler(k, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddTask("z", 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := s.AddTask("a", 60); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddTask("b", 50); err == nil {
		t.Error("over-allocation accepted")
	}
	if _, err := s.AddTask("b", 40); err != nil {
		t.Fatal(err)
	}
	if u := s.Utilization(); u != 1.0 {
		t.Errorf("utilisation = %v", u)
	}
}

func TestItemCompletesWithinWindow(t *testing.T) {
	k := sim.NewKernel()
	s, _ := NewScheduler(k, 100)
	a, _ := s.AddTask("a", 30) // window [0, 30)
	var done sim.Time
	a.Post(10, func() { done = k.Now() })
	k.RunAll()
	if done != 10 {
		t.Errorf("completed at %d, want 10 (inside first window)", done)
	}
}

func TestItemSpansWindows(t *testing.T) {
	k := sim.NewKernel()
	s, _ := NewScheduler(k, 100)
	a, _ := s.AddTask("a", 30)
	var done sim.Time
	// 50 cycles of work: 30 in window [0,30), 20 more in [100,130).
	a.Post(50, func() { done = k.Now() })
	k.RunAll()
	if done != 120 {
		t.Errorf("completed at %d, want 120", done)
	}
}

func TestPostOutsideWindowWaits(t *testing.T) {
	k := sim.NewKernel()
	s, _ := NewScheduler(k, 100)
	a, _ := s.AddTask("a", 30) // window [0, 30)
	b, _ := s.AddTask("b", 20) // window [30, 50)
	k.Schedule(60, func() {    // post after both windows passed
		a.Post(5, nil)
		b.Post(5, nil)
	})
	var doneA, doneB sim.Time
	k.Schedule(61, func() {}) // nudge
	k.RunAll()
	_ = doneA
	_ = doneB
	if a.Completed != 1 || b.Completed != 1 {
		t.Fatalf("completions: %d/%d", a.Completed, b.Completed)
	}
}

func TestFIFOWithinTask(t *testing.T) {
	k := sim.NewKernel()
	s, _ := NewScheduler(k, 10)
	a, _ := s.AddTask("a", 5)
	var order []int
	a.Post(3, func() { order = append(order, 1) })
	a.Post(3, func() { order = append(order, 2) })
	a.Post(3, func() { order = append(order, 3) })
	k.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	// 9 cycles of work through a 5-per-10 window: item 3 ends at 5+3+... the
	// service timeline: [0,5) serves 5, [10,15) serves 4 -> last ends 14.
	if a.Busy != 9 {
		t.Errorf("busy = %d", a.Busy)
	}
}

func TestTemporalIsolation(t *testing.T) {
	// Task b's completion times must be identical whether or not task a is
	// loaded — the whole point of budget scheduling.
	run := func(loadA bool) []sim.Time {
		k := sim.NewKernel()
		s, _ := NewScheduler(k, 100)
		a, _ := s.AddTask("a", 50)
		b, _ := s.AddTask("b", 30)
		if loadA {
			for i := 0; i < 50; i++ {
				a.Post(50, nil)
			}
		}
		var times []sim.Time
		for i := 0; i < 10; i++ {
			b.Post(25, func() { times = append(times, k.Now()) })
		}
		k.RunAll()
		return times
	}
	idle := run(false)
	loaded := run(true)
	if len(idle) != len(loaded) {
		t.Fatal("completion counts differ")
	}
	for i := range idle {
		if idle[i] != loaded[i] {
			t.Fatalf("isolation broken at item %d: %d vs %d", i, idle[i], loaded[i])
		}
	}
}

func TestWorstCaseLatencyFormula(t *testing.T) {
	k := sim.NewKernel()
	s, _ := NewScheduler(k, 100)
	a, _ := s.AddTask("a", 25)
	if got := a.WorstCaseLatency(0); got != 0 {
		t.Errorf("WCL(0) = %d", got)
	}
	// C=25 (one window): 1*(75) + 25 = 100.
	if got := a.WorstCaseLatency(25); got != 100 {
		t.Errorf("WCL(25) = %d, want 100", got)
	}
	// C=30: ceil(30/25)=2 -> 2*75+30 = 180.
	if got := a.WorstCaseLatency(30); got != 180 {
		t.Errorf("WCL(30) = %d, want 180", got)
	}
}

// TestResponseWithinBound is a property test: items posted at random times
// to an idle task always complete within the analytical bound.
func TestResponseWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		k := sim.NewKernel()
		period := sim.Time(20 + rng.Intn(200))
		budget := sim.Time(1 + rng.Intn(int(period)))
		s, _ := NewScheduler(k, period)
		// A second task occupying the rest of the period, fully loaded.
		a, _ := s.AddTask("a", budget)
		if budget < period {
			other, _ := s.AddTask("noise", period-budget)
			for i := 0; i < 20; i++ {
				other.Post(sim.Time(1+rng.Intn(100)), nil)
			}
		}
		postAt := sim.Time(rng.Intn(500))
		cost := sim.Time(1 + rng.Intn(300))
		var done sim.Time
		k.Schedule(postAt, func() {
			a.Post(cost, func() { done = k.Now() })
		})
		k.RunAll()
		if done == 0 && cost > 0 {
			t.Fatal("item never completed")
		}
		bound := a.WorstCaseLatency(cost)
		if done-postAt > bound {
			t.Fatalf("trial %d: response %d exceeds bound %d (P=%d B=%d C=%d post=%d)",
				trial, done-postAt, bound, period, budget, cost, postAt)
		}
	}
}

func TestBacklog(t *testing.T) {
	k := sim.NewKernel()
	s, _ := NewScheduler(k, 10)
	a, _ := s.AddTask("a", 10) // full budget: service == wall time
	if a.Backlog() != 0 {
		t.Error("fresh task has backlog")
	}
	a.Post(40, nil)
	if a.Backlog() != 40 {
		t.Errorf("backlog = %d, want 40", a.Backlog())
	}
	k.RunAll()
	if a.Backlog() != 0 {
		t.Error("backlog after completion")
	}
}
