// Package task implements the priority-based budget scheduler the paper's
// processor tiles run their software tasks under (§IV-A, citing Steine,
// Bekooij, Wiggers — DSD'09): every task owns a budget of B cycles per
// replenishment period P, served in a fixed TDM window. A task is then
// temporally isolated from every other task on the tile — its worst-case
// response to a work item of cost C is bounded by
//
//	R(C) = ⌈C/B⌉ · (P − B) + C
//
// independent of other tasks' load, which is what lets the paper's software
// tasks (the L = (L+R) − R reconstruction, C-FIFO pumps) appear in the
// dataflow model as actors with constant worst-case firing durations.
//
// Tasks execute posted work items in FIFO order; an item of cost c receives
// service only inside its task's windows and completes once c cycles of
// service accumulate. The scheduler is an analytical DES component: it
// computes completion times in closed form over the window pattern and
// schedules a single kernel event per item.
package task

import (
	"fmt"

	"accelshare/internal/sim"
)

// Scheduler is one processor tile's budget scheduler.
type Scheduler struct {
	k *sim.Kernel
	// Period is the replenishment period P in cycles.
	Period sim.Time
	tasks  []*Task
	used   sim.Time
}

// Task is one budget-scheduled task.
type Task struct {
	Name string
	// Budget is B, the service cycles per period.
	Budget sim.Time
	// Offset is the window start within the period (assigned by AddTask).
	Offset sim.Time

	s *Scheduler
	// freeAt is the service-timeline instant the previous item completes.
	freeAt sim.Time

	// Completed counts finished items; Busy accumulates service cycles.
	Completed uint64
	Busy      uint64
}

// NewScheduler creates a scheduler with the given period.
func NewScheduler(k *sim.Kernel, period sim.Time) (*Scheduler, error) {
	if period == 0 {
		return nil, fmt.Errorf("task: period must be positive")
	}
	return &Scheduler{k: k, Period: period}, nil
}

// AddTask reserves a budget window. Budgets are allocated back to back; the
// sum may not exceed the period.
func (s *Scheduler) AddTask(name string, budget sim.Time) (*Task, error) {
	if budget == 0 {
		return nil, fmt.Errorf("task: %q needs a positive budget", name)
	}
	if s.used+budget > s.Period {
		return nil, fmt.Errorf("task: budgets exceed period (%d + %d > %d)", s.used, budget, s.Period)
	}
	t := &Task{Name: name, Budget: budget, Offset: s.used, s: s}
	s.used += budget
	s.tasks = append(s.tasks, t)
	return t, nil
}

// Utilization returns the allocated fraction of the period (B/P summed).
func (s *Scheduler) Utilization() float64 {
	return float64(s.used) / float64(s.Period)
}

// serviceEnd returns the earliest absolute time at which `cost` cycles of
// service accumulate for task t starting no earlier than `from`.
func (t *Task) serviceEnd(from sim.Time, cost sim.Time) sim.Time {
	P, B, O := t.s.Period, t.Budget, t.Offset
	now := from
	for cost > 0 {
		// Position within the current period.
		pos := now % P
		winStart, winEnd := O, O+B
		switch {
		case pos < winStart:
			now += winStart - pos
		case pos >= winEnd:
			now += P - pos + winStart
		default:
			avail := winEnd - pos
			if avail >= cost {
				return now + cost
			}
			cost -= avail
			now += avail
		}
	}
	return now
}

// Post enqueues a work item of the given cost; fn runs when the item
// completes. Items of one task execute in FIFO order.
func (t *Task) Post(cost sim.Time, fn func()) {
	start := t.s.k.Now()
	if t.freeAt > start {
		start = t.freeAt
	}
	end := t.serviceEnd(start, cost)
	t.freeAt = end
	t.Busy += uint64(cost)
	t.s.k.ScheduleAt(end, func() {
		t.Completed++
		if fn != nil {
			fn()
		}
	})
}

// Backlog returns the service-time backlog: how far in the future the task
// frees up (0 when idle).
func (t *Task) Backlog() sim.Time {
	now := t.s.k.Now()
	if t.freeAt <= now {
		return 0
	}
	return t.freeAt - now
}

// WorstCaseLatency is the analytical response bound for a single item of
// the given cost posted to an otherwise idle task: ⌈C/B⌉·(P−B) + C.
func (t *Task) WorstCaseLatency(cost sim.Time) sim.Time {
	if cost == 0 {
		return 0
	}
	n := (cost + t.Budget - 1) / t.Budget
	return n*(t.s.Period-t.Budget) + cost
}
