package task

import (
	"testing"

	"accelshare/internal/sim"
)

func BenchmarkPostAndComplete(b *testing.B) {
	k := sim.NewKernel()
	s, err := NewScheduler(k, 100)
	if err != nil {
		b.Fatal(err)
	}
	tk, err := s.AddTask("t", 40)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Post(25, nil)
		k.RunAll()
	}
}

func BenchmarkServiceEndLongItem(b *testing.B) {
	k := sim.NewKernel()
	s, _ := NewScheduler(k, 1000)
	tk, _ := s.AddTask("t", 10)
	for i := 0; i < b.N; i++ {
		tk.Post(5000, nil) // 500 periods of windows
		k.RunAll()
	}
}
