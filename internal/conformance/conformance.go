// Package conformance is a reusable bound-conformance harness: given a
// temporal model (Eq. 2/Eq. 4 per-stream bounds) and a recorded block trace,
// it checks that every completed block's service latency stayed within τ̂s,
// every turnaround within γ̂s, and every stream's long-run delivery rate at
// or above its throughput floor μs (Eq. 5). Fault, admission and failover
// tests all consume it, so "the bounds held" means the same thing in every
// test — and a violation reports the exact block and cycle counts.
//
// The harness deliberately has no opinion about WHICH blocks to check: the
// caller scopes the trace (Options.After cuts convergence transients, e.g.
// everything before a quarantine or failover settled) and decides whether
// retried blocks may exceed τ̂s (Options.SkipRetried — a retry legitimately
// pays the flush + replay on top of the clean-run bound, or, sharper,
// Options.RetrySlack widens τ̂s by a per-retry allowance derived from
// detection latency plus core.ResumeBound instead of exempting the block).
//
// For checkpointed recovery the harness also checks the replay-cost claim
// itself: FromModelCheckpointed derives bounds from the adjusted Eq. 2 term
// τ̂s(K) (core.TauHatCheckpointed), and Options.ReplayBound asserts that
// every block's measured replay work (gateway.BlockRecord.Replayed) stayed
// within retries·K — a retry resumed from the last checkpoint, never from
// block start.
package conformance

import (
	"fmt"
	"math/big"
	"strings"

	"accelshare/internal/core"
	"accelshare/internal/gateway"
	"accelshare/internal/sim"
)

// StreamBounds is one stream's derived bounds, pre-computed so a test can
// also tighten or relax individual streams before checking.
type StreamBounds struct {
	Name string
	// TauHat is τ̂s (Eq. 2): worst-case service latency of one block.
	TauHat uint64
	// GammaHat is γ̂s (Eq. 4): worst-case queued→done turnaround.
	GammaHat uint64
	// Rate is μs in samples per CYCLE (the throughput floor, Eq. 5).
	Rate *big.Rat
	// Block is ηs, the samples delivered per completed block.
	Block int64
}

// FromModel derives every stream's bounds from the temporal model. Block
// sizes must be solved (TauHat errors otherwise).
func FromModel(s *core.System) ([]StreamBounds, error) {
	return FromModelCheckpointed(s, 0, 0)
}

// FromModelCheckpointed derives every stream's bounds under a checkpoint
// interval of k input samples and a per-checkpoint snapshot cost: TauHat
// becomes the adjusted Eq. 2 term τ̂s(k) (core.TauHatCheckpointed) and
// GammaHat the matching Eq. 4 sum — checkpoint quiesces stretch every
// stream's block, so the round-robin interference term grows with them.
// k ≤ 0 is the plain FromModel. k must already be rounded to each stream's
// decimation (the gateway rounds up, so pass the rounded value).
func FromModelCheckpointed(s *core.System, k int64, saveCost uint64) ([]StreamBounds, error) {
	taus := make([]uint64, len(s.Streams))
	var sum uint64
	for i := range s.Streams {
		tau, err := s.TauHatCheckpointed(i, k, saveCost)
		if err != nil {
			return nil, err
		}
		taus[i] = tau
		sum += tau
	}
	out := make([]StreamBounds, len(s.Streams))
	for i := range s.Streams {
		out[i] = StreamBounds{
			Name:     s.Streams[i].Name,
			TauHat:   taus[i],
			GammaHat: sum, // ε̂s + τ̂s = Σ over all streams (Eq. 3 + Eq. 4)
			Rate:     s.RatePerCycle(i),
			Block:    s.Streams[i].Block,
		}
	}
	return out, nil
}

// Options scopes a conformance check.
type Options struct {
	// After drops blocks completed at or before this instant — convergence
	// transients (a quarantine mid-drain, a failover replay) are the
	// caller's to cut, not the harness's to guess.
	After sim.Time
	// FilterQueued scopes on Queued instead of Done: a block queued before
	// the cut may legitimately span a mode transition (its turnaround is
	// covered by the transition-cost bound, not by the new γ̂s), while a
	// block queued after it must meet the new bounds in full.
	FilterQueued bool
	// SkipRetried exempts blocks that needed recovery retries from the τ̂s
	// check (a retry pays flush + replay on top of the clean-service bound;
	// γ̂s and throughput are still enforced).
	SkipRetried bool
	// MinBlocks fails a stream with fewer than this many in-scope blocks —
	// an empty trace trivially "conforms", which is never what a test means.
	MinBlocks int
	// SkipGamma / SkipThroughput disable individual checks, e.g. while a
	// stream's γ̂ is transiently stale across an admission transition.
	SkipGamma      bool
	SkipThroughput bool
	// ReplayBound, when positive, checks every block's measured replay work:
	// the input words re-issued beyond the first pass (BlockRecord.Replayed)
	// must not exceed Retries × ReplayBound. With checkpointing every K
	// samples the bound is K — a retry resumes from the last checkpoint,
	// never further back — where full-block replay would cost up to ηs per
	// retry. This is the measured side of the adjusted Eq. 2 argument:
	// replay work ≤ K, so one resume costs at most core.ResumeBound.
	ReplayBound int64
	// RetrySlack, when positive, replaces SkipRetried's blanket exemption
	// for the τ̂s check: a retried block's service latency is checked against
	// TauHat + Retries × RetrySlack instead of being skipped. Callers derive
	// the slack from the adjusted Eq. 2 term: one detect-flush-resume cycle
	// costs at most the watchdog window (detection) + the flush settle +
	// core.ResumeBound (reload and ≤ K + 2 samples of replay).
	RetrySlack uint64
}

// Violation is one bound breach.
type Violation struct {
	Stream string
	// Kind is "tau", "gamma", "throughput", "replay" or "coverage".
	Kind string
	// Block indexes the offending record within the stream's in-scope trace
	// (-1 for stream-level violations).
	Block  int
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s[%s block %d]: %s", v.Stream, v.Kind, v.Block, v.Detail)
}

// Result is the outcome of a Check.
type Result struct {
	Violations []Violation
	// Checked counts in-scope block records across all streams.
	Checked int
}

// Err renders the violations as one error (nil when conformant).
func (r Result) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d bound violations:", len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// Check verifies records[i] (stream i's completed-block trace, as recorded
// by gateway.Config.RecordTurnarounds) against bounds[i]:
//
//	service latency  Done−Started ≤ τ̂s   per block (Eq. 2)
//	turnaround       Done−Queued  ≤ γ̂s   per block (Eq. 4)
//	throughput       delivery rate ≥ μs  long-run  (Eq. 5)
//
// The throughput check needs at least two in-scope blocks; it credits
// (n−1)·ηs samples over the span between the first and last completion and
// allows one γ̂s of boundary slack — a finite window cannot resolve rates
// finer than one block period, and the model only promises ηs per γ̂s:
//
//	(n−1)·ηs ≥ μs·(span − γ̂s)
//
// computed exactly in big.Rat (no float drift).
func Check(bounds []StreamBounds, records [][]gateway.BlockRecord, opt Options) Result {
	var res Result
	for i, sb := range bounds {
		var recs []gateway.BlockRecord
		if i < len(records) {
			for _, r := range records[i] {
				cut := r.Done
				if opt.FilterQueued {
					cut = r.Queued
				}
				if cut > opt.After {
					recs = append(recs, r)
				}
			}
		}
		if len(recs) < opt.MinBlocks {
			res.Violations = append(res.Violations, Violation{
				Stream: sb.Name, Kind: "coverage", Block: -1,
				Detail: fmt.Sprintf("only %d in-scope blocks, want >= %d", len(recs), opt.MinBlocks),
			})
			continue
		}
		res.Checked += len(recs)
		for bi, r := range recs {
			tauLimit, checkTau := sb.TauHat, true
			if r.Retries > 0 {
				switch {
				case opt.RetrySlack > 0:
					tauLimit += uint64(r.Retries) * opt.RetrySlack
				case opt.SkipRetried:
					checkTau = false
				}
			}
			if checkTau {
				if lat := uint64(r.Done - r.Started); lat > tauLimit {
					res.Violations = append(res.Violations, Violation{
						Stream: sb.Name, Kind: "tau", Block: bi,
						Detail: fmt.Sprintf("service latency %d > tau-hat %d (retries %d)", lat, tauLimit, r.Retries),
					})
				}
			}
			if opt.ReplayBound > 0 && r.Replayed > int64(r.Retries)*opt.ReplayBound {
				res.Violations = append(res.Violations, Violation{
					Stream: sb.Name, Kind: "replay", Block: bi,
					Detail: fmt.Sprintf("replayed %d words over %d retries > bound %d per retry",
						r.Replayed, r.Retries, opt.ReplayBound),
				})
			}
			if !opt.SkipGamma {
				if turn := uint64(r.Done - r.Queued); turn > sb.GammaHat {
					res.Violations = append(res.Violations, Violation{
						Stream: sb.Name, Kind: "gamma", Block: bi,
						Detail: fmt.Sprintf("turnaround %d > gamma-hat %d", turn, sb.GammaHat),
					})
				}
			}
		}
		if !opt.SkipThroughput && sb.Rate != nil && len(recs) >= 2 {
			span := uint64(recs[len(recs)-1].Done - recs[0].Done)
			if span > sb.GammaHat {
				delivered := new(big.Rat).SetInt64(int64(len(recs)-1) * sb.Block)
				window := new(big.Rat).SetUint64(span - sb.GammaHat)
				need := new(big.Rat).Mul(sb.Rate, window)
				if delivered.Cmp(need) < 0 {
					res.Violations = append(res.Violations, Violation{
						Stream: sb.Name, Kind: "throughput", Block: -1,
						Detail: fmt.Sprintf("delivered %d blocks x %d over %d cycles, below rate floor %s/cycle (slack gamma-hat %d)",
							len(recs)-1, sb.Block, span, sb.Rate.RatString(), sb.GammaHat),
					})
				}
			}
		}
	}
	return res
}

// FromStreams aligns gateway streams to bounds BY NAME and checks their
// recorded turnaround traces — the convenient form for platform tests where
// slot order may have changed across admission or failover transitions.
// Streams without matching bounds are ignored; bounds without a matching
// stream get an empty trace (so MinBlocks catches the gap).
func FromStreams(bounds []StreamBounds, streams []*gateway.Stream, opt Options) Result {
	byName := make(map[string][]gateway.BlockRecord, len(streams))
	for _, s := range streams {
		byName[s.Name] = s.Turnarounds
	}
	records := make([][]gateway.BlockRecord, len(bounds))
	for i, sb := range bounds {
		records[i] = byName[sb.Name]
	}
	return Check(bounds, records, opt)
}
