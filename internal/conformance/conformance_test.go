package conformance

import (
	"math/big"
	"strings"
	"testing"

	"accelshare/internal/core"
	"accelshare/internal/gateway"
	"accelshare/internal/sim"
)

func oneBound() []StreamBounds {
	return []StreamBounds{{
		Name: "s", TauHat: 100, GammaHat: 300, Rate: big.NewRat(1, 10), Block: 16,
	}}
}

func rec(queued, started, done int64, retries int) gateway.BlockRecord {
	return gateway.BlockRecord{
		Queued: sim.Time(queued), Started: sim.Time(started),
		Done: sim.Time(done), Retries: retries,
	}
}

func kinds(r Result) []string {
	var out []string
	for _, v := range r.Violations {
		out = append(out, v.Kind)
	}
	return out
}

func TestCheckDetectsEachViolationKind(t *testing.T) {
	records := [][]gateway.BlockRecord{{
		rec(0, 10, 100, 0),    // clean: lat 90 ≤ 100, turn 100 ≤ 300
		rec(100, 150, 300, 0), // tau: lat 150 > 100
		rec(300, 560, 650, 0), // gamma: turn 350 > 300 (lat 90 fine)
	}}
	res := Check(oneBound(), records, Options{})
	got := kinds(res)
	if len(got) != 2 || got[0] != "tau" || got[1] != "gamma" {
		t.Fatalf("violations = %v, want [tau gamma]", got)
	}
	if res.Checked != 3 {
		t.Fatalf("checked = %d, want 3", res.Checked)
	}
	if err := res.Err(); err == nil || !strings.Contains(err.Error(), "2 bound violations") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestSkipRetriedExemptsTauOnly(t *testing.T) {
	records := [][]gateway.BlockRecord{{
		rec(0, 10, 100, 0),
		rec(100, 150, 300, 2), // lat 150 > 100 but retried
		rec(300, 560, 650, 1), // turn 350 > 300: γ̂ still enforced on retries
	}}
	res := Check(oneBound(), records, Options{SkipRetried: true})
	got := kinds(res)
	if len(got) != 1 || got[0] != "gamma" {
		t.Fatalf("violations = %v, want [gamma] (tau exempt for retried blocks)", got)
	}
}

func TestRetrySlackBoundsRetriedBlocks(t *testing.T) {
	records := [][]gateway.BlockRecord{{
		rec(0, 10, 100, 0),    // clean: lat 90 ≤ 100
		rec(100, 110, 300, 1), // retried: lat 190 ≤ 100 + 1·100
		rec(300, 310, 550, 1), // retried: lat 240 > 100 + 1·100 → tau
	}}
	res := Check(oneBound(), records, Options{RetrySlack: 100})
	got := kinds(res)
	if len(got) != 1 || got[0] != "tau" {
		t.Fatalf("violations = %v, want [tau] (slack covers one retry, not an over-budget one)", got)
	}
	// RetrySlack takes precedence over SkipRetried: the bound is enforced,
	// just widened.
	res = Check(oneBound(), records, Options{RetrySlack: 100, SkipRetried: true})
	if got := kinds(res); len(got) != 1 || got[0] != "tau" {
		t.Fatalf("violations = %v, want [tau] (RetrySlack overrides the blanket exemption)", got)
	}
}

func TestReplayBoundChecksRetryWork(t *testing.T) {
	mk := func(replayed int64, retries int) gateway.BlockRecord {
		r := rec(0, 10, 100, retries)
		r.Replayed = replayed
		return r
	}
	records := [][]gateway.BlockRecord{{
		mk(0, 0), // clean first pass
		mk(4, 1), // one retry, replay ≤ K
		mk(8, 2), // two retries, 2·K total
		mk(9, 2), // 9 > 2·4 → replay violation
		mk(1, 0), // replay without a retry → violation
	}}
	res := Check(oneBound(), records, Options{ReplayBound: 4})
	got := kinds(res)
	if len(got) != 2 || got[0] != "replay" || got[1] != "replay" {
		t.Fatalf("violations = %v, want [replay replay]", got)
	}
	// Disabled (zero) bound checks nothing.
	res = Check(oneBound(), records, Options{})
	if len(res.Violations) != 0 {
		t.Fatalf("violations with ReplayBound=0: %v", res.Violations)
	}
}

func TestFromModelCheckpointedAdjustsBounds(t *testing.T) {
	s := &core.System{
		Chain: core.Chain{EntryCost: 15, ExitCost: 15, AccelCosts: []uint64{15}},
		Streams: []core.Stream{
			{Name: "a", Reconfig: 4100, Block: 100, Rate: big.NewRat(44100, 1)},
			{Name: "b", Reconfig: 4100, Block: 100, Rate: big.NewRat(44100, 1)},
		},
		ClockHz: 100_000_000,
	}
	plain, err := FromModel(s)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := FromModelCheckpointed(s, 25, 60)
	if err != nil {
		t.Fatal(err)
	}
	// τ̂(K=25) = 4100 + (100 + 2·4)·15 + 3·60 = 5900 per stream; γ̂ = Σ τ̂.
	for i, sb := range ck {
		if sb.TauHat != 5900 {
			t.Errorf("stream %d: TauHat = %d, want 5900", i, sb.TauHat)
		}
		if sb.GammaHat != 2*5900 {
			t.Errorf("stream %d: GammaHat = %d, want %d", i, sb.GammaHat, 2*5900)
		}
		if sb.TauHat <= plain[i].TauHat {
			t.Errorf("stream %d: checkpointed tau-hat %d not above plain %d", i, sb.TauHat, plain[i].TauHat)
		}
	}
}

func TestAfterCutsTransients(t *testing.T) {
	records := [][]gateway.BlockRecord{{
		rec(0, 10, 500, 0),    // transient: violates both, done before the cut
		rec(500, 510, 600, 0), // clean
	}}
	res := Check(oneBound(), records, Options{After: 500})
	if len(res.Violations) != 0 || res.Checked != 1 {
		t.Fatalf("violations = %v checked = %d, want none/1", res.Violations, res.Checked)
	}
	// FilterQueued scopes on Queued instead: the transient was queued at 0,
	// the clean block at 500 (exclusive cut → also dropped).
	res = Check(oneBound(), records, Options{After: 500, FilterQueued: true, MinBlocks: 1})
	got := kinds(res)
	if len(got) != 1 || got[0] != "coverage" {
		t.Fatalf("violations = %v, want [coverage]", got)
	}
	res = Check(oneBound(), records, Options{After: 499, FilterQueued: true, MinBlocks: 1})
	if len(res.Violations) != 0 || res.Checked != 1 {
		t.Fatalf("violations = %v checked = %d, want none/1", res.Violations, res.Checked)
	}
}

func TestMinBlocksCoverage(t *testing.T) {
	res := Check(oneBound(), [][]gateway.BlockRecord{{rec(0, 10, 100, 0)}}, Options{MinBlocks: 5})
	got := kinds(res)
	if len(got) != 1 || got[0] != "coverage" {
		t.Fatalf("violations = %v, want [coverage]", got)
	}
	// An empty trace trivially "conforms" without the guard.
	res = Check(oneBound(), nil, Options{})
	if len(res.Violations) != 0 {
		t.Fatalf("empty trace with MinBlocks 0: %v", res.Violations)
	}
	res = Check(oneBound(), nil, Options{MinBlocks: 1})
	if len(res.Violations) != 1 || res.Violations[0].Kind != "coverage" {
		t.Fatalf("violations = %v, want [coverage]", res.Violations)
	}
}

// TestOptionEdgeCases pins the scoping corners campaign code leans on:
// a cut past the last event empties the scope (silently green unless
// MinBlocks guards it), an unsatisfied MinBlocks short-circuits per-block
// checks entirely, MinBlocks equal to the trace length passes, and
// ReplayBound over a trace with zero retries demands zero replayed words.
func TestOptionEdgeCases(t *testing.T) {
	records := [][]gateway.BlockRecord{{
		rec(0, 10, 100, 0),
		rec(100, 110, 200, 0),
	}}

	// After beyond the last Done: everything out of scope. Without MinBlocks
	// the check is vacuously green — which is why every campaign pairs a
	// tail cut with MinBlocks.
	res := Check(oneBound(), records, Options{After: 200})
	if len(res.Violations) != 0 || res.Checked != 0 {
		t.Fatalf("violations = %v checked = %d, want none/0", res.Violations, res.Checked)
	}
	res = Check(oneBound(), records, Options{After: 200, MinBlocks: 1})
	if got := kinds(res); len(got) != 1 || got[0] != "coverage" {
		t.Fatalf("violations = %v, want [coverage]", got)
	}

	// An unsatisfied MinBlocks reports coverage INSTEAD of the per-block
	// checks: the one in-scope block here violates τ̂, but a partial trace
	// must not be double-reported as both missing and failing.
	bad := [][]gateway.BlockRecord{{rec(0, 10, 500, 0)}}
	res = Check(oneBound(), bad, Options{MinBlocks: 3})
	if got := kinds(res); len(got) != 1 || got[0] != "coverage" {
		t.Fatalf("violations = %v, want [coverage] only", got)
	}
	if res.Checked != 0 {
		t.Fatalf("checked = %d, want 0 for a stream failing coverage", res.Checked)
	}

	// MinBlocks exactly equal to the in-scope count is satisfied.
	res = Check(oneBound(), records, Options{MinBlocks: 2, SkipThroughput: true})
	if len(res.Violations) != 0 || res.Checked != 2 {
		t.Fatalf("violations = %v checked = %d, want none/2", res.Violations, res.Checked)
	}

	// ReplayBound with zero retries anywhere: allowed replay is 0·bound = 0,
	// so a clean trace passes and any replayed word is a finding.
	res = Check(oneBound(), records, Options{ReplayBound: 4, SkipThroughput: true})
	if len(res.Violations) != 0 {
		t.Fatalf("clean zero-retry trace with ReplayBound: %v", res.Violations)
	}
	leak := [][]gateway.BlockRecord{{rec(0, 10, 100, 0)}}
	leak[0][0].Replayed = 1
	res = Check(oneBound(), leak, Options{ReplayBound: 4})
	if got := kinds(res); len(got) != 1 || got[0] != "replay" {
		t.Fatalf("violations = %v, want [replay]", got)
	}
}

func TestThroughputFloor(t *testing.T) {
	// μ = 1/10 with η = 16: a block every ≤ 160 cycles sustains the rate.
	fast := [][]gateway.BlockRecord{{
		rec(0, 0, 0, 0), rec(0, 160, 160, 0), rec(0, 320, 320, 0), rec(0, 480, 480, 0),
	}}
	res := Check(oneBound(), fast, Options{SkipGamma: true, SkipRetried: true})
	if len(res.Violations) != 0 {
		t.Fatalf("sustained rate flagged: %v", res.Violations)
	}
	// One block per 1000 cycles delivers 16/1000 < 1/10.
	slow := [][]gateway.BlockRecord{{
		rec(0, 0, 0, 0), rec(0, 1000, 1000, 0), rec(0, 2000, 2000, 0),
	}}
	res = Check(oneBound(), slow, Options{SkipGamma: true, SkipRetried: true})
	got := kinds(res)
	if len(got) != 1 || got[0] != "throughput" {
		t.Fatalf("violations = %v, want [throughput]", got)
	}
	// The boundary slack: completions γ̂-jittered around the nominal period
	// must NOT be flagged (a finite window can't resolve finer than γ̂).
	jitter := [][]gateway.BlockRecord{{
		rec(0, 0, 0, 0), rec(0, 160, 160, 0), rec(0, 320+299, 320+299, 0),
	}}
	res = Check(oneBound(), jitter, Options{SkipGamma: true, SkipRetried: true})
	if len(res.Violations) != 0 {
		t.Fatalf("γ̂-jittered completions flagged: %v", res.Violations)
	}
}

// TestFromModel pins the derived bounds for the shared fault-test platform:
// ε=15, ρA=1, δ=1, Rs=50, η=16 over three streams → τ̂=320, γ̂=960 (Eq. 2/4).
func TestFromModel(t *testing.T) {
	sys := &core.System{
		Chain: core.Chain{
			Name: "m", AccelCosts: []uint64{1},
			EntryCost: 15, ExitCost: 1, NICapacity: 2,
		},
		ClockHz: 1,
	}
	for _, n := range []string{"s0", "s1", "s2"} {
		sys.Streams = append(sys.Streams, core.Stream{
			Name: n, Rate: big.NewRat(1, 75), Reconfig: 50, Block: 16,
		})
	}
	bounds, err := FromModel(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, sb := range bounds {
		if sb.TauHat != 320 || sb.GammaHat != 960 || sb.Block != 16 {
			t.Fatalf("%s: τ̂=%d γ̂=%d η=%d, want 320/960/16", sb.Name, sb.TauHat, sb.GammaHat, sb.Block)
		}
		if sb.Rate.Cmp(big.NewRat(1, 75)) != 0 {
			t.Fatalf("%s: μ=%s, want 1/75", sb.Name, sb.Rate.RatString())
		}
	}
	// Unsolved block sizes must error, not divide by zero.
	sys.Streams[0].Block = 0
	if _, err := FromModel(sys); err == nil {
		t.Fatal("unsolved model accepted")
	}
}

// TestFromStreamsAlignsByName: slot order may change across admission or
// failover transitions; bounds without a matching stream read as an empty
// trace so MinBlocks catches the gap.
func TestFromStreamsAlignsByName(t *testing.T) {
	bounds := []StreamBounds{
		{Name: "a", TauHat: 100, GammaHat: 300, Block: 16},
		{Name: "b", TauHat: 100, GammaHat: 300, Block: 16},
	}
	sa := &gateway.Stream{Name: "a"}
	sa.Turnarounds = []gateway.BlockRecord{rec(0, 10, 100, 0)}
	res := FromStreams(bounds, []*gateway.Stream{sa}, Options{MinBlocks: 1})
	if len(res.Violations) != 1 || res.Violations[0].Stream != "b" || res.Violations[0].Kind != "coverage" {
		t.Fatalf("violations = %v, want coverage for the missing stream b", res.Violations)
	}
}
