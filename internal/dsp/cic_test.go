package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestCICValidation(t *testing.T) {
	if _, err := NewCIC(0, 4); err == nil {
		t.Error("0 stages accepted")
	}
	if _, err := NewCIC(9, 4); err == nil {
		t.Error("9 stages accepted")
	}
	if _, err := NewCIC(2, 0); err == nil {
		t.Error("0 decimation accepted")
	}
}

func TestCICSingleStageIsBoxcar(t *testing.T) {
	// A 1-stage decimate-by-R CIC output equals the sum of the last R
	// inputs (shifted by the gain renormalisation).
	const R = 4
	c, err := NewCIC(1, R)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var window []int64
	for n := 0; n < 200; n++ {
		x := int32(rng.Intn(2000) - 1000)
		window = append(window, int64(x))
		oi, _, ok := c.Push(x, 0)
		if !ok {
			continue
		}
		var sum int64
		for _, v := range window[len(window)-R:] {
			sum += v
		}
		if int64(oi) != sum>>c.GainShift {
			t.Fatalf("n=%d: CIC %d != boxcar %d", n, oi, sum>>c.GainShift)
		}
	}
}

func TestCICOutputRate(t *testing.T) {
	c, _ := NewCIC(3, 8)
	outs := 0
	for n := 0; n < 64; n++ {
		if _, _, ok := c.Push(1000, -1000); ok {
			outs++
		}
	}
	if outs != 8 {
		t.Fatalf("outputs = %d, want 8", outs)
	}
}

func TestCICDCGainNormalised(t *testing.T) {
	// Constant input: after settling, the output approaches the input
	// value (for power-of-two R the renormalisation is exact).
	c, _ := NewCIC(3, 8)
	var last int32
	for n := 0; n < 400; n++ {
		if oi, _, ok := c.Push(5000, 0); ok {
			last = oi
		}
	}
	if math.Abs(float64(last)-5000) > 1 {
		t.Errorf("settled DC output = %d, want ~5000", last)
	}
}

func TestCICLowPassBehaviour(t *testing.T) {
	// CIC nulls sit at multiples of the output rate (fs/R): a tone near the
	// first null — exactly the energy that would alias onto a low frequency
	// after decimation — is crushed relative to a low tone. (That is the
	// filter's job: protect the decimated band from aliasing.)
	const fs = 80000.0
	const R = 8
	measure := func(freq float64) float64 {
		c, _ := NewCIC(3, R)
		var peak float64
		n := 4000
		for i := 0; i < n; i++ {
			x := int32(10000 * math.Sin(2*math.Pi*freq*float64(i)/fs))
			if oi, _, ok := c.Push(x, 0); ok && i > n/2 {
				if math.Abs(float64(oi)) > peak {
					peak = math.Abs(float64(oi))
				}
			}
		}
		return peak
	}
	low := measure(200)
	nearNull := measure(9800) // first null at fs/R = 10 kHz
	if nearNull > low/50 {
		t.Errorf("CIC alias rejection weak: low %f vs near-null %f", low, nearNull)
	}
}

func TestCICStateRoundTrip(t *testing.T) {
	a, _ := NewCIC(2, 4)
	b, _ := NewCIC(2, 4)
	rng := rand.New(rand.NewSource(6))
	for n := 0; n < 37; n++ {
		a.Push(int32(rng.Intn(4000)-2000), int32(rng.Intn(4000)-2000))
	}
	if err := b.LoadState(a.SaveState()); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 50; n++ {
		x := int32(rng.Intn(4000) - 2000)
		y := int32(rng.Intn(4000) - 2000)
		ai, aq, aok := a.Push(x, y)
		bi, bq, bok := b.Push(x, y)
		if ai != bi || aq != bq || aok != bok {
			t.Fatalf("diverged at %d", n)
		}
	}
	if err := b.LoadState(make([]uint64, 3)); err == nil {
		t.Error("wrong-size state accepted")
	}
	bad := a.SaveState()
	bad[len(bad)-1] = 99
	if err := b.LoadState(bad); err == nil {
		t.Error("corrupt phase accepted")
	}
}

func TestCICReset(t *testing.T) {
	c, _ := NewCIC(2, 2)
	c.Push(1000, 1000)
	c.Reset()
	oi, oq, ok := c.Push(0, 0)
	if ok {
		t.Fatal("phase not reset")
	}
	oi, oq, ok = c.Push(0, 0)
	if !ok || oi != 0 || oq != 0 {
		t.Errorf("residue after reset: %d %d %v", oi, oq, ok)
	}
}
