package dsp

import (
	"math"
	"testing"
)

func TestDeemphasisValidation(t *testing.T) {
	if _, err := NewDeemphasis(0, 44100); err == nil {
		t.Error("zero tau accepted")
	}
	if _, err := NewDeemphasis(50e-6, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestDeemphasisDCUnityGain(t *testing.T) {
	d, err := NewDeemphasis(50e-6, 44100)
	if err != nil {
		t.Fatal(err)
	}
	var y int32
	for i := 0; i < 4000; i++ {
		y = d.Process(10000)
	}
	if math.Abs(float64(y)-10000) > 50 {
		t.Errorf("DC output = %d, want ~10000", y)
	}
}

func TestDeemphasisAttenuatesHighFrequencies(t *testing.T) {
	const fs = 44100.0
	d, _ := NewDeemphasis(50e-6, fs)
	measure := func(freq float64) float64 {
		d.Reset()
		var peak float64
		n := 4000
		for i := 0; i < n; i++ {
			x := int32(10000 * math.Sin(2*math.Pi*freq*float64(i)/fs))
			y := d.Process(x)
			if i > n/2 && math.Abs(float64(y)) > peak {
				peak = math.Abs(float64(y))
			}
		}
		return peak
	}
	low := measure(300)
	high := measure(10000)
	if high >= low/2 {
		t.Errorf("10 kHz peak %f not attenuated vs 300 Hz peak %f", high, low)
	}
	// Compare against the analytic response within ~15%.
	wantRatio := d.ResponseAt(10000/fs) / d.ResponseAt(300/fs)
	gotRatio := high / low
	if math.Abs(gotRatio-wantRatio) > 0.15*wantRatio {
		t.Errorf("ratio %f vs analytic %f", gotRatio, wantRatio)
	}
}

func TestDeemphasisCorner(t *testing.T) {
	// The -3 dB corner of a 50 µs network is ~3183 Hz.
	d, _ := NewDeemphasis(50e-6, 44100)
	corner := 1 / (2 * math.Pi * 50e-6)
	g := d.ResponseAt(corner / 44100)
	if math.Abs(g-1/math.Sqrt2) > 0.05 {
		t.Errorf("gain at corner = %f, want ~0.707", g)
	}
}

func TestDeemphasisStateRoundTrip(t *testing.T) {
	a, _ := NewDeemphasis(50e-6, 44100)
	b, _ := NewDeemphasis(50e-6, 44100)
	for i := 0; i < 100; i++ {
		a.Process(int32(i * 37 % 5000))
	}
	if err := b.LoadState(a.SaveState()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := int32(i * 91 % 4000)
		if a.Process(x) != b.Process(x) {
			t.Fatalf("diverged at %d", i)
		}
	}
	if err := b.LoadState(nil); err == nil {
		t.Error("empty state accepted")
	}
}
