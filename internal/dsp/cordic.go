// Package dsp provides the signal-processing primitives the paper's
// accelerators implement: fixed-point CORDIC (rotation and vectoring
// modes), windowed-sinc FIR low-pass design with integrated down-sampling,
// an NCO, and FM modulation/demodulation. Everything is deterministic
// integer arithmetic so the simulated accelerators are bit-exact across
// runs; float helpers exist only for filter design and test oracles.
package dsp

import "math"

// CORDIC iteration count. 20 iterations give ~20 bits of angular precision,
// comfortably beyond the 16-bit audio path of the PAL demonstrator.
const cordicIters = 20

// Phase is a fixed-point angle where the full circle is 2^32: the natural
// wrap-around representation for NCOs and FM discriminators.
type Phase = uint32

// atanTable[k] = atan(2^-k) scaled so the full circle is 2^32.
var atanTable [cordicIters]int64

// cordicGainInv is 1/K = Π 1/sqrt(1+2^-2k) ≈ 0.607252935 in Q30.
var cordicGainInv int64

func init() {
	for k := 0; k < cordicIters; k++ {
		atanTable[k] = int64(math.Round(math.Atan(math.Pow(2, -float64(k))) / (2 * math.Pi) * 4294967296.0))
	}
	gain := 1.0
	for k := 0; k < cordicIters; k++ {
		gain *= math.Sqrt(1 + math.Pow(2, -2*float64(k)))
	}
	cordicGainInv = int64(math.Round((1 / gain) * (1 << 30)))
}

// mulQ30 multiplies a by a Q30 constant.
func mulQ30(a, q30 int64) int64 { return (a * q30) >> 30 }

// Rotate rotates the vector (i, q) by the given phase using CORDIC rotation
// mode and returns the rotated vector with unit gain (the CORDIC gain is
// compensated). Inputs should stay within ±2^28 to avoid overflow through
// the iteration gain of ~1.647.
func Rotate(i, q int32, angle Phase) (int32, int32) {
	x := int64(i)
	y := int64(q)
	// Map the angle into (-90°, 90°] with quadrant correction, since CORDIC
	// rotation converges only for |angle| <= ~99°.
	a := int64(int32(angle))       // signed view: (-2^31, 2^31) == (-180°, 180°)
	const quarter = int64(1) << 30 // 90°
	switch {
	case a > quarter: // (90°, 180°): rotate by a-180° then negate
		a -= quarter * 2
		x, y = -x, -y
	case a < -quarter: // (-180°, -90°)
		a += quarter * 2
		x, y = -x, -y
	}
	x = mulQ30(x, cordicGainInv)
	y = mulQ30(y, cordicGainInv)
	z := a
	for k := 0; k < cordicIters; k++ {
		xs := x >> uint(k)
		ys := y >> uint(k)
		if z >= 0 {
			x, y = x-ys, y+xs
			z -= atanTable[k]
		} else {
			x, y = x+ys, y-xs
			z += atanTable[k]
		}
	}
	return clamp32(x), clamp32(y)
}

// Vector runs CORDIC vectoring mode: it rotates (i, q) onto the positive x
// axis and returns the (gain-compensated) magnitude together with the angle
// of the input vector.
func Vector(i, q int32) (mag int32, angle Phase) {
	x := int64(i)
	y := int64(q)
	var z int64
	// Pre-rotate out of the left half-plane.
	const half = int64(1) << 31 // 180°
	if x < 0 {
		if y >= 0 {
			x, y = y, -x
			z = half / 2 // started 90° off
		} else {
			x, y = -y, x
			z = -half / 2
		}
	}
	for k := 0; k < cordicIters; k++ {
		xs := x >> uint(k)
		ys := y >> uint(k)
		if y <= 0 {
			x, y = x-ys, y+xs
			z -= atanTable[k]
		} else {
			x, y = x+ys, y-xs
			z += atanTable[k]
		}
	}
	m := mulQ30(x, cordicGainInv)
	return clamp32(m), Phase(uint64(z)) // wraps naturally mod 2^32
}

func clamp32(v int64) int32 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}

// NCO is a numerically controlled oscillator: a phase accumulator whose
// step encodes frequency/sampleRate as a fraction of 2^32 per sample.
type NCO struct {
	Phase Phase
	Step  Phase
}

// NCOStep converts a frequency in Hz at the given sample rate to a phase
// step.
func NCOStep(freqHz, sampleRateHz float64) Phase {
	frac := freqHz / sampleRateHz
	frac -= math.Floor(frac)
	return Phase(uint64(math.Round(frac*4294967296.0)) & 0xFFFFFFFF)
}

// Next advances the oscillator and returns the phase to apply for the
// current sample.
func (n *NCO) Next() Phase {
	p := n.Phase
	n.Phase += n.Step
	return p
}

// PhaseToRadians converts a fixed-point phase to radians in (-π, π].
func PhaseToRadians(p Phase) float64 {
	return float64(int32(p)) / 4294967296.0 * 2 * math.Pi
}

// RadiansToPhase converts radians to fixed-point phase.
func RadiansToPhase(r float64) Phase {
	t := r / (2 * math.Pi)
	t -= math.Floor(t)
	return Phase(uint64(math.Round(t*4294967296.0)) & 0xFFFFFFFF)
}
