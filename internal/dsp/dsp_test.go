package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestRotateMatchesTrig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const amp = 1 << 20
	for trial := 0; trial < 500; trial++ {
		angle := rng.Float64()*2*math.Pi - math.Pi
		i0 := int32(rng.Intn(amp*2) - amp)
		q0 := int32(rng.Intn(amp*2) - amp)
		gi, gq := Rotate(i0, q0, RadiansToPhase(angle))
		wi := float64(i0)*math.Cos(angle) - float64(q0)*math.Sin(angle)
		wq := float64(i0)*math.Sin(angle) + float64(q0)*math.Cos(angle)
		// 20 CORDIC iterations: expect ~1e-5 relative accuracy.
		tol := math.Max(64, 1e-4*math.Hypot(wi, wq))
		if math.Abs(float64(gi)-wi) > tol || math.Abs(float64(gq)-wq) > tol {
			t.Fatalf("rotate(%d,%d,%.4f) = (%d,%d), want (%.0f,%.0f)", i0, q0, angle, gi, gq, wi, wq)
		}
	}
}

func TestRotateZeroAngleIdentity(t *testing.T) {
	i, q := Rotate(100000, -50000, 0)
	if math.Abs(float64(i-100000)) > 8 || math.Abs(float64(q+50000)) > 8 {
		t.Errorf("rotate by 0 = (%d, %d)", i, q)
	}
}

func TestRotatePreservesMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		i0 := int32(rng.Intn(1<<22) + 1000)
		q0 := int32(rng.Intn(1<<22) - (1 << 21))
		m0 := math.Hypot(float64(i0), float64(q0))
		i1, q1 := Rotate(i0, q0, Phase(rng.Uint32()))
		m1 := math.Hypot(float64(i1), float64(q1))
		if math.Abs(m1-m0) > math.Max(64, 1e-4*m0) {
			t.Fatalf("magnitude %f -> %f", m0, m1)
		}
	}
}

func TestVectorMatchesAtan2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		i := int32(rng.Intn(1<<22) - (1 << 21))
		q := int32(rng.Intn(1<<22) - (1 << 21))
		if i == 0 && q == 0 {
			continue
		}
		mag, ph := Vector(i, q)
		wantMag := math.Hypot(float64(i), float64(q))
		wantPh := math.Atan2(float64(q), float64(i))
		gotPh := PhaseToRadians(ph)
		dm := math.Abs(float64(mag) - wantMag)
		dp := math.Abs(math.Mod(gotPh-wantPh+3*math.Pi, 2*math.Pi) - math.Pi)
		if dm > math.Max(64, 1e-4*wantMag) {
			t.Fatalf("vector(%d,%d) mag = %d, want %.0f", i, q, mag, wantMag)
		}
		if dp > 1e-4 {
			t.Fatalf("vector(%d,%d) phase = %.6f, want %.6f", i, q, gotPh, wantPh)
		}
	}
}

func TestPhaseConversionsRoundTrip(t *testing.T) {
	for _, r := range []float64{0, 0.1, -0.1, 1.5, -1.5, 3.0, -3.0} {
		p := RadiansToPhase(r)
		back := PhaseToRadians(p)
		d := math.Abs(math.Mod(back-r+3*math.Pi, 2*math.Pi) - math.Pi)
		if d > 1e-8 {
			t.Errorf("roundtrip %.3f -> %.9f", r, back)
		}
	}
}

func TestNCOStep(t *testing.T) {
	// A quarter of the sample rate = 2^30 per sample.
	if s := NCOStep(11025, 44100); s != 1<<30 {
		t.Errorf("step = %d, want %d", s, 1<<30)
	}
	// Negative frequencies wrap.
	if s := NCOStep(-11025, 44100); s != 3<<30 {
		t.Errorf("neg step = %d, want %d", s, uint32(3<<30))
	}
	n := NCO{Step: 1 << 30}
	n.Next()
	n.Next()
	if n.Phase != 1<<31 {
		t.Errorf("phase after 2 = %d", n.Phase)
	}
}

func TestDesignLowPassResponse(t *testing.T) {
	h, err := DesignLowPass(33, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 33 {
		t.Fatalf("taps = %d", len(h))
	}
	if g := Response(h, 0); math.Abs(g-1) > 1e-9 {
		t.Errorf("DC gain = %v", g)
	}
	if g := Response(h, 0.01); g < 0.9 {
		t.Errorf("passband gain at 0.01 = %v", g)
	}
	if g := Response(h, 0.2); g > 0.05 {
		t.Errorf("stopband gain at 0.2 = %v", g)
	}
	if g := Response(h, 0.45); g > 0.05 {
		t.Errorf("stopband gain at 0.45 = %v", g)
	}
}

func TestDesignLowPassValidation(t *testing.T) {
	if _, err := DesignLowPass(32, 0.1); err == nil {
		t.Error("even taps accepted")
	}
	if _, err := DesignLowPass(1, 0.1); err == nil {
		t.Error("too few taps accepted")
	}
	if _, err := DesignLowPass(33, 0.5); err == nil {
		t.Error("cutoff 0.5 accepted")
	}
	if _, err := DesignLowPass(33, 0); err == nil {
		t.Error("cutoff 0 accepted")
	}
}

func TestQuantizeQ15(t *testing.T) {
	q := QuantizeQ15([]float64{0, 0.5, -0.5, 1.5, -1.5})
	want := []int32{0, 16384, -16384, 32767, -32768}
	for i := range want {
		if q[i] != want[i] {
			t.Errorf("q[%d] = %d, want %d", i, q[i], want[i])
		}
	}
}

func TestFIRMatchesDirectConvolution(t *testing.T) {
	coef := QuantizeQ15([]float64{0.25, 0.5, 0.25})
	f, err := NewFIR(coef, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var xs []int32
	for n := 0; n < 50; n++ {
		x := int32(rng.Intn(1<<16) - (1 << 15))
		xs = append(xs, x)
		oi, _, ok := f.Push(x, 0)
		if !ok {
			t.Fatal("decimate-1 FIR must emit every sample")
		}
		var want int64
		for k := 0; k < len(coef); k++ {
			idx := n - (len(coef) - 1 - k)
			if idx >= 0 {
				want += int64(coef[k]) * int64(xs[idx])
			}
		}
		if int64(oi) != want>>15 {
			t.Fatalf("n=%d: out = %d, want %d", n, oi, want>>15)
		}
	}
}

func TestFIRDecimation(t *testing.T) {
	coef := QuantizeQ15([]float64{1})
	f, _ := NewFIR(coef, 8)
	outs := 0
	for n := 0; n < 64; n++ {
		if _, _, ok := f.Push(int32(n), 0); ok {
			outs++
		}
	}
	if outs != 8 {
		t.Errorf("outputs = %d, want 8", outs)
	}
}

func TestFIRValidation(t *testing.T) {
	if _, err := NewFIR(nil, 1); err == nil {
		t.Error("empty coefficients accepted")
	}
	if _, err := NewFIR([]int32{1}, 0); err == nil {
		t.Error("zero decimation accepted")
	}
}

func TestFIRStateSaveLoadRoundTrip(t *testing.T) {
	coef := QuantizeQ15([]float64{0.2, 0.3, 0.3, 0.2})
	a, _ := NewFIR(coef, 3)
	b, _ := NewFIR(coef, 3)
	rng := rand.New(rand.NewSource(1))
	feed := func(f *FIR, n int) []int64 {
		var outs []int64
		for k := 0; k < n; k++ {
			i := int32(rng.Intn(1 << 14))
			q := int32(rng.Intn(1 << 14))
			if oi, oq, ok := f.Push(i, q); ok {
				outs = append(outs, int64(oi)<<32|int64(uint32(oq)))
			}
		}
		return outs
	}
	feed(a, 17)
	st := a.SaveState()
	if err := b.LoadState(st); err != nil {
		t.Fatal(err)
	}
	// After state transplant both filters must behave identically.
	rng = rand.New(rand.NewSource(2))
	var oa, ob []int64
	for k := 0; k < 40; k++ {
		i := int32(rng.Intn(1 << 14))
		q := int32(rng.Intn(1 << 14))
		if x, y, ok := a.Push(i, q); ok {
			oa = append(oa, int64(x)<<32|int64(uint32(y)))
		}
		if x, y, ok := b.Push(i, q); ok {
			ob = append(ob, int64(x)<<32|int64(uint32(y)))
		}
	}
	if len(oa) != len(ob) {
		t.Fatalf("output counts differ: %d vs %d", len(oa), len(ob))
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("outputs diverge at %d", i)
		}
	}
}

func TestFIRLoadStateValidation(t *testing.T) {
	f, _ := NewFIR(QuantizeQ15([]float64{1, 0, 0}), 2)
	if err := f.LoadState(make([]uint64, 2)); err == nil {
		t.Error("wrong size accepted")
	}
	bad := make([]uint64, f.StateWords())
	bad[len(bad)-1] = uint64(99) << 32 // pos out of range
	if err := f.LoadState(bad); err == nil {
		t.Error("corrupt control word accepted")
	}
}

func TestFIRReset(t *testing.T) {
	f, _ := NewFIR(QuantizeQ15([]float64{0.5, 0.5}), 2)
	f.Push(1000, 1000)
	f.Reset()
	oi, oq, ok := f.Push(0, 0)
	if ok {
		t.Fatal("decimation counter not reset")
	}
	oi, oq, ok = f.Push(0, 0)
	if !ok || oi != 0 || oq != 0 {
		t.Errorf("residue after reset: (%d,%d,%v)", oi, oq, ok)
	}
}

func TestMixerShiftsFrequency(t *testing.T) {
	// Mix a tone at +f down by f: the result must be (close to) DC.
	const fs = 1 << 16
	const f = 1200.0
	src := NewModulator(f, 0, fs, 1<<20) // pure carrier
	mix := NewMixer(-f, fs)
	var sumI, sumQ, n float64
	for k := 0; k < 2000; k++ {
		i, q := src.Modulate(0)
		oi, oq := mix.Mix(i, q)
		if k > 100 {
			sumI += float64(oi)
			sumQ += float64(oq)
			n++
		}
	}
	// DC component should be near the carrier amplitude.
	if math.Hypot(sumI/n, sumQ/n) < (1<<20)*0.9 {
		t.Errorf("mixed output not at DC: mean = (%f, %f)", sumI/n, sumQ/n)
	}
}

func TestFMRoundTripRecoversTone(t *testing.T) {
	// Modulate a sine, demodulate, compare (after skipping transients).
	const fs = 200000.0
	const audioF = 1000.0
	const dev = 25000.0
	mod := NewModulator(0, dev, fs, 1<<24) // baseband FM
	dem := NewDiscriminator()
	n := 4000
	var inPeak, outPeak float64
	var dot, inNorm, outNorm float64
	var ins, outs []float64
	for k := 0; k < n; k++ {
		audio := int32(30000 * math.Sin(2*math.Pi*audioF*float64(k)/fs))
		i, q := mod.Modulate(audio)
		out := dem.Demod(i, q)
		if k < 16 {
			continue
		}
		ins = append(ins, float64(audio))
		outs = append(outs, float64(out))
	}
	for k := range ins {
		if math.Abs(ins[k]) > inPeak {
			inPeak = math.Abs(ins[k])
		}
		if math.Abs(outs[k]) > outPeak {
			outPeak = math.Abs(outs[k])
		}
	}
	// Correlation between input and output must be ~1 (same shape).
	for k := range ins {
		a, b := ins[k]/inPeak, outs[k]/outPeak
		dot += a * b
		inNorm += a * a
		outNorm += b * b
	}
	corr := dot / math.Sqrt(inNorm*outNorm)
	if corr < 0.999 {
		t.Errorf("FM roundtrip correlation = %f", corr)
	}
	if outPeak == 0 {
		t.Fatal("no demodulated signal")
	}
}

func TestDiscriminatorFirstSampleZero(t *testing.T) {
	d := NewDiscriminator()
	if out := d.Demod(1000, 0); out != 0 {
		t.Errorf("first output = %d, want 0", out)
	}
	d.Reset()
	if out := d.Demod(0, 1000); out != 0 {
		t.Errorf("after reset = %d, want 0", out)
	}
}

func TestDiscriminatorConstantFrequency(t *testing.T) {
	// A constant-frequency input yields a constant phase step.
	const step = 1 << 26
	n := NCO{Step: step}
	d := NewDiscriminator()
	var outs []int32
	for k := 0; k < 50; k++ {
		i, q := Rotate(1<<22, 0, n.Next())
		outs = append(outs, d.Demod(i, q))
	}
	want := int32(step >> d.OutputShift)
	for k := 5; k < len(outs); k++ {
		if math.Abs(float64(outs[k]-want)) > 4 {
			t.Fatalf("out[%d] = %d, want ~%d", k, outs[k], want)
		}
	}
}
