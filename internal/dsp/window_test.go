package dsp

import (
	"math"
	"testing"
)

func TestWindowNames(t *testing.T) {
	for _, w := range []Window{Hamming, Hann, Blackman, BlackmanHarris, Rectangular} {
		if w.String() == "?" {
			t.Errorf("window %d has no name", w)
		}
	}
}

func TestWindowedDesignsValid(t *testing.T) {
	for _, w := range []Window{Hamming, Hann, Blackman, BlackmanHarris, Rectangular} {
		h, err := DesignLowPassWindowed(33, 0.05, w)
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		if g := Response(h, 0); math.Abs(g-1) > 1e-9 {
			t.Errorf("%v: DC gain = %v", w, g)
		}
		// Symmetric (linear phase).
		for i := 0; i < len(h)/2; i++ {
			if math.Abs(h[i]-h[len(h)-1-i]) > 1e-12 {
				t.Errorf("%v: asymmetric at %d", w, i)
			}
		}
	}
}

func TestDesignLowPassIsHamming(t *testing.T) {
	a, _ := DesignLowPass(33, 0.07)
	b, _ := DesignLowPassWindowed(33, 0.07, Hamming)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("DesignLowPass differs from Hamming design at %d", i)
		}
	}
}

func TestWindowStopbandOrdering(t *testing.T) {
	// For equal taps, Blackman-Harris attenuates the stopband more than
	// Hamming, which beats rectangular.
	att := func(w Window) float64 {
		h, err := DesignLowPassWindowed(63, 0.1, w)
		if err != nil {
			t.Fatal(err)
		}
		return StopbandAttenuation(h, 0.2)
	}
	rect := att(Rectangular)
	ham := att(Hamming)
	bh := att(BlackmanHarris)
	if !(bh < ham && ham < rect) {
		t.Errorf("attenuation ordering broken: bh=%.1f ham=%.1f rect=%.1f", bh, ham, rect)
	}
	if ham > -40 {
		t.Errorf("hamming stopband only %.1f dB", ham)
	}
}

func TestWindowedDesignValidation(t *testing.T) {
	if _, err := DesignLowPassWindowed(10, 0.1, Hann); err == nil {
		t.Error("even taps accepted")
	}
	if _, err := DesignLowPassWindowed(11, 0.9, Hann); err == nil {
		t.Error("bad cutoff accepted")
	}
}

func TestGoertzelInDSP(t *testing.T) {
	var x []int32
	for n := 0; n < 2000; n++ {
		x = append(x, int32(5000*math.Sin(2*math.Pi*100*float64(n)/8000)))
	}
	on := Goertzel(x, 100, 8000)
	off := Goertzel(x, 333, 8000)
	if on < 1000*off {
		t.Errorf("goertzel separation: on=%g off=%g", on, off)
	}
	if Goertzel(nil, 1, 2) != 0 {
		t.Error("empty input should give 0")
	}
}
