package dsp

import (
	"fmt"
	"math"
)

// Window selects the tapering function for windowed-sinc FIR design. The
// paper's 33-tap filter corresponds to the classic Hamming design; the
// other windows trade transition width against stopband attenuation and are
// provided for exploring the accelerator's configurability (a "coarsely
// programmable" filter accepts any coefficient set).
type Window int

// Supported windows.
const (
	Hamming Window = iota
	Hann
	Blackman
	BlackmanHarris
	Rectangular
)

func (w Window) String() string {
	switch w {
	case Hamming:
		return "hamming"
	case Hann:
		return "hann"
	case Blackman:
		return "blackman"
	case BlackmanHarris:
		return "blackman-harris"
	case Rectangular:
		return "rectangular"
	}
	return "?"
}

// value evaluates the window at position n of taps points.
func (w Window) value(n, taps int) float64 {
	x := 2 * math.Pi * float64(n) / float64(taps-1)
	switch w {
	case Hamming:
		return 0.54 - 0.46*math.Cos(x)
	case Hann:
		return 0.5 - 0.5*math.Cos(x)
	case Blackman:
		return 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	case BlackmanHarris:
		return 0.35875 - 0.48829*math.Cos(x) + 0.14128*math.Cos(2*x) - 0.01168*math.Cos(3*x)
	case Rectangular:
		return 1
	}
	return 1
}

// DesignLowPassWindowed is DesignLowPass with an explicit window choice.
func DesignLowPassWindowed(taps int, cutoff float64, w Window) ([]float64, error) {
	if taps < 3 || taps%2 == 0 {
		return nil, fmt.Errorf("dsp: taps must be odd and >= 3, got %d", taps)
	}
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, fmt.Errorf("dsp: cutoff must be in (0, 0.5), got %v", cutoff)
	}
	h := make([]float64, taps)
	mid := float64(taps-1) / 2
	var sum float64
	for n := 0; n < taps; n++ {
		x := float64(n) - mid
		var s float64
		if x == 0 {
			s = 2 * cutoff
		} else {
			s = math.Sin(2*math.Pi*cutoff*x) / (math.Pi * x)
		}
		h[n] = s * w.value(n, taps)
		sum += h[n]
	}
	for n := range h {
		h[n] /= sum
	}
	return h, nil
}

// StopbandAttenuation estimates the worst stopband magnitude (relative to
// DC gain) of a low-pass design over [edge, 0.5), in dB (negative values;
// more negative = better).
func StopbandAttenuation(h []float64, edge float64) float64 {
	worst := 0.0
	for f := edge; f < 0.5; f += 0.002 {
		if g := Response(h, f); g > worst {
			worst = g
		}
	}
	if worst == 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(worst)
}

// Goertzel measures the normalised power of a tone at freq in a real
// signal sampled at rate — the single-bin DFT used as the functional test
// oracle throughout the PAL experiments.
func Goertzel(x []int32, freq, rate float64) float64 {
	if len(x) == 0 {
		return 0
	}
	w := 2 * math.Pi * freq / rate
	c := 2 * math.Cos(w)
	var s1, s2 float64
	for _, v := range x {
		s0 := float64(v) + c*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - c*s1*s2
	return power / float64(len(x)) / float64(len(x))
}
