package dsp

import "testing"

func BenchmarkRotate(b *testing.B) {
	var acc int32
	for i := 0; i < b.N; i++ {
		x, y := Rotate(1<<20, -(1 << 19), Phase(uint32(i)*2654435761))
		acc += x + y
	}
	_ = acc
}

func BenchmarkVector(b *testing.B) {
	var acc int32
	for i := 0; i < b.N; i++ {
		m, _ := Vector(int32(i)|1, int32(-i))
		acc += m
	}
	_ = acc
}

func BenchmarkFIRPush33Taps(b *testing.B) {
	h, err := DesignLowPass(33, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	f, err := NewFIR(QuantizeQ15(h), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var acc int32
	for i := 0; i < b.N; i++ {
		oi, oq, _ := f.Push(int32(i), int32(-i))
		acc += oi + oq
	}
	_ = acc
}

func BenchmarkFIRPushDecimate8(b *testing.B) {
	h, _ := DesignLowPass(33, 0.05)
	f, _ := NewFIR(QuantizeQ15(h), 8)
	for i := 0; i < b.N; i++ {
		f.Push(int32(i), 0)
	}
}

func BenchmarkFMModDemodPair(b *testing.B) {
	mod := NewModulator(0, 25000, 200000, 1<<24)
	dem := NewDiscriminator()
	var acc int32
	for i := 0; i < b.N; i++ {
		x, y := mod.Modulate(int32(i & 0x7fff))
		acc += dem.Demod(x, y)
	}
	_ = acc
}

func BenchmarkDesignLowPass(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DesignLowPass(33, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
