package dsp

import (
	"fmt"
	"math"
)

// DesignLowPass designs a linear-phase low-pass FIR by the windowed-sinc
// method with a Hamming window. cutoff is the -6 dB corner as a fraction of
// the sample rate (0 < cutoff < 0.5). The paper's demonstrator uses a
// 33-tap complex FIR with built-in down-sampler.
func DesignLowPass(taps int, cutoff float64) ([]float64, error) {
	if taps < 3 || taps%2 == 0 {
		return nil, fmt.Errorf("dsp: taps must be odd and >= 3, got %d", taps)
	}
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, fmt.Errorf("dsp: cutoff must be in (0, 0.5), got %v", cutoff)
	}
	h := make([]float64, taps)
	mid := float64(taps-1) / 2
	var sum float64
	for n := 0; n < taps; n++ {
		x := float64(n) - mid
		var s float64
		if x == 0 {
			s = 2 * cutoff
		} else {
			s = math.Sin(2*math.Pi*cutoff*x) / (math.Pi * x)
		}
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(n)/float64(taps-1))
		h[n] = s * w
		sum += h[n]
	}
	// Normalise to unity DC gain.
	for n := range h {
		h[n] /= sum
	}
	return h, nil
}

// QuantizeQ15 converts float coefficients to Q15 fixed point.
func QuantizeQ15(h []float64) []int32 {
	q := make([]int32, len(h))
	for i, v := range h {
		x := math.Round(v * 32768)
		if x > 32767 {
			x = 32767
		}
		if x < -32768 {
			x = -32768
		}
		q[i] = int32(x)
	}
	return q
}

// FIR is a streaming complex filter with real Q15 coefficients and an
// integrated down-sampler: exactly the accelerator the paper calls
// "LPF + down-sampler". Push consumes one complex sample and returns one
// output sample every Decimate inputs.
type FIR struct {
	Coef     []int32 // Q15
	Decimate int

	di, dq []int32 // delay lines
	pos    int
	count  int
}

// NewFIR returns a streaming filter. decimate >= 1.
func NewFIR(coef []int32, decimate int) (*FIR, error) {
	if len(coef) == 0 {
		return nil, fmt.Errorf("dsp: FIR needs coefficients")
	}
	if decimate < 1 {
		return nil, fmt.Errorf("dsp: decimation factor must be >= 1, got %d", decimate)
	}
	return &FIR{
		Coef:     append([]int32(nil), coef...),
		Decimate: decimate,
		di:       make([]int32, len(coef)),
		dq:       make([]int32, len(coef)),
	}, nil
}

// Push feeds one sample; ok is true on the decimated output instants.
func (f *FIR) Push(i, q int32) (oi, oq int32, ok bool) {
	f.di[f.pos] = i
	f.dq[f.pos] = q
	f.pos = (f.pos + 1) % len(f.Coef)
	f.count++
	if f.count < f.Decimate {
		return 0, 0, false
	}
	f.count = 0
	var accI, accQ int64
	idx := f.pos // oldest sample
	for k := len(f.Coef) - 1; k >= 0; k-- {
		c := int64(f.Coef[k])
		accI += c * int64(f.di[idx])
		accQ += c * int64(f.dq[idx])
		idx++
		if idx == len(f.Coef) {
			idx = 0
		}
	}
	return clamp32(accI >> 15), clamp32(accQ >> 15), true
}

// Reset clears the delay line and decimation counter.
func (f *FIR) Reset() {
	for i := range f.di {
		f.di[i], f.dq[i] = 0, 0
	}
	f.pos, f.count = 0, 0
}

// StateWords returns the filter state packed as 64-bit words (delay lines
// plus position/counter), the quantity the configuration bus must move on a
// context switch. The paper's Rs covers exactly this save/restore.
func (f *FIR) StateWords() int {
	return len(f.Coef) + 1 // packed I/Q pairs + control word
}

// SaveState serialises the mutable state.
func (f *FIR) SaveState() []uint64 {
	out := make([]uint64, 0, f.StateWords())
	for k := range f.di {
		out = append(out, uint64(uint32(f.di[k]))<<32|uint64(uint32(f.dq[k])))
	}
	out = append(out, uint64(uint32(f.pos))<<32|uint64(uint32(f.count)))
	return out
}

// LoadState restores a SaveState snapshot.
func (f *FIR) LoadState(w []uint64) error {
	if len(w) != f.StateWords() {
		return fmt.Errorf("dsp: FIR state size %d, want %d", len(w), f.StateWords())
	}
	for k := range f.di {
		f.di[k] = int32(uint32(w[k] >> 32))
		f.dq[k] = int32(uint32(w[k]))
	}
	ctl := w[len(w)-1]
	f.pos = int(uint32(ctl >> 32))
	f.count = int(uint32(ctl))
	if f.pos < 0 || f.pos >= len(f.Coef) || f.count < 0 || f.count >= f.Decimate {
		return fmt.Errorf("dsp: corrupt FIR control word")
	}
	return nil
}

// Response evaluates the filter's float frequency response magnitude at a
// normalised frequency (fraction of sample rate) — a test oracle.
func Response(h []float64, freq float64) float64 {
	var re, im float64
	for n, c := range h {
		re += c * math.Cos(2*math.Pi*freq*float64(n))
		im -= c * math.Sin(2*math.Pi*freq*float64(n))
	}
	return math.Hypot(re, im)
}
