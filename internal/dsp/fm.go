package dsp

// This file implements the FM path of the PAL stereo decoder: a CORDIC
// channel mixer (frequency translation), an FM discriminator (phase
// differentiation via CORDIC vectoring) and an FM modulator used by the
// synthetic front-end.

// Mixer translates a complex stream by a fixed frequency using CORDIC
// rotation — the paper's "channel mixer accelerator containing a CORDIC".
type Mixer struct {
	Osc NCO
}

// NewMixer builds a mixer shifting by freqHz (negative = down-conversion)
// at the given sample rate.
func NewMixer(freqHz, sampleRateHz float64) *Mixer {
	return &Mixer{Osc: NCO{Step: NCOStep(freqHz, sampleRateHz)}}
}

// Mix translates one sample.
func (m *Mixer) Mix(i, q int32) (int32, int32) {
	return Rotate(i, q, m.Osc.Next())
}

// Reset rewinds the oscillator phase.
func (m *Mixer) Reset() { m.Osc.Phase = 0 }

// Discriminator demodulates FM by differentiating the instantaneous phase:
// out[n] = angle(x[n]) - angle(x[n-1]), the paper's second CORDIC
// accelerator ("convert the data stream from FM radio to normal audio").
// The output is the phase step per sample (full circle = 2^32) scaled down
// to a signed 32-bit audio-domain sample.
type Discriminator struct {
	prev     Phase
	havePrev bool
	// OutputShift divides the raw phase delta (31-bit full scale) down to
	// the desired amplitude; 16 yields ±32767-ish for deviations near a
	// quarter of the sample rate.
	OutputShift uint
}

// NewDiscriminator returns a discriminator with the default output scaling.
func NewDiscriminator() *Discriminator { return &Discriminator{OutputShift: 16} }

// Demod consumes one complex sample and produces one audio sample.
func (d *Discriminator) Demod(i, q int32) int32 {
	_, ph := Vector(i, q)
	if !d.havePrev {
		d.prev = ph
		d.havePrev = true
		return 0
	}
	delta := int32(ph - d.prev) // wrap-safe signed difference
	d.prev = ph
	return delta >> d.OutputShift
}

// Reset clears the phase history.
func (d *Discriminator) Reset() { d.havePrev = false; d.prev = 0 }

// Prev returns the stored previous phase (context-switch state).
func (d *Discriminator) Prev() Phase { return d.prev }

// HavePrev reports whether a previous phase is stored.
func (d *Discriminator) HavePrev() bool { return d.havePrev }

// SetHistory restores the phase history saved by Prev/HavePrev.
func (d *Discriminator) SetHistory(p Phase, have bool) {
	d.prev = p
	d.havePrev = have
}

// Modulator produces a complex FM signal from an audio stream: the
// synthetic stand-in for the Epiq FMC-1RX front-end plus PAL transmitter.
type Modulator struct {
	Osc NCO
	// DeviationStep is the phase step added per unit of full-scale input
	// (audio sample / 2^15 × DeviationStep).
	DeviationStep Phase
	Amplitude     int32
}

// NewModulator builds an FM modulator at carrierHz with the given peak
// deviation in Hz for full-scale (±32767) audio input.
func NewModulator(carrierHz, deviationHz, sampleRateHz float64, amplitude int32) *Modulator {
	return &Modulator{
		Osc:           NCO{Step: NCOStep(carrierHz, sampleRateHz)},
		DeviationStep: NCOStep(deviationHz, sampleRateHz),
		Amplitude:     amplitude,
	}
}

// Modulate produces the next complex sample for one audio input sample
// (16-bit range).
func (m *Modulator) Modulate(audio int32) (int32, int32) {
	dev := Phase(int64(audio) * int64(int32(m.DeviationStep)) >> 15)
	m.Osc.Phase += dev
	p := m.Osc.Next()
	return Rotate(m.Amplitude, 0, p)
}
