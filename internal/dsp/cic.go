package dsp

import "fmt"

// CIC is a cascaded integrator-comb decimator — the standard hardware
// down-converter front-end in SDR systems (multiplier-free, exactly the
// kind of "coarsely programmable stream accelerator" the paper's
// architecture hosts). N integrator stages run at the input rate, the
// decimator keeps every R-th sample, and N comb stages (differential delay
// M = 1) run at the output rate.
//
// DC gain is (R·M)^N; Process right-shifts the output by GainShift to
// renormalise. For equal-length moving averages, a 1-stage CIC is exactly
// a boxcar sum of R samples, which the tests exploit as an oracle.
type CIC struct {
	Stages   int
	Decimate int

	integr []int64 // integrator state per stage (I and Q interleaved pairs)
	integQ []int64
	combI  []int64
	combQ  []int64
	phase  int
	// GainShift renormalises the (R)^N DC gain.
	GainShift uint
}

// NewCIC builds an N-stage decimate-by-R CIC with automatic gain
// renormalisation (shift by N·log2(R) when R is a power of two, else the
// floor of that).
func NewCIC(stages, decimate int) (*CIC, error) {
	if stages < 1 || stages > 8 {
		return nil, fmt.Errorf("dsp: CIC stages must be in 1..8, got %d", stages)
	}
	if decimate < 1 {
		return nil, fmt.Errorf("dsp: CIC decimation must be >= 1, got %d", decimate)
	}
	// Renormalisation: the DC gain is decimate^stages; shift by
	// stages·⌈log2(decimate)⌉ (exact for power-of-two factors).
	bits := 0
	for v := 1; v < decimate; v <<= 1 {
		bits++
	}
	shift := uint(bits * stages)
	return &CIC{
		Stages:    stages,
		Decimate:  decimate,
		integr:    make([]int64, stages),
		integQ:    make([]int64, stages),
		combI:     make([]int64, stages),
		combQ:     make([]int64, stages),
		GainShift: shift,
	}, nil
}

// Push feeds one complex sample; ok is true on decimated output instants.
// Integrator arithmetic wraps modulo 2^64 by design (the classic CIC
// property that makes overflow harmless as long as the word is wide enough
// for the gain).
func (c *CIC) Push(i, q int32) (oi, oq int32, ok bool) {
	ai, aq := int64(i), int64(q)
	for s := 0; s < c.Stages; s++ {
		c.integr[s] += ai
		c.integQ[s] += aq
		ai, aq = c.integr[s], c.integQ[s]
	}
	c.phase++
	if c.phase < c.Decimate {
		return 0, 0, false
	}
	c.phase = 0
	for s := 0; s < c.Stages; s++ {
		di := ai - c.combI[s]
		dq := aq - c.combQ[s]
		c.combI[s], c.combQ[s] = ai, aq
		ai, aq = di, dq
	}
	return clamp32(ai >> c.GainShift), clamp32(aq >> c.GainShift), true
}

// Reset clears all state.
func (c *CIC) Reset() {
	for s := 0; s < c.Stages; s++ {
		c.integr[s], c.integQ[s] = 0, 0
		c.combI[s], c.combQ[s] = 0, 0
	}
	c.phase = 0
}

// StateWords reports the context-switch footprint.
func (c *CIC) StateWords() int { return 4*c.Stages + 1 }

// SaveState serialises the mutable state.
func (c *CIC) SaveState() []uint64 {
	out := make([]uint64, 0, c.StateWords())
	for s := 0; s < c.Stages; s++ {
		out = append(out, uint64(c.integr[s]), uint64(c.integQ[s]), uint64(c.combI[s]), uint64(c.combQ[s]))
	}
	out = append(out, uint64(c.phase))
	return out
}

// LoadState restores a SaveState snapshot.
func (c *CIC) LoadState(w []uint64) error {
	if len(w) != c.StateWords() {
		return fmt.Errorf("dsp: CIC state size %d, want %d", len(w), c.StateWords())
	}
	idx := 0
	for s := 0; s < c.Stages; s++ {
		c.integr[s] = int64(w[idx])
		c.integQ[s] = int64(w[idx+1])
		c.combI[s] = int64(w[idx+2])
		c.combQ[s] = int64(w[idx+3])
		idx += 4
	}
	c.phase = int(w[idx])
	if c.phase < 0 || c.phase >= c.Decimate {
		return fmt.Errorf("dsp: corrupt CIC phase")
	}
	return nil
}
