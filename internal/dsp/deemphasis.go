package dsp

import (
	"fmt"
	"math"
)

// Deemphasis is the one-pole IIR that undoes FM broadcast pre-emphasis
// (PAL television sound uses τ = 50 µs): y[n] = a·x[n] + (1-a)·y[n-1] with
// a = 1 - exp(-1/(τ·fs)). It runs as a software post-processing step on
// the processor tile after stereo reconstruction, so it is implemented in
// fixed point (Q15 coefficient) like the rest of the audio path.
type Deemphasis struct {
	// A is the Q15 filter coefficient.
	A int32
	y int64 // Q15 state
}

// NewDeemphasis builds the filter for a time constant in seconds at the
// given sample rate.
func NewDeemphasis(tau, sampleRate float64) (*Deemphasis, error) {
	if tau <= 0 || sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: deemphasis needs positive tau and rate")
	}
	a := 1 - math.Exp(-1/(tau*sampleRate))
	q := int32(math.Round(a * 32768))
	if q < 1 {
		q = 1
	}
	if q > 32768 {
		q = 32768
	}
	return &Deemphasis{A: q}, nil
}

// Process filters one sample.
func (d *Deemphasis) Process(x int32) int32 {
	// y += a·(x - y), all in Q15-scaled arithmetic on the state.
	xq := int64(x) << 15
	d.y += (int64(d.A) * ((xq - d.y) >> 15))
	return int32(d.y >> 15)
}

// Reset clears the filter state.
func (d *Deemphasis) Reset() { d.y = 0 }

// SaveState / LoadState support context switches like the other engines.
func (d *Deemphasis) SaveState() []uint64 { return []uint64{uint64(d.y)} }

// LoadState restores a snapshot.
func (d *Deemphasis) LoadState(s []uint64) error {
	if len(s) != 1 {
		return fmt.Errorf("dsp: deemphasis state must be 1 word")
	}
	d.y = int64(s[0])
	return nil
}

// ResponseAt returns the filter's analytic magnitude response at a
// frequency (fraction of the sample rate) — the float oracle for tests.
func (d *Deemphasis) ResponseAt(freq float64) float64 {
	a := float64(d.A) / 32768
	b := 1 - a
	// H(z) = a / (1 - b·z^-1), |H(e^{jw})| = a / sqrt(1 + b² - 2b·cos w).
	w := 2 * math.Pi * freq
	return a / math.Sqrt(1+b*b-2*b*math.Cos(w))
}
