package ring

import (
	"testing"

	"accelshare/internal/sim"
)

func TestSlottedValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewSlotted(k, SlottedConfig{Nodes: 1}); err == nil {
		t.Error("1-node ring accepted")
	}
}

func TestSlottedDelivery(t *testing.T) {
	k := sim.NewKernel()
	r, err := NewSlotted(k, SlottedConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	var got []sim.Word
	var at []sim.Time
	r.Node(2).Bind(1, func(m Message) {
		got = append(got, m.W)
		at = append(at, k.Now())
	})
	if !r.Node(0).TrySend(2, 1, 42) {
		t.Fatal("send rejected")
	}
	k.RunAll()
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
	// 2 hops at 1 cycle/hop: delivery at cycle 2 (injection into the slot
	// passing at t=0 counts as hop 0).
	if at[0] != 2 {
		t.Errorf("delivered at %d, want 2", at[0])
	}
}

func TestSlottedInOrderPerPair(t *testing.T) {
	k := sim.NewKernel()
	r, _ := NewSlotted(k, SlottedConfig{Nodes: 5, InjectionDepth: 16})
	var got []sim.Word
	r.Node(3).Bind(0, func(m Message) { got = append(got, m.W) })
	for i := 0; i < 10; i++ {
		for !r.Node(1).TrySend(3, 0, sim.Word(i)) {
			k.RunAll()
		}
	}
	k.RunAll()
	if len(got) != 10 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, w := range got {
		if w != sim.Word(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestSlottedInjectionWaitBounded(t *testing.T) {
	// Guaranteed throughput: with competing traffic, no injection waits
	// longer than one slot revolution per queued word.
	k := sim.NewKernel()
	const nodes = 6
	r, _ := NewSlotted(k, SlottedConfig{Nodes: nodes, InjectionDepth: 2})
	for i := 0; i < nodes; i++ {
		r.Node(i).Bind(0, func(Message) {})
	}
	// All nodes flood their successor+2.
	sent := make([]int, nodes)
	const perNode = 50
	var pump func()
	pump = func() {
		progress := false
		for i := 0; i < nodes; i++ {
			if sent[i] < perNode && r.Node(i).TrySend((i+2)%nodes, 0, sim.Word(sent[i])) {
				sent[i]++
				progress = true
			}
		}
		if progress || !allSent(sent, perNode) {
			k.Schedule(1, pump)
		}
	}
	k.Schedule(0, pump)
	k.RunAll()
	if r.Delivered != nodes*perNode {
		t.Fatalf("delivered %d of %d", r.Delivered, nodes*perNode)
	}
	// A word at the head of the injection queue waits at most one
	// revolution (N cycles) for a free slot; with depth-2 buffering the
	// recorded waits stay within a small multiple.
	if r.MaxWait > 3*nodes {
		t.Errorf("max injection wait %d exceeds 3 revolutions", r.MaxWait)
	}
}

func allSent(sent []int, want int) bool {
	for _, s := range sent {
		if s < want {
			return false
		}
	}
	return true
}

func TestSlottedParksWhenIdle(t *testing.T) {
	k := sim.NewKernel()
	r, _ := NewSlotted(k, SlottedConfig{Nodes: 3})
	n := 0
	r.Node(1).Bind(0, func(Message) { n++ })
	r.Node(0).TrySend(1, 0, 1)
	k.RunAll() // must terminate: ring parks after drain
	if n != 1 {
		t.Fatalf("delivered %d", n)
	}
	r.Node(0).TrySend(1, 0, 2)
	k.RunAll()
	if n != 2 {
		t.Fatalf("restart failed: %d", n)
	}
}

// TestSlottedMatchesAbstraction validates the transaction-level Ring
// against the cycle-true mechanism: under light traffic both deliver with
// hop-count latency, and under saturation the abstraction is optimistic by
// at most one revolution per word (its guaranteed-throughput contract).
func TestSlottedMatchesAbstraction(t *testing.T) {
	const nodes = 6
	const words = 40
	run := func(useSlotted bool) []sim.Time {
		k := sim.NewKernel()
		var times []sim.Time
		record := func(Message) { times = append(times, k.Now()) }
		if useSlotted {
			r, _ := NewSlotted(k, SlottedConfig{Nodes: nodes, InjectionDepth: 64})
			r.Node(3).Bind(0, record)
			for i := 0; i < words; i++ {
				if !r.Node(0).TrySend(3, 0, sim.Word(i)) {
					t.Fatal("send rejected")
				}
			}
		} else {
			r, _ := New(k, Config{Nodes: nodes, HopLatency: 1, Direction: Clockwise, InjectionDepth: 64})
			r.Node(3).Bind(0, record)
			for i := 0; i < words; i++ {
				if !r.Node(0).TrySend(3, 0, sim.Word(i)) {
					t.Fatal("send rejected")
				}
			}
		}
		k.RunAll()
		return times
	}
	abs := run(false)
	slt := run(true)
	if len(abs) != words || len(slt) != words {
		t.Fatalf("deliveries: %d vs %d", len(abs), len(slt))
	}
	for i := 0; i < words; i++ {
		// The abstraction may not be later than the mechanism, and the
		// mechanism lags by at most one revolution per word.
		if abs[i] > slt[i] {
			t.Errorf("word %d: abstraction %d later than slotted %d", i, abs[i], slt[i])
		}
		if slt[i] > abs[i]+nodes {
			t.Errorf("word %d: slotted %d lags abstraction %d by more than a revolution", i, slt[i], abs[i])
		}
	}
}

func TestTransportInterfaceSurface(t *testing.T) {
	// Both implementations satisfy Transport and agree on the accessor
	// surface.
	k := sim.NewKernel()
	var transports []Transport
	r, err := New(k, Config{Nodes: 4, Direction: Clockwise})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSlotted(k, SlottedConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	transports = append(transports, r, s)
	for _, tr := range transports {
		if tr.Nodes() != 4 {
			t.Errorf("Nodes() = %d", tr.Nodes())
		}
		if tr.DeliveredWords() != 0 {
			t.Errorf("fresh transport carried %d words", tr.DeliveredWords())
		}
		n := tr.Node(0)
		if n.Free() <= 0 {
			t.Error("fresh node has no injection space")
		}
	}
	// Carry one word on each and recheck the counters.
	r.Node(1).Bind(0, func(Message) {})
	s.Node(1).Bind(0, func(Message) {})
	r.Node(0).TrySend(1, 0, 1)
	s.Node(0).TrySend(1, 0, 1)
	k.RunAll()
	if r.DeliveredWords() != 1 || s.DeliveredWords() != 1 {
		t.Errorf("delivered = %d / %d", r.DeliveredWords(), s.DeliveredWords())
	}
}

func TestNewDualSlottedCreditDirection(t *testing.T) {
	k := sim.NewKernel()
	d, err := NewDualSlotted(k, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Credits travel counter-clockwise: a 1-position-back hop is fast.
	var dataAt, creditAt sim.Time
	d.Data.Node(1).Bind(0, func(Message) { dataAt = k.Now() })
	d.Credit.Node(0).Bind(0, func(Message) { creditAt = k.Now() })
	d.Data.Node(0).TrySend(1, 0, 1)   // 1 hop clockwise
	d.Credit.Node(1).TrySend(0, 0, 1) // 1 hop counter-clockwise
	k.RunAll()
	if dataAt == 0 || creditAt == 0 {
		t.Fatalf("deliveries missing: data %d credit %d", dataAt, creditAt)
	}
	if dataAt > 6 || creditAt > 6 {
		t.Errorf("short hops took data=%d credit=%d cycles", dataAt, creditAt)
	}
	subWakes := 0
	d.Data.Node(2).SubscribeSpace(sim.NewWaker(k, func() { subWakes++ }))
	d.Data.Node(2).TrySend(3, 9, 0)
	// Unbound port panics on delivery: bind first for a clean run.
	d.Data.Node(3).Bind(9, func(Message) {})
	k.RunAll()
	if subWakes == 0 {
		t.Error("no space wake after injection drained")
	}
}
