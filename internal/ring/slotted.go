package ring

// Slotted is the cycle-true model of the dual ring's transport mechanism
// (Dekens et al., DASIP'13): a fixed population of slots circulates around
// the ring, advancing one hop per cycle. A node injects a word into the
// free slot passing its position; the slot carries the word to its
// destination, delivers, and frees. This gives the guaranteed-throughput
// property the paper relies on — a node is never starved longer than one
// slot revolution — at the cost of one simulation event per cycle while
// traffic is in flight.
//
// The transaction-level Ring in this package abstracts exactly this
// behaviour (fixed hop latency, per-node injection rate); Slotted exists to
// validate that abstraction and for experiments that need cycle-true link
// contention. TestSlottedMatchesAbstraction checks the delivery-order and
// latency-bound relationships between the two.

import (
	"fmt"

	"accelshare/internal/sim"
)

// SlottedConfig parameterises a slotted ring.
type SlottedConfig struct {
	Name  string
	Nodes int
	// InjectionDepth is the per-node outbound buffer.
	InjectionDepth int
	// Direction of slot circulation.
	Direction Direction
}

// Slotted is one unidirectional slotted ring (clockwise).
type Slotted struct {
	cfg   Config
	k     *sim.Kernel
	nodes []*SlottedNode

	// slots[i] is the slot currently at position i (between node i and its
	// successor); nil-valued slots are free.
	occupied []bool
	payload  []Message

	running bool

	// Delivered counts words; MaxWait tracks the worst injection wait.
	Delivered uint64
	MaxWait   sim.Time
}

// SlottedNode is one attachment point.
type SlottedNode struct {
	r     *Slotted
	idx   int
	inj   []slottedMsg
	ports map[int]func(Message)
	space []*sim.Waker
}

type slottedMsg struct {
	m      Message
	queued sim.Time
}

// NewSlotted builds a slotted ring with one slot per hop.
func NewSlotted(k *sim.Kernel, cfg SlottedConfig) (*Slotted, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("ring: slotted ring needs >= 2 nodes")
	}
	if cfg.InjectionDepth == 0 {
		cfg.InjectionDepth = 4
	}
	r := &Slotted{
		k:        k,
		occupied: make([]bool, cfg.Nodes),
		payload:  make([]Message, cfg.Nodes),
	}
	r.cfg.Nodes = cfg.Nodes
	r.cfg.InjectionDepth = cfg.InjectionDepth
	r.cfg.Direction = cfg.Direction
	for i := 0; i < cfg.Nodes; i++ {
		r.nodes = append(r.nodes, &SlottedNode{r: r, idx: i, ports: map[int]func(Message){}})
	}
	return r, nil
}

// Node returns attachment point i.
func (r *Slotted) Node(i int) Port { return r.nodes[i] }

// Nodes returns the node count.
func (r *Slotted) Nodes() int { return r.cfg.Nodes }

// DeliveredWords counts carried words (Transport interface).
func (r *Slotted) DeliveredWords() uint64 { return r.Delivered }

// Bind registers a delivery handler.
func (n *SlottedNode) Bind(port int, fn func(Message)) {
	if _, dup := n.ports[port]; dup {
		panic(fmt.Sprintf("ring: slotted node %d port %d bound twice", n.idx, port))
	}
	n.ports[port] = fn
}

// SubscribeSpace wakes w when injection space frees.
func (n *SlottedNode) SubscribeSpace(w *sim.Waker) { n.space = append(n.space, w) }

// Free reports available injection-buffer slots.
func (n *SlottedNode) Free() int { return n.r.cfg.InjectionDepth - len(n.inj) }

// TrySend queues a word for injection; false when the buffer is full.
func (n *SlottedNode) TrySend(dst, port int, w sim.Word) bool {
	if dst == n.idx {
		panic("ring: slotted self-send")
	}
	if len(n.inj) >= n.r.cfg.InjectionDepth {
		return false
	}
	n.inj = append(n.inj, slottedMsg{
		m:      Message{Src: n.idx, Dst: dst, Port: port, W: w},
		queued: n.r.k.Now(),
	})
	n.r.start()
	return true
}

func (r *Slotted) anyWork() bool {
	for _, o := range r.occupied {
		if o {
			return true
		}
	}
	for _, n := range r.nodes {
		if len(n.inj) > 0 {
			return true
		}
	}
	return false
}

// start launches the per-cycle advancement process; it parks when the ring
// drains.
func (r *Slotted) start() {
	if r.running || !r.anyWork() {
		return
	}
	r.running = true
	var tick func()
	tick = func() {
		if !r.anyWork() {
			r.running = false
			return
		}
		r.step()
		r.k.Schedule(1, tick)
	}
	r.k.Schedule(0, tick)
}

// step advances every slot one hop, delivering and injecting.
func (r *Slotted) step() {
	nn := r.cfg.Nodes
	if r.cfg.Direction == Clockwise {
		// Slot at position i moves to (i+1) mod N: rotate backwards so
		// position p holds what was at p-1.
		lastOcc := r.occupied[nn-1]
		lastPay := r.payload[nn-1]
		copy(r.occupied[1:], r.occupied[:nn-1])
		copy(r.payload[1:], r.payload[:nn-1])
		r.occupied[0] = lastOcc
		r.payload[0] = lastPay
	} else {
		// Counter-clockwise: slot at position i moves to (i-1) mod N.
		firstOcc := r.occupied[0]
		firstPay := r.payload[0]
		copy(r.occupied[:nn-1], r.occupied[1:])
		copy(r.payload[:nn-1], r.payload[1:])
		r.occupied[nn-1] = firstOcc
		r.payload[nn-1] = firstPay
	}

	for i := 0; i < nn; i++ {
		// Deliver: the slot at position i has just arrived at node i.
		if r.occupied[i] && r.payload[i].Dst == i {
			m := r.payload[i]
			r.occupied[i] = false
			r.Delivered++
			h, ok := r.nodes[i].ports[m.Port]
			if !ok {
				panic(fmt.Sprintf("ring: slotted node %d has no port %d", i, m.Port))
			}
			// Deliver as a zero-delay event to keep handler re-entrancy out
			// of the rotation loop.
			mm := m
			r.k.Schedule(0, func() { h(mm) })
		}
		// Inject: node i grabs its passing slot when free.
		if !r.occupied[i] && len(r.nodes[i].inj) > 0 {
			sm := r.nodes[i].inj[0]
			r.nodes[i].inj = r.nodes[i].inj[1:]
			r.occupied[i] = true
			r.payload[i] = sm.m
			if wait := r.k.Now() - sm.queued; wait > r.MaxWait {
				r.MaxWait = wait
			}
			for _, w := range r.nodes[i].space {
				w.Wake()
			}
		}
	}
}
