package ring

import (
	"testing"

	"accelshare/internal/sim"
)

func TestWedgeNodeRefusesAndDefersInjection(t *testing.T) {
	k := sim.NewKernel()
	r, err := New(k, Config{Name: "w", Nodes: 4, HopLatency: 1, SlotPeriod: 5, InjectionDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []sim.Time
	r.Node(2).Bind(3, func(m Message) { arrivals = append(arrivals, k.Now()) })

	// Two messages: the first departs immediately, the second waits one slot
	// period in the injection buffer.
	if !r.Node(0).TrySend(2, 3, 1) || !r.Node(0).TrySend(2, 3, 2) {
		t.Fatal("sends refused")
	}
	r.WedgeNode(0, 100)
	if r.Node(0).TrySend(2, 3, 3) {
		t.Fatal("wedged node accepted a send")
	}
	if r.nodes[0].WedgeRejects != 1 {
		t.Errorf("WedgeRejects = %d", r.nodes[0].WedgeRejects)
	}
	k.RunAll()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(arrivals))
	}
	// The first message was already pumping when the wedge landed; the
	// second must have been frozen until the wedge lifted at t=100.
	if arrivals[1] < 100 {
		t.Errorf("second delivery at t=%d, want >= 100 (frozen during wedge)", arrivals[1])
	}
	// Post-wedge traffic flows normally.
	if !r.Node(0).TrySend(2, 3, 4) {
		t.Fatal("send refused after wedge lifted")
	}
	k.RunAll()
	if len(arrivals) != 3 {
		t.Fatalf("post-wedge delivery missing: %d", len(arrivals))
	}
}

func TestWedgeNodePermanent(t *testing.T) {
	k := sim.NewKernel()
	r, err := New(k, Config{Name: "wp", Nodes: 2, HopLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.WedgeNode(0, 0)
	if r.Node(0).TrySend(1, 1, 7) {
		t.Fatal("permanently wedged node accepted a send")
	}
	k.RunAll() // must terminate: no wake event for a permanent wedge
}

func TestWedgeNodeWakesSpaceSubscribers(t *testing.T) {
	k := sim.NewKernel()
	r, err := New(k, Config{Name: "ws", Nodes: 2, HopLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Node(1).Bind(1, func(Message) {})
	woken := 0
	r.Node(0).SubscribeSpace(sim.NewWaker(k, func() { woken++ }))
	r.WedgeNode(0, 20)
	k.RunAll()
	if woken == 0 {
		t.Error("space subscribers not woken at wedge lift")
	}
}
