package ring

import (
	"testing"

	"accelshare/internal/sim"
)

func TestDistance(t *testing.T) {
	k := sim.NewKernel()
	cw, err := New(k, Config{Nodes: 6, Direction: Clockwise})
	if err != nil {
		t.Fatal(err)
	}
	ccw, _ := New(k, Config{Nodes: 6, Direction: CounterClockwise})
	if d := cw.Distance(0, 3); d != 3 {
		t.Errorf("cw 0->3 = %d", d)
	}
	if d := cw.Distance(4, 1); d != 3 {
		t.Errorf("cw 4->1 = %d (wrap)", d)
	}
	if d := ccw.Distance(0, 3); d != 3 {
		t.Errorf("ccw 0->3 = %d (other way: 6-3)", d)
	}
	if d := ccw.Distance(1, 4); d != 3 {
		t.Errorf("ccw 1->4 = %d", d)
	}
	if d := cw.Distance(2, 2); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestDeliveryLatency(t *testing.T) {
	k := sim.NewKernel()
	r, _ := New(k, Config{Nodes: 4, HopLatency: 3, Direction: Clockwise})
	var got []sim.Time
	r.Node(2).Bind(1, func(m Message) { got = append(got, k.Now()) })
	if !r.Node(0).TrySend(2, 1, 7) {
		t.Fatal("send rejected")
	}
	k.RunAll()
	// Injection at t=0, 2 hops x 3 cycles = delivery at 6.
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("delivery times = %v, want [6]", got)
	}
}

func TestInOrderDelivery(t *testing.T) {
	k := sim.NewKernel()
	r, _ := New(k, Config{Nodes: 4, HopLatency: 1, Direction: Clockwise, InjectionDepth: 8})
	var words []sim.Word
	r.Node(1).Bind(0, func(m Message) { words = append(words, m.W) })
	for i := 0; i < 5; i++ {
		if !r.Node(0).TrySend(1, 0, sim.Word(i)) {
			t.Fatal("send rejected")
		}
	}
	k.RunAll()
	for i, w := range words {
		if w != sim.Word(i) {
			t.Fatalf("out of order: %v", words)
		}
	}
	if len(words) != 5 {
		t.Fatalf("delivered %d", len(words))
	}
}

func TestSlotRateLimiting(t *testing.T) {
	k := sim.NewKernel()
	r, _ := New(k, Config{Nodes: 2, HopLatency: 1, SlotPeriod: 4, Direction: Clockwise, InjectionDepth: 8})
	var times []sim.Time
	r.Node(1).Bind(0, func(m Message) { times = append(times, k.Now()) })
	for i := 0; i < 3; i++ {
		r.Node(0).TrySend(1, 0, 0)
	}
	k.RunAll()
	// Injections at 0, 4, 8; +1 hop => deliveries at 1, 5, 9.
	want := []sim.Time{1, 5, 9}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestInjectionBackpressure(t *testing.T) {
	k := sim.NewKernel()
	r, _ := New(k, Config{Nodes: 2, SlotPeriod: 10, Direction: Clockwise, InjectionDepth: 2})
	r.Node(1).Bind(0, func(Message) {})
	n := r.Node(0)
	accepted := 0
	for i := 0; i < 5; i++ {
		if n.TrySend(1, 0, 0) {
			accepted++
		}
	}
	// Depth 2, but the first send is picked up by the pump at t=0
	// synchronously scheduled; acceptance is bounded by depth.
	if accepted > 3 {
		t.Fatalf("accepted %d with depth 2", accepted)
	}
	wakes := 0
	n.SubscribeSpace(sim.NewWaker(k, func() { wakes++ }))
	k.RunAll()
	if wakes == 0 {
		t.Error("no space wakeups while draining")
	}
}

func TestUnboundPortPanics(t *testing.T) {
	k := sim.NewKernel()
	r, _ := New(k, Config{Nodes: 2, Direction: Clockwise})
	r.Node(0).TrySend(1, 9, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbound port")
		}
	}()
	k.RunAll()
}

func TestDoubleBindPanics(t *testing.T) {
	k := sim.NewKernel()
	r, _ := New(k, Config{Nodes: 2, Direction: Clockwise})
	r.Node(0).Bind(1, func(Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for double bind")
		}
	}()
	r.Node(0).Bind(1, func(Message) {})
}

func TestDualRingDirections(t *testing.T) {
	k := sim.NewKernel()
	d, err := NewDual(k, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Data 0->1 is 1 hop clockwise; credits 1->0 is 1 hop counter-clockwise.
	dr := d.Data.(*Ring)
	cr := d.Credit.(*Ring)
	if dr.Distance(0, 1) != 1 {
		t.Errorf("data 0->1 = %d", dr.Distance(0, 1))
	}
	if cr.Distance(1, 0) != 1 {
		t.Errorf("credit 1->0 = %d", cr.Distance(1, 0))
	}
	// And the opposite directions are the long way around.
	if dr.Distance(1, 0) != 4 {
		t.Errorf("data 1->0 = %d", dr.Distance(1, 0))
	}
}

func TestStatsAccounting(t *testing.T) {
	k := sim.NewKernel()
	r, _ := New(k, Config{Nodes: 4, HopLatency: 2, Direction: Clockwise})
	r.Node(3).Bind(0, func(Message) {})
	r.Node(0).TrySend(3, 0, 0)
	k.RunAll()
	if r.Words != 1 {
		t.Errorf("words = %d", r.Words)
	}
	if r.HopCycles != 6 { // 3 hops x 2 cycles
		t.Errorf("hop cycles = %d", r.HopCycles)
	}
}
