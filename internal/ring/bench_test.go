package ring

import (
	"testing"

	"accelshare/internal/sim"
)

func BenchmarkRingWordThroughput(b *testing.B) {
	k := sim.NewKernel()
	r, err := New(k, Config{Nodes: 8, HopLatency: 1, Direction: Clockwise, InjectionDepth: 16})
	if err != nil {
		b.Fatal(err)
	}
	received := 0
	r.Node(4).Bind(0, func(Message) { received++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !r.Node(0).TrySend(4, 0, sim.Word(i)) {
			k.RunAll()
		}
	}
	k.RunAll()
	if received != b.N {
		b.Fatalf("received %d of %d", received, b.N)
	}
}

func BenchmarkDualRingCreditLoop(b *testing.B) {
	k := sim.NewKernel()
	d, err := NewDual(k, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	d.Data.Node(1).Bind(0, func(m Message) {
		// bounce a credit back
		d.Credit.Node(1).TrySend(0, 0, 1)
	})
	credits := 0
	d.Credit.Node(0).Bind(0, func(Message) { credits++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !d.Data.Node(0).TrySend(1, 0, 0) {
			k.RunAll()
		}
	}
	k.RunAll()
	if credits == 0 {
		b.Fatal("no credits returned")
	}
}
