package ring

import (
	"testing"

	"accelshare/internal/sim"
)

// TestRingZeroAllocSteadyState backs the //accellint:noalloc annotations on
// TrySend, pump, pumpStep and newFlight: after the cold start (lazy
// injection ring, pump method value, flight-pool growth to the in-flight
// high-water mark), moving words across the ring allocates nothing — the
// same pooled-record discipline as the sim kernel's event records.
func TestRingZeroAllocSteadyState(t *testing.T) {
	k := sim.NewKernel()
	r, err := New(k, Config{Name: "d", Nodes: 4, InjectionDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	r.Node(2).Bind(7, func(m Message) { got++ })
	send := func(n int) {
		for i := 0; i < n; i++ {
			for !r.nodes[0].TrySend(2, 7, sim.Word(i)) {
				k.Step()
			}
		}
		k.RunAll()
	}
	send(64) // cold start: injection ring, pump fn, flight pool
	if a := testing.AllocsPerRun(200, func() { send(16) }); a != 0 {
		t.Fatalf("steady-state ring transport allocates %v/op, want 0", a)
	}
	if got == 0 {
		t.Fatal("no deliveries")
	}
}
