// Package ring models the low-cost guaranteed-throughput dual-ring
// interconnect of Dekens et al. (DASIP'13/'14) that the paper's
// architecture is built on: a unidirectional slotted data ring carrying
// posted writes, plus a second ring rotating in the opposite direction that
// carries flow-control credits for hardware-FIFO communication.
//
// The model is transaction-level but cycle-accounted: each node may inject
// at most one word per slot period, and a word addressed to a tile d hops
// away is delivered exactly d·hopLatency cycles after injection. Posted
// writes complete for the producer upon acceptance by the interconnect;
// delivery is lossless and the destination always accepts (the "guaranteed
// acceptance" property the paper relies on to avoid hardware flow control
// toward memories).
package ring

import (
	"fmt"

	"accelshare/internal/sim"
)

// Direction of rotation. The data ring rotates clockwise and the credit
// ring counter-clockwise, as in the paper's Fig. 1.
type Direction int

// Rotation directions.
const (
	Clockwise Direction = iota
	CounterClockwise
)

// Config parameterises a ring.
type Config struct {
	Name string
	// Nodes is the number of tile attachment points.
	Nodes int
	// HopLatency is the cycles one word needs to advance one node.
	HopLatency sim.Time
	// SlotPeriod is the minimum spacing in cycles between two injections at
	// the same node (1 = full rate, matching one 32/64-bit word per cycle).
	SlotPeriod sim.Time
	// InjectionDepth is the per-node injection buffer in words.
	InjectionDepth int
	Direction      Direction
}

// Message is one word addressed to a port on a destination node.
type Message struct {
	Src, Dst int
	Port     int
	W        sim.Word
}

// Port is one tile attachment point of an interconnect, the interface the
// platform components (links, C-FIFOs, gateways) are written against.
type Port interface {
	// TrySend posts a word to (dst, port); false = injection buffer full.
	TrySend(dst, port int, w sim.Word) bool
	// Bind registers the delivery handler for a local port id.
	Bind(port int, fn func(Message))
	// SubscribeSpace wakes w when injection space frees.
	SubscribeSpace(w *sim.Waker)
	// Free reports available injection-buffer slots.
	Free() int
}

// Transport is an interconnect with addressable ports: implemented by the
// transaction-level Ring and by the cycle-true Slotted ring, so the whole
// platform can run on either.
type Transport interface {
	Node(i int) Port
	Nodes() int
	// DeliveredWords counts words the transport has carried.
	DeliveredWords() uint64
}

// Ring is one unidirectional slotted ring.
type Ring struct {
	cfg   Config
	k     *sim.Kernel
	nodes []*Node

	// Words counts delivered messages; HopCycles accumulates distance for
	// utilisation accounting.
	Words     uint64
	HopCycles uint64

	// freeFlight is the pool of recycled in-flight message records.
	freeFlight *flight
}

// Node is one attachment point with an injection buffer and registered
// delivery ports.
type Node struct {
	r   *Ring
	idx int
	// inj is a circular injection buffer sized lazily to InjectionDepth on
	// the first send; head-index draining (not re-slicing) keeps the
	// steady-state send path allocation-free.
	inj      []Message
	injHead  int
	injLen   int
	nextSlot sim.Time
	ports    map[int]func(Message)
	space    []*sim.Waker
	pumping  bool
	// pumpFn is the pump step bound once, so per-slot scheduling reuses one
	// closure instead of allocating a new one per pumped word.
	pumpFn func()

	// wedgedUntil, when in the future, freezes the node's injection side:
	// TrySend refuses and buffered messages stop advancing — the injected
	// "wedged NI" fault of the fault-campaign subsystem.
	wedgedUntil sim.Time
	// WedgeRejects counts sends refused while wedged.
	WedgeRejects uint64
}

// New builds a ring on the kernel.
func New(k *sim.Kernel, cfg Config) (*Ring, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("ring: need at least one node")
	}
	if cfg.HopLatency == 0 {
		cfg.HopLatency = 1
	}
	if cfg.SlotPeriod == 0 {
		cfg.SlotPeriod = 1
	}
	if cfg.InjectionDepth == 0 {
		cfg.InjectionDepth = 4
	}
	r := &Ring{cfg: cfg, k: k}
	for i := 0; i < cfg.Nodes; i++ {
		r.nodes = append(r.nodes, &Node{r: r, idx: i, ports: map[int]func(Message){}})
	}
	return r, nil
}

// Node returns attachment point i.
func (r *Ring) Node(i int) Port { return r.nodes[i] }

// DeliveredWords counts carried words (Transport interface).
func (r *Ring) DeliveredWords() uint64 { return r.Words }

// Nodes returns the node count.
func (r *Ring) Nodes() int { return r.cfg.Nodes }

// Distance returns the hop count from src to dst in this ring's rotation
// direction.
func (r *Ring) Distance(src, dst int) int {
	n := r.cfg.Nodes
	var d int
	if r.cfg.Direction == Clockwise {
		d = (dst - src) % n
	} else {
		d = (src - dst) % n
	}
	if d < 0 {
		d += n
	}
	if d == 0 && src != dst {
		d = n
	}
	return d
}

// Bind registers the delivery handler for a port on this node. Handlers
// must always accept (guaranteed acceptance).
func (n *Node) Bind(port int, fn func(Message)) {
	if _, dup := n.ports[port]; dup {
		panic(fmt.Sprintf("ring: node %d port %d bound twice", n.idx, port))
	}
	n.ports[port] = fn
}

// SubscribeSpace wakes w whenever injection space frees up.
func (n *Node) SubscribeSpace(w *sim.Waker) { n.space = append(n.space, w) }

// Free returns the available injection-buffer slots.
func (n *Node) Free() int { return n.r.cfg.InjectionDepth - n.injLen }

// WedgeNode freezes node i's injection side for d cycles (d == 0 =
// permanently): sends are refused and already-buffered messages stop
// advancing, modelling a wedged network interface. Messages already on the
// ring still arrive. When the wedge lifts, space subscribers are woken and
// the injection buffer resumes draining.
func (r *Ring) WedgeNode(i int, d sim.Time) {
	n := r.nodes[i]
	if d == 0 {
		n.wedgedUntil = ^sim.Time(0)
		return
	}
	n.wedgedUntil = r.k.Now() + d
	r.k.Schedule(d, func() {
		for _, w := range n.space {
			w.Wake()
		}
		n.pump()
	})
}

// wedged reports whether the node's injection side is frozen.
func (n *Node) wedged() bool { return n.wedgedUntil > n.r.k.Now() }

// TrySend posts a write of word w to (dst, port). It reports false when the
// injection buffer is full — the caller retries on a space wake-up. A
// successful TrySend is a completed posted write from the producer's
// perspective.
//
//accellint:noalloc guard=TestRingZeroAllocSteadyState
func (n *Node) TrySend(dst, port int, w sim.Word) bool {
	if n.wedged() {
		n.WedgeRejects++
		return false
	}
	if n.injLen >= n.r.cfg.InjectionDepth {
		return false
	}
	if n.inj == nil {
		//accellint:alloc first-send lazy sizing of the injection ring
		n.inj = make([]Message, n.r.cfg.InjectionDepth)
		//accellint:alloc method value bound once, reused every slot
		n.pumpFn = n.pumpStep
	}
	n.inj[(n.injHead+n.injLen)%len(n.inj)] = Message{Src: n.idx, Dst: dst, Port: port, W: w}
	n.injLen++
	n.pump()
	return true
}

// pump drains the injection buffer at the slot rate.
//
//accellint:noalloc guard=TestRingZeroAllocSteadyState
func (n *Node) pump() {
	if n.pumping || n.injLen == 0 {
		return
	}
	k := n.r.k
	start := k.Now()
	if n.nextSlot > start {
		start = n.nextSlot
	}
	n.pumping = true
	k.ScheduleAt(start, n.pumpFn)
}

// pumpStep emits one buffered message onto the ring: it leaves the
// injection buffer, a pooled flight record carries it to its destination
// after the hop latency, and space subscribers learn of the freed slot.
//
//accellint:noalloc guard=TestRingZeroAllocSteadyState
func (n *Node) pumpStep() {
	n.pumping = false
	if n.injLen == 0 || n.wedged() {
		// A wedged node's buffered messages stay frozen; the wedge-lift
		// event restarts the pump.
		return
	}
	k := n.r.k
	m := n.inj[n.injHead]
	n.injHead = (n.injHead + 1) % len(n.inj)
	n.injLen--
	n.nextSlot = k.Now() + n.r.cfg.SlotPeriod
	hops := n.r.Distance(m.Src, m.Dst)
	lat := sim.Time(hops) * n.r.cfg.HopLatency
	n.r.Words++
	n.r.HopCycles += uint64(lat)
	fl := n.r.newFlight()
	fl.m = m
	k.Schedule(lat, fl.fn)
	for _, w := range n.space {
		w.Wake()
	}
	n.pump()
}

// flight is one in-flight message record. Records are pooled on the ring
// (intrusive free list) and each carries its delivery closure, created once
// at pool-entry time — so the per-message delivery path allocates nothing
// in steady state, matching the pooled event records of the sim kernel.
type flight struct {
	r    *Ring
	m    Message
	fn   func()
	next *flight
}

// newFlight takes a flight record from the pool, growing it only at the
// high-water mark.
//
//accellint:noalloc guard=TestRingZeroAllocSteadyState
func (r *Ring) newFlight() *flight {
	if fl := r.freeFlight; fl != nil {
		r.freeFlight = fl.next
		fl.next = nil
		return fl
	}
	//accellint:alloc pool growth to the in-flight high-water mark
	fl := &flight{r: r}
	//accellint:alloc method value bound once per pooled record
	fl.fn = fl.deliver
	return fl
}

// deliver hands the message to its destination port and returns the record
// to the pool. Recycling happens before the handler runs so a handler that
// immediately sends again can reuse this record.
func (fl *flight) deliver() {
	r, m := fl.r, fl.m
	fl.next = r.freeFlight
	r.freeFlight = fl
	dst := r.nodes[m.Dst]
	h, ok := dst.ports[m.Port]
	if !ok {
		panic(fmt.Sprintf("ring: node %d has no port %d (from node %d)", m.Dst, m.Port, m.Src))
	}
	h(m)
}

// Dual couples a clockwise data ring with a counter-clockwise credit ring,
// the architecture's interconnect. The members are Transport so either the
// transaction-level or the cycle-true slotted implementation can back them.
type Dual struct {
	Data   Transport
	Credit Transport
}

// NewDual builds the two rings with shared geometry.
func NewDual(k *sim.Kernel, nodes int, hopLatency sim.Time) (*Dual, error) {
	d, err := New(k, Config{Name: "data", Nodes: nodes, HopLatency: hopLatency, Direction: Clockwise})
	if err != nil {
		return nil, err
	}
	c, err := New(k, Config{Name: "credit", Nodes: nodes, HopLatency: hopLatency, Direction: CounterClockwise})
	if err != nil {
		return nil, err
	}
	return &Dual{Data: d, Credit: c}, nil
}

// NewDualSlotted builds the interconnect on the cycle-true slotted
// mechanism instead of the transaction-level abstraction.
func NewDualSlotted(k *sim.Kernel, nodes int) (*Dual, error) {
	d, err := NewSlotted(k, SlottedConfig{Name: "data", Nodes: nodes, Direction: Clockwise})
	if err != nil {
		return nil, err
	}
	c, err := NewSlotted(k, SlottedConfig{Name: "credit", Nodes: nodes, Direction: CounterClockwise})
	if err != nil {
		return nil, err
	}
	return &Dual{Data: d, Credit: c}, nil
}
