package admission

// Migration admission: evacuating a wedged chain re-places each of its
// streams on a surviving chain one at a time. Unlike AddStream, the stream
// already exists — it carries exported gateway state (a replay residue of at
// most K words and a committed-output watermark) and its own ring nodes, so
// the target controller must not consume a reserved slot, and the re-solved
// ηs must not shrink below the residue's resume point. The actual adoption
// (C-FIFO re-point + gateway import) is the caller's Import callback, run
// inside the paused transition exactly where AddStream attaches a new
// stream.

import (
	"fmt"
	"math/big"

	"accelshare/internal/core"
	"accelshare/internal/gateway"
	"accelshare/internal/solve"
)

// MigrateRequest asks a controller to adopt a stream evacuated from another
// chain.
type MigrateRequest struct {
	Name string
	// Rate is the throughput constraint μs in samples per second.
	Rate *big.Rat
	// Reconfig is the stream's Rs in cycles.
	Reconfig uint64
	// Decimation is the stream's block granularity (≥ 1).
	Decimation int64
	// MinBlock floors the re-solved ηs. A migrated in-flight block resumes at
	// its export's ReplayStart and is seeded with the replay residue, and its
	// OutBlock must not end before the consumer's committed position — so the
	// caller sets MinBlock = max(ReplayStart + len(Replay),
	// Committed·Decimation). When Algorithm 1's minimum lands below it, the
	// block is bumped to the smallest decimation multiple ≥ MinBlock and the
	// whole assignment is re-verified exactly against Eq. 6
	// (core.FeasibleBlocks): growth above the solver's least fixed point is
	// not automatically feasible, so verify, don't trust.
	MinBlock int64
	// InCapacity/OutCapacity are the stream's existing C-FIFO capacities,
	// for the buffer-bound check under the new ηs.
	InCapacity, OutCapacity int
	// Import adopts the stream onto the controlled chain (re-point the
	// C-FIFOs, gateway.ImportStream) and returns its new gateway slot. It
	// runs inside the paused transition, after the decision is final.
	Import func() (int, error)
}

// AdmitMigrated admits an evacuated stream onto the controlled chain. The
// decision (re-solve, residue floor, buffer bounds) is made synchronously;
// when accepted, the staged transition (drain, import + reconfigure, resume)
// runs asynchronously and done fires once the platform streams under the new
// configuration. done fires immediately on rejection, and Import is not
// called — the caller keeps the export and can try the next chain.
func (c *Controller) AdmitMigrated(req MigrateRequest, done func(Verdict)) {
	name := req.Name
	if c.busy {
		c.reject(EvMigrate, name, ReasonBusy, "another transition is in flight", done)
		return
	}
	if c.pendingCanary != nil {
		c.reject(EvMigrate, name, ReasonBusy, "a canary probe is in flight", done)
		return
	}
	if req.Rate == nil || req.Rate.Sign() <= 0 {
		c.reject(EvMigrate, name, ReasonBadRequest, "missing or non-positive rate", done)
		return
	}
	if req.Import == nil {
		c.reject(EvMigrate, name, ReasonBadRequest, "missing import callback", done)
		return
	}
	if c.modelIndex(name) >= 0 || c.parked[name] != nil {
		c.reject(EvMigrate, name, ReasonBadRequest, "stream name already in use", done)
		return
	}
	decimation := req.Decimation
	if decimation < 1 {
		decimation = 1
	}

	// Candidate model: the live set plus the migrant.
	cand := c.model.Clone()
	cand.Streams = append(cand.Streams, core.Stream{
		Name:     name,
		Rate:     new(big.Rat).Set(req.Rate),
		Reconfig: req.Reconfig,
	})
	granularity := append(append([]int64(nil), c.decim...), decimation)
	res, err := c.solve(cand, granularity)
	if err != nil {
		reason, detail := rejectReason(err)
		c.reject(EvMigrate, name, reason, detail, done)
		return
	}
	blocks := append([]int64(nil), res.Blocks...)
	last := len(blocks) - 1
	if blocks[last] < req.MinBlock {
		b := req.MinBlock
		if rem := b % decimation; rem != 0 {
			b += decimation - rem
		}
		blocks[last] = b
		for i, bl := range blocks {
			cand.Streams[i].Block = bl
		}
		if v := solve.Verify(cand, granularity, blocks); !v.Feasible {
			c.reject(EvMigrate, name, ReasonInfeasible,
				fmt.Sprintf("replay residue floors eta at %d, infeasible alongside the survivors", b), done)
			return
		}
	} else {
		for i, bl := range blocks {
			cand.Streams[i].Block = bl
		}
	}
	caps := c.liveCaps()
	caps = append(caps, [2]int{req.InCapacity, req.OutCapacity})
	if detail, err := checkBuffers(cand, granularity, caps); err != nil {
		c.reject(EvMigrate, name, ReasonBadRequest, err.Error(), done)
		return
	} else if detail != "" {
		c.reject(EvMigrate, name, ReasonBufferBound, detail, done)
		return
	}

	v := Verdict{
		Accepted:    true,
		Reason:      ReasonAdmitted,
		Blocks:      assignment(cand, blocks),
		BoundCycles: c.transitionBound(len(cand.Streams)),
	}
	verdictSolver(&v, res)

	c.busy = true
	gen := c.gen
	requested := c.now()
	pair := c.chain().Pair
	err = pair.RequestPause(func() {
		if c.gen != gen {
			// A quarantine landed during the drain: cand, the solved blocks
			// and the slot map are stale. Abort before Import — the caller
			// still owns the export and can retry.
			pair.Resume()
			c.busy = false
			c.reject(EvMigrate, name, ReasonSuperseded, "stream set changed during drain", done)
			return
		}
		v.PauseWait = c.now() - requested
		slot, err := req.Import()
		if err != nil {
			pair.Resume()
			c.busy = false
			c.reject(EvMigrate, name, ReasonBadRequest, err.Error(), done)
			return
		}
		updates := c.slotUpdates(cand, blocks[:last])
		updates = append(updates, gateway.SlotUpdate{
			Stream: slot, SetBlock: blocks[last], SetOutBlock: blocks[last] / decimation,
		})
		v.BusCycles = uint64(c.cfg.PerSlotCost) * uint64(len(updates))
		err = pair.ApplySlots(updates, c.cfg.PerSlotCost, func() {
			pair.Resume()
			c.model = cand
			c.decim = granularity
			c.gwSlot = append(c.gwSlot, slot)
			c.gen++
			c.busy = false
			c.record(EvMigrate, name, &v)
			if done != nil {
				done(v)
			}
		})
		if err != nil {
			// The stream is already imported (validation makes this path
			// unreachable, but never leave an unaccounted live slot behind):
			// suspend it best-effort and park it so the name and slot stay
			// recoverable via Readmit.
			_ = pair.ApplySlots([]gateway.SlotUpdate{{Stream: slot, Suspend: true}}, c.cfg.PerSlotCost, nil)
			c.parked[name] = &parkedStream{
				slot:       slot,
				rate:       new(big.Rat).Set(req.Rate),
				reconfig:   req.Reconfig,
				decimation: decimation,
			}
			pair.Resume()
			c.busy = false
			c.reject(EvMigrate, name, ReasonBadRequest, err.Error()+"; stream parked, recover via readmit", done)
		}
	})
	if err != nil {
		c.busy = false
		c.reject(EvMigrate, name, ReasonBusy, err.Error(), done)
	}
}
