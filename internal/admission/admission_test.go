package admission

import (
	"math/big"
	"strings"
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/conformance"
	"accelshare/internal/core"
	"accelshare/internal/fault"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
	"accelshare/internal/sim"
)

// The test scenario (ClockHz 1, so samples/second == samples/cycle):
//
//	chain: one accelerator (ρA=1), ε=15, δ=1  →  c0 = 15
//	s1..s4: μ = 1/75, Rs = 50               →  u = 4·(15/75) = 0.8
//
// Algorithm 1 for the initial set: 75η ≥ 200 + 15·(4(η+2)) ⇒ 15η ≥ 320
// ⇒ η = 22, τ̂ = 50 + 24·15 = 410, γ̂ = 4·410 = 1640 (22·75 = 1650 ≥ 1640,
// deliberately tight). InputBufferBound = 22 + ⌈1640/75⌉ = 44.
//
// Adding s5 (μ = 1/300, Rs = 50): u = 0.85, least fixed point
// η = (36,36,36,36,9), γ̂ = 4·620 + 215 = 2695, survivor input bound 72.
//
// A sixth 1/75 stream pushes u to 1.05: infeasible.
const (
	entryCost = 15
	rsCycles  = 50
	period    = 75
)

func demoModel(names []string, rates []*big.Rat) *core.System {
	sys := &core.System{
		Chain: core.Chain{
			Name:       "demo",
			AccelCosts: []uint64{1},
			EntryCost:  entryCost,
			ExitCost:   1,
			NICapacity: 2,
		},
		ClockHz: 1,
	}
	for i := range names {
		sys.Streams = append(sys.Streams, core.Stream{
			Name: names[i], Rate: new(big.Rat).Set(rates[i]), Reconfig: rsCycles,
		})
	}
	return sys
}

type bed struct {
	ms    *mpsoc.MultiSystem
	ctrl  *Controller
	model *core.System
}

// buildBed assembles the running 4-stream platform plus its controller.
func buildBed(t *testing.T, faults *fault.Plan, reserve, inCap int) *bed {
	t.Helper()
	rate := big.NewRat(1, period)
	model := demoModel(
		[]string{"s1", "s2", "s3", "s4"},
		[]*big.Rat{rate, rate, rate, rate},
	)
	if _, err := model.ComputeBlockSizes(); err != nil {
		t.Fatal(err)
	}
	var specs []mpsoc.StreamSpec
	for i := range model.Streams {
		specs = append(specs, mpsoc.StreamSpec{
			Name:         model.Streams[i].Name,
			Block:        model.Streams[i].Block,
			Decimation:   1,
			Reconfig:     rsCycles,
			InCapacity:   inCap,
			OutCapacity:  inCap,
			SourcePeriod: period,
			Engines:      []accel.Engine{&accel.Gain{}},
		})
	}
	ms, err := mpsoc.BuildMulti(mpsoc.MultiConfig{
		Name: "admission-bed",
		Chains: []mpsoc.ChainSpec{{
			Name:              "demo",
			EntryCost:         entryCost,
			ExitCost:          1,
			Mode:              gateway.ReconfigFixed,
			Accels:            []mpsoc.AccelSpec{{Name: "acc", Cost: 1, NICapacity: 2}},
			Streams:           specs,
			DrainTimeout:      200,
			Recovery:          recoveryCfg(),
			Faults:            faults,
			RecordTurnarounds: true,
			ReserveSlots:      reserve,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(ms, Config{
		Chain:       0,
		Model:       model,
		PerSlotCost: 10,
		Engines:     func(string) []accel.Engine { return []accel.Engine{&accel.Gain{}} },
	})
	if err != nil {
		t.Fatal(err)
	}
	ms.Chains[0].Pair.Start()
	return &bed{ms: ms, ctrl: ctrl, model: model}
}

func addReq(name string, num, den int64, inCap, outCap int, srcPeriod sim.Time) AddRequest {
	return AddRequest{
		Spec: mpsoc.StreamSpec{
			Name:         name,
			Decimation:   1,
			Reconfig:     rsCycles,
			InCapacity:   inCap,
			OutCapacity:  outCap,
			SourcePeriod: srcPeriod,
			Engines:      []accel.Engine{&accel.Gain{}},
		},
		Rate: big.NewRat(num, den),
	}
}

func (b *bed) hasEvent(kind EventKind, stream string) bool {
	for _, e := range b.ctrl.Events() {
		if e.Kind == kind && e.Stream == stream {
			return true
		}
	}
	return false
}

// checkBounds asserts every block of every live stream that became
// ELIGIBLE after `since` met the current model's τ̂ and γ̂, via the shared
// conformance harness. Blocks queued before `since` may span a mode
// transition; those are covered by the transition-cost bound
// (Verdict.BoundCycles), not by the new γ̂ — hence FilterQueued.
func (b *bed) checkBounds(t *testing.T, since sim.Time) {
	t.Helper()
	bounds, err := conformance.FromModel(b.ctrl.Model())
	if err != nil {
		t.Fatal(err)
	}
	var streams []*gateway.Stream
	for _, st := range b.ctrl.chain().Strs {
		streams = append(streams, st.GW)
	}
	res := conformance.FromStreams(bounds, streams, conformance.Options{
		// After is exclusive; the original contract includes blocks queued
		// exactly at `since`.
		After: since - 1, FilterQueued: true, MinBlocks: 1,
	})
	if err := res.Err(); err != nil {
		t.Error(err)
	}
}

// TestAddStreamLifecycle is the acceptance scenario: on a running
// 4-stream platform, admit a 5th stream mid-run; a deterministic fault
// quarantines s2, which is then readmitted through a canary block; every
// admitted stream meets its Eq. 2/Eq. 4 bounds after each transition, and
// an infeasible 6th request is rejected with a reasoned verdict.
func TestAddStreamLifecycle(t *testing.T) {
	// LoseIdle swallows s2's pipeline-idle notification for block 8 three
	// times: stall → retry, stall → retry, stall → quarantine
	// (RetryLimit 2). The budget is then spent, so the post-readmission
	// canary's own notification gets through.
	b := buildBed(t, &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.LoseIdle, Stream: 1, Block: 8, Count: 3},
	}}, 2, 128)
	k := b.ms.K

	k.Run(3000)

	// --- Admit s5 mid-run. ---
	var v5 *Verdict
	b.ctrl.AddStream(addReq("s5", 1, 300, 64, 64, 300), func(v Verdict) { v5 = &v })
	if !k.RunUntil(60_000, func() bool { return v5 != nil }) {
		t.Fatal("s5 verdict never arrived")
	}
	if !v5.Accepted {
		t.Fatalf("s5 rejected: %s %s", v5.Reason, v5.Detail)
	}
	want := []BlockAssignment{{"s1", 36}, {"s2", 36}, {"s3", 36}, {"s4", 36}, {"s5", 9}}
	if len(v5.Blocks) != len(want) {
		t.Fatalf("assignment %v", v5.Blocks)
	}
	for i, a := range v5.Blocks {
		if a != want[i] {
			t.Fatalf("assignment[%d] = %v, want %v", i, a, want[i])
		}
	}
	if v5.FixedPoint {
		t.Error("exact ILP should have solved the 5-variable problem")
	}
	if uint64(v5.PauseWait)+v5.BusCycles > v5.BoundCycles {
		t.Errorf("transition cost %d+%d exceeds its bound %d", v5.PauseWait, v5.BusCycles, v5.BoundCycles)
	}
	admitted := k.Now()
	// Two settle rotations, then everything must be inside the new bounds.
	k.Run(admitted + 2*2695)
	settled := k.Now()

	// --- The fault quarantines s2. ---
	if !k.RunUntil(settled+200_000, func() bool { return b.hasEvent(EvQuarantine, "s2") }) {
		t.Fatal("s2 never quarantined")
	}
	if got := len(b.ctrl.Model().Streams); got != 4 {
		t.Fatalf("model has %d streams after quarantine, want 4", got)
	}

	// --- Readmit s2 via a canary block. ---
	var vr *Verdict
	b.ctrl.Readmit("s2", func(v Verdict) { vr = &v })
	if !k.RunUntil(k.Now()+60_000, func() bool { return vr != nil }) {
		t.Fatal("readmit verdict never arrived")
	}
	if !vr.Accepted {
		t.Fatalf("readmit rejected: %s %s", vr.Reason, vr.Detail)
	}
	if !k.RunUntil(k.Now()+60_000, func() bool { return b.hasEvent(EvCanaryPass, "s2") }) {
		t.Fatalf("canary never passed; events:\n%s", FormatEvents(b.ctrl.Events()))
	}
	if got := len(b.ctrl.Model().Streams); got != 5 {
		t.Fatalf("model has %d streams after readmission, want 5", got)
	}
	readmitted := k.Now()
	k.Run(readmitted + 2*2695)
	// Steady state after the last transition: strict Eq. 2/Eq. 4 check.
	since := k.Now()
	k.Run(since + 3*2695)
	b.checkBounds(t, since)

	// --- The infeasible 6th stream is rejected with a reasoned verdict. ---
	var v6 *Verdict
	b.ctrl.AddStream(addReq("s6", 1, period, 64, 64, period), func(v Verdict) { v6 = &v })
	if v6 == nil {
		t.Fatal("infeasible verdict must be immediate")
	}
	if v6.Accepted || v6.Reason != ReasonInfeasible {
		t.Fatalf("s6 verdict = %+v, want infeasible rejection", v6)
	}

	// No live stream ever dropped a sample: the periodic sources always
	// found FIFO space, through every transition. (s2's source kept
	// producing while the stream was quarantined, so it may overflow —
	// that is the fault's real-time damage, not the controller's.)
	for _, st := range b.ms.Chains[0].Strs {
		if st.Spec.Name == "s2" {
			continue
		}
		if st.Overflows != 0 {
			t.Errorf("stream %s dropped %d samples", st.Spec.Name, st.Overflows)
		}
	}

	// The event log tells the whole story in order.
	log := FormatEvents(b.ctrl.Events())
	for _, want := range []string{"add s5: admitted", "quarantine s2", "readmit s2: admitted", "canary-pass s2", "add s6: rejected (infeasible)"} {
		if !strings.Contains(log, want) {
			t.Errorf("event log missing %q:\n%s", want, log)
		}
	}
}

// TestRemoveStreamShrinksAndReadmits: removing a stream re-solves the
// survivors down to smaller blocks (lower latency); readmitting the
// removed stream brings it back through a canary and restores its source.
func TestRemoveStreamShrinksAndReadmits(t *testing.T) {
	b := buildBed(t, nil, 0, 128)
	k := b.ms.K
	k.Run(5000)

	var vr *Verdict
	b.ctrl.RemoveStream("s4", func(v Verdict) { vr = &v })
	if !k.RunUntil(30_000, func() bool { return vr != nil }) {
		t.Fatal("remove verdict never arrived")
	}
	if !vr.Accepted {
		t.Fatalf("remove rejected: %s %s", vr.Reason, vr.Detail)
	}
	// 3 streams: 75η ≥ 150 + 45(η+2)/... ⇒ 30η ≥ 240 ⇒ η = 8.
	for _, a := range vr.Blocks {
		if a.Block != 8 {
			t.Fatalf("survivor blocks %v, want all 8", vr.Blocks)
		}
	}
	snaps := b.ms.Chains[0].Pair.Snapshot()
	if !snaps[3].Suspended {
		t.Error("removed slot not suspended")
	}
	for i := 0; i < 3; i++ {
		if snaps[i].Block != 8 {
			t.Errorf("slot %d block %d, want 8", i, snaps[i].Block)
		}
	}
	// The removed stream's source is stopped: its FIFO level stays put.
	lvl := b.ms.Chains[0].Strs[3].In.Len()
	k.Run(k.Now() + 3*period)
	if got := b.ms.Chains[0].Strs[3].In.Len(); got != lvl {
		t.Errorf("removed stream's source still producing (%d -> %d)", lvl, got)
	}
	settled := k.Now()
	k.Run(settled + 3*600) // γ̂(3 streams) = 600
	b.checkBounds(t, settled)

	var vb *Verdict
	b.ctrl.Readmit("s4", func(v Verdict) { vb = &v })
	if !k.RunUntil(k.Now()+30_000, func() bool { return vb != nil }) {
		t.Fatal("readmit verdict never arrived")
	}
	if !vb.Accepted {
		t.Fatalf("readmit rejected: %s %s", vb.Reason, vb.Detail)
	}
	if !k.RunUntil(k.Now()+30_000, func() bool { return b.hasEvent(EvCanaryPass, "s4") }) {
		t.Fatalf("canary never passed; events:\n%s", FormatEvents(b.ctrl.Events()))
	}
	// Back to the 4-stream assignment.
	if got := len(b.ctrl.Model().Streams); got != 4 {
		t.Fatalf("model has %d streams, want 4", got)
	}
	start := k.Now()
	k.Run(start + 4*1640)
	b.checkBounds(t, start)
}

// TestCanaryFailRollsBack: readmitting a still-faulty stream fails its
// canary block; the gateway re-quarantines it and the controller rolls the
// survivors back to their previous configuration.
func TestCanaryFailRollsBack(t *testing.T) {
	// Budget 10 ≫ RetryLimit+1: the canary's notification is lost too.
	b := buildBed(t, &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.LoseIdle, Stream: 1, Block: 8, Count: 10},
	}}, 0, 128)
	k := b.ms.K
	if !k.RunUntil(200_000, func() bool { return b.hasEvent(EvQuarantine, "s2") }) {
		t.Fatal("s2 never quarantined")
	}
	var vr *Verdict
	b.ctrl.Readmit("s2", func(v Verdict) { vr = &v })
	if !k.RunUntil(k.Now()+60_000, func() bool { return vr != nil }) {
		t.Fatal("readmit verdict never arrived")
	}
	if !vr.Accepted {
		t.Fatalf("readmit rejected: %s %s", vr.Reason, vr.Detail)
	}
	if !k.RunUntil(k.Now()+120_000, func() bool { return b.hasEvent(EvRollback, "s2") }) {
		t.Fatalf("no rollback; events:\n%s", FormatEvents(b.ctrl.Events()))
	}
	if !b.hasEvent(EvCanaryFail, "s2") {
		t.Error("canary failure not recorded")
	}
	if got := len(b.ctrl.Model().Streams); got != 3 {
		t.Fatalf("model has %d streams after rollback, want 3", got)
	}
	snap := b.ms.Chains[0].Pair.Snapshot()[1]
	if !snap.Quarantined || snap.Probation {
		t.Fatalf("s2 snapshot %+v, want re-quarantined and off probation", snap)
	}
	// The survivors keep running inside their bounds.
	settled := k.Now()
	k.Run(settled + 4*1640)
	b.checkBounds(t, settled)
	// The stream is parked again: a second readmission attempt is legal.
	var v2 *Verdict
	b.ctrl.Readmit("s2", func(v Verdict) { v2 = &v })
	if !k.RunUntil(k.Now()+60_000, func() bool { return v2 != nil }) {
		t.Fatal("second readmit verdict never arrived")
	}
	if !v2.Accepted {
		t.Fatalf("second readmit rejected: %s %s", v2.Reason, v2.Detail)
	}
}

// TestQuarantineDuringDrainAborts: a fault quarantine can land while a
// transition's pause is still draining — the in-flight block exhausts its
// retry budget mid-drain and the gateway shrinks the controller's model
// underneath the pending plan. The pause callback must abort the stale
// plan (superseded), not index the mutated slot map or resurrect the
// quarantined stream; a re-issued request decides against the new model.
func TestQuarantineDuringDrainAborts(t *testing.T) {
	b := buildBed(t, &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.LoseIdle, Stream: 1, Block: 8, Count: 3},
	}}, 1, 128)
	k := b.ms.K

	// Run to s2's first stall: its faulty block is mid-recovery, so a pause
	// requested now drains through the remaining retries and the quarantine
	// lands before the pause callback can fire.
	pair := b.ms.Chains[0].Pair
	if !k.RunUntil(200_000, func() bool { return pair.Snapshot()[1].Stalls >= 1 }) {
		t.Fatal("s2 never stalled")
	}
	if b.hasEvent(EvQuarantine, "s2") {
		t.Fatal("quarantine already landed; the request must fire mid-recovery")
	}
	var v *Verdict
	b.ctrl.AddStream(addReq("s5", 1, 300, 64, 64, 300), func(vv Verdict) { v = &vv })
	if !k.RunUntil(k.Now()+60_000, func() bool { return v != nil }) {
		t.Fatal("verdict never arrived")
	}
	if !b.hasEvent(EvQuarantine, "s2") {
		t.Fatal("quarantine did not land during the drain")
	}
	if v.Accepted || v.Reason != ReasonSuperseded {
		t.Fatalf("verdict %+v, want superseded rejection", v)
	}
	if got := len(b.ctrl.Model().Streams); got != 3 {
		t.Fatalf("model has %d streams, want 3 survivors", got)
	}
	if b.ms.Chains[0].ReservedSlots() != 1 {
		t.Error("aborted transition consumed the reserved slot")
	}
	// The same request re-issued against the shrunken model succeeds, and
	// everyone runs inside the re-solved bounds.
	var v2 *Verdict
	b.ctrl.AddStream(addReq("s5", 1, 300, 64, 64, 300), func(vv Verdict) { v2 = &vv })
	if !k.RunUntil(k.Now()+60_000, func() bool { return v2 != nil }) {
		t.Fatal("re-issued verdict never arrived")
	}
	if !v2.Accepted {
		t.Fatalf("re-issued add rejected: %s %s", v2.Reason, v2.Detail)
	}
	settled := k.Now()
	k.Run(settled + 3*2695)
	b.checkBounds(t, settled)
}

// TestRequestsGatedWhileCanaryPending: between a readmission and its
// canary outcome the controller may still have to roll the survivors back
// to the assignment captured at readmission time, so adds and removes
// must not change the model underneath that captured rollback.
func TestRequestsGatedWhileCanaryPending(t *testing.T) {
	b := buildBed(t, nil, 1, 128)
	k := b.ms.K
	k.Run(5000)

	var vr *Verdict
	b.ctrl.RemoveStream("s4", func(v Verdict) { vr = &v })
	if !k.RunUntil(30_000, func() bool { return vr != nil }) || !vr.Accepted {
		t.Fatalf("remove failed: %+v", vr)
	}
	var vb *Verdict
	b.ctrl.Readmit("s4", func(v Verdict) { vb = &v })
	if !k.RunUntil(k.Now()+30_000, func() bool { return vb != nil }) || !vb.Accepted {
		t.Fatalf("readmit failed: %+v", vb)
	}
	if b.hasEvent(EvCanaryPass, "s4") {
		t.Fatal("canary resolved before the gate could be exercised")
	}
	// The probe is pending: adds and removes are rejected busy, immediately.
	var va *Verdict
	b.ctrl.AddStream(addReq("s5", 1, 300, 64, 64, 300), func(v Verdict) { va = &v })
	if va == nil || va.Accepted || va.Reason != ReasonBusy {
		t.Fatalf("add during canary: %+v", va)
	}
	var vx *Verdict
	b.ctrl.RemoveStream("s3", func(v Verdict) { vx = &v })
	if vx == nil || vx.Accepted || vx.Reason != ReasonBusy {
		t.Fatalf("remove during canary: %+v", vx)
	}
	// Once the canary resolves, requests flow again.
	if !k.RunUntil(k.Now()+60_000, func() bool { return b.hasEvent(EvCanaryPass, "s4") }) {
		t.Fatalf("canary never passed; events:\n%s", FormatEvents(b.ctrl.Events()))
	}
	var v2 *Verdict
	b.ctrl.AddStream(addReq("s5", 1, 300, 64, 64, 300), func(v Verdict) { v2 = &v })
	if !k.RunUntil(k.Now()+60_000, func() bool { return v2 != nil }) {
		t.Fatal("post-canary add verdict never arrived")
	}
	if !v2.Accepted {
		t.Fatalf("post-canary add rejected: %s %s", v2.Reason, v2.Detail)
	}
}

// TestRejectionReasons covers the machine-readable rejection taxonomy.
func TestRejectionReasons(t *testing.T) {
	b := buildBed(t, nil, 1, 48)
	k := b.ms.K
	k.Run(2000)

	verdict := func(fire func(done func(Verdict))) Verdict {
		var got *Verdict
		fire(func(v Verdict) { got = &v })
		if got == nil {
			t.Fatal("rejection verdict must be immediate")
		}
		return *got
	}

	v := verdict(func(d func(Verdict)) { b.ctrl.RemoveStream("nope", d) })
	if v.Accepted || v.Reason != ReasonUnknownStream {
		t.Errorf("remove unknown: %+v", v)
	}
	v = verdict(func(d func(Verdict)) { b.ctrl.Readmit("nope", d) })
	if v.Accepted || v.Reason != ReasonUnknownStream {
		t.Errorf("readmit unknown: %+v", v)
	}
	v = verdict(func(d func(Verdict)) { b.ctrl.Readmit("s1", d) })
	if v.Accepted || v.Reason != ReasonNotQuarantined {
		t.Errorf("readmit live: %+v", v)
	}
	v = verdict(func(d func(Verdict)) { b.ctrl.AddStream(addReq("s1", 1, 300, 64, 64, 300), d) })
	if v.Accepted || v.Reason != ReasonBadRequest {
		t.Errorf("duplicate name: %+v", v)
	}
	v = verdict(func(d func(Verdict)) {
		r := addReq("sx", 1, 300, 64, 64, 300)
		r.Rate = nil
		b.ctrl.AddStream(r, d)
	})
	if v.Accepted || v.Reason != ReasonBadRequest {
		t.Errorf("missing rate: %+v", v)
	}
	// u = 0.8 + 0.2 = 1.0: infeasible before any slot is consumed.
	v = verdict(func(d func(Verdict)) { b.ctrl.AddStream(addReq("sx", 1, period, 64, 64, period), d) })
	if v.Accepted || v.Reason != ReasonInfeasible {
		t.Errorf("infeasible add: %+v", v)
	}
	// Feasible in time, but the survivors' input FIFOs (48) are smaller
	// than the bound the grown blocks need (72): reject, don't break s1.
	v = verdict(func(d func(Verdict)) { b.ctrl.AddStream(addReq("s5", 1, 300, 64, 64, 300), d) })
	if v.Accepted || v.Reason != ReasonBufferBound {
		t.Errorf("buffer bound: %+v", v)
	}
	if !strings.Contains(v.Detail, "s1") {
		t.Errorf("buffer-bound detail %q does not name the constrained stream", v.Detail)
	}
	// All rejections landed in the event log; nothing was admitted.
	if got := len(b.ctrl.Model().Streams); got != 4 {
		t.Fatalf("model grew to %d streams on rejections", got)
	}
	if b.ms.Chains[0].ReservedSlots() != 1 {
		t.Error("a rejection consumed a reserved slot")
	}
}

// TestNoReservedSlot: a feasible request still fails without ring capacity.
func TestNoReservedSlot(t *testing.T) {
	b := buildBed(t, nil, 0, 128)
	b.ms.K.Run(1000)
	var got *Verdict
	b.ctrl.AddStream(addReq("s5", 1, 300, 64, 64, 300), func(v Verdict) { got = &v })
	if got == nil || got.Accepted || got.Reason != ReasonNoSlot {
		t.Fatalf("verdict %+v, want no-reserved-slot rejection", got)
	}
}

// TestScriptRoundTrip parses a campaign and checks rendering determinism
// at the API level (the CLI-level byte-compare lives in cmd/accelshare).
func TestScriptRoundTrip(t *testing.T) {
	script := `
# demo campaign
3000 add s5 rate=1/300 reconfig=50 incap=64 outcap=64 period=300
9000 remove s4
15000 readmit s4
`
	ops, err := ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 || ops[0].Kind != OpAdd || ops[1].Kind != OpRemove || ops[2].Kind != OpReadmit {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[0].Rate.Cmp(big.NewRat(1, 300)) != 0 || ops[0].InCap != 64 || ops[0].SourcePeriod != 300 {
		t.Fatalf("add op = %+v", ops[0])
	}

	run := func() string {
		b := buildBed(t, nil, 1, 128)
		if err := b.ctrl.Play(ops); err != nil {
			t.Fatal(err)
		}
		b.ms.K.Run(60_000)
		return FormatEvents(b.ctrl.Events())
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("replay diverged:\n--- first\n%s--- second\n%s", first, second)
	}
	for _, want := range []string{"add s5: admitted", "remove s4: admitted", "readmit s4: admitted", "canary-pass s4"} {
		if !strings.Contains(first, want) {
			t.Errorf("log missing %q:\n%s", want, first)
		}
	}
}

// TestParseScriptErrors rejects malformed campaigns with line numbers.
func TestParseScriptErrors(t *testing.T) {
	for _, bad := range []string{
		"x add s rate=1/2",
		"10 explode s",
		"10 add s",
		"10 add s rate=0",
		"10 add s rate=1/2 bogus=3",
		"10 remove s extra",
		"20 add s rate=1/2\n10 remove s",
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("script %q accepted", bad)
		}
	}
}

func recoveryCfg() gateway.Recovery {
	return gateway.Recovery{Enabled: true, RetryLimit: 2}
}
