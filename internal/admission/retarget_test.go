package admission

// Retarget: after a chain failover moves every stream to the standby pair,
// the admission controller must re-attach to the new chain — refresh its
// slot map and block sizes from the standby's slot table, drop any stale
// transition, and keep admitting/removing streams there.

import (
	"math/big"
	"testing"

	"accelshare/internal/accel"
	"accelshare/internal/gateway"
	"accelshare/internal/mpsoc"
)

// buildFailoverBed is buildBed plus an empty standby chain and a failover
// controller wired between the two.
func buildFailoverBed(t *testing.T) (*bed, *mpsoc.FailoverController) {
	t.Helper()
	rate := big.NewRat(1, period)
	model := demoModel(
		[]string{"s1", "s2", "s3", "s4"},
		[]*big.Rat{rate, rate, rate, rate},
	)
	if _, err := model.ComputeBlockSizes(); err != nil {
		t.Fatal(err)
	}
	var specs []mpsoc.StreamSpec
	for i := range model.Streams {
		specs = append(specs, mpsoc.StreamSpec{
			Name:         model.Streams[i].Name,
			Block:        model.Streams[i].Block,
			Decimation:   1,
			Reconfig:     rsCycles,
			InCapacity:   128,
			OutCapacity:  128,
			SourcePeriod: period,
			Engines:      []accel.Engine{&accel.Gain{}},
		})
	}
	ms, err := mpsoc.BuildMulti(mpsoc.MultiConfig{
		Name: "retarget-bed",
		Chains: []mpsoc.ChainSpec{
			{
				Name: "demo", EntryCost: entryCost, ExitCost: 1,
				Mode:    gateway.ReconfigFixed,
				Accels:  []mpsoc.AccelSpec{{Name: "acc", Cost: 1, NICapacity: 2}},
				Streams: specs, DrainTimeout: 200,
				Recovery:          recoveryCfg(),
				RecordTurnarounds: true,
				ReserveSlots:      2,
			},
			{
				Name: "demo-b", EntryCost: entryCost, ExitCost: 1,
				Mode:    gateway.ReconfigFixed,
				Accels:  []mpsoc.AccelSpec{{Name: "acc-b", Cost: 1, NICapacity: 2}},
				Standby: true, DrainTimeout: 200,
				Recovery:          recoveryCfg(),
				RecordTurnarounds: true,
				ReserveSlots:      2,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(ms, Config{
		Chain:       0,
		Model:       model,
		PerSlotCost: 10,
		Engines:     func(string) []accel.Engine { return []accel.Engine{&accel.Gain{}} },
	})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := mpsoc.NewFailover(ms, mpsoc.FailoverConfig{
		Primary: 0, Standby: 1,
		Model:       model.Clone(),
		PerSlotCost: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms.Chains[0].Pair.Start()
	ms.Chains[1].Pair.Start()
	return &bed{ms: ms, ctrl: ctrl, model: model}, fc
}

func TestRetargetValidation(t *testing.T) {
	b, _ := buildFailoverBed(t)
	if err := b.ctrl.Retarget(0, nil); err == nil {
		t.Error("retarget onto the current chain accepted")
	}
	if err := b.ctrl.Retarget(7, nil); err == nil {
		t.Error("retarget out of range accepted")
	}
	// The standby carries no streams yet: every admitted slot is unmappable.
	if err := b.ctrl.Retarget(1, nil); err == nil {
		t.Error("retarget onto a chain missing the admitted streams accepted")
	}
}

// TestRetargetAfterFailover: operator-triggered failover mid-run, Retarget,
// then the controller keeps working on the standby — removing one stream and
// admitting a new one, with bounds holding after each transition.
func TestRetargetAfterFailover(t *testing.T) {
	b, fc := buildFailoverBed(t)
	k := b.ms.K
	k.ScheduleAt(5_000, func() { fc.Trigger("operator") })
	k.Run(20_000)

	rec := fc.Record()
	if rec == nil {
		t.Fatal("failover never completed")
	}
	if rec.MeasuredCycles > rec.BoundCycles {
		t.Fatalf("failover cost %d > bound %d", rec.MeasuredCycles, rec.BoundCycles)
	}
	if err := b.ctrl.Retarget(1, nil); err != nil {
		t.Fatal(err)
	}
	if !b.hasEvent(EvRetarget, "demo-b") {
		t.Error("retarget not recorded in the event log")
	}

	// The controller now manages the standby chain: run on, then remove s4
	// and admit a new stream there.
	k.Run(40_000)
	var removed, added *Verdict
	b.ctrl.RemoveStream("s4", func(v Verdict) { removed = &v })
	k.Run(60_000)
	if removed == nil || !removed.Accepted {
		t.Fatalf("remove s4 on the standby: %+v", removed)
	}
	b.ctrl.AddStream(addReq("s9", 1, 300, 128, 128, 300), func(v Verdict) { added = &v })
	k.Run(90_000)
	if added == nil || !added.Accepted {
		t.Fatalf("add s9 on the standby: %+v", added)
	}
	found := false
	for _, st := range b.ms.Chains[1].Strs {
		if st.Spec.Name == "s9" {
			found = true
		}
	}
	if !found {
		t.Error("s9 not built on the standby chain")
	}
	// Settle past the add's transition, then the new model's bounds hold.
	k.Run(140_000)
	b.checkBounds(t, 95_000)
}

// TestRetargetReleasesStaleTransition: a transition left mid-flight on the
// failed primary (its pause callback died with the freeze) must not wedge
// the controller forever — Retarget clears the stale busy gate.
func TestRetargetReleasesStaleTransition(t *testing.T) {
	b, fc := buildFailoverBed(t)
	k := b.ms.K

	// Start an add whose staged transition will be killed by the freeze.
	var verdict *Verdict
	k.ScheduleAt(3_000, func() {
		b.ctrl.AddStream(addReq("s5", 1, 300, 128, 128, 300), func(v Verdict) { verdict = &v })
	})
	// Freeze the primary immediately after: the pause is pending, the bus
	// transfer may be in flight — all of it dies with the pair.
	k.ScheduleAt(3_010, func() {
		if err := fc.Trigger("operator"); err != nil {
			t.Errorf("trigger: %v", err)
		}
	})
	k.Run(20_000)
	if fc.Record() == nil {
		t.Fatal("failover never completed")
	}
	if err := b.ctrl.Retarget(1, nil); err != nil {
		t.Fatalf("retarget after a stale transition: %v", err)
	}
	_ = verdict // the interrupted add may or may not have completed; either is fine

	// The controller must accept new work on the standby.
	var added *Verdict
	b.ctrl.AddStream(addReq("s6", 1, 300, 128, 128, 300), func(v Verdict) { added = &v })
	k.Run(50_000)
	if added == nil || !added.Accepted {
		t.Fatalf("add s6 after retarget: %+v", added)
	}
}
